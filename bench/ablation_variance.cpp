// Bench harness entry point: extension study "ablation_variance".
// See DESIGN.md §4/§6 and EXPERIMENTS.md.
#include <iostream>

#include "harness/args.hpp"
#include "harness/figures.hpp"

int main(int argc, char** argv) {
  const asfsim::CliOptions opts = asfsim::parse_cli(argc, argv);
  return asfsim::figures::ablation_variance(opts, std::cout);
}
