// Bench harness entry point: capacity-overflow study (why the paper
// excluded yada). See DESIGN.md §4 and EXPERIMENTS.md.
#include <iostream>

#include "harness/args.hpp"
#include "harness/figures.hpp"

int main(int argc, char** argv) {
  const asfsim::CliOptions opts = asfsim::parse_cli(argc, argv);
  return asfsim::figures::ablation_capacity(opts, std::cout);
}
