// Bench harness entry point: regenerates the paper artifact
// "fig9_overall_conflict_reduction". See DESIGN.md §4 for the per-experiment index and
// EXPERIMENTS.md for the recorded paper-vs-measured comparison.
#include <iostream>

#include "harness/args.hpp"
#include "harness/figures.hpp"

int main(int argc, char** argv) {
  const asfsim::CliOptions opts = asfsim::parse_cli(argc, argv);
  return asfsim::figures::fig9_overall_conflict_reduction(opts, std::cout);
}
