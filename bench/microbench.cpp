// Component microbenchmarks (google-benchmark): host-side cost of the
// simulator's hot paths. These measure the SIMULATOR, not the simulated
// machine — useful when hacking on the library itself.
#include <benchmark/benchmark.h>

#include "core/classifier.hpp"
#include "core/subblock_detector.hpp"
#include "guest/garray.hpp"
#include "guest/grbtree.hpp"
#include "guest/machine.hpp"
#include "harness/experiment.hpp"
#include "mem/cache.hpp"
#include "sim/random.hpp"

namespace asfsim {
namespace {

void BM_TagArrayLookup(benchmark::State& state) {
  SimConfig cfg;
  TagArray l1(cfg.l1);
  std::vector<Addr> lines;
  Rng rng(7);
  for (int i = 0; i < 512; ++i) {
    const Addr line = rng.below(1 << 22) << kLineShift;
    if (const auto v = l1.find_victim(line, [](Addr) { return false; });
        v != TagArray::kNoSlot) {
      l1.fill(v, line, Moesi::kShared);
    }
    lines.push_back(line);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(l1.find(lines[i++ & 511]));
  }
}
BENCHMARK(BM_TagArrayLookup);

void BM_SubBlockProbeCheck(benchmark::State& state) {
  SubBlockDetector det(static_cast<std::uint32_t>(state.range(0)));
  SpecState meta;
  meta.read_bytes = byte_mask(0, 8) | byte_mask(24, 8);
  meta.write_bytes = byte_mask(40, 8);
  meta.bits.spec = 0xf;
  meta.bits.wr = 0x4;
  const ByteMask probe = byte_mask(16, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(det.check_probe(meta, probe, true));
  }
}
BENCHMARK(BM_SubBlockProbeCheck)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_ClassifyConflict(benchmark::State& state) {
  SpecState meta;
  meta.read_bytes = byte_mask(0, 8);
  meta.write_bytes = byte_mask(32, 4);
  const ByteMask probe = byte_mask(8, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(classify_conflict(meta, probe, true));
  }
}
BENCHMARK(BM_ClassifyConflict);

void BM_SimulatedTxThroughput(benchmark::State& state) {
  // Whole-stack cost: simulated transactions per host-second on the counter
  // microworkload (8 cores, sub-block detector).
  for (auto _ : state) {
    ExperimentConfig cfg;
    cfg.detector = DetectorKind::kSubBlock;
    cfg.params.scale = 0.2;
    const auto r = run_experiment("counter", cfg);
    benchmark::DoNotOptimize(r.stats.tx_commits);
    state.counters["sim_tx"] += static_cast<double>(r.stats.tx_attempts);
    state.counters["sim_cycles"] += static_cast<double>(r.stats.total_cycles);
  }
}
BENCHMARK(BM_SimulatedTxThroughput)->Unit(benchmark::kMillisecond);

void BM_GuestRbTreeInsert(benchmark::State& state) {
  for (auto _ : state) {
    SimConfig cfg;
    cfg.ncores = 1;
    Machine m(cfg, DetectorKind::kBaseline);
    GRBTree tree = GRBTree::create(m);
    Rng rng(3);
    for (int i = 0; i < 200; ++i) {
      tree.host_insert(m, rng.next_u64() % 4096, i);
    }
    benchmark::DoNotOptimize(tree.host_size(m));
  }
}
BENCHMARK(BM_GuestRbTreeInsert)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace asfsim

BENCHMARK_MAIN();
