// Bench harness entry point: coherence-timing fidelity study.
// See DESIGN.md §2 and EXPERIMENTS.md.
#include <iostream>

#include "harness/args.hpp"
#include "harness/figures.hpp"

int main(int argc, char** argv) {
  const asfsim::CliOptions opts = asfsim::parse_cli(argc, argv);
  return asfsim::figures::ablation_timing(opts, std::cout);
}
