// BENCH_kernel measurement tool (docs/performance.md).
//
// Runs a pinned set of (workload × detector) cells and reports simulated
// cycles per host-second for each — the kernel's end-to-end figure of merit.
// Configs are fixed (no CLI scale knob) so numbers are comparable across
// commits; scripts/bench_kernel.sh wraps the output with git SHA and build
// flags to form BENCH_kernel.json, and scripts/check_bench_ratchet.py turns
// the committed file into a CI perf ratchet.
//
// Usage: kernel_throughput [--repeat N] [--quick]
//   --repeat N   host-timing repetitions per cell, best-of-N (default 3)
//   --quick      CI shape: fewer repetitions and smaller inputs; still the
//                same cells, so ratios remain meaningful on shared runners
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "workloads/workload.hpp"

namespace asfsim {
namespace {

struct BenchCell {
  const char* name;      // row name in BENCH_kernel.json
  const char* workload;  // registry name
  DetectorKind detector;
  std::uint32_t nsub;
  double scale;        // input-size multiplier (full mode)
  double quick_scale;  // input-size multiplier (--quick / CI mode)
};

// One STAMP-port row and one OLTP row carry the headline ≥2× acceptance
// criterion; the rest spread coverage over the distinct hot paths (baseline
// line-granularity probes, sub-block walks, perfect-detector bookkeeping,
// high-abort contention).
constexpr BenchCell kCells[] = {
    {"vacation/subblock-4", "vacation", DetectorKind::kSubBlock, 4, 16.0, 2.0},
    {"vacation/baseline", "vacation", DetectorKind::kBaseline, 1, 16.0, 2.0},
    {"genome/subblock-4", "genome", DetectorKind::kSubBlock, 4, 24.0, 3.0},
    {"intruder/subblock-8", "intruder", DetectorKind::kSubBlock, 8, 24.0, 3.0},
    {"kmeans/baseline", "kmeans", DetectorKind::kBaseline, 1, 16.0, 2.0},
    {"ssca2/perfect", "ssca2", DetectorKind::kPerfect, 1, 24.0, 3.0},
    {"oltp-contended/subblock-4", "oltp", DetectorKind::kSubBlock, 4, 1.0,
     1.0},
    {"oltp-contended/baseline", "oltp", DetectorKind::kBaseline, 1, 1.0, 1.0},
};

ExperimentConfig cell_config(const BenchCell& c, bool quick) {
  ExperimentConfig cfg;
  cfg.detector = c.detector;
  cfg.nsub = c.nsub;
  cfg.params.threads = 8;
  cfg.sim.ncores = 8;
  cfg.params.seed = 42;
  cfg.params.scale = quick ? c.quick_scale : c.scale;
  if (std::strcmp(c.workload, "oltp") == 0) {
    // Contended-KV: small hot table + zipf theta 1.1 + update-heavy mix A,
    // the shape ROADMAP's OLTP bench row calls for.
    cfg.params.oltp.records = 512;
    cfg.params.oltp.payload_bytes = 16;
    cfg.params.oltp.tx_len = 8;
    cfg.params.oltp.tx_per_thread = quick ? 1000 : 8000;
    cfg.params.oltp.theta = 1.1;
    cfg.params.oltp.mix = OltpMix::kA;
  }
  return cfg;
}

int run(int argc, char** argv) {
  int repeat = 3;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      repeat = std::max(1, std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
      repeat = std::min(repeat, 2);
    } else {
      std::fprintf(stderr, "usage: %s [--repeat N] [--quick]\n", argv[0]);
      return 2;
    }
  }

  std::printf("[\n");
  bool first = true;
  for (const BenchCell& c : kCells) {
    const ExperimentConfig cfg = cell_config(c, quick);
    double best_s = 1e300;
    std::uint64_t sim_cycles = 0;
    std::uint64_t commits = 0;
    for (int r = 0; r < repeat; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      const ExperimentResult res = run_experiment(c.workload, cfg);
      const auto t1 = std::chrono::steady_clock::now();
      if (!res.ok()) {
        std::fprintf(stderr, "%s: validation failed: %s\n", c.name,
                     res.validation_error.c_str());
        return 1;
      }
      const double s = std::chrono::duration<double>(t1 - t0).count();
      best_s = std::min(best_s, s);
      sim_cycles = static_cast<std::uint64_t>(res.stats.total_cycles);
      commits = res.stats.tx_commits;
    }
    const double cps = static_cast<double>(sim_cycles) / best_s;
    std::printf("%s  {\"name\": \"%s\", \"workload\": \"%s\", "
                "\"detector\": \"%s\", \"nsub\": %u, \"scale\": %g, "
                "\"sim_cycles\": %llu, \"tx_commits\": %llu, "
                "\"host_seconds\": %.6f, \"sim_cycles_per_host_sec\": %.0f}",
                first ? "" : ",\n", c.name, c.workload,
                to_string(c.detector), c.nsub, cfg.params.scale,
                static_cast<unsigned long long>(sim_cycles),
                static_cast<unsigned long long>(commits), best_s, cps);
    first = false;
    std::fprintf(stderr, "%-28s %12.3e sim-cycles/host-s  (%.3fs host)\n",
                 c.name, cps, best_s);
  }
  std::printf("\n]\n");
  return 0;
}

}  // namespace
}  // namespace asfsim

int main(int argc, char** argv) { return asfsim::run(argc, argv); }
