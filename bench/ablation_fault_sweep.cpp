// Bench harness entry point: regenerates the robustness artifact
// "ablation_fault_sweep" (commit rate and wasted cycles vs the injected
// spurious-abort rate, per detector). See docs/robustness.md for the fault
// injection knobs.
#include <iostream>

#include "harness/args.hpp"
#include "harness/figures.hpp"

int main(int argc, char** argv) {
  const asfsim::CliOptions opts = asfsim::parse_cli(argc, argv);
  return asfsim::figures::ablation_fault_sweep(opts, std::cout);
}
