// Bench harness entry point: regenerates the extension artifact
// "fig_conflict_attribution" (share of false conflicts by allocation site
// per detector, over a contended OLTP run plus vacation and genome). See
// docs/observability.md, "Conflict provenance".
#include <iostream>

#include "harness/args.hpp"
#include "harness/figures.hpp"

int main(int argc, char** argv) {
  const asfsim::CliOptions opts = asfsim::parse_cli(argc, argv);
  return asfsim::figures::fig_conflict_attribution(opts, std::cout);
}
