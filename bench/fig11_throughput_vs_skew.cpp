// Bench harness entry point: regenerates the extension artifact
// "fig11_throughput_vs_skew" (OLTP commits/simulated-second and latency
// percentiles over a zipf-theta x core-count x detector sweep). See
// docs/workloads.md for the OLTP knobs and metric definitions.
#include <iostream>

#include "harness/args.hpp"
#include "harness/figures.hpp"

int main(int argc, char** argv) {
  const asfsim::CliOptions opts = asfsim::parse_cli(argc, argv);
  return asfsim::figures::fig11_throughput_vs_skew(opts, std::cout);
}
