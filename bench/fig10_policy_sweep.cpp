// Bench harness entry point: regenerates the contention-management
// extension artifact "fig10_policy_sweep" (execution time and fairness by
// policy x detector x cores). See docs/contention.md and DESIGN.md §4.
#include <iostream>

#include "harness/args.hpp"
#include "harness/figures.hpp"

int main(int argc, char** argv) {
  const asfsim::CliOptions opts = asfsim::parse_cli(argc, argv);
  return asfsim::figures::fig10_policy_sweep(opts, std::cout);
}
