#include "trace/jsonl.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <ostream>

namespace asfsim::trace {

namespace {

void put_u64(std::string& out, const char* key, std::uint64_t v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), ",\"%s\":%" PRIu64, key, v);
  out += buf;
}

void put_str(std::string& out, const char* key, const char* v) {
  out += ",\"";
  out += key;
  out += "\":\"";
  out += v;
  out += '"';
}

void put_bool(std::string& out, const char* key, bool v) {
  out += ",\"";
  out += key;
  out += "\":";
  out += v ? "true" : "false";
}

void put_prov(std::string& out, const TraceEvent& ev) {
  if (!ev.has_prov) return;
  put_u64(out, "victim_site", ev.victim_site);
  put_u64(out, "victim_obj", ev.victim_obj);
  put_u64(out, "victim_sub", ev.victim_sub);
  put_u64(out, "req_site", ev.req_site);
  put_u64(out, "req_obj", ev.req_obj);
}

void put_footprint(std::string& out, const TraceEvent& ev) {
  put_u64(out, "read_lines", ev.read_lines);
  put_u64(out, "write_lines", ev.write_lines);
  put_u64(out, "read_subs", ev.read_subs);
  put_u64(out, "write_subs", ev.write_subs);
}

bool parse_kind(std::string_view s, TraceEventKind& out) {
  for (std::size_t i = 0; i < kTraceEventKinds; ++i) {
    const auto k = static_cast<TraceEventKind>(i);
    if (s == to_string(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

bool parse_cause(std::string_view s, AbortCause& out) {
  for (const AbortCause c : {AbortCause::kConflict, AbortCause::kCapacity,
                             AbortCause::kUser, AbortCause::kLockWait}) {
    if (s == to_string(c)) {
      out = c;
      return true;
    }
  }
  return false;
}

bool parse_type(std::string_view s, ConflictType& out) {
  for (const ConflictType t :
       {ConflictType::kWAR, ConflictType::kRAW, ConflictType::kWAW}) {
    if (s == to_string(t)) {
      out = t;
      return true;
    }
  }
  return false;
}

/// Pull-parser over `{"key":value,...}` with uint / bool / string values —
/// exactly the grammar to_jsonl emits, rejected strictly otherwise.
class LineParser {
 public:
  explicit LineParser(std::string_view line) : rest_(line) {
    while (!rest_.empty() &&
           (rest_.back() == '\n' || rest_.back() == '\r')) {
      rest_.remove_suffix(1);
    }
  }

  bool open() { return eat('{'); }
  bool close() { return eat('}') && rest_.empty(); }
  [[nodiscard]] bool at_close() const {
    return !rest_.empty() && rest_[0] == '}';
  }

  /// Parse the next `"key":` pair header into `key`.
  bool key(std::string_view& key) {
    if (!comma_done_ && !eat(',')) return false;
    comma_done_ = false;
    if (!eat('"')) return false;
    const std::size_t q = rest_.find('"');
    if (q == std::string_view::npos) return false;
    key = rest_.substr(0, q);
    rest_.remove_prefix(q + 1);
    return eat(':');
  }

  bool u64(std::uint64_t& v) {
    if (rest_.empty() || rest_[0] < '0' || rest_[0] > '9') return false;
    if (rest_[0] == '0' && rest_.size() > 1 && rest_[1] >= '0' &&
        rest_[1] <= '9') {
      return false;  // leading zero: to_jsonl never writes one
    }
    v = 0;
    while (!rest_.empty() && rest_[0] >= '0' && rest_[0] <= '9') {
      const auto d = static_cast<std::uint64_t>(rest_[0] - '0');
      if (v > (~std::uint64_t{0} - d) / 10) return false;  // would wrap
      v = v * 10 + d;
      rest_.remove_prefix(1);
    }
    return true;
  }

  bool boolean(bool& v) {
    if (rest_.substr(0, 4) == "true") {
      v = true;
      rest_.remove_prefix(4);
      return true;
    }
    if (rest_.substr(0, 5) == "false") {
      v = false;
      rest_.remove_prefix(5);
      return true;
    }
    return false;
  }

  bool str(std::string_view& v) {
    if (!eat('"')) return false;
    const std::size_t q = rest_.find('"');
    if (q == std::string_view::npos) return false;
    v = rest_.substr(0, q);
    rest_.remove_prefix(q + 1);
    return true;
  }

  /// First pair carries no leading comma.
  void begin_object() { comma_done_ = true; }

 private:
  bool eat(char c) {
    if (rest_.empty() || rest_[0] != c) return false;
    rest_.remove_prefix(1);
    return true;
  }

  std::string_view rest_;
  bool comma_done_ = false;
};

}  // namespace

void to_jsonl(const TraceEvent& ev, std::string& out) {
  out += "{\"kind\":\"";
  out += to_string(ev.kind);
  out += '"';
  switch (ev.kind) {
    case TraceEventKind::kBegin:
      put_u64(out, "core", ev.core);
      put_u64(out, "cycle", ev.cycle);
      break;
    case TraceEventKind::kCommit:
      put_u64(out, "core", ev.core);
      put_u64(out, "cycle", ev.cycle);
      put_u64(out, "start", ev.span_begin);
      put_u64(out, "retries", ev.retries);
      put_u64(out, "wasted", ev.wasted);
      put_footprint(out, ev);
      break;
    case TraceEventKind::kAbort:
      put_u64(out, "core", ev.core);
      put_u64(out, "cycle", ev.cycle);
      put_u64(out, "start", ev.span_begin);
      put_str(out, "cause", to_string(ev.cause));
      put_u64(out, "wasted", ev.wasted);
      put_footprint(out, ev);
      break;
    case TraceEventKind::kConflict:
      put_u64(out, "core", ev.core);
      put_u64(out, "other", ev.other);
      put_u64(out, "cycle", ev.cycle);
      put_u64(out, "line", ev.line);
      put_str(out, "type", to_string(ev.type));
      put_bool(out, "false", ev.is_false);
      put_u64(out, "probe_mask", ev.probe_mask);
      put_u64(out, "victim_mask", ev.victim_mask);
      put_prov(out, ev);
      break;
    case TraceEventKind::kAvoided:
      put_u64(out, "core", ev.core);
      put_u64(out, "other", ev.other);
      put_u64(out, "cycle", ev.cycle);
      put_u64(out, "line", ev.line);
      put_u64(out, "probe_mask", ev.probe_mask);
      put_u64(out, "victim_mask", ev.victim_mask);
      put_prov(out, ev);
      break;
    case TraceEventKind::kFallback:
      put_u64(out, "core", ev.core);
      put_u64(out, "cycle", ev.cycle);
      put_u64(out, "start", ev.span_begin);
      put_u64(out, "retries", ev.retries);
      put_u64(out, "wasted", ev.wasted);
      break;
    case TraceEventKind::kBackoff:
      put_u64(out, "core", ev.core);
      put_u64(out, "cycle", ev.cycle);
      put_u64(out, "start", ev.span_begin);
      break;
    case TraceEventKind::kCounter:
      put_u64(out, "cycle", ev.cycle);
      put_u64(out, "live_tx", ev.live_tx);
      put_u64(out, "commits", ev.commits);
      put_u64(out, "aborts", ev.aborts);
      put_u64(out, "bus_wait", ev.bus_wait);
      break;
    case TraceEventKind::kSite:
      put_u64(out, "site", ev.site_id);
      put_str(out, "name", ev.site_name.c_str());
      put_u64(out, "obj_size", ev.site_obj_size);
      put_u64(out, "objects", ev.site_objects);
      put_u64(out, "bytes", ev.site_bytes);
      break;
    case TraceEventKind::kPolicy:
      put_u64(out, "core", ev.core);
      put_u64(out, "other", ev.other);
      put_u64(out, "loser", ev.loser);
      put_u64(out, "cycle", ev.cycle);
      put_u64(out, "line", ev.line);
      break;
    case TraceEventKind::kFallbackAcquired:
      put_u64(out, "core", ev.core);
      put_u64(out, "cycle", ev.cycle);
      put_u64(out, "start", ev.span_begin);
      put_u64(out, "retries", ev.retries);
      break;
  }
  out += "}\n";
}

bool from_jsonl(std::string_view line, TraceEvent& out) {
  out = TraceEvent{};
  LineParser p(line);
  if (!p.open()) return false;
  p.begin_object();

  std::string_view key;
  std::string_view sval;
  if (!p.key(key) || key != "kind" || !p.str(sval) ||
      !parse_kind(sval, out.kind)) {
    return false;
  }

  while (!p.at_close()) {
    if (!p.key(key)) return false;
    if (key == "cause") {
      if (!p.str(sval) || !parse_cause(sval, out.cause)) return false;
    } else if (key == "type") {
      if (!p.str(sval) || !parse_type(sval, out.type)) return false;
    } else if (key == "false") {
      if (!p.boolean(out.is_false)) return false;
    } else if (key == "name") {
      if (!p.str(sval)) return false;
      out.site_name = std::string(sval);
    } else {
      std::uint64_t v = 0;
      if (!p.u64(v)) return false;
      if (key == "core") {
        out.core = static_cast<CoreId>(v);
      } else if (key == "other") {
        out.other = static_cast<CoreId>(v);
      } else if (key == "cycle") {
        out.cycle = v;
      } else if (key == "start") {
        out.span_begin = v;
      } else if (key == "line") {
        out.line = v;
      } else if (key == "probe_mask") {
        out.probe_mask = v;
      } else if (key == "victim_mask") {
        out.victim_mask = v;
      } else if (key == "retries") {
        out.retries = static_cast<std::uint32_t>(v);
      } else if (key == "wasted") {
        out.wasted = v;
      } else if (key == "read_lines") {
        out.read_lines = static_cast<std::uint32_t>(v);
      } else if (key == "write_lines") {
        out.write_lines = static_cast<std::uint32_t>(v);
      } else if (key == "read_subs") {
        out.read_subs = static_cast<std::uint32_t>(v);
      } else if (key == "write_subs") {
        out.write_subs = static_cast<std::uint32_t>(v);
      } else if (key == "live_tx") {
        out.live_tx = static_cast<std::uint32_t>(v);
      } else if (key == "commits") {
        out.commits = v;
      } else if (key == "aborts") {
        out.aborts = v;
      } else if (key == "bus_wait") {
        out.bus_wait = v;
      } else if (key == "victim_site") {
        out.victim_site = static_cast<std::uint32_t>(v);
        out.has_prov = true;
      } else if (key == "victim_obj") {
        out.victim_obj = v;
        out.has_prov = true;
      } else if (key == "victim_sub") {
        out.victim_sub = static_cast<std::uint32_t>(v);
        out.has_prov = true;
      } else if (key == "req_site") {
        out.req_site = static_cast<std::uint32_t>(v);
        out.has_prov = true;
      } else if (key == "req_obj") {
        out.req_obj = v;
        out.has_prov = true;
      } else if (key == "loser") {
        out.loser = static_cast<CoreId>(v);
      } else if (key == "site") {
        out.site_id = static_cast<std::uint32_t>(v);
      } else if (key == "obj_size") {
        out.site_obj_size = v;
      } else if (key == "objects") {
        out.site_objects = v;
      } else if (key == "bytes") {
        out.site_bytes = v;
      } else {
        return false;  // unknown key: not something to_jsonl wrote
      }
    }
  }
  return p.close();
}

void JsonlSink::on_event(const TraceEvent& ev) {
  buf_.clear();
  to_jsonl(ev, buf_);
  os_ << buf_;
}

void JsonlSink::finish(Cycle /*final_cycle*/) { os_.flush(); }

}  // namespace asfsim::trace
