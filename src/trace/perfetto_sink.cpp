#include "trace/perfetto_sink.hpp"

#include <cinttypes>
#include <cstdio>
#include <ostream>

namespace asfsim::trace {

namespace {

std::string u64s(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

std::string hex64s(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%" PRIx64, v);
  return buf;
}

/// One complete-event span on a core track.
std::string span(const char* name, const char* cname, CoreId core, Cycle start,
                 Cycle end, const std::string& args) {
  std::string r = "{\"name\":\"";
  r += name;
  r += "\",\"ph\":\"X\",\"pid\":0,\"tid\":";
  r += u64s(core);
  r += ",\"ts\":";
  r += u64s(start);
  r += ",\"dur\":";
  r += u64s(end - start);
  r += ",\"cname\":\"";
  r += cname;
  r += "\",\"args\":{";
  r += args;
  r += "}}";
  return r;
}

std::string footprint_args(const TraceEvent& ev) {
  std::string a = "\"read_lines\":" + u64s(ev.read_lines);
  a += ",\"write_lines\":" + u64s(ev.write_lines);
  a += ",\"read_subs\":" + u64s(ev.read_subs);
  a += ",\"write_subs\":" + u64s(ev.write_subs);
  return a;
}

/// One counter sample on its own track.
std::string counter(const char* name, Cycle ts, std::uint64_t value) {
  std::string r = "{\"name\":\"";
  r += name;
  r += "\",\"ph\":\"C\",\"pid\":0,\"ts\":";
  r += u64s(ts);
  r += ",\"args\":{\"value\":";
  r += u64s(value);
  r += "}}";
  return r;
}

}  // namespace

PerfettoSink::PerfettoSink(std::ostream& os) : os_(os) {
  os_ << "{\"traceEvents\":[\n";
  write_record(
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
      "\"args\":{\"name\":\"asfsim\"}}");
}

void PerfettoSink::write_record(const std::string& json) {
  if (!first_) os_ << ",\n";
  first_ = false;
  os_ << json;
}

void PerfettoSink::ensure_core_track(CoreId core) {
  if (core >= core_seen_.size()) core_seen_.resize(core + 1, false);
  if (core_seen_[core]) return;
  core_seen_[core] = true;
  write_record("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" +
               u64s(core) + ",\"args\":{\"name\":\"core " + u64s(core) +
               "\"}}");
  write_record(
      "{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":0,\"tid\":" +
      u64s(core) + ",\"args\":{\"sort_index\":" + u64s(core) + "}}");
}

void PerfettoSink::on_event(const TraceEvent& ev) {
  switch (ev.kind) {
    case TraceEventKind::kBegin:
      // Attempt starts are implied by the commit/abort spans; nothing to
      // draw (live_tx counts them).
      break;
    case TraceEventKind::kCommit: {
      ensure_core_track(ev.core);
      std::string args = "\"retries\":" + u64s(ev.retries);
      args += ",\"wasted\":" + u64s(ev.wasted);
      args += "," + footprint_args(ev);
      write_record(
          span("tx", "good", ev.core, ev.span_begin, ev.cycle, args));
      break;
    }
    case TraceEventKind::kAbort: {
      ensure_core_track(ev.core);
      std::string name = "abort (";
      name += to_string(ev.cause);
      name += ')';
      std::string args = "\"cause\":\"";
      args += to_string(ev.cause);
      args += "\",\"wasted\":" + u64s(ev.wasted);
      args += "," + footprint_args(ev);
      write_record(span(name.c_str(), "terrible", ev.core, ev.span_begin,
                        ev.cycle, args));
      break;
    }
    case TraceEventKind::kConflict:
    case TraceEventKind::kAvoided: {
      ensure_core_track(ev.core);
      const bool avoided = ev.kind == TraceEventKind::kAvoided;
      std::string name = avoided ? "avoided" : "conflict ";
      if (!avoided) {
        name += to_string(ev.type);
        name += ev.is_false ? " FALSE" : " true";
      }
      std::string r = "{\"name\":\"" + name +
                      "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":" +
                      u64s(ev.core) + ",\"ts\":" + u64s(ev.cycle) +
                      ",\"args\":{\"victim\":" + u64s(ev.core) +
                      ",\"requester\":" + u64s(ev.other) + ",\"line\":\"" +
                      hex64s(ev.line) + "\",\"probe_mask\":\"" +
                      hex64s(ev.probe_mask) + "\",\"victim_mask\":\"" +
                      hex64s(ev.victim_mask) + "\"";
      if (ev.has_prov) {
        r += ",\"victim_site\":" + u64s(ev.victim_site);
        r += ",\"victim_obj\":" + u64s(ev.victim_obj);
        r += ",\"victim_sub\":" + u64s(ev.victim_sub);
        r += ",\"req_site\":" + u64s(ev.req_site);
        r += ",\"req_obj\":" + u64s(ev.req_obj);
      }
      r += "}}";
      write_record(r);
      break;
    }
    case TraceEventKind::kFallback: {
      ensure_core_track(ev.core);
      std::string args = "\"retries\":" + u64s(ev.retries);
      args += ",\"wasted\":" + u64s(ev.wasted);
      write_record(
          span("fallback", "yellow", ev.core, ev.span_begin, ev.cycle, args));
      break;
    }
    case TraceEventKind::kBackoff:
      ensure_core_track(ev.core);
      write_record(
          span("backoff", "grey", ev.core, ev.span_begin, ev.cycle, ""));
      break;
    case TraceEventKind::kCounter: {
      write_record(counter("live_tx", ev.cycle, ev.live_tx));
      write_record(counter("tx_commits", ev.cycle, ev.commits));
      write_record(counter("tx_aborts", ev.cycle, ev.aborts));
      write_record(
          counter("abort_rate", ev.cycle, ev.aborts - prev_aborts_));
      write_record(counter("bus_wait_cycles", ev.cycle, ev.bus_wait));
      prev_aborts_ = ev.aborts;
      break;
    }
    case TraceEventKind::kPolicy: {
      // Policy decisions are thread-scoped instants on the victim's track;
      // the loser arg tells which side of the conflict was ruled against.
      ensure_core_track(ev.core);
      const bool req_lost = ev.loser == ev.other;
      std::string r = std::string("{\"name\":\"policy: ") +
                      (req_lost ? "requester loses" : "victim loses") +
                      "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":" +
                      u64s(ev.core) + ",\"ts\":" + u64s(ev.cycle) +
                      ",\"args\":{\"victim\":" + u64s(ev.core) +
                      ",\"requester\":" + u64s(ev.other) + ",\"loser\":" +
                      u64s(ev.loser) + ",\"line\":\"" + hex64s(ev.line) +
                      "\"}}";
      write_record(r);
      break;
    }
    case TraceEventKind::kFallbackAcquired: {
      ensure_core_track(ev.core);
      std::string r = "{\"name\":\"fallback lock acquired\",\"ph\":\"i\","
                      "\"s\":\"t\",\"pid\":0,\"tid\":" +
                      u64s(ev.core) + ",\"ts\":" + u64s(ev.cycle) +
                      ",\"args\":{\"spin_start\":" + u64s(ev.span_begin) +
                      ",\"retries\":" + u64s(ev.retries) + "}}";
      write_record(r);
      break;
    }
    case TraceEventKind::kSite: {
      // Site declarations become metadata-style instants on the process
      // track so the conflict args' site ids stay decodable in the UI.
      std::string r = "{\"name\":\"site " + u64s(ev.site_id) + ": " +
                      ev.site_name +
                      "\",\"ph\":\"i\",\"s\":\"g\",\"pid\":0,\"ts\":" +
                      u64s(ev.cycle) + ",\"args\":{\"site\":" +
                      u64s(ev.site_id) + ",\"name\":\"" + ev.site_name +
                      "\",\"obj_size\":" + u64s(ev.site_obj_size) +
                      ",\"objects\":" + u64s(ev.site_objects) +
                      ",\"bytes\":" + u64s(ev.site_bytes) + "}}";
      write_record(r);
      break;
    }
  }
}

void PerfettoSink::finish(Cycle /*final_cycle*/) {
  if (finished_) return;
  finished_ = true;
  os_ << "\n]}\n";
  os_.flush();
}

}  // namespace asfsim::trace
