#include "trace/clock.hpp"

namespace asfsim::trace {

namespace {
thread_local SimClockFn g_clock_fn = nullptr;
thread_local const void* g_clock_ctx = nullptr;
}  // namespace

ScopedSimClock::ScopedSimClock(SimClockFn fn, const void* ctx) noexcept
    : prev_fn_(g_clock_fn), prev_ctx_(g_clock_ctx) {
  g_clock_fn = fn;
  g_clock_ctx = ctx;
}

ScopedSimClock::~ScopedSimClock() {
  g_clock_fn = prev_fn_;
  g_clock_ctx = prev_ctx_;
}

bool current_sim_cycle(Cycle& out) noexcept {
  if (g_clock_fn == nullptr) return false;
  out = g_clock_fn(g_clock_ctx);
  return true;
}

}  // namespace asfsim::trace
