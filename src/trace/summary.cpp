#include "trace/summary.hpp"

#include <algorithm>
#include <cstdio>
#include <istream>
#include <ostream>

#include "stats/counters.hpp"
#include "stats/report.hpp"
#include "trace/jsonl.hpp"

namespace asfsim::trace {

namespace {

constexpr std::size_t kTimelineBuckets = 10;

std::string hex_line(Addr line) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(line));
  return buf;
}

}  // namespace

void TraceSummary::add(const TraceEvent& ev) {
  ++total_events;
  ++by_kind[static_cast<std::size_t>(ev.kind)];
  if (total_events == 1 || ev.cycle < first_cycle) first_cycle = ev.cycle;
  if (ev.cycle > last_cycle) last_cycle = ev.cycle;
  if (ev.core != kInvalidCore && ev.core + 1 > ncores) ncores = ev.core + 1;
  if (ev.other != kInvalidCore && ev.other + 1 > ncores) {
    ncores = ev.other + 1;
  }
  switch (ev.kind) {
    case TraceEventKind::kConflict: {
      LineCounts& lc = by_line[ev.line];
      if (ev.is_false) {
        ++lc.false_conflicts;
      } else {
        ++lc.true_conflicts;
      }
      ++by_pair[{ev.other, ev.core}];  // (requester, victim)
      break;
    }
    case TraceEventKind::kAbort:
      ++aborts_by_cause[static_cast<std::size_t>(ev.cause)];
      abort_samples.emplace_back(ev.cycle, ev.cause);
      wasted_cycles += ev.wasted;
      if (ev.core != kInvalidCore && ev.cause != AbortCause::kLockWait) {
        if (ev.core >= consec_aborts.size()) {
          consec_aborts.resize(ev.core + 1, 0);
          max_consec_aborts.resize(ev.core + 1, 0);
        }
        const std::uint32_t streak = ++consec_aborts[ev.core];
        if (streak > max_consec_aborts[ev.core]) {
          max_consec_aborts[ev.core] = streak;
        }
      }
      break;
    case TraceEventKind::kCommit:
    case TraceEventKind::kFallback:
      ++committed_tx;
      ++commit_latency_hist[Stats::log2_bucket(ev.cycle - ev.span_begin,
                                               commit_latency_hist.size())];
      if (ev.core != kInvalidCore && ev.core < consec_aborts.size()) {
        consec_aborts[ev.core] = 0;
      }
      break;
    case TraceEventKind::kPolicy:
      if (ev.loser == ev.other) ++requester_losses;
      break;
    default:
      break;
  }
}

bool summarize_jsonl(std::istream& in, TraceSummary& out, std::string& err) {
  std::string line;
  std::uint64_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    TraceEvent ev;
    if (!from_jsonl(line, ev)) {
      err = "malformed trace event on line " + std::to_string(lineno);
      return false;
    }
    out.add(ev);
  }
  return true;
}

void print_summary(const TraceSummary& s, std::ostream& os, int top_n) {
  os << "events: " << s.total_events << " over cycles [" << s.first_cycle
     << ", " << s.last_cycle << "]\n";
  {
    TextTable t({"Kind", "Count"});
    for (std::size_t k = 0; k < kTraceEventKinds; ++k) {
      t.add_row({to_string(static_cast<TraceEventKind>(k)),
                 std::to_string(s.by_kind[k])});
    }
    t.print(os);
  }

  // Top conflicting lines, by total conflicts then address. The false
  // counts per line are exactly the run's Fig-4 histogram
  // (Stats::false_by_line) — tested in tests/test_trace.cpp.
  os << "\nTop conflicting lines:\n";
  {
    std::vector<std::pair<Addr, TraceSummary::LineCounts>> lines(
        s.by_line.begin(), s.by_line.end());
    std::sort(lines.begin(), lines.end(), [](const auto& a, const auto& b) {
      if (a.second.total() != b.second.total()) {
        return a.second.total() > b.second.total();
      }
      return a.first < b.first;
    });
    if (lines.size() > static_cast<std::size_t>(top_n)) lines.resize(top_n);
    TextTable t({"Line", "Conflicts", "False", "True"});
    for (const auto& [line, lc] : lines) {
      t.add_row({hex_line(line), std::to_string(lc.total()),
                 std::to_string(lc.false_conflicts),
                 std::to_string(lc.true_conflicts)});
    }
    t.print(os);
  }

  os << "\nHottest core pairs (requester -> victim):\n";
  {
    std::vector<std::pair<std::pair<CoreId, CoreId>, std::uint64_t>> pairs(
        s.by_pair.begin(), s.by_pair.end());
    std::sort(pairs.begin(), pairs.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    if (pairs.size() > static_cast<std::size_t>(top_n)) pairs.resize(top_n);
    TextTable t({"Requester", "Victim", "Conflicts"});
    for (const auto& [pair, count] : pairs) {
      t.add_row({std::to_string(pair.first), std::to_string(pair.second),
                 std::to_string(count)});
    }
    t.print(os);
  }

  os << "\nConflict matrix (rows = requester, cols = victim):\n";
  {
    std::vector<std::string> headers{"req\\vic"};
    for (CoreId c = 0; c < s.ncores; ++c) {
      headers.push_back(std::to_string(c));
    }
    TextTable t(headers);
    for (CoreId r = 0; r < s.ncores; ++r) {
      std::vector<std::string> row{std::to_string(r)};
      for (CoreId v = 0; v < s.ncores; ++v) {
        const auto it = s.by_pair.find({r, v});
        row.push_back(std::to_string(it == s.by_pair.end() ? 0 : it->second));
      }
      t.add_row(std::move(row));
    }
    t.print(os);
  }

  os << "\nAbort-cause timeline (" << kTimelineBuckets << " buckets of "
     << (s.last_cycle / kTimelineBuckets + 1) << " cycles):\n";
  {
    const Cycle width = s.last_cycle / kTimelineBuckets + 1;
    std::array<std::array<std::uint64_t, 4>, kTimelineBuckets> buckets{};
    for (const auto& [cycle, cause] : s.abort_samples) {
      std::size_t b = static_cast<std::size_t>(cycle / width);
      if (b >= kTimelineBuckets) b = kTimelineBuckets - 1;
      ++buckets[b][static_cast<std::size_t>(cause)];
    }
    TextTable t({"From cycle", "conflict", "capacity", "user", "lock-wait"});
    for (std::size_t b = 0; b < kTimelineBuckets; ++b) {
      t.add_row({std::to_string(b * width), std::to_string(buckets[b][0]),
                 std::to_string(buckets[b][1]), std::to_string(buckets[b][2]),
                 std::to_string(buckets[b][3])});
    }
    t.print(os);
  }

  os << "\naborts: " << s.by_kind[static_cast<std::size_t>(
                            TraceEventKind::kAbort)]
     << "  commits: "
     << s.by_kind[static_cast<std::size_t>(TraceEventKind::kCommit)]
     << "  wasted cycles in aborted attempts: " << s.wasted_cycles << "\n";

  // Throughput & latency (OLTP reporting; docs/workloads.md): completed
  // transactions per simulated second at the Stats clock rate, plus span
  // percentiles reusing Stats' histogram interpolation.
  const Cycle extent = s.last_cycle - s.first_cycle + 1;
  const double commits_per_s =
      s.total_events == 0
          ? 0.0
          : static_cast<double>(s.committed_tx) * Stats::kSimClockHz /
                static_cast<double>(extent);
  Stats lat;
  lat.tx_latency_hist = s.commit_latency_hist;
  os << "completed tx: " << s.committed_tx << "  simulated throughput: "
     << TextTable::num(commits_per_s, 0) << " commits/s (at "
     << TextTable::num(Stats::kSimClockHz / 1e9, 1) << " GHz)\n";
  os << "commit-span latency percentiles (cycles): p50 "
     << TextTable::num(lat.latency_percentile(0.50), 0) << "  p95 "
     << TextTable::num(lat.latency_percentile(0.95), 0) << "  p99 "
     << TextTable::num(lat.latency_percentile(0.99), 0) << "\n";

  // Forward progress / contention (docs/contention.md): starvation is
  // visible as a long per-core abort streak; the policy/fallback counters
  // show whether a contention policy was active and how often the
  // serialize escalation engaged.
  const std::uint64_t total_aborts =
      s.kind_count(TraceEventKind::kAbort);
  const double aborts_per_tx =
      s.committed_tx == 0 ? 0.0
                          : static_cast<double>(total_aborts) /
                                static_cast<double>(s.committed_tx);
  os << "\nForward progress:\n";
  os << "aborts per committed tx: " << TextTable::num(aborts_per_tx, 2)
     << "  policy decisions: " << s.kind_count(TraceEventKind::kPolicy)
     << " (requester lost " << s.requester_losses << ")"
     << "  fallback acquisitions: "
     << s.kind_count(TraceEventKind::kFallbackAcquired) << "\n";
  {
    TextTable t({"Core", "Max consecutive aborts"});
    for (CoreId c = 0; c < s.ncores; ++c) {
      const std::uint32_t m =
          c < s.max_consec_aborts.size() ? s.max_consec_aborts[c] : 0;
      t.add_row({std::to_string(c), std::to_string(m)});
    }
    t.print(os);
  }
}

}  // namespace asfsim::trace
