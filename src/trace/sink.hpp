// TraceSink: pluggable consumer of the full-timeline event stream, and
// TraceHub: the fan-out point the simulator emits into.
//
// The hub is owned by Machine. It stays empty (and the runtime/memory
// system hold null hub pointers) until the first sink is attached, so
// disabled tracing costs exactly one null-pointer branch per would-be
// event. With sinks attached the hub forwards every event to each sink
// in attach order and interleaves periodic kCounter samples — lazily, at
// interval boundaries crossed by the incoming event stream, so the
// sample cadence is a pure function of the (deterministic) event stream.
#pragma once

#include <cstdint>
#include <vector>

#include "stats/counters.hpp"
#include "trace/event.hpp"

namespace asfsim::trace {

class TraceSink {
 public:
  TraceSink() = default;
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;
  virtual ~TraceSink() = default;

  virtual void on_event(const TraceEvent& ev) = 0;
  /// End of run: flush footers/close framing. Called exactly once.
  virtual void finish(Cycle /*final_cycle*/) {}
};

class TraceHub {
 public:
  static constexpr Cycle kDefaultCounterInterval = 8192;

  explicit TraceHub(const Stats* stats) : stats_(stats) {}

  /// Attach a non-owning sink; events flow to sinks in attach order.
  void add_sink(TraceSink* sink) { sinks_.push_back(sink); }
  [[nodiscard]] bool empty() const { return sinks_.empty(); }

  /// Counter-sample cadence in cycles (0 disables sampling).
  void set_counter_interval(Cycle interval) {
    interval_ = interval;
    next_sample_ = interval;
  }
  [[nodiscard]] Cycle counter_interval() const { return interval_; }

  /// Fan one event out to every sink, emitting a counter sample first
  /// when the event crosses an interval boundary.
  void emit(const TraceEvent& ev);

  /// Final counter sample + sink finish. Idempotent; no-op when empty.
  void finish(Cycle final_cycle);

 private:
  void sample_counters(Cycle at);
  void fan_out(const TraceEvent& ev);

  std::vector<TraceSink*> sinks_;
  const Stats* stats_;
  Cycle interval_ = kDefaultCounterInterval;
  Cycle next_sample_ = kDefaultCounterInterval;
  std::uint32_t live_tx_ = 0;
  bool finished_ = false;
};

}  // namespace asfsim::trace
