// Streaming JSONL trace format: one JSON object per line, one line per
// TraceEvent, written with fixed key order and plain decimal integers so
// a fixed workload+seed produces byte-identical files on every host,
// worker count, and cache state. Round-trippable: from_jsonl parses what
// to_jsonl writes (the asfsim_trace CLI and the determinism tests rely on
// this). Field sets per kind are documented in docs/observability.md.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "trace/sink.hpp"

namespace asfsim::trace {

/// Append `ev` to `out` as one JSONL line (including the trailing '\n').
void to_jsonl(const TraceEvent& ev, std::string& out);

/// Parse one JSONL line (with or without trailing '\n'); returns false on
/// malformed input, leaving `out` unspecified.
[[nodiscard]] bool from_jsonl(std::string_view line, TraceEvent& out);

/// Sink streaming every event as JSONL into `os` (non-owning).
class JsonlSink final : public TraceSink {
 public:
  explicit JsonlSink(std::ostream& os) : os_(os) {}
  void on_event(const TraceEvent& ev) override;
  void finish(Cycle final_cycle) override;

 private:
  std::ostream& os_;
  std::string buf_;
};

}  // namespace asfsim::trace
