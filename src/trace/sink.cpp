#include "trace/sink.hpp"

namespace asfsim::trace {

const char* to_string(TraceEventKind k) {
  switch (k) {
    case TraceEventKind::kBegin: return "begin";
    case TraceEventKind::kCommit: return "commit";
    case TraceEventKind::kAbort: return "abort";
    case TraceEventKind::kConflict: return "conflict";
    case TraceEventKind::kAvoided: return "avoided";
    case TraceEventKind::kFallback: return "fallback";
    case TraceEventKind::kBackoff: return "backoff";
    case TraceEventKind::kCounter: return "counter";
    case TraceEventKind::kSite: return "site";
    case TraceEventKind::kPolicy: return "policy";
    case TraceEventKind::kFallbackAcquired: return "fallback-acquired";
  }
  return "?";
}

void TraceHub::emit(const TraceEvent& ev) {
  if (sinks_.empty()) return;
  // kBackoff is the one future-dated event (timestamped at its end while
  // emitted at its start); sample on the emission cycle to keep the
  // counter cadence monotone with the stream.
  const Cycle now =
      ev.kind == TraceEventKind::kBackoff ? ev.span_begin : ev.cycle;
  if (interval_ != 0 && now >= next_sample_) {
    const Cycle at = now - (now % interval_);
    sample_counters(at);
    next_sample_ = at + interval_;
  }
  switch (ev.kind) {
    case TraceEventKind::kBegin:
      ++live_tx_;
      break;
    case TraceEventKind::kCommit:
    case TraceEventKind::kAbort:
      if (live_tx_ > 0) --live_tx_;
      break;
    default:
      break;
  }
  fan_out(ev);
}

void TraceHub::finish(Cycle final_cycle) {
  if (sinks_.empty() || finished_) return;
  finished_ = true;
  if (interval_ != 0) sample_counters(final_cycle);
  for (TraceSink* s : sinks_) s->finish(final_cycle);
}

void TraceHub::sample_counters(Cycle at) {
  TraceEvent ev;
  ev.kind = TraceEventKind::kCounter;
  ev.cycle = at;
  ev.live_tx = live_tx_;
  ev.commits = stats_->tx_commits;
  ev.aborts = stats_->tx_aborts;
  ev.bus_wait = stats_->bus_wait_cycles;
  fan_out(ev);
}

void TraceHub::fan_out(const TraceEvent& ev) {
  for (TraceSink* s : sinks_) s->on_event(ev);
}

}  // namespace asfsim::trace
