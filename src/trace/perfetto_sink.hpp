// Chrome/Perfetto trace-event JSON exporter.
//
// Emits the classic trace-event format (a {"traceEvents":[...]} object)
// that both chrome://tracing and ui.perfetto.dev load directly:
//   * one named thread track per simulated core ("M" metadata records);
//   * one "X" complete-event span per transaction attempt, colored by
//     outcome (commit / abort / fallback / backoff), carrying retries,
//     footprint and wasted cycles in args;
//   * "i" instant events on the victim's track for conflicts (requester,
//     line, byte masks, WAR/RAW/WAW, false-vs-true) and avoided false
//     conflicts;
//   * "C" counter tracks sampled every K cycles: live_tx, tx_commits,
//     tx_aborts, abort_rate (aborts per interval) and bus_wait_cycles.
// Timestamps are simulated cycles written as microseconds (1 cycle = 1us
// on the viewer's axis). Output is byte-deterministic for a fixed event
// stream. See docs/observability.md.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/sink.hpp"

namespace asfsim::trace {

class PerfettoSink final : public TraceSink {
 public:
  explicit PerfettoSink(std::ostream& os);
  void on_event(const TraceEvent& ev) override;
  void finish(Cycle final_cycle) override;

 private:
  void ensure_core_track(CoreId core);
  void write_record(const std::string& json);

  std::ostream& os_;
  std::vector<bool> core_seen_;
  std::uint64_t prev_aborts_ = 0;  // for the per-interval abort_rate track
  bool first_ = true;
  bool finished_ = false;
};

}  // namespace asfsim::trace
