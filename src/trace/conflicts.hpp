// Conflict forensics: fold a provenance-enabled JSONL trace into the
// per-site / per-line / per-site-pair attribution report the
// `asfsim_trace conflicts` command renders (docs/observability.md,
// "Conflict provenance"). Kept in the library so tests can assert the
// report against the Stats of the run that produced the trace.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "trace/event.hpp"

namespace asfsim::trace {

struct ConflictForensics {
  /// Allocation-site directory, indexed by site id (kSite declarations).
  struct Site {
    std::string name;
    std::uint64_t obj_size = 0;
    std::uint64_t objects = 0;
    std::uint64_t bytes = 0;
  };
  std::vector<Site> sites;

  /// Per victim-site conflict aggregates, split by ConflictType.
  struct SiteAgg {
    std::array<std::uint64_t, 3> false_by_type{};  // WAR, RAW, WAW
    std::array<std::uint64_t, 3> true_by_type{};
    std::uint64_t avoided = 0;  // baseline-would-conflict, sub-block declined
    [[nodiscard]] std::uint64_t false_total() const {
      return false_by_type[0] + false_by_type[1] + false_by_type[2];
    }
    [[nodiscard]] std::uint64_t true_total() const {
      return true_by_type[0] + true_by_type[1] + true_by_type[2];
    }
  };
  std::map<std::uint32_t, SiteAgg> by_site;

  /// Per-line aggregates with a victim sub-block occupancy histogram
  /// (which 1/nsub slices of the line the conflicts actually landed on —
  /// a spread-out histogram under a high false share is the false-sharing
  /// signature).
  struct LineAgg {
    std::uint32_t victim_site = 0;
    std::uint64_t false_conflicts = 0;
    std::uint64_t true_conflicts = 0;
    std::array<std::uint64_t, kLineBytes> sub_hits{};  // by victim_sub
    [[nodiscard]] std::uint64_t total() const {
      return false_conflicts + true_conflicts;
    }
  };
  std::map<Addr, LineAgg> by_line;

  /// (requester site, victim site) -> (false, true) conflict counts.
  std::map<std::pair<std::uint32_t, std::uint32_t>,
           std::pair<std::uint64_t, std::uint64_t>>
      by_pair;

  std::uint64_t conflicts = 0;        // all kConflict events
  std::uint64_t false_conflicts = 0;  // ... with is_false
  std::uint64_t avoided = 0;          // all kAvoided events
  std::uint64_t prov_events = 0;      // conflict/avoided events carrying
                                      // provenance, plus site declarations

  void add(const TraceEvent& ev);

  [[nodiscard]] const std::string& site_name(std::uint32_t id) const;
};

/// Fold a JSONL stream into `out`. On a malformed line, fills `err` and
/// returns false. A well-formed stream with no provenance payload (the run
/// was not executed with --prov) also fails, with a hint in `err`.
[[nodiscard]] bool collect_conflicts_jsonl(std::istream& in,
                                           ConflictForensics& out,
                                           std::string& err);

/// Render the text report: totals, ranked offender sites, hottest lines
/// with the sub-block occupancy heatmap, and the site-pair matrix.
void print_conflicts(const ConflictForensics& f, std::ostream& os, int top_n);

/// Machine-readable dump: three CSV tables (sites, lines, pairs) separated
/// by blank lines, unranked and untruncated.
void print_conflicts_csv(const ConflictForensics& f, std::ostream& os);

}  // namespace asfsim::trace
