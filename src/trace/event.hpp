// TraceEvent: one record in the full-timeline trace stream.
//
// The trace layer widens the legacy five-kind TxTrace ring into a rich
// event vocabulary: transaction spans carry retry counts, read/write-set
// footprints and wasted cycles; conflict instants carry the victim's and
// requester's byte masks; counter samples snapshot run-level rates every
// K cycles. Events are emitted by AsfRuntime/MemorySystem through a
// TraceHub (trace/sink.hpp) and consumed by pluggable sinks — the bounded
// TxTrace ring, the streaming JSONL sink, and the Perfetto exporter.
// See docs/observability.md for the format contract.
#pragma once

#include <cstdint>
#include <string>

#include "core/conflict.hpp"
#include "mem/addr.hpp"
#include "sim/types.hpp"

namespace asfsim::trace {

enum class TraceEventKind : std::uint8_t {
  kBegin = 0,   // transaction attempt starts
  kCommit,      // attempt committed (span: span_begin..cycle)
  kAbort,       // attempt aborted   (span: span_begin..cycle)
  kConflict,    // victim's view of the conflict that doomed it (instant)
  kAvoided,     // finer detector declined a baseline conflict (instant)
  kFallback,    // body completed under the software lock (span)
  kBackoff,     // abort-penalty + backoff stall (span; emitted at start,
                // timestamped at its END: span_begin..cycle)
  kCounter,     // periodic counter sample (live tx, commits, aborts, bus)
  kSite,        // allocation-site declaration (provenance runs only): id,
                // name, object size/count/bytes — emitted once per site at
                // run end so conflict events' site ids are decodable
  kPolicy,      // contention-policy decision (instant; cm-active runs only):
                // which side of a detected conflict lost
  kFallbackAcquired,  // fallback lock acquired — the serialize escalation
                      // engaged (instant; cm-active runs only; span_begin =
                      // spin start)
};

inline constexpr std::size_t kTraceEventKinds = 11;

[[nodiscard]] const char* to_string(TraceEventKind k);

/// One trace record. `cycle` is the event's primary timestamp (span END
/// for the span kinds); unused fields stay zero so serialization is
/// deterministic field-by-field.
struct TraceEvent {
  TraceEventKind kind = TraceEventKind::kBegin;
  CoreId core = kInvalidCore;   // acting core (victim for conflict/avoided)
  CoreId other = kInvalidCore;  // requester for conflict/avoided
  Cycle cycle = 0;
  Cycle span_begin = 0;  // commit/abort/fallback/backoff: span start

  // kAbort
  AbortCause cause = AbortCause::kConflict;
  // kConflict / kAvoided
  ConflictType type = ConflictType::kWAR;
  bool is_false = false;
  Addr line = 0;
  ByteMask probe_mask = 0;
  ByteMask victim_mask = 0;

  // kCommit / kFallback (cumulative over the logical transaction);
  // for kAbort `wasted` is the aborted attempt's own in-tx cycles.
  std::uint32_t retries = 0;
  Cycle wasted = 0;

  // kCommit / kAbort: read/write-set footprint at transaction end.
  std::uint32_t read_lines = 0;
  std::uint32_t write_lines = 0;
  std::uint32_t read_subs = 0;
  std::uint32_t write_subs = 0;

  // kCounter: snapshot (commits/aborts/bus_wait are cumulative).
  std::uint32_t live_tx = 0;
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  Cycle bus_wait = 0;

  // kConflict / kAvoided provenance (docs/observability.md, "Conflict
  // provenance"). Only present — and only serialized — when the run was
  // executed with SimConfig::provenance; site ids are declared by the
  // kSite events at the end of the stream.
  bool has_prov = false;
  std::uint32_t victim_site = 0;
  std::uint64_t victim_obj = 0;
  std::uint32_t victim_sub = 0;  // sub-block index of the victim byte
  std::uint32_t req_site = 0;
  std::uint64_t req_obj = 0;

  // kPolicy: the core that lost the decision (== core when the victim
  // aborted — the usual outcome — or == other when the requester did).
  CoreId loser = kInvalidCore;

  // kSite: allocation-site declaration.
  std::uint32_t site_id = 0;
  std::uint64_t site_obj_size = 0;
  std::uint64_t site_objects = 0;
  std::uint64_t site_bytes = 0;
  std::string site_name;
};

}  // namespace asfsim::trace
