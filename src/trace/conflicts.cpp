#include "trace/conflicts.hpp"

#include <algorithm>
#include <cstdio>
#include <istream>
#include <ostream>

#include "stats/report.hpp"
#include "trace/jsonl.hpp"

namespace asfsim::trace {

namespace {

std::string hex_line(Addr line) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(line));
  return buf;
}

const std::string kUnknownSite = "(site?)";

/// Render one line's sub-block occupancy as a fixed-width heat string:
/// '.' for untouched cells, '1'..'9' scaled against the line's hottest cell.
std::string heat_string(const ConflictForensics::LineAgg& la,
                        std::uint32_t ncells) {
  std::uint64_t max_hits = 0;
  for (std::uint32_t s = 0; s < ncells; ++s) {
    max_hits = std::max(max_hits, la.sub_hits[s]);
  }
  std::string heat(ncells, '.');
  if (max_hits == 0) return heat;
  for (std::uint32_t s = 0; s < ncells; ++s) {
    const std::uint64_t h = la.sub_hits[s];
    if (h == 0) continue;
    heat[s] = static_cast<char>('1' + (8 * (h - 1)) / max_hits);
  }
  return heat;
}

}  // namespace

void ConflictForensics::add(const TraceEvent& ev) {
  switch (ev.kind) {
    case TraceEventKind::kSite: {
      if (ev.site_id >= sites.size()) sites.resize(ev.site_id + 1);
      sites[ev.site_id] = {ev.site_name, ev.site_obj_size, ev.site_objects,
                           ev.site_bytes};
      ++prov_events;
      break;
    }
    case TraceEventKind::kConflict: {
      ++conflicts;
      if (ev.is_false) ++false_conflicts;
      if (!ev.has_prov) break;
      ++prov_events;
      const std::size_t t = static_cast<std::size_t>(ev.type);
      SiteAgg& sa = by_site[ev.victim_site];
      if (ev.is_false) {
        ++sa.false_by_type[t];
      } else {
        ++sa.true_by_type[t];
      }
      LineAgg& la = by_line[ev.line];
      la.victim_site = ev.victim_site;
      if (ev.is_false) {
        ++la.false_conflicts;
      } else {
        ++la.true_conflicts;
      }
      if (ev.victim_sub < la.sub_hits.size()) ++la.sub_hits[ev.victim_sub];
      auto& pc = by_pair[{ev.req_site, ev.victim_site}];
      if (ev.is_false) {
        ++pc.first;
      } else {
        ++pc.second;
      }
      break;
    }
    case TraceEventKind::kAvoided: {
      ++avoided;
      if (!ev.has_prov) break;
      ++prov_events;
      ++by_site[ev.victim_site].avoided;
      break;
    }
    default:
      break;
  }
}

const std::string& ConflictForensics::site_name(std::uint32_t id) const {
  if (id < sites.size() && !sites[id].name.empty()) return sites[id].name;
  return kUnknownSite;
}

bool collect_conflicts_jsonl(std::istream& in, ConflictForensics& out,
                             std::string& err) {
  std::string line;
  std::uint64_t lineno = 0;
  std::uint64_t events = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    TraceEvent ev;
    if (!from_jsonl(line, ev)) {
      err = "malformed trace event on line " + std::to_string(lineno);
      return false;
    }
    ++events;
    out.add(ev);
  }
  if (events == 0) {
    err = "empty trace (no events)";
    return false;
  }
  if (out.prov_events == 0) {
    err = "trace carries no provenance data (re-run with --prov)";
    return false;
  }
  return true;
}

void print_conflicts(const ConflictForensics& f, std::ostream& os, int top_n) {
  os << "conflicts: " << f.conflicts << " (" << f.false_conflicts
     << " false, " << (f.conflicts - f.false_conflicts) << " true)  avoided: "
     << f.avoided << "  sites: " << f.sites.size() << "\n";

  // Ranked offender sites, worst false-conflict source first.
  os << "\nOffender sites (by false conflicts):\n";
  {
    std::vector<std::pair<std::uint32_t, ConflictForensics::SiteAgg>> rows(
        f.by_site.begin(), f.by_site.end());
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
      if (a.second.false_total() != b.second.false_total()) {
        return a.second.false_total() > b.second.false_total();
      }
      if (a.second.true_total() != b.second.true_total()) {
        return a.second.true_total() > b.second.true_total();
      }
      return a.first < b.first;
    });
    if (rows.size() > static_cast<std::size_t>(top_n)) rows.resize(top_n);
    TextTable t({"Site", "Objects", "False", "True", "WAR", "RAW", "WAW",
                 "Avoided"});
    for (const auto& [id, sa] : rows) {
      t.add_row({f.site_name(id),
                 id < f.sites.size() ? std::to_string(f.sites[id].objects)
                                     : std::string("?"),
                 std::to_string(sa.false_total()),
                 std::to_string(sa.true_total()),
                 std::to_string(sa.false_by_type[0] + sa.true_by_type[0]),
                 std::to_string(sa.false_by_type[1] + sa.true_by_type[1]),
                 std::to_string(sa.false_by_type[2] + sa.true_by_type[2]),
                 std::to_string(sa.avoided)});
    }
    t.print(os);
  }

  // Hottest lines with the sub-block occupancy heatmap. The heat width is
  // the report-wide highest victim sub-block index + 1, so all rows align
  // and the width reflects the detector's actual granularity.
  std::uint32_t ncells = 1;
  for (const auto& [line, la] : f.by_line) {
    for (std::uint32_t s = 0; s < la.sub_hits.size(); ++s) {
      if (la.sub_hits[s] != 0 && s + 1 > ncells) ncells = s + 1;
    }
  }
  os << "\nHottest conflicting lines (heat = conflicts per sub-block, "
     << ncells << " cells):\n";
  {
    std::vector<std::pair<Addr, ConflictForensics::LineAgg>> rows(
        f.by_line.begin(), f.by_line.end());
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
      if (a.second.total() != b.second.total()) {
        return a.second.total() > b.second.total();
      }
      return a.first < b.first;
    });
    if (rows.size() > static_cast<std::size_t>(top_n)) rows.resize(top_n);
    TextTable t({"Line", "Site", "False", "True", "Heat"});
    for (const auto& [line, la] : rows) {
      t.add_row({hex_line(line), f.site_name(la.victim_site),
                 std::to_string(la.false_conflicts),
                 std::to_string(la.true_conflicts), heat_string(la, ncells)});
    }
    t.print(os);
  }

  os << "\nSite pairs (requester -> victim):\n";
  {
    std::vector<std::pair<std::pair<std::uint32_t, std::uint32_t>,
                          std::pair<std::uint64_t, std::uint64_t>>>
        rows(f.by_pair.begin(), f.by_pair.end());
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
      const std::uint64_t at = a.second.first + a.second.second;
      const std::uint64_t bt = b.second.first + b.second.second;
      if (at != bt) return at > bt;
      return a.first < b.first;
    });
    if (rows.size() > static_cast<std::size_t>(top_n)) rows.resize(top_n);
    TextTable t({"Requester site", "Victim site", "False", "True"});
    for (const auto& [key, counts] : rows) {
      t.add_row({f.site_name(key.first), f.site_name(key.second),
                 std::to_string(counts.first),
                 std::to_string(counts.second)});
    }
    t.print(os);
  }
}

void print_conflicts_csv(const ConflictForensics& f, std::ostream& os) {
  os << "site,name,obj_size,objects,bytes,false_war,false_raw,false_waw,"
        "true_war,true_raw,true_waw,avoided\n";
  for (const auto& [id, sa] : f.by_site) {
    const ConflictForensics::Site blank{};
    const ConflictForensics::Site& si =
        id < f.sites.size() ? f.sites[id] : blank;
    os << id << ',' << f.site_name(id) << ',' << si.obj_size << ','
       << si.objects << ',' << si.bytes << ',' << sa.false_by_type[0] << ','
       << sa.false_by_type[1] << ',' << sa.false_by_type[2] << ','
       << sa.true_by_type[0] << ',' << sa.true_by_type[1] << ','
       << sa.true_by_type[2] << ',' << sa.avoided << '\n';
  }
  os << "\nline,site,false,true,subs\n";
  for (const auto& [line, la] : f.by_line) {
    os << hex_line(line) << ',' << f.site_name(la.victim_site) << ','
       << la.false_conflicts << ',' << la.true_conflicts << ',';
    bool first = true;
    for (std::uint32_t s = 0; s < la.sub_hits.size(); ++s) {
      if (la.sub_hits[s] == 0) continue;
      if (!first) os << ';';
      os << s << ':' << la.sub_hits[s];
      first = false;
    }
    os << '\n';
  }
  os << "\nreq_site,victim_site,false,true\n";
  for (const auto& [key, counts] : f.by_pair) {
    os << f.site_name(key.first) << ',' << f.site_name(key.second) << ','
       << counts.first << ',' << counts.second << '\n';
  }
}

}  // namespace asfsim::trace
