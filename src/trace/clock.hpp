// Thread-local simulated-clock registration.
//
// Machine::run installs a ScopedSimClock so host-side code with no Machine
// reference — notably sim/log.cpp's ASFSIM_INFO/ASFSIM_TRACE — can stamp
// output with the current simulated cycle while a simulation is running on
// this thread. Thread-local because the experiment runner drives one
// Machine per worker thread concurrently.
#pragma once

#include "sim/types.hpp"

namespace asfsim::trace {

/// Clock thunk: returns the current simulated cycle for `ctx`.
using SimClockFn = Cycle (*)(const void* ctx);

/// RAII guard publishing a simulated-cycle source for this thread. Nests:
/// the previous source is restored on destruction.
class ScopedSimClock {
 public:
  ScopedSimClock(SimClockFn fn, const void* ctx) noexcept;
  ~ScopedSimClock();
  ScopedSimClock(const ScopedSimClock&) = delete;
  ScopedSimClock& operator=(const ScopedSimClock&) = delete;

 private:
  SimClockFn prev_fn_;
  const void* prev_ctx_;
};

/// Current thread's simulated cycle; returns false (leaving `out` alone)
/// when no Machine is running on this thread.
[[nodiscard]] bool current_sim_cycle(Cycle& out) noexcept;

}  // namespace asfsim::trace
