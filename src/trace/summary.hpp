// Trace analysis: aggregate a JSONL event stream into the summaries the
// asfsim_trace CLI prints — top conflicting lines, hottest core pairs, the
// full core×core conflict matrix, and an abort-cause timeline. Kept in the
// library (not the CLI) so tests can assert the summaries against the
// Stats of the run that produced the trace.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "trace/event.hpp"

namespace asfsim::trace {

struct TraceSummary {
  std::uint64_t total_events = 0;
  std::array<std::uint64_t, kTraceEventKinds> by_kind{};
  Cycle first_cycle = 0;
  Cycle last_cycle = 0;

  struct LineCounts {
    std::uint64_t false_conflicts = 0;
    std::uint64_t true_conflicts = 0;
    [[nodiscard]] std::uint64_t total() const {
      return false_conflicts + true_conflicts;
    }
  };
  /// Conflict counts per line address (ordered => deterministic output).
  std::map<Addr, LineCounts> by_line;
  /// Conflict counts per (requester, victim) core pair.
  std::map<std::pair<CoreId, CoreId>, std::uint64_t> by_pair;
  std::uint32_t ncores = 0;  // 1 + highest core id seen

  std::array<std::uint64_t, 4> aborts_by_cause{};  // indexed by AbortCause
  /// Raw (cycle, cause) abort samples; bucketed into the timeline at
  /// print time (the trace's extent is only known once fully read).
  std::vector<std::pair<Cycle, AbortCause>> abort_samples;
  Cycle wasted_cycles = 0;  // summed over abort events

  /// Committed transactions (commit + fallback completions) and their span
  /// durations, log2-bucketed like Stats::tx_latency_hist; feeds the
  /// throughput/latency lines of print_summary (OLTP reporting).
  std::uint64_t committed_tx = 0;
  std::array<std::uint64_t, 32> commit_latency_hist{};

  /// Contention / forward-progress view (docs/contention.md). Per-core max
  /// consecutive aborts are replayed from the event order — lock-wait
  /// aborts neither count nor reset, matching AsfRuntime's karma
  /// accounting — so the section is derivable from ANY trace; the policy
  /// and fallback-acquisition counts are only non-zero on cm-active runs.
  std::vector<std::uint32_t> consec_aborts;      // working counter
  std::vector<std::uint32_t> max_consec_aborts;  // per-core max
  std::uint64_t requester_losses = 0;            // kPolicy with loser==other

  [[nodiscard]] std::uint64_t kind_count(TraceEventKind k) const {
    return by_kind[static_cast<std::size_t>(k)];
  }
  /// Any policy decision or fallback acquisition in the stream? False for
  /// traces from runs without an active contention policy.
  [[nodiscard]] bool has_cm_events() const {
    return kind_count(TraceEventKind::kPolicy) != 0 ||
           kind_count(TraceEventKind::kFallbackAcquired) != 0;
  }

  void add(const TraceEvent& ev);
};

/// Summarize a JSONL stream (one event per line; blank lines skipped).
/// On a malformed line, fills `err` with a diagnostic and returns false.
[[nodiscard]] bool summarize_jsonl(std::istream& in, TraceSummary& out,
                                   std::string& err);

/// Print the CLI report: event counts, top-N conflicting lines, hottest
/// core pairs, the conflict matrix, and the abort-cause timeline.
void print_summary(const TraceSummary& s, std::ostream& os, int top_n);

}  // namespace asfsim::trace
