#include "cm/policy.hpp"

namespace asfsim {
namespace {

class RequesterWinsPolicy final : public ContentionPolicy {
 public:
  CmPolicyKind kind() const override { return CmPolicyKind::kRequesterWins; }
  CmLoser resolve(const CmSide&, const CmSide&) const override {
    return CmLoser::kVictim;
  }
  std::uint64_t stated_abort_bound(std::uint32_t) const override { return 0; }
  std::uint32_t serialize_after() const override { return 0; }
};

class PolitePolicy final : public ContentionPolicy {
 public:
  CmPolicyKind kind() const override { return CmPolicyKind::kPolite; }
  CmLoser resolve(const CmSide& req, const CmSide&) const override {
    // A transactional requester steps aside; a non-transactional access
    // cannot abort, so the victim still loses to it.
    return req.in_tx ? CmLoser::kRequester : CmLoser::kVictim;
  }
  std::uint64_t stated_abort_bound(std::uint32_t) const override { return 0; }
  std::uint32_t serialize_after() const override { return 0; }
};

class TimestampPolicy final : public ContentionPolicy {
 public:
  CmPolicyKind kind() const override { return CmPolicyKind::kTimestamp; }
  CmLoser resolve(const CmSide& req, const CmSide& vic) const override {
    if (!req.in_tx) return CmLoser::kVictim;
    // Oldest (lowest karma-aged start cycle) wins; ties keep the
    // historical requester-wins outcome.
    return req.priority <= vic.priority ? CmLoser::kVictim
                                        : CmLoser::kRequester;
  }
  std::uint64_t stated_abort_bound(std::uint32_t ncores) const override {
    // Oldest-wins plus karma aging means every suffered abort strictly
    // improves a core's rank, so in the worst case it loses roughly once
    // to each other in-flight core before it outranks them all; the +1
    // absorbs a commit-time validation race (committer-wins,
    // docs/contention.md §4) against the freshly promoted oldest reader.
    // Empirically audited by the chaos bound-audit control (total-conflict
    // ledger, classic fallback off): clean worst streaks peak at ncores-1
    // while the kUnfairKarmaReset mutation exceeds this bound on every
    // seed.
    return 1 + std::uint64_t{ncores};
  }
  std::uint32_t serialize_after() const override { return 0; }
};

class SerializePolicy final : public ContentionPolicy {
 public:
  explicit SerializePolicy(std::uint32_t max_retries)
      : max_retries_(max_retries) {}
  CmPolicyKind kind() const override { return CmPolicyKind::kSerialize; }
  CmLoser resolve(const CmSide&, const CmSide&) const override {
    // Resolution itself is requester-wins; the progress floor comes from
    // the serialize_after() escalation in GuestCtx::run_tx.
    return CmLoser::kVictim;
  }
  std::uint64_t stated_abort_bound(std::uint32_t) const override {
    // A logical transaction aborts at most max_retries_ times before the
    // retry loop escalates to the fallback lock, which always commits.
    return max_retries_;
  }
  std::uint32_t serialize_after() const override { return max_retries_; }

 private:
  std::uint32_t max_retries_;
};

}  // namespace

std::unique_ptr<ContentionPolicy> make_policy(const CmConfig& cfg) {
  switch (cfg.policy) {
    case CmPolicyKind::kPolite:
      return std::make_unique<PolitePolicy>();
    case CmPolicyKind::kTimestamp:
      return std::make_unique<TimestampPolicy>();
    case CmPolicyKind::kSerialize:
      return std::make_unique<SerializePolicy>(cfg.max_retries);
    case CmPolicyKind::kRequesterWins:
      break;
  }
  return std::make_unique<RequesterWinsPolicy>();
}

}  // namespace asfsim
