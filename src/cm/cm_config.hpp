// Contention-management configuration (docs/contention.md).
//
// Conflict *detection* (which detector, sub-block granularity) and conflict
// *resolution* (who aborts) are orthogonal axes. This struct keys the
// resolution side: which ContentionPolicy the runtime consults when a
// detector reports a conflict, plus the knobs the policies share. It lives
// below sim/ so both SimConfig and the policy objects can include it without
// a cycle; SimConfig embeds it as `SimConfig::cm` and folds every field into
// the jobspec hash (runner cache key).
#pragma once

#include <cstdint>
#include <string_view>

namespace asfsim {

enum class CmPolicyKind : std::uint8_t {
  // Hard-wired historical behavior: the requesting core's access always
  // dooms the conflicting transaction. Bit-identical to the pre-cm tree
  // (kernel-identity FNV goldens pin this).
  kRequesterWins = 0,
  // Polite: a *transactional* requester aborts itself and retries with
  // backoff, leaving the victim running. Non-transactional requesters
  // still win (they cannot abort).
  kPolite,
  // Oldest-wins by logical-transaction start cycle, with karma carried
  // across retries: every abort a core suffers ages its priority by
  // `karma` cycles, so a repeatedly-victimized transaction eventually
  // outranks any newcomer. Ties resolve requester-wins.
  kTimestamp,
  // Requester-wins resolution plus a guaranteed-termination floor: a
  // transaction that aborts more than `max_retries` times acquires the
  // guest fallback lock and runs irrevocably — even when the classic
  // fallback is disabled (SimConfig::max_tx_retries == 0).
  kSerialize,
};

[[nodiscard]] const char* to_string(CmPolicyKind k);

/// Parses a policy name ("requester-wins", "polite", "timestamp",
/// "serialize"). Returns false on unknown names.
[[nodiscard]] bool parse_cm_policy(std::string_view name, CmPolicyKind& out);

struct CmConfig {
  CmPolicyKind policy = CmPolicyKind::kRequesterWins;
  // Serialize threshold: retries of one logical transaction before the
  // kSerialize policy escalates to the fallback lock. Also the stated
  // consecutive-abort bound the chaos starvation oracle audits.
  // Must be > 0 (SimConfig::validate()).
  std::uint32_t max_retries = 8;
  // Karma weight for kTimestamp: cycles of priority age credited per
  // suffered abort (saturating).
  std::uint32_t karma = 64;
  // Opt-in starvation/fairness accounting: stats-blob v5 section +
  // kPolicy trace events even under requester-wins. Off by default so
  // default-config blobs/traces stay byte-identical to the pre-cm tree.
  bool stats = false;

  /// True when the cm subsystem changes anything observable (non-default
  /// policy or opt-in accounting) — gates trace emission.
  [[nodiscard]] bool active() const {
    return policy != CmPolicyKind::kRequesterWins || stats;
  }
};

}  // namespace asfsim
