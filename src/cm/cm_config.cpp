#include "cm/cm_config.hpp"

namespace asfsim {

const char* to_string(CmPolicyKind k) {
  switch (k) {
    case CmPolicyKind::kRequesterWins:
      return "requester-wins";
    case CmPolicyKind::kPolite:
      return "polite";
    case CmPolicyKind::kTimestamp:
      return "timestamp";
    case CmPolicyKind::kSerialize:
      return "serialize";
  }
  return "?";
}

bool parse_cm_policy(std::string_view name, CmPolicyKind& out) {
  if (name == "requester-wins") {
    out = CmPolicyKind::kRequesterWins;
  } else if (name == "polite" || name == "requester-loses") {
    out = CmPolicyKind::kPolite;
  } else if (name == "timestamp") {
    out = CmPolicyKind::kTimestamp;
  } else if (name == "serialize") {
    out = CmPolicyKind::kSerialize;
  } else {
    return false;
  }
  return true;
}

}  // namespace asfsim
