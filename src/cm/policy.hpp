// ContentionPolicy — pluggable conflict *resolution*, orthogonal to the
// conflict *detectors* under core/ (docs/contention.md).
//
// The runtime (htm/asf_runtime) owns one policy object per Machine and
// consults it from ITxControl::resolve_conflict() whenever the memory
// system reports a conflict between a requesting access and a running
// transaction. The policy only ranks the two sides; all bookkeeping
// (karma, starvation accounting, dooming the loser) stays in the runtime
// so the decision itself is a pure function — trivially deterministic and
// unit-testable without a Machine.
//
// Forward-progress contract (audited by the chaos starvation oracle):
// a policy whose stated_abort_bound() is non-zero promises that no core
// ever suffers more than that many *consecutive* non-lock-wait aborts;
// ChaosVerdict::kStarvation flags any run that breaks the promise.
#pragma once

#include <cstdint>
#include <memory>

#include "cm/cm_config.hpp"
#include "sim/types.hpp"

namespace asfsim {

/// One side of a conflict as the policy sees it. `priority` is a
/// policy-defined age in cycles — lower is older is stronger. `in_tx`
/// marks whether this side can abort at all (a non-transactional
/// requester can never lose: there is no transaction to retry).
struct CmSide {
  CoreId core = 0;
  bool in_tx = false;
  Cycle priority = 0;
};

enum class CmLoser : std::uint8_t { kVictim = 0, kRequester };

class ContentionPolicy {
 public:
  virtual ~ContentionPolicy() = default;

  [[nodiscard]] virtual CmPolicyKind kind() const = 0;

  /// Decide who aborts. Called only when the victim is a live (active,
  /// not-yet-doomed) transaction; the requester may or may not be in a
  /// transaction. Must be a pure function of the two sides.
  [[nodiscard]] virtual CmLoser resolve(const CmSide& requester,
                                        const CmSide& victim) const = 0;

  /// Stated forward-progress bound: the maximum consecutive non-lock-wait
  /// aborts any core should ever suffer under this policy, or 0 when the
  /// policy makes no such promise (requester-wins, polite). The chaos
  /// starvation oracle audits this bound on every run.
  [[nodiscard]] virtual std::uint64_t stated_abort_bound(
      std::uint32_t ncores) const = 0;

  /// Retry count after which run_tx must escalate to the fallback lock
  /// and run irrevocably (0 = this policy never forces serialization).
  [[nodiscard]] virtual std::uint32_t serialize_after() const = 0;
};

/// Factory keyed by CmConfig::policy. Never returns null.
[[nodiscard]] std::unique_ptr<ContentionPolicy> make_policy(const CmConfig& cfg);

}  // namespace asfsim
