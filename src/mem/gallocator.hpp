// Guest heap allocator over the simulated physical address space.
//
// Deliberately malloc-like: objects are packed with small (8-byte by
// default) alignment and NO cache-line padding, because unpadded allocation
// is precisely what produces the false sharing the paper studies. Workloads
// that want padded allocations (for controlled experiments) can ask for
// line alignment explicitly.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "mem/addr.hpp"
#include "sim/types.hpp"

namespace asfsim {

class GAllocator {
 public:
  /// Guest heap starts away from address 0 so null-ish guest pointers trap.
  explicit GAllocator(Addr base = 0x10000, Addr limit = Addr{1} << 40)
      : next_(base), limit_(limit) {}

  /// Per-core pool allocation (the STAMP per-thread allocator): cores draw
  /// from private 4KB arenas, so nodes allocated by *different* cores never
  /// share a cache line, while nodes from one core stay malloc-packed.
  Addr alloc_local(CoreId core, std::uint64_t size, std::uint64_t align = 8) {
    if (core >= arenas_.size()) arenas_.resize(core + 1);
    Arena& a = arenas_[core];
    Addr p = (a.next + align - 1) & ~(align - 1);
    if (p + size > a.end) {
      const std::uint64_t chunk = size > kArenaBytes ? size : kArenaBytes;
      a.next = alloc(chunk, kLineBytes);
      a.end = a.next + chunk;
      p = (a.next + align - 1) & ~(align - 1);
    }
    a.next = p + size;
    return p;
  }

  /// Allocate `size` bytes with the given alignment (power of two).
  Addr alloc(std::uint64_t size, std::uint64_t align = 8) {
    if (size == 0) size = 1;
    if (align == 0 || (align & (align - 1)) != 0) {
      throw std::invalid_argument("GAllocator: alignment must be a power of 2");
    }
    next_ = (next_ + align - 1) & ~(align - 1);
    const Addr a = next_;
    next_ += size;
    if (next_ > limit_) throw std::runtime_error("GAllocator: out of memory");
    ++allocs_;
    return a;
  }

  /// Allocate whole cache lines (line-aligned).
  Addr alloc_lines(std::uint64_t nlines) {
    return alloc(nlines * kLineBytes, kLineBytes);
  }

  [[nodiscard]] Addr brk() const { return next_; }
  [[nodiscard]] std::uint64_t allocations() const { return allocs_; }

 private:
  static constexpr std::uint64_t kArenaBytes = 4096;
  struct Arena {
    Addr next = 0;
    Addr end = 0;
  };
  Addr next_;
  Addr limit_;
  std::uint64_t allocs_ = 0;
  std::vector<Arena> arenas_;
};

}  // namespace asfsim
