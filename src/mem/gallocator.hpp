// Guest heap allocator over the simulated physical address space.
//
// Deliberately malloc-like: objects are packed with small (8-byte by
// default) alignment and NO cache-line padding, because unpadded allocation
// is precisely what produces the false sharing the paper studies. Workloads
// that want padded allocations (for controlled experiments) can ask for
// line alignment explicitly.
//
// Conflict provenance (docs/observability.md): when a prov::SiteRegistry is
// armed, allocations can carry a site id and the allocator records each
// tagged range as an extent, so a conflict address can later be resolved
// back to (site, object index). With no registry armed every site-tagged
// path degenerates to the untagged one behind a single null check.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "mem/addr.hpp"
#include "prov/site_registry.hpp"
#include "sim/types.hpp"

namespace asfsim {

class GAllocator {
 public:
  /// Guest heap starts away from address 0 so null-ish guest pointers trap.
  explicit GAllocator(Addr base = 0x10000, Addr limit = Addr{1} << 40)
      : next_(base), limit_(limit) {}

  /// Arm conflict provenance: subsequent site-tagged allocations record
  /// extents into `sites` (owned by Machine; null disarms).
  void set_site_registry(prov::SiteRegistry* sites) { sites_ = sites; }

  /// Declare an allocation site (idempotent per name). Returns
  /// prov::kUntaggedSite when provenance is off, so callers can tag
  /// unconditionally at zero bookkeeping cost.
  prov::SiteId register_site(std::string_view name, std::uint64_t obj_size) {
    return sites_ != nullptr ? sites_->register_site(name, obj_size)
                             : prov::kUntaggedSite;
  }

  /// Per-core pool allocation (the STAMP per-thread allocator): cores draw
  /// from private 4KB arenas, so nodes allocated by *different* cores never
  /// share a cache line, while nodes from one core stay malloc-packed.
  Addr alloc_local(CoreId core, std::uint64_t size, std::uint64_t align = 8,
                   prov::SiteId site = prov::kUntaggedSite) {
    if (core >= arenas_.size()) arenas_.resize(core + 1);
    Arena& a = arenas_[core];
    Addr p = (a.next + align - 1) & ~(align - 1);
    if (p + size > a.end) {
      const std::uint64_t chunk = size > kArenaBytes ? size : kArenaBytes;
      // Arena refills stay untagged: the carved object below is the extent,
      // tagging the whole chunk too would double-cover its addresses.
      a.next = alloc(chunk, kLineBytes);
      a.end = a.next + chunk;
      p = (a.next + align - 1) & ~(align - 1);
    }
    a.next = p + size;
    if (sites_ != nullptr && site != prov::kUntaggedSite) {
      sites_->on_alloc(p, size, site);
    }
    return p;
  }

  /// Allocate `size` bytes with the given alignment (power of two).
  Addr alloc(std::uint64_t size, std::uint64_t align = 8,
             prov::SiteId site = prov::kUntaggedSite) {
    if (size == 0) size = 1;
    if (align == 0 || (align & (align - 1)) != 0) {
      throw std::invalid_argument("GAllocator: alignment must be a power of 2");
    }
    next_ = (next_ + align - 1) & ~(align - 1);
    const Addr a = next_;
    next_ += size;
    if (next_ > limit_) throw std::runtime_error("GAllocator: out of memory");
    ++allocs_;
    if (sites_ != nullptr && site != prov::kUntaggedSite) {
      sites_->on_alloc(a, size, site);
    }
    return a;
  }

  /// Allocate whole cache lines (line-aligned).
  Addr alloc_lines(std::uint64_t nlines,
                   prov::SiteId site = prov::kUntaggedSite) {
    return alloc(nlines * kLineBytes, kLineBytes, site);
  }

  [[nodiscard]] Addr brk() const { return next_; }
  [[nodiscard]] std::uint64_t allocations() const { return allocs_; }
  [[nodiscard]] const prov::SiteRegistry* site_registry() const {
    return sites_;
  }

 private:
  static constexpr std::uint64_t kArenaBytes = 4096;
  struct Arena {
    Addr next = 0;
    Addr end = 0;
  };
  Addr next_;
  Addr limit_;
  std::uint64_t allocs_ = 0;
  std::vector<Arena> arenas_;
  prov::SiteRegistry* sites_ = nullptr;
};

}  // namespace asfsim
