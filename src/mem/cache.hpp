// Set-associative tag array with true-LRU replacement.
//
// One TagArray instance models one cache level of one core. L1 entries carry
// MOESI state; L2/L3 reuse the array as presence/timing filters with a simple
// valid state. Data never lives here — functional data flows through the
// BackingStore plus per-transaction overlays — so the array is purely a
// timing/occupancy model, which is all the paper's results depend on.
#pragma once

#include <cstdint>
#include <vector>

#include "mem/addr.hpp"
#include "sim/config.hpp"
#include "sim/types.hpp"

namespace asfsim {

/// MOESI coherence states; kInvalid doubles as "empty way".
enum class Moesi : std::uint8_t {
  kInvalid = 0,
  kShared,
  kExclusive,
  kOwned,
  kModified,
};

[[nodiscard]] const char* to_string(Moesi s);

class TagArray {
 public:
  struct Entry {
    Addr line = 0;                 // line-aligned address
    Moesi state = Moesi::kInvalid;
    bool retained = false;  // invalid, but still holding speculative info
    std::uint64_t lru = 0;  // larger = more recently used
  };

  explicit TagArray(const CacheLevelConfig& cfg);

  [[nodiscard]] std::uint32_t num_sets() const { return sets_; }
  [[nodiscard]] std::uint32_t ways() const { return ways_; }

  /// Find the entry for `line` (valid or retained), or nullptr.
  [[nodiscard]] Entry* find(Addr line);
  [[nodiscard]] const Entry* find(Addr line) const;

  /// Mark `line` most-recently-used (no-op if absent).
  void touch(Addr line);

  /// Pick a victim way in `line`'s set. `pinned(victim_line)` marks ways that
  /// must not be evicted (lines holding speculative info). Preference order:
  /// empty way, then LRU among unpinned. Returns nullptr when every way is
  /// pinned, which the caller turns into an ASF capacity abort.
  template <typename PinnedFn>
  Entry* find_victim(Addr line, PinnedFn&& pinned) {
    Entry* set = set_of(line);
    for (std::uint32_t w = 0; w < ways_; ++w) {
      if (set[w].state == Moesi::kInvalid && !set[w].retained) return &set[w];
    }
    Entry* best = nullptr;
    for (std::uint32_t w = 0; w < ways_; ++w) {
      if (pinned(set[w].line)) continue;
      if (!best || set[w].lru < best->lru) best = &set[w];
    }
    return best;
  }

  /// Install `line` into `victim` (obtained from find_victim) with `state`.
  void fill(Entry* victim, Addr line, Moesi state);

  /// Drop `line` entirely (eviction / plain invalidation without retention).
  void drop(Addr line);

  [[nodiscard]] std::uint64_t fills() const { return fills_; }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }

 private:
  Entry* set_of(Addr line);
  const Entry* set_of(Addr line) const;

  std::uint32_t sets_;
  std::uint32_t ways_;
  std::vector<Entry> entries_;  // sets_ * ways_, set-major
  std::uint64_t tick_ = 0;
  std::uint64_t fills_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace asfsim
