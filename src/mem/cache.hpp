// Set-associative tag array with true-LRU replacement.
//
// One TagArray instance models one cache level of one core. L1 entries carry
// MOESI state; L2/L3 reuse the array as presence/timing filters with a simple
// valid state. Data never lives here — functional data flows through the
// BackingStore plus per-transaction overlays — so the array is purely a
// timing/occupancy model, which is all the paper's results depend on.
//
// Layout is SoA (docs/performance.md): the set-probe loop walks a dense
// vector of line tags — one host cache line covers a whole set — and the
// per-way MOESI/retained/spec-summary metadata lives in a separate packed
// byte vector that only hit processing touches. An empty way holds the
// kEmptyTag sentinel (never a legal line-aligned address), so find() is a
// pure tag compare with no per-way validity test: tag occupancy and the
// "valid or retained" predicate are the same thing by construction.
//
// Ways are addressed by Slot (a stable index into the SoA vectors). drop()
// clears a slot in place and never shifts its neighbours, so a Slot obtained
// from find() stays pointing at the same way across drops of other lines.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "mem/addr.hpp"
#include "sim/config.hpp"
#include "sim/types.hpp"

namespace asfsim {

/// MOESI coherence states; kInvalid doubles as "empty way".
enum class Moesi : std::uint8_t {
  kInvalid = 0,
  kShared,
  kExclusive,
  kOwned,
  kModified,
};

[[nodiscard]] const char* to_string(Moesi s);

class TagArray {
 public:
  using Slot = std::uint32_t;
  static constexpr Slot kNoSlot = ~Slot{0};
  /// Sentinel tag for an empty way; low line-offset bits set, so it can
  /// never equal a line-aligned address.
  static constexpr Addr kEmptyTag = ~Addr{0};

  explicit TagArray(const CacheLevelConfig& cfg);

  [[nodiscard]] std::uint32_t num_sets() const { return sets_; }
  [[nodiscard]] std::uint32_t ways() const { return ways_; }
  [[nodiscard]] std::uint32_t num_slots() const {
    return static_cast<std::uint32_t>(tags_.size());
  }

  /// Find the slot holding `line` (valid or retained), or kNoSlot. The set
  /// index and tag are computed once; the loop is a pure compare over the
  /// dense tag vector.
  [[nodiscard]] Slot find(Addr line) const {
    const std::uint32_t base = set_base(line);
    const Addr* tag = tags_.data() + base;
    for (std::uint32_t w = 0; w < ways_; ++w) {
      if (tag[w] == line) return base + w;
    }
    return kNoSlot;
  }

  // ---- per-slot accessors -------------------------------------------------
  [[nodiscard]] Addr line(Slot s) const { return tags_[s]; }
  [[nodiscard]] Moesi state(Slot s) const {
    return static_cast<Moesi>(meta_[s] & kStateMask);
  }
  [[nodiscard]] bool valid(Slot s) const {
    return (meta_[s] & kStateMask) != 0;
  }
  [[nodiscard]] bool retained(Slot s) const {
    return (meta_[s] & kRetainedBit) != 0;
  }
  /// Per-line speculative summary: the coherence layer keeps this bit equal
  /// to "this core has live speculative metadata for this line", giving
  /// probes an early-out before the metadata lookup and sub-block walk.
  [[nodiscard]] bool spec_flag(Slot s) const {
    return (meta_[s] & kSpecBit) != 0;
  }

  /// Re-state a slot (revalidation, MOESI downgrades/upgrades). Clears the
  /// retained flag — a valid line holds its info in the line itself — and
  /// keeps the speculative summary. `st` must not be kInvalid: emptying a
  /// way goes through drop()/drop_slot() so the tag invariant holds.
  void set_state(Slot s, Moesi st) {
    assert(st != Moesi::kInvalid);
    meta_[s] = static_cast<std::uint8_t>(
        (meta_[s] & kSpecBit) | static_cast<std::uint8_t>(st));
  }

  /// Invalidate a slot while retaining its speculative info inside the line
  /// (paper §IV-B): state becomes kInvalid, the retained flag is set, the
  /// tag and speculative summary stay.
  void retain_invalid(Slot s) {
    meta_[s] = static_cast<std::uint8_t>((meta_[s] & kSpecBit) | kRetainedBit);
  }

  void set_spec_flag(Slot s, bool v) {
    meta_[s] = static_cast<std::uint8_t>(v ? (meta_[s] | kSpecBit)
                                           : (meta_[s] & ~kSpecBit));
  }

  /// Mark a slot most-recently-used.
  void touch_slot(Slot s) { lru_[s] = ++tick_; }
  /// Mark `line` most-recently-used (no-op if absent).
  void touch(Addr line) {
    const Slot s = find(line);
    if (s != kNoSlot) touch_slot(s);
  }

  /// Pick a victim way in `line`'s set. `pinned(victim_line)` marks ways that
  /// must not be evicted (lines holding speculative info). Preference order:
  /// empty way, then LRU among unpinned. Returns kNoSlot when every way is
  /// pinned, which the caller turns into an ASF capacity abort.
  template <typename PinnedFn>
  [[nodiscard]] Slot find_victim(Addr line, PinnedFn&& pinned) const {
    const std::uint32_t base = set_base(line);
    for (std::uint32_t w = 0; w < ways_; ++w) {
      if (tags_[base + w] == kEmptyTag) return base + w;
    }
    Slot best = kNoSlot;
    for (std::uint32_t w = 0; w < ways_; ++w) {
      const Slot s = base + w;
      if (pinned(tags_[s])) continue;
      if (best == kNoSlot || lru_[s] < lru_[best]) best = s;
    }
    return best;
  }

  /// find_victim specialized for the probe-based detectors' pin predicate:
  /// a way is pinned iff its speculative-summary flag is set (the flag
  /// mirrors metadata existence exactly — audited in both directions by
  /// MemorySystem::check_invariants). Reads one packed byte per way instead
  /// of calling back into a metadata hash lookup per occupied way.
  [[nodiscard]] Slot find_victim_unflagged(Addr line) const {
    const std::uint32_t base = set_base(line);
    for (std::uint32_t w = 0; w < ways_; ++w) {
      if (tags_[base + w] == kEmptyTag) return base + w;
    }
    Slot best = kNoSlot;
    for (std::uint32_t w = 0; w < ways_; ++w) {
      const Slot s = base + w;
      if ((meta_[s] & kSpecBit) != 0) continue;
      if (best == kNoSlot || lru_[s] < lru_[best]) best = s;
    }
    return best;
  }

  /// Install `line` into `victim` (obtained from find_victim) with `state`.
  void fill(Slot victim, Addr line, Moesi state);

  /// Drop `line` entirely (eviction / plain invalidation without retention).
  void drop(Addr line) {
    const Slot s = find(line);
    if (s != kNoSlot) drop_slot(s);
  }
  void drop_slot(Slot s) {
    tags_[s] = kEmptyTag;
    meta_[s] = 0;
    lru_[s] = 0;
  }

  [[nodiscard]] std::uint64_t fills() const { return fills_; }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }

 private:
  // meta_ byte layout: bits 0..2 MOESI state, bit 3 retained, bit 4 spec
  // summary.
  static constexpr std::uint8_t kStateMask = 0x07;
  static constexpr std::uint8_t kRetainedBit = 0x08;
  static constexpr std::uint8_t kSpecBit = 0x10;

  [[nodiscard]] std::uint32_t set_base(Addr line) const {
    return static_cast<std::uint32_t>((line >> kLineShift) & (sets_ - 1)) *
           ways_;
  }

  std::uint32_t sets_;
  std::uint32_t ways_;
  std::vector<Addr> tags_;          // sets_ * ways_, set-major; kEmptyTag=free
  std::vector<std::uint8_t> meta_;  // packed state/retained/spec per way
  std::vector<std::uint64_t> lru_;  // larger = more recently used
  std::uint64_t tick_ = 0;
  std::uint64_t fills_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace asfsim
