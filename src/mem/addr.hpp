// Address math: cache-line and sub-block decomposition, byte masks.
//
// The whole library fixes the cache-line size at 64 bytes (the paper's
// configuration, Table II). A 64-bit mask then describes any set of bytes
// within one line, which makes conflict-overlap checks single AND
// instructions. Sub-block masks (up to 16 sub-blocks per line) quantize byte
// masks to the sub-block granularity used by the speculative sub-blocking
// detector.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>

#include "sim/types.hpp"

namespace asfsim {

inline constexpr std::uint32_t kLineBytes = 64;
inline constexpr std::uint32_t kLineShift = 6;
inline constexpr std::uint32_t kMaxSubBlocks = 16;

/// Mask of bytes within one line; bit i = byte i.
using ByteMask = std::uint64_t;
/// Mask of sub-blocks within one line; bit i = sub-block i (<= 16 bits used).
using SubBlockMask = std::uint16_t;

[[nodiscard]] constexpr Addr line_of(Addr a) { return a & ~Addr{kLineBytes - 1}; }
[[nodiscard]] constexpr std::uint32_t line_offset(Addr a) {
  return static_cast<std::uint32_t>(a & (kLineBytes - 1));
}

/// Byte mask for an access of `size` bytes at byte offset `off` in a line.
/// The access must not cross the line boundary.
[[nodiscard]] constexpr ByteMask byte_mask(std::uint32_t off, std::uint32_t size) {
  assert(size >= 1 && off + size <= kLineBytes);
  return (size >= 64 ? ~ByteMask{0} : ((ByteMask{1} << size) - 1)) << off;
}

[[nodiscard]] constexpr ByteMask byte_mask_of(Addr a, std::uint32_t size) {
  return byte_mask(line_offset(a), size);
}

namespace detail {

/// Interleave table for 16-sub-block quantization: bit j of the input lands
/// on bit 2j of the output, leaving the odd bits for the other operand.
inline constexpr auto kBitSpread = [] {
  std::array<std::uint16_t, 256> t{};
  for (std::uint32_t b = 0; b < 256; ++b) {
    std::uint16_t v = 0;
    for (std::uint32_t j = 0; j < 8; ++j) {
      if (b & (1u << j)) v = static_cast<std::uint16_t>(v | (1u << (2 * j)));
    }
    t[b] = v;
  }
  return t;
}();

/// Gather bit 0 of each of the eight bytes of `m` into one byte (classic
/// 0x0102... lattice multiply; collision-free on the 0x0101 mask).
[[nodiscard]] constexpr std::uint32_t gather_byte_lsbs(ByteMask m) {
  return static_cast<std::uint32_t>(
      ((m & 0x0101010101010101ULL) * 0x0102040810204080ULL) >> 56);
}

/// OR-fold each 8-byte group of `m` into its group LSB, then gather. The
/// folding shifts (4, 2, 1) are smaller than the group width, so bit 0 of
/// each byte receives only bits of its own byte.
[[nodiscard]] constexpr std::uint32_t or_fold_bytes(ByteMask m) {
  m |= m >> 4;
  m |= m >> 2;
  m |= m >> 1;
  return gather_byte_lsbs(m);
}

}  // namespace detail

/// Quantize a byte mask to `nsub` sub-blocks (nsub in {1,2,4,8,16}).
/// A sub-block bit is set iff any byte of that sub-block is set.
///
/// Branchless per sub-block (docs/performance.md): each case ORs whole
/// groups down to one bit and gathers with a multiply instead of looping
/// nsub times — this runs on every transactional access (up to three
/// quantizations per access) and in every probe check. tests/test_addr.cpp
/// proves equivalence with the looped reference for every nsub.
[[nodiscard]] constexpr SubBlockMask quantize(ByteMask bytes, std::uint32_t nsub) {
  assert(nsub >= 1 && nsub <= kMaxSubBlocks && (nsub & (nsub - 1)) == 0);
  switch (nsub) {
    case 1:
      return bytes != 0 ? 1 : 0;
    case 2:
      return static_cast<SubBlockMask>(
          ((bytes & 0xffffffffULL) != 0 ? 1 : 0) |
          ((bytes >> 32) != 0 ? 2 : 0));
    case 4:
      return static_cast<SubBlockMask>(
          ((bytes & 0xffffULL) != 0 ? 1 : 0) |
          (((bytes >> 16) & 0xffffULL) != 0 ? 2 : 0) |
          (((bytes >> 32) & 0xffffULL) != 0 ? 4 : 0) |
          ((bytes >> 48) != 0 ? 8 : 0));
    case 8:
      return static_cast<SubBlockMask>(detail::or_fold_bytes(bytes));
    default: {  // 16: 4-byte groups = nibble LSBs; gather even/odd separately
      ByteMask m = bytes;
      m |= m >> 2;
      m |= m >> 1;
      // Bit 0 of each nibble now says "this 4-byte group is touched". Even
      // nibbles (sub-blocks 0,2,..,14) sit at byte LSBs and gather directly;
      // odd nibbles after a 4-bit shift. A single gather constant for all 16
      // nibbles has multiply collisions, hence the split + interleave.
      const std::uint32_t even = detail::gather_byte_lsbs(m);
      const std::uint32_t odd = detail::gather_byte_lsbs(m >> 4);
      return static_cast<SubBlockMask>(detail::kBitSpread[even] |
                                       (detail::kBitSpread[odd] << 1));
    }
  }
}

/// Expand a sub-block mask back to the byte mask it covers.
[[nodiscard]] constexpr ByteMask expand(SubBlockMask subs, std::uint32_t nsub) {
  const std::uint32_t sub_bytes = kLineBytes / nsub;
  ByteMask out = 0;
  for (std::uint32_t i = 0; i < nsub; ++i) {
    if (subs & (1u << i)) out |= byte_mask(i * sub_bytes, sub_bytes);
  }
  return out;
}

/// Index of the sub-block containing byte offset `off`.
[[nodiscard]] constexpr std::uint32_t subblock_index(std::uint32_t off,
                                                     std::uint32_t nsub) {
  return off / (kLineBytes / nsub);
}

}  // namespace asfsim
