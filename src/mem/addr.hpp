// Address math: cache-line and sub-block decomposition, byte masks.
//
// The whole library fixes the cache-line size at 64 bytes (the paper's
// configuration, Table II). A 64-bit mask then describes any set of bytes
// within one line, which makes conflict-overlap checks single AND
// instructions. Sub-block masks (up to 16 sub-blocks per line) quantize byte
// masks to the sub-block granularity used by the speculative sub-blocking
// detector.
#pragma once

#include <cassert>
#include <cstdint>

#include "sim/types.hpp"

namespace asfsim {

inline constexpr std::uint32_t kLineBytes = 64;
inline constexpr std::uint32_t kLineShift = 6;
inline constexpr std::uint32_t kMaxSubBlocks = 16;

/// Mask of bytes within one line; bit i = byte i.
using ByteMask = std::uint64_t;
/// Mask of sub-blocks within one line; bit i = sub-block i (<= 16 bits used).
using SubBlockMask = std::uint16_t;

[[nodiscard]] constexpr Addr line_of(Addr a) { return a & ~Addr{kLineBytes - 1}; }
[[nodiscard]] constexpr std::uint32_t line_offset(Addr a) {
  return static_cast<std::uint32_t>(a & (kLineBytes - 1));
}

/// Byte mask for an access of `size` bytes at byte offset `off` in a line.
/// The access must not cross the line boundary.
[[nodiscard]] constexpr ByteMask byte_mask(std::uint32_t off, std::uint32_t size) {
  assert(size >= 1 && off + size <= kLineBytes);
  return (size >= 64 ? ~ByteMask{0} : ((ByteMask{1} << size) - 1)) << off;
}

[[nodiscard]] constexpr ByteMask byte_mask_of(Addr a, std::uint32_t size) {
  return byte_mask(line_offset(a), size);
}

/// Quantize a byte mask to `nsub` sub-blocks (nsub in {1,2,4,8,16}).
/// A sub-block bit is set iff any byte of that sub-block is set.
[[nodiscard]] constexpr SubBlockMask quantize(ByteMask bytes, std::uint32_t nsub) {
  assert(nsub >= 1 && nsub <= kMaxSubBlocks && (nsub & (nsub - 1)) == 0);
  const std::uint32_t sub_bytes = kLineBytes / nsub;
  SubBlockMask out = 0;
  for (std::uint32_t i = 0; i < nsub; ++i) {
    const ByteMask sub = byte_mask(i * sub_bytes, sub_bytes);
    if (bytes & sub) out |= static_cast<SubBlockMask>(1u << i);
  }
  return out;
}

/// Expand a sub-block mask back to the byte mask it covers.
[[nodiscard]] constexpr ByteMask expand(SubBlockMask subs, std::uint32_t nsub) {
  const std::uint32_t sub_bytes = kLineBytes / nsub;
  ByteMask out = 0;
  for (std::uint32_t i = 0; i < nsub; ++i) {
    if (subs & (1u << i)) out |= byte_mask(i * sub_bytes, sub_bytes);
  }
  return out;
}

/// Index of the sub-block containing byte offset `off`.
[[nodiscard]] constexpr std::uint32_t subblock_index(std::uint32_t off,
                                                     std::uint32_t nsub) {
  return off / (kLineBytes / nsub);
}

}  // namespace asfsim
