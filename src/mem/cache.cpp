#include "mem/cache.hpp"

#include <stdexcept>

namespace asfsim {

const char* to_string(Moesi s) {
  switch (s) {
    case Moesi::kInvalid: return "I";
    case Moesi::kShared: return "S";
    case Moesi::kExclusive: return "E";
    case Moesi::kOwned: return "O";
    case Moesi::kModified: return "M";
  }
  return "?";
}

TagArray::TagArray(const CacheLevelConfig& cfg)
    : sets_(cfg.num_sets()),
      ways_(cfg.ways),
      tags_(static_cast<std::size_t>(sets_) * ways_, kEmptyTag),
      meta_(tags_.size(), 0),
      lru_(tags_.size(), 0) {
  if (cfg.line_bytes != kLineBytes) {
    throw std::invalid_argument("TagArray: line size must be 64 bytes");
  }
  if (sets_ == 0 || (sets_ & (sets_ - 1)) != 0) {
    throw std::invalid_argument("TagArray: number of sets must be a power of 2");
  }
}

void TagArray::fill(Slot victim, Addr line, Moesi state) {
  assert(victim != kNoSlot);
  assert(state != Moesi::kInvalid);
  if (tags_[victim] != kEmptyTag) ++evictions_;
  tags_[victim] = line;
  meta_[victim] = static_cast<std::uint8_t>(state);  // retained/spec cleared
  lru_[victim] = ++tick_;
  ++fills_;
}

}  // namespace asfsim
