#include "mem/cache.hpp"

#include <cassert>
#include <stdexcept>

namespace asfsim {

const char* to_string(Moesi s) {
  switch (s) {
    case Moesi::kInvalid: return "I";
    case Moesi::kShared: return "S";
    case Moesi::kExclusive: return "E";
    case Moesi::kOwned: return "O";
    case Moesi::kModified: return "M";
  }
  return "?";
}

TagArray::TagArray(const CacheLevelConfig& cfg)
    : sets_(cfg.num_sets()), ways_(cfg.ways), entries_(sets_ * ways_) {
  if (cfg.line_bytes != kLineBytes) {
    throw std::invalid_argument("TagArray: line size must be 64 bytes");
  }
  if (sets_ == 0 || (sets_ & (sets_ - 1)) != 0) {
    throw std::invalid_argument("TagArray: number of sets must be a power of 2");
  }
}

TagArray::Entry* TagArray::set_of(Addr line) {
  const std::uint32_t idx =
      static_cast<std::uint32_t>((line >> kLineShift) & (sets_ - 1));
  return &entries_[idx * ways_];
}

const TagArray::Entry* TagArray::set_of(Addr line) const {
  const std::uint32_t idx =
      static_cast<std::uint32_t>((line >> kLineShift) & (sets_ - 1));
  return &entries_[idx * ways_];
}

TagArray::Entry* TagArray::find(Addr line) {
  Entry* set = set_of(line);
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if ((set[w].state != Moesi::kInvalid || set[w].retained) &&
        set[w].line == line) {
      return &set[w];
    }
  }
  return nullptr;
}

const TagArray::Entry* TagArray::find(Addr line) const {
  return const_cast<TagArray*>(this)->find(line);
}

void TagArray::touch(Addr line) {
  if (Entry* e = find(line)) e->lru = ++tick_;
}

void TagArray::fill(Entry* victim, Addr line, Moesi state) {
  assert(victim != nullptr);
  if (victim->state != Moesi::kInvalid || victim->retained) ++evictions_;
  victim->line = line;
  victim->state = state;
  victim->retained = false;
  victim->lru = ++tick_;
  ++fills_;
}

void TagArray::drop(Addr line) {
  if (Entry* e = find(line)) {
    e->state = Moesi::kInvalid;
    e->retained = false;
    e->line = 0;
    e->lru = 0;
  }
}

}  // namespace asfsim
