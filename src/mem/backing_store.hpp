// Sparse simulated physical memory.
//
// The backing store always holds *committed* data: non-transactional stores
// write it directly, transactional stores are buffered in the per-transaction
// write overlay (htm/asf_runtime) and applied here only at commit. This is
// what makes the sub-blocking piggy-back/dirty path naturally return pre-
// transaction values for speculatively-written sub-blocks (DESIGN.md §6.3).
#pragma once

#include <array>
#include <cstdint>
#include <memory>

#include "sim/addr_map.hpp"
#include "sim/types.hpp"

namespace asfsim {

class BackingStore {
 public:
  static constexpr std::uint32_t kPageBytes = 4096;

  /// Read `size` (1..8) bytes at `a`, little-endian, zero-fill for untouched
  /// memory. The access must not cross a page boundary (callers are aligned).
  [[nodiscard]] std::uint64_t read(Addr a, std::uint32_t size) const;

  /// Write the low `size` bytes of `v` at `a`.
  void write(Addr a, std::uint32_t size, std::uint64_t v);

  [[nodiscard]] std::size_t pages_touched() const { return pages_.size(); }

 private:
  using Page = std::array<std::uint8_t, kPageBytes>;
  const Page* find_page(Addr a) const;
  Page& page_for(Addr a);
  AddrMap<std::unique_ptr<Page>> pages_;
  // One-entry memo: guest access streams hit the same page repeatedly (the
  // gang-commit writes a line byte-by-byte), so remembering the last page
  // short-circuits most map lookups. Pages are never freed and live behind
  // unique_ptr, so the cached pointer cannot dangle.
  mutable Addr memo_page_no_ = ~Addr{0};
  mutable Page* memo_page_ = nullptr;
};

}  // namespace asfsim
