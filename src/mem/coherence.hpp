// MemorySystem: the simulated cache hierarchy, MOESI snooping coherence,
// and the point where conflict detection happens.
//
// Timing model (DESIGN.md §2): the whole coherence transaction for an access
// is resolved atomically at issue time and a load-to-use latency is charged
// based on where the data came from (L1 / remote L1 / private L2 / private
// L3 / memory, per paper Table II). Functional data never flows through the
// caches — the BackingStore plus per-transaction write overlays are the
// ground truth — so caches are pure timing/occupancy models, which is all
// the paper's (relative) results depend on.
//
// Speculative metadata: one SpecState per (core, line) with an active
// transaction, owned here, checked by the pluggable ConflictDetector on
// every incoming probe — for valid lines and for invalidated lines whose
// speculative info was retained (paper §IV-B). Dirty sub-block marks (paper
// §IV-C) persist independently of transaction lifetime until refetch.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/detector.hpp"
#include "htm/tx_control.hpp"
#include "mem/cache.hpp"
#include "prov/collector.hpp"
#include "sim/addr_map.hpp"
#include "sim/config.hpp"
#include "stats/counters.hpp"

namespace asfsim {

class Kernel;
class FaultPlan;

namespace trace {
class TraceHub;
}  // namespace trace

/// Read/write-set footprint of one core's current transaction: distinct
/// lines touched and (architectural, detector-quantized) sub-blocks set.
struct TxFootprint {
  std::uint32_t read_lines = 0;
  std::uint32_t write_lines = 0;
  std::uint32_t read_subs = 0;
  std::uint32_t write_subs = 0;
};

/// Where a miss was served from (for stats and latency).
enum class DataSource : std::uint8_t {
  kL1 = 0,
  kRemoteL1,
  kL2,
  kL3,
  kMemory,
};

struct AccessResult {
  Cycle latency = 0;
  bool capacity_abort = false;  // requester's own tx cannot keep its
                                // speculative lines in the L1
  bool spurious_abort = false;  // injected fault: abort for no architectural
                                // reason (real ASF reserves the right)
  bool requester_lost = false;  // the contention policy ruled the REQUESTER
                                // the loser: the access was nacked (no fill,
                                // no speculative bookkeeping) and the
                                // requester must abort its own transaction
  DataSource source = DataSource::kL1;
};

class MemorySystem {
 public:
  MemorySystem(Kernel& kernel, const SimConfig& cfg, Stats& stats);

  void set_tx_control(ITxControl* txctl) { txctl_ = txctl; }
  void set_detector(ConflictDetector* det) {
    detector_ = det;
    // Cache the detector's policy facts: they are immutable per detector,
    // and the per-access paths below would otherwise pay a virtual call for
    // each of them on every single access (docs/performance.md).
    nsub_ = det != nullptr ? det->nsub() : 1;
    oracle_ = det != nullptr && det->global_oracle();
    dirty_handling_ = det != nullptr && det->dirty_handling();
  }
  /// Attach the trace hub (null while tracing is disabled; the only cost
  /// then is one null check on the avoided-conflict path).
  void set_trace_hub(trace::TraceHub* hub) { hub_ = hub; }
  /// Attach the fault plan (null while injection is disabled; the only cost
  /// then is one null check per transactional access / probe broadcast).
  void set_fault_plan(FaultPlan* plan) { fault_ = plan; }
  /// Attach the conflict-provenance collector (null unless
  /// SimConfig::provenance). Only consulted on the avoided-false-conflict
  /// path — detected conflicts are attributed at the doom() hook.
  void set_provenance(prov::ProvCollector* prov) { prov_ = prov; }
  [[nodiscard]] ConflictDetector& detector() const { return *detector_; }
  [[nodiscard]] const SimConfig& config() const { return cfg_; }

  /// Perform one aligned access (size 1..8, not crossing a line). Resolves
  /// coherence, runs conflict detection, updates speculative metadata, and
  /// returns the latency to charge. Does NOT move data (see file comment).
  AccessResult access(CoreId core, Addr addr, std::uint32_t size,
                      bool is_write, bool is_tx);

  /// Would this access need a probe broadcast (L1 miss, upgrade, or a
  /// Dirty-forced refetch)? Used by the delayed-probe timing mode to decide
  /// whether to stall before issuing. Read-only.
  [[nodiscard]] bool would_broadcast(CoreId core, Addr addr,
                                     std::uint32_t size, bool is_write,
                                     bool is_tx) const;

  /// Commit-time read-set validation (DPTM-style soundness net): a committing
  /// writer checks each committed line's written bytes against other active
  /// transactions' speculative byte masks and dooms true-overlap victims.
  /// This closes the silent-store window that line-invalidation retention
  /// opens (a writer holding M writes into a retained remote read set with no
  /// probe; see DESIGN.md §6). No-op for baseline (it never retains) and for
  /// the oracle (which already checks every access).
  void validate_readers_at_commit(CoreId committer, Addr line,
                                  ByteMask written);

  /// Transaction end (commit or abort): clear core's speculative metadata,
  /// drop speculatively-written lines on abort, unpin everything.
  /// Dirty marks on OTHER cores' lines are left alone (paper §IV-D3).
  void clear_spec(CoreId core, bool discard_written_lines);

  // ---- introspection (tests, Fig 7 walkthrough) -------------------------
  [[nodiscard]] const SpecState* spec_state(CoreId core, Addr line) const;
  [[nodiscard]] SubBlockMask dirty_marks(CoreId core, Addr line) const;
  [[nodiscard]] Moesi l1_state(CoreId core, Addr line) const;
  /// Paper Table I view of one sub-block of a core's line.
  [[nodiscard]] SubBlockState subblock_state(CoreId core, Addr line,
                                             std::uint32_t sub) const;
  [[nodiscard]] std::uint64_t spec_lines(CoreId core) const {
    return spec_meta_[core].size();
  }
  /// Footprint of `core`'s live speculative metadata. Callers that need
  /// it at transaction end (trace records, Stats histograms) must query
  /// BEFORE clear_spec discards the metadata.
  [[nodiscard]] TxFootprint tx_footprint(CoreId core) const;
  [[nodiscard]] Cycle bus_busy_until() const { return bus_free_at_; }

  /// Audit the global coherence/metadata invariants; returns an empty string
  /// when everything holds, else a description of the first violation:
  ///   * at most one core holds a line in M or E;
  ///   * an M/E holder excludes every other valid copy;
  ///   * at most one O owner per line;
  ///   * retained (invalid-with-info) entries are backed by live metadata;
  ///   * every speculative-metadata line is resident (valid or retained);
  ///   * byte masks and architectural sub-block bits agree.
  [[nodiscard]] std::string check_invariants() const;

 private:
  struct ProbeOutcome {
    bool remote_owner = false;    // some remote L1 can supply the data
    bool requester_lost = false;  // a victim outranked the requester
                                  // (ContentionPolicy): access nacked
  };

  /// Probe all other cores: conflict checks + MOESI state changes.
  ProbeOutcome probe_remotes(CoreId requester, Addr line, ByteMask mask,
                             bool invalidating, SubBlockMask* piggyback);

  /// Fill `line` into `core`'s L1. Returns the slot now holding the line,
  /// or TagArray::kNoSlot on capacity abort (every way pinned).
  TagArray::Slot fill_l1(CoreId core, Addr line, Moesi state);

  /// `slot` is the requester's resident L1 slot for `line` (access() always
  /// has it in hand — hit, upgrade, or fresh fill — so re-finding it here
  /// would be pure waste).
  void record_spec_access(CoreId core, TagArray::Slot slot, Addr line,
                          ByteMask mask, bool is_write);
  /// Returns true when the contention policy ruled the requester the loser.
  bool oracle_check(CoreId requester, Addr line, ByteMask mask, bool is_write);
  [[nodiscard]] bool line_pinned(CoreId core, Addr line) const;

  /// Capacity-pressure fault: evict the core's lowest-addressed speculative
  /// line from its whole private hierarchy. Returns false when the core has
  /// no speculative lines (nothing to evict).
  bool evict_speculative_line(CoreId core);

  Kernel& kernel_;
  const SimConfig cfg_;
  Stats& stats_;
  ITxControl* txctl_ = nullptr;
  ConflictDetector* detector_ = nullptr;
  // Cached detector facts (see set_detector); read on every access.
  std::uint32_t nsub_ = 1;
  bool oracle_ = false;
  bool dirty_handling_ = false;
  trace::TraceHub* hub_ = nullptr;
  FaultPlan* fault_ = nullptr;
  prov::ProvCollector* prov_ = nullptr;
  const ProtocolMutation mutation_;  // from cfg_.fault (chaos harness)

  /// Serialize a probe broadcast on the snoop bus: returns the queuing
  /// delay (cycles the requester stalls behind earlier broadcasts).
  Cycle bus_acquire();

  /// Set/clear `core`'s bit in the L1 residency directory (below). Every
  /// L1 occupancy change must go through these to keep the directory exact.
  void dir_add(CoreId core, Addr line) {
    l1_dir_[line] |= std::uint64_t{1} << core;
  }
  void dir_remove(CoreId core, Addr line) {
    const auto it = l1_dir_.find(line);
    if (it == l1_dir_.end()) return;
    it->second &= ~(std::uint64_t{1} << core);
    if (it->second == 0) l1_dir_.erase(line);
  }

  std::vector<TagArray> l1_, l2_, l3_;  // one per core (private hierarchy)
  /// Snoop-filter directory: line -> bitmask of cores whose L1 tag array
  /// holds the line (valid or invalid-but-retained — i.e. tag occupancy).
  /// Probe broadcasts and commit-time reader validation visit only holder
  /// cores: for probe-based detectors both the MOESI effects and the
  /// speculative-conflict gate require tag occupancy in the probed core
  /// (the metadata-residency invariant, audited in check_invariants), so
  /// skipping non-holders is outcome-identical. Oracle detectors bypass
  /// the filter — their metadata deliberately survives eviction.
  AddrMap<std::uint64_t> l1_dir_;
  Cycle bus_free_at_ = 0;  // snoop bus busy-until cycle
  // Speculative metadata for the core's current transaction, keyed by line.
  mutable std::vector<AddrMap<SpecState>> spec_meta_;
  // Persistent Dirty sub-block marks, keyed by line.
  std::vector<AddrMap<SubBlockMask>> dirty_marks_;
  // MUTATION kStalePiggybackMask only: per-core one-entry buffer holding the
  // previous fill's piggybacked S-WR set (the "stale response" being reused).
  std::vector<SubBlockMask> stale_pb_;
};

}  // namespace asfsim
