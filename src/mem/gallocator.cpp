// GAllocator is header-only; this TU exists to anchor the module.
#include "mem/gallocator.hpp"
