#include "mem/coherence.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "core/classifier.hpp"
#include "fault/plan.hpp"
#include "sim/kernel.hpp"
#include "trace/sink.hpp"

namespace asfsim {

MemorySystem::MemorySystem(Kernel& kernel, const SimConfig& cfg, Stats& stats)
    : kernel_(kernel), cfg_(cfg), stats_(stats), mutation_(cfg.fault.mutation) {
  if (cfg_.ncores > 64) {
    throw std::invalid_argument(
        "MemorySystem: ncores > 64 (L1 residency directory is a 64-bit mask)");
  }
  for (std::uint32_t c = 0; c < cfg_.ncores; ++c) {
    l1_.emplace_back(cfg_.l1);
    l2_.emplace_back(cfg_.l2);
    l3_.emplace_back(cfg_.l3);
  }
  spec_meta_.resize(cfg_.ncores);
  dirty_marks_.resize(cfg_.ncores);
  stale_pb_.assign(cfg_.ncores, 0);
}

bool MemorySystem::line_pinned(CoreId core, Addr line) const {
  return spec_meta_[core].find(line) != spec_meta_[core].end();
}

const SpecState* MemorySystem::spec_state(CoreId core, Addr line) const {
  auto it = spec_meta_[core].find(line);
  return it == spec_meta_[core].end() ? nullptr : &it->second;
}

SubBlockMask MemorySystem::dirty_marks(CoreId core, Addr line) const {
  auto it = dirty_marks_[core].find(line);
  return it == dirty_marks_[core].end() ? SubBlockMask{0} : it->second;
}

Moesi MemorySystem::l1_state(CoreId core, Addr line) const {
  const TagArray::Slot s = l1_[core].find(line);
  return s == TagArray::kNoSlot ? Moesi::kInvalid : l1_[core].state(s);
}

SubBlockState MemorySystem::subblock_state(CoreId core, Addr line,
                                           std::uint32_t sub) const {
  // Paper Table I view: Dirty marks win over Non-speculative; S-RD/S-WR come
  // from the transaction's architectural bits.
  if (const SpecState* m = spec_state(core, line)) {
    const SubBlockState s = m->bits.state(sub);
    if (s != SubBlockState::kNonSpec) return s;
  }
  if (dirty_marks(core, line) & (1u << sub)) return SubBlockState::kDirty;
  return SubBlockState::kNonSpec;
}

void MemorySystem::record_spec_access(CoreId core, TagArray::Slot slot,
                                      Addr line, ByteMask mask,
                                      bool is_write) {
  SpecState& m = spec_meta_[core][line];
  SubBlockMask q = quantize(mask, nsub_);
  // MUTATION kWrongSubblockIndexMath: commit the architectural bits under a
  // rotated sub-block index (classic off-by-one in index math) while the
  // byte-exact masks stay correct — the mask/bit-agreement invariant in
  // check_invariants() kills it.
  if (mutation_ == ProtocolMutation::kWrongSubblockIndexMath) {
    const std::uint32_t n = nsub_;
    if (n > 1) {
      q = static_cast<SubBlockMask>(((q << 1) | (q >> (n - 1))) &
                                    ((SubBlockMask{1} << n) - 1));
    }
  }
  if (is_write) {
    // MUTATION kSkipWrittenMask: set the architectural S-WR bits but "forget"
    // the byte-exact write mask — the mask/bit-agreement invariant kills it.
    if (mutation_ != ProtocolMutation::kSkipWrittenMask) {
      m.write_bytes |= mask;
    }
  } else {
    m.read_bytes |= mask;
  }
  // Word-wide kTxRead/kTxWrite over all touched sub-blocks (a read of an
  // S-WR sub-block leaves it S-WR — LUT row 0b11).
  m.bits.apply_tx(q, is_write);
  // Keep the L1 speculative-summary bit in sync with metadata existence so
  // incoming probes can skip the metadata lookup for untouched lines. The
  // line is resident at `slot`: access() fills it before recording and
  // passes the slot it already holds.
  assert(l1_[core].line(slot) == line);
  l1_[core].set_spec_flag(slot, true);
}

TxFootprint MemorySystem::tx_footprint(CoreId core) const {
  TxFootprint fp;
  const std::uint32_t nsub = nsub_;
  // Pure sum over disjoint per-line state; every visit order yields the
  // same totals.
  // asfsim-lint: allow(unordered-iteration)
  for (const auto& [line, meta] : spec_meta_[core]) {
    if (meta.read_bytes != 0) {
      ++fp.read_lines;
      fp.read_subs += static_cast<std::uint32_t>(
          std::popcount(quantize(meta.read_bytes, nsub)));
    }
    if (meta.write_bytes != 0) {
      ++fp.write_lines;
      fp.write_subs += static_cast<std::uint32_t>(
          std::popcount(quantize(meta.write_bytes, nsub)));
    }
  }
  return fp;
}

Cycle MemorySystem::bus_acquire() {
  if (cfg_.bus_occupancy == 0) return 0;
  const Cycle now = kernel_.now();
  const Cycle start = bus_free_at_ > now ? bus_free_at_ : now;
  bus_free_at_ = start + cfg_.bus_occupancy;
  stats_.bus_wait_cycles += start - now;
  return start - now;
}

MemorySystem::ProbeOutcome MemorySystem::probe_remotes(CoreId requester,
                                                       Addr line,
                                                       ByteMask mask,
                                                       bool invalidating,
                                                       SubBlockMask* piggyback) {
  ProbeOutcome out;
  ++stats_.probes_sent;
  const bool oracle = oracle_;

  // Snoop filter: for probe-based detectors, a core without the line in its
  // L1 tag array can neither conflict (the spec gate below requires a
  // resident slot) nor react in MOESI terms — visit holders only. The
  // oracle keeps the full broadcast: its metadata outlives residency.
  std::uint64_t holders = ~std::uint64_t{0};
  if (!oracle) {
    const auto dit = l1_dir_.find(line);
    holders = dit == l1_dir_.end() ? 0 : dit->second;
    holders &= ~(std::uint64_t{1} << requester);
    if (holders == 0) return out;  // no remote copy anywhere
  }

  for (CoreId o = 0; o < cfg_.ncores; ++o) {
    if (o == requester) continue;
    if ((holders & (std::uint64_t{1} << o)) == 0) continue;
    TagArray& tl1 = l1_[o];
    TagArray::Slot slot = tl1.find(line);

    // --- conflict detection against o's speculative state -----------------
    // Early-outs before the metadata hash lookup: a core with no metadata at
    // all, or (for probe-based detectors) no speculative-summary bit on the
    // resident line, cannot be a victim — metadata residency guarantees the
    // bit is authoritative. The global oracle bypasses the gate: its
    // metadata deliberately survives invalidation and eviction, and the
    // avoided-false accounting below needs the lookup even when no resident
    // line exists.
    bool retain = false;
    bool doomed = false;
    const bool may_hold_spec =
        !spec_meta_[o].empty() &&
        (oracle || (slot != TagArray::kNoSlot && tl1.spec_flag(slot)));
    if (may_hold_spec && txctl_ && txctl_->in_tx(o)) {
      const auto it = spec_meta_[o].find(line);
      const SpecState* mp = it == spec_meta_[o].end() ? nullptr : &it->second;
      if (mp != nullptr) {
        const SpecState& meta = *mp;
        const ProbeCheck pc = detector_->check_probe(meta, mask, invalidating);
        const bool truly = true_conflict(meta, mask, invalidating);
        if (pc.conflict) {
          ConflictRecord rec;
          rec.requester = requester;
          rec.victim = o;
          rec.line = line;
          rec.probe_bytes = mask;
          rec.victim_bytes = invalidating
                                 ? (meta.read_bytes | meta.write_bytes)
                                 : meta.write_bytes;
          rec.invalidating = invalidating;
          const Classification cls =
              classify_conflict(meta, mask, invalidating);
          rec.is_false = cls.is_false;
          rec.type = cls.type;
          rec.cycle = kernel_.now();
          stats_.on_conflict(rec);
          // Contention policy (docs/contention.md): under the default
          // requester-wins this dooms o exactly like the historical direct
          // doom() call. Other policies may rule the REQUESTER the loser:
          // the probe is then nacked — no MOESI effect here or at any
          // later core — and the outcome propagates up so the requester
          // self-aborts instead of completing the access.
          if (txctl_->resolve_conflict(o, rec)) {
            out.requester_lost = true;
            return out;
          }
          doomed = true;  // requester won: o was doomed (clear_spec ran)
        } else {
          // This detector declined a conflict baseline ASF would have
          // signaled (and, for the oracle, that the oracle will not signal
          // either).
          if (baseline_would_conflict(meta, invalidating) &&
              !(oracle && truly)) {
            stats_.on_avoided_false_conflict();
            const ByteMask victim_bytes =
                invalidating ? (meta.read_bytes | meta.write_bytes)
                             : meta.write_bytes;
            prov::ProvCollector::Attribution at;
            if (prov_ != nullptr) {
              at = prov_->on_avoided(line, mask, victim_bytes);
            }
            if (hub_ != nullptr) {
              const Classification cls =
                  classify_conflict(meta, mask, invalidating);
              trace::TraceEvent ev;
              ev.kind = trace::TraceEventKind::kAvoided;
              ev.core = o;
              ev.other = requester;
              ev.cycle = kernel_.now();
              ev.line = line;
              ev.type = cls.type;
              ev.is_false = cls.is_false;
              ev.probe_mask = mask;
              ev.victim_mask = victim_bytes;
              if (prov_ != nullptr) {
                ev.has_prov = true;
                ev.victim_site = at.victim_site;
                ev.victim_obj = at.victim_obj;
                ev.victim_sub = at.victim_sub;
                ev.req_site = at.req_site;
                ev.req_obj = at.req_obj;
              }
              hub_->emit(ev);
            }
          }
          if (pc.piggyback != 0 && piggyback != nullptr) {
            *piggyback |= pc.piggyback;
            ++stats_.piggyback_messages;
          }
          retain = pc.retain_spec_info;
          // MUTATION kForgetInvalidatedSpecinfo: drop the victim's
          // speculative info (and its metadata, so no structural audit can
          // see the hole) instead of retaining it inside the invalidated
          // line (§IV-B). Only the serializability replay catches the
          // missed late conflict.
          if (retain &&
              mutation_ == ProtocolMutation::kForgetInvalidatedSpecinfo) {
            retain = false;
            spec_meta_[o].erase(line);
            if (slot != TagArray::kNoSlot) tl1.set_spec_flag(slot, false);
          }
        }
      }
    }

    // --- MOESI state handling ---------------------------------------------
    // A doom may have dropped o's lines (clear_spec); re-find then. Drops
    // never move other slots, so the cached slot is otherwise still good.
    if (doomed) slot = tl1.find(line);
    if (slot != TagArray::kNoSlot && tl1.valid(slot)) {
      out.remote_owner = true;  // any valid remote copy can supply (c2c)
      if (invalidating) {
        if (retain) {
          tl1.retain_invalid(slot);  // speculative info stays inside the line
        } else {
          tl1.drop_slot(slot);
          dirty_marks_[o].erase(line);
          dir_remove(o, line);
        }
        l2_[o].drop(line);
        l3_[o].drop(line);
      } else {
        const Moesi st = tl1.state(slot);
        if (st == Moesi::kModified) tl1.set_state(slot, Moesi::kOwned);
        if (st == Moesi::kExclusive) tl1.set_state(slot, Moesi::kShared);
      }
    }
  }
  return out;
}

bool MemorySystem::evict_speculative_line(CoreId core) {
  // Deterministic victim choice: the lowest-addressed speculative line
  // (spec_meta_ iteration order is hash-order, which varies across library
  // implementations — never use it for victim selection).
  Addr victim = ~Addr{0};
  // Min-reduce over the keys is order-insensitive; the comment above is
  // exactly why the victim is chosen this way.
  // asfsim-lint: allow(unordered-iteration)
  for (const auto& [line, meta] : spec_meta_[core]) {
    if (line < victim) victim = line;
  }
  if (victim == ~Addr{0}) return false;
  if (const TagArray::Slot s = l1_[core].find(victim);
      s != TagArray::kNoSlot) {
    l1_[core].drop_slot(s);
    dir_remove(core, victim);
  }
  l2_[core].drop(victim);
  l3_[core].drop(victim);
  dirty_marks_[core].erase(victim);
  // The entry dies with the imminent capacity abort; erase it now so the
  // metadata-residency invariant holds at every audit point.
  spec_meta_[core].erase(victim);
  return true;
}

TagArray::Slot MemorySystem::fill_l1(CoreId core, Addr line, Moesi state) {
  TagArray& t = l1_[core];
  // A line can already be present as an invalid-but-retained entry (paper
  // §IV-B); refetching must revalidate that entry, never duplicate the tag.
  if (const TagArray::Slot s = t.find(line); s != TagArray::kNoSlot) {
    t.set_state(s, state);
    t.touch_slot(s);
    return s;
  }
  // Pinned = "holds live speculative metadata". For probe-based detectors
  // the L1 speculative-summary flag IS that predicate (both directions are
  // audited in check_invariants), so victim search reads the flag instead of
  // paying a metadata hash lookup per occupied way. The oracle's metadata
  // survives eviction/refetch (flag lost on refill), so it keeps the map
  // lookup.
  const TagArray::Slot victim =
      oracle_
          ? t.find_victim(line, [&](Addr vl) { return line_pinned(core, vl); })
          : t.find_victim_unflagged(line);
  if (victim == TagArray::kNoSlot) {
    return TagArray::kNoSlot;  // every way pinned: capacity abort
  }
  if (t.line(victim) != TagArray::kEmptyTag) {
    dirty_marks_[core].erase(t.line(victim));
    dir_remove(core, t.line(victim));
  }
  t.fill(victim, line, state);
  dir_add(core, line);
  return victim;
}

bool MemorySystem::oracle_check(CoreId requester, Addr line, ByteMask mask,
                                bool is_write) {
  for (CoreId o = 0; o < cfg_.ncores; ++o) {
    if (o == requester || spec_meta_[o].empty()) continue;
    auto it = spec_meta_[o].find(line);
    if (it == spec_meta_[o].end() || txctl_ == nullptr || !txctl_->in_tx(o)) {
      continue;
    }
    const SpecState& meta = it->second;
    if (!true_conflict(meta, mask, is_write)) continue;
    ConflictRecord rec;
    rec.requester = requester;
    rec.victim = o;
    rec.line = line;
    rec.probe_bytes = mask;
    rec.victim_bytes =
        is_write ? (meta.read_bytes | meta.write_bytes) : meta.write_bytes;
    rec.invalidating = is_write;
    const Classification cls = classify_conflict(meta, mask, is_write);
    rec.is_false = cls.is_false;  // always false==false: oracle finds true only
    rec.type = cls.type;
    rec.cycle = kernel_.now();
    stats_.on_conflict(rec);
    // Same policy hook as probe_remotes: a losing requester stops checking
    // (it is about to self-abort; its freshly-recorded speculative state
    // dies with it in clear_spec).
    if (txctl_->resolve_conflict(o, rec)) return true;
  }
  return false;
}

bool MemorySystem::would_broadcast(CoreId core, Addr addr, std::uint32_t size,
                                   bool is_write, bool is_tx) const {
  const Addr line = line_of(addr);
  const TagArray& t = l1_[core];
  const TagArray::Slot s = t.find(line);
  const bool valid = s != TagArray::kNoSlot && t.valid(s);
  if (!valid) return true;  // miss (or retained-invalid): probes
  if (is_write) {
    return t.state(s) != Moesi::kModified && t.state(s) != Moesi::kExclusive;
  }
  // dirty_hit is identically false unless the detector does dirty handling,
  // and trivially false with no marks — both gates checked before the
  // lookup + virtual call.
  return is_tx && dirty_handling_ && !dirty_marks_[core].empty() &&
         detector_->dirty_hit(dirty_marks(core, line), byte_mask_of(addr, size));
}

AccessResult MemorySystem::access(CoreId core, Addr addr, std::uint32_t size,
                                  bool is_write, bool is_tx) {
  assert(detector_ != nullptr && txctl_ != nullptr);
  assert(size >= 1 && size <= 8);
  assert(addr % size == 0 && "guest accesses must be naturally aligned");
  const Addr line = line_of(addr);
  const ByteMask mask = byte_mask_of(addr, size);

  ++stats_.accesses;
  if (is_tx) {
    ++stats_.tx_accesses;
    stats_.on_tx_access(line_offset(addr));
  }

  AccessResult r;
  if (fault_ != nullptr && is_tx) {
    // Capacity-pressure fault: one of the requester's own speculative lines
    // is pushed out, which ASF surfaces as a capacity abort.
    if (!spec_meta_[core].empty() && fault_->forced_eviction(core) &&
        evict_speculative_line(core)) {
      r.capacity_abort = true;
      r.latency = cfg_.l1.latency;
      return r;
    }
    // Spurious abort: the access dooms its own transaction for no
    // architectural reason (ASF explicitly permits this).
    if (fault_->spurious_abort(core)) {
      r.spurious_abort = true;
      r.latency = cfg_.l1.latency;
      return r;
    }
  }
  TagArray& l1 = l1_[core];
  TagArray::Slot slot = l1.find(line);
  const bool valid = slot != TagArray::kNoSlot && l1.valid(slot);

  auto source_latency = [&](bool remote_owner) -> Cycle {
    if (remote_owner) {
      ++stats_.c2c_transfers;
      r.source = DataSource::kRemoteL1;
      return cfg_.cache2cache_latency;
    }
    const auto unpinned = [](Addr) { return false; };
    if (const auto s2 = l2_[core].find(line); s2 != TagArray::kNoSlot) {
      l2_[core].touch_slot(s2);
      ++stats_.l2_hits;
      r.source = DataSource::kL2;
      return cfg_.l2.latency;
    }
    if (const auto s3 = l3_[core].find(line); s3 != TagArray::kNoSlot) {
      l3_[core].touch_slot(s3);
      ++stats_.l3_hits;
      r.source = DataSource::kL3;
      // promote into L2 (private, inclusive-ish)
      if (const auto v = l2_[core].find_victim(line, unpinned);
          v != TagArray::kNoSlot) {
        l2_[core].fill(v, line, Moesi::kShared);
      }
      return cfg_.l3.latency;
    }
    ++stats_.mem_fetches;
    r.source = DataSource::kMemory;
    if (const auto v = l3_[core].find_victim(line, unpinned);
        v != TagArray::kNoSlot) {
      l3_[core].fill(v, line, Moesi::kShared);
    }
    if (const auto v = l2_[core].find_victim(line, unpinned);
        v != TagArray::kNoSlot) {
      l2_[core].fill(v, line, Moesi::kShared);
    }
    return cfg_.mem_latency;
  };

  if (is_write) {
    if (valid && (l1.state(slot) == Moesi::kModified ||
                  l1.state(slot) == Moesi::kExclusive)) {
      l1.set_state(slot, Moesi::kModified);
      l1.touch_slot(slot);
      ++stats_.l1_hits;
      r.latency = cfg_.l1.latency;
    } else {
      const Cycle bus_wait = bus_acquire();
      SubBlockMask pb = 0;
      const ProbeOutcome po = probe_remotes(core, line, mask, true, &pb);
      if (po.requester_lost) {
        // Policy nack (never taken under requester-wins): no upgrade, no
        // fill, no speculative bookkeeping — the requester self-aborts.
        r.requester_lost = true;
        r.latency = bus_wait + cfg_.l1.latency;
        return r;
      }
      // (invalidating probes never produce piggyback info)
      // doom() handling cannot touch our line; the slot stays good.
      r.latency += bus_wait;
      if (fault_ != nullptr) r.latency += fault_->probe_jitter(core);
      if (valid) {
        // S or O upgrade: data already local, pay the invalidation round trip.
        l1.set_state(slot, Moesi::kModified);
        l1.touch_slot(slot);
        ++stats_.upgrades;
        r.latency += cfg_.upgrade_latency;
      } else {
        r.latency += source_latency(po.remote_owner);
        slot = fill_l1(core, line, Moesi::kModified);
        if (slot == TagArray::kNoSlot) {
          r.capacity_abort = true;
          return r;
        }
        dirty_marks_[core].erase(line);  // full-line refetch
      }
    }
  } else {  // load
    // Same double gate as would_broadcast(): skip the mark lookup and the
    // virtual call whenever they cannot possibly fire.
    const bool dirty_force =
        valid && is_tx && dirty_handling_ && !dirty_marks_[core].empty() &&
        detector_->dirty_hit(dirty_marks(core, line), mask);
    if (valid && !dirty_force) {
      l1.touch_slot(slot);
      ++stats_.l1_hits;
      r.latency = cfg_.l1.latency;
    } else {
      const Cycle bus_wait = bus_acquire();
      SubBlockMask pb = 0;
      const ProbeOutcome po = probe_remotes(core, line, mask, false, &pb);
      if (po.requester_lost) {
        r.requester_lost = true;  // policy nack: see the write path above
        r.latency = bus_wait + cfg_.l1.latency;
        return r;
      }
      r.latency = bus_wait + source_latency(po.remote_owner);
      if (fault_ != nullptr) r.latency += fault_->probe_jitter(core);
      if (valid) {
        // Dirty-forced refetch: the line stays resident; its stale marks are
        // cleared and fresh piggy-back info (if any) re-applied below.
        ++stats_.dirty_refetches;
        dirty_marks_[core].erase(line);
        l1.touch_slot(slot);
      } else {
        const Moesi st = po.remote_owner ? Moesi::kShared : Moesi::kExclusive;
        slot = fill_l1(core, line, st);
        if (slot == TagArray::kNoSlot) {
          r.capacity_abort = true;
          return r;
        }
        dirty_marks_[core].erase(line);
      }
      // MUTATION kStalePiggybackMask: apply the PREVIOUS fill response's
      // piggy-backed S-WR set instead of the one that just arrived (a
      // buffered-response reuse bug) — the piggyback-coverage invariant in
      // check_invariants() kills it.
      if (mutation_ == ProtocolMutation::kStalePiggybackMask) {
        pb = std::exchange(stale_pb_[core], pb);
      }
      // MUTATION kDropDirtySubblock: discard the piggy-backed S-WR set
      // instead of marking those sub-blocks Dirty (§IV-C / Fig 7). Replay
      // alone cannot see this (commit-time validation rescues the schedule);
      // the piggyback-coverage invariant in check_invariants() kills it.
      if (pb != 0 && mutation_ != ProtocolMutation::kDropDirtySubblock) {
        dirty_marks_[core][line] |= pb;
      }
    }
  }

  if (is_tx) record_spec_access(core, slot, line, mask, is_write);
  if (oracle_ && oracle_check(core, line, mask, is_write)) {
    r.requester_lost = true;
  }
  return r;
}

void MemorySystem::validate_readers_at_commit(CoreId committer, Addr line,
                                              ByteMask written) {
  if (oracle_) return;  // the oracle never misses
  // MUTATION kSkipCommitValidation: reopen the silent-store window that
  // retention creates (DESIGN.md §6.5) — the serializability replay kills it.
  if (mutation_ == ProtocolMutation::kSkipCommitValidation) return;
  // Only probe-based detectors reach this point (the oracle returned
  // above), so any reader metadata for `line` implies tag-array residency
  // (metadata-residency invariant) — holder cores are the only candidates.
  const auto dit = l1_dir_.find(line);
  if (dit == l1_dir_.end()) return;
  const std::uint64_t holders =
      dit->second & ~(std::uint64_t{1} << committer);
  for (CoreId o = 0; o < cfg_.ncores; ++o) {
    if ((holders & (std::uint64_t{1} << o)) == 0) continue;
    if (o == committer || spec_meta_[o].empty()) continue;
    auto it = spec_meta_[o].find(line);
    if (it == spec_meta_[o].end() || txctl_ == nullptr || !txctl_->in_tx(o)) {
      continue;
    }
    const SpecState& meta = it->second;
    if ((written & (meta.read_bytes | meta.write_bytes)) == 0) continue;
    ConflictRecord rec;
    rec.requester = committer;
    rec.victim = o;
    rec.line = line;
    rec.probe_bytes = written;
    rec.victim_bytes = meta.read_bytes | meta.write_bytes;
    rec.invalidating = true;
    const Classification cls = classify_conflict(meta, written, true);
    rec.is_false = cls.is_false;  // true overlap by construction
    rec.type = cls.type;
    rec.cycle = kernel_.now();
    stats_.on_conflict(rec);
    txctl_->doom(o, rec);
  }
}

std::string MemorySystem::check_invariants() const {
  // Candidate lines: everything any core's metadata or dirty marks mention
  // (the interesting lines); exclusivity is verified by direct state
  // queries on each of them. The candidate set is sorted and deduplicated
  // so that the FIRST violation reported — which the chaos oracles match on
  // and operators diff across runs — is the same on every stdlib, not an
  // accident of unordered_map enumeration order.
  std::vector<Addr> lines;
  for (CoreId c = 0; c < cfg_.ncores; ++c) {
    // asfsim-lint: allow(unordered-iteration) — keys are sorted just below.
    for (const auto& [line, meta] : spec_meta_[c]) lines.push_back(line);
    // asfsim-lint: allow(unordered-iteration) — keys are sorted just below.
    for (const auto& [line, marks] : dirty_marks_[c]) lines.push_back(line);
  }
  std::sort(lines.begin(), lines.end());
  // std::vector::erase, not the guest map's coroutine erase (homonym).
  // asfsim-lint: allow(discarded-task)
  lines.erase(std::unique(lines.begin(), lines.end()), lines.end());
  for (const Addr line : lines) {
    int m_or_e = 0, owned = 0, valid = 0;
    for (CoreId c = 0; c < cfg_.ncores; ++c) {
      const Moesi st = l1_state(c, line);
      if (st == Moesi::kModified || st == Moesi::kExclusive) ++m_or_e;
      if (st == Moesi::kOwned) ++owned;
      if (st != Moesi::kInvalid) ++valid;
    }
    if (m_or_e > 1) {
      return "line " + std::to_string(line) + ": multiple M/E holders";
    }
    if (m_or_e == 1 && valid > 1) {
      return "line " + std::to_string(line) + ": M/E coexists with copies";
    }
    if (owned > 1) {
      return "line " + std::to_string(line) + ": multiple O owners";
    }
  }
  // Metadata residency + mask/bit agreement. Residency only binds the
  // probe-based detectors: the perfect oracle checks metadata centrally and
  // deliberately survives invalidation + eviction (its upper-bound role).
  const bool oracle = detector_->global_oracle();
  for (CoreId c = 0; c < cfg_.ncores; ++c) {
    for (const Addr line : lines) {
      const auto it = spec_meta_[c].find(line);
      if (it == spec_meta_[c].end()) continue;
      const SpecState& meta = it->second;
      const TagArray::Slot s = l1_[c].find(line);
      if (s == TagArray::kNoSlot && !oracle) {
        return "core " + std::to_string(c) + " line " + std::to_string(line) +
               ": speculative metadata without a resident line";
      }
      if (s != TagArray::kNoSlot && !oracle && !l1_[c].spec_flag(s)) {
        return "core " + std::to_string(c) + " line " + std::to_string(line) +
               ": speculative metadata but summary flag clear";
      }
      const std::uint32_t n = detector_->nsub();
      const SubBlockMask expect_spec = static_cast<SubBlockMask>(
          quantize(meta.read_bytes | meta.write_bytes, n));
      const SubBlockMask expect_wr =
          static_cast<SubBlockMask>(quantize(meta.write_bytes, n));
      if (meta.bits.spec != expect_spec || meta.bits.wr != expect_wr) {
        return "core " + std::to_string(c) + " line " + std::to_string(line) +
               ": sub-block bits disagree with byte masks";
      }
      if (s != TagArray::kNoSlot && l1_[c].retained(s) && l1_[c].valid(s)) {
        return "core " + std::to_string(c) + " line " + std::to_string(line) +
               ": retained flag on a valid line";
      }
    }
    // Converse direction of the summary-flag audit: a set flag with no
    // backing metadata would only cost performance, but it means a clear
    // path was missed — fail loudly. The same sweep audits the snoop-filter
    // directory: every occupied slot must have its residency bit (a stale-0
    // would silently skip a mandatory probe).
    const TagArray& t = l1_[c];
    for (TagArray::Slot s = 0; s < t.num_slots(); ++s) {
      if (t.line(s) == TagArray::kEmptyTag) continue;
      if (t.spec_flag(s) &&
          spec_meta_[c].find(t.line(s)) == spec_meta_[c].end()) {
        return "core " + std::to_string(c) + " line " +
               std::to_string(t.line(s)) +
               ": speculative summary flag without metadata";
      }
      const auto dit = l1_dir_.find(t.line(s));
      if (dit == l1_dir_.end() ||
          (dit->second & (std::uint64_t{1} << c)) == 0) {
        return "core " + std::to_string(c) + " line " +
               std::to_string(t.line(s)) +
               ": resident line missing from the L1 residency directory";
      }
    }
  }
  // Directory converse: every residency bit must point at a real occupied
  // slot (a stale-1 only costs a wasted probe, but means a drop path missed
  // its directory update).
  for (const auto& [line, mask] : l1_dir_) {
    for (CoreId c = 0; c < cfg_.ncores; ++c) {
      if ((mask & (std::uint64_t{1} << c)) != 0 &&
          l1_[c].find(line) == TagArray::kNoSlot) {
        return "core " + std::to_string(c) + " line " + std::to_string(line) +
               ": L1 residency directory bit without an occupied slot";
      }
    }
  }
  // Piggyback coverage (paper §IV-C): while core c's transaction holds S-WR
  // sub-blocks on a line, every OTHER core with a load-origin copy (S or E —
  // such a copy can only come from a non-invalidating fill, whose response
  // piggy-backs the S-WR set) must carry Dirty marks covering those
  // sub-blocks. M/O holders are exempt: write-origin fills carry no
  // piggyback and are protected by commit-time reader validation instead.
  if (txctl_ != nullptr && detector_->dirty_handling()) {
    for (CoreId c = 0; c < cfg_.ncores; ++c) {
      if (!txctl_->in_tx(c)) continue;
      for (const Addr line : lines) {
        const auto it = spec_meta_[c].find(line);
        if (it == spec_meta_[c].end()) continue;
        const SpecState& meta = it->second;
        const SubBlockMask swr = meta.bits.spec_written();
        if (swr == 0) continue;
        for (CoreId o = 0; o < cfg_.ncores; ++o) {
          if (o == c) continue;
          const Moesi st = l1_state(o, line);
          if (st != Moesi::kShared && st != Moesi::kExclusive) continue;
          if ((dirty_marks(o, line) & swr) != swr) {
            return "core " + std::to_string(o) + " line " +
                   std::to_string(line) +
                   ": S/E copy missing Dirty marks for core " +
                   std::to_string(c) + "'s S-WR sub-blocks (piggyback lost)";
          }
        }
      }
    }
  }
  return {};
}

void MemorySystem::clear_spec(CoreId core, bool discard_written_lines) {
  // Per-line drops touch disjoint cache entries; no cross-line effect
  // depends on visit order.
  // asfsim-lint: allow(unordered-iteration)
  for (auto& [line, meta] : spec_meta_[core]) {
    const TagArray::Slot s = l1_[core].find(line);
    if (s == TagArray::kNoSlot) continue;
    if (l1_[core].retained(s)) {
      // Invalid-but-retained line: its speculative info dies with the tx.
      l1_[core].drop_slot(s);
      dir_remove(core, line);
    } else if (discard_written_lines && meta.write_bytes != 0) {
      // Abort: discard speculatively-modified lines (ASF §IV-A).
      l1_[core].drop_slot(s);
      dir_remove(core, line);
      l2_[core].drop(line);
      l3_[core].drop(line);
      dirty_marks_[core].erase(line);
    } else {
      // Clean speculatively-read lines stay valid; committed written lines
      // stay Modified (their data is now the committed data). Their
      // metadata dies here, so the probe summary flag must die with it.
      l1_[core].set_spec_flag(s, false);
    }
  }
  spec_meta_[core].clear();
}

}  // namespace asfsim
