#include "mem/coherence.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <utility>

#include "core/classifier.hpp"
#include "fault/plan.hpp"
#include "sim/kernel.hpp"
#include "trace/sink.hpp"

namespace asfsim {

MemorySystem::MemorySystem(Kernel& kernel, const SimConfig& cfg, Stats& stats)
    : kernel_(kernel), cfg_(cfg), stats_(stats), mutation_(cfg.fault.mutation) {
  for (std::uint32_t c = 0; c < cfg_.ncores; ++c) {
    l1_.emplace_back(cfg_.l1);
    l2_.emplace_back(cfg_.l2);
    l3_.emplace_back(cfg_.l3);
  }
  spec_meta_.resize(cfg_.ncores);
  dirty_marks_.resize(cfg_.ncores);
  stale_pb_.assign(cfg_.ncores, 0);
}

bool MemorySystem::line_pinned(CoreId core, Addr line) const {
  return spec_meta_[core].find(line) != spec_meta_[core].end();
}

const SpecState* MemorySystem::spec_state(CoreId core, Addr line) const {
  auto it = spec_meta_[core].find(line);
  return it == spec_meta_[core].end() ? nullptr : &it->second;
}

SubBlockMask MemorySystem::dirty_marks(CoreId core, Addr line) const {
  auto it = dirty_marks_[core].find(line);
  return it == dirty_marks_[core].end() ? SubBlockMask{0} : it->second;
}

Moesi MemorySystem::l1_state(CoreId core, Addr line) const {
  const TagArray::Entry* e = l1_[core].find(line);
  return (e && e->state != Moesi::kInvalid) ? e->state : Moesi::kInvalid;
}

SubBlockState MemorySystem::subblock_state(CoreId core, Addr line,
                                           std::uint32_t sub) const {
  // Paper Table I view: Dirty marks win over Non-speculative; S-RD/S-WR come
  // from the transaction's architectural bits.
  if (const SpecState* m = spec_state(core, line)) {
    const SubBlockState s = m->bits.state(sub);
    if (s != SubBlockState::kNonSpec) return s;
  }
  if (dirty_marks(core, line) & (1u << sub)) return SubBlockState::kDirty;
  return SubBlockState::kNonSpec;
}

void MemorySystem::record_spec_access(CoreId core, Addr line, ByteMask mask,
                                      bool is_write) {
  SpecState& m = spec_meta_[core][line];
  SubBlockMask q = quantize(mask, detector_->nsub());
  // MUTATION kWrongSubblockIndexMath: commit the architectural bits under a
  // rotated sub-block index (classic off-by-one in index math) while the
  // byte-exact masks stay correct — the mask/bit-agreement invariant in
  // check_invariants() kills it.
  if (mutation_ == ProtocolMutation::kWrongSubblockIndexMath) {
    const std::uint32_t n = detector_->nsub();
    if (n > 1) {
      q = static_cast<SubBlockMask>(((q << 1) | (q >> (n - 1))) &
                                    ((SubBlockMask{1} << n) - 1));
    }
  }
  if (is_write) {
    // MUTATION kSkipWrittenMask: set the architectural S-WR bits but "forget"
    // the byte-exact write mask — the mask/bit-agreement invariant kills it.
    if (mutation_ != ProtocolMutation::kSkipWrittenMask) {
      m.write_bytes |= mask;
    }
    m.bits.spec |= q;
    m.bits.wr |= q;
  } else {
    m.read_bytes |= mask;
    m.bits.spec |= q;  // a read of an S-WR sub-block leaves it S-WR
  }
}

TxFootprint MemorySystem::tx_footprint(CoreId core) const {
  TxFootprint fp;
  const std::uint32_t nsub = detector_->nsub();
  // Pure sum over disjoint per-line state; every visit order yields the
  // same totals.
  // asfsim-lint: allow(unordered-iteration)
  for (const auto& [line, meta] : spec_meta_[core]) {
    if (meta.read_bytes != 0) {
      ++fp.read_lines;
      fp.read_subs += static_cast<std::uint32_t>(
          std::popcount(quantize(meta.read_bytes, nsub)));
    }
    if (meta.write_bytes != 0) {
      ++fp.write_lines;
      fp.write_subs += static_cast<std::uint32_t>(
          std::popcount(quantize(meta.write_bytes, nsub)));
    }
  }
  return fp;
}

Cycle MemorySystem::bus_acquire() {
  if (cfg_.bus_occupancy == 0) return 0;
  const Cycle now = kernel_.now();
  const Cycle start = bus_free_at_ > now ? bus_free_at_ : now;
  bus_free_at_ = start + cfg_.bus_occupancy;
  stats_.bus_wait_cycles += start - now;
  return start - now;
}

MemorySystem::ProbeOutcome MemorySystem::probe_remotes(CoreId requester,
                                                       Addr line,
                                                       ByteMask mask,
                                                       bool invalidating,
                                                       SubBlockMask* piggyback) {
  ProbeOutcome out;
  ++stats_.probes_sent;
  const bool oracle = detector_->global_oracle();

  for (CoreId o = 0; o < cfg_.ncores; ++o) {
    if (o == requester) continue;

    // --- conflict detection against o's speculative state -----------------
    bool retain = false;
    auto it = spec_meta_[o].find(line);
    if (it != spec_meta_[o].end() && txctl_ && txctl_->in_tx(o)) {
      const SpecState& meta = it->second;
      const ProbeCheck pc = detector_->check_probe(meta, mask, invalidating);
      const bool truly = true_conflict(meta, mask, invalidating);
      if (pc.conflict) {
        ConflictRecord rec;
        rec.requester = requester;
        rec.victim = o;
        rec.line = line;
        rec.probe_bytes = mask;
        rec.victim_bytes = invalidating ? (meta.read_bytes | meta.write_bytes)
                                        : meta.write_bytes;
        rec.invalidating = invalidating;
        const Classification cls = classify_conflict(meta, mask, invalidating);
        rec.is_false = cls.is_false;
        rec.type = cls.type;
        rec.cycle = kernel_.now();
        stats_.on_conflict(rec);
        txctl_->doom(o, rec);  // clears o's spec metadata via clear_spec()
      } else {
        // This detector declined a conflict baseline ASF would have signaled
        // (and, for the oracle, that the oracle will not signal either).
        if (baseline_would_conflict(meta, invalidating) &&
            !(oracle && truly)) {
          stats_.on_avoided_false_conflict();
          if (hub_ != nullptr) {
            const Classification cls =
                classify_conflict(meta, mask, invalidating);
            trace::TraceEvent ev;
            ev.kind = trace::TraceEventKind::kAvoided;
            ev.core = o;
            ev.other = requester;
            ev.cycle = kernel_.now();
            ev.line = line;
            ev.type = cls.type;
            ev.is_false = cls.is_false;
            ev.probe_mask = mask;
            ev.victim_mask = invalidating
                                 ? (meta.read_bytes | meta.write_bytes)
                                 : meta.write_bytes;
            hub_->emit(ev);
          }
        }
        if (pc.piggyback != 0 && piggyback != nullptr) {
          *piggyback |= pc.piggyback;
          ++stats_.piggyback_messages;
        }
        retain = pc.retain_spec_info;
        // MUTATION kForgetInvalidatedSpecinfo: drop the victim's speculative
        // info (and its metadata, so no structural audit can see the hole)
        // instead of retaining it inside the invalidated line (§IV-B). Only
        // the serializability replay catches the missed late conflict.
        if (retain &&
            mutation_ == ProtocolMutation::kForgetInvalidatedSpecinfo) {
          retain = false;
          spec_meta_[o].erase(line);
        }
      }
    }

    // --- MOESI state handling (re-find: doom() may have dropped lines) ----
    TagArray::Entry* e = l1_[o].find(line);
    if (e != nullptr && e->state != Moesi::kInvalid) {
      out.remote_owner = true;  // any valid remote copy can supply (c2c)
      if (invalidating) {
        if (retain) {
          e->state = Moesi::kInvalid;
          e->retained = true;  // speculative info stays inside the line
        } else {
          l1_[o].drop(line);
          dirty_marks_[o].erase(line);
        }
        l2_[o].drop(line);
        l3_[o].drop(line);
      } else {
        if (e->state == Moesi::kModified) e->state = Moesi::kOwned;
        if (e->state == Moesi::kExclusive) e->state = Moesi::kShared;
      }
    }
  }
  return out;
}

bool MemorySystem::evict_speculative_line(CoreId core) {
  // Deterministic victim choice: the lowest-addressed speculative line
  // (spec_meta_ iteration order is hash-order, which varies across library
  // implementations — never use it for victim selection).
  Addr victim = ~Addr{0};
  // Min-reduce over the keys is order-insensitive; the comment above is
  // exactly why the victim is chosen this way.
  // asfsim-lint: allow(unordered-iteration)
  for (const auto& [line, meta] : spec_meta_[core]) {
    if (line < victim) victim = line;
  }
  if (victim == ~Addr{0}) return false;
  l1_[core].drop(victim);
  l2_[core].drop(victim);
  l3_[core].drop(victim);
  dirty_marks_[core].erase(victim);
  // The entry dies with the imminent capacity abort; erase it now so the
  // metadata-residency invariant holds at every audit point.
  spec_meta_[core].erase(victim);
  return true;
}

bool MemorySystem::fill_l1(CoreId core, Addr line, Moesi state) {
  // A line can already be present as an invalid-but-retained entry (paper
  // §IV-B); refetching must revalidate that entry, never duplicate the tag.
  if (TagArray::Entry* e = l1_[core].find(line)) {
    e->state = state;
    e->retained = false;
    l1_[core].touch(line);
    return true;
  }
  TagArray::Entry* victim = l1_[core].find_victim(
      line, [&](Addr vl) { return line_pinned(core, vl); });
  if (victim == nullptr) return false;  // every way pinned: capacity abort
  if (victim->state != Moesi::kInvalid || victim->retained) {
    dirty_marks_[core].erase(victim->line);
  }
  l1_[core].fill(victim, line, state);
  return true;
}

void MemorySystem::oracle_check(CoreId requester, Addr line, ByteMask mask,
                                bool is_write) {
  for (CoreId o = 0; o < cfg_.ncores; ++o) {
    if (o == requester) continue;
    auto it = spec_meta_[o].find(line);
    if (it == spec_meta_[o].end() || txctl_ == nullptr || !txctl_->in_tx(o)) {
      continue;
    }
    const SpecState& meta = it->second;
    if (!true_conflict(meta, mask, is_write)) continue;
    ConflictRecord rec;
    rec.requester = requester;
    rec.victim = o;
    rec.line = line;
    rec.probe_bytes = mask;
    rec.victim_bytes =
        is_write ? (meta.read_bytes | meta.write_bytes) : meta.write_bytes;
    rec.invalidating = is_write;
    const Classification cls = classify_conflict(meta, mask, is_write);
    rec.is_false = cls.is_false;  // always false==false: oracle finds true only
    rec.type = cls.type;
    rec.cycle = kernel_.now();
    stats_.on_conflict(rec);
    txctl_->doom(o, rec);
  }
}

bool MemorySystem::would_broadcast(CoreId core, Addr addr, std::uint32_t size,
                                   bool is_write, bool is_tx) const {
  const Addr line = line_of(addr);
  const TagArray::Entry* e = l1_[core].find(line);
  const bool valid = e != nullptr && e->state != Moesi::kInvalid;
  if (!valid) return true;  // miss (or retained-invalid): probes
  if (is_write) {
    return e->state != Moesi::kModified && e->state != Moesi::kExclusive;
  }
  return is_tx &&
         detector_->dirty_hit(dirty_marks(core, line), byte_mask_of(addr, size));
}

AccessResult MemorySystem::access(CoreId core, Addr addr, std::uint32_t size,
                                  bool is_write, bool is_tx) {
  assert(detector_ != nullptr && txctl_ != nullptr);
  assert(size >= 1 && size <= 8);
  assert(addr % size == 0 && "guest accesses must be naturally aligned");
  const Addr line = line_of(addr);
  const ByteMask mask = byte_mask_of(addr, size);

  ++stats_.accesses;
  if (is_tx) {
    ++stats_.tx_accesses;
    stats_.on_tx_access(line_offset(addr));
  }

  AccessResult r;
  if (fault_ != nullptr && is_tx) {
    // Capacity-pressure fault: one of the requester's own speculative lines
    // is pushed out, which ASF surfaces as a capacity abort.
    if (!spec_meta_[core].empty() && fault_->forced_eviction(core) &&
        evict_speculative_line(core)) {
      r.capacity_abort = true;
      r.latency = cfg_.l1.latency;
      return r;
    }
    // Spurious abort: the access dooms its own transaction for no
    // architectural reason (ASF explicitly permits this).
    if (fault_->spurious_abort(core)) {
      r.spurious_abort = true;
      r.latency = cfg_.l1.latency;
      return r;
    }
  }
  TagArray& l1 = l1_[core];
  TagArray::Entry* e = l1.find(line);
  const bool valid = e != nullptr && e->state != Moesi::kInvalid;

  auto source_latency = [&](bool remote_owner) -> Cycle {
    if (remote_owner) {
      ++stats_.c2c_transfers;
      r.source = DataSource::kRemoteL1;
      return cfg_.cache2cache_latency;
    }
    if (l2_[core].find(line) != nullptr) {
      l2_[core].touch(line);
      ++stats_.l2_hits;
      r.source = DataSource::kL2;
      return cfg_.l2.latency;
    }
    if (l3_[core].find(line) != nullptr) {
      l3_[core].touch(line);
      ++stats_.l3_hits;
      r.source = DataSource::kL3;
      // promote into L2 (private, inclusive-ish)
      if (auto* v = l2_[core].find_victim(line, [](Addr) { return false; })) {
        l2_[core].fill(v, line, Moesi::kShared);
      }
      return cfg_.l3.latency;
    }
    ++stats_.mem_fetches;
    r.source = DataSource::kMemory;
    if (auto* v = l3_[core].find_victim(line, [](Addr) { return false; })) {
      l3_[core].fill(v, line, Moesi::kShared);
    }
    if (auto* v = l2_[core].find_victim(line, [](Addr) { return false; })) {
      l2_[core].fill(v, line, Moesi::kShared);
    }
    return cfg_.mem_latency;
  };

  if (is_write) {
    if (valid &&
        (e->state == Moesi::kModified || e->state == Moesi::kExclusive)) {
      e->state = Moesi::kModified;
      l1.touch(line);
      ++stats_.l1_hits;
      r.latency = cfg_.l1.latency;
    } else {
      const Cycle bus_wait = bus_acquire();
      SubBlockMask pb = 0;
      const ProbeOutcome po = probe_remotes(core, line, mask, true, &pb);
      // (invalidating probes never produce piggyback info)
      e = l1.find(line);  // doom() handling cannot touch our line, but re-find
      r.latency += bus_wait;
      if (fault_ != nullptr) r.latency += fault_->probe_jitter(core);
      if (valid) {
        // S or O upgrade: data already local, pay the invalidation round trip.
        e->state = Moesi::kModified;
        l1.touch(line);
        ++stats_.upgrades;
        r.latency += cfg_.upgrade_latency;
      } else {
        r.latency += source_latency(po.remote_owner);
        if (!fill_l1(core, line, Moesi::kModified)) {
          r.capacity_abort = true;
          return r;
        }
        dirty_marks_[core].erase(line);  // full-line refetch
      }
    }
  } else {  // load
    const bool dirty_force =
        valid && is_tx && detector_->dirty_hit(dirty_marks(core, line), mask);
    if (valid && !dirty_force) {
      l1.touch(line);
      ++stats_.l1_hits;
      r.latency = cfg_.l1.latency;
    } else {
      const Cycle bus_wait = bus_acquire();
      SubBlockMask pb = 0;
      const ProbeOutcome po = probe_remotes(core, line, mask, false, &pb);
      r.latency = bus_wait + source_latency(po.remote_owner);
      if (fault_ != nullptr) r.latency += fault_->probe_jitter(core);
      if (valid) {
        // Dirty-forced refetch: the line stays resident; its stale marks are
        // cleared and fresh piggy-back info (if any) re-applied below.
        ++stats_.dirty_refetches;
        dirty_marks_[core].erase(line);
        l1.touch(line);
      } else {
        const Moesi st = po.remote_owner ? Moesi::kShared : Moesi::kExclusive;
        if (!fill_l1(core, line, st)) {
          r.capacity_abort = true;
          return r;
        }
        dirty_marks_[core].erase(line);
      }
      // MUTATION kStalePiggybackMask: apply the PREVIOUS fill response's
      // piggy-backed S-WR set instead of the one that just arrived (a
      // buffered-response reuse bug) — the piggyback-coverage invariant in
      // check_invariants() kills it.
      if (mutation_ == ProtocolMutation::kStalePiggybackMask) {
        pb = std::exchange(stale_pb_[core], pb);
      }
      // MUTATION kDropDirtySubblock: discard the piggy-backed S-WR set
      // instead of marking those sub-blocks Dirty (§IV-C / Fig 7). Replay
      // alone cannot see this (commit-time validation rescues the schedule);
      // the piggyback-coverage invariant in check_invariants() kills it.
      if (pb != 0 && mutation_ != ProtocolMutation::kDropDirtySubblock) {
        dirty_marks_[core][line] |= pb;
      }
    }
  }

  if (is_tx) record_spec_access(core, line, mask, is_write);
  if (detector_->global_oracle()) oracle_check(core, line, mask, is_write);
  return r;
}

void MemorySystem::validate_readers_at_commit(CoreId committer, Addr line,
                                              ByteMask written) {
  if (detector_->global_oracle()) return;  // the oracle never misses
  // MUTATION kSkipCommitValidation: reopen the silent-store window that
  // retention creates (DESIGN.md §6.5) — the serializability replay kills it.
  if (mutation_ == ProtocolMutation::kSkipCommitValidation) return;
  for (CoreId o = 0; o < cfg_.ncores; ++o) {
    if (o == committer) continue;
    auto it = spec_meta_[o].find(line);
    if (it == spec_meta_[o].end() || txctl_ == nullptr || !txctl_->in_tx(o)) {
      continue;
    }
    const SpecState& meta = it->second;
    if ((written & (meta.read_bytes | meta.write_bytes)) == 0) continue;
    ConflictRecord rec;
    rec.requester = committer;
    rec.victim = o;
    rec.line = line;
    rec.probe_bytes = written;
    rec.victim_bytes = meta.read_bytes | meta.write_bytes;
    rec.invalidating = true;
    const Classification cls = classify_conflict(meta, written, true);
    rec.is_false = cls.is_false;  // true overlap by construction
    rec.type = cls.type;
    rec.cycle = kernel_.now();
    stats_.on_conflict(rec);
    txctl_->doom(o, rec);
  }
}

std::string MemorySystem::check_invariants() const {
  // Candidate lines: everything any core's metadata or dirty marks mention
  // (the interesting lines); exclusivity is verified by direct state
  // queries on each of them. The candidate set is sorted and deduplicated
  // so that the FIRST violation reported — which the chaos oracles match on
  // and operators diff across runs — is the same on every stdlib, not an
  // accident of unordered_map enumeration order.
  std::vector<Addr> lines;
  for (CoreId c = 0; c < cfg_.ncores; ++c) {
    // asfsim-lint: allow(unordered-iteration) — keys are sorted just below.
    for (const auto& [line, meta] : spec_meta_[c]) lines.push_back(line);
    // asfsim-lint: allow(unordered-iteration) — keys are sorted just below.
    for (const auto& [line, marks] : dirty_marks_[c]) lines.push_back(line);
  }
  std::sort(lines.begin(), lines.end());
  // std::vector::erase, not the guest map's coroutine erase (homonym).
  // asfsim-lint: allow(discarded-task)
  lines.erase(std::unique(lines.begin(), lines.end()), lines.end());
  for (const Addr line : lines) {
    int m_or_e = 0, owned = 0, valid = 0;
    for (CoreId c = 0; c < cfg_.ncores; ++c) {
      const Moesi st = l1_state(c, line);
      if (st == Moesi::kModified || st == Moesi::kExclusive) ++m_or_e;
      if (st == Moesi::kOwned) ++owned;
      if (st != Moesi::kInvalid) ++valid;
    }
    if (m_or_e > 1) {
      return "line " + std::to_string(line) + ": multiple M/E holders";
    }
    if (m_or_e == 1 && valid > 1) {
      return "line " + std::to_string(line) + ": M/E coexists with copies";
    }
    if (owned > 1) {
      return "line " + std::to_string(line) + ": multiple O owners";
    }
  }
  // Metadata residency + mask/bit agreement. Residency only binds the
  // probe-based detectors: the perfect oracle checks metadata centrally and
  // deliberately survives invalidation + eviction (its upper-bound role).
  const bool oracle = detector_->global_oracle();
  for (CoreId c = 0; c < cfg_.ncores; ++c) {
    for (const Addr line : lines) {
      const auto it = spec_meta_[c].find(line);
      if (it == spec_meta_[c].end()) continue;
      const SpecState& meta = it->second;
      const TagArray::Entry* e = l1_[c].find(line);
      if (e == nullptr && !oracle) {
        return "core " + std::to_string(c) + " line " + std::to_string(line) +
               ": speculative metadata without a resident line";
      }
      const std::uint32_t n = detector_->nsub();
      const SubBlockMask expect_spec = static_cast<SubBlockMask>(
          quantize(meta.read_bytes | meta.write_bytes, n));
      const SubBlockMask expect_wr =
          static_cast<SubBlockMask>(quantize(meta.write_bytes, n));
      if (meta.bits.spec != expect_spec || meta.bits.wr != expect_wr) {
        return "core " + std::to_string(c) + " line " + std::to_string(line) +
               ": sub-block bits disagree with byte masks";
      }
      if (e != nullptr && e->retained && e->state != Moesi::kInvalid) {
        return "core " + std::to_string(c) + " line " + std::to_string(line) +
               ": retained flag on a valid line";
      }
    }
  }
  // Piggyback coverage (paper §IV-C): while core c's transaction holds S-WR
  // sub-blocks on a line, every OTHER core with a load-origin copy (S or E —
  // such a copy can only come from a non-invalidating fill, whose response
  // piggy-backs the S-WR set) must carry Dirty marks covering those
  // sub-blocks. M/O holders are exempt: write-origin fills carry no
  // piggyback and are protected by commit-time reader validation instead.
  if (txctl_ != nullptr && detector_->dirty_handling()) {
    for (CoreId c = 0; c < cfg_.ncores; ++c) {
      if (!txctl_->in_tx(c)) continue;
      for (const Addr line : lines) {
        const auto it = spec_meta_[c].find(line);
        if (it == spec_meta_[c].end()) continue;
        const SpecState& meta = it->second;
        const SubBlockMask swr = meta.bits.spec_written();
        if (swr == 0) continue;
        for (CoreId o = 0; o < cfg_.ncores; ++o) {
          if (o == c) continue;
          const Moesi st = l1_state(o, line);
          if (st != Moesi::kShared && st != Moesi::kExclusive) continue;
          if ((dirty_marks(o, line) & swr) != swr) {
            return "core " + std::to_string(o) + " line " +
                   std::to_string(line) +
                   ": S/E copy missing Dirty marks for core " +
                   std::to_string(c) + "'s S-WR sub-blocks (piggyback lost)";
          }
        }
      }
    }
  }
  return {};
}

void MemorySystem::clear_spec(CoreId core, bool discard_written_lines) {
  // Per-line drops touch disjoint cache entries; no cross-line effect
  // depends on visit order.
  // asfsim-lint: allow(unordered-iteration)
  for (auto& [line, meta] : spec_meta_[core]) {
    TagArray::Entry* e = l1_[core].find(line);
    if (e == nullptr) continue;
    if (e->retained) {
      // Invalid-but-retained line: its speculative info dies with the tx.
      l1_[core].drop(line);
    } else if (discard_written_lines && meta.write_bytes != 0) {
      // Abort: discard speculatively-modified lines (ASF §IV-A).
      l1_[core].drop(line);
      l2_[core].drop(line);
      l3_[core].drop(line);
      dirty_marks_[core].erase(line);
    }
    // Clean speculatively-read lines stay valid; committed written lines
    // stay Modified (their data is now the committed data).
  }
  spec_meta_[core].clear();
}

}  // namespace asfsim
