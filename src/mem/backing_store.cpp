#include "mem/backing_store.hpp"

#include <cassert>
#include <cstring>

namespace asfsim {

const BackingStore::Page* BackingStore::find_page(Addr a) const {
  auto it = pages_.find(a / kPageBytes);
  return it == pages_.end() ? nullptr : it->second.get();
}

BackingStore::Page& BackingStore::page_for(Addr a) {
  auto& slot = pages_[a / kPageBytes];
  if (!slot) {
    slot = std::make_unique<Page>();
    slot->fill(0);
  }
  return *slot;
}

std::uint64_t BackingStore::read(Addr a, std::uint32_t size) const {
  assert(size >= 1 && size <= 8);
  assert(a % kPageBytes + size <= kPageBytes);
  const Page* p = find_page(a);
  if (!p) return 0;
  std::uint64_t v = 0;
  std::memcpy(&v, p->data() + a % kPageBytes, size);
  return v;
}

void BackingStore::write(Addr a, std::uint32_t size, std::uint64_t v) {
  assert(size >= 1 && size <= 8);
  assert(a % kPageBytes + size <= kPageBytes);
  std::memcpy(page_for(a).data() + a % kPageBytes, &v, size);
}

}  // namespace asfsim
