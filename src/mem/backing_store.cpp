#include "mem/backing_store.hpp"

#include <cassert>
#include <cstring>

namespace asfsim {

const BackingStore::Page* BackingStore::find_page(Addr a) const {
  const Addr no = a / kPageBytes;
  if (no == memo_page_no_) return memo_page_;
  const auto it = pages_.find(no);
  if (it == pages_.end()) return nullptr;  // absence is never memoized
  memo_page_no_ = no;
  memo_page_ = it->second.get();
  return memo_page_;
}

BackingStore::Page& BackingStore::page_for(Addr a) {
  const Addr no = a / kPageBytes;
  if (no == memo_page_no_) return *memo_page_;
  auto& slot = pages_[no];
  if (!slot) {
    slot = std::make_unique<Page>();
    slot->fill(0);
  }
  memo_page_no_ = no;
  memo_page_ = slot.get();
  return *slot;
}

std::uint64_t BackingStore::read(Addr a, std::uint32_t size) const {
  assert(size >= 1 && size <= 8);
  assert(a % kPageBytes + size <= kPageBytes);
  const Page* p = find_page(a);
  if (!p) return 0;
  std::uint64_t v = 0;
  std::memcpy(&v, p->data() + a % kPageBytes, size);
  return v;
}

void BackingStore::write(Addr a, std::uint32_t size, std::uint64_t v) {
  assert(size >= 1 && size <= 8);
  assert(a % kPageBytes + size <= kPageBytes);
  std::memcpy(page_for(a).data() + a % kPageBytes, &v, size);
}

}  // namespace asfsim
