// intruder — network intrusion detection (STAMP).
//
// Three transaction types per worker iteration, as in the original: a short
// capture transaction pops one fragment off the shared packet queue (true
// conflicts: everyone hammers the queue-head words — intruder is the
// paper's lowest-false-conflict-rate benchmark, Fig 1, and a high-retry
// one, which is why removing even its few false conflicts buys a large
// execution-time win, Fig 10); a reassembly transaction updates the
// red-black flow map and per-flow statistics (the source of its few false
// conflicts); and a detection transaction scans completed flows.
#include <vector>

#include "guest/garray.hpp"
#include "guest/glist.hpp"
#include "guest/grbtree.hpp"
#include "workloads/workload.hpp"

namespace asfsim {
namespace {

class IntruderWorkload final : public Workload {
 public:
  const char* name() const override { return "intruder"; }
  const char* description() const override {
    return "network intrusion detection";
  }

  void setup(Machine& m, const WorkloadParams& p) override {
    nflows_ = p.scaled(96);
    threads_ = p.threads;

    fragments_ = GRing::create(m, nflows_ * kFragsPerFlow + 8);
    completed_ = GRing::create(m, nflows_ + 8);
    flows_ = GRBTree::create(m);
    natt_detected_ = m.galloc().alloc(
        64, 64, m.galloc().register_site("intruder.natt_detected", 64));
    m.poke(natt_detected_, 8, 0);
    // Per-flow reassembly records are 16-byte objects {fragment count,
    // byte/checksum word} — four per cache line, so only bursts straddling
    // neighboring flows can falsely collide; intruder stays the lowest-
    // false-rate benchmark while its queue keeps retries high (Fig 1/10).
    flow_rec_ = GArray64::alloc(m.galloc(), nflows_ * 2, 16,
                                "intruder.flow_rec");
    for (std::uint64_t i = 0; i < nflows_ * 2; ++i) flow_rec_.poke(m, i, 0);
    // The flow/session index is pre-sized at capture start (the detector
    // knows the session table), so mining-time tree writes are rare.
    for (std::uint64_t f = 0; f < nflows_; ++f) {
      flows_.host_insert(m, f + 1, f * 2);
    }

    // Interleave fragments of all flows into the input queue (flows arrive
    // fragment-by-fragment, round-robin with jitter).
    // Fragments of one flow arrive back-to-back (bursty, as on a real link)
    // with occasional interleaving from the next flows. Concurrent workers
    // therefore usually reassemble the SAME flow, so most map conflicts are
    // true conflicts (paper Fig 1: intruder has the lowest false rate).
    Rng rng(p.seed * 101 + 9);
    std::vector<std::uint32_t> remaining(nflows_, kFragsPerFlow);
    std::uint64_t f = 0;
    std::uint64_t pushed = 0;
    while (pushed < nflows_ * kFragsPerFlow) {
      if (remaining[f] == 0) {
        ++f;
        continue;
      }
      std::uint64_t pick = f;
      if (rng.chance(0.15)) {  // jitter: a fragment from a nearby flow
        const std::uint64_t alt = f + 1 + rng.below(3);
        if (alt < nflows_ && remaining[alt] > 0) pick = alt;
      }
      const std::uint32_t idx = kFragsPerFlow - remaining[pick];
      // value encodes (flow+1, fragment index); flow ids are 1-based so the
      // packed value is never zero (the ring's empty sentinel).
      fragments_.host_push(m, ((pick + 1) << 8) | idx);
      --remaining[pick];
      ++pushed;
    }
    // Every 4th flow carries an attack signature (deterministic).
    expected_attacks_ = (nflows_ + 3) / 4;
    expected_bytes_ = 0;
    for (std::uint64_t f = 0; f < nflows_; ++f) {
      for (std::uint32_t i = 0; i < kFragsPerFlow; ++i) {
        expected_bytes_ += 40 + i;
      }
    }
    (void)0;

    for (CoreId t = 0; t < threads_; ++t) {
      m.spawn(t, worker(m.ctx(t), this));
    }
  }

  std::string validate(Machine& m) override {
    if (fragments_.host_size(m) != 0) return "intruder: fragments left over";
    if (completed_.host_size(m) != 0) return "intruder: flows not scanned";
    
    if (flows_.host_validate(m) < 0) {
      return "intruder: flow tree violates red-black invariants";
    }
    if (flows_.host_size(m) != nflows_) {
      return "intruder: assembled " + std::to_string(flows_.host_size(m)) +
             " flows, expected " + std::to_string(nflows_);
    }
    std::uint64_t frags = 0, fbytes = 0;
    for (std::uint64_t f = 0; f < nflows_; ++f) {
      frags += flow_rec_.peek(m, f * 2);
      fbytes += flow_rec_.peek(m, f * 2 + 1) >> 16;
    }
    if (frags != static_cast<std::uint64_t>(nflows_) * kFragsPerFlow) {
      return "intruder: fragment count mismatch";
    }
    if (fbytes != expected_bytes_) return "intruder: flow byte totals wrong";
    const std::uint64_t attacks = m.peek(natt_detected_, 8);
    if (attacks != expected_attacks_) {
      return "intruder: detected " + std::to_string(attacks) +
             " attacks, expected " + std::to_string(expected_attacks_);
    }
    return {};
  }

 private:
  static constexpr std::uint32_t kFragsPerFlow = 6;

  /// Detection: pop + scan one completed flow. Returns false when none.
  static Task<bool> scan_one(GuestCtx& c, IntruderWorkload* w) {
    std::uint64_t done_flow = 0;
    co_await c.run_tx([&]() -> Task<void> {
      done_flow = co_await w->completed_.pop(c);
    });
    if (done_flow == 0) co_return false;
    co_await c.work(40);  // signature scan
    if ((done_flow - 1) % 4 == 0) {
      co_await c.run_tx([&]() -> Task<void> {
        const std::uint64_t n = co_await c.load_u64(w->natt_detected_);
        co_await c.store_u64(w->natt_detected_, n + 1);
      });
    }
    co_return true;
  }

  static Task<void> worker(GuestCtx& c, IntruderWorkload* w) {
    for (;;) {
      // Capture: one short transaction popping the shared packet ring.
      std::uint64_t packed = 0;
      co_await c.run_tx([&]() -> Task<void> {
        packed = co_await w->fragments_.pop(c);
        if (packed != 0) co_await c.work(80);  // checksum + header parse
      });
      if (packed == 0) break;  // input queue drained
      const std::uint64_t flow = packed >> 8;
      const std::uint64_t frag = packed & 0xff;

      // Reassembly: red-black flow index + full-line flow record update.
      co_await c.run_tx([&]() -> Task<void> {
        const std::uint64_t rec = co_await w->flows_.find(c, flow, 0);
        const std::uint64_t n = co_await w->flow_rec_.get(c, rec);
        co_await w->flow_rec_.set(c, rec, n + 1);
        // byte total in the upper bits, running checksum in the low 16
        const std::uint64_t fb = co_await w->flow_rec_.get(c, rec + 1);
        const std::uint64_t bytes = (fb >> 16) + 40 + frag;
        const std::uint64_t ck = (fb ^ (frag * 0x9e37u)) & 0xffff;
        co_await w->flow_rec_.set(c, rec + 1, (bytes << 16) | ck);
        if (n + 1 == kFragsPerFlow) co_await w->completed_.push(c, flow);
      });

      // Detection: scan one completed flow, if available.
      co_await scan_one(c, w);
    }

    // Drain flows completed by late fragments.
    for (;;) {
      const bool scanned = co_await scan_one(c, w);
      if (!scanned) break;
    }
  }

  GRing fragments_, completed_;
  GRBTree flows_;
  GArray64 flow_rec_;
  Addr natt_detected_ = 0;
  std::uint64_t nflows_ = 0, expected_attacks_ = 0, expected_bytes_ = 0;
  std::uint32_t threads_ = 0;
};

}  // namespace

std::unique_ptr<Workload> make_intruder() {
  return std::make_unique<IntruderWorkload>();
}

}  // namespace asfsim
