// bank — microworkload: random transfers between accounts. Its invariant
// (total balance conservation plus a per-account audit) is the library's
// serializability witness (DESIGN.md §5, property 4).
#include "guest/garray.hpp"
#include "workloads/workload.hpp"

namespace asfsim {
namespace {

class BankWorkload final : public Workload {
 public:
  const char* name() const override { return "bank"; }
  const char* description() const override {
    return "random account transfers (serializability witness)";
  }

  void setup(Machine& m, const WorkloadParams& p) override {
    naccounts_ = 128;
    ntx_per_thread_ = p.scaled(300);
    accounts_ = GArray64::alloc(m.galloc(), naccounts_, 8, "bank.account");
    for (std::uint64_t i = 0; i < naccounts_; ++i) {
      accounts_.poke(m, i, kInitialBalance);
    }
    threads_ = p.threads;
    for (CoreId t = 0; t < threads_; ++t) {
      m.spawn(t, worker(m.ctx(t), this, ntx_per_thread_));
    }
  }

  std::string validate(Machine& m) override {
    std::uint64_t sum = 0;
    for (std::uint64_t i = 0; i < naccounts_; ++i) {
      const std::uint64_t bal = accounts_.peek(m, i);
      if (static_cast<std::int64_t>(bal) < 0) {
        return "account " + std::to_string(i) + " went negative";
      }
      sum += bal;
    }
    const std::uint64_t expect = naccounts_ * kInitialBalance;
    if (sum != expect) {
      return "total balance not conserved: got " + std::to_string(sum) +
             ", expected " + std::to_string(expect);
    }
    return {};
  }

 private:
  static constexpr std::uint64_t kInitialBalance = 1000;

  static Task<void> worker(GuestCtx& c, BankWorkload* w, std::uint64_t ntx) {
    for (std::uint64_t i = 0; i < ntx; ++i) {
      const std::uint64_t from = c.rng().below(w->naccounts_);
      std::uint64_t to = c.rng().below(w->naccounts_);
      if (to == from) to = (to + 1) % w->naccounts_;
      const std::uint64_t amount = 1 + c.rng().below(50);
      co_await c.run_tx([&]() -> Task<void> {
        const std::uint64_t bf = co_await w->accounts_.get(c, from);
        if (bf < amount) co_return;  // insufficient funds: empty commit
        const std::uint64_t bt = co_await w->accounts_.get(c, to);
        co_await w->accounts_.set(c, from, bf - amount);
        co_await w->accounts_.set(c, to, bt + amount);
      });
      co_await c.work(10);
    }
  }

  GArray64 accounts_;
  std::uint64_t naccounts_ = 0;
  std::uint64_t ntx_per_thread_ = 0;
  std::uint32_t threads_ = 0;
};

}  // namespace

std::unique_ptr<Workload> make_bank() { return std::make_unique<BankWorkload>(); }

}  // namespace asfsim
