// Workload interface + registry.
//
// A workload builds its guest data in simulated memory, spawns one guest
// thread per core, and self-validates its output after the run — detectors
// must never change results, only performance (DESIGN.md §5).
//
// Registration is explicit (registry.cpp) rather than via static
// initializers, which a static library would silently drop.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "guest/machine.hpp"
#include "oltp/oltp_config.hpp"

namespace asfsim {

struct WorkloadParams {
  std::uint32_t threads = 8;  // guest threads (= cores used)
  std::uint64_t seed = 1;
  double scale = 1.0;  // input-size multiplier (1.0 = default bench size)
  OltpConfig oltp;     // knobs for the oltp workload family (ignored by others)

  [[nodiscard]] std::uint64_t scaled(std::uint64_t base) const {
    const auto v = static_cast<std::uint64_t>(static_cast<double>(base) * scale);
    return v < 1 ? 1 : v;
  }
};

class Workload {
 public:
  virtual ~Workload() = default;

  [[nodiscard]] virtual const char* name() const = 0;
  /// One-line description (paper Table III).
  [[nodiscard]] virtual const char* description() const = 0;

  /// Build guest data and spawn guest threads. Called once per Machine.
  virtual void setup(Machine& m, const WorkloadParams& p) = 0;
  /// After Machine::run(): check output invariants. Returns an empty string
  /// on success, otherwise a failure description.
  [[nodiscard]] virtual std::string validate(Machine& m) = 0;
};

using WorkloadFactory = std::unique_ptr<Workload> (*)();

struct WorkloadInfo {
  const char* name;
  WorkloadFactory make;
};

/// All registered workloads, in presentation order (paper benchmarks first).
[[nodiscard]] const std::vector<WorkloadInfo>& workload_registry();

/// The ten paper-evaluated benchmarks (Table III order).
[[nodiscard]] const std::vector<std::string>& paper_benchmarks();

/// Instantiate by name; throws std::invalid_argument for unknown names.
[[nodiscard]] std::unique_ptr<Workload> make_workload(const std::string& name);

// Per-workload factories (one per workloads/*.cpp).
std::unique_ptr<Workload> make_counter();
std::unique_ptr<Workload> make_bank();
std::unique_ptr<Workload> make_kmeans();
std::unique_ptr<Workload> make_vacation();
std::unique_ptr<Workload> make_genome();
std::unique_ptr<Workload> make_intruder();
std::unique_ptr<Workload> make_ssca2();
std::unique_ptr<Workload> make_labyrinth();
std::unique_ptr<Workload> make_scalparc();
std::unique_ptr<Workload> make_apriori();
std::unique_ptr<Workload> make_utilitymine();
std::unique_ptr<Workload> make_fluidanimate();
std::unique_ptr<Workload> make_yada();
std::unique_ptr<Workload> make_bayes();
std::unique_ptr<Workload> make_livelock();
std::unique_ptr<Workload> make_oltp();  // oltp/oltp.cpp

}  // namespace asfsim
