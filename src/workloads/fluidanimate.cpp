// fluidanimate — fluid simulation (PARSEC port evaluated by RMS-TM).
//
// Particles move between spatial cells; each move transactionally updates
// the source and destination cell objects (32-byte {count, mass, vx, vy}
// records, two per cache line) and reads neighbor densities. Cross-cell
// false sharing within a line disappears at 16-byte sub-blocks... partially
// (a cell spans two sub-blocks), giving fluidanimate its mid-pack profile
// in Figs 1 and 8.
#include <vector>

#include "guest/barrier.hpp"
#include "guest/garray.hpp"
#include "workloads/workload.hpp"

namespace asfsim {
namespace {

class FluidanimateWorkload final : public Workload {
 public:
  const char* name() const override { return "fluidanimate"; }
  const char* description() const override { return "fluid simulation"; }

  void setup(Machine& m, const WorkloadParams& p) override {
    nparticles_ = p.scaled(320);
    threads_ = p.threads;
    nparticles_ -= nparticles_ % threads_;

    // cells[c] = {count, mass, vx, vy} as four 8-byte fields (32B objects).
    cells_ = GArray64::alloc(m.galloc(), kCells * 4, 32,
                             "fluidanimate.cells");
    for (std::uint64_t i = 0; i < kCells * 4; ++i) cells_.poke(m, i, 0);
    energy_ = m.galloc().alloc(
        64, 64, m.galloc().register_site("fluidanimate.energy", 64));
    m.poke(energy_, 8, 0);

    Rng rng(p.seed * 191 + 37);
    particle_cell_.resize(nparticles_);
    particle_mass_.resize(nparticles_);
    for (std::uint64_t i = 0; i < nparticles_; ++i) {
      particle_cell_[i] = static_cast<std::uint32_t>(rng.below(kCells));
      particle_mass_[i] = 1 + static_cast<std::uint32_t>(rng.below(4));
      cells_.poke(m, particle_cell_[i] * 4,
                  cells_.peek(m, particle_cell_[i] * 4) + 1);
      cells_.poke(m, particle_cell_[i] * 4 + 1,
                  cells_.peek(m, particle_cell_[i] * 4 + 1) +
                      particle_mass_[i]);
    }
    total_mass_ = 0;
    for (std::uint64_t i = 0; i < nparticles_; ++i) {
      total_mass_ += particle_mass_[i];
    }

    barrier_ = std::make_unique<GuestBarrier>(m.kernel(), threads_);
    const std::uint64_t per = nparticles_ / threads_;
    for (CoreId t = 0; t < threads_; ++t) {
      m.spawn(t, worker(m.ctx(t), this, t * per, (t + 1) * per, p.seed + t));
    }
  }

  std::string validate(Machine& m) override {
    std::uint64_t count = 0, mass = 0;
    for (std::uint32_t c = 0; c < kCells; ++c) {
      count += cells_.peek(m, c * 4);
      mass += cells_.peek(m, c * 4 + 1);
    }
    if (count != nparticles_) {
      return "fluidanimate: cell particle count " + std::to_string(count) +
             " != " + std::to_string(nparticles_);
    }
    if (mass != total_mass_) {
      return "fluidanimate: total mass not conserved";
    }
    return {};
  }

 private:
  static constexpr std::uint32_t kCells = 24;  // 1-D ring of cells
  static constexpr std::uint32_t kSteps = 3;

  static Task<void> worker(GuestCtx& c, FluidanimateWorkload* w,
                           std::uint64_t lo, std::uint64_t hi,
                           std::uint64_t seed) {
    Rng rng(seed * 7919 + 1);
    for (std::uint32_t step = 0; step < kSteps; ++step) {
      for (std::uint64_t i = lo; i < hi; ++i) {
        const std::uint32_t src = w->particle_cell_[i];
        const std::uint32_t dst =
            (src + 1 + static_cast<std::uint32_t>(rng.below(2))) % kCells;
        const std::uint64_t mass = w->particle_mass_[i];
        const bool track_energy = rng.chance(0.1);

        co_await c.run_tx([&]() -> Task<void> {
          // Global kinetic-energy accumulator, sampled: snapshot at start,
          // bump at end (true conflicts between concurrent movers).
          std::uint64_t e = 0;
          if (track_energy) e = co_await c.load_u64(w->energy_);
          // Neighbor density read (force computation reads nearby cells).
          const std::uint64_t nb = (dst + 1) % kCells;
          const std::uint64_t density = co_await w->cells_.get(c, nb * 4 + 1);
          // Move: decrement source cell, increment destination cell.
          const std::uint64_t sc = co_await w->cells_.get(c, src * 4);
          co_await w->cells_.set(c, src * 4, sc - 1);
          const std::uint64_t sm = co_await w->cells_.get(c, src * 4 + 1);
          co_await w->cells_.set(c, src * 4 + 1, sm - mass);
          const std::uint64_t dc = co_await w->cells_.get(c, dst * 4);
          co_await w->cells_.set(c, dst * 4, dc + 1);
          const std::uint64_t dm = co_await w->cells_.get(c, dst * 4 + 1);
          co_await w->cells_.set(c, dst * 4 + 1, dm + mass);
          // Velocity update on the destination cell.
          const std::uint64_t vx = co_await w->cells_.get(c, dst * 4 + 2);
          co_await w->cells_.set(c, dst * 4 + 2, vx + density);
          if (track_energy) co_await c.store_u64(w->energy_, e + mass);
        });
        w->particle_cell_[i] = dst;
        co_await c.work(16);  // force kernel arithmetic
      }
      co_await w->barrier_->arrive_and_wait(c);
    }
  }

  GArray64 cells_;
  Addr energy_ = 0;
  std::vector<std::uint32_t> particle_cell_;
  std::vector<std::uint32_t> particle_mass_;
  std::unique_ptr<GuestBarrier> barrier_;
  std::uint64_t nparticles_ = 0, total_mass_ = 0;
  std::uint32_t threads_ = 0;
};

}  // namespace

std::unique_ptr<Workload> make_fluidanimate() {
  return std::make_unique<FluidanimateWorkload>();
}

}  // namespace asfsim
