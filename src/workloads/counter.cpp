// counter — microworkload: each transaction reads a handful of random cells
// of a shared, unpadded 32-bit counter array and increments one of them.
// The read-mostly mix makes it a minimal WAR/RAW false-sharing generator
// (write-heavy mixes are dominated by the WAW line rule, which sub-blocking
// deliberately does not decouple); used by tests and the quickstart example.
#include "guest/garray.hpp"
#include "workloads/workload.hpp"

namespace asfsim {
namespace {

class CounterWorkload final : public Workload {
 public:
  const char* name() const override { return "counter"; }
  const char* description() const override {
    return "shared-counter increments (microworkload)";
  }

  void setup(Machine& m, const WorkloadParams& p) override {
    ncounters_ = 256;  // 16 lines of unpadded 4-byte cells
    ntx_per_thread_ = p.scaled(300);
    counters_ = GArray32::alloc(m.galloc(), ncounters_, 4, "counter.cell");
    for (std::uint64_t i = 0; i < ncounters_; ++i) counters_.poke(m, i, 0);
    threads_ = p.threads;
    for (CoreId t = 0; t < threads_; ++t) {
      m.spawn(t, worker(m.ctx(t), this, ntx_per_thread_));
    }
  }

  std::string validate(Machine& m) override {
    std::uint64_t sum = 0;
    for (std::uint64_t i = 0; i < ncounters_; ++i) sum += counters_.peek(m, i);
    const std::uint64_t expect = threads_ * ntx_per_thread_;
    if (sum != expect) {
      return "counter sum mismatch: got " + std::to_string(sum) +
             ", expected " + std::to_string(expect);
    }
    return {};
  }

 private:
  static constexpr std::uint32_t kReadsPerTx = 4;

  static Task<void> worker(GuestCtx& c, CounterWorkload* w, std::uint64_t ntx) {
    for (std::uint64_t i = 0; i < ntx; ++i) {
      std::uint64_t reads[kReadsPerTx];
      for (auto& x : reads) x = c.rng().below(w->ncounters_);
      const std::uint64_t target = c.rng().below(w->ncounters_);
      co_await c.run_tx([&]() -> Task<void> {
        std::uint64_t acc = 0;
        for (const std::uint64_t x : reads) {
          acc += co_await w->counters_.get(c, x);
        }
        (void)acc;
        const std::uint64_t v = co_await w->counters_.get(c, target);
        co_await w->counters_.set(c, target, v + 1);
      });
      co_await c.work(20);
    }
  }

  GArray32 counters_;
  std::uint64_t ncounters_ = 0;
  std::uint64_t ntx_per_thread_ = 0;
  std::uint32_t threads_ = 0;
};

}  // namespace

std::unique_ptr<Workload> make_counter() {
  return std::make_unique<CounterWorkload>();
}

}  // namespace asfsim
