// scalparc — ScalParC decision-tree classification (RMS-TM).
//
// The split-evaluation phase accumulates per-(attribute, value) class
// statistics into shared 16-byte stat objects {count, class1_count}. Both
// fields of an object are updated together, so same-object collisions are
// true conflicts while different-object collisions in the same line are
// false — and since objects are exactly one 16-byte sub-block, a 4-sub-block
// configuration removes nearly all of them (the paper's near-perfect
// reduction for ScalParC in Fig 8).
#include <vector>

#include "guest/garray.hpp"
#include "workloads/workload.hpp"

namespace asfsim {
namespace {

class ScalparcWorkload final : public Workload {
 public:
  const char* name() const override { return "scalparc"; }
  const char* description() const override {
    return "decision tree classification";
  }

  void setup(Machine& m, const WorkloadParams& p) override {
    nrecords_ = p.scaled(480);
    threads_ = p.threads;
    nrecords_ -= nrecords_ % threads_;

    // stats[attr][value] = {total count, class-1 count, gini scratch, pad}:
    // fat 32-byte objects, two per line. Both live fields sit in one 16-byte
    // sub-block, so four sub-blocks separate distinct objects completely
    // (paper Fig 8: near-perfect reduction for ScalParC).
    stats_ = GArray64::alloc(m.galloc(), kAttrs * kValues * 4, 32,
                             "scalparc.stats");
    for (std::uint64_t i = 0; i < kAttrs * kValues * 4; ++i) {
      stats_.poke(m, i, 0);
    }

    // Records: kAttrs categorical attributes + binary class label.
    Rng rng(p.seed * 43 + 19);
    records_.resize(nrecords_ * kAttrs);
    labels_.resize(nrecords_);
    for (std::uint64_t r = 0; r < nrecords_; ++r) {
      for (std::uint32_t a = 0; a < kAttrs; ++a) {
        records_[r * kAttrs + a] =
            static_cast<std::uint8_t>(rng.below(kValues));
      }
      labels_[r] = rng.chance(0.5) ? 1 : 0;
    }

    const std::uint64_t per = nrecords_ / threads_;
    for (CoreId t = 0; t < threads_; ++t) {
      m.spawn(t, worker(m.ctx(t), this, t * per, (t + 1) * per));
    }
  }

  std::string validate(Machine& m) override {
    // Reconstruct the histogram on the host and compare exactly.
    std::vector<std::uint64_t> expect(kAttrs * kValues * 2, 0);
    for (std::uint64_t r = 0; r < nrecords_; ++r) {
      for (std::uint32_t a = 0; a < kAttrs; ++a) {
        const std::uint32_t v = records_[r * kAttrs + a];
        expect[(a * kValues + v) * 2] += 1;
        expect[(a * kValues + v) * 2 + 1] += labels_[r];
      }
    }
    for (std::uint64_t i = 0; i < kAttrs * kValues; ++i) {
      if (stats_.peek(m, i * 4) != expect[i * 2] ||
          stats_.peek(m, i * 4 + 1) != expect[i * 2 + 1]) {
        return "scalparc: histogram cell " + std::to_string(i) + " mismatch";
      }
    }
    return {};
  }

 private:
  static constexpr std::uint32_t kAttrs = 6;
  static constexpr std::uint32_t kValues = 12;

  static Task<void> worker(GuestCtx& c, ScalparcWorkload* w, std::uint64_t lo,
                           std::uint64_t hi) {
    for (std::uint64_t r = lo; r < hi; ++r) {
      const std::uint64_t label = w->labels_[r];
      // One transaction per record: update every attribute's stat object.
      co_await c.run_tx([&]() -> Task<void> {
        for (std::uint32_t a = 0; a < kAttrs; ++a) {
          const std::uint32_t v = w->records_[r * kAttrs + a];
          const std::uint64_t obj = (a * std::uint64_t{kValues} + v) * 4;
          const std::uint64_t cnt = co_await w->stats_.get(c, obj);
          co_await w->stats_.set(c, obj, cnt + 1);
          const std::uint64_t c1 = co_await w->stats_.get(c, obj + 1);
          co_await w->stats_.set(c, obj + 1, c1 + label);
        }
      });
      co_await c.work(kAttrs * 6);  // gini computation share
    }
  }

  GArray64 stats_;
  std::vector<std::uint8_t> records_;
  std::vector<std::uint64_t> labels_;
  std::uint64_t nrecords_ = 0;
  std::uint32_t threads_ = 0;
};

}  // namespace

std::unique_ptr<Workload> make_scalparc() {
  return std::make_unique<ScalparcWorkload>();
}

}  // namespace asfsim
