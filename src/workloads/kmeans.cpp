// kmeans — K-means clustering (STAMP).
//
// Paper-relevant structure: the shared accumulators (new_centers,
// new_counts) are unpadded 32-bit float/int arrays with an odd dimension
// count, so logically-distinct cluster rows straddle 8- and 16-byte
// boundaries. That reproduces the paper's kmeans signature: 4-byte-granular
// intra-line accesses (Fig 5), false conflicts concentrated on the few
// accumulator lines (Fig 4), RAW-dominant false conflicts (Fig 2), and
// residual false sharing even with 8-byte sub-blocks (Fig 8).
#include <cmath>
#include <vector>

#include "guest/barrier.hpp"
#include "guest/garray.hpp"
#include "workloads/workload.hpp"

namespace asfsim {
namespace {

class KmeansWorkload final : public Workload {
 public:
  const char* name() const override { return "kmeans"; }
  const char* description() const override { return "K-means clustering"; }

  void setup(Machine& m, const WorkloadParams& p) override {
    npoints_ = p.scaled(640);
    threads_ = p.threads;
    npoints_ -= npoints_ % threads_;  // even partition

    points_ = GArray32::alloc(m.galloc(), npoints_ * kDims, 4,
                              "kmeans.points");
    centers_ = GArray32::alloc(m.galloc(), kClusters * kDims, 4,
                               "kmeans.centers");
    new_centers_ = GArray32::alloc(m.galloc(), kClusters * kDims, 4,
                                   "kmeans.new_centers");
    new_counts_ = GArray32::alloc(m.galloc(), kClusters, 4,
                                  "kmeans.new_counts");
    memberships_ = GArray32::alloc(m.galloc(), npoints_, 4,
                                   "kmeans.memberships");

    Rng rng(p.seed * 77 + 5);
    // Points drawn around kClusters fuzzy blobs.
    for (std::uint64_t i = 0; i < npoints_; ++i) {
      const std::uint64_t blob = rng.below(kClusters);
      for (std::uint32_t d = 0; d < kDims; ++d) {
        const float v = static_cast<float>(blob) * 10.0f +
                        static_cast<float>(rng.next_double() * 4.0 - 2.0);
        points_.poke(m, i * kDims + d, f2u(v));
      }
      memberships_.poke(m, i, kClusters);  // invalid -> forces first update
    }
    // Initial centers: first kClusters points.
    for (std::uint32_t k = 0; k < kClusters; ++k) {
      for (std::uint32_t d = 0; d < kDims; ++d) {
        centers_.poke(m, k * kDims + d, points_.peek(m, k * kDims + d));
      }
      new_counts_.poke(m, k, 0);
    }
    for (std::uint64_t i = 0; i < kClusters * kDims; ++i) {
      new_centers_.poke(m, i, f2u(0.0f));
    }

    barrier_ = std::make_unique<GuestBarrier>(m.kernel(), threads_);
    const std::uint64_t per = npoints_ / threads_;
    for (CoreId t = 0; t < threads_; ++t) {
      m.spawn(t, worker(m.ctx(t), this, t * per, (t + 1) * per, t == 0));
    }
  }

  std::string validate(Machine& m) override {
    // Final-iteration accumulators must account for every point exactly once.
    std::uint64_t total = 0;
    for (std::uint32_t k = 0; k < kClusters; ++k) {
      total += new_counts_.peek(m, k);
    }
    if (total != npoints_) {
      return "kmeans: accumulated counts " + std::to_string(total) +
             " != npoints " + std::to_string(npoints_);
    }
    for (std::uint64_t i = 0; i < npoints_; ++i) {
      if (memberships_.peek(m, i) >= kClusters) {
        return "kmeans: invalid membership for point " + std::to_string(i);
      }
    }
    return {};
  }

 private:
  static constexpr std::uint32_t kDims = 7;  // odd: rows straddle sub-blocks
  static constexpr std::uint32_t kClusters = 13;
  static constexpr std::uint32_t kIters = 3;

  static Task<void> worker(GuestCtx& c, KmeansWorkload* w, std::uint64_t lo,
                           std::uint64_t hi, bool leader) {
    for (std::uint32_t iter = 0; iter < kIters; ++iter) {
      for (std::uint64_t i = lo; i < hi; ++i) {
        // Nearest-center search: non-transactional shared reads (as in
        // STAMP, the distance computation is outside the transaction).
        float point[kDims];
        for (std::uint32_t d = 0; d < kDims; ++d) {
          point[d] = u2f(static_cast<std::uint32_t>(
              co_await w->points_.get(c, i * kDims + d)));
        }
        std::uint32_t best = 0;
        float best_dist = 1e30f;
        for (std::uint32_t k = 0; k < kClusters; ++k) {
          float dist = 0.0f;
          for (std::uint32_t d = 0; d < kDims; ++d) {
            const float cd = u2f(static_cast<std::uint32_t>(
                co_await w->centers_.get(c, k * kDims + d)));
            const float diff = point[d] - cd;
            dist += diff * diff;
          }
          if (dist < best_dist) {
            best_dist = dist;
            best = k;
          }
        }
        co_await w->memberships_.set(c, i, best);
        co_await c.work(kDims * 4);  // distance arithmetic

        // Transactional accumulation into the shared new-center row.
        co_await c.run_tx([&]() -> Task<void> {
          for (std::uint32_t d = 0; d < kDims; ++d) {
            const std::uint64_t idx = best * kDims + d;
            const float cur = u2f(static_cast<std::uint32_t>(
                co_await w->new_centers_.get(c, idx)));
            co_await w->new_centers_.set(c, idx, f2u(cur + point[d]));
          }
          const std::uint64_t cnt = co_await w->new_counts_.get(c, best);
          co_await w->new_counts_.set(c, best, cnt + 1);
        });
      }

      co_await w->barrier_->arrive_and_wait(c);
      if (leader && iter + 1 < kIters) {
        // Leader recomputes the centers and resets the accumulators
        // (non-transactional phase, as in the original).
        for (std::uint32_t k = 0; k < kClusters; ++k) {
          const std::uint64_t cnt = co_await w->new_counts_.get(c, k);
          for (std::uint32_t d = 0; d < kDims; ++d) {
            const std::uint64_t idx = k * kDims + d;
            if (cnt > 0) {
              const float sum = u2f(static_cast<std::uint32_t>(
                  co_await w->new_centers_.get(c, idx)));
              co_await w->centers_.set(
                  c, idx, f2u(sum / static_cast<float>(cnt)));
            }
            co_await w->new_centers_.set(c, idx, f2u(0.0f));
          }
          co_await w->new_counts_.set(c, k, 0);
        }
      }
      co_await w->barrier_->arrive_and_wait(c);
    }
  }

  GArray32 points_, centers_, new_centers_, new_counts_, memberships_;
  std::unique_ptr<GuestBarrier> barrier_;
  std::uint64_t npoints_ = 0;
  std::uint32_t threads_ = 0;
};

}  // namespace

std::unique_ptr<Workload> make_kmeans() {
  return std::make_unique<KmeansWorkload>();
}

}  // namespace asfsim
