// vacation — client/server travel reservation system (STAMP).
//
// Three red-black-tree-backed resource tables (cars / flights / rooms) plus
// a customer table. Client transactions are long, read-dominant tree
// traversals over malloc-packed 48-byte nodes with occasional updates —
// the paper's WAR-dominant benchmark (Fig 2) with near-uniform false-
// conflict distribution across lines (Fig 4) and 8-byte-granular intra-line
// accesses (Fig 5).
#include <vector>

#include "guest/grbtree.hpp"
#include "workloads/workload.hpp"

namespace asfsim {
namespace {

class VacationWorkload final : public Workload {
 public:
  const char* name() const override { return "vacation"; }
  const char* description() const override {
    return "client/server travel reservation system";
  }

  void setup(Machine& m, const WorkloadParams& p) override {
    nrelations_ = p.scaled(128);
    ntx_per_thread_ = p.scaled(96);
    threads_ = p.threads;

    for (auto& table : tables_) table = GRBTree::create(m);
    customers_ = GRBTree::create(m);
    log_seq_ = m.galloc().alloc(
        64, 64, m.galloc().register_site("vacation.log_seq", 64));
    m.poke(log_seq_, 8, 0);

    Rng rng(p.seed * 57 + 11);
    initial_avail_ = 0;
    for (auto& table : tables_) {
      for (std::uint64_t id = 1; id <= nrelations_; ++id) {
        const std::uint64_t avail = 2 + rng.below(6);
        table.host_insert(m, id, avail);
        initial_avail_ += avail;
      }
    }
    for (std::uint64_t cid = 1; cid <= nrelations_; ++cid) {
      customers_.host_insert(m, cid, 0);
    }

    for (CoreId t = 0; t < threads_; ++t) {
      m.spawn(t, worker(m.ctx(t), this, ntx_per_thread_));
    }
  }

  std::string validate(Machine& m) override {
    for (const auto& table : tables_) {
      if (table.host_validate(m) < 0) {
        return "vacation: resource tree violates red-black invariants";
      }
    }
    if (customers_.host_validate(m) < 0) {
      return "vacation: customer tree violates red-black invariants";
    }
    // Conservation: every unit that left a resource table must appear as a
    // customer reservation.
    std::uint64_t avail = 0;
    for (std::uint64_t id = 1; id <= nrelations_; ++id) {
      for (const auto& table : tables_) {
        avail += table.host_find(m, id, 0);
      }
    }
    std::uint64_t reserved = 0;
    for (std::uint64_t cid = 1; cid <= nrelations_; ++cid) {
      reserved += customers_.host_find(m, cid, 0);
    }
    if (avail + reserved != initial_avail_) {
      return "vacation: availability not conserved (" + std::to_string(avail) +
             " + " + std::to_string(reserved) +
             " != " + std::to_string(initial_avail_) + ")";
    }
    return {};
  }

 private:
  static constexpr std::uint32_t kTables = 3;  // cars, flights, rooms
  static constexpr std::uint32_t kQueriesPerTx = 6;
  static constexpr std::uint64_t kOfferBase = 1u << 20;  // above resource ids

  static Task<void> worker(GuestCtx& c, VacationWorkload* w,
                           std::uint64_t ntx) {
    for (std::uint64_t i = 0; i < ntx; ++i) {
      const std::uint64_t action = c.rng().below(100);
      std::uint64_t ids[kQueriesPerTx];
      std::uint32_t which[kQueriesPerTx];
      for (std::uint32_t q = 0; q < kQueriesPerTx; ++q) {
        // Popular resources: half the queries hit a small hot set, which is
        // what produces vacation's true conflicts.
        ids[q] = c.rng().chance(0.5) ? 1 + c.rng().below(8)
                                     : 1 + c.rng().below(w->nrelations_);
        which[q] = static_cast<std::uint32_t>(c.rng().below(kTables));
      }
      const std::uint64_t cid = c.rng().chance(0.5)
                                    ? 1 + c.rng().below(8)
                                    : 1 + c.rng().below(w->nrelations_);

      if (action < 80) {
        // Make reservation: browse several resources, book the first
        // available one for the customer. A fraction of bookings also go
        // through the shared reservation log (snapshot at start, sequence
        // bump at commit) whose conflicts are true conflicts.
        const bool logged = c.rng().chance(0.3);
        co_await c.run_tx([&]() -> Task<void> {
          std::uint64_t snap = 0;
          if (logged) snap = co_await c.load_u64(w->log_seq_);
          std::uint32_t best = kQueriesPerTx;
          std::uint64_t best_avail = 0;
          for (std::uint32_t q = 0; q < kQueriesPerTx; ++q) {
            const std::uint64_t avail =
                co_await w->tables_[which[q]].find(c, ids[q], 0);
            if (avail > 0 && best == kQueriesPerTx) {
              best = q;
              best_avail = avail;
            }
          }
          if (best == kQueriesPerTx) co_return;  // nothing bookable
          co_await w->tables_[which[best]].update(c, ids[best],
                                                  best_avail - 1);
          const std::uint64_t r = co_await w->customers_.find(c, cid, 0);
          co_await w->customers_.update(c, cid, r + 1);
          if (logged) co_await c.store_u64(w->log_seq_, snap + 1);
        });
      } else if (action < 90) {
        // Return a reservation held by the customer to a resource table.
        co_await c.run_tx([&]() -> Task<void> {
          const std::uint64_t r = co_await w->customers_.find(c, cid, 0);
          if (r == 0) co_return;
          const std::uint64_t avail =
              co_await w->tables_[which[0]].find(c, ids[0], 0);
          co_await w->tables_[which[0]].update(c, ids[0], avail + 1);
          co_await w->customers_.update(c, cid, r - 1);
        });
      } else if (action < 96) {
        // Manage tables: browse for price checks (read-only traversals).
        co_await c.run_tx([&]() -> Task<void> {
          std::uint64_t sum = 0;
          for (std::uint32_t q = 0; q < kQueriesPerTx; ++q) {
            sum += co_await w->tables_[which[q]].find(c, ids[q], 0);
          }
          (void)sum;
        });
      } else {
        // Structural updates: add or retire zero-availability "special
        // offer" entries (exercises tree rebalancing under contention;
        // value 0 keeps the conservation invariant untouched).
        const std::uint64_t offer = kOfferBase + c.rng().below(64);
        const bool add = c.rng().chance(0.5);
        co_await c.run_tx([&]() -> Task<void> {
          if (add) {
            co_await w->tables_[which[0]].insert(c, offer, 0);
          } else {
            co_await w->tables_[which[0]].erase(c, offer);
          }
        });
      }
      co_await c.work(40);  // client think time
    }
  }

  GRBTree tables_[kTables];
  GRBTree customers_;
  Addr log_seq_ = 0;
  std::uint64_t nrelations_ = 0, ntx_per_thread_ = 0, initial_avail_ = 0;
  std::uint32_t threads_ = 0;
};

}  // namespace

std::unique_ptr<Workload> make_vacation() {
  return std::make_unique<VacationWorkload>();
}

}  // namespace asfsim
