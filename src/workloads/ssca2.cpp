// ssca2 — SSCA#2 graph construction kernel (STAMP).
//
// Tiny transactions increment per-node degree counters and fill adjacency
// slots. Degrees are unpadded 32-bit cells (16 nodes per cache line), so two
// transactions touching the same line almost never touch the same node —
// the paper's >90% false-conflict-rate signature for ssca2 (Fig 1).
#include <algorithm>
#include <vector>

#include "guest/barrier.hpp"
#include "guest/garray.hpp"
#include "workloads/workload.hpp"

namespace asfsim {
namespace {

class Ssca2Workload final : public Workload {
 public:
  const char* name() const override { return "ssca2"; }
  const char* description() const override { return "graph kernels"; }

  void setup(Machine& m, const WorkloadParams& p) override {
    nnodes_ = p.scaled(384);
    nedges_ = nnodes_ * 3;
    threads_ = p.threads;
    nedges_ -= nedges_ % threads_;

    degree_ = GArray32::alloc(m.galloc(), nnodes_, 4, "ssca2.degree");
    offsets_ = GArray32::alloc(m.galloc(), nnodes_ + 1, 4, "ssca2.offsets");
    cursor_ = GArray32::alloc(m.galloc(), nnodes_, 4, "ssca2.cursor");
    adjacency_ = GArray32::alloc(m.galloc(), 2 * nedges_, 4, "ssca2.adjacency");
    edges_u_ = GArray32::alloc(m.galloc(), nedges_, 4, "ssca2.edges_u");
    edges_v_ = GArray32::alloc(m.galloc(), nedges_, 4, "ssca2.edges_v");

    Rng rng(p.seed * 31 + 7);
    edge_list_.clear();
    for (std::uint64_t e = 0; e < nedges_; ++e) {
      const std::uint32_t u = static_cast<std::uint32_t>(rng.below(nnodes_));
      std::uint32_t v = static_cast<std::uint32_t>(rng.below(nnodes_));
      if (v == u) v = (v + 1) % nnodes_;
      edges_u_.poke(m, e, u);
      edges_v_.poke(m, e, v);
      edge_list_.emplace_back(u, v);
    }
    for (std::uint64_t n = 0; n < nnodes_; ++n) {
      degree_.poke(m, n, 0);
      cursor_.poke(m, n, 0);
    }

    barrier_ = std::make_unique<GuestBarrier>(m.kernel(), threads_);
    const std::uint64_t per = nedges_ / threads_;
    for (CoreId t = 0; t < threads_; ++t) {
      m.spawn(t, worker(m.ctx(t), this, t * per, (t + 1) * per, t == 0));
    }
  }

  std::string validate(Machine& m) override {
    std::uint64_t total_degree = 0;
    for (std::uint64_t n = 0; n < nnodes_; ++n) {
      total_degree += degree_.peek(m, n);
    }
    if (total_degree != 2 * nedges_) {
      return "ssca2: total degree " + std::to_string(total_degree) +
             " != 2*edges " + std::to_string(2 * nedges_);
    }
    // The adjacency multiset must equal the edge multiset (both directions).
    std::vector<std::uint64_t> expect, got;
    for (const auto& [u, v] : edge_list_) {
      expect.push_back((std::uint64_t{u} << 32) | v);
      expect.push_back((std::uint64_t{v} << 32) | u);
    }
    for (std::uint64_t n = 0; n < nnodes_; ++n) {
      const std::uint64_t off = offsets_.peek(m, n);
      const std::uint64_t deg = degree_.peek(m, n);
      if (cursor_.peek(m, n) != deg) {
        return "ssca2: node " + std::to_string(n) + " cursor != degree";
      }
      for (std::uint64_t i = 0; i < deg; ++i) {
        got.push_back((std::uint64_t{n} << 32) | adjacency_.peek(m, off + i));
      }
    }
    std::sort(expect.begin(), expect.end());
    std::sort(got.begin(), got.end());
    if (expect != got) return "ssca2: adjacency multiset mismatch";
    return {};
  }

 private:
  static Task<void> worker(GuestCtx& c, Ssca2Workload* w, std::uint64_t lo,
                           std::uint64_t hi, bool leader) {
    // Phase 1: degree counting — one tiny transaction per edge.
    for (std::uint64_t e = lo; e < hi; ++e) {
      const std::uint64_t u = co_await w->edges_u_.get(c, e);
      const std::uint64_t v = co_await w->edges_v_.get(c, e);
      co_await c.run_tx([&]() -> Task<void> {
        const std::uint64_t du = co_await w->degree_.get(c, u);
        co_await w->degree_.set(c, u, du + 1);
        const std::uint64_t dv = co_await w->degree_.get(c, v);
        co_await w->degree_.set(c, v, dv + 1);
      });
      co_await c.work(4);
    }

    co_await w->barrier_->arrive_and_wait(c);
    if (leader) {
      // Exclusive prefix sum over degrees (non-transactional leader phase).
      std::uint64_t acc = 0;
      for (std::uint64_t n = 0; n < w->nnodes_; ++n) {
        co_await w->offsets_.set(c, n, acc);
        acc += co_await w->degree_.get(c, n);
      }
      co_await w->offsets_.set(c, w->nnodes_, acc);
    }
    co_await w->barrier_->arrive_and_wait(c);

    // Phase 2: adjacency placement — one transaction per directed edge end.
    for (std::uint64_t e = lo; e < hi; ++e) {
      const std::uint64_t u = co_await w->edges_u_.get(c, e);
      const std::uint64_t v = co_await w->edges_v_.get(c, e);
      for (int dir = 0; dir < 2; ++dir) {
        const std::uint64_t from = dir == 0 ? u : v;
        const std::uint64_t to = dir == 0 ? v : u;
        co_await c.run_tx([&]() -> Task<void> {
          const std::uint64_t base = co_await w->offsets_.get(c, from);
          const std::uint64_t cur = co_await w->cursor_.get(c, from);
          co_await w->cursor_.set(c, from, cur + 1);
          co_await w->adjacency_.set(c, base + cur, to);
        });
        co_await c.work(3);
      }
    }
  }

  GArray32 degree_, offsets_, cursor_, adjacency_, edges_u_, edges_v_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edge_list_;
  std::unique_ptr<GuestBarrier> barrier_;
  std::uint64_t nnodes_ = 0, nedges_ = 0;
  std::uint32_t threads_ = 0;
};

}  // namespace

std::unique_ptr<Workload> make_ssca2() {
  return std::make_unique<Ssca2Workload>();
}

}  // namespace asfsim
