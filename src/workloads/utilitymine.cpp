// utilitymine — high-utility itemset mining (RMS-TM).
//
// Transaction-weighted-utility accumulation over very fine-grained shared
// state: unpadded 32-bit per-item utility cells, with records touching RUNS
// of adjacent item ids. Neighboring 4-byte cells inside the same 8- or
// 16-byte sub-block keep producing false conflicts — the paper's
// explanation for UtilityMine's low reduction rate at 4 sub-blocks (Fig 8,
// §V-B), only fixed by 16 sub-blocks (4-byte granularity).
#include <vector>

#include "guest/garray.hpp"
#include "workloads/workload.hpp"

namespace asfsim {
namespace {

class UtilityMineWorkload final : public Workload {
 public:
  const char* name() const override { return "utilitymine"; }
  const char* description() const override {
    return "high-utility itemset mining";
  }

  void setup(Machine& m, const WorkloadParams& p) override {
    nrecords_ = p.scaled(420);
    threads_ = p.threads;
    nrecords_ -= nrecords_ % threads_;

    util_ = GArray32::alloc(m.galloc(), kItems, 4, "utilitymine.util");
    twu_ = GArray32::alloc(m.galloc(), kItems, 4, "utilitymine.twu");
    for (std::uint64_t i = 0; i < kItems; ++i) {
      util_.poke(m, i, 0);
      twu_.poke(m, i, 0);
    }

    // Records: a run of kRunLen adjacent items with per-item utilities.
    Rng rng(p.seed * 149 + 29);
    starts_.resize(nrecords_);
    utilvals_.resize(nrecords_ * kRunLen);
    for (std::uint64_t r = 0; r < nrecords_; ++r) {
      // Frequent items cluster: half the records touch a small hot region,
      // so concurrent runs land on ADJACENT 4-byte cells. Neighboring cells
      // share 8- and 16-byte sub-blocks, which is why utilitymine's false
      // conflicts barely react to 4 sub-blocks (paper Fig 8, §V-B).
      starts_[r] = static_cast<std::uint32_t>(
          rng.chance(0.3) ? rng.below(32)
                          : rng.below(kItems - kRunLen));
      for (std::uint32_t j = 0; j < kRunLen; ++j) {
        utilvals_[r * kRunLen + j] = 1 + static_cast<std::uint32_t>(rng.below(9));
      }
    }

    const std::uint64_t per = nrecords_ / threads_;
    for (CoreId t = 0; t < threads_; ++t) {
      m.spawn(t, worker(m.ctx(t), this, t * per, (t + 1) * per));
    }
  }

  std::string validate(Machine& m) override {
    std::vector<std::uint64_t> expect_util(kItems, 0), expect_twu(kItems, 0);
    for (std::uint64_t r = 0; r < nrecords_; ++r) {
      std::uint64_t total = 0;
      for (std::uint32_t j = 0; j < kRunLen; ++j) {
        total += utilvals_[r * kRunLen + j];
      }
      for (std::uint32_t j = 0; j < kRunLen; ++j) {
        expect_util[starts_[r] + j] += utilvals_[r * kRunLen + j];
        expect_twu[starts_[r] + j] += total;
      }
    }
    for (std::uint32_t i = 0; i < kItems; ++i) {
      if (util_.peek(m, i) != expect_util[i]) {
        return "utilitymine: utility of item " + std::to_string(i) +
               " mismatch";
      }
      if (twu_.peek(m, i) != expect_twu[i]) {
        return "utilitymine: TWU of item " + std::to_string(i) + " mismatch";
      }
    }
    return {};
  }

 private:
  static constexpr std::uint32_t kItems = 384;
  static constexpr std::uint32_t kRunLen = 4;

  static Task<void> worker(GuestCtx& c, UtilityMineWorkload* w,
                           std::uint64_t lo, std::uint64_t hi) {
    for (std::uint64_t r = lo; r < hi; ++r) {
      const std::uint32_t start = w->starts_[r];
      const std::uint32_t* uv = &w->utilvals_[r * kRunLen];
      std::uint64_t total = 0;
      for (std::uint32_t j = 0; j < kRunLen; ++j) total += uv[j];

      co_await c.run_tx([&]() -> Task<void> {
        for (std::uint32_t j = 0; j < kRunLen; ++j) {
          const std::uint64_t u = co_await w->util_.get(c, start + j);
          co_await w->util_.set(c, start + j, u + uv[j]);
          const std::uint64_t t = co_await w->twu_.get(c, start + j);
          co_await w->twu_.set(c, start + j, t + total);
        }
      });
      co_await c.work(kRunLen * 5);
    }
  }

  GArray32 util_, twu_;
  std::vector<std::uint32_t> starts_;
  std::vector<std::uint32_t> utilvals_;
  std::uint64_t nrecords_ = 0;
  std::uint32_t threads_ = 0;
};

}  // namespace

std::unique_ptr<Workload> make_utilitymine() {
  return std::make_unique<UtilityMineWorkload>();
}

}  // namespace asfsim
