#include <stdexcept>

#include "workloads/workload.hpp"

namespace asfsim {

const std::vector<WorkloadInfo>& workload_registry() {
  static const std::vector<WorkloadInfo> reg = {
      // Paper Table III order.
      {"intruder", &make_intruder},
      {"kmeans", &make_kmeans},
      {"labyrinth", &make_labyrinth},
      {"ssca2", &make_ssca2},
      {"vacation", &make_vacation},
      {"genome", &make_genome},
      {"scalparc", &make_scalparc},
      {"apriori", &make_apriori},
      {"fluidanimate", &make_fluidanimate},
      {"utilitymine", &make_utilitymine},
      // Excluded by the paper (capacity overflow demo; see workloads/yada.cpp).
      {"yada", &make_yada},
      // Excluded by the paper for non-determinism; deterministic here.
      {"bayes", &make_bayes},
      // Microworkloads (tests/examples).
      {"counter", &make_counter},
      {"bank", &make_bank},
      // Adversarial contention storm (watchdog demo, docs/robustness.md).
      {"livelock", &make_livelock},
      // OLTP/KV family: zipf-skewed YCSB-style transactions (src/oltp/).
      {"oltp", &make_oltp},
  };
  return reg;
}

const std::vector<std::string>& paper_benchmarks() {
  static const std::vector<std::string> names = {
      "intruder", "kmeans",   "labyrinth", "ssca2",        "vacation",
      "genome",   "scalparc", "apriori",   "fluidanimate", "utilitymine",
  };
  return names;
}

std::unique_ptr<Workload> make_workload(const std::string& name) {
  for (const auto& w : workload_registry()) {
    if (name == w.name) return w.make();
  }
  throw std::invalid_argument("unknown workload: " + name);
}

}  // namespace asfsim
