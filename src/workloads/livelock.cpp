// livelock — adversarial microworkload: every thread hammers ONE shared
// cell with a read–long-compute–write transaction. Under requester-wins
// each access aborts whoever got there first, so with the software fallback
// disabled (SimConfig::max_tx_retries = 0) and a small backoff cap the
// system can stop committing entirely — the scenario the livelock watchdog
// (SimConfig::watchdog_cycles) exists to diagnose. Under the default config
// it completes via backoff + fallback and self-validates like any workload.
#include "guest/garray.hpp"
#include "workloads/workload.hpp"

namespace asfsim {
namespace {

class LivelockWorkload final : public Workload {
 public:
  const char* name() const override { return "livelock"; }
  const char* description() const override {
    return "single-cell contention storm (watchdog/robustness demo)";
  }

  void setup(Machine& m, const WorkloadParams& p) override {
    ntx_per_thread_ = p.scaled(40);
    cell_ = GArray64::alloc(m.galloc(), 1, 8, "livelock.cell");
    cell_.poke(m, 0, 0);
    threads_ = p.threads;
    for (CoreId t = 0; t < threads_; ++t) {
      m.spawn(t, worker(m.ctx(t), this, ntx_per_thread_));
    }
  }

  std::string validate(Machine& m) override {
    const std::uint64_t got = cell_.peek(m, 0);
    const std::uint64_t expect = threads_ * ntx_per_thread_;
    if (got != expect) {
      return "livelock cell mismatch: got " + std::to_string(got) +
             ", expected " + std::to_string(expect);
    }
    return {};
  }

 private:
  static Task<void> worker(GuestCtx& c, LivelockWorkload* w,
                           std::uint64_t ntx) {
    for (std::uint64_t i = 0; i < ntx; ++i) {
      co_await c.run_tx([&]() -> Task<void> {
        const std::uint64_t v = co_await w->cell_.get(c, 0);
        // A long in-transaction window: plenty of time for every other
        // core's read-modify-write to doom this one.
        co_await c.work(150);
        co_await w->cell_.set(c, 0, v + 1);
      });
    }
  }

  GArray64 cell_;
  std::uint64_t ntx_per_thread_ = 0;
  std::uint32_t threads_ = 0;
};

}  // namespace

std::unique_ptr<Workload> make_livelock() {
  return std::make_unique<LivelockWorkload>();
}

}  // namespace asfsim
