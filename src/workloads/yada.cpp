// yada — Delaunay mesh refinement (STAMP). The paper EXCLUDES yada (and
// hmm) because "their transactions are extremely large and cannot fit into
// baseline ASF hardware" (§III footnote). This port exists to demonstrate
// that exclusion: each refinement transaction rewrites a large cavity of
// triangle records whose footprint overflows the 2-way L1's speculative
// capacity, so the run is dominated by capacity aborts resolved through the
// serializing software fallback. bench/ablation_capacity quantifies it.
//
// The mesh is modeled as a pool of triangle records (quality flag + three
// vertex ids + three neighbor links); a refinement transaction picks a
// "bad" triangle, walks a cavity of fixed radius, re-stamps every record in
// it, and marks the seed as refined. Records are deliberately strided one
// L1-set apart so a cavity cannot be cached speculatively — the defining
// yada behaviour, not an incidental one.
#include <vector>

#include "guest/garray.hpp"
#include "guest/gheap.hpp"
#include "workloads/workload.hpp"

namespace asfsim {
namespace {

class YadaWorkload final : public Workload {
 public:
  const char* name() const override { return "yada"; }
  const char* description() const override {
    return "Delaunay mesh refinement (overflows ASF capacity; excluded "
           "from the paper's evaluation)";
  }

  void setup(Machine& m, const WorkloadParams& p) override {
    ntriangles_ = 3 * kSetStride;  // three L1-way-conflicting banks
    nrefinements_ = p.scaled(24);
    threads_ = p.threads;
    nrefinements_ -= nrefinements_ % threads_;
    if (nrefinements_ == 0) nrefinements_ = threads_;

    // One 8-byte quality stamp per triangle, placed so that consecutive
    // cavity members alias the same 2-way L1 set (set stride = 32KB).
    quality_ = GArray64::alloc(m.galloc(), ntriangles_, kLineBytes,
                               "yada.quality");
    for (std::uint64_t i = 0; i < ntriangles_; ++i) quality_.poke(m, i, 1);
    refined_ = m.galloc().alloc(64, 64,
                                m.galloc().register_site("yada.refined", 64));
    m.poke(refined_, 8, 0);

    // Priority work queue (the STAMP yada work heap): seeds ordered by
    // badness; workers pull transactionally.
    work_ = GHeap::create(m, nrefinements_ + 1);
    for (std::uint64_t r = 0; r < nrefinements_; ++r) {
      work_.host_push(m, (r * 37) % kSetStride);
    }

    for (CoreId t = 0; t < threads_; ++t) {
      m.spawn(t, worker(m.ctx(t), this));
    }
  }

  std::string validate(Machine& m) override {
    if (work_.host_size(m) != 0) return "yada: work left in the heap";
    if (m.peek(refined_, 8) != nrefinements_) {
      return "yada: refined " + std::to_string(m.peek(refined_, 8)) +
             " cavities, expected " + std::to_string(nrefinements_);
    }
    // Every cavity member was re-stamped exactly once per covering cavity:
    // total stamp mass must match.
    std::uint64_t mass = 0;
    for (std::uint64_t i = 0; i < ntriangles_; ++i) {
      mass += quality_.peek(m, i) - 1;
    }
    if (mass != nrefinements_ * kCavity) {
      return "yada: stamp mass " + std::to_string(mass) + " != " +
             std::to_string(nrefinements_ * kCavity);
    }
    return {};
  }

 private:
  // A cavity touches kCavity records, one per L1-set-aliasing bank — three
  // speculative lines in one 2-way set can never be held simultaneously.
  static constexpr std::uint32_t kCavity = 3;
  static constexpr std::uint64_t kSetStride = 4096;  // elements per L1 way (512 lines x 8 cells)

  static Task<void> worker(GuestCtx& c, YadaWorkload* w) {
    for (;;) {
      // Pull the worst triangle off the shared priority work queue.
      std::uint64_t seed = GHeap::kEmpty;
      co_await c.run_tx([&]() -> Task<void> {
        seed = co_await w->work_.pop(c);
      });
      if (seed == GHeap::kEmpty) break;
      co_await c.run_tx([&]() -> Task<void> {
        // Re-triangulate the cavity: every member aliases the same L1 set.
        for (std::uint32_t k = 0; k < kCavity; ++k) {
          const std::uint64_t tri = seed + k * kSetStride;
          const std::uint64_t q = co_await w->quality_.get(c, tri);
          co_await c.work(25);  // circumcircle checks
          co_await w->quality_.set(c, tri, q + 1);
        }
        const std::uint64_t n = co_await c.load_u64(w->refined_);
        co_await c.store_u64(w->refined_, n + 1);
      });
      co_await c.work(60);  // work-queue management
    }
  }

  GArray64 quality_;
  GHeap work_;
  Addr refined_ = 0;
  std::uint64_t ntriangles_ = 0, nrefinements_ = 0;
  std::uint32_t threads_ = 0;
};

}  // namespace

std::unique_ptr<Workload> make_yada() { return std::make_unique<YadaWorkload>(); }

}  // namespace asfsim
