// labyrinth — maze routing (STAMP, Lee's algorithm).
//
// Each worker routes point-to-point paths on a shared grid of unpadded
// 32-bit cells. Planning uses a non-transactional snapshot (STAMP's
// grid-copy trick); the transaction re-validates every planned cell and
// calls a user abort when a concurrent route claimed one — so, as in the
// paper, most of labyrinth's aborts are user aborts and its absolute
// conflict count is tiny (making Fig 9's percentage noisy).
#include <algorithm>
#include <queue>
#include <vector>

#include "guest/garray.hpp"
#include "workloads/workload.hpp"

namespace asfsim {
namespace {

class LabyrinthWorkload final : public Workload {
 public:
  const char* name() const override { return "labyrinth"; }
  const char* description() const override { return "maze routing"; }

  void setup(Machine& m, const WorkloadParams& p) override {
    side_ = 24 + static_cast<std::uint32_t>(8 * p.scale);
    nroutes_ = p.scaled(48);
    threads_ = p.threads;
    nroutes_ -= nroutes_ % threads_;

    grid_ = GArray32::alloc(m.galloc(), side_ * side_, 4, "labyrinth.grid");
    for (std::uint64_t i = 0; i < side_ * side_; ++i) grid_.poke(m, i, 0);
    routed_ = m.galloc().alloc(
        64, 64, m.galloc().register_site("labyrinth.routed", 64));
    m.poke(routed_, 8, 0);

    // Endpoints: distinct random cells, reserved up front so routes only
    // compete for intermediate cells.
    Rng rng(p.seed * 211 + 17);
    endpoints_.clear();
    std::vector<bool> used(side_ * side_, false);
    for (std::uint64_t r = 0; r < nroutes_; ++r) {
      std::uint32_t a, b;
      do {
        a = static_cast<std::uint32_t>(rng.below(side_ * side_));
      } while (used[a]);
      used[a] = true;
      do {
        b = static_cast<std::uint32_t>(rng.below(side_ * side_));
      } while (used[b]);
      used[b] = true;
      endpoints_.emplace_back(a, b);
    }

    machine_ = &m;
    const std::uint64_t per = nroutes_ / threads_;
    for (CoreId t = 0; t < threads_; ++t) {
      m.spawn(t, worker(m.ctx(t), this, t * per, (t + 1) * per));
    }
  }

  std::string validate(Machine& m) override {
    // Every routed path's cells must carry exactly its own id and form a
    // connected src->dst chain; unrouted routes must have left no marks.
    std::vector<std::vector<std::uint32_t>> cells_of(nroutes_ + 1);
    for (std::uint64_t i = 0; i < side_ * side_; ++i) {
      const std::uint64_t id = grid_.peek(m, i);
      if (id > nroutes_) return "labyrinth: cell with invalid route id";
      if (id != 0) cells_of[id].push_back(static_cast<std::uint32_t>(i));
    }
    std::uint64_t routed = 0;
    for (std::uint64_t r = 0; r < nroutes_; ++r) {
      auto& cells = cells_of[r + 1];
      if (cells.empty()) continue;
      ++routed;
      // Connectivity: BFS within the path's own cells from src to dst.
      const auto [src, dst] = endpoints_[r];
      if (std::find(cells.begin(), cells.end(), src) == cells.end() ||
          std::find(cells.begin(), cells.end(), dst) == cells.end()) {
        return "labyrinth: path " + std::to_string(r) + " misses an endpoint";
      }
      std::vector<bool> in(side_ * side_, false), seen(side_ * side_, false);
      for (const auto cell : cells) in[cell] = true;
      std::queue<std::uint32_t> q;
      q.push(src);
      seen[src] = true;
      while (!q.empty()) {
        const std::uint32_t cell = q.front();
        q.pop();
        for (const std::uint32_t nb : neighbors(cell)) {
          if (in[nb] && !seen[nb]) {
            seen[nb] = true;
            q.push(nb);
          }
        }
      }
      if (!seen[dst]) {
        return "labyrinth: path " + std::to_string(r) + " disconnected";
      }
    }
    if (routed != m.peek(routed_, 8)) {
      return "labyrinth: routed counter mismatch";
    }
    if (routed == 0) return "labyrinth: no route succeeded";
    return {};
  }

 private:
  [[nodiscard]] std::vector<std::uint32_t> neighbors(std::uint32_t cell) const {
    std::vector<std::uint32_t> out;
    const std::uint32_t x = cell % side_, y = cell / side_;
    if (x > 0) out.push_back(cell - 1);
    if (x + 1 < side_) out.push_back(cell + 1);
    if (y > 0) out.push_back(cell - side_);
    if (y + 1 < side_) out.push_back(cell + side_);
    return out;
  }

  /// Host-side BFS over the committed grid (models STAMP's private
  /// grid copy): shortest path src->dst through free cells (and the two
  /// endpoints). Empty when unreachable.
  [[nodiscard]] std::vector<std::uint32_t> plan(const Machine& m,
                                                std::uint32_t src,
                                                std::uint32_t dst) const {
    std::vector<std::int32_t> prev(side_ * side_, -1);
    std::queue<std::uint32_t> q;
    q.push(src);
    prev[src] = static_cast<std::int32_t>(src);
    while (!q.empty() && prev[dst] < 0) {
      const std::uint32_t cell = q.front();
      q.pop();
      for (const std::uint32_t nb : neighbors(cell)) {
        if (prev[nb] >= 0) continue;
        if (nb != dst && grid_.peek(m, nb) != 0) continue;
        prev[nb] = static_cast<std::int32_t>(cell);
        q.push(nb);
      }
    }
    std::vector<std::uint32_t> path;
    if (prev[dst] < 0) return path;
    for (std::uint32_t cur = dst;; cur = static_cast<std::uint32_t>(prev[cur])) {
      path.push_back(cur);
      if (cur == src) break;
    }
    return path;
  }

  static Task<void> worker(GuestCtx& c, LabyrinthWorkload* w, std::uint64_t lo,
                           std::uint64_t hi) {
    for (std::uint64_t r = lo; r < hi; ++r) {
      const auto [src, dst] = w->endpoints_[r];
      const std::uint64_t id = r + 1;
      for (std::uint32_t attempt = 0; attempt < 32; ++attempt) {
        // Plan on the committed grid (the non-transactional grid copy);
        // each attempt replans around newly-committed routes.
        const std::vector<std::uint32_t> path = w->plan(*w->machine_, src, dst);
        if (path.empty()) break;  // boxed in: give up on this route
        co_await c.work(4 * path.size());  // wavefront-expansion cost

        const bool committed = co_await c.try_tx([&]() -> Task<void> {
          // Validate-and-claim cell by cell: a concurrent route may have
          // taken planned cells since the (non-transactional) plan was made.
          for (const std::uint32_t cell : path) {
            const std::uint64_t v = co_await w->grid_.get(c, cell);
            if (v != 0 && v != id) {
              c.user_abort();  // STAMP's TM_RESTART on validation failure
            }
            co_await w->grid_.set(c, cell, id);
          }
          const std::uint64_t n = co_await c.load_u64(w->routed_);
          co_await c.store_u64(w->routed_, n + 1);
        });
        if (committed) break;
      }
    }
  }

  GArray32 grid_;
  Addr routed_ = 0;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> endpoints_;
  Machine* machine_ = nullptr;
  std::uint32_t side_ = 0;
  std::uint64_t nroutes_ = 0;
  std::uint32_t threads_ = 0;
};

}  // namespace

std::unique_ptr<Workload> make_labyrinth() {
  return std::make_unique<LabyrinthWorkload>();
}

}  // namespace asfsim
