// genome — gene sequencing (STAMP).
//
// Phase 1 deduplicates randomly-sampled genome segments into a shared hash
// map (insert-heavy: concurrent bucket-head writes make incoming reads hit
// speculatively-written lines, the paper's RAW-dominant signature for
// genome, Fig 2). Phase 2 links unique segments whose (L-1)-overlap matches,
// rebuilding the sequence order; link cells are unpadded 8-byte slots.
// Phase transitions give genome its bursty false-conflict timeline (Fig 3).
#include <string>
#include <unordered_set>
#include <vector>

#include "guest/barrier.hpp"
#include "guest/garray.hpp"
#include "guest/ghashmap.hpp"
#include "workloads/workload.hpp"

namespace asfsim {
namespace {

class GenomeWorkload final : public Workload {
 public:
  const char* name() const override { return "genome"; }
  const char* description() const override { return "gene sequencing"; }

  void setup(Machine& m, const WorkloadParams& p) override {
    glen_ = p.scaled(1536);
    threads_ = p.threads;

    // Random genome: most sampled segments are unique, so the dedup phase is
    // insert-heavy. Frequent bucket-head writes plus short chains are what
    // make genome RAW-dominant (readers hit freshly-written heads while the
    // writer is still speculative) rather than WAR-dominant (paper Fig 2).
    Rng rng(p.seed * 13 + 3);
    genome_.resize(glen_);
    for (auto& b : genome_) b = static_cast<std::uint8_t>(rng.below(4));

    nsegments_ = glen_ - kSegLen + 1;
    nsegments_ -= nsegments_ % threads_;

    // Sampled segment start positions, shuffled across threads (each start
    // appears once; duplicates arise from repeated substrings).
    starts_.resize(nsegments_);
    for (std::uint64_t i = 0; i < nsegments_; ++i) starts_[i] = i;
    for (std::uint64_t i = nsegments_; i > 1; --i) {
      std::swap(starts_[i - 1], starts_[rng.below(i)]);
    }

    segments_ = GHashMap::create(m, 768);
    nunique_ = m.galloc().alloc(
        64, 64, m.galloc().register_site("genome.nunique", 64));
    m.poke(nunique_, 8, 0);
    successor_ = GArray64::alloc(m.galloc(), glen_ + 1, 8, "genome.successor");
    for (std::uint64_t i = 0; i <= glen_; ++i) successor_.poke(m, i, kNoLink);

    // Host-side expectations for validation.
    std::unordered_set<std::uint64_t> uniq;
    for (std::uint64_t i = 0; i < nsegments_; ++i) {
      uniq.insert(encode(genome_.data() + i));
    }
    expected_unique_ = uniq.size();

    barrier_ = std::make_unique<GuestBarrier>(m.kernel(), threads_);
    const std::uint64_t per = nsegments_ / threads_;
    for (CoreId t = 0; t < threads_; ++t) {
      m.spawn(t, worker(m.ctx(t), this, t * per, (t + 1) * per));
    }
  }

  std::string validate(Machine& m) override {
    const std::uint64_t got = segments_.host_size(m);
    if (got != expected_unique_) {
      return "genome: deduplicated " + std::to_string(got) + " segments, " +
             "expected " + std::to_string(expected_unique_);
    }
    // Every recorded successor link must be consistent with an (L-1)-overlap.
    for (std::uint64_t pos = 0; pos + kSegLen <= glen_; ++pos) {
      const std::uint64_t next = successor_.peek(m, pos);
      if (next == kNoLink) continue;
      for (std::uint32_t i = 0; i + 1 < kSegLen; ++i) {
        if (genome_[pos + 1 + i] != genome_[next + i]) {
          return "genome: bad overlap link at position " + std::to_string(pos);
        }
      }
    }
    return {};
  }

 private:
  static constexpr std::uint32_t kSegLen = 12;  // 2-bit bases -> 24-bit key
  static constexpr std::uint64_t kNoLink = ~std::uint64_t{0};

  [[nodiscard]] std::uint64_t encode(const std::uint8_t* bases) const {
    std::uint64_t k = 1;  // leading 1 so position-0 values stay distinct
    for (std::uint32_t i = 0; i < kSegLen; ++i) k = (k << 2) | bases[i];
    return k;
  }

  static Task<void> worker(GuestCtx& c, GenomeWorkload* w, std::uint64_t lo,
                           std::uint64_t hi) {
    // Phase 1: segment deduplication into the shared hash map.
    for (std::uint64_t i = lo; i < hi; ++i) {
      const std::uint64_t pos = w->starts_[i];
      const std::uint64_t key = w->encode(w->genome_.data() + pos);
      const bool counted = c.rng().chance(0.12);
      co_await c.run_tx([&]() -> Task<void> {
        std::uint64_t n = 0;
        if (counted) n = co_await c.load_u64(w->nunique_);
        const bool inserted = co_await w->segments_.insert(c, key, pos);
        if (inserted) {
          // New segments pay link-table construction inside the
          // transaction, which keeps the freshly-written bucket line
          // speculative while other threads' dedup walks read it
          // (RAW false conflicts, Fig 2).
          co_await c.work(500);
        }
        // Lock-free-style re-validation: re-read the bucket chain to check
        // for a concurrent insertion of the same key. This late read is
        // what usually lands on a freshly speculatively-written bucket
        // head (RAW, the dominant genome conflict type in Fig 2).
        const bool present = co_await w->segments_.contains(c, key);
        if (!present) c.user_abort();  // impossible; keeps the read live
        if (counted) co_await c.store_u64(w->nunique_, n + 1);
      });
      co_await c.work(kSegLen);  // encoding cost
    }

    co_await w->barrier_->arrive_and_wait(c);

    // Phase 2: overlap matching — look up each segment's 1-shifted suffix
    // and record the successor position.
    for (std::uint64_t i = lo; i < hi; ++i) {
      const std::uint64_t pos = w->starts_[i];
      if (pos + 1 + kSegLen > w->glen_) continue;
      const std::uint64_t next_key = w->encode(w->genome_.data() + pos + 1);
      co_await c.run_tx([&]() -> Task<void> {
        const std::uint64_t next =
            co_await w->segments_.find(c, next_key, kNoLink);
        co_await w->successor_.set(c, pos, next);
      });
      co_await c.work(kSegLen);
    }
  }

  GHashMap segments_;
  GArray64 successor_;
  Addr nunique_ = 0;
  std::vector<std::uint8_t> genome_;
  std::vector<std::uint64_t> starts_;
  std::unique_ptr<GuestBarrier> barrier_;
  std::uint64_t glen_ = 0, nsegments_ = 0, expected_unique_ = 0;
  std::uint32_t threads_ = 0;
};

}  // namespace

std::unique_ptr<Workload> make_genome() {
  return std::make_unique<GenomeWorkload>();
}

}  // namespace asfsim
