// bayes — Bayesian network structure learning (STAMP). The paper excludes
// bayes "because of its non-deterministic finishing conditions" (§III
// footnote): on real hardware the learned structure depends on the racy
// work order. This simulator is DETERMINISTIC, so the port runs and
// validates — a capability the paper's testbed did not have. It is kept out
// of paper_benchmarks() so the regenerated figures match the paper's set.
//
// Kernel: hill-climbing edge insertion. Workers draw candidate edges
// (u -> v with u < v, so the network is a DAG by construction), score them
// against the shared parent-count vector, and transactionally insert the
// edge when the score improves: update the adjacency cell, the child's
// parent count, and the global log-likelihood accumulator.
#include <vector>

#include "guest/garray.hpp"
#include "workloads/workload.hpp"

namespace asfsim {
namespace {

class BayesWorkload final : public Workload {
 public:
  const char* name() const override { return "bayes"; }
  const char* description() const override {
    return "Bayesian network structure learning (excluded by the paper for "
           "non-determinism; deterministic here)";
  }

  void setup(Machine& m, const WorkloadParams& p) override {
    ncandidates_ = p.scaled(320);
    threads_ = p.threads;
    ncandidates_ -= ncandidates_ % threads_;

    // adjacency[u * kVars + v] in {0,1}; 4-byte cells, unpadded.
    adjacency_ = GArray32::alloc(m.galloc(), kVars * kVars, 4,
                                 "bayes.adjacency");
    parents_ = GArray32::alloc(m.galloc(), kVars, 4, "bayes.parents");
    for (std::uint64_t i = 0; i < kVars * kVars; ++i) adjacency_.poke(m, i, 0);
    for (std::uint64_t i = 0; i < kVars; ++i) parents_.poke(m, i, 0);
    loglik_ = m.galloc().alloc(64, 64,
                               m.galloc().register_site("bayes.loglik", 64));
    m.poke(loglik_, 8, 0);

    Rng rng(p.seed * 271 + 13);
    candidates_.clear();
    for (std::uint64_t i = 0; i < ncandidates_; ++i) {
      std::uint32_t u = static_cast<std::uint32_t>(rng.below(kVars));
      std::uint32_t v = static_cast<std::uint32_t>(rng.below(kVars));
      if (u == v) v = (v + 1) % kVars;
      if (u > v) std::swap(u, v);  // u < v: acyclic by construction
      candidates_.emplace_back(u, v);
    }

    const std::uint64_t per = ncandidates_ / threads_;
    for (CoreId t = 0; t < threads_; ++t) {
      m.spawn(t, worker(m.ctx(t), this, t * per, (t + 1) * per));
    }
  }

  std::string validate(Machine& m) override {
    // Structural audit: parent counts must equal the adjacency column sums,
    // every edge obeys u < v (DAG), no parent limit is violated, and the
    // log-likelihood accumulator equals the edge count (unit gain per edge).
    std::uint64_t edges = 0;
    for (std::uint32_t v = 0; v < kVars; ++v) {
      std::uint64_t col = 0;
      for (std::uint32_t u = 0; u < kVars; ++u) {
        const std::uint64_t a = adjacency_.peek(m, u * kVars + v);
        if (a > 1) return "bayes: adjacency cell not boolean";
        if (a == 1 && u >= v) return "bayes: cycle-capable edge recorded";
        col += a;
        edges += a;
      }
      if (parents_.peek(m, v) != col) {
        return "bayes: parent count of " + std::to_string(v) +
               " disagrees with adjacency";
      }
      if (col > kMaxParents) return "bayes: parent limit violated";
    }
    if (m.peek(loglik_, 8) != edges) {
      return "bayes: log-likelihood accumulator out of sync";
    }
    if (edges == 0) return "bayes: learned an empty network";
    return {};
  }

 private:
  static constexpr std::uint32_t kVars = 24;
  static constexpr std::uint32_t kMaxParents = 4;

  static Task<void> worker(GuestCtx& c, BayesWorkload* w, std::uint64_t lo,
                           std::uint64_t hi) {
    for (std::uint64_t i = lo; i < hi; ++i) {
      const auto [u, v] = w->candidates_[i];
      co_await c.run_tx([&]() -> Task<void> {
        // Score: read the child's family (its full adjacency column slice
        // and parent count) — a long read phase over unpadded 4-byte cells.
        const std::uint64_t nparents = co_await w->parents_.get(c, v);
        if (nparents >= kMaxParents) co_return;  // family saturated
        const std::uint64_t present =
            co_await w->adjacency_.get(c, u * kVars + v);
        if (present != 0) co_return;  // already learned
        std::uint64_t family_mass = 0;
        for (std::uint32_t p = 0; p < kVars; p += 4) {
          family_mass += co_await w->adjacency_.get(c, p * kVars + v);
        }
        (void)family_mass;
        co_await c.work(40);  // local score computation
        // Insert the edge.
        co_await w->adjacency_.set(c, u * kVars + v, 1);
        co_await w->parents_.set(c, v, nparents + 1);
        const std::uint64_t ll = co_await c.load_u64(w->loglik_);
        co_await c.store_u64(w->loglik_, ll + 1);
      });
      co_await c.work(25);
    }
  }

  GArray32 adjacency_, parents_;
  Addr loglik_ = 0;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> candidates_;
  std::uint64_t ncandidates_ = 0;
  std::uint32_t threads_ = 0;
};

}  // namespace

std::unique_ptr<Workload> make_bayes() {
  return std::make_unique<BayesWorkload>();
}

}  // namespace asfsim
