// apriori — association rule mining (RMS-TM).
//
// Candidate-itemset support counting: each basket transaction walks a shared
// read-only candidate index (long read phase) and bumps the support counter
// of the few candidates the basket actually contains. The long read sets
// make incoming writer invalidations the dominant conflict source (the
// paper's WAR-dominant signature for Apriori, Fig 2), and since candidate
// counters are 16-byte objects, four sub-blocks remove nearly all false
// conflicts (Fig 8) from a >90% false-conflict baseline (Fig 1).
#include <vector>

#include "guest/garray.hpp"
#include "workloads/workload.hpp"

namespace asfsim {
namespace {

class AprioriWorkload final : public Workload {
 public:
  const char* name() const override { return "apriori"; }
  const char* description() const override { return "association rule mining"; }

  void setup(Machine& m, const WorkloadParams& p) override {
    nbaskets_ = p.scaled(360);
    threads_ = p.threads;
    nbaskets_ -= nbaskets_ % threads_;

    // Candidate 2-itemsets: all (i, i+1 mod I) pairs -> kItems candidates.
    // candidate index: per item, the candidate ids it participates in
    // (shared, read-only during mining). support[cand] = {count, weight}.
    // Candidate stat objects are 32 bytes: {count, pad, static weight, pad}.
    // Counting transactions RMW the count (first 16B sub-block); pruning
    // scans read the weight (second 16B sub-block). Two objects per line,
    // so nearly every collision is cross-object or cross-field false
    // sharing that four 16B sub-blocks fully separate (paper Figs 1, 8).
    index_ = GArray64::alloc(m.galloc(), kItems * 2, 8, "apriori.index");
    support_ = GArray64::alloc(m.galloc(), kItems * 4, 32, "apriori.support");
    tree_nodes_ = GArray64::alloc(m.galloc(), kItems, 8, "apriori.tree_nodes");
    for (std::uint64_t i = 0; i < kItems; ++i) {
      index_.poke(m, i * 2, i);                        // candidate (i, i+1)
      index_.poke(m, i * 2 + 1, (i + kItems - 1) % kItems);  // cand (i-1, i)
      support_.poke(m, i * 4, 0);       // count
      support_.poke(m, i * 4 + 1, 0);   // pad
      support_.poke(m, i * 4 + 2, 10 + (i % 9));  // static weight
      support_.poke(m, i * 4 + 3, 0);   // pad
      tree_nodes_.poke(m, i, i * 7 + 1);  // read-only interior hash nodes
    }

    // Baskets: kBasketLen distinct random items each.
    Rng rng(p.seed * 87 + 23);
    baskets_.resize(nbaskets_ * kBasketLen);
    for (std::uint64_t b = 0; b < nbaskets_; ++b) {
      bool used[kItems] = {};
      for (std::uint32_t j = 0; j < kBasketLen; ++j) {
        std::uint32_t item;
        do {
          item = static_cast<std::uint32_t>(rng.below(kItems));
        } while (used[item]);
        used[item] = true;
        baskets_[b * kBasketLen + j] = item;
      }
    }

    nscanned_ = m.galloc().alloc(
        64, 64, m.galloc().register_site("apriori.nscanned", 64));
    m.poke(nscanned_, 8, 0);

    const std::uint64_t per = nbaskets_ / threads_;
    for (CoreId t = 0; t < threads_; ++t) {
      m.spawn(t, worker(m.ctx(t), this, t * per, (t + 1) * per));
    }
  }

  std::string validate(Machine& m) override {
    // Host recount: candidate c=(i, i+1) supported by baskets containing both.
    std::vector<std::uint64_t> expect(kItems, 0);
    for (std::uint64_t b = 0; b < nbaskets_; ++b) {
      bool has[kItems] = {};
      for (std::uint32_t j = 0; j < kBasketLen; ++j) {
        has[baskets_[b * kBasketLen + j]] = true;
      }
      for (std::uint32_t i = 0; i < kItems; ++i) {
        if (has[i] && has[(i + 1) % kItems]) expect[i] += 1;
      }
    }
    for (std::uint32_t cand = 0; cand < kItems; ++cand) {
      if (support_.peek(m, cand * 4) != expect[cand]) {
        return "apriori: support of candidate " + std::to_string(cand) +
               " is " + std::to_string(support_.peek(m, cand * 4)) +
               ", expected " + std::to_string(expect[cand]);
      }
      if (support_.peek(m, cand * 4 + 2) != 10 + (cand % 9)) {
        return "apriori: static weight of candidate " + std::to_string(cand) +
               " clobbered";
      }
    }
    return {};
  }

 private:
  static constexpr std::uint32_t kItems = 128;
  static constexpr std::uint32_t kBasketLen = 8;

  static Task<void> worker(GuestCtx& c, AprioriWorkload* w, std::uint64_t lo,
                           std::uint64_t hi) {
    for (std::uint64_t b = lo; b < hi; ++b) {
      const std::uint32_t* basket = &w->baskets_[b * kBasketLen];
      bool has[kItems] = {};
      for (std::uint32_t j = 0; j < kBasketLen; ++j) has[basket[j]] = true;

      const std::uint32_t window =
          static_cast<std::uint32_t>(c.rng().below(kItems - 32));
      const bool counted = c.rng().chance(0.04);
      co_await c.run_tx([&]() -> Task<void> {
        std::uint64_t ns = 0;
        if (counted) ns = co_await c.load_u64(w->nscanned_);
        // Read phase: walk the candidate index for every basket item and
        // read current supports (min-support pruning in the original), plus
        // a hash-tree node scan over a window of neighboring candidates.
        std::uint64_t pruned = 0;
        for (std::uint32_t j = 0; j < kBasketLen; ++j) {
          for (std::uint32_t s = 0; s < 2; ++s) {
            const std::uint64_t cand =
                co_await w->index_.get(c, basket[j] * 2 + s);
            // Interior hash-tree nodes are read-only during counting.
            pruned += co_await w->tree_nodes_.get(c, cand);
          }
        }
        // Pruning scan: read candidate weights (never written during
        // counting) across a window; any concurrent count bump in a
        // scanned line is a pure false conflict.
        for (std::uint32_t j = 0; j < 16; ++j) {
          pruned += co_await w->support_.get(c, (window + j * 2) * 4 + 2);
        }
        (void)pruned;
        // Update phase: bump candidates fully contained in the basket.
        for (std::uint32_t j = 0; j < kBasketLen; ++j) {
          const std::uint32_t cand = basket[j];  // candidate (item, item+1)
          if (!has[(cand + 1) % kItems]) continue;
          const std::uint64_t cnt = co_await w->support_.get(c, cand * 4);
          co_await w->support_.set(c, cand * 4, cnt + 1);
        }
        if (counted) co_await c.store_u64(w->nscanned_, ns + 1);
      });
    }
  }

  GArray64 index_, support_, tree_nodes_;
  Addr nscanned_ = 0;
  std::vector<std::uint32_t> baskets_;
  std::uint64_t nbaskets_ = 0;
  std::uint32_t threads_ = 0;
};

}  // namespace

std::unique_ptr<Workload> make_apriori() {
  return std::make_unique<AprioriWorkload>();
}

}  // namespace asfsim
