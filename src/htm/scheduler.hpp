// Adaptive transaction scheduling (ATS), after Yoo & Lee (SPAA'08) — the
// "active transactional scheduling" optimization family the paper's
// introduction positions ASF against.
//
// Each core tracks a contention intensity CI as an exponential moving
// average of its transaction outcomes (1 = aborted, 0 = committed). When CI
// exceeds a threshold, the core's next transactions are dispatched through
// a central serializing queue instead of running wild — trading concurrency
// for an end to abort storms. The scheduler is runtime metadata (as in the
// original proposal), so it lives host-side; the *waiting* is simulated.
//
// This is an optional extension (SimConfig::enable_ats); bench/ablation_ats
// measures how it composes with sub-blocking.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace asfsim {

class AdaptiveScheduler {
 public:
  AdaptiveScheduler(std::uint32_t ncores, double alpha, double threshold)
      : ci_(ncores, 0.0), alpha_(alpha), threshold_(threshold) {}

  /// Record a transaction outcome for `core` (true = aborted).
  void on_tx_end(CoreId core, bool aborted) {
    ci_[core] = alpha_ * (aborted ? 1.0 : 0.0) + (1.0 - alpha_) * ci_[core];
  }

  /// Must `core`'s next transaction go through the serializing dispatcher?
  [[nodiscard]] bool should_serialize(CoreId core) const {
    return ci_[core] > threshold_;
  }

  /// Try to become the single dispatched transaction. Fails while another
  /// core holds the slot; callers wait (in simulated time) and retry.
  [[nodiscard]] bool try_acquire(CoreId core) {
    if (holder_ != kInvalidCore && holder_ != core) return false;
    holder_ = core;
    return true;
  }

  void release(CoreId core) {
    if (holder_ == core) holder_ = kInvalidCore;
  }

  [[nodiscard]] double contention(CoreId core) const { return ci_[core]; }
  [[nodiscard]] CoreId holder() const { return holder_; }

 private:
  std::vector<double> ci_;
  double alpha_;
  double threshold_;
  CoreId holder_ = kInvalidCore;
};

}  // namespace asfsim
