// Narrow interface through which the memory system controls transactions.
// Implemented by AsfRuntime; kept abstract to break the mem <-> htm cycle
// and to let unit tests substitute a scripted transaction controller.
#pragma once

#include "core/conflict.hpp"
#include "sim/types.hpp"

namespace asfsim {

class ITxControl {
 public:
  virtual ~ITxControl() = default;

  /// Is `core` currently inside a (not yet doomed) transaction?
  [[nodiscard]] virtual bool in_tx(CoreId core) const = 0;

  /// Doom `victim`'s transaction because of a detected conflict. Called by
  /// the memory system while processing the conflicting access; the victim's
  /// speculative data is discarded immediately (architectural abort), and
  /// the victim's coroutine observes the abort when it next resumes.
  virtual void doom(CoreId victim, const ConflictRecord& rec) = 0;
};

}  // namespace asfsim
