// Narrow interface through which the memory system controls transactions.
// Implemented by AsfRuntime; kept abstract to break the mem <-> htm cycle
// and to let unit tests substitute a scripted transaction controller.
#pragma once

#include "core/conflict.hpp"
#include "sim/types.hpp"

namespace asfsim {

class ITxControl {
 public:
  virtual ~ITxControl() = default;

  /// Is `core` currently inside a (not yet doomed) transaction?
  [[nodiscard]] virtual bool in_tx(CoreId core) const = 0;

  /// Doom `victim`'s transaction because of a detected conflict. Called by
  /// the memory system while processing the conflicting access; the victim's
  /// speculative data is discarded immediately (architectural abort), and
  /// the victim's coroutine observes the abort when it next resumes.
  virtual void doom(CoreId victim, const ConflictRecord& rec) = 0;

  /// Resolve a detected conflict between `rec.requester`'s in-flight access
  /// and `victim`'s transaction via the contention policy
  /// (docs/contention.md). Either dooms the victim (requester wins — the
  /// historical behavior, and the default for scripted test controllers) or
  /// leaves the victim untouched and returns true, meaning the REQUESTER
  /// lost: the memory system must then nack the access (no fill, no
  /// speculative bookkeeping) and the requester self-aborts.
  [[nodiscard]] virtual bool resolve_conflict(CoreId victim,
                                              const ConflictRecord& rec) {
    doom(victim, rec);
    return false;
  }
};

}  // namespace asfsim
