#include "htm/asf_runtime.hpp"

#include <cassert>

#include "sim/kernel.hpp"

namespace asfsim {

AsfRuntime::AsfRuntime(Kernel& kernel, MemorySystem& mem,
                       BackingStore& backing, Stats& stats,
                       const SimConfig& cfg)
    : kernel_(kernel),
      mem_(mem),
      backing_(backing),
      stats_(stats),
      backoff_(cfg, cfg.seed ^ 0x9e3779b97f4a7c15ULL),
      cores_(cfg.ncores) {
  if (cfg.enable_ats) {
    scheduler_ = std::make_unique<AdaptiveScheduler>(cfg.ncores, cfg.ats_alpha,
                                                     cfg.ats_threshold);
  }
}

void AsfRuntime::begin(CoreId core) {
  PerCore& p = cores_[core];
  assert(!p.active && "nested transactions are not supported");
  p.active = true;
  p.doomed = false;
  p.cause = AbortCause::kConflict;
  p.tx_start = kernel_.now();
  stats_.on_tx_attempt(kernel_.now());
  if (trace_) {
    trace_->record({TxEventKind::kBegin, core, kInvalidCore, kernel_.now(),
                    AbortCause::kConflict, ConflictType::kWAR, false, 0});
  }
}

void AsfRuntime::doom(CoreId victim, const ConflictRecord& rec) {
  if (trace_) {
    trace_->record({TxEventKind::kConflict, victim, rec.requester,
                    kernel_.now(), AbortCause::kConflict, rec.type,
                    rec.is_false, rec.line});
  }
  PerCore& p = cores_[victim];
  assert(p.active && !p.doomed);
  p.doomed = true;
  p.cause = AbortCause::kConflict;
  // Architectural abort happens at message-receipt time: discard all
  // speculative data and reset the bits (paper §IV-A).
  p.overlay.clear();
  mem_.clear_spec(victim, /*discard_written_lines=*/true);
}

void AsfRuntime::self_doom(CoreId core, AbortCause cause) {
  PerCore& p = cores_[core];
  assert(p.active);
  if (p.doomed) return;  // a remote conflict already got here first
  p.doomed = true;
  p.cause = cause;
  p.overlay.clear();
  mem_.clear_spec(core, /*discard_written_lines=*/true);
}

void AsfRuntime::commit(CoreId core) {
  PerCore& p = cores_[core];
  assert(p.active && !p.doomed);
  // Apply the write overlay to committed memory (gang-commit), validating
  // still-speculating readers whose read sets the commit overwrites.
  for (const auto& [line, ov] : p.overlay) {
    mem_.validate_readers_at_commit(core, line, ov.mask);
    for (std::uint32_t b = 0; b < kLineBytes; ++b) {
      if (ov.mask & (ByteMask{1} << b)) backing_.write(line + b, 1, ov.data[b]);
    }
  }
  p.overlay.clear();
  mem_.clear_spec(core, /*discard_written_lines=*/false);
  p.active = false;
  stats_.tx_busy_cycles += kernel_.now() - p.tx_start;
  stats_.on_tx_commit();
  if (scheduler_) scheduler_->on_tx_end(core, /*aborted=*/false);
  if (trace_) {
    trace_->record({TxEventKind::kCommit, core, kInvalidCore, kernel_.now(),
                    AbortCause::kConflict, ConflictType::kWAR, false, 0});
  }
}

std::uint32_t AsfRuntime::finish_abort(CoreId core) {
  PerCore& p = cores_[core];
  assert(p.active && p.doomed);
  stats_.on_tx_abort(p.cause);
  stats_.tx_busy_cycles += kernel_.now() - p.tx_start;
  p.active = false;
  p.doomed = false;
  if (scheduler_) scheduler_->on_tx_end(core, /*aborted=*/true);
  if (trace_) {
    trace_->record({TxEventKind::kAbort, core, kInvalidCore, kernel_.now(),
                    p.cause, ConflictType::kWAR, false, 0});
  }
  return ++p.retries;
}

void AsfRuntime::note_fallback(CoreId core) {
  cores_[core].retries = 0;
  ++stats_.fallback_runs;
  ++stats_.tx_commits;  // the work did complete exactly once
  if (trace_) {
    trace_->record({TxEventKind::kFallback, core, kInvalidCore, kernel_.now(),
                    AbortCause::kCapacity, ConflictType::kWAR, false, 0});
  }
}

std::uint64_t AsfRuntime::read_value(CoreId core, Addr a,
                                     std::uint32_t size) const {
  std::uint64_t v = backing_.read(a, size);
  const PerCore& p = cores_[core];
  if (!p.active || p.overlay.empty()) return v;
  auto it = p.overlay.find(line_of(a));
  if (it == p.overlay.end()) return v;
  const OverlayLine& ov = it->second;
  const std::uint32_t off = line_offset(a);
  for (std::uint32_t b = 0; b < size; ++b) {
    if (ov.mask & (ByteMask{1} << (off + b))) {
      v &= ~(std::uint64_t{0xff} << (8 * b));
      v |= std::uint64_t{ov.data[off + b]} << (8 * b);
    }
  }
  return v;
}

void AsfRuntime::write_value(CoreId core, Addr a, std::uint32_t size,
                             std::uint64_t v) {
  PerCore& p = cores_[core];
  if (!p.active || p.doomed) {
    backing_.write(a, size, v);
    return;
  }
  OverlayLine& ov = p.overlay[line_of(a)];
  const std::uint32_t off = line_offset(a);
  for (std::uint32_t b = 0; b < size; ++b) {
    ov.data[off + b] = static_cast<std::uint8_t>(v >> (8 * b));
    ov.mask |= ByteMask{1} << (off + b);
  }
}

}  // namespace asfsim
