#include "htm/asf_runtime.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

#include "fault/plan.hpp"
#include "sim/kernel.hpp"

namespace asfsim {

AsfRuntime::AsfRuntime(Kernel& kernel, MemorySystem& mem,
                       BackingStore& backing, Stats& stats,
                       const SimConfig& cfg)
    : kernel_(kernel),
      mem_(mem),
      backing_(backing),
      stats_(stats),
      backoff_(cfg, cfg.seed ^ 0x9e3779b97f4a7c15ULL),
      backoff_disabled_(cfg.fault.mutation ==
                        ProtocolMutation::kBackoffNeverSleeps),
      lose_update_commit_(cfg.fault.mutation ==
                          ProtocolMutation::kLostUpdateCommit),
      unfair_karma_reset_(cfg.fault.mutation ==
                          ProtocolMutation::kUnfairKarmaReset),
      policy_(make_policy(cfg.cm)),
      cm_active_(cfg.cm.active()),
      karma_weight_(cfg.cm.karma),
      serialize_after_(policy_->serialize_after()),
      cores_(cfg.ncores) {
  if (cfg.enable_ats) {
    scheduler_ = std::make_unique<AdaptiveScheduler>(cfg.ncores, cfg.ats_alpha,
                                                     cfg.ats_threshold);
  }
}

Cycle AsfRuntime::kernel_now() const { return kernel_.now(); }

void AsfRuntime::begin(CoreId core) {
  PerCore& p = cores_[core];
  assert(!p.active && "nested transactions are not supported");
  p.active = true;
  p.doomed = false;
  p.cause = AbortCause::kConflict;
  p.tx_start = kernel_.now();
  if (p.retries == 0) p.logical_start = p.tx_start;
  p.abort_fp = TxFootprint{};
  stats_.on_tx_attempt(kernel_.now());
  if (hub_) {
    trace::TraceEvent ev;
    ev.kind = trace::TraceEventKind::kBegin;
    ev.core = core;
    ev.cycle = kernel_.now();
    hub_->emit(ev);
  }
}

void AsfRuntime::doom(CoreId victim, const ConflictRecord& rec) {
  PerCore& p = cores_[victim];
  assert(p.active && !p.doomed);
  // Footprint must be read before the architectural abort below discards
  // the speculative metadata; finish_abort reports it.
  p.abort_fp = mem_.tx_footprint(victim);
  prov::ProvCollector::Attribution at;
  if (prov_) at = prov_->on_conflict(rec, kernel_.now() - p.tx_start);
  if (hub_) {
    trace::TraceEvent ev;
    ev.kind = trace::TraceEventKind::kConflict;
    ev.core = victim;
    ev.other = rec.requester;
    ev.cycle = kernel_.now();
    ev.line = rec.line;
    ev.type = rec.type;
    ev.is_false = rec.is_false;
    ev.probe_mask = rec.probe_bytes;
    ev.victim_mask = rec.victim_bytes;
    if (prov_) {
      ev.has_prov = true;
      ev.victim_site = at.victim_site;
      ev.victim_obj = at.victim_obj;
      ev.victim_sub = at.victim_sub;
      ev.req_site = at.req_site;
      ev.req_obj = at.req_obj;
    }
    hub_->emit(ev);
  }
  p.doomed = true;
  p.cause = AbortCause::kConflict;
  // Architectural abort happens at message-receipt time: discard all
  // speculative data and reset the bits (paper §IV-A).
  p.overlay.clear();
  mem_.clear_spec(victim, /*discard_written_lines=*/true);
  // Abort fast path: the victim is suspended (requester-wins conflicts are
  // resolved while processing the requester's access), and its registered
  // scope guarantees the pending resume would observe the doom and throw
  // TxAbort at exactly that (cycle, seq). Redirect the event to the
  // retry-loop frame instead — same simulated instant, zero host-side
  // exception unwinding (docs/performance.md). When the pending event is a
  // delayed-probe callback, repoint() declines and the classic throw path
  // delivers the abort.
  if (p.abort_scope && kernel_.repoint(victim, p.abort_scope)) {
    p.abort_scope = {};
  }
}

bool AsfRuntime::resolve_conflict(CoreId victim, const ConflictRecord& rec) {
  if (!cm_active_) {
    // Default requester-wins with accounting off: exactly the historical
    // direct doom() call (kernel-identity FNV goldens pin this path).
    doom(victim, rec);
    return false;
  }
  return resolve_via_policy(victim, rec);
}

Cycle AsfRuntime::cm_priority(CoreId core) const {
  const PerCore& p = cores_[core];
  // MUTATION kUnfairKarmaReset: the policy sees the ATTEMPT start cycle and
  // no karma credit, so every retry looks newborn — a repeatedly-victimized
  // transaction never gains priority and can starve without bound. Killed
  // by the chaos starvation oracle (ChaosVerdict::kStarvation).
  if (unfair_karma_reset_) return p.tx_start;
  const Cycle age = Cycle{p.karma} * karma_weight_;
  const Cycle start = p.logical_start;
  return start - (age < start ? age : start);  // saturating: floors at 0
}

bool AsfRuntime::resolve_via_policy(CoreId victim, const ConflictRecord& rec) {
  CmSide req;
  req.core = rec.requester;
  req.in_tx = in_tx(rec.requester);
  req.priority = req.in_tx ? cm_priority(rec.requester) : 0;
  CmSide vic;
  vic.core = victim;
  vic.in_tx = true;
  vic.priority = cm_priority(victim);
  const CmLoser loser = policy_->resolve(req, vic);
  ++stats_.cm_policy_decisions;
  if (hub_) {
    trace::TraceEvent ev;
    ev.kind = trace::TraceEventKind::kPolicy;
    ev.core = victim;
    ev.other = rec.requester;
    ev.loser = loser == CmLoser::kRequester ? rec.requester : victim;
    ev.cycle = kernel_.now();
    ev.line = rec.line;
    hub_->emit(ev);
  }
  if (loser == CmLoser::kRequester) {
    ++stats_.cm_requester_losses;
    return true;  // the memory system nacks; the requester self-aborts
  }
  doom(victim, rec);
  return false;
}

void AsfRuntime::self_doom(CoreId core, AbortCause cause) {
  PerCore& p = cores_[core];
  assert(p.active);
  if (p.doomed) return;  // a remote conflict already got here first
  p.abort_fp = mem_.tx_footprint(core);
  p.doomed = true;
  p.cause = cause;
  p.overlay.clear();
  mem_.clear_spec(core, /*discard_written_lines=*/true);
}

void AsfRuntime::commit(CoreId core) {
  // Injected commit-time abort (late interference, e.g. an interrupt at the
  // commit point): the transaction dooms itself instead of committing, and
  // the guest's CommitOp observes it like a conflict that raced the commit.
  if (fault_ != nullptr && fault_->commit_abort(core)) {
    self_doom(core, AbortCause::kConflict);
    return;
  }
  PerCore& p = cores_[core];
  assert(p.active && !p.doomed);
  const TxFootprint fp = mem_.tx_footprint(core);
  // Apply the write overlay to committed memory (gang-commit), validating
  // still-speculating readers whose read sets the commit overwrites. Lines
  // are applied in address order: reader validation dooms conflicting
  // readers and records the triggering line, so hash-order application
  // would attribute the doom to a different line on a different stdlib.
  std::vector<Addr> commit_lines;
  commit_lines.reserve(p.overlay.size());
  // asfsim-lint: allow(unordered-iteration) — keys are sorted just below.
  for (const auto& [line, ov] : p.overlay) commit_lines.push_back(line);
  std::sort(commit_lines.begin(), commit_lines.end());
  for (const Addr line : commit_lines) {
    const auto& ov = p.overlay.find(line)->second;
    mem_.validate_readers_at_commit(core, line, ov.mask);
    // MUTATION kLostUpdateCommit: the gang-commit silently drops the
    // highest-addressed overlay line's data (readers were still validated,
    // so only the write-back is lost). Killed by the strict-serializability
    // replay and by value-conservation workload oracles.
    if (lose_update_commit_ && line == commit_lines.back()) continue;
    for (std::uint32_t b = 0; b < kLineBytes; ++b) {
      if (ov.mask & (ByteMask{1} << b)) backing_.write(line + b, 1, ov.data[b]);
    }
  }
  p.overlay.clear();
  mem_.clear_spec(core, /*discard_written_lines=*/false);
  p.active = false;
  kernel_.note_progress();  // feeds the livelock watchdog
  // Completion resets the starvation window and repays the karma debt.
  p.karma = 0;
  p.consec_aborts = 0;
  if (p.first_commit == 0) p.first_commit = kernel_.now();
  const Cycle duration = kernel_.now() - p.tx_start;
  stats_.tx_busy_cycles += duration;
  stats_.on_tx_commit();
  stats_.on_tx_latency(kernel_.now() - p.logical_start);
  stats_.on_attempt_end(duration, fp.read_lines, fp.write_lines,
                        /*aborted=*/false);
  if (scheduler_) scheduler_->on_tx_end(core, /*aborted=*/false);
  if (hub_) {
    trace::TraceEvent ev;
    ev.kind = trace::TraceEventKind::kCommit;
    ev.core = core;
    ev.cycle = kernel_.now();
    ev.span_begin = p.tx_start;
    ev.retries = p.retries;
    ev.wasted = p.wasted;
    ev.read_lines = fp.read_lines;
    ev.write_lines = fp.write_lines;
    ev.read_subs = fp.read_subs;
    ev.write_subs = fp.write_subs;
    hub_->emit(ev);
  }
}

std::uint32_t AsfRuntime::finish_abort(CoreId core) {
  PerCore& p = cores_[core];
  assert(p.active && p.doomed);
  stats_.on_tx_abort(p.cause);
  const Cycle duration = kernel_.now() - p.tx_start;
  stats_.tx_busy_cycles += duration;
  stats_.on_attempt_end(duration, p.abort_fp.read_lines,
                        p.abort_fp.write_lines, /*aborted=*/true);
  p.wasted += duration;
  p.wasted_total += duration;
  // Starvation/karma accounting (always on — host-side only). Lock-wait
  // aborts are excluded: while another core runs irrevocably under the
  // fallback lock, every waiter "aborts" with kLockWait by design, and
  // counting those as starvation would make the serialize policy — the one
  // with the strongest progress guarantee — look the most starved.
  if (p.cause != AbortCause::kLockWait) {
    constexpr std::uint32_t kKarmaCap = 1u << 20;  // saturate, never wrap
    if (p.karma < kKarmaCap) ++p.karma;
    ++p.consec_aborts;
    if (p.consec_aborts > p.max_consec_aborts) {
      p.max_consec_aborts = p.consec_aborts;
    }
  }
  p.active = false;
  p.doomed = false;
  if (scheduler_) scheduler_->on_tx_end(core, /*aborted=*/true);
  if (hub_) {
    trace::TraceEvent ev;
    ev.kind = trace::TraceEventKind::kAbort;
    ev.core = core;
    ev.cycle = kernel_.now();
    ev.span_begin = p.tx_start;
    ev.cause = p.cause;
    ev.wasted = duration;  // this attempt's own in-tx cycles
    ev.read_lines = p.abort_fp.read_lines;
    ev.write_lines = p.abort_fp.write_lines;
    ev.read_subs = p.abort_fp.read_subs;
    ev.write_subs = p.abort_fp.write_subs;
    hub_->emit(ev);
  }
  return ++p.retries;
}

void AsfRuntime::note_fallback_acquired(CoreId core) {
  ++stats_.cm_fallback_acquisitions;
  if (hub_ && cm_active_) {
    trace::TraceEvent ev;
    ev.kind = trace::TraceEventKind::kFallbackAcquired;
    ev.core = core;
    ev.cycle = kernel_.now();
    ev.span_begin = cores_[core].fallback_start;  // spin began here
    ev.retries = cores_[core].retries;
    hub_->emit(ev);
  }
}

void AsfRuntime::note_fallback(CoreId core) {
  PerCore& p = cores_[core];
  if (hub_) {
    trace::TraceEvent ev;
    ev.kind = trace::TraceEventKind::kFallback;
    ev.core = core;
    ev.cycle = kernel_.now();
    ev.span_begin = p.fallback_start;
    ev.retries = p.retries;
    ev.wasted = p.wasted;
    hub_->emit(ev);
  }
  // Fallback completion ends the logical transaction that began at the
  // first hardware attempt; its latency includes every failed attempt.
  stats_.on_tx_latency(kernel_.now() - p.logical_start);
  p.retries = 0;
  p.wasted = 0;
  ++stats_.fallback_runs;
  ++stats_.tx_commits;  // the work did complete exactly once
  kernel_.note_progress();  // fallback completions are progress too
  // A fallback completion ends the starvation window like a commit does.
  p.karma = 0;
  p.consec_aborts = 0;
  if (p.first_commit == 0) p.first_commit = kernel_.now();
}

void AsfRuntime::flush_cm_stats() {
  stats_.cm_enabled = true;
  stats_.cm_max_consec_aborts.clear();
  stats_.cm_wasted_by_core.clear();
  stats_.cm_first_commit_cycle.clear();
  for (const PerCore& p : cores_) {
    stats_.cm_max_consec_aborts.push_back(p.max_consec_aborts);
    stats_.cm_wasted_by_core.push_back(p.wasted_total);
    stats_.cm_first_commit_cycle.push_back(p.first_commit);
  }
}

void AsfRuntime::note_backoff(CoreId core, Cycle wait) {
  stats_.on_backoff(wait);
  if (hub_) {
    trace::TraceEvent ev;
    ev.kind = trace::TraceEventKind::kBackoff;
    ev.core = core;
    ev.span_begin = kernel_.now();
    ev.cycle = kernel_.now() + wait;  // span events are stamped at the end
    hub_->emit(ev);
  }
}

std::uint64_t AsfRuntime::read_value(CoreId core, Addr a,
                                     std::uint32_t size) const {
  std::uint64_t v = backing_.read(a, size);
  const PerCore& p = cores_[core];
  if (!p.active || p.overlay.empty()) return v;
  auto it = p.overlay.find(line_of(a));
  if (it == p.overlay.end()) return v;
  const OverlayLine& ov = it->second;
  const std::uint32_t off = line_offset(a);
  for (std::uint32_t b = 0; b < size; ++b) {
    if (ov.mask & (ByteMask{1} << (off + b))) {
      v &= ~(std::uint64_t{0xff} << (8 * b));
      v |= std::uint64_t{ov.data[off + b]} << (8 * b);
    }
  }
  return v;
}

void AsfRuntime::write_value(CoreId core, Addr a, std::uint32_t size,
                             std::uint64_t v) {
  PerCore& p = cores_[core];
  if (!p.active || p.doomed) {
    backing_.write(a, size, v);
    return;
  }
  OverlayLine& ov = p.overlay[line_of(a)];
  const std::uint32_t off = line_offset(a);
  for (std::uint32_t b = 0; b < size; ++b) {
    ov.data[off + b] = static_cast<std::uint8_t>(v >> (8 * b));
    ov.mask |= ByteMask{1} << (off + b);
  }
}

}  // namespace asfsim
