// Software exponential backoff manager (paper §V-A: the TM library
// exponentially increases backoff time with transaction retry count to
// avoid livelock under the requester-wins resolution policy).
#pragma once

#include <cstdint>

#include "sim/config.hpp"
#include "sim/random.hpp"
#include "sim/types.hpp"

namespace asfsim {

class BackoffManager {
 public:
  BackoffManager(const SimConfig& cfg, std::uint64_t seed)
      : base_(cfg.backoff_base), cap_shift_(cfg.backoff_cap_shift), rng_(seed) {}

  /// Backoff wait for the given retry count (1 = first retry). Randomized in
  /// [window/2, window] where window = base << min(retry, cap). The window
  /// saturates instead of overflowing: base << shift with a large
  /// backoff_cap_shift is UB on Cycle (uint64_t would wrap, signed shifts
  /// overflow), so clamp to a huge-but-finite window.
  [[nodiscard]] Cycle wait_for(std::uint32_t retry) {
    const std::uint32_t shift = retry < cap_shift_ ? retry : cap_shift_;
    Cycle window;
    if (shift >= 63 || (base_ << shift) >> shift != base_) {
      window = ~Cycle{0} >> 1;  // saturate: still sortable, never wraps to 0
    } else {
      window = base_ << shift;
    }
    return window / 2 + rng_.below(window / 2 + 1);
  }

 private:
  Cycle base_;
  std::uint32_t cap_shift_;
  Rng rng_;
};

}  // namespace asfsim
