// BackoffManager is header-only; this TU exists to anchor the module.
#include "htm/backoff.hpp"
