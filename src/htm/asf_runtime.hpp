// ASF-like hardware-transactional-memory runtime.
//
// Versioning is lazy: transactional stores are buffered in a per-core write
// overlay (the architectural analogue of speculative data parked in the L1)
// and applied to the BackingStore only at commit. The BackingStore therefore
// always holds committed data, which is what other cores read — exactly the
// visibility the paper's piggy-back/Dirty machinery expects (speculatively-
// written sub-blocks travel as pre-transaction values and are marked Dirty
// at the requester).
//
// Conflict resolution is requester-wins: the MemorySystem calls doom() on
// the victim while processing the conflicting access; the victim's
// speculative data and metadata are discarded immediately, and the victim's
// coroutine observes the abort (TxAbort is thrown) at its next resume.
#pragma once

#include <array>
#include <coroutine>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "cm/policy.hpp"
#include "htm/backoff.hpp"
#include "htm/scheduler.hpp"
#include "htm/tx_control.hpp"
#include "mem/backing_store.hpp"
#include "mem/coherence.hpp"
#include "prov/collector.hpp"
#include "sim/addr_map.hpp"
#include "stats/counters.hpp"
#include "trace/sink.hpp"

namespace asfsim {

class Kernel;
class FaultPlan;

/// Thrown inside guest coroutines to unwind an aborted transaction to its
/// retry loop (GuestCtx::run_tx).
struct TxAbort {
  AbortCause cause = AbortCause::kConflict;
};

class AsfRuntime final : public ITxControl {
 public:
  AsfRuntime(Kernel& kernel, MemorySystem& mem, BackingStore& backing,
             Stats& stats, const SimConfig& cfg);

  // ---- ITxControl --------------------------------------------------------
  [[nodiscard]] bool in_tx(CoreId core) const override {
    const PerCore& p = cores_[core];
    return p.active && !p.doomed;
  }
  void doom(CoreId victim, const ConflictRecord& rec) override;
  /// Conflict resolution through the contention policy (docs/contention.md).
  /// Under the default requester-wins with accounting off this is exactly
  /// the historical doom() call (kernel-identity goldens pin it); active
  /// policies rank the two sides and may rule the requester the loser.
  [[nodiscard]] bool resolve_conflict(CoreId victim,
                                      const ConflictRecord& rec) override;

  // ---- guest-side transaction lifecycle -----------------------------------
  void begin(CoreId core);
  /// Architectural commit: applies the overlay, clears speculative state.
  /// Pre-condition: !doomed(core).
  void commit(CoreId core);
  /// Self-inflicted abort (capacity or guest-requested).
  void self_doom(CoreId core, AbortCause cause);
  /// Called from the retry loop after TxAbort unwinds: final abort stats.
  /// Returns the retry count (1 = about to run the first retry).
  std::uint32_t finish_abort(CoreId core);

  [[nodiscard]] bool active(CoreId core) const { return cores_[core].active; }
  [[nodiscard]] bool doomed(CoreId core) const { return cores_[core].doomed; }
  [[nodiscard]] AbortCause doom_cause(CoreId core) const {
    return cores_[core].cause;
  }
  [[nodiscard]] std::uint32_t retries(CoreId core) const {
    return cores_[core].retries;
  }
  void reset_retries(CoreId core) {
    cores_[core].retries = 0;
    cores_[core].wasted = 0;
  }
  /// The fallback path starts (spin on the lock; traced as a span end).
  void note_fallback_start(CoreId core) {
    cores_[core].fallback_start = kernel_now();
  }
  /// The fallback lock was acquired: the serialize escalation engaged.
  /// Counts toward the v5 stats section; emits kFallbackAcquired when the
  /// cm subsystem is active (so default-config traces stay byte-identical).
  void note_fallback_acquired(CoreId core);
  /// A transaction completed via the serializing software fallback.
  void note_fallback(CoreId core);
  /// The retry loop is about to stall `wait` cycles (abort penalty +
  /// backoff). Pure bookkeeping: never changes timing.
  void note_backoff(CoreId core, Cycle wait);
  [[nodiscard]] Cycle backoff_wait(CoreId core) {
    // MUTATION kBackoffNeverSleeps: the exponential backoff silently
    // returns a zero wait. Correctness oracles stay green; the chaos
    // harness's backoff-progressivity policy oracle kills it.
    if (backoff_disabled_) return 0;
    return backoff_.wait_for(cores_[core].retries);
  }

  // ---- abort fast path ----------------------------------------------------
  /// Register the retry-loop frame of `core`'s current hardware attempt.
  /// While a scope is registered, doom() redirects the victim's pending
  /// kernel event straight to this frame (same cycle, same sequence) instead
  /// of letting the leaf awaitable throw TxAbort through every nesting level
  /// of the guest call chain; the abandoned attempt's coroutine frames are
  /// destroyed by their owning Task handles (docs/performance.md). Only
  /// frames suspended at an abort-observing awaitable may stay registered:
  /// GuestCtx clears/restores the scope around non-observing waits so a
  /// redirect never surfaces an abort earlier than a throw would have.
  void set_abort_scope(CoreId core, std::coroutine_handle<> h) {
    cores_[core].abort_scope = h;
  }
  void clear_abort_scope(CoreId core) { cores_[core].abort_scope = {}; }
  [[nodiscard]] std::coroutine_handle<> exchange_abort_scope(
      CoreId core, std::coroutine_handle<> h) {
    return std::exchange(cores_[core].abort_scope, h);
  }

  // ---- contention management (docs/contention.md) ------------------------
  /// The active resolution policy (never null; requester-wins by default).
  [[nodiscard]] const ContentionPolicy& policy() const { return *policy_; }
  /// Retry count after which run_tx must escalate to the fallback lock
  /// (cached from the policy; 0 = the policy never forces serialization).
  [[nodiscard]] std::uint32_t serialize_after() const {
    return serialize_after_;
  }
  /// Starvation accounting (always maintained — host-side only, so the
  /// default path stays byte-identical): max run of consecutive
  /// non-lock-wait aborts, cumulative aborted-attempt cycles, and the first
  /// commit/fallback completion cycle (0 = never) for `core`. The chaos
  /// starvation oracle audits these against policy().stated_abort_bound().
  [[nodiscard]] std::uint32_t max_consec_aborts(CoreId core) const {
    return cores_[core].max_consec_aborts;
  }
  [[nodiscard]] Cycle wasted_total(CoreId core) const {
    return cores_[core].wasted_total;
  }
  [[nodiscard]] Cycle first_commit_cycle(CoreId core) const {
    return cores_[core].first_commit;
  }
  [[nodiscard]] std::uint32_t karma(CoreId core) const {
    return cores_[core].karma;
  }
  /// Flush the per-core starvation accounting into the stats blob's v5
  /// section (Machine::run calls this at quiescence when cm.stats is set).
  void flush_cm_stats();

  /// Optional ATS extension (SimConfig::enable_ats); null when disabled.
  [[nodiscard]] AdaptiveScheduler* scheduler() { return scheduler_.get(); }
  void note_ats_dispatch() { ++stats_.ats_serialized; }

  /// Optional trace hub (null while no sink is attached — the disabled
  /// path is a single null-pointer branch per would-be event).
  void set_trace_hub(trace::TraceHub* hub) { hub_ = hub; }
  /// Optional fault plan (null while injection is disabled): commit()
  /// consults it for injected commit-time aborts. A faulted commit dooms
  /// the transaction instead; callers observe it via doomed(core) exactly
  /// like a remote conflict that raced the commit point.
  void set_fault_plan(FaultPlan* plan) { fault_ = plan; }
  /// Optional conflict-provenance collector (null unless
  /// SimConfig::provenance): doom() attributes every conflict record to its
  /// allocation sites. One null check on the conflict path when disabled.
  void set_provenance(prov::ProvCollector* prov) { prov_ = prov; }

  // ---- value path ---------------------------------------------------------
  /// Read `size` bytes at `a` as seen by `core`: its own overlay bytes win,
  /// everything else comes from committed memory.
  [[nodiscard]] std::uint64_t read_value(CoreId core, Addr a,
                                         std::uint32_t size) const;
  /// Write `size` bytes: into the overlay inside a transaction, else
  /// directly to committed memory.
  void write_value(CoreId core, Addr a, std::uint32_t size, std::uint64_t v);

  [[nodiscard]] std::uint64_t overlay_lines(CoreId core) const {
    return cores_[core].overlay.size();
  }

 private:
  struct OverlayLine {
    ByteMask mask = 0;
    std::array<std::uint8_t, kLineBytes> data{};
  };
  // alignas(64): one PerCore per simulated core, updated on every access;
  // line alignment stops neighbors false-sharing host cache lines.
  struct alignas(64) PerCore {
    Cycle tx_start = 0;
    /// Begin cycle of the LOGICAL transaction (first hardware attempt);
    /// survives retries so commit/fallback can report whole-tx latency.
    Cycle logical_start = 0;
    bool active = false;
    bool doomed = false;
    AbortCause cause = AbortCause::kConflict;
    std::uint32_t retries = 0;
    /// In-tx cycles burned by this logical transaction's aborted attempts
    /// so far (reset when it finally commits or falls back).
    Cycle wasted = 0;
    Cycle fallback_start = 0;
    /// Karma (docs/contention.md): aborts suffered since this core's last
    /// completed transaction, credited as priority age by the timestamp
    /// policy. Saturating; reset on commit/fallback completion.
    std::uint32_t karma = 0;
    /// Consecutive non-lock-wait aborts since the last completion (current
    /// run / worst run) — the starvation headline the chaos oracle audits.
    std::uint32_t consec_aborts = 0;
    std::uint32_t max_consec_aborts = 0;
    /// Cumulative in-tx cycles burned by aborted attempts (never reset;
    /// feeds the wasted-cycle Gini in the v5 stats section).
    Cycle wasted_total = 0;
    /// Cycle of the first commit/fallback completion (0 = none yet).
    Cycle first_commit = 0;
    /// Footprint captured at doom time, before clear_spec discards the
    /// metadata; reported by the kAbort event in finish_abort.
    TxFootprint abort_fp;
    /// Retry-loop frame of the current attempt (abort fast path), or null
    /// when the core is outside an attempt / suspended at a non-observing
    /// wait / already redirected.
    std::coroutine_handle<> abort_scope;
    AddrMap<OverlayLine> overlay;  // keyed by line address
  };

  [[nodiscard]] Cycle kernel_now() const;
  /// Slow path of resolve_conflict: consult the policy, account, trace.
  bool resolve_via_policy(CoreId victim, const ConflictRecord& rec);
  /// Policy priority of `core` (lower = older = stronger): logical-tx start
  /// aged by karma; under MUTATION kUnfairKarmaReset, the raw attempt start
  /// with no karma credit — retries look newborn and starve.
  [[nodiscard]] Cycle cm_priority(CoreId core) const;

  Kernel& kernel_;
  MemorySystem& mem_;
  BackingStore& backing_;
  Stats& stats_;
  BackoffManager backoff_;
  const bool backoff_disabled_;    // MUTATION kBackoffNeverSleeps
  const bool lose_update_commit_;  // MUTATION kLostUpdateCommit
  const bool unfair_karma_reset_;  // MUTATION kUnfairKarmaReset
  std::unique_ptr<ContentionPolicy> policy_;
  /// True when conflicts must route through the policy object (non-default
  /// policy, or opt-in accounting wanting decision events). False keeps the
  /// historical direct-doom fast path, call-for-call.
  const bool cm_active_;
  const Cycle karma_weight_;             // CmConfig::karma
  const std::uint32_t serialize_after_;  // cached policy_->serialize_after()
  std::unique_ptr<AdaptiveScheduler> scheduler_;
  trace::TraceHub* hub_ = nullptr;
  FaultPlan* fault_ = nullptr;
  prov::ProvCollector* prov_ = nullptr;
  std::vector<PerCore> cores_;
};

}  // namespace asfsim
