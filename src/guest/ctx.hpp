// GuestCtx: the API guest programs (simulated threads) use to touch
// simulated memory and run transactions.
//
// Every memory access and compute quantum is a leaf awaitable: it resolves
// the access against the memory system at issue time, then suspends the
// guest coroutine stack until the access's load-to-use latency has elapsed
// on the simulated clock. Inside a transaction, a resume first checks
// whether the transaction was doomed (by a remote conflict, a capacity
// overflow, or a guest-requested abort) and throws TxAbort, which unwinds
// the guest call chain to the run_tx retry loop.
//
// Abort fast path (docs/performance.md): while an attempt body is running,
// its retry-loop frame is registered as the core's abort scope, and a
// remote doom() redirects the victim's pending kernel event straight to
// that frame — at the same (cycle, seq) the leaf's TxAbort throw would
// have surfaced — and the abandoned body chain is destroyed instead of
// unwound one rethrow per nesting level. Self-inflicted aborts (capacity,
// guest-requested, injected) still travel the classic throw path; both
// paths converge in BodyAttempt::await_resume.
//
// Guest-private scratch data (loop counters, local buffers) lives in plain
// C++ locals — the analogue of ASF's non-speculative stack accesses, which
// never conflict. Only *shared* data should live in simulated memory.
#pragma once

#include <cstdint>

#include "htm/asf_runtime.hpp"
#include "mem/coherence.hpp"
#include "mem/gallocator.hpp"
#include "sim/config.hpp"
#include "sim/kernel.hpp"
#include "sim/random.hpp"
#include "sim/task.hpp"

namespace asfsim {

class GuestCtx {
 public:
  GuestCtx(Kernel& kernel, MemorySystem& mem, AsfRuntime& rt, GAllocator& ga,
           const SimConfig& cfg, CoreId core, Addr fallback_lock)
      : kernel_(kernel),
        mem_(mem),
        rt_(rt),
        galloc_(ga),
        cfg_(cfg),
        core_(core),
        fallback_lock_(fallback_lock),
        rng_(cfg.seed * 0x100000001b3ULL + core + 1) {}

  [[nodiscard]] CoreId core() const { return core_; }
  [[nodiscard]] Cycle now() const { return kernel_.now(); }
  [[nodiscard]] Rng& rng() { return rng_; }
  [[nodiscard]] bool in_tx() const { return rt_.active(core_); }
  [[nodiscard]] Kernel& kernel() { return kernel_; }
  [[nodiscard]] AsfRuntime& runtime() { return rt_; }
  [[nodiscard]] MemorySystem& mem() { return mem_; }
  [[nodiscard]] GAllocator& galloc() { return galloc_; }
  /// Core-local pool allocation (STAMP-style per-thread allocator). Pass a
  /// site id (GAllocator::register_site) to tag the block for conflict
  /// provenance; untagged blocks attribute to "(untagged)".
  [[nodiscard]] Addr alloc_local(std::uint64_t size, std::uint64_t align = 8,
                                 prov::SiteId site = prov::kUntaggedSite) {
    return galloc_.alloc_local(core_, size, align, site);
  }

  // ---- leaf awaitables ----------------------------------------------------

  /// One aligned simulated memory access.
  ///
  /// In delayed-probe mode (SimConfig::probe_delay > 0) an access that
  /// needs a broadcast first stalls for the delivery delay WITHOUT touching
  /// the memory system, then executes atomically — so conflict checks see
  /// the machine state at probe-delivery time, not at issue time.
  struct MemOp {
    GuestCtx* ctx;
    Addr addr;
    std::uint64_t value;  // store value in; load value out
    std::uint8_t size;
    bool is_write;
    bool self_abort = false;  // capacity abort triggered by this access

    bool await_ready() const noexcept { return false; }

    /// Perform the access atomically NOW and schedule the guest's resume
    /// after its load-to-use latency.
    void execute(std::coroutine_handle<> h) {
      GuestCtx& c = *ctx;
      Cycle lat = 1;
      if (c.rt_.doomed(c.core_)) {
        // Already doomed while computing: surface the abort at resume.
        self_abort = true;
      } else {
        const bool tx = c.rt_.in_tx(c.core_);
        const AccessResult r =
            c.mem_.access(c.core_, addr, size, is_write, tx);
        lat = r.latency;
        if (r.capacity_abort) {
          c.rt_.self_doom(c.core_, AbortCause::kCapacity);
          self_abort = true;
        } else if (r.spurious_abort) {
          // Injected fault: ASF reserves the right to abort spuriously;
          // software must treat it like any transient conflict.
          c.rt_.self_doom(c.core_, AbortCause::kConflict);
          self_abort = true;
        } else if (r.requester_lost) {
          // A contention policy ruled against this (requesting) side: the
          // probe was nacked, no machine state moved, and the requester's
          // own transaction aborts instead of the victim's.
          c.rt_.self_doom(c.core_, AbortCause::kConflict);
          self_abort = true;
        } else if (is_write) {
          c.rt_.write_value(c.core_, addr, size, value);
        } else {
          value = c.rt_.read_value(c.core_, addr, size);
        }
      }
      c.kernel_.schedule(c.core_, h, c.kernel_.now() + lat);
    }

    void await_suspend(std::coroutine_handle<> h) {
      GuestCtx& c = *ctx;
      if (c.cfg_.probe_delay > 0 && !c.rt_.doomed(c.core_)) {
        const bool tx = c.rt_.in_tx(c.core_);
        if (c.mem_.would_broadcast(c.core_, addr, size, is_write, tx)) {
          // Delayed-probe mode: the broadcast executes (and conflict checks
          // run) at delivery time, against the machine state THEN.
          c.kernel_.schedule_callback(
              c.core_, [this, h] { execute(h); },
              c.kernel_.now() + c.cfg_.probe_delay);
          return;
        }
      }
      execute(h);
    }
    std::uint64_t await_resume() const {
      if (self_abort || ctx->rt_.doomed(ctx->core_)) {
        throw TxAbort{ctx->rt_.doom_cause(ctx->core_)};
      }
      return value;
    }
  };

  /// MemOp whose resume never throws: begin_subscribed uses it for the
  /// lock-subscription load and checks doomed() itself, so the frequent
  /// "doomed while subscribing" outcome costs no exception.
  struct MemOpNoThrow : MemOp {
    std::uint64_t await_resume() const noexcept { return value; }
  };

  /// A compute quantum of `n` cycles (abortable inside a transaction).
  struct WorkOp {
    GuestCtx* ctx;
    Cycle n;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      ctx->kernel_.schedule(ctx->core_, h, ctx->kernel_.now() + n);
    }
    void await_resume() const {
      if (ctx->rt_.doomed(ctx->core_)) {
        throw TxAbort{ctx->rt_.doom_cause(ctx->core_)};
      }
    }
  };

  /// A plain wait (backoff); never throws. A wait never observes dooms, so
  /// the abort scope is parked for its duration: doom() must not redirect
  /// to the retry loop mid-wait — the abort keeps surfacing at the next
  /// observing resume, exactly where the throw path would deliver it.
  struct WaitOp {
    GuestCtx* ctx;
    Cycle n;
    std::coroutine_handle<> saved_scope_{};
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      saved_scope_ = ctx->rt_.exchange_abort_scope(ctx->core_, {});
      ctx->kernel_.schedule(ctx->core_, h, ctx->kernel_.now() + n);
    }
    void await_resume() const noexcept {
      if (saved_scope_) ctx->rt_.set_abort_scope(ctx->core_, saved_scope_);
    }
  };

  /// Non-transactional atomic swap (used for the fallback lock). The load
  /// and store resolve back-to-back at issue time, so the exchange is
  /// atomic by construction of the simulator.
  struct AtomicSwapOp {
    GuestCtx* ctx;
    Addr addr;
    std::uint64_t desired;
    std::uint64_t old = 0;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      GuestCtx& c = *ctx;
      const AccessResult rl = c.mem_.access(c.core_, addr, 8, false, false);
      old = c.rt_.read_value(c.core_, addr, 8);
      const AccessResult rs = c.mem_.access(c.core_, addr, 8, true, false);
      c.rt_.write_value(c.core_, addr, 8, desired);
      c.kernel_.schedule(c.core_, h,
                         c.kernel_.now() + rl.latency + rs.latency);
    }
    std::uint64_t await_resume() const noexcept { return old; }
  };

  /// Commit point of a transaction. Resuming yields true when the commit
  /// took effect, false when the transaction was doomed at the commit point
  /// (e.g. an injected commit-time abort) — the retry loops branch on the
  /// value instead of catching TxAbort.
  struct CommitOp {
    GuestCtx* ctx;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      GuestCtx& c = *ctx;
      if (!c.rt_.doomed(c.core_)) c.rt_.commit(c.core_);
      c.kernel_.schedule(c.core_, h,
                         c.kernel_.now() + c.cfg_.commit_latency);
    }
    bool await_resume() const noexcept {
      return !ctx->rt_.doomed(ctx->core_);
    }
  };

  /// One hardware attempt of a transaction body. await_suspend registers
  /// this frame as the core's abort scope and starts the body chain by
  /// symmetric transfer; resuming yields true when the attempt aborted —
  /// either doom() redirected the pending event here (the body was
  /// abandoned mid-flight and its suspended frames are destroyed by the
  /// Task destructor, never unwound) or a self-inflicted TxAbort unwound
  /// out of the body the classic way. Non-TxAbort exceptions propagate.
  /// Holds the attempt Task by pointer: the Task itself lives as a named
  /// local in the retry loop's frame, keeping this awaiter trivially
  /// destructible like every other leaf awaitable (awaiter temporaries
  /// with non-trivial destructors are off-limits with this toolchain — see
  /// the warning in sim/task.hpp).
  struct BodyAttempt {
    GuestCtx* ctx;
    Task<void>* body;
    bool await_ready() const noexcept { return false; }
    std::coroutine_handle<> await_suspend(std::coroutine_handle<> h) {
      ctx->rt_.set_abort_scope(ctx->core_, h);
      auto aw = body->operator co_await();
      return aw.await_suspend(h);
    }
    bool await_resume() const {
      ctx->rt_.clear_abort_scope(ctx->core_);
      if (!body->done()) return true;  // redirected: attempt abandoned
      try {
        body->rethrow_if_error();
      } catch (const TxAbort&) {
        return true;
      }
      return false;
    }
  };

  // ---- typed accessors ------------------------------------------------------
  MemOp load(Addr a, std::uint8_t size) { return MemOp{this, a, 0, size, false}; }
  MemOp store(Addr a, std::uint8_t size, std::uint64_t v) {
    return MemOp{this, a, v, size, true};
  }
  MemOp load_u8(Addr a) { return load(a, 1); }
  MemOp load_u16(Addr a) { return load(a, 2); }
  MemOp load_u32(Addr a) { return load(a, 4); }
  MemOp load_u64(Addr a) { return load(a, 8); }
  MemOp store_u8(Addr a, std::uint64_t v) { return store(a, 1, v); }
  MemOp store_u16(Addr a, std::uint64_t v) { return store(a, 2, v); }
  MemOp store_u32(Addr a, std::uint64_t v) { return store(a, 4, v); }
  MemOp store_u64(Addr a, std::uint64_t v) { return store(a, 8, v); }

  WorkOp work(Cycle n) { return WorkOp{this, n}; }
  WorkOp yield() { return WorkOp{this, 1}; }
  WaitOp wait(Cycle n) { return WaitOp{this, n}; }

  // ---- transactions ---------------------------------------------------------

  /// Run `body` (a callable returning Task<void>) as one transaction,
  /// retrying with exponential backoff until it commits. The body must be
  /// re-invocable: aborted attempts leave no trace in simulated memory.
  ///
  /// Best-effort contract: after repeated capacity aborts (a footprint that
  /// can never fit the 2-way L1) or pathological retry counts, the body is
  /// executed under the serializing software fallback lock, lock-elision
  /// style — every transaction subscribes to the lock word, so acquiring it
  /// aborts all in-flight transactions and stalls new ones (this is how
  /// real ASF software stacks guarantee progress).
  template <typename Body>
  Task<void> run_tx(Body body) {
    std::uint32_t capacity_aborts = 0;
    // ATS extension: a core in an abort storm dispatches its transactions
    // through the serializing scheduler slot until its contention EMA cools.
    AdaptiveScheduler* sched = rt_.scheduler();
    bool ats_slot = false;
    if (sched != nullptr && sched->should_serialize(core_)) {
      while (!sched->try_acquire(core_)) co_await WaitOp{this, 120};
      ats_slot = true;
      rt_.note_ats_dispatch();
    }
    // max_tx_retries = 0 disables the fallback entirely (livelock studies:
    // progress then rests on backoff alone; pair with watchdog_cycles) —
    // unless the serialize contention policy is active, whose bounded-retry
    // threshold re-enables it as the guaranteed-progress path.
    const std::uint32_t serialize_after = rt_.serialize_after();
    const bool fallback_enabled =
        cfg_.max_tx_retries != 0 || serialize_after != 0;
    for (;;) {
      if (fallback_enabled &&
          (capacity_aborts >= cfg_.max_capacity_aborts ||
           (cfg_.max_tx_retries != 0 &&
            rt_.retries(core_) >= cfg_.max_tx_retries) ||
           (serialize_after != 0 &&
            rt_.retries(core_) >= serialize_after))) {
        rt_.note_fallback_start(core_);
        co_await acquire_fallback();
        rt_.note_fallback_acquired(core_);
        co_await body();  // runs non-transactionally under the global lock
        if (cfg_.fault.mutation != ProtocolMutation::kFallbackLockLeak) {
          co_await store_u64(fallback_lock_, 0);
        }
        rt_.note_fallback(core_);
        if (ats_slot) sched->release(core_);
        co_return;
      }
      const bool entered = co_await begin_subscribed();
      if (!entered) continue;  // lock was held; waited, try again
      Task<void> attempt = body();
      bool aborted = co_await BodyAttempt{this, &attempt};
      if (!aborted) {
        const bool committed = co_await CommitOp{this};
        aborted = !committed;
      }
      if (!aborted) {
        rt_.reset_retries(core_);
        if (ats_slot) sched->release(core_);
        co_return;
      }
      if (rt_.doom_cause(core_) == AbortCause::kCapacity) ++capacity_aborts;
      rt_.finish_abort(core_);
      const Cycle stall = cfg_.abort_latency + rt_.backoff_wait(core_);
      rt_.note_backoff(core_, stall);  // bookkeeping only, no timing change
      co_await WaitOp{this, stall};
    }
  }

  /// Attempt `body` as one transaction WITHOUT retrying. Returns true when
  /// committed. Use when the caller must recompute inputs between attempts
  /// (e.g. labyrinth replans its path after a validation abort); run_tx would
  /// retry the identical body and spin.
  template <typename Body>
  Task<bool> try_tx(Body body) {
    const bool entered = co_await begin_subscribed();
    if (!entered) co_return false;
    Task<void> attempt = body();
    bool aborted = co_await BodyAttempt{this, &attempt};
    if (!aborted) {
      const bool committed = co_await CommitOp{this};
      aborted = !committed;
    }
    if (!aborted) {
      rt_.reset_retries(core_);
      co_return true;
    }
    rt_.finish_abort(core_);
    const Cycle stall = cfg_.abort_latency + rt_.backoff_wait(core_);
    rt_.note_backoff(core_, stall);
    co_await WaitOp{this, stall};
    co_return false;
  }

  /// Begin a transaction subscribed to the fallback lock. Returns false if
  /// the lock was held (after waiting out the holder, without starting).
  Task<bool> begin_subscribed() {
    // Cheap non-transactional peek first.
    for (;;) {
      const std::uint64_t lk = co_await load_u64(fallback_lock_);
      if (lk == 0) break;
      co_await WaitOp{this, 150};
    }
    rt_.begin(core_);
    // Subscribe: the lock word joins the read set, so a fallback acquirer
    // aborts this transaction via the normal conflict path. The load's
    // resume never throws; the doomed() check covers every abort source
    // at the same cycle a TxAbort throw would have surfaced.
    const std::uint64_t lk =
        co_await MemOpNoThrow{{this, fallback_lock_, 0, 8, false}};
    bool aborted = rt_.doomed(core_);
    if (!aborted && lk != 0) {
      rt_.self_doom(core_, AbortCause::kLockWait);
      aborted = true;
    }
    if (!aborted) co_return true;
    rt_.finish_abort(core_);
    co_await WaitOp{this, 150};
    co_return false;
  }

  /// Spin until the fallback lock is acquired (non-transactional swap).
  Task<void> acquire_fallback() {
    if (cfg_.fault.mutation == ProtocolMutation::kSerializeSkipsValidation) {
      // MUTATED path: poke the lock word straight into backing store,
      // skipping the coherence probe that dooms subscribed transactions —
      // in-flight transactions race the irrevocable body.
      for (;;) {
        const std::uint64_t old = rt_.read_value(core_, fallback_lock_, 8);
        if (old == 0) {
          rt_.write_value(core_, fallback_lock_, 8, 1);
          co_await WaitOp{this, cfg_.l1.latency};
          co_return;
        }
        co_await WaitOp{this, 200};
      }
    }
    for (;;) {
      const std::uint64_t old =
          co_await AtomicSwapOp{this, fallback_lock_, 1};
      if (old == 0) co_return;
      co_await WaitOp{this, 200};
    }
  }

  /// Guest-requested abort of the current transaction (retries via run_tx).
  [[noreturn]] void user_abort() {
    rt_.self_doom(core_, AbortCause::kUser);
    throw TxAbort{AbortCause::kUser};
  }

 private:
  Kernel& kernel_;
  MemorySystem& mem_;
  AsfRuntime& rt_;
  GAllocator& galloc_;
  const SimConfig& cfg_;
  CoreId core_;
  Addr fallback_lock_;
  Rng rng_;
};

}  // namespace asfsim
