#include "guest/gheap.hpp"

#include <stdexcept>

namespace asfsim {

GHeap GHeap::create(Machine& m, std::uint64_t capacity) {
  GAllocator& ga = m.galloc();
  const Addr ctrl = ga.alloc(kLineBytes, kLineBytes,
                             ga.register_site("gheap.ctrl", kLineBytes));
  const Addr slots =
      ga.alloc(capacity * 8, kLineBytes, ga.register_site("gheap.slot", 8));
  m.poke(ctrl, 8, 0);
  return GHeap(ctrl, slots, capacity);
}

Task<void> GHeap::push(GuestCtx& c, std::uint64_t key) {
  std::uint64_t n = co_await c.load_u64(size_addr());
  if (n >= cap_) throw std::runtime_error("GHeap: capacity exceeded");
  // Sift up.
  std::uint64_t i = n;
  while (i > 0) {
    const std::uint64_t parent = (i - 1) / 2;
    const std::uint64_t pv = co_await c.load_u64(slot(parent));
    if (pv <= key) break;
    co_await c.store_u64(slot(i), pv);
    i = parent;
  }
  co_await c.store_u64(slot(i), key);
  co_await c.store_u64(size_addr(), n + 1);
}

Task<std::uint64_t> GHeap::pop(GuestCtx& c) {
  const std::uint64_t n = co_await c.load_u64(size_addr());
  if (n == 0) co_return kEmpty;
  const std::uint64_t top = co_await c.load_u64(slot(0));
  const std::uint64_t last = co_await c.load_u64(slot(n - 1));
  co_await c.store_u64(size_addr(), n - 1);
  // Sift the former last element down from the root.
  std::uint64_t i = 0;
  const std::uint64_t count = n - 1;
  for (;;) {
    const std::uint64_t l = 2 * i + 1, r = 2 * i + 2;
    if (l >= count) break;
    std::uint64_t child = l;
    std::uint64_t cv = co_await c.load_u64(slot(l));
    if (r < count) {
      const std::uint64_t rv = co_await c.load_u64(slot(r));
      if (rv < cv) {
        child = r;
        cv = rv;
      }
    }
    if (last <= cv) break;
    co_await c.store_u64(slot(i), cv);
    i = child;
  }
  if (count > 0) co_await c.store_u64(slot(i), last);
  co_return top;
}

Task<std::uint64_t> GHeap::size(GuestCtx& c) {
  const std::uint64_t n = co_await c.load_u64(size_addr());
  co_return n;
}

void GHeap::host_push(Machine& m, std::uint64_t key) {
  const std::uint64_t n = m.peek(size_addr(), 8);
  if (n >= cap_) throw std::runtime_error("GHeap: capacity exceeded");
  std::uint64_t i = n;
  while (i > 0) {
    const std::uint64_t parent = (i - 1) / 2;
    const std::uint64_t pv = m.peek(slot(parent), 8);
    if (pv <= key) break;
    m.poke(slot(i), 8, pv);
    i = parent;
  }
  m.poke(slot(i), 8, key);
  m.poke(size_addr(), 8, n + 1);
}

std::uint64_t GHeap::host_size(const Machine& m) const {
  return m.peek(size_addr(), 8);
}

std::string GHeap::host_validate(const Machine& m) const {
  const std::uint64_t n = host_size(m);
  for (std::uint64_t i = 1; i < n; ++i) {
    const std::uint64_t parent = (i - 1) / 2;
    if (m.peek(slot(parent), 8) > m.peek(slot(i), 8)) {
      return "heap property violated at index " + std::to_string(i);
    }
  }
  return {};
}

}  // namespace asfsim
