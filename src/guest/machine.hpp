// Machine: one fully-wired simulated system — the library's main entry point.
//
//   Machine m(SimConfig{}, DetectorKind::kSubBlock, /*nsub=*/4);
//   Addr counter = m.galloc().alloc(8);
//   for (CoreId c = 0; c < m.config().ncores; ++c)
//     m.spawn(c, worker(m.ctx(c), counter));
//   m.run();
//   // inspect m.stats()
#pragma once

#include <memory>
#include <vector>

#include "core/detector.hpp"
#include "fault/plan.hpp"
#include "guest/ctx.hpp"
#include "htm/asf_runtime.hpp"
#include "mem/backing_store.hpp"
#include "mem/coherence.hpp"
#include "mem/gallocator.hpp"
#include "prov/collector.hpp"
#include "prov/site_registry.hpp"
#include "sim/config.hpp"
#include "sim/kernel.hpp"
#include "stats/counters.hpp"
#include "stats/txtrace.hpp"
#include "trace/sink.hpp"

namespace asfsim {

class Machine {
 public:
  explicit Machine(const SimConfig& cfg = SimConfig{},
                   DetectorKind detector = DetectorKind::kBaseline,
                   std::uint32_t nsub = 4);

  [[nodiscard]] const SimConfig& config() const { return cfg_; }
  [[nodiscard]] Kernel& kernel() { return kernel_; }
  [[nodiscard]] Stats& stats() { return stats_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] BackingStore& backing() { return backing_; }
  [[nodiscard]] MemorySystem& mem() { return mem_; }
  [[nodiscard]] AsfRuntime& runtime() { return runtime_; }
  [[nodiscard]] GAllocator& galloc() { return galloc_; }
  [[nodiscard]] ConflictDetector& detector() { return *detector_; }
  [[nodiscard]] GuestCtx& ctx(CoreId core) { return *ctxs_[core]; }

  /// Bind a guest thread to a core (one thread per core).
  void spawn(CoreId core, Task<void> thread) {
    kernel_.spawn(core, std::move(thread));
  }

  /// Run to completion; records the final cycle into stats().total_cycles.
  Cycle run(Cycle max_cycles = ~Cycle{0});

  /// Attach a non-owning trace sink to the full event stream (JSONL,
  /// Perfetto, custom). The first attach arms the runtime/memory-system
  /// hub pointers; with no sinks attached tracing costs one null check.
  void add_trace_sink(trace::TraceSink* sink) {
    hub_.add_sink(sink);
    runtime_.set_trace_hub(&hub_);
    mem_.set_trace_hub(&hub_);
  }
  [[nodiscard]] trace::TraceHub& trace_hub() { return hub_; }

  /// The fault-injection plan, or null when no injection is configured
  /// (SimConfig::fault — tools read the counters after a run).
  [[nodiscard]] FaultPlan* fault_plan() { return fault_.get(); }

  /// Conflict-provenance site registry, or null unless SimConfig::provenance
  /// (docs/observability.md, "Conflict provenance").
  [[nodiscard]] const prov::SiteRegistry* site_registry() const {
    return prov_sites_.get();
  }

  /// Enable the bounded in-memory event ring (of `depth` events).
  TxTrace& enable_trace(std::size_t depth = 4096) {
    trace_ = std::make_unique<TxTrace>(depth);
    add_trace_sink(trace_.get());
    return *trace_;
  }
  [[nodiscard]] TxTrace* trace() { return trace_.get(); }

  // ---- setup-phase helpers (host-time, no simulated cycles) ---------------
  void poke(Addr a, std::uint32_t size, std::uint64_t v) {
    backing_.write(a, size, v);
  }
  [[nodiscard]] std::uint64_t peek(Addr a, std::uint32_t size) const {
    return backing_.read(a, size);
  }

 private:
  SimConfig cfg_;
  Stats stats_;
  trace::TraceHub hub_{&stats_};
  Kernel kernel_;
  BackingStore backing_;
  std::unique_ptr<ConflictDetector> detector_;
  MemorySystem mem_;
  AsfRuntime runtime_;
  GAllocator galloc_;
  std::unique_ptr<prov::SiteRegistry> prov_sites_;
  std::unique_ptr<prov::ProvCollector> prov_;
  Addr fallback_lock_ = 0;
  std::unique_ptr<TxTrace> trace_;
  std::unique_ptr<FaultPlan> fault_;
  std::vector<std::unique_ptr<GuestCtx>> ctxs_;
};

}  // namespace asfsim
