#include "guest/machine.hpp"

#include <stdexcept>

#include "fault/watchdog.hpp"
#include "trace/clock.hpp"

namespace asfsim {

namespace {
Cycle kernel_clock_thunk(const void* kernel) {
  return static_cast<const Kernel*>(kernel)->now();
}
}  // namespace

Machine::Machine(const SimConfig& cfg, DetectorKind detector,
                 std::uint32_t nsub)
    : cfg_(cfg),
      kernel_(cfg_.ncores),
      detector_(make_detector(detector, nsub)),
      mem_(kernel_, cfg_, stats_),
      runtime_(kernel_, mem_, backing_, stats_, cfg_) {
  mem_.set_detector(detector_.get());
  mem_.set_tx_control(&runtime_);
  if (std::string err = cfg_.validate(detector_->nsub()); !err.empty()) {
    throw std::invalid_argument("SimConfig: " + err);
  }
  if (cfg_.fault.any_injection()) {
    fault_ = std::make_unique<FaultPlan>(cfg_.fault, cfg_.seed, cfg_.ncores);
    kernel_.set_fault_plan(fault_.get());
    mem_.set_fault_plan(fault_.get());
    runtime_.set_fault_plan(fault_.get());
  }
  if (cfg_.watchdog_cycles != 0) {
    kernel_.set_watchdog(cfg_.watchdog_cycles,
                         [this] { return livelock_report(*this); });
  }
  if (cfg_.provenance) {
    prov_sites_ = std::make_unique<prov::SiteRegistry>();
    prov_ = std::make_unique<prov::ProvCollector>(*prov_sites_,
                                                 detector_->nsub());
    galloc_.set_site_registry(prov_sites_.get());
    runtime_.set_provenance(prov_.get());
    mem_.set_provenance(prov_.get());
  }
  // The software-fallback lock word gets a cache line of its own.
  fallback_lock_ = galloc_.alloc(kLineBytes, kLineBytes,
                                 galloc_.register_site("fallback.lock",
                                                       kLineBytes));
  backing_.write(fallback_lock_, 8, 0);
  ctxs_.reserve(cfg_.ncores);
  for (CoreId c = 0; c < cfg_.ncores; ++c) {
    ctxs_.push_back(std::make_unique<GuestCtx>(
        kernel_, mem_, runtime_, galloc_, cfg_, c, fallback_lock_));
  }
}

Cycle Machine::run(Cycle max_cycles) {
  // Publish the simulated clock for this thread so host-side logging
  // (ASFSIM_INFO/ASFSIM_TRACE) can stamp lines with the current cycle.
  const trace::ScopedSimClock clock(&kernel_clock_thunk, &kernel_);
  const Cycle end = kernel_.run(max_cycles);
  stats_.total_cycles = end;
  if (prov_) {
    // Declare every allocation site at the end of the stream (ids are only
    // referenced by earlier conflict events, and final object counts are
    // known here), then fold the aggregates into the stats blob.
    const std::vector<prov::SiteInfo>& sites = prov_sites_->sites();
    for (std::size_t i = 0; i < sites.size(); ++i) {
      trace::TraceEvent ev;
      ev.kind = trace::TraceEventKind::kSite;
      ev.cycle = end;
      ev.site_id = static_cast<std::uint32_t>(i);
      ev.site_name = sites[i].name;
      ev.site_obj_size = sites[i].obj_size;
      ev.site_objects = sites[i].objects;
      ev.site_bytes = sites[i].bytes;
      hub_.emit(ev);
    }
    prov_->flush(stats_);
  }
  if (cfg_.cm.stats) {
    // Fold the per-core starvation/fairness accounting into the stats blob
    // (opt-in: the v5 section only exists when --cm-stats asked for it).
    runtime_.flush_cm_stats();
  }
  hub_.finish(end);
  return end;
}

}  // namespace asfsim
