#include "guest/glist.hpp"

namespace asfsim {

Addr galloc_node(GuestCtx& c) {
  return c.alloc_local(gnode::kSize, 8,
                       c.galloc().register_site("gnode", gnode::kSize));
}

GList GList::create(Machine& m) {
  // Container control blocks are fat structs in real code; give each its
  // own line so unrelated containers do not false-share their headers.
  GAllocator& ga = m.galloc();
  const Addr head =
      ga.alloc(kLineBytes, kLineBytes, ga.register_site("glist.head", kLineBytes));
  m.poke(head, 8, 0);
  return GList(head);
}

Task<bool> GList::insert(GuestCtx& c, std::uint64_t key, std::uint64_t value) {
  // Walk to the first node with node.key >= key, remembering the link cell
  // we came through (head pointer or predecessor's next field).
  Addr link = head_;
  Addr cur = co_await c.load_u64(link);
  while (cur != 0) {
    const std::uint64_t k = co_await c.load_u64(cur + gnode::kKey);
    if (k == key) co_return false;
    if (k > key) break;
    link = cur + gnode::kNext;
    cur = co_await c.load_u64(link);
  }
  const Addr node = galloc_node(c);
  co_await c.store_u64(node + gnode::kKey, key);
  co_await c.store_u64(node + gnode::kValue, value);
  co_await c.store_u64(node + gnode::kNext, cur);
  co_await c.store_u64(link, node);
  co_return true;
}

Task<std::uint64_t> GList::find(GuestCtx& c, std::uint64_t key,
                                std::uint64_t notfound) {
  Addr cur = co_await c.load_u64(head_);
  while (cur != 0) {
    const std::uint64_t k = co_await c.load_u64(cur + gnode::kKey);
    if (k == key) {
      const std::uint64_t v = co_await c.load_u64(cur + gnode::kValue);
      co_return v;
    }
    if (k > key) break;
    cur = co_await c.load_u64(cur + gnode::kNext);
  }
  co_return notfound;
}

Task<bool> GList::erase(GuestCtx& c, std::uint64_t key) {
  Addr link = head_;
  Addr cur = co_await c.load_u64(link);
  while (cur != 0) {
    const std::uint64_t k = co_await c.load_u64(cur + gnode::kKey);
    if (k == key) {
      const Addr next = co_await c.load_u64(cur + gnode::kNext);
      co_await c.store_u64(link, next);
      co_return true;  // the node itself leaks (no guest free), as in STAMP
    }
    if (k > key) break;
    link = cur + gnode::kNext;
    cur = co_await c.load_u64(link);
  }
  co_return false;
}

Task<std::uint64_t> GList::size(GuestCtx& c) {
  std::uint64_t n = 0;
  Addr cur = co_await c.load_u64(head_);
  while (cur != 0) {
    ++n;
    cur = co_await c.load_u64(cur + gnode::kNext);
  }
  co_return n;
}

GQueue GQueue::create(Machine& m) {
  GAllocator& ga = m.galloc();
  const Addr base = ga.alloc(kLineBytes, kLineBytes,
                             ga.register_site("gqueue.ctrl", kLineBytes));
  m.poke(base, 8, 0);
  m.poke(base + 8, 8, 0);
  return GQueue(base);
}

Task<void> GQueue::push(GuestCtx& c, std::uint64_t key, std::uint64_t value) {
  const Addr node = galloc_node(c);
  co_await c.store_u64(node + gnode::kKey, key);
  co_await c.store_u64(node + gnode::kValue, value);
  co_await c.store_u64(node + gnode::kNext, 0);
  const Addr tail = co_await c.load_u64(tail_addr());
  if (tail == 0) {
    co_await c.store_u64(head_addr(), node);
  } else {
    co_await c.store_u64(tail + gnode::kNext, node);
  }
  co_await c.store_u64(tail_addr(), node);
}

Task<bool> GQueue::pop(GuestCtx& c, std::uint64_t* key, std::uint64_t* value) {
  const Addr head = co_await c.load_u64(head_addr());
  if (head == 0) co_return false;
  if (key != nullptr) *key = co_await c.load_u64(head + gnode::kKey);
  if (value != nullptr) *value = co_await c.load_u64(head + gnode::kValue);
  const Addr next = co_await c.load_u64(head + gnode::kNext);
  co_await c.store_u64(head_addr(), next);
  if (next == 0) co_await c.store_u64(tail_addr(), 0);
  co_return true;
}

void GQueue::host_push(Machine& m, std::uint64_t key, std::uint64_t value) {
  GAllocator& ga = m.galloc();
  const Addr node =
      ga.alloc(gnode::kSize, 8, ga.register_site("gnode", gnode::kSize));
  m.poke(node + gnode::kKey, 8, key);
  m.poke(node + gnode::kValue, 8, value);
  m.poke(node + gnode::kNext, 8, 0);
  const Addr tail = m.peek(tail_addr(), 8);
  if (tail == 0) {
    m.poke(head_addr(), 8, node);
  } else {
    m.poke(tail + gnode::kNext, 8, node);
  }
  m.poke(tail_addr(), 8, node);
}

std::uint64_t GQueue::host_size(const Machine& m) const {
  std::uint64_t n = 0;
  Addr cur = m.peek(head_addr(), 8);
  while (cur != 0) {
    ++n;
    cur = m.peek(cur + gnode::kNext, 8);
  }
  return n;
}

Task<bool> GQueue::empty(GuestCtx& c) {
  const Addr head = co_await c.load_u64(head_addr());
  co_return head == 0;
}

GRing GRing::create(Machine& m, std::uint64_t capacity) {
  GAllocator& ga = m.galloc();
  const Addr ctrl = ga.alloc(kLineBytes, kLineBytes,
                             ga.register_site("gring.ctrl", kLineBytes));
  const Addr slots =
      ga.alloc(capacity * 8, kLineBytes, ga.register_site("gring.slot", 8));
  m.poke(ctrl, 8, 0);       // head index
  m.poke(ctrl + 16, 8, 0);  // tail index
  for (std::uint64_t i = 0; i < capacity; ++i) m.poke(slots + i * 8, 8, 0);
  return GRing(ctrl, slots, capacity);
}

Task<void> GRing::push(GuestCtx& c, std::uint64_t value) {
  const std::uint64_t t = co_await c.load_u64(tail_addr());
  co_await c.store_u64(slot(t), value);
  co_await c.store_u64(tail_addr(), t + 1);
}

Task<std::uint64_t> GRing::pop(GuestCtx& c) {
  const std::uint64_t h = co_await c.load_u64(head_addr());
  const std::uint64_t v = co_await c.load_u64(slot(h));
  if (v == 0) co_return 0;  // empty (occupied-slot protocol, no tail read)
  co_await c.store_u64(slot(h), 0);
  co_await c.store_u64(head_addr(), h + 1);
  co_return v;
}

void GRing::host_push(Machine& m, std::uint64_t value) {
  const std::uint64_t t = m.peek(tail_addr(), 8);
  m.poke(slot(t), 8, value);
  m.poke(tail_addr(), 8, t + 1);
}

std::uint64_t GRing::host_size(const Machine& m) const {
  return m.peek(tail_addr(), 8) - m.peek(head_addr(), 8);
}

}  // namespace asfsim
