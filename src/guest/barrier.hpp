// Guest-side synchronization barrier (used by phased workloads like kmeans).
// Must not be awaited inside a transaction.
#pragma once

#include <cassert>
#include <coroutine>
#include <utility>
#include <vector>

#include "guest/ctx.hpp"
#include "sim/kernel.hpp"

namespace asfsim {

class GuestBarrier {
 public:
  GuestBarrier(Kernel& kernel, std::uint32_t parties)
      : kernel_(kernel), parties_(parties) {}

  struct Awaiter {
    GuestBarrier* bar;
    GuestCtx* ctx;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      assert(!ctx->in_tx() && "barrier inside a transaction");
      bar->waiting_.push_back({ctx->core(), h});
      if (bar->waiting_.size() == bar->parties_) {
        // Last arriver releases everyone (including itself) next cycle.
        auto released = std::move(bar->waiting_);
        bar->waiting_.clear();
        for (const auto& [core, handle] : released) {
          bar->kernel_.schedule(core, handle, bar->kernel_.now() + 1);
        }
      }
      // Otherwise: park with no pending event until the last party arrives.
    }
    void await_resume() const noexcept {}
  };

  Awaiter arrive_and_wait(GuestCtx& ctx) { return Awaiter{this, &ctx}; }

 private:
  Kernel& kernel_;
  std::uint32_t parties_;
  std::vector<std::pair<CoreId, std::coroutine_handle<>>> waiting_;
};

}  // namespace asfsim
