// Array-based binary min-heap in guest memory (the STAMP priority work
// queue: labyrinth and yada order their work by cost/quality).
//
// Layout: a control line {size, pad...} followed by a packed array of
// 8-byte keys. All sift operations are transactional guest accesses, so a
// concurrent pop/push pair conflicts exactly where a real shared heap
// would: on the size word and the touched path of the array.
#pragma once

#include <cstdint>

#include "guest/ctx.hpp"
#include "guest/machine.hpp"
#include "sim/task.hpp"

namespace asfsim {

class GHeap {
 public:
  GHeap() = default;
  static GHeap create(Machine& m, std::uint64_t capacity);

  /// Insert a key (min-heap order).
  Task<void> push(GuestCtx& c, std::uint64_t key);
  /// Pop the minimum key; returns ~0ull when empty.
  Task<std::uint64_t> pop(GuestCtx& c);
  Task<std::uint64_t> size(GuestCtx& c);

  void host_push(Machine& m, std::uint64_t key);
  [[nodiscard]] std::uint64_t host_size(const Machine& m) const;
  /// Min-heap property audit; empty string when it holds.
  [[nodiscard]] std::string host_validate(const Machine& m) const;

  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

 private:
  GHeap(Addr ctrl, Addr slots, std::uint64_t cap)
      : ctrl_(ctrl), slots_(slots), cap_(cap) {}
  [[nodiscard]] Addr size_addr() const { return ctrl_; }
  [[nodiscard]] Addr slot(std::uint64_t i) const { return slots_ + i * 8; }

  Addr ctrl_ = 0;
  Addr slots_ = 0;
  std::uint64_t cap_ = 0;
};

}  // namespace asfsim
