// Singly-linked sorted list and FIFO queue in guest memory.
//
// Node layout (8-byte fields, malloc-packed): {key, value, next}.
// The 8-byte-granular pointer chasing over unpadded nodes is what gives
// STAMP-style programs their "scattered at 8-byte granularity" intra-line
// access pattern (paper Fig. 5).
#pragma once

#include <cstdint>

#include "guest/ctx.hpp"
#include "guest/machine.hpp"
#include "sim/task.hpp"

namespace asfsim {

namespace gnode {
inline constexpr std::uint32_t kKey = 0;
inline constexpr std::uint32_t kValue = 8;
inline constexpr std::uint32_t kNext = 16;
inline constexpr std::uint32_t kSize = 24;
}  // namespace gnode

/// Allocate one {key,value,next} node from the calling core's pool (guest
/// contents are written transactionally by the caller).
[[nodiscard]] Addr galloc_node(GuestCtx& c);

/// Sorted singly-linked list with unique keys. The head pointer lives at a
/// fixed guest address so it is shared (and conflicted on) like any data.
class GList {
 public:
  GList() = default;
  explicit GList(Addr head_ptr) : head_(head_ptr) {}

  /// Create an empty list (allocates + zeroes the head pointer cell).
  static GList create(Machine& m);

  [[nodiscard]] Addr head_addr() const { return head_; }

  /// Insert key→value if absent; returns false if the key already exists.
  Task<bool> insert(GuestCtx& c, std::uint64_t key, std::uint64_t value);
  /// Find value by key; returns `notfound` when absent.
  Task<std::uint64_t> find(GuestCtx& c, std::uint64_t key,
                           std::uint64_t notfound);
  /// Remove by key; returns true if removed.
  Task<bool> erase(GuestCtx& c, std::uint64_t key);
  /// Number of elements (walks the list).
  Task<std::uint64_t> size(GuestCtx& c);

 private:
  Addr head_ = 0;
};

/// FIFO queue of {key,value} pairs (linked, head+tail pointers).
class GQueue {
 public:
  GQueue() = default;
  static GQueue create(Machine& m);

  Task<void> push(GuestCtx& c, std::uint64_t key, std::uint64_t value);
  /// Pop the front node; returns false when empty. key/value are host-side
  /// out-params (the caller's coroutine frame).
  Task<bool> pop(GuestCtx& c, std::uint64_t* key, std::uint64_t* value);
  Task<bool> empty(GuestCtx& c);

  /// Host-time (setup phase) push — no simulated cycles.
  void host_push(Machine& m, std::uint64_t key, std::uint64_t value);
  [[nodiscard]] std::uint64_t host_size(const Machine& m) const;

 private:
  explicit GQueue(Addr base) : base_(base) {}
  [[nodiscard]] Addr head_addr() const { return base_; }
  [[nodiscard]] Addr tail_addr() const { return base_ + 8; }
  Addr base_ = 0;  // {head, tail}
};

/// Array-based ring buffer (the STAMP queue_t shape): head and tail indices
/// live in the same control line (different 16-byte sub-blocks), slots are
/// packed 8-byte cells. Concurrent pop/push therefore false-share the
/// control line and the slot lines — the main false-conflict source of
/// queue-centric programs like intruder. Capacity must exceed the number of
/// in-flight items (no wraparound growth).
class GRing {
 public:
  GRing() = default;
  static GRing create(Machine& m, std::uint64_t capacity);

  /// Push value (non-zero!) at the tail. Capacity overrun asserts via the
  /// slot-occupied check in debug; callers size rings generously.
  Task<void> push(GuestCtx& c, std::uint64_t value);
  /// Pop the head value; returns 0 when empty (values must be non-zero).
  Task<std::uint64_t> pop(GuestCtx& c);

  void host_push(Machine& m, std::uint64_t value);
  [[nodiscard]] std::uint64_t host_size(const Machine& m) const;

 private:
  GRing(Addr ctrl, Addr slots, std::uint64_t cap)
      : ctrl_(ctrl), slots_(slots), cap_(cap) {}
  [[nodiscard]] Addr head_addr() const { return ctrl_; }
  [[nodiscard]] Addr tail_addr() const { return ctrl_ + 16; }
  [[nodiscard]] Addr slot(std::uint64_t i) const {
    return slots_ + (i % cap_) * 8;
  }
  Addr ctrl_ = 0;
  Addr slots_ = 0;
  std::uint64_t cap_ = 0;
};

}  // namespace asfsim
