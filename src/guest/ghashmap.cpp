#include "guest/ghashmap.hpp"

namespace asfsim {

GHashMap GHashMap::create(Machine& m, std::uint64_t nbuckets) {
  GAllocator& ga = m.galloc();
  const Addr buckets = ga.alloc(nbuckets * 8, kLineBytes,
                                ga.register_site("ghashmap.bucket", 8));
  for (std::uint64_t i = 0; i < nbuckets; ++i) m.poke(buckets + i * 8, 8, 0);
  return GHashMap(buckets, nbuckets);
}

Task<bool> GHashMap::insert(GuestCtx& c, std::uint64_t key,
                            std::uint64_t value) {
  const Addr bucket = bucket_addr(key);
  Addr cur = co_await c.load_u64(bucket);
  while (cur != 0) {
    const std::uint64_t k = co_await c.load_u64(cur + gnode::kKey);
    if (k == key) co_return false;
    cur = co_await c.load_u64(cur + gnode::kNext);
  }
  const Addr node = galloc_node(c);
  const Addr head = co_await c.load_u64(bucket);
  co_await c.store_u64(node + gnode::kKey, key);
  co_await c.store_u64(node + gnode::kValue, value);
  co_await c.store_u64(node + gnode::kNext, head);
  co_await c.store_u64(bucket, node);
  co_return true;
}

Task<std::uint64_t> GHashMap::find(GuestCtx& c, std::uint64_t key,
                                   std::uint64_t notfound) {
  Addr cur = co_await c.load_u64(bucket_addr(key));
  while (cur != 0) {
    const std::uint64_t k = co_await c.load_u64(cur + gnode::kKey);
    if (k == key) {
      const std::uint64_t v = co_await c.load_u64(cur + gnode::kValue);
      co_return v;
    }
    cur = co_await c.load_u64(cur + gnode::kNext);
  }
  co_return notfound;
}

Task<bool> GHashMap::contains(GuestCtx& c, std::uint64_t key) {
  Addr cur = co_await c.load_u64(bucket_addr(key));
  while (cur != 0) {
    const std::uint64_t k = co_await c.load_u64(cur + gnode::kKey);
    if (k == key) co_return true;
    cur = co_await c.load_u64(cur + gnode::kNext);
  }
  co_return false;
}

Task<std::uint64_t> GHashMap::add(GuestCtx& c, std::uint64_t key,
                                  std::uint64_t delta) {
  const Addr bucket = bucket_addr(key);
  Addr cur = co_await c.load_u64(bucket);
  while (cur != 0) {
    const std::uint64_t k = co_await c.load_u64(cur + gnode::kKey);
    if (k == key) {
      const std::uint64_t old = co_await c.load_u64(cur + gnode::kValue);
      const std::uint64_t v = old + delta;
      co_await c.store_u64(cur + gnode::kValue, v);
      co_return v;
    }
    cur = co_await c.load_u64(cur + gnode::kNext);
  }
  const Addr node = galloc_node(c);
  const Addr head = co_await c.load_u64(bucket);
  co_await c.store_u64(node + gnode::kKey, key);
  co_await c.store_u64(node + gnode::kValue, delta);
  co_await c.store_u64(node + gnode::kNext, head);
  co_await c.store_u64(bucket, node);
  co_return delta;
}

Task<bool> GHashMap::erase(GuestCtx& c, std::uint64_t key) {
  const Addr bucket = bucket_addr(key);
  Addr link = bucket;
  Addr cur = co_await c.load_u64(link);
  while (cur != 0) {
    const std::uint64_t k = co_await c.load_u64(cur + gnode::kKey);
    if (k == key) {
      const Addr next = co_await c.load_u64(cur + gnode::kNext);
      co_await c.store_u64(link, next);
      co_return true;
    }
    link = cur + gnode::kNext;
    cur = co_await c.load_u64(link);
  }
  co_return false;
}

std::uint64_t GHashMap::host_sum_values(const Machine& m) const {
  std::uint64_t sum = 0;
  for (std::uint64_t b = 0; b < nbuckets_; ++b) {
    Addr cur = m.peek(buckets_ + b * 8, 8);
    while (cur != 0) {
      sum += m.peek(cur + gnode::kValue, 8);
      cur = m.peek(cur + gnode::kNext, 8);
    }
  }
  return sum;
}

std::uint64_t GHashMap::host_size(const Machine& m) const {
  std::uint64_t n = 0;
  for (std::uint64_t b = 0; b < nbuckets_; ++b) {
    Addr cur = m.peek(buckets_ + b * 8, 8);
    while (cur != 0) {
      ++n;
      cur = m.peek(cur + gnode::kNext, 8);
    }
  }
  return n;
}

}  // namespace asfsim
