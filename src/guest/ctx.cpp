// GuestCtx is header-only; this TU exists to anchor the module.
#include "guest/ctx.hpp"
