// Chained hash map in guest memory (STAMP genome/intruder/vacation style).
//
// Buckets are an unpadded array of 8-byte head pointers; nodes are
// malloc-packed {key, value, next} triples — so distinct buckets and
// distinct nodes routinely share cache lines, which is exactly the false-
// sharing surface the paper measures.
#pragma once

#include <cstdint>

#include "guest/garray.hpp"
#include "guest/glist.hpp"

namespace asfsim {

class GHashMap {
 public:
  GHashMap() = default;

  static GHashMap create(Machine& m, std::uint64_t nbuckets);

  [[nodiscard]] std::uint64_t nbuckets() const { return nbuckets_; }

  /// Insert key→value if absent. Returns false if the key already exists.
  Task<bool> insert(GuestCtx& c, std::uint64_t key, std::uint64_t value);
  /// Lookup; returns `notfound` when absent.
  Task<std::uint64_t> find(GuestCtx& c, std::uint64_t key,
                           std::uint64_t notfound);
  Task<bool> contains(GuestCtx& c, std::uint64_t key);
  /// value += delta, inserting with `delta` when absent. Returns new value.
  Task<std::uint64_t> add(GuestCtx& c, std::uint64_t key, std::uint64_t delta);
  /// Remove by key; returns true if removed.
  Task<bool> erase(GuestCtx& c, std::uint64_t key);

  /// Host-time (setup/verification) full scan: sum of all values.
  [[nodiscard]] std::uint64_t host_sum_values(const Machine& m) const;
  [[nodiscard]] std::uint64_t host_size(const Machine& m) const;

 private:
  GHashMap(Addr buckets, std::uint64_t n) : buckets_(buckets), nbuckets_(n) {}
  [[nodiscard]] Addr bucket_addr(std::uint64_t key) const {
    std::uint64_t h = key * 0x9e3779b97f4a7c15ULL;
    h ^= h >> 29;
    return buckets_ + (h % nbuckets_) * 8;
  }
  Addr buckets_ = 0;
  std::uint64_t nbuckets_ = 0;
};

}  // namespace asfsim
