#include "guest/grbtree.hpp"

// STYLE RULE (load-bearing): never place co_await inside a condition
// expression (if / else-if / while / ternary) when the controlled branch
// also suspends — GCC 12 miscompiles that shape (the coroutine frame's
// state index is corrupted; the first resume silently runs the destroyer
// instead of the body). Always hoist the awaited value into a named local
// first. See tests/test_compiler_workaround.cpp.

namespace asfsim {

GRBTree GRBTree::create(Machine& m) {
  // Fat container header: own cache line (see GList::create).
  GAllocator& ga = m.galloc();
  const Addr root = ga.alloc(kLineBytes, kLineBytes,
                             ga.register_site("grbtree.root", kLineBytes));
  m.poke(root, 8, 0);
  return GRBTree(root);
}

Task<Addr> GRBTree::find_node(GuestCtx& c, std::uint64_t key) {
  Addr cur = co_await c.load_u64(root_);
  while (cur != 0) {
    const std::uint64_t k = co_await c.load_u64(cur + kKey);
    if (k == key) co_return cur;
    cur = co_await c.load_u64(cur + (key < k ? kLeft : kRight));
  }
  co_return 0;
}

Task<std::uint64_t> GRBTree::find(GuestCtx& c, std::uint64_t key,
                                  std::uint64_t notfound) {
  const Addr n = co_await find_node(c, key);
  if (n == 0) co_return notfound;
  const std::uint64_t v = co_await c.load_u64(n + kVal);
  co_return v;
}

Task<bool> GRBTree::contains(GuestCtx& c, std::uint64_t key) {
  const Addr n = co_await find_node(c, key);
  co_return n != 0;
}

Task<bool> GRBTree::update(GuestCtx& c, std::uint64_t key,
                           std::uint64_t value) {
  const Addr n = co_await find_node(c, key);
  if (n == 0) co_return false;
  co_await c.store_u64(n + kVal, value);
  co_return true;
}

Task<bool> GRBTree::lower_bound(GuestCtx& c, std::uint64_t key,
                                std::uint64_t* out_key,
                                std::uint64_t* out_value) {
  Addr best = 0;
  Addr cur = co_await c.load_u64(root_);
  while (cur != 0) {
    const std::uint64_t k = co_await c.load_u64(cur + kKey);
    if (k == key) {
      best = cur;
      break;
    }
    if (k > key) {
      best = cur;
      cur = co_await c.load_u64(cur + kLeft);
    } else {
      cur = co_await c.load_u64(cur + kRight);
    }
  }
  if (best == 0) co_return false;
  const std::uint64_t bk = co_await c.load_u64(best + kKey);
  const std::uint64_t bv = co_await c.load_u64(best + kVal);
  if (out_key != nullptr) *out_key = bk;
  if (out_value != nullptr) *out_value = bv;
  co_return true;
}

Task<void> GRBTree::rotate_left(GuestCtx& c, Addr x) {
  const Addr y = co_await c.load_u64(x + kRight);
  const Addr yl = co_await c.load_u64(y + kLeft);
  co_await c.store_u64(x + kRight, yl);
  if (yl != 0) co_await c.store_u64(yl + kParent, x);
  const Addr xp = co_await c.load_u64(x + kParent);
  co_await c.store_u64(y + kParent, xp);
  if (xp == 0) {
    co_await c.store_u64(root_, y);
  } else {
    const Addr xp_left = co_await c.load_u64(xp + kLeft);
    if (xp_left == x) {
      co_await c.store_u64(xp + kLeft, y);
    } else {
      co_await c.store_u64(xp + kRight, y);
    }
  }
  co_await c.store_u64(y + kLeft, x);
  co_await c.store_u64(x + kParent, y);
}

Task<void> GRBTree::rotate_right(GuestCtx& c, Addr x) {
  const Addr y = co_await c.load_u64(x + kLeft);
  const Addr yr = co_await c.load_u64(y + kRight);
  co_await c.store_u64(x + kLeft, yr);
  if (yr != 0) co_await c.store_u64(yr + kParent, x);
  const Addr xp = co_await c.load_u64(x + kParent);
  co_await c.store_u64(y + kParent, xp);
  if (xp == 0) {
    co_await c.store_u64(root_, y);
  } else {
    const Addr xp_right = co_await c.load_u64(xp + kRight);
    if (xp_right == x) {
      co_await c.store_u64(xp + kRight, y);
    } else {
      co_await c.store_u64(xp + kLeft, y);
    }
  }
  co_await c.store_u64(y + kRight, x);
  co_await c.store_u64(x + kParent, y);
}

Task<void> GRBTree::fixup_insert(GuestCtx& c, Addr z) {
  for (;;) {
    Addr p = co_await c.load_u64(z + kParent);
    if (p == 0) break;
    const std::uint64_t pcolor = co_await c.load_u64(p + kColor);
    if (pcolor == kBlack) break;
    const Addr g = co_await c.load_u64(p + kParent);  // red parent => exists
    const Addr gleft = co_await c.load_u64(g + kLeft);
    if (p == gleft) {
      const Addr u = co_await c.load_u64(g + kRight);
      const std::uint64_t ucolor =
          u == 0 ? kBlack : co_await c.load_u64(u + kColor);
      if (ucolor == kRed) {
        co_await c.store_u64(p + kColor, kBlack);
        co_await c.store_u64(u + kColor, kBlack);
        co_await c.store_u64(g + kColor, kRed);
        z = g;
        continue;
      }
      const Addr p_right = co_await c.load_u64(p + kRight);
      if (p_right == z) {
        z = p;
        co_await rotate_left(c, z);
        p = co_await c.load_u64(z + kParent);
      }
      co_await c.store_u64(p + kColor, kBlack);
      co_await c.store_u64(g + kColor, kRed);
      co_await rotate_right(c, g);
    } else {
      const Addr u = gleft;
      const std::uint64_t ucolor =
          u == 0 ? kBlack : co_await c.load_u64(u + kColor);
      if (ucolor == kRed) {
        co_await c.store_u64(p + kColor, kBlack);
        co_await c.store_u64(u + kColor, kBlack);
        co_await c.store_u64(g + kColor, kRed);
        z = g;
        continue;
      }
      const Addr p_left = co_await c.load_u64(p + kLeft);
      if (p_left == z) {
        z = p;
        co_await rotate_right(c, z);
        p = co_await c.load_u64(z + kParent);
      }
      co_await c.store_u64(p + kColor, kBlack);
      co_await c.store_u64(g + kColor, kRed);
      co_await rotate_left(c, g);
    }
  }
  const Addr root = co_await c.load_u64(root_);
  if (root != 0) {
    const std::uint64_t rcolor = co_await c.load_u64(root + kColor);
    if (rcolor != kBlack) co_await c.store_u64(root + kColor, kBlack);
  }
}

Task<bool> GRBTree::insert(GuestCtx& c, std::uint64_t key,
                           std::uint64_t value) {
  Addr parent = 0;
  bool went_left = false;
  Addr cur = co_await c.load_u64(root_);
  while (cur != 0) {
    const std::uint64_t k = co_await c.load_u64(cur + kKey);
    if (k == key) co_return false;
    parent = cur;
    went_left = key < k;
    cur = co_await c.load_u64(cur + (went_left ? kLeft : kRight));
  }
  const Addr z = c.alloc_local(
      kNodeSize, 8, c.galloc().register_site("grbtree.node", kNodeSize));
  co_await c.store_u64(z + kKey, key);
  co_await c.store_u64(z + kVal, value);
  co_await c.store_u64(z + kLeft, 0);
  co_await c.store_u64(z + kRight, 0);
  co_await c.store_u64(z + kParent, parent);
  co_await c.store_u64(z + kColor, kRed);
  if (parent == 0) {
    co_await c.store_u64(root_, z);
  } else {
    co_await c.store_u64(parent + (went_left ? kLeft : kRight), z);
  }
  co_await fixup_insert(c, z);
  co_return true;
}

Task<void> GRBTree::transplant(GuestCtx& c, Addr u, Addr uparent, Addr v) {
  if (uparent == 0) {
    co_await c.store_u64(root_, v);
  } else {
    const Addr up_left = co_await c.load_u64(uparent + kLeft);
    if (up_left == u) {
      co_await c.store_u64(uparent + kLeft, v);
    } else {
      co_await c.store_u64(uparent + kRight, v);
    }
  }
  if (v != 0) co_await c.store_u64(v + kParent, uparent);
}

Task<void> GRBTree::fixup_erase(GuestCtx& c, Addr x, Addr xparent) {
  for (;;) {
    const Addr root = co_await c.load_u64(root_);
    if (x == root) break;
    if (x != 0) {
      const std::uint64_t xcolor = co_await c.load_u64(x + kColor);
      if (xcolor == kRed) break;
    }
    // x is (conceptually) doubly black; its sibling w is non-null.
    const Addr pleft = co_await c.load_u64(xparent + kLeft);
    if (x == pleft) {
      Addr w = co_await c.load_u64(xparent + kRight);
      const std::uint64_t wcolor = co_await c.load_u64(w + kColor);
      if (wcolor == kRed) {
        co_await c.store_u64(w + kColor, kBlack);
        co_await c.store_u64(xparent + kColor, kRed);
        co_await rotate_left(c, xparent);
        w = co_await c.load_u64(xparent + kRight);
      }
      const Addr wl = co_await c.load_u64(w + kLeft);
      const Addr wr = co_await c.load_u64(w + kRight);
      const std::uint64_t wl_color =
          wl == 0 ? kBlack : co_await c.load_u64(wl + kColor);
      const std::uint64_t wr_color =
          wr == 0 ? kBlack : co_await c.load_u64(wr + kColor);
      if (wl_color == kBlack && wr_color == kBlack) {
        co_await c.store_u64(w + kColor, kRed);
        x = xparent;
        xparent = co_await c.load_u64(x + kParent);
        continue;
      }
      if (wr_color == kBlack) {
        if (wl != 0) co_await c.store_u64(wl + kColor, kBlack);
        co_await c.store_u64(w + kColor, kRed);
        co_await rotate_right(c, w);
        w = co_await c.load_u64(xparent + kRight);
      }
      const std::uint64_t pcolor = co_await c.load_u64(xparent + kColor);
      co_await c.store_u64(w + kColor, pcolor);
      co_await c.store_u64(xparent + kColor, kBlack);
      const Addr wr2 = co_await c.load_u64(w + kRight);
      if (wr2 != 0) co_await c.store_u64(wr2 + kColor, kBlack);
      co_await rotate_left(c, xparent);
      break;
    } else {
      Addr w = pleft;
      const std::uint64_t wcolor = co_await c.load_u64(w + kColor);
      if (wcolor == kRed) {
        co_await c.store_u64(w + kColor, kBlack);
        co_await c.store_u64(xparent + kColor, kRed);
        co_await rotate_right(c, xparent);
        w = co_await c.load_u64(xparent + kLeft);
      }
      const Addr wl = co_await c.load_u64(w + kLeft);
      const Addr wr = co_await c.load_u64(w + kRight);
      const std::uint64_t wl_color =
          wl == 0 ? kBlack : co_await c.load_u64(wl + kColor);
      const std::uint64_t wr_color =
          wr == 0 ? kBlack : co_await c.load_u64(wr + kColor);
      if (wl_color == kBlack && wr_color == kBlack) {
        co_await c.store_u64(w + kColor, kRed);
        x = xparent;
        xparent = co_await c.load_u64(x + kParent);
        continue;
      }
      if (wl_color == kBlack) {
        if (wr != 0) co_await c.store_u64(wr + kColor, kBlack);
        co_await c.store_u64(w + kColor, kRed);
        co_await rotate_left(c, w);
        w = co_await c.load_u64(xparent + kLeft);
      }
      const std::uint64_t pcolor = co_await c.load_u64(xparent + kColor);
      co_await c.store_u64(w + kColor, pcolor);
      co_await c.store_u64(xparent + kColor, kBlack);
      const Addr wl2 = co_await c.load_u64(w + kLeft);
      if (wl2 != 0) co_await c.store_u64(wl2 + kColor, kBlack);
      co_await rotate_right(c, xparent);
      break;
    }
  }
  if (x != 0) co_await c.store_u64(x + kColor, kBlack);
}

Task<bool> GRBTree::erase(GuestCtx& c, std::uint64_t key) {
  const Addr z = co_await find_node(c, key);
  if (z == 0) co_return false;

  Addr x = 0;
  Addr xparent = 0;
  std::uint64_t removed_color = co_await c.load_u64(z + kColor);
  const Addr zl = co_await c.load_u64(z + kLeft);
  const Addr zr = co_await c.load_u64(z + kRight);
  const Addr zp = co_await c.load_u64(z + kParent);

  if (zl == 0) {
    x = zr;
    xparent = zp;
    co_await transplant(c, z, zp, zr);
  } else if (zr == 0) {
    x = zl;
    xparent = zp;
    co_await transplant(c, z, zp, zl);
  } else {
    // y = minimum of z's right subtree; it replaces z.
    Addr y = zr;
    for (;;) {
      const Addr yl = co_await c.load_u64(y + kLeft);
      if (yl == 0) break;
      y = yl;
    }
    removed_color = co_await c.load_u64(y + kColor);
    x = co_await c.load_u64(y + kRight);
    const Addr yp = co_await c.load_u64(y + kParent);
    if (yp == z) {
      xparent = y;
    } else {
      xparent = yp;
      co_await transplant(c, y, yp, x);
      co_await c.store_u64(y + kRight, zr);
      co_await c.store_u64(zr + kParent, y);
    }
    co_await transplant(c, z, zp, y);
    co_await c.store_u64(y + kLeft, zl);
    co_await c.store_u64(zl + kParent, y);
    const std::uint64_t zcolor = co_await c.load_u64(z + kColor);
    co_await c.store_u64(y + kColor, zcolor);
  }
  if (removed_color == kBlack) co_await fixup_erase(c, x, xparent);
  co_return true;  // the removed node leaks (no guest free), as in STAMP
}

// ---- host-time operations ---------------------------------------------------

void GRBTree::host_insert(Machine& m, std::uint64_t key, std::uint64_t value) {
  auto rd = [&](Addr a) { return m.peek(a, 8); };
  auto wr = [&](Addr a, std::uint64_t v) { m.poke(a, 8, v); };

  Addr parent = 0;
  bool went_left = false;
  Addr cur = rd(root_);
  while (cur != 0) {
    const std::uint64_t k = rd(cur + kKey);
    if (k == key) {
      wr(cur + kVal, value);
      return;
    }
    parent = cur;
    went_left = key < k;
    cur = rd(cur + (went_left ? kLeft : kRight));
  }
  const Addr z = m.galloc().alloc(
      kNodeSize, 8, m.galloc().register_site("grbtree.node", kNodeSize));
  wr(z + kKey, key);
  wr(z + kVal, value);
  wr(z + kLeft, 0);
  wr(z + kRight, 0);
  wr(z + kParent, parent);
  wr(z + kColor, kRed);
  if (parent == 0) {
    wr(root_, z);
  } else {
    wr(parent + (went_left ? kLeft : kRight), z);
  }

  auto rot = [&](Addr x, bool left) {
    const std::uint32_t a = left ? kRight : kLeft;
    const std::uint32_t b = left ? kLeft : kRight;
    const Addr y = rd(x + a);
    const Addr yb = rd(y + b);
    wr(x + a, yb);
    if (yb != 0) wr(yb + kParent, x);
    const Addr xp = rd(x + kParent);
    wr(y + kParent, xp);
    if (xp == 0) {
      wr(root_, y);
    } else if (rd(xp + kLeft) == x) {
      wr(xp + kLeft, y);
    } else {
      wr(xp + kRight, y);
    }
    wr(y + b, x);
    wr(x + kParent, y);
  };

  Addr n = z;
  for (;;) {
    Addr p = rd(n + kParent);
    if (p == 0 || rd(p + kColor) == kBlack) break;
    const Addr g = rd(p + kParent);
    const bool pleft = rd(g + kLeft) == p;
    const Addr u = rd(g + (pleft ? kRight : kLeft));
    if (u != 0 && rd(u + kColor) == kRed) {
      wr(p + kColor, kBlack);
      wr(u + kColor, kBlack);
      wr(g + kColor, kRed);
      n = g;
      continue;
    }
    if (rd(p + (pleft ? kRight : kLeft)) == n) {
      n = p;
      rot(n, pleft);
      p = rd(n + kParent);
    }
    wr(p + kColor, kBlack);
    wr(g + kColor, kRed);
    rot(g, !pleft);
  }
  const Addr root = rd(root_);
  if (root != 0) wr(root + kColor, kBlack);
}

std::uint64_t GRBTree::host_size(const Machine& m) const {
  std::uint64_t n = 0;
  // Iterative in-order walk using parent pointers (no host recursion).
  Addr cur = m.peek(root_, 8);
  Addr prev = 0;
  while (cur != 0) {
    const Addr left = m.peek(cur + kLeft, 8);
    const Addr right = m.peek(cur + kRight, 8);
    const Addr parent = m.peek(cur + kParent, 8);
    if (prev == parent) {
      if (left != 0) {
        prev = cur;
        cur = left;
        continue;
      }
      ++n;
      if (right != 0) {
        prev = cur;
        cur = right;
        continue;
      }
      prev = cur;
      cur = parent;
    } else if (prev == left) {
      ++n;
      if (right != 0) {
        prev = cur;
        cur = right;
      } else {
        prev = cur;
        cur = parent;
      }
    } else {  // coming back up from the right child
      prev = cur;
      cur = parent;
    }
  }
  return n;
}

std::uint64_t GRBTree::host_find(const Machine& m, std::uint64_t key,
                                 std::uint64_t notfound) const {
  Addr cur = m.peek(root_, 8);
  while (cur != 0) {
    const std::uint64_t k = m.peek(cur + kKey, 8);
    if (k == key) return m.peek(cur + kVal, 8);
    cur = m.peek(cur + (key < k ? kLeft : kRight), 8);
  }
  return notfound;
}

int GRBTree::host_validate_rec(const Machine& m, Addr n, std::uint64_t lo,
                               std::uint64_t hi, bool has_lo,
                               bool has_hi) const {
  if (n == 0) return 1;  // null leaves are black
  const std::uint64_t k = m.peek(n + kKey, 8);
  if ((has_lo && k <= lo) || (has_hi && k >= hi)) return -1;
  const std::uint64_t color = m.peek(n + kColor, 8);
  const Addr l = m.peek(n + kLeft, 8);
  const Addr r = m.peek(n + kRight, 8);
  if (color == kRed) {
    if (l != 0 && m.peek(l + kColor, 8) == kRed) return -1;
    if (r != 0 && m.peek(r + kColor, 8) == kRed) return -1;
  }
  if (l != 0 && m.peek(l + kParent, 8) != n) return -1;
  if (r != 0 && m.peek(r + kParent, 8) != n) return -1;
  const int hl = host_validate_rec(m, l, lo, k, has_lo, true);
  const int hr = host_validate_rec(m, r, k, hi, true, has_hi);
  if (hl < 0 || hr < 0 || hl != hr) return -1;
  return hl + (color == kBlack ? 1 : 0);
}

int GRBTree::host_validate(const Machine& m) const {
  const Addr root = m.peek(root_, 8);
  if (root == 0) return 1;
  if (m.peek(root + kColor, 8) != kBlack) return -1;
  if (m.peek(root + kParent, 8) != 0) return -1;
  return host_validate_rec(m, root, 0, 0, false, false);
}

}  // namespace asfsim
