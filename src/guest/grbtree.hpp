// Red-black tree in guest memory (the STAMP vacation reservation tables).
//
// Node layout (8-byte fields, malloc-packed, 48 bytes — 1.33 nodes/line):
//   {key, value, left, right, parent, color}
// Null children are guest address 0 and the parent of the root is 0; there
// is NO shared sentinel node (a written sentinel would fabricate true
// conflicts between otherwise-independent transactions).
//
// All operations are guest coroutines: every pointer dereference is a
// simulated, conflict-detected memory access.
#pragma once

#include <cstdint>

#include "guest/ctx.hpp"
#include "guest/machine.hpp"
#include "sim/task.hpp"

namespace asfsim {

class GRBTree {
 public:
  GRBTree() = default;

  static GRBTree create(Machine& m);

  [[nodiscard]] Addr root_addr() const { return root_; }

  /// Insert key→value if absent. Returns false if the key already exists.
  Task<bool> insert(GuestCtx& c, std::uint64_t key, std::uint64_t value);
  /// Lookup; returns `notfound` when absent.
  Task<std::uint64_t> find(GuestCtx& c, std::uint64_t key,
                           std::uint64_t notfound);
  Task<bool> contains(GuestCtx& c, std::uint64_t key);
  /// Overwrite the value of an existing key. Returns false when absent.
  Task<bool> update(GuestCtx& c, std::uint64_t key, std::uint64_t value);
  /// Remove by key; returns true if removed.
  Task<bool> erase(GuestCtx& c, std::uint64_t key);
  /// Smallest key >= `key`; writes result via out-params, returns found flag.
  Task<bool> lower_bound(GuestCtx& c, std::uint64_t key, std::uint64_t* out_key,
                         std::uint64_t* out_value);

  // ---- host-time (setup / verification) ------------------------------------
  /// Setup-phase insert without simulated cycles (builds initial tables).
  void host_insert(Machine& m, std::uint64_t key, std::uint64_t value);
  [[nodiscard]] std::uint64_t host_size(const Machine& m) const;
  /// Validate BST order + red-black invariants; returns black-height or -1.
  [[nodiscard]] int host_validate(const Machine& m) const;
  [[nodiscard]] std::uint64_t host_find(const Machine& m, std::uint64_t key,
                                        std::uint64_t notfound) const;

 private:
  explicit GRBTree(Addr root_ptr) : root_(root_ptr) {}

  // Guest node field addresses. Traversal fields (key/left/right/parent)
  // and the mutable value live in different 16-byte sub-blocks, so a value
  // update never truly overlaps a traversal read of the same node — 48-byte
  // nodes start on 16-byte boundaries, which is why four sub-blocks remove
  // nearly all of vacation's false conflicts (paper Fig 8).
  static constexpr std::uint32_t kKey = 0, kLeft = 8, kRight = 16,
                                 kParent = 24, kColor = 32, kVal = 40,
                                 kNodeSize = 48;
  static constexpr std::uint64_t kRed = 0, kBlack = 1;

  Task<Addr> find_node(GuestCtx& c, std::uint64_t key);
  Task<void> rotate_left(GuestCtx& c, Addr x);
  Task<void> rotate_right(GuestCtx& c, Addr x);
  Task<void> fixup_insert(GuestCtx& c, Addr z);
  Task<void> fixup_erase(GuestCtx& c, Addr x, Addr xparent);
  /// Replace subtree `u` (child of `uparent`) with `v` in u's slot.
  Task<void> transplant(GuestCtx& c, Addr u, Addr uparent, Addr v);

  int host_validate_rec(const Machine& m, Addr n, std::uint64_t lo,
                        std::uint64_t hi, bool has_lo, bool has_hi) const;

  Addr root_ = 0;  // guest address of the root pointer cell
};

}  // namespace asfsim
