// Typed fixed-width array views over guest (simulated) memory.
//
// Element width is the crucial knob for false-sharing studies: a GArray<4>
// packs sixteen elements per 64-byte line (kmeans-style 32-bit data), a
// GArray<8> packs eight (pointer-sized data, the common STAMP case).
#pragma once

#include <cstdint>

#include "guest/ctx.hpp"
#include "guest/machine.hpp"
#include "mem/gallocator.hpp"

namespace asfsim {

template <std::uint32_t W>
class GArray {
  static_assert(W == 1 || W == 2 || W == 4 || W == 8, "element width");

 public:
  GArray() = default;
  explicit GArray(Addr base) : base_(base) {}

  static GArray alloc(GAllocator& ga, std::uint64_t count,
                      std::uint64_t align = W) {
    return GArray(ga.alloc(count * W, align));
  }

  /// Allocate tagged with a provenance site named `site` (element-sized
  /// objects, so per-object attribution reports array indices).
  static GArray alloc(GAllocator& ga, std::uint64_t count, std::uint64_t align,
                      const char* site) {
    return GArray(ga.alloc(count * W, align, ga.register_site(site, W)));
  }

  [[nodiscard]] Addr base() const { return base_; }
  [[nodiscard]] Addr addr(std::uint64_t i) const { return base_ + i * W; }
  [[nodiscard]] bool valid() const { return base_ != 0; }

  /// Awaitable element load/store (simulated access).
  [[nodiscard]] GuestCtx::MemOp get(GuestCtx& c, std::uint64_t i) const {
    return c.load(addr(i), W);
  }
  [[nodiscard]] GuestCtx::MemOp set(GuestCtx& c, std::uint64_t i,
                                    std::uint64_t v) const {
    return c.store(addr(i), W, v);
  }

  /// Host-time (setup phase) element access — no simulated cycles.
  void poke(Machine& m, std::uint64_t i, std::uint64_t v) const {
    m.poke(addr(i), W, v);
  }
  [[nodiscard]] std::uint64_t peek(const Machine& m, std::uint64_t i) const {
    return m.peek(addr(i), W);
  }

 private:
  Addr base_ = 0;
};

using GArray8 = GArray<1>;
using GArray16 = GArray<2>;
using GArray32 = GArray<4>;
using GArray64 = GArray<8>;

/// Bit-cast helpers for storing floats in 32-bit guest cells.
[[nodiscard]] inline std::uint32_t f2u(float f) {
  std::uint32_t u;
  __builtin_memcpy(&u, &f, 4);
  return u;
}
[[nodiscard]] inline float u2f(std::uint32_t u) {
  float f;
  __builtin_memcpy(&f, &u, 4);
  return f;
}

}  // namespace asfsim
