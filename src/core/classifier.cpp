#include "core/classifier.hpp"

namespace asfsim {

bool true_conflict(const SpecState& victim, ByteMask probe, bool invalidating) {
  const ByteMask relevant =
      invalidating ? (victim.read_bytes | victim.write_bytes)
                   : victim.write_bytes;
  return (probe & relevant) != 0;
}

bool baseline_would_conflict(const SpecState& victim, bool invalidating) {
  if (invalidating) return (victim.read_bytes | victim.write_bytes) != 0;
  return victim.write_bytes != 0;
}

Classification classify_conflict(const SpecState& victim, ByteMask probe,
                                 bool invalidating) {
  Classification c;
  c.is_false = !true_conflict(victim, probe, invalidating);
  if (!invalidating) {
    // A load probe only conflicts with speculatively-written data.
    c.type = ConflictType::kRAW;
  } else if (c.is_false) {
    // False invalidating conflict: type is named from what the victim holds.
    c.type = victim.write_bytes != 0 ? ConflictType::kWAW : ConflictType::kWAR;
  } else {
    // True invalidating conflict: overlap with writes dominates.
    c.type = (probe & victim.write_bytes) != 0 ? ConflictType::kWAW
                                               : ConflictType::kWAR;
  }
  return c;
}

}  // namespace asfsim
