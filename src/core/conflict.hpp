// Conflict and abort vocabulary shared by the detectors, the HTM runtime,
// the memory system and the statistics module.
#pragma once

#include <cstdint>

#include "mem/addr.hpp"
#include "sim/types.hpp"

namespace asfsim {

/// Paper Fig. 2 vocabulary: type of a transactional conflict, named from the
/// incoming access relative to the victim's existing speculative state.
///   WAR — incoming (invalidating) write hits a speculatively-READ line
///   RAW — incoming (non-invalidating) read hits a speculatively-WRITTEN line
///   WAW — incoming write hits a speculatively-WRITTEN line
enum class ConflictType : std::uint8_t { kWAR = 0, kRAW = 1, kWAW = 2 };

[[nodiscard]] constexpr const char* to_string(ConflictType t) {
  switch (t) {
    case ConflictType::kWAR: return "WAR";
    case ConflictType::kRAW: return "RAW";
    case ConflictType::kWAW: return "WAW";
  }
  return "?";
}

/// Why a transaction aborted.
enum class AbortCause : std::uint8_t {
  kConflict = 0,  // coherence-detected transactional conflict
  kCapacity,      // speculative line could not be kept in the L1 (best-effort)
  kUser,          // explicit guest-requested abort (e.g. labyrinth re-route)
  kLockWait,      // the software fallback lock was held at subscribe time
};

[[nodiscard]] constexpr const char* to_string(AbortCause c) {
  switch (c) {
    case AbortCause::kConflict: return "conflict";
    case AbortCause::kCapacity: return "capacity";
    case AbortCause::kUser: return "user";
    case AbortCause::kLockWait: return "lock-wait";
  }
  return "?";
}

/// One detected transactional conflict (one aborted victim).
struct ConflictRecord {
  CoreId requester = kInvalidCore;
  CoreId victim = kInvalidCore;
  Addr line = 0;
  ByteMask probe_bytes = 0;   // bytes touched by the incoming access
  ByteMask victim_bytes = 0;  // victim bytes the probe type checks against
  bool invalidating = false;  // incoming access was a write/RFO
  bool is_false = false;     // no byte-level overlap => false conflict
  ConflictType type = ConflictType::kWAR;
  Cycle cycle = 0;
};

}  // namespace asfsim
