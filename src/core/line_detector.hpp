// Baseline ASF conflict detection: one SR bit and one SW bit per cache line
// (paper §IV-A). An invalidating probe conflicts with SR or SW; a
// non-invalidating probe conflicts with SW only.
#pragma once

#include "core/detector.hpp"

namespace asfsim {

class LineDetector final : public ConflictDetector {
 public:
  [[nodiscard]] DetectorKind kind() const override {
    return DetectorKind::kBaseline;
  }
  [[nodiscard]] const char* name() const override { return "baseline-asf"; }
  [[nodiscard]] ProbeCheck check_probe(const SpecState& victim, ByteMask probe,
                                       bool invalidating) const override;
};

}  // namespace asfsim
