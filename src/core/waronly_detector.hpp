// Prior-work ablation: WAR-only false-conflict reduction (paper §II).
//
// SpMT (Porter et al.) and DPTM (Tabba et al.) speculate that an invalidated
// speculatively-READ line carries no true conflict and validate later by
// value comparison. They cannot help RAW false conflicts (a load probe
// hitting a speculatively-written line still aborts at line granularity),
// which Fig. 2 shows are the dominant type for several programs.
//
// We model the scheme eagerly: a false WAR (no byte overlap with the read
// set) is allowed to proceed (value validation would succeed, since the
// untouched bytes are unchanged); a true WAR aborts immediately (validation
// would fail at commit — same lost work, simpler accounting). RAW and WAW
// remain line-granular.
#pragma once

#include "core/detector.hpp"

namespace asfsim {

class WarOnlyDetector final : public ConflictDetector {
 public:
  [[nodiscard]] DetectorKind kind() const override {
    return DetectorKind::kWarOnly;
  }
  [[nodiscard]] const char* name() const override { return "war-only"; }

  [[nodiscard]] ProbeCheck check_probe(const SpecState& victim, ByteMask probe,
                                       bool invalidating) const override;
};

}  // namespace asfsim
