// Paper Table I: the two-bit speculative sub-block state.
//
//   SPEC WR   State
//    0    0   Non-speculative
//    0    1   Dirty              (written by another transaction; unreliable)
//    1    0   Speculative Read   (S-RD)
//    1    1   Speculative Write  (S-WR)
//
// Each cache line carries one (SPEC, WR) pair per sub-block; with N
// sub-blocks that is 2N bits per line, i.e. 2(N-1) more than baseline ASF's
// SR/SW pair (paper §IV-E).
#pragma once

#include <cstdint>

#include "mem/addr.hpp"

namespace asfsim {

enum class SubBlockState : std::uint8_t {
  kNonSpec = 0b00,
  kDirty = 0b01,
  kSpecRead = 0b10,
  kSpecWrite = 0b11,
};

[[nodiscard]] constexpr const char* to_string(SubBlockState s) {
  switch (s) {
    case SubBlockState::kNonSpec: return "Non-speculative";
    case SubBlockState::kDirty: return "Dirty";
    case SubBlockState::kSpecRead: return "S-RD";
    case SubBlockState::kSpecWrite: return "S-WR";
  }
  return "?";
}

[[nodiscard]] constexpr bool spec_bit(SubBlockState s) {
  return (static_cast<std::uint8_t>(s) & 0b10) != 0;
}
[[nodiscard]] constexpr bool wr_bit(SubBlockState s) {
  return (static_cast<std::uint8_t>(s) & 0b01) != 0;
}

[[nodiscard]] constexpr SubBlockState make_state(bool spec, bool wr) {
  return static_cast<SubBlockState>((spec ? 0b10 : 0) | (wr ? 0b01 : 0));
}

/// Per-line packed sub-block bits: bit i of `spec`/`wr` belongs to sub-block i.
struct SubBlockBits {
  SubBlockMask spec = 0;
  SubBlockMask wr = 0;

  [[nodiscard]] constexpr SubBlockState state(std::uint32_t i) const {
    return make_state((spec >> i) & 1, (wr >> i) & 1);
  }
  constexpr void set(std::uint32_t i, SubBlockState s) {
    const SubBlockMask bit = static_cast<SubBlockMask>(1u << i);
    spec = spec_bit(s) ? (spec | bit) : (spec & ~bit);
    wr = wr_bit(s) ? (wr | bit) : (wr & ~bit);
  }

  /// Sub-blocks in S-RD or S-WR state.
  [[nodiscard]] constexpr SubBlockMask speculative() const { return spec; }
  /// Sub-blocks in S-WR state.
  [[nodiscard]] constexpr SubBlockMask spec_written() const {
    return spec & wr;
  }
  /// Sub-blocks in S-RD state.
  [[nodiscard]] constexpr SubBlockMask spec_read_only() const {
    return static_cast<SubBlockMask>(spec & ~wr);
  }
  /// Sub-blocks in Dirty state.
  [[nodiscard]] constexpr SubBlockMask dirty() const {
    return static_cast<SubBlockMask>(~spec & wr);
  }
};

}  // namespace asfsim
