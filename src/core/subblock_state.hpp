// Paper Table I: the two-bit speculative sub-block state.
//
//   SPEC WR   State
//    0    0   Non-speculative
//    0    1   Dirty              (written by another transaction; unreliable)
//    1    0   Speculative Read   (S-RD)
//    1    1   Speculative Write  (S-WR)
//
// Each cache line carries one (SPEC, WR) pair per sub-block; with N
// sub-blocks that is 2N bits per line, i.e. 2(N-1) more than baseline ASF's
// SR/SW pair (paper §IV-E).
#pragma once

#include <cstdint>

#include "mem/addr.hpp"

namespace asfsim {

enum class SubBlockState : std::uint8_t {
  kNonSpec = 0b00,
  kDirty = 0b01,
  kSpecRead = 0b10,
  kSpecWrite = 0b11,
};

[[nodiscard]] constexpr const char* to_string(SubBlockState s) {
  switch (s) {
    case SubBlockState::kNonSpec: return "Non-speculative";
    case SubBlockState::kDirty: return "Dirty";
    case SubBlockState::kSpecRead: return "S-RD";
    case SubBlockState::kSpecWrite: return "S-WR";
  }
  return "?";
}

[[nodiscard]] constexpr bool spec_bit(SubBlockState s) {
  return (static_cast<std::uint8_t>(s) & 0b10) != 0;
}
[[nodiscard]] constexpr bool wr_bit(SubBlockState s) {
  return (static_cast<std::uint8_t>(s) & 0b01) != 0;
}

[[nodiscard]] constexpr SubBlockState make_state(bool spec, bool wr) {
  return static_cast<SubBlockState>((spec ? 0b10 : 0) | (wr ? 0b01 : 0));
}

/// Events driving the per-sub-block state machine. Tx events come from the
/// owning transaction's own accesses; probe events from remote accesses that
/// hit the sub-block (load = non-invalidating, store = invalidating).
enum class SubBlockEvent : std::uint8_t {
  kTxRead = 0,
  kTxWrite,
  kProbeLoad,
  kProbeStore,
};

struct SubBlockTransition {
  SubBlockState next;
  bool conflict;
};

/// The full 16-entry transition table (old state × event → new state +
/// conflict flag), the formal spec of the lattice the word-wide operations
/// below implement. Rationale per row:
///   * own reads make a sub-block S-RD but never demote S-WR (a read of an
///     S-WR sub-block leaves it S-WR); a Dirty sub-block is refetched by the
///     forced miss and joins the read set;
///   * own writes make any sub-block S-WR;
///   * a remote load conflicts only with S-WR (RAW); S-RD tolerates sharing;
///   * a remote store conflicts with S-RD (WAR) and S-WR (WAW); a conflict
///     dooms the transaction, whose sub-blocks revert to Non-speculative;
///     untouched and Dirty sub-blocks just lose the line.
/// tests/test_kernel_perf_identity.cpp proves this table equal to the
/// switch-based reference semantics over all (state × event) pairs.
inline constexpr SubBlockTransition
    kSubBlockLut[4][4] = {
        // state = kNonSpec (0b00)
        {{SubBlockState::kSpecRead, false},   // kTxRead
         {SubBlockState::kSpecWrite, false},  // kTxWrite
         {SubBlockState::kNonSpec, false},    // kProbeLoad
         {SubBlockState::kNonSpec, false}},   // kProbeStore
        // state = kDirty (0b01)
        {{SubBlockState::kSpecRead, false},
         {SubBlockState::kSpecWrite, false},
         {SubBlockState::kDirty, false},
         {SubBlockState::kNonSpec, false}},
        // state = kSpecRead (0b10)
        {{SubBlockState::kSpecRead, false},
         {SubBlockState::kSpecWrite, false},
         {SubBlockState::kSpecRead, false},
         {SubBlockState::kNonSpec, true}},  // WAR
        // state = kSpecWrite (0b11)
        {{SubBlockState::kSpecWrite, false},
         {SubBlockState::kSpecWrite, false},
         {SubBlockState::kNonSpec, true},   // RAW
         {SubBlockState::kNonSpec, true}},  // WAW
};

[[nodiscard]] constexpr SubBlockTransition subblock_transition(
    SubBlockState s, SubBlockEvent e) {
  return kSubBlockLut[static_cast<std::uint8_t>(s)]
                     [static_cast<std::uint8_t>(e)];
}

/// Per-line packed sub-block bits: bit i of `spec`/`wr` belongs to sub-block i.
struct SubBlockBits {
  SubBlockMask spec = 0;
  SubBlockMask wr = 0;

  [[nodiscard]] constexpr SubBlockState state(std::uint32_t i) const {
    return make_state((spec >> i) & 1, (wr >> i) & 1);
  }
  constexpr void set(std::uint32_t i, SubBlockState s) {
    const SubBlockMask bit = static_cast<SubBlockMask>(1u << i);
    spec = spec_bit(s) ? (spec | bit) : (spec & ~bit);
    wr = wr_bit(s) ? (wr | bit) : (wr & ~bit);
  }

  /// Sub-blocks in S-RD or S-WR state.
  [[nodiscard]] constexpr SubBlockMask speculative() const { return spec; }
  /// Sub-blocks in S-WR state.
  [[nodiscard]] constexpr SubBlockMask spec_written() const {
    return spec & wr;
  }
  /// Sub-blocks in S-RD state.
  [[nodiscard]] constexpr SubBlockMask spec_read_only() const {
    return static_cast<SubBlockMask>(spec & ~wr);
  }
  /// Sub-blocks in Dirty state.
  [[nodiscard]] constexpr SubBlockMask dirty() const {
    return static_cast<SubBlockMask>(~spec & wr);
  }

  // ---- word-wide transitions ---------------------------------------------
  // One bit-op pass over all sub-blocks of the line, equal bit-for-bit to
  // applying kSubBlockLut per sub-block (proven by the LUT unit test).

  /// Apply kTxRead/kTxWrite to every sub-block in `m`.
  constexpr void apply_tx(SubBlockMask m, bool is_write) {
    spec = static_cast<SubBlockMask>(spec | m);
    if (is_write) wr = static_cast<SubBlockMask>(wr | m);
  }

  /// Sub-blocks of probe mask `m` whose LUT row flags a conflict: S-WR for
  /// a remote load (RAW), S-RD and S-WR for a remote store (WAR/WAW).
  [[nodiscard]] constexpr SubBlockMask probe_conflicts(
      SubBlockMask m, bool invalidating) const {
    return static_cast<SubBlockMask>(m & (invalidating ? spec : (spec & wr)));
  }
};

}  // namespace asfsim
