// Ground-truth conflict classification (paper Figs. 1-2 vocabulary).
//
// Every detected conflict is classified against the victim's exact byte
// masks, independent of which detector found it:
//   * false  — the probe's bytes do not overlap the victim's relevant bytes
//              (pure cache-line / sub-block false sharing);
//   * type   — WAR / RAW / WAW, named from the incoming access versus the
//              victim's existing speculative state.
#pragma once

#include "core/conflict.hpp"
#include "core/detector.hpp"

namespace asfsim {

struct Classification {
  bool is_false = false;
  ConflictType type = ConflictType::kWAR;
};

/// Classify a (hypothetical or detected) conflict between an incoming probe
/// and a victim's speculative state.
[[nodiscard]] Classification classify_conflict(const SpecState& victim,
                                               ByteMask probe,
                                               bool invalidating);

/// Would baseline ASF (per-line SR/SW) have flagged this probe as a conflict?
/// Used to count false conflicts *avoided* by finer-grained detectors.
[[nodiscard]] bool baseline_would_conflict(const SpecState& victim,
                                           bool invalidating);

/// Is there a true (byte-overlap) conflict?
[[nodiscard]] bool true_conflict(const SpecState& victim, ByteMask probe,
                                 bool invalidating);

}  // namespace asfsim
