// Conflict-detection policies.
//
// A ConflictDetector is a stateless policy object; the per-(core, line)
// speculative metadata it operates on is the SpecState below, owned by the
// MemorySystem and cleared when the owning transaction commits or aborts.
//
// SpecState carries two views of the same speculative accesses:
//   * exact byte masks (read_bytes / write_bytes) — the ground truth used by
//     the classifier (false/true, WAR/RAW/WAW) and by the perfect detector;
//   * architectural sub-block bits (paper Table I) — what the proposed
//     hardware actually stores and checks.
// The baseline ASF detector only looks at "any byte set" (its per-line SR/SW
// bits are exactly read_bytes != 0 / write_bytes != 0).
#pragma once

#include <cstdint>
#include <memory>

#include "core/subblock_state.hpp"
#include "mem/addr.hpp"

namespace asfsim {

/// Per-(core, line) speculative metadata for the core's current transaction.
struct SpecState {
  ByteMask read_bytes = 0;   // bytes speculatively read
  ByteMask write_bytes = 0;  // bytes speculatively written
  SubBlockBits bits;         // architectural per-sub-block SPEC/WR bits
};

/// Result of checking an incoming coherence probe against a victim's state.
struct ProbeCheck {
  bool conflict = false;        // abort the victim's transaction
  SubBlockMask piggyback = 0;   // spec-written sub-blocks to report back to the
                                // requester (marked Dirty there); load probes
  bool retain_spec_info = false;  // on invalidation without conflict, keep the
                                  // speculative info in the invalidated line
};

enum class DetectorKind : std::uint8_t {
  kBaseline = 0,        // ASF per-line SR/SW bits
  kSubBlock,            // speculative sub-blocking state; WAW checked at
                        // sub-block granularity (sound here because
                        // versioning is overlay-based — see DESIGN.md §6.5)
  kSubBlockWawLine,     // paper §IV-D2 faithful: any invalidation of a line
                        // holding S-WR sub-blocks aborts (in-cache
                        // versioning cannot survive losing the line)
  kSubBlockNoDirty,     // ablation: sub-blocking WITHOUT dirty handling
                        // (demonstrates the Fig. 6 atomicity problem)
  kPerfect,             // byte-granularity oracle: zero false conflicts
  kWarOnly,             // prior work (SpMT/DPTM-style): only false WAR
                        // conflicts are speculated away
};

[[nodiscard]] const char* to_string(DetectorKind k);

class ConflictDetector {
 public:
  virtual ~ConflictDetector() = default;

  [[nodiscard]] virtual DetectorKind kind() const = 0;
  [[nodiscard]] virtual const char* name() const = 0;

  /// Number of sub-blocks per line this detector tracks (1 for per-line).
  [[nodiscard]] virtual std::uint32_t nsub() const { return 1; }

  /// True for the perfect detector: conflicts are found by a centralized
  /// byte-overlap check on every access instead of via coherence probes.
  [[nodiscard]] virtual bool global_oracle() const { return false; }

  /// True when the detector piggy-backs S-WR masks on load-probe responses
  /// so requesters mark those sub-blocks Dirty (paper §IV-C). Gates the
  /// piggyback-coverage invariant in MemorySystem::check_invariants().
  [[nodiscard]] virtual bool dirty_handling() const { return false; }

  /// Check an incoming probe (byte mask `probe`) against a remote victim's
  /// speculative state. `invalidating` = the probe is for a write/RFO.
  [[nodiscard]] virtual ProbeCheck check_probe(const SpecState& victim,
                                               ByteMask probe,
                                               bool invalidating) const = 0;

  /// Should a transactional load that hits the local L1 be treated as a miss
  /// because it touches Dirty sub-blocks? `dirty` is the line's dirty-mark
  /// sub-block mask, `access` the load's byte mask.
  [[nodiscard]] virtual bool dirty_hit(SubBlockMask dirty,
                                       ByteMask access) const {
    (void)dirty;
    (void)access;
    return false;
  }
};

/// Factory. `nsub` is only meaningful for the sub-blocking detectors.
[[nodiscard]] std::unique_ptr<ConflictDetector> make_detector(
    DetectorKind kind, std::uint32_t nsub = 4);

}  // namespace asfsim
