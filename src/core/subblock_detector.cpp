#include "core/subblock_detector.hpp"

#include <cstdio>
#include <stdexcept>

#include "core/line_detector.hpp"
#include "core/perfect_detector.hpp"
#include "core/waronly_detector.hpp"

namespace asfsim {

SubBlockDetector::SubBlockDetector(std::uint32_t nsub, bool dirty_handling,
                                   bool waw_line)
    : nsub_(nsub), dirty_handling_(dirty_handling), waw_line_(waw_line) {
  if (nsub < 2 || nsub > kMaxSubBlocks || (nsub & (nsub - 1)) != 0) {
    throw std::invalid_argument(
        "SubBlockDetector: nsub must be a power of two in [2,16]");
  }
  std::snprintf(name_, sizeof(name_), "subblock-%u%s%s", nsub,
                dirty_handling ? "" : "-nodirty", waw_line ? "-wawline" : "");
}

ProbeCheck SubBlockDetector::check_probe(const SpecState& victim,
                                         ByteMask probe,
                                         bool invalidating) const {
  ProbeCheck pc;
  const SubBlockMask psb = quantize(probe, nsub_);

  if (!invalidating) {
    // Word-wide LUT application: a remote load conflicts exactly with the
    // probed S-WR sub-blocks (RAW row of kSubBlockLut).
    if (victim.bits.probe_conflicts(psb, false) != 0) {
      pc.conflict = true;  // true-or-intra-sub-block RAW
    } else if (dirty_handling_) {
      // No conflict: report the victim's S-WR sub-blocks so the requester
      // marks its copies Dirty (paper Fig. 7).
      pc.piggyback = victim.bits.spec_written();
    }
    return pc;
  }

  // Invalidating probe: conflicts exactly with the probed speculative
  // sub-blocks (WAR/WAW rows). In the paper-faithful WAW-line mode, any
  // S-WR sub-block additionally aborts the whole line (§IV-D2: with
  // in-cache versioning, losing the line in the invalidation loses the
  // speculative data). The default mode checks writes at sub-block
  // granularity too, which is sound with overlay-based versioning plus
  // retained metadata and the commit-time validation net (DESIGN.md §6.5).
  if (victim.bits.probe_conflicts(psb, true) != 0 ||
      (waw_line_ && victim.bits.spec_written() != 0)) {
    pc.conflict = true;
  } else if (victim.bits.speculative() != 0) {
    // False WAR/WAW: the transaction survives, but the line is
    // invalidated. Keep the speculative info inside the invalidated line
    // (§IV-B) so later true conflicts are still caught.
    pc.retain_spec_info = true;
  }
  return pc;
}

bool SubBlockDetector::dirty_hit(SubBlockMask dirty, ByteMask access) const {
  if (!dirty_handling_) return false;
  return (dirty & quantize(access, nsub_)) != 0;
}

const char* to_string(DetectorKind k) {
  switch (k) {
    case DetectorKind::kBaseline: return "baseline-asf";
    case DetectorKind::kSubBlock: return "subblock";
    case DetectorKind::kSubBlockWawLine: return "subblock-wawline";
    case DetectorKind::kSubBlockNoDirty: return "subblock-nodirty";
    case DetectorKind::kPerfect: return "perfect";
    case DetectorKind::kWarOnly: return "war-only";
  }
  return "?";
}

std::unique_ptr<ConflictDetector> make_detector(DetectorKind kind,
                                                std::uint32_t nsub) {
  switch (kind) {
    case DetectorKind::kBaseline:
      return std::make_unique<LineDetector>();
    case DetectorKind::kSubBlock:
      return std::make_unique<SubBlockDetector>(nsub, /*dirty_handling=*/true);
    case DetectorKind::kSubBlockWawLine:
      return std::make_unique<SubBlockDetector>(nsub, /*dirty_handling=*/true,
                                                /*waw_line=*/true);
    case DetectorKind::kSubBlockNoDirty:
      return std::make_unique<SubBlockDetector>(nsub,
                                                /*dirty_handling=*/false);
    case DetectorKind::kPerfect:
      return std::make_unique<PerfectDetector>();
    case DetectorKind::kWarOnly:
      return std::make_unique<WarOnlyDetector>();
  }
  throw std::invalid_argument("make_detector: unknown kind");
}

}  // namespace asfsim
