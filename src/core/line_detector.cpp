#include "core/line_detector.hpp"

namespace asfsim {

ProbeCheck LineDetector::check_probe(const SpecState& victim, ByteMask probe,
                                     bool invalidating) const {
  (void)probe;  // line granularity: the probe's bytes are irrelevant
  ProbeCheck pc;
  const bool sr = victim.read_bytes != 0;
  const bool sw = victim.write_bytes != 0;
  pc.conflict = invalidating ? (sr || sw) : sw;
  return pc;
}

}  // namespace asfsim
