#include "core/waronly_detector.hpp"

namespace asfsim {

ProbeCheck WarOnlyDetector::check_probe(const SpecState& victim,
                                        ByteMask probe,
                                        bool invalidating) const {
  ProbeCheck pc;
  if (!invalidating) {
    // RAW stays line-granular: any speculative write conflicts.
    pc.conflict = victim.write_bytes != 0;
    return pc;
  }
  if (victim.write_bytes != 0) {
    pc.conflict = true;  // WAW stays line-granular
  } else if ((probe & victim.read_bytes) != 0) {
    pc.conflict = true;  // true WAR: value validation would fail
  } else if (victim.read_bytes != 0) {
    pc.retain_spec_info = true;  // false WAR speculated away; keep read set
  }
  return pc;
}

}  // namespace asfsim
