// The paper's contribution: speculative sub-blocking state (paper §IV).
//
// Each line is split into `nsub` sub-blocks, each carrying (SPEC, WR) bits
// (Table I). Probe checks run at sub-block granularity:
//   * non-invalidating (load) probe: conflicts only with S-WR sub-blocks it
//     touches; otherwise the set of S-WR sub-blocks is piggy-backed on the
//     response so the requester can mark them Dirty (§IV-D1);
//   * invalidating (store) probe: conflicts with any touched S-RD/S-WR
//     sub-block, and with the line as a whole if *any* sub-block is S-WR —
//     WAW false conflicts are ~0% so they are not worth decoupling (§IV-D2);
//   * on a conflict-free invalidation, speculative info is retained inside
//     the invalidated line so later true conflicts are still caught (§IV-B).
//
// A transactional load that hits a Dirty sub-block locally is treated as an
// L1 miss and re-probes, which either aborts the still-running writer or
// refetches committed data (§IV-C).
//
// The kSubBlockNoDirty variant disables the piggy-back/Dirty mechanism; it
// exists to demonstrate the Fig. 6 atomicity problem in tests.
#pragma once

#include "core/detector.hpp"

namespace asfsim {

class SubBlockDetector : public ConflictDetector {
 public:
  SubBlockDetector(std::uint32_t nsub, bool dirty_handling = true,
                   bool waw_line = false);

  [[nodiscard]] DetectorKind kind() const override {
    if (!dirty_handling_) return DetectorKind::kSubBlockNoDirty;
    return waw_line_ ? DetectorKind::kSubBlockWawLine
                     : DetectorKind::kSubBlock;
  }
  [[nodiscard]] const char* name() const override { return name_; }
  [[nodiscard]] std::uint32_t nsub() const override { return nsub_; }
  [[nodiscard]] bool dirty_handling() const override {
    return dirty_handling_;
  }

  [[nodiscard]] ProbeCheck check_probe(const SpecState& victim, ByteMask probe,
                                       bool invalidating) const override;
  [[nodiscard]] bool dirty_hit(SubBlockMask dirty,
                               ByteMask access) const override;

 private:
  std::uint32_t nsub_;
  bool dirty_handling_;
  bool waw_line_;
  char name_[32];
};

}  // namespace asfsim
