// The ideal system: conflict detection at exact byte granularity, i.e. zero
// false conflicts by construction. This is the paper's "perfect system"
// performance upper bound (§V-A). It is realized as a centralized oracle:
// every access is checked for byte overlap against all other cores'
// speculative states, independent of cache residency, so coherence probes
// themselves never signal conflicts.
#pragma once

#include "core/detector.hpp"

namespace asfsim {

class PerfectDetector final : public ConflictDetector {
 public:
  [[nodiscard]] DetectorKind kind() const override {
    return DetectorKind::kPerfect;
  }
  [[nodiscard]] const char* name() const override { return "perfect"; }
  [[nodiscard]] bool global_oracle() const override { return true; }

  [[nodiscard]] ProbeCheck check_probe(const SpecState& victim, ByteMask probe,
                                       bool invalidating) const override {
    (void)victim;
    (void)probe;
    (void)invalidating;
    return {};  // conflicts are found by the oracle, never by probes
  }
};

}  // namespace asfsim
