#include "harness/experiment.hpp"

#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>

#include "guest/machine.hpp"
#include "trace/jsonl.hpp"
#include "trace/perfetto_sink.hpp"

namespace asfsim {

namespace {

ExperimentResult run_machine(const std::string& workload,
                             const ExperimentConfig& cfg,
                             const TraceOptions& trace) {
  SimConfig sim = cfg.sim;
  sim.seed = cfg.params.seed;
  if (cfg.params.threads > sim.ncores) {
    throw std::invalid_argument("run_experiment: threads > ncores");
  }

  Machine m(sim, cfg.detector, cfg.nsub);
  m.stats().record_timeseries = cfg.timeseries;
  if (cfg.wall_limit_s > 0.0) m.kernel().set_wall_limit(cfg.wall_limit_s);

  std::ofstream os;
  std::unique_ptr<trace::TraceSink> sink;
  if (trace.enabled()) {
    const std::filesystem::path path(trace.path);
    if (path.has_parent_path()) {
      std::filesystem::create_directories(path.parent_path());
    }
    os.open(path, std::ios::binary | std::ios::trunc);
    if (!os) {
      throw std::runtime_error("run_experiment: cannot open trace file " +
                               trace.path);
    }
    if (trace.format == TraceFormat::kPerfetto) {
      sink = std::make_unique<trace::PerfettoSink>(os);
    } else {
      sink = std::make_unique<trace::JsonlSink>(os);
    }
    m.add_trace_sink(sink.get());
  }

  auto wl = make_workload(workload);
  wl->setup(m, cfg.params);
  m.run(cfg.max_cycles);

  ExperimentResult r;
  r.workload = workload;
  r.detector = m.detector().name();
  r.validation_error = wl->validate(m);
  r.stats = m.stats();
  if (const FaultPlan* plan = m.fault_plan()) {
    r.fault_counters = plan->counters();
    r.has_fault_counters = true;
  }
  return r;
}

}  // namespace

void apply_robustness_options(const CliOptions& opts, ExperimentConfig& cfg) {
  FaultConfig& f = cfg.sim.fault;
  f.spurious_abort_rate = opts.fault_spurious;
  f.commit_abort_rate = opts.fault_commit;
  f.evict_rate = opts.fault_evict;
  f.probe_jitter = opts.fault_probe_jitter;
  f.sched_jitter = opts.fault_sched_jitter;
  if (!parse_mutation(opts.mutate, f.mutation)) {
    // parse_cli already rejected unknown names; belt and braces.
    throw std::invalid_argument("unknown --mutate " + opts.mutate);
  }
  cfg.sim.watchdog_cycles = opts.watchdog;
  cfg.wall_limit_s = opts.job_timeout;
  cfg.params.oltp = opts.oltp;
  cfg.sim.provenance = opts.prov;
  cfg.sim.cm = opts.cm;
}

const char* trace_file_extension(TraceFormat fmt) {
  switch (fmt) {
    case TraceFormat::kJsonl:
      return ".jsonl";
    case TraceFormat::kPerfetto:
      return ".perfetto.json";
    case TraceFormat::kNone:
      break;
  }
  return "";
}

ExperimentResult run_experiment(const std::string& workload,
                                const ExperimentConfig& cfg) {
  return run_machine(workload, cfg, TraceOptions{});
}

ExperimentResult run_experiment(const std::string& workload,
                                const ExperimentConfig& cfg,
                                const TraceOptions& trace) {
  return run_machine(workload, cfg, trace);
}

}  // namespace asfsim
