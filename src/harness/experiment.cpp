#include "harness/experiment.hpp"

#include <stdexcept>

#include "guest/machine.hpp"

namespace asfsim {

ExperimentResult run_experiment(const std::string& workload,
                                const ExperimentConfig& cfg) {
  SimConfig sim = cfg.sim;
  sim.seed = cfg.params.seed;
  if (cfg.params.threads > sim.ncores) {
    throw std::invalid_argument("run_experiment: threads > ncores");
  }

  Machine m(sim, cfg.detector, cfg.nsub);
  m.stats().record_timeseries = cfg.timeseries;

  auto wl = make_workload(workload);
  wl->setup(m, cfg.params);
  m.run(cfg.max_cycles);

  ExperimentResult r;
  r.workload = workload;
  r.detector = m.detector().name();
  r.validation_error = wl->validate(m);
  r.stats = m.stats();
  return r;
}

}  // namespace asfsim
