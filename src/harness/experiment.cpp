#include "harness/experiment.hpp"

#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>

#include "guest/machine.hpp"
#include "trace/jsonl.hpp"
#include "trace/perfetto_sink.hpp"

namespace asfsim {

namespace {

ExperimentResult run_machine(const std::string& workload,
                             const ExperimentConfig& cfg,
                             const TraceOptions& trace) {
  SimConfig sim = cfg.sim;
  sim.seed = cfg.params.seed;
  if (cfg.params.threads > sim.ncores) {
    throw std::invalid_argument("run_experiment: threads > ncores");
  }

  Machine m(sim, cfg.detector, cfg.nsub);
  m.stats().record_timeseries = cfg.timeseries;

  std::ofstream os;
  std::unique_ptr<trace::TraceSink> sink;
  if (trace.enabled()) {
    const std::filesystem::path path(trace.path);
    if (path.has_parent_path()) {
      std::filesystem::create_directories(path.parent_path());
    }
    os.open(path, std::ios::binary | std::ios::trunc);
    if (!os) {
      throw std::runtime_error("run_experiment: cannot open trace file " +
                               trace.path);
    }
    if (trace.format == TraceFormat::kPerfetto) {
      sink = std::make_unique<trace::PerfettoSink>(os);
    } else {
      sink = std::make_unique<trace::JsonlSink>(os);
    }
    m.add_trace_sink(sink.get());
  }

  auto wl = make_workload(workload);
  wl->setup(m, cfg.params);
  m.run(cfg.max_cycles);

  ExperimentResult r;
  r.workload = workload;
  r.detector = m.detector().name();
  r.validation_error = wl->validate(m);
  r.stats = m.stats();
  return r;
}

}  // namespace

const char* trace_file_extension(TraceFormat fmt) {
  switch (fmt) {
    case TraceFormat::kJsonl:
      return ".jsonl";
    case TraceFormat::kPerfetto:
      return ".perfetto.json";
    case TraceFormat::kNone:
      break;
  }
  return "";
}

ExperimentResult run_experiment(const std::string& workload,
                                const ExperimentConfig& cfg) {
  return run_machine(workload, cfg, TraceOptions{});
}

ExperimentResult run_experiment(const std::string& workload,
                                const ExperimentConfig& cfg,
                                const TraceOptions& trace) {
  return run_machine(workload, cfg, trace);
}

}  // namespace asfsim
