// Per-figure/table reproduction logic (one bench binary per entry point).
//
// Every function prints the paper's rows/series to `os`, optionally mirrors
// them as CSV into opts.csv_dir, and returns 0 on success (non-zero when a
// sanity expectation fails badly enough that the figure is meaningless,
// e.g. a workload failed validation).
#pragma once

#include <iostream>

#include "harness/args.hpp"

namespace asfsim::figures {

// ---- tables ----------------------------------------------------------------
int table1_states(const CliOptions& opts, std::ostream& os);       // Table I + Fig 6/7
int table2_config(const CliOptions& opts, std::ostream& os);       // Table II
int table3_benchmarks(const CliOptions& opts, std::ostream& os);   // Table III

// ---- characterization figures ----------------------------------------------
int fig1_false_conflict_rate(const CliOptions& opts, std::ostream& os);
int fig2_conflict_type_breakdown(const CliOptions& opts, std::ostream& os);
int fig3_time_distribution(const CliOptions& opts, std::ostream& os);
int fig4_line_distribution(const CliOptions& opts, std::ostream& os);
int fig5_intra_line_access(const CliOptions& opts, std::ostream& os);

// ---- evaluation figures ------------------------------------------------------
int fig8_subblock_sensitivity(const CliOptions& opts, std::ostream& os);
int fig9_overall_conflict_reduction(const CliOptions& opts, std::ostream& os);
int fig10_execution_time(const CliOptions& opts, std::ostream& os);
/// OLTP extension: commits/simulated-second and latency percentiles over a
/// zipf-theta x core-count x detector sweep (docs/workloads.md).
int fig11_throughput_vs_skew(const CliOptions& opts, std::ostream& os);
/// Provenance extension: share of false conflicts by allocation site per
/// detector, over a contended OLTP run plus two STAMP-style programs
/// (docs/observability.md, "Conflict provenance").
int fig_conflict_attribution(const CliOptions& opts, std::ostream& os);
/// Contention-management extension: execution time and fairness
/// (abort rate, fallback runs, max consecutive aborts, wasted-cycle Gini)
/// over a policy x detector x core-count grid on the livelock storm,
/// a contended OLTP mix and intruder (docs/contention.md).
int fig10_policy_sweep(const CliOptions& opts, std::ostream& os);

// ---- ablations / overhead (paper §II and §IV-E) ------------------------------
int ablation_waronly(const CliOptions& opts, std::ostream& os);
int ablation_ats(const CliOptions& opts, std::ostream& os);
int ablation_cores(const CliOptions& opts, std::ostream& os);
int ablation_variance(const CliOptions& opts, std::ostream& os);
int ablation_waw_rule(const CliOptions& opts, std::ostream& os);
int ablation_overhead(const CliOptions& opts, std::ostream& os);
int ablation_capacity(const CliOptions& opts, std::ostream& os);
int ablation_l1_geometry(const CliOptions& opts, std::ostream& os);
int ablation_scale(const CliOptions& opts, std::ostream& os);
int ablation_timing(const CliOptions& opts, std::ostream& os);
/// Commit rate and wasted work vs injected spurious-abort rate, per
/// detector (docs/robustness.md fault-injection knobs).
int ablation_fault_sweep(const CliOptions& opts, std::ostream& os);

}  // namespace asfsim::figures
