#include "harness/figures.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <map>
#include <numeric>
#include <tuple>
#include <vector>

#include "guest/machine.hpp"
#include "harness/experiment.hpp"
#include "prov/collector.hpp"
#include "runner/runner.hpp"
#include "stats/report.hpp"
#include "stats/serialize.hpp"
#include "workloads/workload.hpp"

namespace asfsim::figures {

namespace {

using TextTable = asfsim::TextTable;
using runner::Runner;

ExperimentConfig base_config(const CliOptions& opts) {
  ExperimentConfig cfg;
  cfg.params.threads = opts.threads;
  cfg.params.seed = opts.seed;
  cfg.params.scale = opts.scale;
  cfg.sim.ncores = opts.threads;
  apply_robustness_options(opts, cfg);
  return cfg;
}

runner::RunnerOptions runner_opts(const CliOptions& opts) {
  runner::RunnerOptions o;
  o.jobs = opts.jobs;
  o.use_cache = !opts.no_cache;
  o.trace_dir = opts.trace_dir;
  o.trace_format = opts.trace_format == "perfetto" ? TraceFormat::kPerfetto
                                                   : TraceFormat::kJsonl;
  o.job_wall_limit_s = opts.job_timeout;
  return o;
}

/// Fetch a (typically pre-submitted) run; complain — but keep going — if
/// the workload failed to validate. Every figure below first submits its
/// whole job set so the pool can execute across the print loop's blocking
/// get()s; results come back in submission-independent but byte-identical
/// form (the simulator is deterministic per job).
ExperimentResult checked_run(Runner& runner, const std::string& name,
                             const ExperimentConfig& cfg, std::ostream& os,
                             int* status) {
  ExperimentResult r = runner.get(name, cfg);
  if (!r.ok()) {
    os << "!! " << name << " [" << r.detector
       << "] failed validation: " << r.validation_error << "\n";
    *status = 1;
  }
  return r;
}

double reduction(std::uint64_t base, std::uint64_t now) {
  if (base == 0) return 0.0;
  return 1.0 - static_cast<double>(now) / static_cast<double>(base);
}

}  // namespace

// ---------------------------------------------------------------------------
// Table I — sub-block state encoding, plus a scripted Fig 6/7 walkthrough.
// ---------------------------------------------------------------------------

namespace {

Task<void> fig7_writer(GuestCtx& c, Addr line, bool* hold) {
  co_await c.run_tx([&]() -> Task<void> {
    co_await c.store_u64(line + 0, 0xAAAA);  // S-WR on sub-block 0
    *hold = true;
    co_await c.work(4000);  // stay speculative while the reader probes
  });
}

Task<void> fig7_reader(GuestCtx& c, Addr line, MemorySystem* mem,
                       std::ostream* os, bool* hold) {
  while (!*hold) co_await c.wait(50);
  co_await c.run_tx([&]() -> Task<void> {
    // Load a different sub-block: no true conflict; the response piggy-backs
    // the writer's S-WR mask and this copy's sub-block 0 becomes Dirty.
    const std::uint64_t v = co_await c.load_u64(line + 32);
    (void)v;
    *os << "  reader loaded sub-block 2; its sub-block 0 state: "
        << to_string(mem->subblock_state(c.core(), line_of(line), 0)) << "\n";
    *os << "  reader sub-block 2 state: "
        << to_string(mem->subblock_state(c.core(), line_of(line), 2)) << "\n";
    // Touch the Dirty sub-block: treated as a miss, re-probes, and aborts
    // the still-running writer (the Fig 6(a) RAW is NOT missed).
    const std::uint64_t w = co_await c.load_u64(line + 0);
    (void)w;
    *os << "  reader then loaded Dirty sub-block 0 (forced re-probe)\n";
  });
}

}  // namespace

int table1_states(const CliOptions& opts, std::ostream& os) {
  (void)opts;
  os << "Paper Table I: sub-block state encoding\n";
  TextTable t({"SPEC", "WR", "State"});
  for (const auto s :
       {SubBlockState::kNonSpec, SubBlockState::kDirty,
        SubBlockState::kSpecRead, SubBlockState::kSpecWrite}) {
    t.add_row({std::to_string(spec_bit(s) ? 1 : 0),
               std::to_string(wr_bit(s) ? 1 : 0), to_string(s)});
  }
  t.print(os);

  os << "\nFig 7 walkthrough (2 cores, 4 sub-blocks, dirty-state handling):\n";
  SimConfig sim;
  sim.ncores = 2;
  Machine m(sim, DetectorKind::kSubBlock, 4);
  const Addr line = m.galloc().alloc_lines(1);
  bool hold = false;
  m.spawn(0, fig7_writer(m.ctx(0), line, &hold));
  m.spawn(1, fig7_reader(m.ctx(1), line, &m.mem(), &os, &hold));
  m.run();
  os << "  conflicts detected: " << m.stats().conflicts_total
     << " (RAW caught via the Dirty re-probe: "
     << m.stats().dirty_refetches << " dirty refetch)\n";
  os << "  piggy-back messages sent: " << m.stats().piggyback_messages << "\n";
  return (m.stats().dirty_refetches >= 1 && m.stats().conflicts_total >= 1)
             ? 0
             : 1;
}

// ---------------------------------------------------------------------------
// Table II — simulator configuration + latency verification probes.
// ---------------------------------------------------------------------------

namespace {

Task<void> latency_probe(GuestCtx& c, Addr a, Cycle* first, Cycle* second) {
  Cycle t0 = c.now();
  co_await c.load_u64(a);
  *first = c.now() - t0;
  t0 = c.now();
  co_await c.load_u64(a);
  *second = c.now() - t0;
}

Task<void> c2c_writer(GuestCtx& c, Addr a, bool* ready) {
  co_await c.store_u64(a, 7);
  *ready = true;
}

Task<void> c2c_reader(GuestCtx& c, Addr a, bool* ready, Cycle* lat) {
  while (!*ready) co_await c.wait(20);
  const Cycle t0 = c.now();
  co_await c.load_u64(a);
  *lat = c.now() - t0;
}

}  // namespace

int table2_config(const CliOptions& opts, std::ostream& os) {
  (void)opts;
  SimConfig cfg;
  os << "Paper Table II: simulation configuration\n";
  TextTable t({"Feature", "Description"});
  t.add_row({"Processors", std::to_string(cfg.ncores) +
                               " AMD-Opteron-like cores (in-order timing "
                               "model, DESIGN.md §2)"});
  t.add_row({"L1 DCache", std::to_string(cfg.l1.size_bytes / 1024) + "KB, " +
                              std::to_string(cfg.l1.line_bytes) + "B lines, " +
                              std::to_string(cfg.l1.ways) + "-way, " +
                              std::to_string(cfg.l1.latency) + " cycles"});
  t.add_row({"Private L2", std::to_string(cfg.l2.size_bytes / 1024) + "KB, " +
                               std::to_string(cfg.l2.ways) + "-way, " +
                               std::to_string(cfg.l2.latency) + " cycles"});
  t.add_row({"Private L3",
             std::to_string(cfg.l3.size_bytes / (1024 * 1024)) + "MB, " +
                 std::to_string(cfg.l3.ways) + "-way, " +
                 std::to_string(cfg.l3.latency) + " cycles"});
  t.add_row({"Main memory", std::to_string(cfg.mem_latency) + " cycles"});
  t.add_row({"Cache-to-cache", std::to_string(cfg.cache2cache_latency) +
                                   " cycles (HyperTransport-like)"});
  t.print(os);

  // Verify the headline load-to-use latencies with targeted probes.
  int status = 0;
  {
    SimConfig sim;
    sim.ncores = 1;
    Machine m(sim, DetectorKind::kBaseline);
    const Addr a = m.galloc().alloc_lines(1);
    Cycle first = 0, second = 0;
    m.spawn(0, latency_probe(m.ctx(0), a, &first, &second));
    m.run();
    os << "\nprobe: cold load " << first << " cycles (memory, expect "
       << sim.mem_latency << "), warm load " << second
       << " cycles (L1, expect " << sim.l1.latency << ")\n";
    if (first != sim.mem_latency || second != sim.l1.latency) status = 1;
  }
  {
    SimConfig sim;
    sim.ncores = 2;
    Machine m(sim, DetectorKind::kBaseline);
    const Addr a = m.galloc().alloc_lines(1);
    bool ready = false;
    Cycle lat = 0;
    m.spawn(0, c2c_writer(m.ctx(0), a, &ready));
    m.spawn(1, c2c_reader(m.ctx(1), a, &ready, &lat));
    m.run();
    os << "probe: remote-L1 load " << lat << " cycles (expect "
       << sim.cache2cache_latency << ")\n";
    if (lat != sim.cache2cache_latency) status = 1;
  }
  return status;
}

// ---------------------------------------------------------------------------
// Table III — benchmark registry.
// ---------------------------------------------------------------------------

int table3_benchmarks(const CliOptions& opts, std::ostream& os) {
  (void)opts;
  os << "Paper Table III: benchmark description\n";
  TextTable t({"Benchmark", "Description"});
  for (const auto& name : paper_benchmarks()) {
    t.add_row({name, make_workload(name)->description()});
  }
  t.print(os);
  return 0;
}

// ---------------------------------------------------------------------------
// Fig 1 — false-conflict rate per benchmark (baseline ASF).
// ---------------------------------------------------------------------------

int fig1_false_conflict_rate(const CliOptions& opts, std::ostream& os) {
  int status = 0;
  os << "Fig 1: false conflict rate of STAMP and RMS-TM benchmarks "
        "(baseline ASF)\n";
  CsvWriter csv(opts.csv_dir, "fig1_false_conflict_rate");
  csv.row({"benchmark", "conflicts", "false_conflicts", "false_rate"});
  TextTable t({"Benchmark", "Conflicts", "False", "False rate"});
  double sum = 0;
  const ExperimentConfig cfg = base_config(opts);
  Runner runner(runner_opts(opts));
  for (const auto& name : paper_benchmarks()) runner.submit(name, cfg);
  for (const auto& name : paper_benchmarks()) {
    const auto r = checked_run(runner, name, cfg, os, &status);
    const double rate = r.stats.false_conflict_rate();
    sum += rate;
    t.add_row({name, std::to_string(r.stats.conflicts_total),
               std::to_string(r.stats.conflicts_false), TextTable::pct(rate)});
    csv.row({name, std::to_string(r.stats.conflicts_total),
             std::to_string(r.stats.conflicts_false),
             TextTable::num(rate, 4)});
  }
  t.print(os);
  os << "average false conflict rate: "
     << TextTable::pct(sum / paper_benchmarks().size())
     << "   (paper: ~46%, ssca2 & apriori >90%, intruder lowest)\n";
  return status;
}

// ---------------------------------------------------------------------------
// Fig 2 — WAR/RAW/WAW breakdown of false conflicts.
// ---------------------------------------------------------------------------

int fig2_conflict_type_breakdown(const CliOptions& opts, std::ostream& os) {
  int status = 0;
  os << "Fig 2: breakdown of false conflict types (baseline ASF)\n";
  CsvWriter csv(opts.csv_dir, "fig2_conflict_type_breakdown");
  csv.row({"benchmark", "war", "raw", "waw"});
  TextTable t({"Benchmark", "WAR", "RAW", "WAW", "WAR%", "RAW%", "WAW%"});
  const ExperimentConfig cfg = base_config(opts);
  Runner runner(runner_opts(opts));
  for (const auto& name : paper_benchmarks()) runner.submit(name, cfg);
  for (const auto& name : paper_benchmarks()) {
    const auto r = checked_run(runner, name, cfg, os, &status);
    const auto& f = r.stats.false_by_type;
    const double total =
        std::max<std::uint64_t>(1, f[0] + f[1] + f[2]);
    t.add_row({name, std::to_string(f[0]), std::to_string(f[1]),
               std::to_string(f[2]), TextTable::pct(f[0] / total),
               TextTable::pct(f[1] / total), TextTable::pct(f[2] / total)});
    csv.row({name, std::to_string(f[0]), std::to_string(f[1]),
             std::to_string(f[2])});
  }
  t.print(os);
  os << "(paper: vacation & apriori WAR-dominant; kmeans, labyrinth, genome "
        "RAW-dominant; WAW ~0%)\n";
  return status;
}

// ---------------------------------------------------------------------------
// Fig 3 — cumulative false conflicts / launched transactions over time.
// ---------------------------------------------------------------------------

int fig3_time_distribution(const CliOptions& opts, std::ostream& os) {
  int status = 0;
  os << "Fig 3: cumulative transactions and false conflicts over execution "
        "(baseline ASF; 20 time buckets)\n";
  CsvWriter csv(opts.csv_dir, "fig3_time_distribution");
  csv.row({"benchmark", "bucket", "tx_started_cum", "false_conflicts_cum"});
  ExperimentConfig cfg = base_config(opts);
  cfg.timeseries = true;
  Runner runner(runner_opts(opts));
  for (const std::string name : {"vacation", "genome", "kmeans", "intruder"}) {
    runner.submit(name, cfg);
  }
  for (const std::string name : {"vacation", "genome", "kmeans", "intruder"}) {
    const auto r = checked_run(runner, name, cfg, os, &status);
    const Cycle end = std::max<Cycle>(1, r.stats.total_cycles);
    constexpr int kBuckets = 20;
    std::vector<std::uint64_t> tx(kBuckets, 0), fc(kBuckets, 0);
    for (const Cycle c : r.stats.tx_start_cycles) {
      ++tx[std::min<std::uint64_t>(kBuckets - 1, c * kBuckets / end)];
    }
    for (const Cycle c : r.stats.false_conflict_cycles) {
      ++fc[std::min<std::uint64_t>(kBuckets - 1, c * kBuckets / end)];
    }
    os << "\n" << name << " (total cycles " << end << "):\n";
    TextTable t({"t", "tx started (cum)", "false conflicts (cum)"});
    std::uint64_t txc = 0, fcc = 0;
    for (int b = 0; b < kBuckets; ++b) {
      txc += tx[b];
      fcc += fc[b];
      t.add_row({TextTable::num((b + 1) * 100.0 / kBuckets, 0) + "%",
                 std::to_string(txc), std::to_string(fcc)});
      csv.row({name, std::to_string(b), std::to_string(txc),
               std::to_string(fcc)});
    }
    t.print(os);
  }
  os << "\n(paper: launched-transaction curves near-linear; kmeans/vacation "
        "false conflicts track them, genome bursty)\n";
  return status;
}

// ---------------------------------------------------------------------------
// Fig 4 — false conflicts by cache-line index.
// ---------------------------------------------------------------------------

int fig4_line_distribution(const CliOptions& opts, std::ostream& os) {
  int status = 0;
  os << "Fig 4: false conflict count by physical cache line (baseline ASF; "
        "32 address bins + concentration)\n";
  CsvWriter csv(opts.csv_dir, "fig4_line_distribution");
  csv.row({"benchmark", "bin", "false_conflicts"});
  const ExperimentConfig cfg = base_config(opts);
  Runner runner(runner_opts(opts));
  for (const std::string name : {"vacation", "genome", "kmeans", "intruder"}) {
    runner.submit(name, cfg);
  }
  for (const std::string name : {"vacation", "genome", "kmeans", "intruder"}) {
    const auto r = checked_run(runner, name, cfg, os, &status);
    const auto& by_line = r.stats.false_by_line;
    if (by_line.empty()) {
      os << "\n" << name << ": no false conflicts\n";
      continue;
    }
    Addr lo = ~Addr{0}, hi = 0;
    for (const auto& [line, n] : by_line) {
      lo = std::min(lo, line);
      hi = std::max(hi, line);
    }
    constexpr int kBins = 32;
    std::vector<std::uint64_t> bins(kBins, 0);
    const Addr span = std::max<Addr>(1, hi - lo + kLineBytes);
    for (const auto& [line, n] : by_line) {
      bins[std::min<std::uint64_t>(kBins - 1, (line - lo) * kBins / span)] += n;
    }
    // Concentration: share of false conflicts on the 5 hottest lines.
    std::vector<std::uint64_t> counts;
    std::uint64_t total = 0;
    for (const auto& [line, n] : by_line) {
      counts.push_back(n);
      total += n;
    }
    std::sort(counts.rbegin(), counts.rend());
    std::uint64_t top5 = 0;
    for (std::size_t i = 0; i < counts.size() && i < 5; ++i) top5 += counts[i];

    os << "\n" << name << ": " << by_line.size() << " distinct lines, top-5 "
       << "lines hold " << TextTable::pct(double(top5) / double(total)) << "\n";
    os << "  bins:";
    for (int b = 0; b < kBins; ++b) {
      os << " " << bins[b];
      csv.row({name, std::to_string(b), std::to_string(bins[b])});
    }
    os << "\n";
  }
  os << "\n(paper: vacation/intruder near-uniform with a few peaks; kmeans "
        "concentrated on a few lines)\n";
  return status;
}

// ---------------------------------------------------------------------------
// Fig 5 — number of accesses by location inside a cache line.
// ---------------------------------------------------------------------------

int fig5_intra_line_access(const CliOptions& opts, std::ostream& os) {
  int status = 0;
  os << "Fig 5: transactional accesses by start offset within the cache "
        "line (baseline ASF)\n";
  CsvWriter csv(opts.csv_dir, "fig5_intra_line_access");
  csv.row({"benchmark", "offset", "accesses"});
  const ExperimentConfig cfg = base_config(opts);
  Runner runner(runner_opts(opts));
  for (const std::string name : {"vacation", "genome", "kmeans", "intruder"}) {
    runner.submit(name, cfg);
  }
  for (const std::string name : {"vacation", "genome", "kmeans", "intruder"}) {
    const auto r = checked_run(runner, name, cfg, os, &status);
    const auto& h = r.stats.tx_access_by_offset;
    // Infer the dominant access granularity: GCD of offsets carrying at
    // least 2% of the peak count.
    std::uint64_t peak = 1;
    for (const auto v : h) peak = std::max(peak, v);
    std::uint64_t stride = 0;
    for (std::uint32_t off = 1; off < 64; ++off) {
      if (h[off] * 50 >= peak) stride = std::gcd(stride, std::uint64_t{off});
    }
    if (stride == 0) stride = 64;
    os << "\n" << name << " (dominant granularity: " << stride << " bytes):\n ";
    for (std::uint32_t off = 0; off < 64; ++off) {
      os << " " << h[off];
      csv.row({name, std::to_string(off), std::to_string(h[off])});
    }
    os << "\n";
  }
  os << "\n(paper: accesses scattered at 8-byte granularity for vacation/"
        "genome/intruder, 4-byte for kmeans)\n";
  return status;
}

// ---------------------------------------------------------------------------
// Fig 8 — false-conflict reduction rate vs sub-block count.
// ---------------------------------------------------------------------------

int fig8_subblock_sensitivity(const CliOptions& opts, std::ostream& os) {
  int status = 0;
  os << "Fig 8: false conflict reduction rate with 2/4/8/16 sub-blocks\n"
        "(measured = actual re-runs with the sub-blocking detector;\n"
        " analytic = baseline false conflicts whose access masks no longer "
        "overlap when quantized)\n\n";
  CsvWriter csv(opts.csv_dir, "fig8_subblock_sensitivity");
  csv.row({"benchmark", "nsub", "measured_reduction", "analytic_reduction"});
  TextTable t({"Benchmark", "meas2", "meas4", "meas8", "meas16", "ana2",
               "ana4", "ana8", "ana16"});
  const ExperimentConfig cfg = base_config(opts);
  double avg4 = 0;
  Runner runner(runner_opts(opts));
  for (const auto& name : paper_benchmarks()) {
    runner.submit(name, cfg.with(DetectorKind::kBaseline));
    for (const std::uint32_t n : {2u, 4u, 8u, 16u}) {
      runner.submit(name, cfg.with(DetectorKind::kSubBlock, n));
    }
  }
  for (const auto& name : paper_benchmarks()) {
    const auto base = checked_run(runner, name,
                                  cfg.with(DetectorKind::kBaseline), os,
                                  &status);
    std::vector<std::string> row{name};
    std::vector<double> meas, ana;
    for (const std::uint32_t n : {2u, 4u, 8u, 16u}) {
      const auto r = checked_run(runner, name,
                                 cfg.with(DetectorKind::kSubBlock, n), os,
                                 &status);
      meas.push_back(
          reduction(base.stats.conflicts_false, r.stats.conflicts_false));
    }
    for (const std::uint32_t i : {1u, 2u, 3u, 4u}) {
      ana.push_back(reduction(base.stats.conflicts_false,
                              base.stats.false_surviving_at[i]));
    }
    avg4 += meas[1];
    for (const double v : meas) row.push_back(TextTable::pct(v));
    for (const double v : ana) row.push_back(TextTable::pct(v));
    t.add_row(row);
    for (std::size_t i = 0; i < 4; ++i) {
      csv.row({name, std::to_string(2u << i), TextTable::num(meas[i], 4),
               TextTable::num(ana[i], 4)});
    }
  }
  t.print(os);
  os << "average measured reduction at 4 sub-blocks: "
     << TextTable::pct(avg4 / paper_benchmarks().size())
     << "   (paper headline: 56.4%)\n";
  os << "(paper: 16 sub-blocks eliminate all false conflicts; 8 near-100% "
        "except kmeans; utilitymine low at 4)\n";
  return status;
}

// ---------------------------------------------------------------------------
// Fig 9 — overall conflict reduction: sub-block(4) vs perfect.
// ---------------------------------------------------------------------------

int fig9_overall_conflict_reduction(const CliOptions& opts, std::ostream& os) {
  int status = 0;
  os << "Fig 9: percentage of overall (true+false) conflict reduction\n";
  CsvWriter csv(opts.csv_dir, "fig9_overall_conflict_reduction");
  csv.row({"benchmark", "baseline_conflicts", "subblock4_reduction",
           "perfect_reduction"});
  TextTable t({"Benchmark", "Base confl", "SubBlock-4", "Perfect"});
  const ExperimentConfig cfg = base_config(opts);
  double sum4 = 0, sump = 0;
  Runner runner(runner_opts(opts));
  for (const auto& name : paper_benchmarks()) {
    runner.submit(name, cfg.with(DetectorKind::kBaseline));
    runner.submit(name, cfg.with(DetectorKind::kSubBlock, 4));
    runner.submit(name, cfg.with(DetectorKind::kPerfect));
  }
  for (const auto& name : paper_benchmarks()) {
    const auto base = checked_run(runner, name,
                                  cfg.with(DetectorKind::kBaseline), os,
                                  &status);
    const auto sb4 = checked_run(runner, name,
                                 cfg.with(DetectorKind::kSubBlock, 4), os,
                                 &status);
    const auto perf = checked_run(runner, name,
                                  cfg.with(DetectorKind::kPerfect), os,
                                  &status);
    const double r4 =
        reduction(base.stats.conflicts_total, sb4.stats.conflicts_total);
    const double rp =
        reduction(base.stats.conflicts_total, perf.stats.conflicts_total);
    sum4 += r4;
    sump += rp;
    t.add_row({name, std::to_string(base.stats.conflicts_total),
               TextTable::pct(r4), TextTable::pct(rp)});
    csv.row({name, std::to_string(base.stats.conflicts_total),
             TextTable::num(r4, 4), TextTable::num(rp, 4)});
  }
  t.print(os);
  const double n = paper_benchmarks().size();
  os << "average: sub-block(4) " << TextTable::pct(sum4 / n) << ", perfect "
     << TextTable::pct(sump / n);
  if (sump > 0) {
    os << "  -> sub-block achieves "
       << TextTable::pct((sum4 / n) / (sump / n), 0)
       << " of the perfect system's reduction";
  }
  os << "\n(paper: 31.3% overall conflict elimination on average, ~83% of "
        "perfect; outliers intruder, utilitymine, labyrinth)\n";
  return status;
}

// ---------------------------------------------------------------------------
// Fig 10 — execution-time improvement: sub-block(4) vs perfect.
// ---------------------------------------------------------------------------

int fig10_execution_time(const CliOptions& opts, std::ostream& os) {
  int status = 0;
  os << "Fig 10: improvement of overall execution time vs baseline ASF\n";
  CsvWriter csv(opts.csv_dir, "fig10_execution_time");
  csv.row({"benchmark", "baseline_cycles", "subblock4_improvement",
           "perfect_improvement", "baseline_avg_retries"});
  TextTable t(
      {"Benchmark", "Base cycles", "SubBlock-4", "Perfect", "Base retries"});
  const ExperimentConfig cfg = base_config(opts);
  Runner runner(runner_opts(opts));
  for (const auto& name : paper_benchmarks()) {
    runner.submit(name, cfg.with(DetectorKind::kBaseline));
    runner.submit(name, cfg.with(DetectorKind::kSubBlock, 4));
    runner.submit(name, cfg.with(DetectorKind::kPerfect));
  }
  for (const auto& name : paper_benchmarks()) {
    const auto base = checked_run(runner, name,
                                  cfg.with(DetectorKind::kBaseline), os,
                                  &status);
    const auto sb4 = checked_run(runner, name,
                                 cfg.with(DetectorKind::kSubBlock, 4), os,
                                 &status);
    const auto perf = checked_run(runner, name,
                                  cfg.with(DetectorKind::kPerfect), os,
                                  &status);
    const double t4 =
        reduction(base.stats.total_cycles, sb4.stats.total_cycles);
    const double tp =
        reduction(base.stats.total_cycles, perf.stats.total_cycles);
    t.add_row({name, std::to_string(base.stats.total_cycles),
               TextTable::pct(t4), TextTable::pct(tp),
               TextTable::num(base.stats.avg_retries())});
    csv.row({name, std::to_string(base.stats.total_cycles),
             TextTable::num(t4, 4), TextTable::num(tp, 4),
             TextTable::num(base.stats.avg_retries(), 3)});
  }
  t.print(os);
  os << "(paper: up to ~30% for high-retry programs (intruder, vacation, "
        "apriori); small for programs dominated by non-transactional "
        "time)\n";
  return status;
}

// ---------------------------------------------------------------------------
// Ablation — WAR-only prior work (SpMT / DPTM style), paper §II.
// ---------------------------------------------------------------------------

int ablation_waronly(const CliOptions& opts, std::ostream& os) {
  int status = 0;
  os << "Ablation (paper §II): WAR-only false-conflict reduction (SpMT/DPTM "
        "style) vs speculative sub-blocking\n";
  CsvWriter csv(opts.csv_dir, "ablation_waronly");
  csv.row({"benchmark", "baseline_false", "waronly_reduction",
           "subblock4_reduction"});
  TextTable t({"Benchmark", "Base false", "WAR-only", "SubBlock-4",
               "Dominant type"});
  const ExperimentConfig cfg = base_config(opts);
  Runner runner(runner_opts(opts));
  for (const auto& name : paper_benchmarks()) {
    runner.submit(name, cfg.with(DetectorKind::kBaseline));
    runner.submit(name, cfg.with(DetectorKind::kWarOnly));
    runner.submit(name, cfg.with(DetectorKind::kSubBlock, 4));
  }
  for (const auto& name : paper_benchmarks()) {
    const auto base = checked_run(runner, name,
                                  cfg.with(DetectorKind::kBaseline), os,
                                  &status);
    const auto war = checked_run(runner, name,
                                 cfg.with(DetectorKind::kWarOnly), os,
                                 &status);
    const auto sb4 = checked_run(runner, name,
                                 cfg.with(DetectorKind::kSubBlock, 4), os,
                                 &status);
    const auto& f = base.stats.false_by_type;
    const char* dom = f[1] > f[0] ? "RAW" : "WAR";
    t.add_row({name, std::to_string(base.stats.conflicts_false),
               TextTable::pct(reduction(base.stats.conflicts_false,
                                        war.stats.conflicts_false)),
               TextTable::pct(reduction(base.stats.conflicts_false,
                                        sb4.stats.conflicts_false)),
               dom});
    csv.row({name, std::to_string(base.stats.conflicts_false),
             TextTable::num(reduction(base.stats.conflicts_false,
                                      war.stats.conflicts_false), 4),
             TextTable::num(reduction(base.stats.conflicts_false,
                                      sb4.stats.conflicts_false), 4)});
  }
  t.print(os);
  os << "(paper's critique: WAR-only schemes cannot help RAW-dominant "
        "programs like kmeans, labyrinth, genome)\n";
  return status;
}

// ---------------------------------------------------------------------------
// Ablation — the §IV-D2 WAW-at-line rule vs sub-block-granular WAW.
// ---------------------------------------------------------------------------

int ablation_waw_rule(const CliOptions& opts, std::ostream& os) {
  int status = 0;
  os << "Ablation (paper §IV-D2): WAW handled at line granularity (the "
        "paper's in-cache-versioning constraint) vs at sub-block "
        "granularity (possible with overlay versioning; DESIGN.md §6.5)\n";
  CsvWriter csv(opts.csv_dir, "ablation_waw_rule");
  csv.row({"benchmark", "subblock4_conflicts", "wawline4_conflicts",
           "wawline_false_waw"});
  TextTable t({"Benchmark", "SubBlock-4 confl", "WAW-line-4 confl",
               "WAW-line false WAW"});
  const ExperimentConfig cfg = base_config(opts);
  Runner runner(runner_opts(opts));
  for (const auto& name : paper_benchmarks()) {
    runner.submit(name, cfg.with(DetectorKind::kSubBlock, 4));
    runner.submit(name, cfg.with(DetectorKind::kSubBlockWawLine, 4));
  }
  for (const auto& name : paper_benchmarks()) {
    const auto sb = checked_run(runner, name,
                                cfg.with(DetectorKind::kSubBlock, 4), os,
                                &status);
    const auto wl =
        checked_run(runner, name, cfg.with(DetectorKind::kSubBlockWawLine, 4),
                    os, &status);
    t.add_row({name, std::to_string(sb.stats.conflicts_total),
               std::to_string(wl.stats.conflicts_total),
               std::to_string(wl.stats.false_by_type[2])});
    csv.row({name, std::to_string(sb.stats.conflicts_total),
             std::to_string(wl.stats.conflicts_total),
             std::to_string(wl.stats.false_by_type[2])});
  }
  t.print(os);
  os << "(write-heavy programs pay heavily for the line-granular WAW rule; "
        "the paper tolerates it because its workloads' WAW false share was "
        "~0%)\n";
  return status;
}

// ---------------------------------------------------------------------------
// Ablation — adaptive transaction scheduling (extension; Yoo & Lee, cited
// in the paper's introduction) composed with sub-blocking.
// ---------------------------------------------------------------------------

int ablation_ats(const CliOptions& opts, std::ostream& os) {
  int status = 0;
  os << "Ablation (extension): adaptive transaction scheduling (ATS) "
        "composed with speculative sub-blocking\n";
  CsvWriter csv(opts.csv_dir, "ablation_ats");
  csv.row({"benchmark", "config", "conflicts", "cycles", "ats_dispatches"});
  TextTable t({"Benchmark", "Config", "Conflicts", "Cycles", "ATS dispatch"});
  ExperimentConfig cfg = base_config(opts);
  const auto ats_config = [&cfg](DetectorKind det, bool ats) {
    ExperimentConfig c = cfg.with(det, 4);
    c.sim.enable_ats = ats;
    c.sim.ats_threshold = 0.4;
    return c;
  };
  constexpr std::array<std::tuple<const char*, DetectorKind, bool>, 4>
      kAtsConfigs{std::tuple{"baseline", DetectorKind::kBaseline, false},
                  std::tuple{"baseline+ATS", DetectorKind::kBaseline, true},
                  std::tuple{"subblock4", DetectorKind::kSubBlock, false},
                  std::tuple{"subblock4+ATS", DetectorKind::kSubBlock, true}};
  Runner runner(runner_opts(opts));
  for (const std::string name : {"vacation", "kmeans", "scalparc", "counter"}) {
    for (const auto& [label, det, ats] : kAtsConfigs) {
      runner.submit(name, ats_config(det, ats));
    }
  }
  for (const std::string name : {"vacation", "kmeans", "scalparc", "counter"}) {
    for (const auto& [label, det, ats] : kAtsConfigs) {
      const auto r = checked_run(runner, name, ats_config(det, ats), os,
                                 &status);
      t.add_row({name, label, std::to_string(r.stats.conflicts_total),
                 std::to_string(r.stats.total_cycles),
                 std::to_string(r.stats.ats_serialized)});
      csv.row({name, label, std::to_string(r.stats.conflicts_total),
               std::to_string(r.stats.total_cycles),
               std::to_string(r.stats.ats_serialized)});
    }
  }
  t.print(os);
  os << "(scheduling attacks the same abort storms from the timing side; "
        "sub-blocking removes their false-sharing cause — they compose)\n";
  return status;
}

// ---------------------------------------------------------------------------
// Ablation — core-count sensitivity (the paper fixes 8 cores).
// ---------------------------------------------------------------------------

int ablation_cores(const CliOptions& opts, std::ostream& os) {
  int status = 0;
  os << "Ablation (extension): false-conflict rate vs core count "
        "(baseline ASF; the paper fixes 8 cores)\n";
  CsvWriter csv(opts.csv_dir, "ablation_cores");
  csv.row({"benchmark", "cores", "conflicts", "false_rate"});
  TextTable t({"Benchmark", "Cores", "Conflicts", "False rate"});
  const auto cores_config = [&opts](std::uint32_t n) {
    ExperimentConfig cfg = base_config(opts);
    cfg.sim.ncores = n;
    cfg.params.threads = n;
    return cfg;
  };
  Runner runner(runner_opts(opts));
  for (const std::string name : {"ssca2", "vacation", "kmeans"}) {
    for (const std::uint32_t n : {2u, 4u, 8u}) {
      runner.submit(name, cores_config(n));
    }
  }
  for (const std::string name : {"ssca2", "vacation", "kmeans"}) {
    for (const std::uint32_t n : {2u, 4u, 8u}) {
      const auto r = checked_run(runner, name, cores_config(n), os, &status);
      t.add_row({name, std::to_string(n),
                 std::to_string(r.stats.conflicts_total),
                 TextTable::pct(r.stats.false_conflict_rate())});
      csv.row({name, std::to_string(n),
               std::to_string(r.stats.conflicts_total),
               TextTable::num(r.stats.false_conflict_rate(), 4)});
    }
  }
  t.print(os);
  os << "(more cores -> more concurrent speculative state -> more false "
        "sharing opportunities)\n";
  return status;
}

// ---------------------------------------------------------------------------
// Ablation — seed variance (the paper flags labyrinth's tiny conflict
// counts as high-variance in Fig 9).
// ---------------------------------------------------------------------------

int ablation_variance(const CliOptions& opts, std::ostream& os) {
  int status = 0;
  constexpr int kSeeds = 8;
  os << "Ablation (extension): seed-to-seed variance of the Fig 9 metric "
        "(overall conflict reduction, sub-block 4 vs baseline), " << kSeeds
     << " seeds\n";
  CsvWriter csv(opts.csv_dir, "ablation_variance");
  csv.row({"benchmark", "mean_reduction", "stddev", "min", "max",
           "mean_base_conflicts"});
  TextTable t({"Benchmark", "Mean", "Stddev", "Min", "Max", "Base confl"});
  const auto seeded_config = [&opts](int seed) {
    ExperimentConfig cfg = base_config(opts);
    cfg.params.seed = static_cast<std::uint64_t>(seed);
    return cfg;
  };
  Runner runner(runner_opts(opts));
  for (const std::string name : {"labyrinth", "ssca2", "vacation"}) {
    for (int seed = 1; seed <= kSeeds; ++seed) {
      const ExperimentConfig cfg = seeded_config(seed);
      runner.submit(name, cfg.with(DetectorKind::kBaseline));
      runner.submit(name, cfg.with(DetectorKind::kSubBlock, 4));
    }
  }
  for (const std::string name : {"labyrinth", "ssca2", "vacation"}) {
    std::vector<double> red;
    double base_conf = 0;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      const ExperimentConfig cfg = seeded_config(seed);
      const auto b = checked_run(runner, name,
                                 cfg.with(DetectorKind::kBaseline), os,
                                 &status);
      const auto s = checked_run(runner, name,
                                 cfg.with(DetectorKind::kSubBlock, 4), os,
                                 &status);
      red.push_back(
          reduction(b.stats.conflicts_total, s.stats.conflicts_total));
      base_conf += static_cast<double>(b.stats.conflicts_total);
    }
    double mean = 0, lo = red[0], hi = red[0];
    for (const double v : red) {
      mean += v;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    mean /= red.size();
    double var = 0;
    for (const double v : red) var += (v - mean) * (v - mean);
    const double sd = std::sqrt(var / red.size());
    t.add_row({name, TextTable::pct(mean), TextTable::pct(sd),
               TextTable::pct(lo), TextTable::pct(hi),
               TextTable::num(base_conf / kSeeds, 0)});
    csv.row({name, TextTable::num(mean, 4), TextTable::num(sd, 4),
             TextTable::num(lo, 4), TextTable::num(hi, 4),
             TextTable::num(base_conf / kSeeds, 1)});
  }
  t.print(os);
  os << "(paper §V-B: labyrinth's absolute conflict count is tiny — "
        "sometimes below 20 — so its percentage metric swings wildly; the "
        "large-count benchmarks are tight)\n";
  return status;
}

// ---------------------------------------------------------------------------
// Overhead accounting — paper §IV-E.
// ---------------------------------------------------------------------------

int ablation_overhead(const CliOptions& opts, std::ostream& os) {
  int status = 0;
  SimConfig cfg;
  os << "Overhead accounting (paper §IV-E)\n\nHardware state:\n";
  TextTable t({"Sub-blocks", "Bits/line", "Extra vs ASF", "L1 overhead",
               "Relative"});
  const std::uint64_t lines = cfg.l1.size_bytes / cfg.l1.line_bytes;
  for (const std::uint32_t n : {2u, 4u, 8u, 16u}) {
    const std::uint64_t bits = 2ull * n;
    const std::uint64_t extra = 2ull * (n - 1);
    const double kb = double(extra) * double(lines) / 8.0 / 1024.0;
    t.add_row({std::to_string(n), std::to_string(bits),
               std::to_string(extra) + " bits", TextTable::num(kb) + " KB",
               TextTable::pct(kb * 1024.0 / cfg.l1.size_bytes, 2)});
  }
  t.print(os);
  os << "(paper: 4 sub-blocks on a 64KB L1 => 0.75KB = 1.17%)\n\n";

  os << "Message traffic under sub-block(4):\n";
  TextTable m({"Benchmark", "Probes", "Piggy-back msgs", "Dirty refetches",
               "Piggy-back share"});
  CsvWriter csv(opts.csv_dir, "ablation_overhead");
  csv.row({"benchmark", "probes", "piggyback", "dirty_refetches"});
  const ExperimentConfig ecfg = base_config(opts);
  Runner runner(runner_opts(opts));
  for (const auto& name : paper_benchmarks()) {
    runner.submit(name, ecfg.with(DetectorKind::kSubBlock, 4));
  }
  for (const auto& name : paper_benchmarks()) {
    const auto r = checked_run(runner, name,
                               ecfg.with(DetectorKind::kSubBlock, 4), os,
                               &status);
    const double share =
        r.stats.probes_sent == 0
            ? 0.0
            : double(r.stats.piggyback_messages) / r.stats.probes_sent;
    m.add_row({name, std::to_string(r.stats.probes_sent),
               std::to_string(r.stats.piggyback_messages),
               std::to_string(r.stats.dirty_refetches),
               TextTable::pct(share)});
    csv.row({name, std::to_string(r.stats.probes_sent),
             std::to_string(r.stats.piggyback_messages),
             std::to_string(r.stats.dirty_refetches)});
  }
  m.print(os);
  os << "(piggy-back bits ride on messages that already exist; the paper "
        "argues the extra bits are negligible vs the 64-byte payload)\n";

  // Tracing overhead (docs/observability.md): tracing must never perturb
  // the simulation. The binding check is byte-identical stats — the
  // deterministic form of "zero simulated overhead"; the host wall times
  // printed alongside bound the real-time cost of each sink.
  os << "\nTracing overhead (vacation, sub-block/4):\n";
  const ExperimentConfig tcfg = ecfg.with(DetectorKind::kSubBlock, 4);
  const auto tmp =
      std::filesystem::temp_directory_path() / "asfsim-trace-ablation";
  TextTable tt({"Tracing", "Cycles", "Host ms", "Stats vs off"});
  std::string off_blob;
  for (const auto& [label, trace] :
       {std::pair<const char*, TraceOptions>{"off", {}},
        {"jsonl", {TraceFormat::kJsonl, (tmp / "t.jsonl").string()}},
        {"perfetto",
         {TraceFormat::kPerfetto, (tmp / "t.perfetto.json").string()}}}) {
    const auto t0 = std::chrono::steady_clock::now();
    const ExperimentResult r = run_experiment("vacation", tcfg, trace);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    const std::string blob = serialize_stats(r.stats);
    if (off_blob.empty()) off_blob = blob;
    const bool same = blob == off_blob;
    if (!same) status = 1;
    tt.add_row({label, std::to_string(r.stats.total_cycles),
                TextTable::num(ms, 1), same ? "identical" : "DIFFERS"});
  }
  tt.print(os);
  os << "(simulated results must be byte-identical with tracing on; the "
        "host-time cost is I/O only)\n";
  std::error_code ec;
  std::filesystem::remove_all(tmp, ec);
  return status;
}

// ---------------------------------------------------------------------------
// Ablation — why the paper excluded yada: speculative-capacity overflow.
// ---------------------------------------------------------------------------

int ablation_capacity(const CliOptions& opts, std::ostream& os) {
  int status = 0;
  os << "Ablation (paper §III footnote): why yada was excluded — its "
        "transactions overflow the 2-way L1's speculative capacity\n";
  CsvWriter csv(opts.csv_dir, "ablation_capacity");
  csv.row({"benchmark", "commits", "capacity_aborts", "fallback_runs",
           "conflict_aborts"});
  TextTable t({"Benchmark", "Commits", "Capacity aborts", "Fallback runs",
               "Conflict aborts"});
  const ExperimentConfig cfg = base_config(opts);
  Runner runner(runner_opts(opts));
  for (const std::string name : {"yada", "vacation", "genome", "kmeans"}) {
    runner.submit(name, cfg.with(DetectorKind::kBaseline));
  }
  for (const std::string name : {"yada", "vacation", "genome", "kmeans"}) {
    const auto r = checked_run(runner, name,
                               cfg.with(DetectorKind::kBaseline), os,
                               &status);
    t.add_row({name, std::to_string(r.stats.tx_commits),
               std::to_string(r.stats.aborts_by_cause[1]),
               std::to_string(r.stats.fallback_runs),
               std::to_string(r.stats.aborts_by_cause[0])});
    csv.row({name, std::to_string(r.stats.tx_commits),
             std::to_string(r.stats.aborts_by_cause[1]),
             std::to_string(r.stats.fallback_runs),
             std::to_string(r.stats.aborts_by_cause[0])});
  }
  t.print(os);
  os << "(yada's every transaction capacity-aborts and serializes through "
        "the software fallback — best-effort HTM cannot run it "
        "transactionally, exactly the paper's reason for exclusion; the "
        "evaluated benchmarks fit with zero or near-zero capacity "
        "aborts)\n";
  return status;
}

// ---------------------------------------------------------------------------
// Ablation — L1 geometry sensitivity (the best-effort capacity contract).
// ---------------------------------------------------------------------------

int ablation_l1_geometry(const CliOptions& opts, std::ostream& os) {
  int status = 0;
  os << "Ablation (extension): L1 geometry sensitivity (baseline ASF). ASF "
        "is best-effort: speculative footprints are bounded by the L1's "
        "associativity and size.\n";
  CsvWriter csv(opts.csv_dir, "ablation_l1_geometry");
  csv.row({"benchmark", "l1_kb", "ways", "capacity_aborts", "fallbacks",
           "cycles"});
  TextTable t({"Benchmark", "L1", "Capacity aborts", "Fallbacks", "Cycles"});
  const auto geom_config = [&opts](std::uint32_t kb, std::uint32_t ways) {
    ExperimentConfig cfg = base_config(opts);
    cfg.sim.l1.size_bytes = kb * 1024;
    cfg.sim.l1.ways = ways;
    return cfg.with(DetectorKind::kBaseline);
  };
  constexpr std::array<std::pair<std::uint32_t, std::uint32_t>, 3> kGeoms{
      std::pair{16u, 1u}, std::pair{64u, 2u}, std::pair{64u, 8u}};
  Runner runner(runner_opts(opts));
  for (const std::string name : {"vacation", "genome", "yada"}) {
    for (const auto& [kb, ways] : kGeoms) {
      runner.submit(name, geom_config(kb, ways));
    }
  }
  for (const std::string name : {"vacation", "genome", "yada"}) {
    for (const auto& [kb, ways] : kGeoms) {
      const auto r = checked_run(runner, name, geom_config(kb, ways), os,
                                 &status);
      const std::string geom =
          std::to_string(kb) + "KB/" + std::to_string(ways) + "w";
      t.add_row({name, geom, std::to_string(r.stats.aborts_by_cause[1]),
                 std::to_string(r.stats.fallback_runs),
                 std::to_string(r.stats.total_cycles)});
      csv.row({name, std::to_string(kb), std::to_string(ways),
               std::to_string(r.stats.aborts_by_cause[1]),
               std::to_string(r.stats.fallback_runs),
               std::to_string(r.stats.total_cycles)});
    }
  }
  t.print(os);
  os << "(a direct-mapped 16KB L1 forces even the evaluated benchmarks "
        "into capacity aborts; yada overflows the paper's 2-way L1 at any "
        "size and only fits once the associativity grows past its cavity "
        "footprint)\n";
  return status;
}

// ---------------------------------------------------------------------------
// Ablation — input-scale sensitivity (the EXPERIMENTS.md caveat, measured).
// ---------------------------------------------------------------------------

int ablation_scale(const CliOptions& opts, std::ostream& os) {
  int status = 0;
  os << "Ablation (extension): false-conflict rate vs input scale "
        "(baseline ASF). Smaller inputs concentrate sharing, raising the "
        "false rate above the paper's full-size runs — the key deviation "
        "documented in EXPERIMENTS.md.\n";
  CsvWriter csv(opts.csv_dir, "ablation_scale");
  csv.row({"benchmark", "scale", "conflicts", "false_rate"});
  TextTable t({"Benchmark", "Scale", "Conflicts", "False rate"});
  const auto scale_config = [&opts](double scale) {
    ExperimentConfig cfg = base_config(opts);
    cfg.params.scale = opts.scale * scale;
    return cfg.with(DetectorKind::kBaseline);
  };
  Runner runner(runner_opts(opts));
  for (const std::string name : {"ssca2", "vacation", "kmeans"}) {
    for (const double scale : {0.5, 1.0, 2.0, 4.0}) {
      runner.submit(name, scale_config(scale));
    }
  }
  for (const std::string name : {"ssca2", "vacation", "kmeans"}) {
    for (const double scale : {0.5, 1.0, 2.0, 4.0}) {
      const ExperimentConfig cfg = scale_config(scale);
      const auto r = checked_run(runner, name, cfg, os, &status);
      t.add_row({name, TextTable::num(cfg.params.scale, 2),
                 std::to_string(r.stats.conflicts_total),
                 TextTable::pct(r.stats.false_conflict_rate())});
      csv.row({name, TextTable::num(cfg.params.scale, 2),
               std::to_string(r.stats.conflicts_total),
               TextTable::num(r.stats.false_conflict_rate(), 4)});
    }
  }
  t.print(os);
  return status;
}

// ---------------------------------------------------------------------------
// Ablation — does atomic-at-issue coherence bias the results? (DESIGN.md §2)
// ---------------------------------------------------------------------------

int ablation_timing(const CliOptions& opts, std::ostream& os) {
  int status = 0;
  os << "Ablation (extension): atomic-at-issue vs delayed-probe coherence "
        "timing. With probe_delay > 0, broadcasts execute (and conflict "
        "checks run) that many cycles after issue, against the machine "
        "state at delivery — the substitution DESIGN.md §2 documents is "
        "valid if the conflict profile barely moves while cycles grow.\n";
  CsvWriter csv(opts.csv_dir, "ablation_timing");
  csv.row({"benchmark", "probe_delay", "conflicts", "false_rate", "cycles"});
  TextTable t({"Benchmark", "Probe delay", "Conflicts", "False rate",
               "Cycles"});
  const auto delay_config = [&opts](Cycle delay) {
    ExperimentConfig cfg = base_config(opts);
    cfg.sim.probe_delay = delay;
    return cfg.with(DetectorKind::kBaseline);
  };
  Runner runner(runner_opts(opts));
  for (const std::string name : {"ssca2", "vacation", "kmeans", "genome"}) {
    for (const Cycle delay : {Cycle{0}, Cycle{20}, Cycle{50}}) {
      runner.submit(name, delay_config(delay));
    }
  }
  for (const std::string name : {"ssca2", "vacation", "kmeans", "genome"}) {
    for (const Cycle delay : {Cycle{0}, Cycle{20}, Cycle{50}}) {
      const auto r = checked_run(runner, name, delay_config(delay), os,
                                 &status);
      t.add_row({name, std::to_string(delay),
                 std::to_string(r.stats.conflicts_total),
                 TextTable::pct(r.stats.false_conflict_rate()),
                 std::to_string(r.stats.total_cycles)});
      csv.row({name, std::to_string(delay),
               std::to_string(r.stats.conflicts_total),
               TextTable::num(r.stats.false_conflict_rate(), 4),
               std::to_string(r.stats.total_cycles)});
    }
  }
  t.print(os);
  os << "(false-conflict rates are stable across probe timing; only the "
        "cycle counts scale with the extra flight time)\n";
  return status;
}

// ---------------------------------------------------------------------------
// Fig 11 (extension) — OLTP throughput & latency vs zipf skew.
// ---------------------------------------------------------------------------

int fig11_throughput_vs_skew(const CliOptions& opts, std::ostream& os) {
  int status = 0;
  os << "Fig 11 (extension): OLTP commits per simulated second and latency "
        "percentiles vs zipf skew, core count and detector\n"
        "(mix: " << to_string(opts.oltp.mix)
     << "; latency = logical transaction begin -> commit/fallback, "
        "including retries and backoff; docs/workloads.md)\n";
  CsvWriter csv(opts.csv_dir, "fig11_throughput_vs_skew");
  csv.row({"theta", "cores", "detector", "commits", "commits_per_simsec",
           "p50_cycles", "p95_cycles", "p99_cycles", "abort_rate",
           "fallback_runs"});
  constexpr std::array<double, 4> kThetas{0.0, 0.6, 0.9, 1.2};
  constexpr std::array<std::uint32_t, 3> kCores{2u, 4u, 8u};
  constexpr std::array<std::pair<DetectorKind, std::uint32_t>, 3> kDets{
      std::pair{DetectorKind::kBaseline, 1u},
      std::pair{DetectorKind::kSubBlock, 4u},
      std::pair{DetectorKind::kPerfect, 1u}};
  const auto cell_config = [&opts](double theta, std::uint32_t cores,
                                   DetectorKind det, std::uint32_t nsub) {
    ExperimentConfig cfg = base_config(opts);
    cfg.params.threads = cores;
    cfg.sim.ncores = cores;
    cfg.params.oltp.theta = theta;
    return cfg.with(det, nsub);
  };
  Runner runner(runner_opts(opts));
  for (const double theta : kThetas) {
    for (const std::uint32_t cores : kCores) {
      for (const auto& [det, nsub] : kDets) {
        runner.submit("oltp", cell_config(theta, cores, det, nsub));
      }
    }
  }
  TextTable t({"theta", "cores", "detector", "commits/s", "p50", "p95", "p99",
               "abort%", "fallbacks"});
  for (const double theta : kThetas) {
    for (const std::uint32_t cores : kCores) {
      for (const auto& [det, nsub] : kDets) {
        const ExperimentConfig cfg = cell_config(theta, cores, det, nsub);
        const auto r = checked_run(runner, "oltp", cfg, os, &status);
        const double abort_rate =
            r.stats.tx_attempts == 0
                ? 0.0
                : double(r.stats.tx_aborts) / double(r.stats.tx_attempts);
        t.add_row({TextTable::num(theta, 2), std::to_string(cores),
                   r.detector, TextTable::num(r.stats.commits_per_simsec(), 0),
                   TextTable::num(r.stats.latency_percentile(0.50), 0),
                   TextTable::num(r.stats.latency_percentile(0.95), 0),
                   TextTable::num(r.stats.latency_percentile(0.99), 0),
                   TextTable::pct(abort_rate),
                   std::to_string(r.stats.fallback_runs)});
        csv.row({TextTable::num(theta, 2), std::to_string(cores), r.detector,
                 std::to_string(r.stats.tx_commits),
                 TextTable::num(r.stats.commits_per_simsec(), 1),
                 TextTable::num(r.stats.latency_percentile(0.50), 1),
                 TextTable::num(r.stats.latency_percentile(0.95), 1),
                 TextTable::num(r.stats.latency_percentile(0.99), 1),
                 TextTable::num(abort_rate, 4),
                 std::to_string(r.stats.fallback_runs)});
      }
    }
  }
  t.print(os);
  os << "(skew concentrates traffic on adjacent hot records -> false "
        "sharing: sub-blocking recovers throughput between uniform and the "
        "perfect detector; tail latencies grow with theta and cores)\n";
  return status;
}

// ---------------------------------------------------------------------------
// Provenance extension — false-conflict share by allocation site x detector.
// ---------------------------------------------------------------------------

int fig_conflict_attribution(const CliOptions& opts, std::ostream& os) {
  int status = 0;
  os << "Conflict attribution (extension): share of false conflicts by "
        "allocation site and detector\n"
        "(site registry + per-conflict attribution; "
        "docs/observability.md, \"Conflict provenance\")\n";
  CsvWriter csv(opts.csv_dir, "fig_conflict_attribution");
  csv.row({"workload", "detector", "site", "objects", "false", "false_share",
           "true", "avoided", "wasted_cycles"});
  constexpr std::array<const char*, 3> kBenches{"oltp", "vacation", "genome"};
  constexpr std::array<std::pair<DetectorKind, std::uint32_t>, 2> kDets{
      std::pair{DetectorKind::kBaseline, 1u},
      std::pair{DetectorKind::kSubBlock, 4u}};
  const auto cell_config = [&opts](const std::string& name, DetectorKind det,
                                   std::uint32_t nsub) {
    ExperimentConfig cfg = base_config(opts);
    cfg.sim.provenance = true;  // the figure IS the attribution
    if (name == "oltp") {
      // Contended regime: skewed traffic over unpadded adjacent records.
      cfg.params.oltp.theta = std::max(cfg.params.oltp.theta, 0.9);
    }
    return cfg.with(det, nsub);
  };
  Runner runner(runner_opts(opts));
  for (const char* name : kBenches) {
    for (const auto& [det, nsub] : kDets) {
      runner.submit(name, cell_config(name, det, nsub));
    }
  }
  TextTable t({"Benchmark", "Detector", "Site", "Objects", "False", "Share",
               "True", "Avoided", "Wasted"});
  for (const char* name : kBenches) {
    for (const auto& [det, nsub] : kDets) {
      const ExperimentConfig cfg = cell_config(name, det, nsub);
      const auto r = checked_run(runner, name, cfg, os, &status);
      const auto& tab = r.stats.prov_site_table;
      const std::size_t nsites = tab.size() / prov::kSiteStride;
      std::uint64_t total_false = 0;
      std::vector<std::size_t> order(nsites);
      for (std::size_t i = 0; i < nsites; ++i) {
        order[i] = i;
        const std::uint64_t* row = &tab[i * prov::kSiteStride];
        total_false += row[3] + row[4] + row[5];
      }
      std::sort(order.begin(), order.end(), [&tab](std::size_t a,
                                                   std::size_t b) {
        const std::uint64_t* ra = &tab[a * prov::kSiteStride];
        const std::uint64_t* rb = &tab[b * prov::kSiteStride];
        const std::uint64_t fa = ra[3] + ra[4] + ra[5];
        const std::uint64_t fb = rb[3] + rb[4] + rb[5];
        if (fa != fb) return fa > fb;
        return a < b;
      });
      std::size_t shown = 0;
      for (const std::size_t i : order) {
        const std::uint64_t* row = &tab[i * prov::kSiteStride];
        const std::uint64_t f = row[3] + row[4] + row[5];
        const std::uint64_t tr = row[6] + row[7] + row[8];
        if (f + tr + row[9] == 0) continue;  // never conflicted
        if (shown >= 4) break;  // top offenders only; CSV has them all too
        ++shown;
        const double share =
            total_false == 0 ? 0.0
                             : static_cast<double>(f) /
                                   static_cast<double>(total_false);
        t.add_row({name, r.detector, r.stats.prov_site_names[i],
                   std::to_string(row[1]), std::to_string(f),
                   TextTable::pct(share), std::to_string(tr),
                   std::to_string(row[9]), std::to_string(row[10])});
        csv.row({name, r.detector, r.stats.prov_site_names[i],
                 std::to_string(row[1]), std::to_string(f),
                 TextTable::num(share, 4), std::to_string(tr),
                 std::to_string(row[9]), std::to_string(row[10])});
      }
    }
  }
  t.print(os);
  os << "(the unpadded OLTP record table should dominate false conflicts "
        "under the baseline detector, with sub-blocking converting most of "
        "its share into avoided conflicts)\n";
  return status;
}

// ---------------------------------------------------------------------------
// Ablation — commit rate / wasted work vs injected spurious-abort rate.
// ---------------------------------------------------------------------------

int ablation_fault_sweep(const CliOptions& opts, std::ostream& os) {
  int status = 0;
  os << "Ablation (robustness): commit rate and wasted cycles vs injected "
        "spurious-abort rate (--fault-spurious), per detector\n";
  CsvWriter csv(opts.csv_dir, "ablation_fault_sweep");
  csv.row({"workload", "detector", "spurious_rate", "commit_rate",
           "wasted_cycles", "commits_per_simsec"});
  constexpr std::array<double, 4> kRates{0.0, 0.002, 0.01, 0.05};
  constexpr std::array<std::pair<DetectorKind, std::uint32_t>, 2> kDets{
      std::pair{DetectorKind::kBaseline, 1u},
      std::pair{DetectorKind::kSubBlock, 4u}};
  const auto sweep_config = [&opts](double rate, DetectorKind det,
                                    std::uint32_t nsub) {
    ExperimentConfig cfg = base_config(opts);
    cfg.sim.fault.spurious_abort_rate = rate;
    return cfg.with(det, nsub);
  };
  Runner runner(runner_opts(opts));
  for (const std::string name : {"vacation", "oltp"}) {
    for (const auto& [det, nsub] : kDets) {
      for (const double rate : kRates) {
        runner.submit(name, sweep_config(rate, det, nsub));
      }
    }
  }
  TextTable t({"Workload", "Detector", "Spurious", "Commit rate",
               "Wasted cycles", "Commits/s"});
  std::vector<std::pair<std::string, FaultCounters>> audits;
  for (const std::string name : {"vacation", "oltp"}) {
    for (const auto& [det, nsub] : kDets) {
      for (const double rate : kRates) {
        const ExperimentConfig cfg = sweep_config(rate, det, nsub);
        const auto r = checked_run(runner, name, cfg, os, &status);
        const double commit_rate =
            r.stats.tx_attempts == 0
                ? 0.0
                : double(r.stats.tx_commits) / double(r.stats.tx_attempts);
        t.add_row({name, r.detector, TextTable::num(rate, 3),
                   TextTable::pct(commit_rate),
                   std::to_string(r.stats.wasted_cycles),
                   TextTable::num(r.stats.commits_per_simsec(), 0)});
        csv.row({name, r.detector, TextTable::num(rate, 4),
                 TextTable::num(commit_rate, 4),
                 std::to_string(r.stats.wasted_cycles),
                 TextTable::num(r.stats.commits_per_simsec(), 1)});
        if (r.has_fault_counters) {
          audits.emplace_back(
              name + " [" + r.detector + "] rate " + TextTable::num(rate, 3),
              r.fault_counters);
        }
      }
    }
  }
  t.print(os);
  if (!audits.empty()) {
    os << "\nInjected-fault audit (executed fault-injected runs only; cache "
          "hits carry no counters):\n";
    for (const auto& [label, fc] : audits) {
      os << label << "\n";
      print_fault_counters(os, fc);
    }
  }
  os << "(injected aborts waste the aborted attempts' cycles; the commit "
        "rate degrades smoothly and no detector changes workload results)\n";
  return status;
}

// ---------------------------------------------------------------------------
// Contention-management extension — execution time and fairness by policy.
// ---------------------------------------------------------------------------

int fig10_policy_sweep(const CliOptions& opts, std::ostream& os) {
  int status = 0;
  os << "Fig 10b (extension): execution time and fairness by contention "
        "policy, detector and core count\n"
        "(workloads: livelock storm, contended oltp (theta 1.1, 256 "
        "records), intruder; cm accounting on; docs/contention.md)\n";
  CsvWriter csv(opts.csv_dir, "fig10_policy_sweep");
  csv.row({"workload", "policy", "detector", "cores", "cycles", "abort_rate",
           "fallback_runs", "requester_losses", "max_consec_aborts",
           "wasted_gini"});
  constexpr std::array<CmPolicyKind, 4> kPolicies{
      CmPolicyKind::kRequesterWins, CmPolicyKind::kPolite,
      CmPolicyKind::kTimestamp, CmPolicyKind::kSerialize};
  constexpr std::array<std::pair<DetectorKind, std::uint32_t>, 2> kDets{
      std::pair{DetectorKind::kBaseline, 1u},
      std::pair{DetectorKind::kSubBlock, 4u}};
  constexpr std::array<std::uint32_t, 3> kCores{2u, 4u, 8u};
  constexpr std::array<const char*, 3> kWorkloads{"livelock", "oltp",
                                                  "intruder"};
  const auto cell_config = [&opts](const char* wl, CmPolicyKind pol,
                                   std::uint32_t cores, DetectorKind det,
                                   std::uint32_t nsub) {
    ExperimentConfig cfg = base_config(opts);
    cfg.params.threads = cores;
    cfg.sim.ncores = cores;
    cfg.sim.cm.policy = pol;
    cfg.sim.cm.stats = true;  // fairness columns need the v5 accounting
    if (std::string_view(wl) == "oltp") {
      // The contended variant: a hot 256-record table under strong skew.
      cfg.params.oltp.records = 256;
      cfg.params.oltp.theta = 1.1;
    }
    return cfg.with(det, nsub);
  };
  Runner runner(runner_opts(opts));
  for (const char* wl : kWorkloads) {
    for (const CmPolicyKind pol : kPolicies) {
      for (const std::uint32_t cores : kCores) {
        for (const auto& [det, nsub] : kDets) {
          runner.submit(wl, cell_config(wl, pol, cores, det, nsub));
        }
      }
    }
  }
  TextTable t({"workload", "policy", "detector", "cores", "cycles", "abort%",
               "fallbacks", "req-losses", "max-streak", "gini"});
  for (const char* wl : kWorkloads) {
    for (const CmPolicyKind pol : kPolicies) {
      for (const std::uint32_t cores : kCores) {
        for (const auto& [det, nsub] : kDets) {
          const ExperimentConfig cfg = cell_config(wl, pol, cores, det, nsub);
          const auto r = checked_run(runner, wl, cfg, os, &status);
          const double abort_rate =
              r.stats.tx_attempts == 0
                  ? 0.0
                  : double(r.stats.tx_aborts) / double(r.stats.tx_attempts);
          const std::uint64_t streak =
              r.stats.cm_max_consec_aborts.empty()
                  ? 0
                  : *std::max_element(r.stats.cm_max_consec_aborts.begin(),
                                      r.stats.cm_max_consec_aborts.end());
          t.add_row({wl, to_string(pol), r.detector, std::to_string(cores),
                     std::to_string(r.stats.total_cycles),
                     TextTable::pct(abort_rate),
                     std::to_string(r.stats.fallback_runs),
                     std::to_string(r.stats.cm_requester_losses),
                     std::to_string(streak),
                     TextTable::num(r.stats.cm_wasted_gini(), 3)});
          csv.row({wl, to_string(pol), r.detector, std::to_string(cores),
                   std::to_string(r.stats.total_cycles),
                   TextTable::num(abort_rate, 4),
                   std::to_string(r.stats.fallback_runs),
                   std::to_string(r.stats.cm_requester_losses),
                   std::to_string(streak),
                   TextTable::num(r.stats.cm_wasted_gini(), 4)});
        }
      }
    }
  }
  t.print(os);
  os << "(requester-wins is the throughput baseline; polite trades wasted "
        "cycles for requester aborts, timestamp narrows the per-core "
        "wasted-cycle spread (gini) on the contended workloads, and "
        "serialize caps every streak at its retry bound via the fallback "
        "lock)\n";
  return status;
}

}  // namespace asfsim::figures
