// Tiny CLI parsing shared by bench binaries and examples.
//
// Common flags:
//   --scale <f>    input-size multiplier (default 1.0; benches use smaller
//                  defaults so `for b in build/bench/*; do $b; done` is fast)
//   --threads <n>  guest threads (default 8, the paper's core count)
//   --seed <n>     deterministic seed (default 1)
//   --csv <dir>    also write CSV series into <dir>
//   --jobs <n>     host worker threads for the experiment runner
//                  (default 0 = hardware concurrency; results are
//                  byte-identical for any value — see docs/runner.md)
//   --no-cache     bypass the on-disk result cache (build/.asfsim-cache/)
//   --trace-dir <dir>     write one full-timeline trace file per job
//   --trace-format <fmt>  jsonl (default) or perfetto
//                         (see docs/observability.md)
//
// Robustness flags (docs/robustness.md):
//   --fault-spurious <p>      per-tx-access spurious-abort probability
//   --fault-commit <p>        per-commit injected-abort probability
//   --fault-evict <p>         per-tx-access forced speculative eviction prob.
//   --fault-probe-jitter <n>  max extra cycles per probe broadcast
//   --fault-sched-jitter <n>  max extra cycles per scheduled resume
//   --mutate <name>           protocol mutation (chaos harness)
//   --watchdog <n>            livelock watchdog threshold in cycles (0 = off)
//   --job-timeout <s>         per-job wall-clock limit in seconds (0 = off)
//
// OLTP workload knobs (docs/workloads.md, "The OLTP/KV family"):
//   --oltp-records <n>     table size in records
//   --oltp-payload <n>     payload bytes per record (multiple of 8)
//   --oltp-tx-len <n>      operations per transaction
//   --oltp-tx <n>          transactions per guest thread (scaled by --scale)
//   --oltp-theta <f>       zipf skew (0 = uniform; YCSB default 0.99)
//   --oltp-read-ratio <f>  free-form mix: reads
//   --oltp-rmw-ratio <f>   free-form mix: read-modify-writes
//   --oltp-scan-ratio <f>  free-form mix: scans (rest = blind updates)
//   --oltp-scan-len <n>    records per scan operation
//   --oltp-hot-window <n>  YCSB-D "latest" sliding hot window (0 = whole
//                          table; see docs/workloads.md)
//   --oltp-mix <a..f>      YCSB preset (overrides the three ratios)
//
// Contention management (docs/contention.md):
//   --cm-policy <name>     conflict-resolution policy: requester-wins
//                          (default, the ASF hardware rule), polite
//                          (requester-loses), timestamp (oldest-wins with
//                          karma carry-over), serialize (bounded retries,
//                          then the fallback lock guarantees progress)
//   --cm-max-retries <n>   serialize policy: aborts before the transaction
//                          escalates to the fallback lock (default 8)
//   --cm-karma <n>         timestamp policy: cycles of priority credit per
//                          prior abort (default 64)
//   --cm-stats             record per-core starvation/fairness accounting
//                          (adds the stats v5 section)
//
// Observability (docs/observability.md):
//   --prov                 conflict provenance: attribute every conflict to
//                          its allocation site (adds the stats v4 section
//                          and provenance-tagged trace events)
#pragma once

#include <cstdint>
#include <string>

#include "cm/cm_config.hpp"
#include "oltp/oltp_config.hpp"

namespace asfsim {

struct CliOptions {
  double scale = 1.0;
  std::uint32_t threads = 8;
  std::uint64_t seed = 1;
  std::string csv_dir;
  std::uint32_t jobs = 0;  // runner workers; 0 = hardware concurrency
  bool no_cache = false;   // skip the content-addressed result cache
  std::string trace_dir;   // empty = tracing disabled
  std::string trace_format = "jsonl";  // "jsonl" | "perfetto"

  // Robustness knobs (apply_robustness_options folds them into the
  // ExperimentConfig; all defaults preserve the clean-run byte output).
  double fault_spurious = 0.0;
  double fault_commit = 0.0;
  double fault_evict = 0.0;
  std::uint64_t fault_probe_jitter = 0;
  std::uint64_t fault_sched_jitter = 0;
  std::string mutate;        // validated by parse_cli (parse_mutation)
  std::uint64_t watchdog = 0;
  double job_timeout = 0.0;  // seconds; env ASFSIM_JOB_TIMEOUT also works

  /// OLTP workload knobs; flow into WorkloadParams::oltp (and therefore the
  /// JobSpec hash) via base_config/apply_robustness_options.
  OltpConfig oltp;

  /// Conflict provenance (--prov): flows into SimConfig::provenance.
  bool prov = false;

  /// Contention management (--cm-*): flows into SimConfig::cm.
  CmConfig cm;
};

/// Parse the common flags; exits with a usage message on errors.
[[nodiscard]] CliOptions parse_cli(int argc, char** argv,
                                   double default_scale = 1.0);

}  // namespace asfsim
