// Tiny CLI parsing shared by bench binaries and examples.
//
// Common flags:
//   --scale <f>    input-size multiplier (default 1.0; benches use smaller
//                  defaults so `for b in build/bench/*; do $b; done` is fast)
//   --threads <n>  guest threads (default 8, the paper's core count)
//   --seed <n>     deterministic seed (default 1)
//   --csv <dir>    also write CSV series into <dir>
//   --jobs <n>     host worker threads for the experiment runner
//                  (default 0 = hardware concurrency; results are
//                  byte-identical for any value — see docs/runner.md)
//   --no-cache     bypass the on-disk result cache (build/.asfsim-cache/)
//   --trace-dir <dir>     write one full-timeline trace file per job
//   --trace-format <fmt>  jsonl (default) or perfetto
//                         (see docs/observability.md)
#pragma once

#include <cstdint>
#include <string>

namespace asfsim {

struct CliOptions {
  double scale = 1.0;
  std::uint32_t threads = 8;
  std::uint64_t seed = 1;
  std::string csv_dir;
  std::uint32_t jobs = 0;  // runner workers; 0 = hardware concurrency
  bool no_cache = false;   // skip the content-addressed result cache
  std::string trace_dir;   // empty = tracing disabled
  std::string trace_format = "jsonl";  // "jsonl" | "perfetto"
};

/// Parse the common flags; exits with a usage message on errors.
[[nodiscard]] CliOptions parse_cli(int argc, char** argv,
                                   double default_scale = 1.0);

}  // namespace asfsim
