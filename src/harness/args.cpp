#include "harness/args.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace asfsim {

CliOptions parse_cli(int argc, char** argv, double default_scale) {
  CliOptions o;
  o.scale = default_scale;
  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: missing value for %s\n", argv[0], flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--scale") == 0) {
      o.scale = std::atof(need_value("--scale"));
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      o.threads = static_cast<std::uint32_t>(std::atoi(need_value("--threads")));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      o.seed = static_cast<std::uint64_t>(std::atoll(need_value("--seed")));
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      o.csv_dir = need_value("--csv");
    } else if (std::strcmp(argv[i], "--jobs") == 0) {
      o.jobs = static_cast<std::uint32_t>(std::atoi(need_value("--jobs")));
    } else if (std::strcmp(argv[i], "--no-cache") == 0) {
      o.no_cache = true;
    } else if (std::strcmp(argv[i], "--trace-dir") == 0) {
      o.trace_dir = need_value("--trace-dir");
    } else if (std::strcmp(argv[i], "--trace-format") == 0) {
      o.trace_format = need_value("--trace-format");
      if (o.trace_format != "jsonl" && o.trace_format != "perfetto") {
        std::fprintf(stderr, "%s: --trace-format must be jsonl or perfetto\n",
                     argv[0]);
        std::exit(2);
      }
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "usage: %s [--scale f] [--threads n] [--seed n] [--csv dir] "
          "[--jobs n] [--no-cache] [--trace-dir dir] "
          "[--trace-format jsonl|perfetto]\n",
          argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "%s: unknown flag %s (see --help)\n", argv[0],
                   argv[i]);
      std::exit(2);
    }
  }
  return o;
}

}  // namespace asfsim
