#include "harness/args.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "cm/cm_config.hpp"
#include "fault/fault_config.hpp"

namespace asfsim {

CliOptions parse_cli(int argc, char** argv, double default_scale) {
  CliOptions o;
  o.scale = default_scale;
  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: missing value for %s\n", argv[0], flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--scale") == 0) {
      o.scale = std::atof(need_value("--scale"));
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      o.threads = static_cast<std::uint32_t>(std::atoi(need_value("--threads")));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      o.seed = static_cast<std::uint64_t>(std::atoll(need_value("--seed")));
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      o.csv_dir = need_value("--csv");
    } else if (std::strcmp(argv[i], "--jobs") == 0) {
      o.jobs = static_cast<std::uint32_t>(std::atoi(need_value("--jobs")));
    } else if (std::strcmp(argv[i], "--no-cache") == 0) {
      o.no_cache = true;
    } else if (std::strcmp(argv[i], "--trace-dir") == 0) {
      o.trace_dir = need_value("--trace-dir");
    } else if (std::strcmp(argv[i], "--trace-format") == 0) {
      o.trace_format = need_value("--trace-format");
      if (o.trace_format != "jsonl" && o.trace_format != "perfetto") {
        std::fprintf(stderr, "%s: --trace-format must be jsonl or perfetto\n",
                     argv[0]);
        std::exit(2);
      }
    } else if (std::strcmp(argv[i], "--fault-spurious") == 0) {
      o.fault_spurious = std::atof(need_value("--fault-spurious"));
    } else if (std::strcmp(argv[i], "--fault-commit") == 0) {
      o.fault_commit = std::atof(need_value("--fault-commit"));
    } else if (std::strcmp(argv[i], "--fault-evict") == 0) {
      o.fault_evict = std::atof(need_value("--fault-evict"));
    } else if (std::strcmp(argv[i], "--fault-probe-jitter") == 0) {
      o.fault_probe_jitter =
          static_cast<std::uint64_t>(std::atoll(need_value("--fault-probe-jitter")));
    } else if (std::strcmp(argv[i], "--fault-sched-jitter") == 0) {
      o.fault_sched_jitter =
          static_cast<std::uint64_t>(std::atoll(need_value("--fault-sched-jitter")));
    } else if (std::strcmp(argv[i], "--mutate") == 0) {
      o.mutate = need_value("--mutate");
      ProtocolMutation mut;
      if (!parse_mutation(o.mutate, mut)) {
        std::fprintf(stderr,
                     "%s: unknown --mutate %s (try drop-dirty-subblock, "
                     "forget-invalidated-specinfo, skip-written-mask, "
                     "skip-commit-validation)\n",
                     argv[0], o.mutate.c_str());
        std::exit(2);
      }
    } else if (std::strcmp(argv[i], "--oltp-records") == 0) {
      o.oltp.records =
          static_cast<std::uint64_t>(std::atoll(need_value("--oltp-records")));
    } else if (std::strcmp(argv[i], "--oltp-payload") == 0) {
      o.oltp.payload_bytes =
          static_cast<std::uint32_t>(std::atoi(need_value("--oltp-payload")));
    } else if (std::strcmp(argv[i], "--oltp-tx-len") == 0) {
      o.oltp.tx_len =
          static_cast<std::uint32_t>(std::atoi(need_value("--oltp-tx-len")));
    } else if (std::strcmp(argv[i], "--oltp-tx") == 0) {
      o.oltp.tx_per_thread =
          static_cast<std::uint64_t>(std::atoll(need_value("--oltp-tx")));
    } else if (std::strcmp(argv[i], "--oltp-theta") == 0) {
      o.oltp.theta = std::atof(need_value("--oltp-theta"));
    } else if (std::strcmp(argv[i], "--oltp-read-ratio") == 0) {
      o.oltp.read_ratio = std::atof(need_value("--oltp-read-ratio"));
    } else if (std::strcmp(argv[i], "--oltp-rmw-ratio") == 0) {
      o.oltp.rmw_ratio = std::atof(need_value("--oltp-rmw-ratio"));
    } else if (std::strcmp(argv[i], "--oltp-scan-ratio") == 0) {
      o.oltp.scan_ratio = std::atof(need_value("--oltp-scan-ratio"));
    } else if (std::strcmp(argv[i], "--oltp-scan-len") == 0) {
      o.oltp.scan_len =
          static_cast<std::uint32_t>(std::atoi(need_value("--oltp-scan-len")));
    } else if (std::strcmp(argv[i], "--oltp-hot-window") == 0) {
      o.oltp.hot_window = static_cast<std::uint64_t>(
          std::atoll(need_value("--oltp-hot-window")));
    } else if (std::strcmp(argv[i], "--prov") == 0) {
      o.prov = true;
    } else if (std::strcmp(argv[i], "--cm-policy") == 0) {
      const char* name = need_value("--cm-policy");
      if (!parse_cm_policy(name, o.cm.policy)) {
        std::fprintf(stderr,
                     "%s: unknown --cm-policy %s (try requester-wins, "
                     "polite, timestamp, serialize)\n",
                     argv[0], name);
        std::exit(2);
      }
    } else if (std::strcmp(argv[i], "--cm-max-retries") == 0) {
      o.cm.max_retries =
          static_cast<std::uint32_t>(std::atoi(need_value("--cm-max-retries")));
    } else if (std::strcmp(argv[i], "--cm-karma") == 0) {
      o.cm.karma =
          static_cast<std::uint32_t>(std::atoi(need_value("--cm-karma")));
    } else if (std::strcmp(argv[i], "--cm-stats") == 0) {
      o.cm.stats = true;
    } else if (std::strcmp(argv[i], "--oltp-mix") == 0) {
      const char* name = need_value("--oltp-mix");
      if (!parse_oltp_mix(name, o.oltp.mix)) {
        std::fprintf(stderr, "%s: unknown --oltp-mix %s (try a..f or custom)\n",
                     argv[0], name);
        std::exit(2);
      }
    } else if (std::strcmp(argv[i], "--watchdog") == 0) {
      o.watchdog = static_cast<std::uint64_t>(std::atoll(need_value("--watchdog")));
    } else if (std::strcmp(argv[i], "--job-timeout") == 0) {
      o.job_timeout = std::atof(need_value("--job-timeout"));
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "usage: %s [--scale f] [--threads n] [--seed n] [--csv dir] "
          "[--jobs n] [--no-cache] [--trace-dir dir] "
          "[--trace-format jsonl|perfetto]\n"
          "  robustness: [--fault-spurious p] [--fault-commit p] "
          "[--fault-evict p] [--fault-probe-jitter n] "
          "[--fault-sched-jitter n] [--mutate name] [--watchdog n] "
          "[--job-timeout s]\n"
          "  oltp: [--oltp-records n] [--oltp-payload n] [--oltp-tx-len n] "
          "[--oltp-tx n] [--oltp-theta f] [--oltp-read-ratio f] "
          "[--oltp-rmw-ratio f] [--oltp-scan-ratio f] [--oltp-scan-len n] "
          "[--oltp-hot-window n] [--oltp-mix a..f|custom]\n"
          "  contention: [--cm-policy requester-wins|polite|timestamp|"
          "serialize] [--cm-max-retries n] [--cm-karma n] [--cm-stats]\n"
          "  observability: [--prov] (conflict provenance attribution)\n",
          argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "%s: unknown flag %s (see --help)\n", argv[0],
                   argv[i]);
      std::exit(2);
    }
  }
  return o;
}

}  // namespace asfsim
