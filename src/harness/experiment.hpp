// Experiment runner: one (workload × detector × configuration) simulation.
#pragma once

#include <string>

#include "core/detector.hpp"
#include "fault/plan.hpp"
#include "harness/args.hpp"
#include "sim/config.hpp"
#include "stats/counters.hpp"
#include "workloads/workload.hpp"

namespace asfsim {

struct ExperimentConfig {
  DetectorKind detector = DetectorKind::kBaseline;
  std::uint32_t nsub = 4;  // sub-blocks per line (sub-blocking detectors)
  SimConfig sim;
  WorkloadParams params;
  bool timeseries = false;  // record Fig-3 style time series
  Cycle max_cycles = Cycle{1} << 36;  // livelock guard
  /// Host wall-clock budget for the run, in seconds (0 = unlimited).
  /// Deliberately NOT part of the JobSpec cache key: it never changes the
  /// simulation result, only whether the host gives up on it.
  double wall_limit_s = 0.0;

  /// Convenience: same experiment with a different detector.
  [[nodiscard]] ExperimentConfig with(DetectorKind d,
                                      std::uint32_t n = 4) const {
    ExperimentConfig c = *this;
    c.detector = d;
    c.nsub = n;
    return c;
  }
};

/// On-disk format for a full-timeline trace (docs/observability.md).
enum class TraceFormat : std::uint8_t { kNone = 0, kJsonl, kPerfetto };

/// File extension matching the format (".jsonl" / ".perfetto.json").
[[nodiscard]] const char* trace_file_extension(TraceFormat fmt);

struct TraceOptions {
  TraceFormat format = TraceFormat::kNone;
  std::string path;  // output file; parent directories are created

  [[nodiscard]] bool enabled() const {
    return format != TraceFormat::kNone && !path.empty();
  }
};

struct ExperimentResult {
  std::string workload;
  std::string detector;
  Stats stats;
  std::string validation_error;  // empty string = outputs validated OK
  /// What the fault plan actually injected during an *executed* run with
  /// injection enabled. Deliberately outside Stats (the stats blob format
  /// stays byte-identical to fault-free builds), so cache loads come back
  /// with has_fault_counters == false.
  FaultCounters fault_counters;
  bool has_fault_counters = false;

  [[nodiscard]] bool ok() const { return validation_error.empty(); }
};

/// Fold the CLI robustness flags (--fault-*, --mutate, --watchdog) into an
/// experiment config. The fault knobs land in cfg.sim.fault and therefore
/// in the JobSpec hash; wall_limit_s stays host-side.
void apply_robustness_options(const CliOptions& opts, ExperimentConfig& cfg);

/// Run one experiment to completion. Throws on simulator-level failures
/// (deadlock, cycle-limit); workload validation failures are reported in the
/// result instead.
[[nodiscard]] ExperimentResult run_experiment(const std::string& workload,
                                              const ExperimentConfig& cfg);

/// Same, streaming the full event timeline to `trace.path` while running.
/// Tracing never perturbs simulated timing: stats and cycle counts are
/// byte-identical with and without it. Throws if the file cannot be opened.
[[nodiscard]] ExperimentResult run_experiment(const std::string& workload,
                                              const ExperimentConfig& cfg,
                                              const TraceOptions& trace);

}  // namespace asfsim
