// JobSpec: the canonical identity of one simulation job.
//
// A job is one (workload × detector × SimConfig × WorkloadParams) run — the
// unit run_experiment() executes. The runner addresses jobs by content: the
// canonical serialization below covers every field that can influence the
// simulation outcome, in a fixed order and with exact (hex-float) encoding
// for the floating-point knobs, so
//
//   same spec text  <=>  byte-identical simulation results
//
// holds for the deterministic single-threaded simulator. The FNV-1a hash of
// that text keys the in-process dedup map and the on-disk result cache
// (docs/runner.md documents the key scheme and its invalidation rules).
#pragma once

#include <cstdint>
#include <string>

#include "harness/experiment.hpp"

namespace asfsim::runner {

struct JobSpec {
  std::string workload;
  ExperimentConfig config;
  std::string canonical;  // canonical serialization (see make_job_spec)
  std::string hash_hex;   // 16-hex-digit FNV-1a 64 of `canonical`
};

/// FNV-1a 64-bit over a byte string.
[[nodiscard]] std::uint64_t fnv1a64(const std::string& bytes);

/// Build the spec: mirrors run_experiment's effective configuration (e.g.
/// sim.seed is overwritten by params.seed there, so it is canonicalized
/// that way here) and fills in `canonical` + `hash_hex`.
[[nodiscard]] JobSpec make_job_spec(const std::string& workload,
                                    const ExperimentConfig& cfg);

}  // namespace asfsim::runner
