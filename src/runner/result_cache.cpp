#include "runner/result_cache.hpp"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "runner/version.hpp"
#include "stats/serialize.hpp"

namespace asfsim::runner {

namespace {

constexpr const char* kHeader = "asfsim-cache v1";

/// Reads "<key> <count>\n<count raw bytes>\n" length-prefixed sections; the
/// raw payload may contain anything (spec text, stats blob, error strings).
/// `max_bytes` bounds the count (the file size): a corrupted length field
/// must parse as damage, not as a multi-gigabyte allocation.
bool read_section(std::istream& in, const std::string& key,
                  std::string& payload, std::size_t max_bytes) {
  std::string k;
  std::size_t n = 0;
  if (!(in >> k >> n) || k != key) return false;
  if (n > max_bytes) return false;
  if (in.get() != '\n') return false;
  payload.resize(n);
  if (n > 0 && !in.read(payload.data(), static_cast<std::streamsize>(n))) {
    return false;
  }
  return in.get() == '\n';
}

void write_section(std::ostream& out, const std::string& key,
                   const std::string& payload) {
  out << key << ' ' << payload.size() << '\n' << payload << '\n';
}

}  // namespace

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {}

std::string ResultCache::default_dir() {
  if (const char* env = std::getenv("ASFSIM_CACHE_DIR");
      env != nullptr && *env != '\0') {
    return env;
  }
  return "build/.asfsim-cache";
}

std::string ResultCache::entry_path(const JobSpec& spec) const {
  return dir_ + "/" + code_version_stamp() + "/" + spec.hash_hex + ".result";
}

std::optional<ExperimentResult> ResultCache::load(const JobSpec& spec) const {
  const std::string path = entry_path(spec);
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return std::nullopt;
  std::error_code size_ec;
  const auto file_size = static_cast<std::size_t>(
      std::filesystem::file_size(path, size_ec));
  if (size_ec) return std::nullopt;

  // Every anomaly past this point quarantines the file: a truncated write,
  // a flipped bit, or tampering must degrade to one recomputation, never to
  // wrong results or a permanently poisoned entry.
  const auto corrupt = [&]() -> std::optional<ExperimentResult> {
    in.close();
    quarantine(path);
    return std::nullopt;
  };

  std::string header;
  if (!std::getline(in, header) || header != kHeader) return corrupt();
  std::string stored_spec, workload, detector, error, stats_blob;
  if (!read_section(in, "spec", stored_spec, file_size) ||
      !read_section(in, "workload", workload, file_size) ||
      !read_section(in, "detector", detector, file_size) ||
      !read_section(in, "validation_error", error, file_size) ||
      !read_section(in, "stats", stats_blob, file_size)) {
    return corrupt();
  }
  if (in.peek() != std::ifstream::traits_type::eof()) {
    return corrupt();  // trailing bytes: truncated write or tampering
  }
  // The hash addressed the file; the spec text authenticates it. A clean
  // mismatch is overwhelmingly a damaged spec section (a true 64-bit hash
  // collision is astronomically unlikely), so it quarantines too.
  if (stored_spec != spec.canonical || workload != spec.workload) {
    return corrupt();
  }

  ExperimentResult r;
  r.workload = workload;
  r.detector = detector;
  r.validation_error = error;
  if (!deserialize_stats(stats_blob, r.stats)) return corrupt();
  return r;
}

void ResultCache::quarantine(const std::string& path) const {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::path bad(path);
  bad.replace_extension(".bad");
  fs::rename(path, bad, ec);
  if (ec) fs::remove(path, ec);  // never fails the run either way
}

void ResultCache::store(const JobSpec& spec,
                        const ExperimentResult& result) const {
  namespace fs = std::filesystem;
  const std::string path = entry_path(spec);
  std::error_code ec;
  fs::create_directories(fs::path(path).parent_path(), ec);
  if (ec) return;  // unwritable cache never fails the run

  // Unique temp name per process+spec; rename() makes the publish atomic.
  std::ostringstream tmp_name;
  tmp_name << path << ".tmp." << ::getpid();
  const std::string tmp = tmp_name.str();
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) return;
    out << kHeader << '\n';
    write_section(out, "spec", spec.canonical);
    write_section(out, "workload", result.workload);
    write_section(out, "detector", result.detector);
    write_section(out, "validation_error", result.validation_error);
    write_section(out, "stats", serialize_stats(result.stats));
    if (!out.good()) {
      out.close();
      fs::remove(tmp, ec);
      return;
    }
  }
  fs::rename(tmp, path, ec);
  if (ec) fs::remove(tmp, ec);
}

}  // namespace asfsim::runner
