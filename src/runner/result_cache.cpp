#include "runner/result_cache.hpp"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "runner/version.hpp"
#include "stats/serialize.hpp"

namespace asfsim::runner {

namespace {

constexpr const char* kHeader = "asfsim-cache v1";

/// Reads "<key> <count>\n<count raw bytes>\n" length-prefixed sections; the
/// raw payload may contain anything (spec text, stats blob, error strings).
bool read_section(std::istream& in, const std::string& key,
                  std::string& payload) {
  std::string k;
  std::size_t n = 0;
  if (!(in >> k >> n) || k != key) return false;
  if (in.get() != '\n') return false;
  payload.resize(n);
  if (n > 0 && !in.read(payload.data(), static_cast<std::streamsize>(n))) {
    return false;
  }
  return in.get() == '\n';
}

void write_section(std::ostream& out, const std::string& key,
                   const std::string& payload) {
  out << key << ' ' << payload.size() << '\n' << payload << '\n';
}

}  // namespace

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {}

std::string ResultCache::default_dir() {
  if (const char* env = std::getenv("ASFSIM_CACHE_DIR");
      env != nullptr && *env != '\0') {
    return env;
  }
  return "build/.asfsim-cache";
}

std::string ResultCache::entry_path(const JobSpec& spec) const {
  return dir_ + "/" + code_version_stamp() + "/" + spec.hash_hex + ".result";
}

std::optional<ExperimentResult> ResultCache::load(const JobSpec& spec) const {
  std::ifstream in(entry_path(spec), std::ios::binary);
  if (!in.is_open()) return std::nullopt;

  std::string header;
  if (!std::getline(in, header) || header != kHeader) return std::nullopt;
  std::string stored_spec, workload, detector, error, stats_blob;
  if (!read_section(in, "spec", stored_spec) ||
      !read_section(in, "workload", workload) ||
      !read_section(in, "detector", detector) ||
      !read_section(in, "validation_error", error) ||
      !read_section(in, "stats", stats_blob)) {
    return std::nullopt;
  }
  if (in.peek() != std::ifstream::traits_type::eof()) {
    return std::nullopt;  // trailing bytes: truncated write or tampering
  }
  // The hash addressed the file; the spec text authenticates it.
  if (stored_spec != spec.canonical || workload != spec.workload) {
    return std::nullopt;
  }

  ExperimentResult r;
  r.workload = workload;
  r.detector = detector;
  r.validation_error = error;
  if (!deserialize_stats(stats_blob, r.stats)) return std::nullopt;
  return r;
}

void ResultCache::store(const JobSpec& spec,
                        const ExperimentResult& result) const {
  namespace fs = std::filesystem;
  const std::string path = entry_path(spec);
  std::error_code ec;
  fs::create_directories(fs::path(path).parent_path(), ec);
  if (ec) return;  // unwritable cache never fails the run

  // Unique temp name per process+spec; rename() makes the publish atomic.
  std::ostringstream tmp_name;
  tmp_name << path << ".tmp." << ::getpid();
  const std::string tmp = tmp_name.str();
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) return;
    out << kHeader << '\n';
    write_section(out, "spec", spec.canonical);
    write_section(out, "workload", result.workload);
    write_section(out, "detector", result.detector);
    write_section(out, "validation_error", result.validation_error);
    write_section(out, "stats", serialize_stats(result.stats));
    if (!out.good()) {
      out.close();
      fs::remove(tmp, ec);
      return;
    }
  }
  fs::rename(tmp, path, ec);
  if (ec) fs::remove(tmp, ec);
}

}  // namespace asfsim::runner
