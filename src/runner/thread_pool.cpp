#include "runner/thread_pool.hpp"

#include <utility>

namespace asfsim::runner {

ThreadPool::ThreadPool(unsigned workers) {
  if (workers == 0) workers = 1;
  threads_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ && drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace asfsim::runner
