#include "runner/job_spec.hpp"

#include <cstdio>
#include <type_traits>

namespace asfsim::runner {

namespace {

template <typename UInt>
void kv(std::string& out, const char* key, UInt v) {
  static_assert(std::is_unsigned_v<UInt> || std::is_same_v<UInt, int>);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s %llu\n", key,
                static_cast<unsigned long long>(v));
  out += buf;
}

// %a is exact (no rounding on round trip) and independent of print
// precision, so double-valued knobs cannot alias across specs.
void kv(std::string& out, const char* key, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s %a\n", key, v);
  out += buf;
}

void kv_cache(std::string& out, const char* key, const CacheLevelConfig& c) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s %u %u %u %llu\n", key, c.size_bytes,
                c.line_bytes, c.ways,
                static_cast<unsigned long long>(c.latency));
  out += buf;
}

}  // namespace

std::uint64_t fnv1a64(const std::string& bytes) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

JobSpec make_job_spec(const std::string& workload,
                      const ExperimentConfig& cfg) {
  JobSpec spec;
  spec.workload = workload;
  spec.config = cfg;
  // Mirror run_experiment: the effective sim seed is the params seed.
  spec.config.sim.seed = cfg.params.seed;

  const SimConfig& sim = spec.config.sim;
  std::string& s = spec.canonical;
  s.reserve(768);
  s += "asfsim-jobspec v5\n";
  s += "workload " + workload + "\n";
  kv(s, "detector", static_cast<std::uint64_t>(cfg.detector));
  kv(s, "nsub", cfg.nsub);
  kv(s, "timeseries", cfg.timeseries ? 1 : 0);
  kv(s, "max_cycles", cfg.max_cycles);
  kv(s, "threads", cfg.params.threads);
  kv(s, "seed", cfg.params.seed);
  kv(s, "scale", cfg.params.scale);
  kv(s, "ncores", sim.ncores);
  kv_cache(s, "l1", sim.l1);
  kv_cache(s, "l2", sim.l2);
  kv_cache(s, "l3", sim.l3);
  kv(s, "mem_latency", sim.mem_latency);
  kv(s, "cache2cache_latency", sim.cache2cache_latency);
  kv(s, "upgrade_latency", sim.upgrade_latency);
  kv(s, "bus_occupancy", sim.bus_occupancy);
  kv(s, "probe_delay", sim.probe_delay);
  kv(s, "commit_latency", sim.commit_latency);
  kv(s, "abort_latency", sim.abort_latency);
  kv(s, "backoff_base", sim.backoff_base);
  kv(s, "backoff_cap_shift", sim.backoff_cap_shift);
  kv(s, "enable_ats", sim.enable_ats ? 1 : 0);
  kv(s, "ats_alpha", sim.ats_alpha);
  kv(s, "ats_threshold", sim.ats_threshold);
  // v2: robustness knobs that change simulation output. The host-side
  // wall-clock limit (ExperimentConfig::wall_limit_s) is deliberately
  // excluded — it never changes the result, only whether the host waits.
  kv(s, "max_tx_retries", sim.max_tx_retries);
  kv(s, "max_capacity_aborts", sim.max_capacity_aborts);
  kv(s, "watchdog_cycles", sim.watchdog_cycles);
  kv(s, "fault_spurious", sim.fault.spurious_abort_rate);
  kv(s, "fault_commit", sim.fault.commit_abort_rate);
  kv(s, "fault_evict", sim.fault.evict_rate);
  kv(s, "fault_probe_jitter", sim.fault.probe_jitter);
  kv(s, "fault_sched_jitter", sim.fault.sched_jitter);
  kv(s, "mutation", static_cast<std::uint64_t>(sim.fault.mutation));
  // v3: the OLTP workload family's knobs (oltp/oltp_config.hpp). Serialized
  // unconditionally — non-oltp workloads ignore them, and constant defaults
  // cannot cause cache aliasing.
  const OltpConfig& oltp = cfg.params.oltp;
  kv(s, "oltp_records", oltp.records);
  kv(s, "oltp_payload_bytes", oltp.payload_bytes);
  kv(s, "oltp_tx_len", oltp.tx_len);
  kv(s, "oltp_tx_per_thread", oltp.tx_per_thread);
  kv(s, "oltp_theta", oltp.theta);
  kv(s, "oltp_read_ratio", oltp.read_ratio);
  kv(s, "oltp_rmw_ratio", oltp.rmw_ratio);
  kv(s, "oltp_scan_ratio", oltp.scan_ratio);
  kv(s, "oltp_scan_len", oltp.scan_len);
  kv(s, "oltp_mix", static_cast<std::uint64_t>(oltp.mix));
  // v4: YCSB-D "latest" sliding hot window, and conflict provenance (which
  // changes the cached stats blob — it gains the opt-in v4 section — even
  // though simulated outcomes are identical).
  kv(s, "oltp_hot_window", oltp.hot_window);
  kv(s, "provenance", sim.provenance ? 1 : 0);
  // v5: contention-management knobs (cm/cm_config.hpp). cm_stats changes
  // only the stats blob (it gains the opt-in v5 section), the rest change
  // simulated outcomes.
  kv(s, "cm_policy", static_cast<std::uint64_t>(sim.cm.policy));
  kv(s, "cm_max_retries", sim.cm.max_retries);
  kv(s, "cm_karma", sim.cm.karma);
  kv(s, "cm_stats", sim.cm.stats ? 1 : 0);

  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fnv1a64(spec.canonical)));
  spec.hash_hex = buf;
  return spec;
}

}  // namespace asfsim::runner
