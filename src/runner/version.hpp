// Code-version stamp for cache invalidation.
//
// The result cache must never serve a result computed by different
// simulator code. The stamp is generated at build time
// (cmake/gen_code_stamp.cmake): an MD5 over the contents of every
// .cpp/.hpp under src/, regenerated whenever any of them changes. Cache
// entries live under a per-stamp directory, so ANY source edit — even a
// comment — retires the whole cache (conservative by design; simulation
// results are cheap relative to a stale-figure debugging session), while
// doc/script-only changes keep it warm.
#pragma once

namespace asfsim::runner {

/// MD5 hex digest of the src/ tree this binary was built from.
[[nodiscard]] const char* code_version_stamp();

}  // namespace asfsim::runner
