// Content-addressed on-disk cache of ExperimentResults.
//
// Layout: <dir>/<code-version-stamp>/<jobspec-hash>.result, one file per
// job. Each file stores the full canonical JobSpec text alongside the
// serialized result; load() verifies the stored spec byte-for-byte against
// the requested one, so an (astronomically unlikely) 64-bit hash collision
// or a hand-edited file degrades to a cache miss, never to wrong results.
// Stores go through a temp file + rename, so concurrent bench processes
// sharing one cache directory race benignly (last writer wins with an
// identical payload). Any parse failure on load is a miss — the offending
// file is quarantined (renamed to <hash>.bad, or removed when even the
// rename fails) so the poisoned entry cannot be consulted again, and the
// result is recomputed and re-stored. `rm -rf <dir>` is always safe.
#pragma once

#include <optional>
#include <string>

#include "runner/job_spec.hpp"

namespace asfsim::runner {

class ResultCache {
 public:
  /// `dir` is the cache root; entries go under <dir>/<stamp>/. The
  /// directory is created lazily on first store.
  explicit ResultCache(std::string dir);

  [[nodiscard]] std::optional<ExperimentResult> load(const JobSpec& spec) const;
  void store(const JobSpec& spec, const ExperimentResult& result) const;

  [[nodiscard]] const std::string& dir() const { return dir_; }

  /// Default cache root: $ASFSIM_CACHE_DIR, else build/.asfsim-cache
  /// (relative to the CWD — bench binaries are run from the repo root).
  [[nodiscard]] static std::string default_dir();

 private:
  [[nodiscard]] std::string entry_path(const JobSpec& spec) const;
  /// Move a corrupt entry out of the lookup path (<hash>.result ->
  /// <hash>.bad; removed outright if the rename fails). Keeping the bytes
  /// around makes cache corruption diagnosable after the fact.
  void quarantine(const std::string& path) const;

  std::string dir_;
};

}  // namespace asfsim::runner
