#include "runner/runner.hpp"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <utility>

#include "core/detector.hpp"
#include "runner/version.hpp"

namespace asfsim::runner {

namespace {

unsigned resolve_jobs(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1;
}

bool resolve_progress(RunnerOptions::Progress p) {
  if (const char* env = std::getenv("ASFSIM_PROGRESS");
      env != nullptr && *env != '\0') {
    return env[0] == '1';
  }
  switch (p) {
    case RunnerOptions::Progress::kOn:
      return true;
    case RunnerOptions::Progress::kOff:
      return false;
    case RunnerOptions::Progress::kAuto:
      break;
  }
  return ::isatty(::fileno(stderr)) == 1;
}

std::string detector_label(const ExperimentConfig& cfg) {
  std::string label = to_string(cfg.detector);
  if (cfg.detector == DetectorKind::kSubBlock ||
      cfg.detector == DetectorKind::kSubBlockWawLine ||
      cfg.detector == DetectorKind::kSubBlockNoDirty) {
    label += "/" + std::to_string(cfg.nsub);
  }
  return label;
}

/// Minimal JSON string escape (quotes, backslashes, control chars).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

Runner::Runner(RunnerOptions opts)
    : opts_(std::move(opts)),
      cache_(opts_.cache_dir.empty() ? ResultCache::default_dir()
                                     : opts_.cache_dir),
      jobs_(resolve_jobs(opts_.jobs)),
      pool_(std::make_unique<ThreadPool>(jobs_)),
      progress_enabled_(resolve_progress(opts_.progress)),
      start_(std::chrono::steady_clock::now()) {
  if (const char* env = std::getenv("ASFSIM_JOB_TIMEOUT");
      env != nullptr && *env != '\0') {
    opts_.job_wall_limit_s = std::atof(env);
  }
  if (const char* env = std::getenv("ASFSIM_FAULT_COUNTERS");
      env != nullptr && *env != '\0') {
    opts_.manifest_fault_counters = env[0] == '1';
  }
}

Runner::~Runner() {
  pool_.reset();  // drain: every submitted job finishes before the manifest
  if (progress_dirty_) std::fputc('\n', stderr);
  write_manifest();
}

std::shared_future<ExperimentResult> Runner::submit(
    const std::string& workload, const ExperimentConfig& cfg) {
  JobSpec spec = make_job_spec(workload, cfg);

  std::lock_guard<std::mutex> lk(mu_);
  if (auto it = inflight_.find(spec.hash_hex); it != inflight_.end()) {
    ++totals_.deduped;
    return it->second;
  }
  const std::size_t entry_index = entries_.size();
  ManifestEntry entry;
  entry.hash_hex = spec.hash_hex;
  entry.workload = workload;
  entry.detector = detector_label(cfg);
  entry.seed = cfg.params.seed;
  entry.policy = to_string(cfg.sim.cm.policy);
  if (cfg.sim.cm.policy == CmPolicyKind::kSerialize) {
    entry.cm_max_retries = cfg.sim.cm.max_retries;
  }
  entries_.push_back(std::move(entry));
  ++totals_.submitted;

  auto task = std::make_shared<std::packaged_task<ExperimentResult()>>(
      [this, spec = std::move(spec), entry_index] {
        return run_one(spec, entry_index);
      });
  std::shared_future<ExperimentResult> fut = task->get_future().share();
  inflight_.emplace(entries_[entry_index].hash_hex, fut);
  pool_->post([task] { (*task)(); });
  return fut;
}

ExperimentResult Runner::get(const std::string& workload,
                             const ExperimentConfig& cfg) {
  try {
    return submit(workload, cfg).get();
  } catch (const JobError&) {
    throw;  // already carries its identity (shared future, second get())
  } catch (const std::exception& e) {
    throw JobError(workload, detector_label(cfg), cfg.params.seed, e.what());
  }
}

ExperimentResult Runner::run_one(const JobSpec& spec,
                                 std::size_t entry_index) {
  const auto t0 = std::chrono::steady_clock::now();
  auto elapsed_ms = [&t0] {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };
  // A traced job must actually execute — a cached result carries no event
  // timeline — so tracing skips the cache *load* (results are still stored).
  const bool tracing = !opts_.trace_dir.empty();
  if (opts_.use_cache && !tracing) {
    if (auto cached = cache_.load(spec)) {
      job_finished(entry_index, "cache", elapsed_ms());
      return *std::move(cached);
    }
  }
  TraceOptions trace;
  if (tracing) {
    trace.format = opts_.trace_format;
    trace.path = opts_.trace_dir + "/" + spec.workload + "-" + spec.hash_hex +
                 trace_file_extension(trace.format);
  }
  // The runner-wide wall limit applies to every job that didn't set its
  // own; it is host-side only and deliberately not in the JobSpec hash.
  ExperimentConfig cfg = spec.config;
  if (opts_.job_wall_limit_s > 0.0 && cfg.wall_limit_s == 0.0) {
    cfg.wall_limit_s = opts_.job_wall_limit_s;
  }
  try {
    ExperimentResult result = run_experiment(spec.workload, cfg, trace);
    if (opts_.use_cache) cache_.store(spec, result);
    job_finished(entry_index, "executed", elapsed_ms(), trace.path, {},
                 result.has_fault_counters ? &result.fault_counters : nullptr);
    return result;
  } catch (const std::exception& e) {
    job_finished(entry_index, "failed", elapsed_ms(), {}, e.what());
    throw;  // surfaces at future.get() in the submitting thread
  } catch (...) {
    job_finished(entry_index, "failed", elapsed_ms(), {}, "unknown exception");
    throw;
  }
}

void Runner::job_finished(std::size_t entry_index, const char* source,
                          double wall_ms, std::string trace_path,
                          std::string error,
                          const FaultCounters* fault_counters) {
  std::lock_guard<std::mutex> lk(mu_);
  entries_[entry_index].source = source;
  entries_[entry_index].wall_ms = wall_ms;
  entries_[entry_index].trace = std::move(trace_path);
  entries_[entry_index].error = std::move(error);
  if (fault_counters != nullptr) {
    entries_[entry_index].fault_counters = *fault_counters;
    entries_[entry_index].has_fault_counters = true;
  }
  if (source[0] == 'e') ++totals_.executed;
  if (source[0] == 'c') ++totals_.cache_hits;
  ++completed_;
  if (progress_enabled_) print_progress_locked();
}

void Runner::print_progress_locked() {
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  const std::uint64_t remaining = totals_.submitted - completed_;
  char eta[32] = "";
  if (remaining > 0 && completed_ > 0) {
    std::snprintf(eta, sizeof(eta), ", ETA %.0fs",
                  elapsed / static_cast<double>(completed_) *
                      static_cast<double>(remaining));
  }
  std::fprintf(stderr,
               "\r[runner] %llu/%llu jobs (%llu run, %llu cached%s)   ",
               static_cast<unsigned long long>(completed_),
               static_cast<unsigned long long>(totals_.submitted),
               static_cast<unsigned long long>(totals_.executed),
               static_cast<unsigned long long>(totals_.cache_hits), eta);
  std::fflush(stderr);
  progress_dirty_ = true;
}

RunnerTotals Runner::totals() const {
  std::lock_guard<std::mutex> lk(mu_);
  return totals_;
}

void Runner::write_manifest() {
  std::string path = opts_.manifest_path;
  if (const char* env = std::getenv("ASFSIM_RUN_MANIFEST");
      env != nullptr && *env != '\0') {
    path = env;
  }
  if (path == "-") return;
  if (path.empty()) path = cache_.dir() + "/last_run_manifest.json";
  if (entries_.empty()) return;

  std::error_code ec;
  std::filesystem::create_directories(
      std::filesystem::path(path).parent_path(), ec);
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) return;

  const double total_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start_)
          .count();
  char buf[160];
  out << "{\n";
  out << "  \"code_stamp\": \"" << code_version_stamp() << "\",\n";
  out << "  \"jobs\": " << jobs_ << ",\n";
  out << "  \"cache\": " << (opts_.use_cache ? "true" : "false") << ",\n";
  std::snprintf(buf, sizeof(buf), "  \"total_wall_ms\": %.3f,\n", total_ms);
  out << buf;
  out << "  \"submitted\": " << totals_.submitted << ",\n";
  out << "  \"deduped\": " << totals_.deduped << ",\n";
  out << "  \"executed\": " << totals_.executed << ",\n";
  out << "  \"cache_hits\": " << totals_.cache_hits << ",\n";
  out << "  \"entries\": [\n";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const ManifestEntry& e = entries_[i];
    std::snprintf(buf, sizeof(buf),
                  "    {\"hash\": \"%s\", \"workload\": \"%s\", "
                  "\"detector\": \"%s\", \"seed\": %llu, \"source\": \"%s\", "
                  "\"wall_ms\": %.3f",
                  e.hash_hex.c_str(), json_escape(e.workload).c_str(),
                  json_escape(e.detector).c_str(),
                  static_cast<unsigned long long>(e.seed), e.source,
                  e.wall_ms);
    out << buf;
    out << ", \"policy\": \"" << e.policy << "\"";
    if (e.cm_max_retries != 0) {
      out << ", \"cm_max_retries\": " << e.cm_max_retries;
    }
    const bool failed = e.source[0] == 'f';
    out << ", \"status\": \"" << (failed ? "failed" : "ok") << "\"";
    if (failed && !e.error.empty()) {
      // Multi-line errors (the livelock watchdog embeds its diagnostic
      // dump in what()) split into a one-line "error" plus a "diagnostic"
      // array, so `jq .error` stays a headline and the dump stays readable.
      const std::size_t nl = e.error.find('\n');
      out << ", \"error\": \"" << json_escape(e.error.substr(0, nl)) << "\"";
      if (nl != std::string::npos) {
        out << ", \"diagnostic\": [";
        std::size_t pos = nl + 1;
        bool first = true;
        while (pos <= e.error.size()) {
          const std::size_t next = e.error.find('\n', pos);
          const std::size_t end =
              next == std::string::npos ? e.error.size() : next;
          const std::string line = e.error.substr(pos, end - pos);
          if (!line.empty()) {
            out << (first ? "" : ", ") << "\"" << json_escape(line) << "\"";
            first = false;
          }
          if (next == std::string::npos) break;
          pos = next + 1;
        }
        out << "]";
      }
    }
    if (opts_.manifest_fault_counters && e.has_fault_counters) {
      const FaultCounters& fc = e.fault_counters;
      char fcbuf[512];
      std::snprintf(fcbuf, sizeof(fcbuf),
                    ", \"fault_counters\": {\"spurious_aborts\": %llu, "
                    "\"commit_aborts\": %llu, \"forced_evictions\": %llu, "
                    "\"probe_jitter_events\": %llu, "
                    "\"probe_jitter_cycles\": %llu, "
                    "\"sched_jitter_events\": %llu, "
                    "\"sched_jitter_cycles\": %llu}",
                    static_cast<unsigned long long>(fc.spurious_aborts),
                    static_cast<unsigned long long>(fc.commit_aborts),
                    static_cast<unsigned long long>(fc.forced_evictions),
                    static_cast<unsigned long long>(fc.probe_jitter_events),
                    static_cast<unsigned long long>(fc.probe_jitter_cycles),
                    static_cast<unsigned long long>(fc.sched_jitter_events),
                    static_cast<unsigned long long>(fc.sched_jitter_cycles));
      out << fcbuf;
    }
    if (!e.trace.empty()) {
      out << ", \"trace\": \"" << json_escape(e.trace) << "\"";
    }
    out << (i + 1 < entries_.size() ? "},\n" : "}\n");
  }
  out << "  ]\n}\n";
}

}  // namespace asfsim::runner
