// Experiment runner: parallel job execution + content-addressed caching.
//
// The harness and every bench binary submit (workload × config) jobs here
// instead of looping over run_experiment inline. Three layers fold away
// repeated work:
//
//   1. in-process dedup — identical specs submitted twice share one future
//      (fig8 re-running each baseline per sub-block count costs nothing);
//   2. on-disk result cache — identical specs across *processes* reuse the
//      stored result (fig9 reuses fig1's baseline runs; a warm re-run of
//      scripts/reproduce_all.sh executes zero simulations);
//   3. a fixed-size thread pool — cache misses execute concurrently.
//
// Each simulation stays single-threaded and deterministic, so results are
// byte-identical regardless of --jobs, ordering, or cache state; output
// code consumes futures in submission order and prints the same bytes the
// serial harness did. Per-job wall time and provenance (executed / cache /
// deduped) land in a machine-readable JSON manifest for CI and
// scripts/bench_snapshot.sh. See docs/runner.md.
#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "runner/job_spec.hpp"
#include "runner/result_cache.hpp"
#include "runner/thread_pool.hpp"

namespace asfsim::runner {

struct RunnerOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  unsigned jobs = 0;
  bool use_cache = true;
  /// Cache root; empty = ResultCache::default_dir().
  std::string cache_dir;
  /// Manifest output; empty = <cache_dir>/last_run_manifest.json,
  /// "-" disables. $ASFSIM_RUN_MANIFEST overrides when set.
  std::string manifest_path;
  /// Progress/ETA line on stderr; default auto (only when stderr is a
  /// TTY). $ASFSIM_PROGRESS=0/1 overrides when set.
  enum class Progress : std::uint8_t { kAuto, kOff, kOn };
  Progress progress = Progress::kAuto;
  /// When non-empty, every *executed* job streams its full event timeline
  /// to <trace_dir>/<workload>-<hash>.<ext>. Cache *loads* are skipped for
  /// traced jobs (a cached result has no timeline to replay) but results
  /// are still stored; stats stay byte-identical either way.
  std::string trace_dir;
  TraceFormat trace_format = TraceFormat::kJsonl;
  /// Per-job host wall-clock limit in seconds (0 = unlimited): jobs that
  /// exceed it fail with WallClockError instead of hanging the whole
  /// harness. $ASFSIM_JOB_TIMEOUT overrides when set. Jobs that already
  /// carry their own ExperimentConfig::wall_limit_s keep it.
  double job_wall_limit_s = 0.0;
  /// Opt-in: embed each executed fault-injected job's FaultCounters in its
  /// manifest entry (what was actually injected, not just configured).
  /// Cache hits carry no counters — the stats blob stays byte-identical to
  /// fault-free builds — so their entries simply omit the object.
  /// $ASFSIM_FAULT_COUNTERS=0/1 overrides when set.
  bool manifest_fault_counters = false;
};

/// Wraps any exception escaping a job with its (workload, detector, seed)
/// identity, so a failure in a 500-job sweep names the cell that died.
struct JobError : std::runtime_error {
  JobError(std::string wl, std::string det, std::uint64_t sd,
           const std::string& reason)
      : std::runtime_error("job " + wl + " [" + det + "] seed " +
                           std::to_string(sd) + ": " + reason),
        workload(std::move(wl)),
        detector(std::move(det)),
        seed(sd) {}

  std::string workload;
  std::string detector;
  std::uint64_t seed = 0;
};

/// Aggregate counters, readable at any time (consistent snapshot).
struct RunnerTotals {
  std::uint64_t submitted = 0;   // distinct specs accepted
  std::uint64_t deduped = 0;     // submits folded into an in-flight job
  std::uint64_t executed = 0;    // simulations actually run
  std::uint64_t cache_hits = 0;  // results served from the on-disk cache
};

class Runner {
 public:
  explicit Runner(RunnerOptions opts);
  /// Waits for all submitted jobs, then writes the manifest.
  ~Runner();

  Runner(const Runner&) = delete;
  Runner& operator=(const Runner&) = delete;

  /// Start (or join) the job for this spec. Never blocks on simulation.
  std::shared_future<ExperimentResult> submit(const std::string& workload,
                                              const ExperimentConfig& cfg);

  /// submit() + wait. A spec already submitted returns its memoized
  /// result, so "submit everything, then get() in print order" costs one
  /// simulation per distinct spec. Simulator-level failures rethrow as
  /// JobError carrying the (workload, detector, seed) identity.
  ExperimentResult get(const std::string& workload,
                       const ExperimentConfig& cfg);

  [[nodiscard]] RunnerTotals totals() const;
  [[nodiscard]] unsigned jobs() const { return jobs_; }

 private:
  struct ManifestEntry {
    std::string hash_hex;
    std::string workload;
    std::string detector;  // DetectorKind name + nsub at submit time
    std::uint64_t seed = 0;
    const char* policy = "requester-wins";  // contention policy name
    std::uint32_t cm_max_retries = 0;  // serialize threshold (0 otherwise)
    const char* source = "pending";  // executed | cache | failed
    double wall_ms = 0.0;
    std::string trace;  // trace file path (empty when tracing is off)
    std::string error;  // exception text for failed jobs (first line; any
                        // further lines land in the "diagnostic" array)
    FaultCounters fault_counters;  // executed fault-injected jobs only
    bool has_fault_counters = false;
  };

  ExperimentResult run_one(const JobSpec& spec, std::size_t entry_index);
  void job_finished(std::size_t entry_index, const char* source,
                    double wall_ms, std::string trace_path = {},
                    std::string error = {},
                    const FaultCounters* fault_counters = nullptr);
  void print_progress_locked();
  void write_manifest();

  RunnerOptions opts_;
  ResultCache cache_;
  unsigned jobs_ = 1;                 // resolved worker count
  std::unique_ptr<ThreadPool> pool_;  // destroyed first in ~Runner (drain)

  mutable std::mutex mu_;
  std::map<std::string, std::shared_future<ExperimentResult>> inflight_;
  std::vector<ManifestEntry> entries_;  // submission order
  RunnerTotals totals_;
  std::uint64_t completed_ = 0;
  bool progress_enabled_ = false;
  bool progress_dirty_ = false;  // a \r progress line needs a final \n
  std::chrono::steady_clock::time_point start_;
};

}  // namespace asfsim::runner
