// Fixed-size thread pool for the experiment runner.
//
// Host-side concurrency only: each task is one whole single-threaded,
// deterministic simulation (its own Machine), so tasks share no mutable
// state and per-job results are byte-identical no matter how many workers
// run or how the queue interleaves. The destructor drains the queue —
// every posted task runs before join — which is what lets the Runner
// collect manifests/totals without tracking individual completions.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace asfsim::runner {

class ThreadPool {
 public:
  /// `workers` is clamped to at least 1.
  explicit ThreadPool(unsigned workers);
  /// Drains remaining tasks, then joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void post(std::function<void()> task);

  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(threads_.size());
  }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace asfsim::runner
