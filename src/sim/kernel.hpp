// The cycle-driven simulation kernel.
//
// The kernel owns one slot per simulated core. A guest thread is a Task<void>
// coroutine bound to a core. Leaf awaitables (memory accesses, compute
// quanta, backoff waits) call Kernel::schedule() to ask to be resumed at a
// later cycle; the kernel's run loop pops the earliest pending resume and
// transfers control back into the guest coroutine stack.
//
// Determinism: events are ordered by (cycle, schedule-sequence-number), so a
// given workload + seed always produces the identical interleaving, cycle
// count and statistics, regardless of host conditions.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

#include "sim/task.hpp"
#include "sim/types.hpp"

namespace asfsim {

/// Thrown when run() finds live guest threads but no pending events.
struct DeadlockError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Thrown when run() exceeds its cycle limit (livelock guard).
struct CycleLimitError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Thrown by the livelock watchdog: no commit progress for watchdog_cycles.
/// what() carries the full structured diagnostic dump (docs/robustness.md).
struct LivelockError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Thrown when run() exceeds its host wall-clock budget (runner job guard).
struct WallClockError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class FaultPlan;

class Kernel {
 public:
  explicit Kernel(std::uint32_t ncores);

  [[nodiscard]] Cycle now() const { return now_; }
  [[nodiscard]] std::uint32_t ncores() const {
    return static_cast<std::uint32_t>(cores_.size());
  }

  /// Bind a guest thread to a core and arm it to start at cycle `start`.
  /// Each core runs at most one guest thread per simulation.
  void spawn(CoreId core, Task<void> root, Cycle start = 0);

  /// Ask the kernel to resume `h` on behalf of `core` at cycle `at`
  /// (clamped to now()). Exactly one resume may be pending per core.
  void schedule(CoreId core, std::coroutine_handle<> h, Cycle at);

  /// Run `fn` on behalf of `core` at cycle `at` instead of resuming a
  /// coroutine (the delayed-probe mode uses this to execute an access at
  /// probe-delivery time and only then schedule the guest's resume).
  void schedule_callback(CoreId core, std::function<void()> fn, Cycle at);

  /// Swap the coroutine that `core`'s already-pending event will resume,
  /// keeping its (cycle, sequence) slot. This is the abort fast path
  /// (docs/performance.md): when a remote conflict dooms a suspended
  /// transaction, the runtime redirects the victim's resume straight to its
  /// retry-loop frame — the abandoned attempt's coroutine chain is then
  /// destroyed instead of unwound with one TxAbort throw per nesting level.
  /// Returns false (and changes nothing) when the core has no plain pending
  /// resume — e.g. a delayed-probe callback is queued — and the caller must
  /// fall back to the exception path.
  [[nodiscard]] bool repoint(CoreId core, std::coroutine_handle<> h) {
    auto& slot = cores_[core];
    if (!slot.pending) return false;
    slot.pending = h;
    return true;
  }

  /// Run until every spawned guest thread completes. Returns the final cycle.
  /// Throws DeadlockError / CycleLimitError / any exception escaping a root.
  Cycle run(Cycle max_cycles = ~Cycle{0});

  [[nodiscard]] bool core_done(CoreId c) const { return cores_[c].finished; }
  [[nodiscard]] Cycle core_finish_cycle(CoreId c) const {
    return cores_[c].finish_cycle;
  }
  [[nodiscard]] std::uint64_t events_processed() const { return events_; }

  /// Record forward progress (a commit or a fallback-path completion). The
  /// watchdog measures "cycles since the last note_progress()".
  void note_progress() { progress_mark_ = now_; }

  /// Arm the livelock watchdog: if no note_progress() happens for `cycles`
  /// simulated cycles, run() calls `report` and throws LivelockError with
  /// the returned diagnostic dump. 0 disarms.
  void set_watchdog(Cycle cycles, std::function<std::string()> report) {
    watchdog_cycles_ = cycles;
    watchdog_report_ = std::move(report);
  }

  /// Run `fn` at least every `interval` simulated cycles (chaos harness
  /// invariant audits). `fn` throws to fail the run. 0 disarms.
  void set_audit(Cycle interval, std::function<void()> fn) {
    audit_interval_ = interval;
    audit_fn_ = std::move(fn);
  }

  /// Abort run() with WallClockError once it has consumed `seconds` of host
  /// wall-clock time (checked every few thousand events). 0 disarms.
  void set_wall_limit(double seconds) { wall_limit_s_ = seconds; }

  /// Attach a fault plan (sched_jitter stretches event delays). Null detaches.
  void set_fault_plan(FaultPlan* plan) { fault_ = plan; }

 private:
  // alignas(64): per-core event payload, written by one core's schedule()
  // and consumed by the run loop; line alignment keeps neighboring slots
  // off each other's host cache lines.
  struct alignas(64) CoreSlot {
    Task<void> root;
    std::coroutine_handle<> pending;  // continuation to resume, or null
    std::function<void()> callback;   // ... or a deferred action
    bool spawned = false;
    bool finished = false;
    Cycle finish_cycle = 0;
  };

  /// ready_[c] == kIdle means "no pending event for core c".
  static constexpr Cycle kIdle = ~Cycle{0};

  std::vector<CoreSlot> cores_;
  // The event-selection scan runs once per simulated event over every core;
  // keeping (ready cycle, FIFO seq) in dense parallel arrays makes it a
  // two-stream walk over a handful of cache lines instead of a stride
  // through the fat CoreSlot structs (docs/performance.md). Idle cores
  // carry (kIdle, ~0), which can never win the (cycle, seq) comparison.
  std::vector<Cycle> ready_;
  std::vector<std::uint64_t> seq_;
  Cycle now_ = 0;
  std::uint64_t seq_counter_ = 0;
  std::uint64_t events_ = 0;

  // Robustness hooks (docs/robustness.md). All default-off: a clean run
  // executes one integer compare per event beyond the seed behavior.
  Cycle progress_mark_ = 0;
  Cycle watchdog_cycles_ = 0;
  std::function<std::string()> watchdog_report_;
  Cycle audit_interval_ = 0;
  Cycle audit_mark_ = 0;
  std::function<void()> audit_fn_;
  double wall_limit_s_ = 0.0;
  FaultPlan* fault_ = nullptr;
};

}  // namespace asfsim
