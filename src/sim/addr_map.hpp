// Open-addressed hash map keyed by Addr for the kernel hot path.
//
// The per-access metadata maps (backing-store pages, speculative line
// metadata, dirty marks, tx write overlays) are all keyed by address and sit
// on the hottest loop in the simulator. libstdc++'s unordered_map pays a
// 64-bit prime modulo on every operation plus a pointer chase per node;
// AddrMap replaces that with Fibonacci hashing into a power-of-two flat
// slot array and linear probing — one multiply, one shift, and a contiguous
// scan that the prefetcher already has in cache (docs/performance.md).
//
// Semantics mirror the unordered_map subset the simulator uses: find /
// operator[] / erase / size / empty / clear and range-for with structured
// bindings ([key, value] via the public `first`/`second` members). Two
// deliberate differences:
//   - references and iterators are invalidated by ANY insert or erase
//     (open addressing moves entries; unordered_map only invalidated
//     iterators on rehash). Callers must not hold references across
//     mutations — the simulator never did.
//   - iteration order is slot order: deterministic for a given sequence of
//     operations (bit-reproducible runs), but different from unordered_map
//     enumeration order. Every iteration site in the tree is
//     order-insensitive or sorts explicitly (see the unordered-iteration
//     lint rule), and the kernel-identity goldens pin that this swap
//     changed no simulated outcome.
//
// The all-ones address is reserved as the empty-slot sentinel. Nothing in
// the simulator can produce it as a key: line addresses and page numbers
// are aligned/shifted physical addresses, and ~0 is used tree-wide as the
// "no address" marker already.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/types.hpp"

namespace asfsim {

/// One AddrMap slot. Exposes the unordered_map-style `first`/`second` pair;
/// structured bindings see exactly those two via the tuple protocol below,
/// keeping the bookkeeping `gen` stamp out of `[key, value]` loops.
template <typename V>
struct AddrMapEntry {
  Addr first = ~Addr{0};  // AddrMap::kEmpty
  V second{};
  // Generation stamp: the entry is live iff first != kEmpty and gen matches
  // the map's current generation. clear() just bumps the map generation —
  // O(1) — and every probe/iteration treats stale entries exactly like
  // empty slots (they terminate probe chains, and inserts reuse them). The
  // transaction hot path clears the speculative-metadata and overlay maps
  // on every attempt, so this matters.
  std::uint64_t gen = 0;
};

template <std::size_t I, typename V>
[[nodiscard]] auto& get(AddrMapEntry<V>& e) {
  if constexpr (I == 0) return e.first;
  else return e.second;
}
template <std::size_t I, typename V>
[[nodiscard]] const auto& get(const AddrMapEntry<V>& e) {
  if constexpr (I == 0) return e.first;
  else return e.second;
}

template <typename V>
class AddrMap {
  static constexpr Addr kEmpty = ~Addr{0};

 public:
  using Entry = AddrMapEntry<V>;

  template <bool Const>
  class Iter {
    using Ptr = std::conditional_t<Const, const Entry*, Entry*>;

   public:
    Iter(Ptr p, Ptr end, std::uint64_t gen) : p_(p), end_(end), gen_(gen) {
      skip();
    }
    [[nodiscard]] auto& operator*() const { return *p_; }
    [[nodiscard]] auto operator->() const { return p_; }
    Iter& operator++() {
      ++p_;
      skip();
      return *this;
    }
    [[nodiscard]] friend bool operator==(const Iter& a, const Iter& b) {
      return a.p_ == b.p_;
    }
    [[nodiscard]] friend bool operator!=(const Iter& a, const Iter& b) {
      return a.p_ != b.p_;
    }

   private:
    void skip() {
      while (p_ != end_ && (p_->first == kEmpty || p_->gen != gen_)) ++p_;
    }
    Ptr p_;
    Ptr end_;
    std::uint64_t gen_ = 0;
  };
  using iterator = Iter<false>;
  using const_iterator = Iter<true>;

  AddrMap() = default;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  [[nodiscard]] iterator begin() {
    return {slots_.data(), slots_.data() + slots_.size(), gen_};
  }
  [[nodiscard]] iterator end() {
    Entry* e = slots_.data() + slots_.size();
    return {e, e, gen_};
  }
  [[nodiscard]] const_iterator begin() const {
    return {slots_.data(), slots_.data() + slots_.size(), gen_};
  }
  [[nodiscard]] const_iterator end() const {
    const Entry* e = slots_.data() + slots_.size();
    return {e, e, gen_};
  }

  [[nodiscard]] iterator find(Addr k) {
    const std::size_t i = locate(k);
    return i == kNotFound
               ? end()
               : iterator{&slots_[i], slots_.data() + slots_.size(), gen_};
  }
  [[nodiscard]] const_iterator find(Addr k) const {
    const std::size_t i = locate(k);
    return i == kNotFound
               ? end()
               : const_iterator{&slots_[i], slots_.data() + slots_.size(),
                                gen_};
  }

  V& operator[](Addr k) {
    assert(k != kEmpty && "all-ones address is the empty-slot sentinel");
    if ((size_ + 1) * 4 > slots_.size() * 3) grow();
    std::size_t i = home(k);
    const std::size_t mask = slots_.size() - 1;
    while (live(slots_[i]) && slots_[i].first != k) {
      i = (i + 1) & mask;
    }
    Entry& e = slots_[i];
    if (!live(e) || e.first != k) {
      // Fresh slot or a stale entry from before a clear(): (re)initialize.
      e.first = k;
      e.second = V{};
      e.gen = gen_;
      ++size_;
    }
    return e.second;
  }

  std::size_t erase(Addr k) {
    const std::size_t i = locate(k);
    if (i == kNotFound) return 0;
    remove_slot(i);
    return 1;
  }

  void clear() {
    if constexpr (std::is_trivially_destructible_v<V>) {
      // O(1): stale entries become indistinguishable from empty slots.
      if (size_ != 0) ++gen_;
      size_ = 0;
    } else {
      // Non-trivial V must release resources eagerly.
      for (Entry& e : slots_) e = Entry{};
      size_ = 0;
      gen_ = 0;
    }
  }

 private:
  static constexpr std::size_t kNotFound = ~std::size_t{0};

  /// Live = occupied in the CURRENT generation. A stale entry (survivor of
  /// an O(1) clear) behaves exactly like an empty slot: it terminates probe
  /// chains and is reused by inserts, so live chains can never span one.
  [[nodiscard]] bool live(const Entry& e) const {
    return e.first != kEmpty && e.gen == gen_;
  }

  [[nodiscard]] std::size_t home(Addr k) const {
    // Fibonacci hashing: spreads aligned keys (line addresses are multiples
    // of 64) over the whole table with a single multiply.
    return static_cast<std::size_t>((k * 0x9E3779B97F4A7C15ULL) >> shift_);
  }

  [[nodiscard]] std::size_t locate(Addr k) const {
    if (size_ == 0) return kNotFound;
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = home(k);
    while (live(slots_[i])) {
      if (slots_[i].first == k) return i;
      i = (i + 1) & mask;
    }
    return kNotFound;
  }

  void grow() {
    std::vector<Entry> old = std::move(slots_);
    const std::uint64_t old_gen = gen_;
    const std::size_t cap = old.empty() ? 16 : old.size() * 2;
    slots_.clear();
    slots_.resize(cap);  // not assign(): V may be move-only (unique_ptr)
    gen_ = 0;            // rehash drops stale entries; fresh table, fresh gen
    shift_ = 64;
    for (std::size_t c = cap; c > 1; c >>= 1) --shift_;
    const std::size_t mask = cap - 1;
    for (Entry& e : old) {
      if (e.first == kEmpty || e.gen != old_gen) continue;
      std::size_t i = home(e.first);
      while (slots_[i].first != kEmpty) i = (i + 1) & mask;
      slots_[i] = std::move(e);
      slots_[i].gen = 0;
    }
  }

  // Knuth's linear-probe deletion (backward shift): pull later entries of
  // the same probe chain into the hole so lookups never need tombstones.
  // Stale entries terminate the shift scan like empty slots do.
  void remove_slot(std::size_t i) {
    const std::size_t mask = slots_.size() - 1;
    std::size_t j = i;
    for (;;) {
      j = (j + 1) & mask;
      if (!live(slots_[j])) break;
      const std::size_t h = home(slots_[j].first);
      // Entry at j stays iff its home lies cyclically in (i, j].
      const bool stays = (i <= j) ? (i < h && h <= j) : (h > i || h <= j);
      if (!stays) {
        slots_[i] = std::move(slots_[j]);
        slots_[i].gen = gen_;
        i = j;
      }
    }
    slots_[i] = Entry{};
    --size_;
  }

  std::vector<Entry> slots_;
  std::size_t size_ = 0;
  std::uint64_t gen_ = 0;  // bumped by O(1) clear(); never wraps in practice
  unsigned shift_ = 64;  // 64 - log2(capacity); recomputed on grow
};

}  // namespace asfsim

// Tuple protocol: structured bindings decompose an entry as [key, value],
// matching the unordered_map idiom the call sites were written against.
template <typename V>
struct std::tuple_size<asfsim::AddrMapEntry<V>>
    : std::integral_constant<std::size_t, 2> {};
template <typename V>
struct std::tuple_element<0, asfsim::AddrMapEntry<V>> {
  using type = asfsim::Addr;
};
template <typename V>
struct std::tuple_element<1, asfsim::AddrMapEntry<V>> {
  using type = V;
};
