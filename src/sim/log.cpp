#include "sim/log.hpp"

#include <atomic>
#include <cinttypes>
#include <cstdarg>

#include "trace/clock.hpp"

namespace asfsim {

namespace {
// Atomic: the experiment runner reads this from its worker threads.
std::atomic<LogLevel> g_level{LogLevel::kOff};
}  // namespace

LogLevel log_level() noexcept {
  return g_level.load(std::memory_order_relaxed);
}
void set_log_level(LogLevel lvl) noexcept {
  g_level.store(lvl, std::memory_order_relaxed);
}

namespace detail {
std::string log_prefix(const char* tag) {
  char buf[64];
  Cycle cycle = 0;
  if (trace::current_sim_cycle(cycle)) {
    std::snprintf(buf, sizeof buf, "[asfsim %-5s @%" PRIu64 "] ", tag,
                  static_cast<std::uint64_t>(cycle));
  } else {
    std::snprintf(buf, sizeof buf, "[asfsim %-5s] ", tag);
  }
  return buf;
}

void vlog(const char* tag, const char* fmt, ...) {
  std::fputs(log_prefix(tag).c_str(), stderr);
  va_list ap;
  va_start(ap, fmt);
  std::vfprintf(stderr, fmt, ap);
  va_end(ap);
  std::fputc('\n', stderr);
}
}  // namespace detail

}  // namespace asfsim
