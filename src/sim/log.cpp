#include "sim/log.hpp"

#include <atomic>
#include <cstdarg>

namespace asfsim {

namespace {
// Atomic: the experiment runner reads this from its worker threads.
std::atomic<LogLevel> g_level{LogLevel::kOff};
}  // namespace

LogLevel log_level() noexcept {
  return g_level.load(std::memory_order_relaxed);
}
void set_log_level(LogLevel lvl) noexcept {
  g_level.store(lvl, std::memory_order_relaxed);
}

namespace detail {
void vlog(const char* tag, const char* fmt, ...) {
  std::fprintf(stderr, "[asfsim %s] ", tag);
  va_list ap;
  va_start(ap, fmt);
  std::vfprintf(stderr, fmt, ap);
  va_end(ap);
  std::fputc('\n', stderr);
}
}  // namespace detail

}  // namespace asfsim
