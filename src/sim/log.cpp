#include "sim/log.hpp"

#include <cstdarg>

namespace asfsim {

namespace {
LogLevel g_level = LogLevel::kOff;
}  // namespace

LogLevel log_level() noexcept { return g_level; }
void set_log_level(LogLevel lvl) noexcept { g_level = lvl; }

namespace detail {
void vlog(const char* tag, const char* fmt, ...) {
  std::fprintf(stderr, "[asfsim %s] ", tag);
  va_list ap;
  va_start(ap, fmt);
  std::vfprintf(stderr, fmt, ap);
  va_end(ap);
  std::fputc('\n', stderr);
}
}  // namespace detail

}  // namespace asfsim
