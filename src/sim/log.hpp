// Lightweight trace logging, disabled by default.
#pragma once

#include <cstdio>
#include <string>

namespace asfsim {

enum class LogLevel : int { kOff = 0, kInfo = 1, kTrace = 2 };

/// Global log level; tests/benches may raise it for debugging.
LogLevel log_level() noexcept;
void set_log_level(LogLevel lvl) noexcept;

namespace detail {
/// "[asfsim info ] " or, while a Machine is running on this thread,
/// "[asfsim info  @1234] " — the cycle comes from trace::current_sim_cycle.
/// The tag column is fixed-width so multi-line output stays aligned.
[[nodiscard]] std::string log_prefix(const char* tag);
void vlog(const char* tag, const char* fmt, ...);
}  // namespace detail

#define ASFSIM_INFO(...)                                     \
  do {                                                       \
    if (::asfsim::log_level() >= ::asfsim::LogLevel::kInfo)  \
      ::asfsim::detail::vlog("info", __VA_ARGS__);           \
  } while (0)

#define ASFSIM_TRACE(...)                                    \
  do {                                                       \
    if (::asfsim::log_level() >= ::asfsim::LogLevel::kTrace) \
      ::asfsim::detail::vlog("trace", __VA_ARGS__);          \
  } while (0)

}  // namespace asfsim
