// Simulation configuration (paper Table II, "Simulation configuration").
//
// The paper models 8 AMD Opteron 2.2GHz out-of-order cores on PTLsim-ASF.
// We keep the memory-hierarchy geometry and load-to-use latencies and model
// the core with an in-order timing approximation (see DESIGN.md §2).
#pragma once

#include <cstdint>
#include <string>

#include "cm/cm_config.hpp"
#include "fault/fault_config.hpp"
#include "sim/types.hpp"

namespace asfsim {

/// Geometry and latency of one cache level. Latencies are load-to-use.
struct CacheLevelConfig {
  std::uint32_t size_bytes = 0;
  std::uint32_t line_bytes = 64;
  std::uint32_t ways = 1;
  Cycle latency = 1;

  [[nodiscard]] std::uint32_t num_sets() const {
    return size_bytes / (line_bytes * ways);
  }
};

/// Full machine configuration. Defaults reproduce paper Table II.
struct SimConfig {
  std::uint32_t ncores = 8;

  // L1 D-cache: 64KB, 64B lines, 2-way, 3-cycle load-to-use.
  CacheLevelConfig l1{64 * 1024, 64, 2, 3};
  // Private L2: 512KB, 16-way, 15-cycle load-to-use.
  CacheLevelConfig l2{512 * 1024, 64, 16, 15};
  // Private L3: 2MB, 16-way, 50-cycle load-to-use.
  CacheLevelConfig l3{2 * 1024 * 1024, 16 * 64 * 4, 50};  // fixed below
  // Main memory load-to-use latency.
  Cycle mem_latency = 210;
  // Remote-L1 cache-to-cache transfer latency (HyperTransport-ish).
  Cycle cache2cache_latency = 60;
  // Ownership-upgrade (S/O -> M) invalidation round trip.
  Cycle upgrade_latency = 20;

  // Snoop-bus occupancy: each probe broadcast holds the bus for this many
  // cycles; later probes queue behind it (0 disables contention modeling).
  Cycle bus_occupancy = 4;
  // Delayed-probe mode (0 = atomic-at-issue, the default): an access that
  // needs a broadcast stalls this many cycles BEFORE the probe executes, so
  // conflict checks see the machine state at delivery time rather than at
  // issue time. Used by bench/ablation_timing to validate the
  // atomic-at-issue substitution (DESIGN.md §2).
  Cycle probe_delay = 0;

  // Transaction bookkeeping costs.
  Cycle commit_latency = 5;   // gang-clear of speculative bits
  Cycle abort_latency = 50;   // discard + pipeline restart

  // Software backoff manager (paper §V-A: exponential backoff library).
  Cycle backoff_base = 32;
  std::uint32_t backoff_cap_shift = 8;  // max backoff = base << cap

  // Software fallback thresholds (GuestCtx::run_tx): take the serializing
  // lock after this many retries or capacity aborts of one logical
  // transaction. max_tx_retries = 0 disables the fallback entirely —
  // progress then rests on backoff alone (requester-wins has no guarantee;
  // pair with watchdog_cycles when experimenting, docs/robustness.md).
  std::uint32_t max_tx_retries = 24;
  std::uint32_t max_capacity_aborts = 3;

  // Livelock watchdog: abort the run (LivelockError + diagnostic dump) when
  // no transaction commits for this many cycles. 0 disables (default: long
  // non-transactional phases are legitimate).
  Cycle watchdog_cycles = 0;

  // Fault injection + protocol mutation (docs/robustness.md). All-zero by
  // default: a clean run never constructs a FaultPlan and its stats are
  // byte-identical to builds without the fault subsystem.
  FaultConfig fault;

  // Optional adaptive transaction scheduling (ATS) extension: serialize
  // transactions from cores whose abort EMA exceeds the threshold.
  bool enable_ats = false;
  double ats_alpha = 0.3;
  double ats_threshold = 0.5;

  // Contention management (docs/contention.md): which policy resolves true
  // conflicts (requester-wins by default — bit-identical to the pre-cm
  // tree), the bounded-retry-then-serialize threshold, the karma weight,
  // and the opt-in starvation accounting (stats-blob v5 section). All
  // fields are folded into the jobspec hash.
  CmConfig cm;

  // Conflict provenance (docs/observability.md): tag guest allocations with
  // site labels and attribute every conflict back to (site, object, line,
  // sub-block). Off by default; the disabled cost is one null check on the
  // conflict path. Does not change simulated outcomes, but it is folded into
  // the jobspec hash because it adds the opt-in stats-blob v4 section.
  bool provenance = false;

  std::uint64_t seed = 1;

  SimConfig() {
    l3.size_bytes = 2 * 1024 * 1024;
    l3.line_bytes = 64;
    l3.ways = 16;
    l3.latency = 50;
  }

  /// Sanity-check the configuration. `nsub` is the conflict detector's
  /// sub-block count (1 for per-line detectors). Returns an empty string
  /// when valid, else a description of the first problem. Machine rejects
  /// invalid configs at construction (std::invalid_argument).
  [[nodiscard]] std::string validate(std::uint32_t nsub = 1) const;
};

}  // namespace asfsim
