// Fundamental simulator-wide types.
#pragma once

#include <cstdint>

namespace asfsim {

/// Simulated clock cycle count.
using Cycle = std::uint64_t;

/// Simulated core identifier (0..ncores-1).
using CoreId = std::uint32_t;

/// Simulated physical byte address.
using Addr = std::uint64_t;

inline constexpr CoreId kInvalidCore = ~CoreId{0};

}  // namespace asfsim
