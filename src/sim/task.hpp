// Minimal lazy coroutine task type used for guest-program execution.
//
// Guest programs (simulated threads) are written as C++20 coroutines. Every
// simulated memory access or compute quantum is a *leaf awaitable* that
// suspends the whole coroutine stack and hands control back to the simulation
// kernel, which resumes the stack at a later cycle. Nested guest functions
// return Task<T> and are composed with co_await using symmetric transfer, so
// arbitrarily deep guest call chains suspend/resume as a unit.
//
// Exceptions thrown inside a task (e.g. TxAbort on a transactional conflict)
// propagate outward through the awaiting chain exactly like normal C++
// exceptions, which is how transaction aborts unwind to the retry loop.
//
// TOOLCHAIN WARNING: with GCC 12, a co_await inside a condition expression
// whose controlled branch also suspends is miscompiled (the frame's resume
// index is corrupted and the first resume silently destroys the coroutine).
// Guest code must hoist awaited values into named locals before branching on
// them. tests/test_compiler_workaround.cpp pins the working patterns.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstddef>
#include <exception>
#include <utility>

#include "sim/frame_arena.hpp"

namespace asfsim {

template <typename T>
class Task;

namespace detail {

template <typename T>
struct TaskPromiseBase {
  std::coroutine_handle<> continuation;  // resumed when this task finishes
  std::exception_ptr error;

  // Route every coroutine frame through the thread-local FrameArena instead
  // of the global allocator — frames of the same guest function recycle a
  // freelist block across transaction retries (docs/performance.md). Only
  // the sized delete is declared, so the compiler's frame deallocation is
  // guaranteed to carry the size back to the right bucket.
  static void* operator new(std::size_t n) { return FrameArena::allocate(n); }
  static void operator delete(void* p, std::size_t n) noexcept {
    FrameArena::deallocate(p, n);
  }

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() { error = std::current_exception(); }
};

}  // namespace detail

/// A lazily-started coroutine returning T. Move-only; owns the frame.
template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::TaskPromiseBase<T> {
    T value{};
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    template <typename U>
    void return_value(U&& v) {
      value = std::forward<U>(v);
    }
  };

  Task() = default;
  Task(Task&& o) noexcept : handle_(std::exchange(o.handle_, {})) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      handle_ = std::exchange(o.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const { return static_cast<bool>(handle_); }
  [[nodiscard]] bool done() const { return handle_ && handle_.done(); }
  [[nodiscard]] std::coroutine_handle<> raw_handle() const { return handle_; }

  /// Rethrows the stored exception, if the task ended with one.
  void rethrow_if_error() const {
    if (handle_ && handle_.promise().error) {
      std::rethrow_exception(handle_.promise().error);
    }
  }

  /// Result access after completion (root-task use by the kernel).
  [[nodiscard]] T& result() {
    rethrow_if_error();
    return handle_.promise().value;
  }

  // Awaiter so that Task<T> can be co_awaited from another coroutine.
  struct Awaiter {
    std::coroutine_handle<promise_type> child;
    bool await_ready() const noexcept { return !child || child.done(); }
    std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) {
      child.promise().continuation = parent;
      return child;  // symmetric transfer into the child
    }
    T await_resume() {
      if (child.promise().error) std::rethrow_exception(child.promise().error);
      return std::move(child.promise().value);
    }
  };
  Awaiter operator co_await() const noexcept { return Awaiter{handle_}; }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::TaskPromiseBase<void> {
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_void() {}
  };

  Task() = default;
  Task(Task&& o) noexcept : handle_(std::exchange(o.handle_, {})) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      handle_ = std::exchange(o.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const { return static_cast<bool>(handle_); }
  [[nodiscard]] bool done() const { return handle_ && handle_.done(); }
  [[nodiscard]] std::coroutine_handle<> raw_handle() const { return handle_; }

  void rethrow_if_error() const {
    if (handle_ && handle_.promise().error) {
      std::rethrow_exception(handle_.promise().error);
    }
  }

  struct Awaiter {
    std::coroutine_handle<promise_type> child;
    bool await_ready() const noexcept { return !child || child.done(); }
    std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) {
      child.promise().continuation = parent;
      return child;
    }
    void await_resume() {
      if (child.promise().error) std::rethrow_exception(child.promise().error);
    }
  };
  Awaiter operator co_await() const noexcept { return Awaiter{handle_}; }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

}  // namespace asfsim
