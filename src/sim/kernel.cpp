#include "sim/kernel.hpp"

#include <cassert>
#include <chrono>

#include "fault/plan.hpp"

namespace asfsim {

Kernel::Kernel(std::uint32_t ncores)
    : cores_(ncores), ready_(ncores, kIdle), seq_(ncores, ~std::uint64_t{0}) {
  if (ncores == 0) throw std::invalid_argument("Kernel: ncores must be > 0");
}

void Kernel::spawn(CoreId core, Task<void> root, Cycle start) {
  auto& slot = cores_.at(core);
  if (slot.spawned) throw std::logic_error("Kernel::spawn: core already used");
  slot.root = std::move(root);
  slot.spawned = true;
  schedule(core, slot.root.raw_handle(), start);
}

void Kernel::schedule(CoreId core, std::coroutine_handle<> h, Cycle at) {
  assert(core < cores_.size());
  auto& slot = cores_[core];  // hot path: every leaf await lands here
  assert(ready_[core] == kIdle && "one pending resume per core");
  if (fault_ != nullptr) at += fault_->sched_jitter(core);
  slot.pending = h;
  ready_[core] = at < now_ ? now_ : at;
  seq_[core] = seq_counter_++;
}

void Kernel::schedule_callback(CoreId core, std::function<void()> fn,
                               Cycle at) {
  auto& slot = cores_.at(core);
  assert(ready_[core] == kIdle && "one pending event per core");
  if (fault_ != nullptr) at += fault_->sched_jitter(core);
  slot.pending = {};
  slot.callback = std::move(fn);
  ready_[core] = at < now_ ? now_ : at;
  seq_[core] = seq_counter_++;
}

Cycle Kernel::run(Cycle max_cycles) {
  // Wall-clock watchdog escape hatch only: the reading never feeds any
  // simulated state, it just bounds how long a runaway run may burn CPU.
  // asfsim-lint: allow(nondeterministic-source)
  const auto wall_start = std::chrono::steady_clock::now();
  progress_mark_ = now_;
  audit_mark_ = now_;
  for (;;) {
    // Pick the earliest pending event; FIFO among equal cycles. Idle cores
    // hold (kIdle, ~0) and can never win the comparison, so the scan is a
    // branch-light sweep over the two dense arrays.
    CoreId best = kInvalidCore;
    Cycle best_at = kIdle;
    std::uint64_t best_seq = ~std::uint64_t{0};
    for (CoreId c = 0; c < ready_.size(); ++c) {
      const Cycle at = ready_[c];
      if (at < best_at || (at == best_at && seq_[c] < best_seq)) {
        best = c;
        best_at = at;
        best_seq = seq_[c];
      }
    }
    if (best == kInvalidCore) {
      // No events: either everything finished, or we are deadlocked.
      for (CoreId c = 0; c < cores_.size(); ++c) {
        if (cores_[c].spawned && !cores_[c].finished) {
          throw DeadlockError(
              "Kernel::run: live guest threads but no pending events "
              "(guest-side deadlock, e.g. a barrier nobody reaches)");
        }
      }
      return now_;
    }

    auto& slot = cores_[best];
    if (best_at > now_) now_ = best_at;
    if (now_ > max_cycles) {
      throw CycleLimitError("Kernel::run: cycle limit exceeded (livelock?)");
    }
    if (watchdog_cycles_ != 0 && now_ - progress_mark_ > watchdog_cycles_) {
      std::string dump =
          watchdog_report_ ? watchdog_report_() : std::string{};
      throw LivelockError(
          "Kernel::run: livelock watchdog fired — no commit progress for " +
          std::to_string(now_ - progress_mark_) + " cycles (limit " +
          std::to_string(watchdog_cycles_) + ")" +
          (dump.empty() ? "" : "\n" + dump));
    }
    if (audit_interval_ != 0 && now_ - audit_mark_ >= audit_interval_) {
      audit_mark_ = now_;
      audit_fn_();  // throws to fail the run (chaos invariant audit)
    }
    if (wall_limit_s_ > 0.0 && (events_ & 0xfff) == 0) {
      // Same wall-clock guard: aborts the process run, never the simulation
      // state.
      // asfsim-lint: allow(nondeterministic-source)
      const auto wall_now = std::chrono::steady_clock::now();
      const std::chrono::duration<double> used = wall_now - wall_start;
      if (used.count() > wall_limit_s_) {
        throw WallClockError(
            "Kernel::run: wall-clock limit exceeded (" +
            std::to_string(used.count()) + "s > " +
            std::to_string(wall_limit_s_) + "s at cycle " +
            std::to_string(now_) + ")");
      }
    }
    ready_[best] = kIdle;
    seq_[best] = ~std::uint64_t{0};
    ++events_;
    if (slot.pending) {
      const auto h = slot.pending;
      slot.pending = {};
      h.resume();  // guest runs until its next leaf suspension or completion
    } else {
      const auto cb = std::move(slot.callback);
      slot.callback = nullptr;
      cb();  // deferred action; it reschedules the guest itself
    }

    if (slot.spawned && !slot.finished && slot.root.done()) {
      slot.finished = true;
      slot.finish_cycle = now_;
      slot.root.rethrow_if_error();  // guest bugs surface immediately
    }
  }
}

}  // namespace asfsim
