#include "sim/kernel.hpp"

#include <cassert>
#include <chrono>

#include "fault/plan.hpp"

namespace asfsim {

Kernel::Kernel(std::uint32_t ncores) : cores_(ncores) {
  if (ncores == 0) throw std::invalid_argument("Kernel: ncores must be > 0");
}

void Kernel::spawn(CoreId core, Task<void> root, Cycle start) {
  auto& slot = cores_.at(core);
  if (slot.spawned) throw std::logic_error("Kernel::spawn: core already used");
  slot.root = std::move(root);
  slot.spawned = true;
  schedule(core, slot.root.raw_handle(), start);
}

void Kernel::schedule(CoreId core, std::coroutine_handle<> h, Cycle at) {
  auto& slot = cores_.at(core);
  assert(!slot.has_event && "one pending resume per core");
  if (fault_ != nullptr) at += fault_->sched_jitter(core);
  slot.pending = h;
  slot.callback = nullptr;
  slot.ready_at = at < now_ ? now_ : at;
  slot.seq = seq_counter_++;
  slot.has_event = true;
}

void Kernel::schedule_callback(CoreId core, std::function<void()> fn,
                               Cycle at) {
  auto& slot = cores_.at(core);
  assert(!slot.has_event && "one pending event per core");
  if (fault_ != nullptr) at += fault_->sched_jitter(core);
  slot.pending = {};
  slot.callback = std::move(fn);
  slot.ready_at = at < now_ ? now_ : at;
  slot.seq = seq_counter_++;
  slot.has_event = true;
}

Cycle Kernel::run(Cycle max_cycles) {
  // Wall-clock watchdog escape hatch only: the reading never feeds any
  // simulated state, it just bounds how long a runaway run may burn CPU.
  // asfsim-lint: allow(nondeterministic-source)
  const auto wall_start = std::chrono::steady_clock::now();
  progress_mark_ = now_;
  audit_mark_ = now_;
  for (;;) {
    // Pick the earliest pending event; FIFO among equal cycles.
    CoreId best = kInvalidCore;
    for (CoreId c = 0; c < cores_.size(); ++c) {
      const auto& s = cores_[c];
      if (!s.has_event) continue;
      if (best == kInvalidCore || s.ready_at < cores_[best].ready_at ||
          (s.ready_at == cores_[best].ready_at && s.seq < cores_[best].seq)) {
        best = c;
      }
    }
    if (best == kInvalidCore) {
      // No events: either everything finished, or we are deadlocked.
      for (CoreId c = 0; c < cores_.size(); ++c) {
        if (cores_[c].spawned && !cores_[c].finished) {
          throw DeadlockError(
              "Kernel::run: live guest threads but no pending events "
              "(guest-side deadlock, e.g. a barrier nobody reaches)");
        }
      }
      return now_;
    }

    auto& slot = cores_[best];
    if (slot.ready_at > now_) now_ = slot.ready_at;
    if (now_ > max_cycles) {
      throw CycleLimitError("Kernel::run: cycle limit exceeded (livelock?)");
    }
    if (watchdog_cycles_ != 0 && now_ - progress_mark_ > watchdog_cycles_) {
      std::string dump =
          watchdog_report_ ? watchdog_report_() : std::string{};
      throw LivelockError(
          "Kernel::run: livelock watchdog fired — no commit progress for " +
          std::to_string(now_ - progress_mark_) + " cycles (limit " +
          std::to_string(watchdog_cycles_) + ")" +
          (dump.empty() ? "" : "\n" + dump));
    }
    if (audit_interval_ != 0 && now_ - audit_mark_ >= audit_interval_) {
      audit_mark_ = now_;
      audit_fn_();  // throws to fail the run (chaos invariant audit)
    }
    if (wall_limit_s_ > 0.0 && (events_ & 0xfff) == 0) {
      // Same wall-clock guard: aborts the process run, never the simulation
      // state.
      // asfsim-lint: allow(nondeterministic-source)
      const auto wall_now = std::chrono::steady_clock::now();
      const std::chrono::duration<double> used = wall_now - wall_start;
      if (used.count() > wall_limit_s_) {
        throw WallClockError(
            "Kernel::run: wall-clock limit exceeded (" +
            std::to_string(used.count()) + "s > " +
            std::to_string(wall_limit_s_) + "s at cycle " +
            std::to_string(now_) + ")");
      }
    }
    slot.has_event = false;
    auto h = slot.pending;
    auto cb = std::move(slot.callback);
    slot.pending = {};
    slot.callback = nullptr;
    ++events_;
    if (cb) {
      cb();  // deferred action; it reschedules the guest itself
    } else {
      h.resume();  // guest runs until its next leaf suspension or completion
    }

    if (slot.spawned && !slot.finished && slot.root.done()) {
      slot.finished = true;
      slot.finish_cycle = now_;
      slot.root.rethrow_if_error();  // guest bugs surface immediately
    }
  }
}

}  // namespace asfsim
