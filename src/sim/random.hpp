// Deterministic PRNG for reproducible simulations (splitmix64 + xoshiro256**).
#pragma once

#include <cstdint>

namespace asfsim {

/// Small, fast, deterministic PRNG. Not cryptographic.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 1) {
    // splitmix64 to spread the seed over the full state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  std::uint32_t next_u32() { return static_cast<std::uint32_t>(next_u64() >> 32); }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) { return next_u64() % bound; }

  /// Uniform in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return next_double() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

}  // namespace asfsim
