// Slab/freelist arena for coroutine frames and per-tx scratch.
//
// Every guest function call in a simulated program materializes a Task<>
// coroutine frame, and every transaction retry re-runs that call chain, so
// frame allocation sits squarely on the kernel hot path. With the default
// global allocator each frame costs a malloc/free pair plus the cache misses
// of whatever arena malloc happens to hand back. FrameArena replaces that
// with a thread-local, size-bucketed freelist over 64 KiB slabs: after the
// first simulated call of a given shape, allocation is "pop a pointer" and
// deallocation is "push a pointer", and frames of the same guest function
// are recycled hot-in-cache across retries (docs/performance.md).
//
// Threading contract: allocate() and deallocate(p, n) must run on the same
// host thread for any given block. That holds by construction here — a
// simulation (kernel, guest tasks, detectors) lives and dies on one host
// thread; the parallel runner gives each worker thread its own simulation
// and therefore its own arena. Slabs are retained until thread exit so the
// steady state of a sweep never returns memory just to re-request it.
//
// asfsim_lint note: this IS the sanctioned allocation path inside
// transactions. The R3 global-alloc-in-tx check exempts it via the explicit
// `frame_arena` allowlist, not a blanket suppression (tools/asfsim_lint).
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace asfsim {

class FrameArena {
 public:
  /// Bucket granularity; also the alignment every bucketed block gets.
  static constexpr std::size_t kGranularity = 64;
  /// Largest bucketed size; bigger requests fall through to ::operator new
  /// (no coroutine frame in the tree is near this, but stay correct).
  static constexpr std::size_t kMaxBucketed = 4096;
  static constexpr std::size_t kSlabBytes = 64 * 1024;

  [[nodiscard]] static void* allocate(std::size_t n) {
    return local().do_allocate(n);
  }
  /// Sized deallocation only: the size routes the block back to its bucket
  /// without any per-block header. Coroutine frame deallocation is sized by
  /// the compiler; other users must remember their request size.
  static void deallocate(void* p, std::size_t n) noexcept {
    local().do_deallocate(p, n);
  }

  /// Counters for tests and the performance doc; per host thread.
  struct Telemetry {
    std::uint64_t bucket_allocs = 0;    // requests served from buckets
    std::uint64_t bucket_reuses = 0;    // ... of which hit a freelist
    std::uint64_t fallback_allocs = 0;  // > kMaxBucketed, global allocator
    std::uint64_t slabs = 0;            // slabs carved so far
  };
  [[nodiscard]] static Telemetry telemetry() { return local().stats_; }

 private:
  static constexpr std::size_t kBuckets = kMaxBucketed / kGranularity;

  struct FreeNode {
    FreeNode* next;
  };

  FrameArena() = default;
  ~FrameArena() {
    for (void* s : slabs_) {
      ::operator delete(s, std::align_val_t{kGranularity});
    }
  }
  FrameArena(const FrameArena&) = delete;
  FrameArena& operator=(const FrameArena&) = delete;

  static FrameArena& local() {
    thread_local FrameArena arena;
    return arena;
  }

  [[nodiscard]] static std::size_t bucket_of(std::size_t n) {
    return (n + kGranularity - 1) / kGranularity - 1;
  }

  void* do_allocate(std::size_t n) {
    if (n == 0) n = 1;
    if (n > kMaxBucketed) {
      ++stats_.fallback_allocs;
      return ::operator new(n);
    }
    ++stats_.bucket_allocs;
    const std::size_t b = bucket_of(n);
    if (FreeNode* f = free_[b]) {
      free_[b] = f->next;
      ++stats_.bucket_reuses;
      return f;
    }
    const std::size_t bytes = (b + 1) * kGranularity;
    if (bump_remaining_ < bytes) {
      // The slab tail we abandon here is < kMaxBucketed of the 64 KiB slab;
      // not worth splintering into smaller buckets.
      auto* slab = static_cast<std::byte*>(
          ::operator new(kSlabBytes, std::align_val_t{kGranularity}));
      slabs_.push_back(slab);
      ++stats_.slabs;
      bump_ = slab;
      bump_remaining_ = kSlabBytes;
    }
    void* p = bump_;
    bump_ += bytes;
    bump_remaining_ -= bytes;
    return p;
  }

  void do_deallocate(void* p, std::size_t n) noexcept {
    if (n == 0) n = 1;
    if (n > kMaxBucketed) {
      ::operator delete(p);
      return;
    }
    auto* node = static_cast<FreeNode*>(p);
    node->next = free_[bucket_of(n)];
    free_[bucket_of(n)] = node;
  }

  FreeNode* free_[kBuckets] = {};
  std::byte* bump_ = nullptr;
  std::size_t bump_remaining_ = 0;
  std::vector<void*> slabs_;
  Telemetry stats_;
};

}  // namespace asfsim
