#include "sim/config.hpp"

#include "mem/addr.hpp"

namespace asfsim {

namespace {

std::string check_level(const char* name, const CacheLevelConfig& c) {
  if (c.size_bytes == 0) return std::string(name) + ": size_bytes must be > 0";
  if (c.ways == 0) return std::string(name) + ": ways must be > 0";
  if (c.line_bytes == 0 || (c.line_bytes & (c.line_bytes - 1)) != 0) {
    return std::string(name) + ": line_bytes must be a power of two";
  }
  if (c.size_bytes % (c.line_bytes * c.ways) != 0) {
    return std::string(name) +
           ": size_bytes must be a multiple of line_bytes * ways";
  }
  return {};
}

std::string check_rate(const char* name, double rate) {
  if (rate < 0.0 || rate > 1.0) {
    return std::string("fault.") + name + " must be in [0, 1]";
  }
  return {};
}

}  // namespace

std::string SimConfig::validate(std::uint32_t nsub) const {
  if (ncores == 0) return "ncores must be > 0";
  for (const auto& [name, level] :
       {std::pair<const char*, const CacheLevelConfig*>{"l1", &l1},
        {"l2", &l2},
        {"l3", &l3}}) {
    if (std::string err = check_level(name, *level); !err.empty()) return err;
  }
  // Byte masks and sub-block math assume the global line size.
  if (l1.line_bytes != kLineBytes) {
    return "l1.line_bytes must be " + std::to_string(kLineBytes) +
           " (ByteMask width)";
  }
  if (nsub == 0 || (nsub & (nsub - 1)) != 0) {
    return "nsub must be a power of two, got " + std::to_string(nsub);
  }
  if (nsub > kMaxSubBlocks) {
    return "nsub must be <= " + std::to_string(kMaxSubBlocks) + ", got " +
           std::to_string(nsub);
  }
  if (nsub > l1.line_bytes) {
    return "nsub (" + std::to_string(nsub) + ") exceeds the line size (" +
           std::to_string(l1.line_bytes) + " bytes)";
  }
  if (backoff_base == 0) {
    return "backoff_base must be > 0 (zero backoff livelocks under "
           "requester-wins)";
  }
  if (max_tx_retries != 0 && max_capacity_aborts == 0) {
    return "max_capacity_aborts must be > 0 when the fallback is enabled";
  }
  // Contention-management contradictions: a knob combination whose stated
  // bound could never trip is rejected up front rather than silently run
  // (docs/contention.md §5).
  if (cm.max_retries == 0) {
    return cm.policy == CmPolicyKind::kSerialize
               ? "cm.max_retries must be > 0: the serialize fallback could "
                 "never engage"
               : "cm.max_retries must be > 0 (--cm-max-retries 0 makes the "
                 "serialize threshold unreachable; pick a policy bound >= 1)";
  }
  if (cm.policy == CmPolicyKind::kSerialize && max_capacity_aborts == 0) {
    return "max_capacity_aborts must be > 0 under --cm-policy serialize "
           "(the policy re-enables the fallback path)";
  }
  if (cm.policy == CmPolicyKind::kSerialize && watchdog_cycles != 0) {
    // Floor on the time the serialize path needs to produce its first
    // commit: max_retries aborted attempts, each costing at least the
    // abort penalty plus the minimum backoff sleep.
    const Cycle floor =
        static_cast<Cycle>(cm.max_retries + 1) * (abort_latency + backoff_base);
    if (watchdog_cycles < floor) {
      return "watchdog_cycles (" + std::to_string(watchdog_cycles) +
             ") is smaller than the serialize fallback could ever need (" +
             std::to_string(floor) +
             " = (cm.max_retries+1)*(abort_latency+backoff_base)); the "
             "watchdog would fire before the guaranteed-progress path engages";
    }
  }
  if (enable_ats && (ats_alpha <= 0.0 || ats_alpha > 1.0)) {
    return "ats_alpha must be in (0, 1]";
  }
  for (const auto& [name, rate] :
       {std::pair<const char*, double>{"spurious_abort_rate",
                                       fault.spurious_abort_rate},
        {"commit_abort_rate", fault.commit_abort_rate},
        {"evict_rate", fault.evict_rate}}) {
    if (std::string err = check_rate(name, rate); !err.empty()) return err;
  }
  return {};
}

}  // namespace asfsim
