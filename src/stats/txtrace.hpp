// Transaction event trace: a bounded ring of begin/commit/abort/conflict
// events for post-mortem debugging of contention pathologies.
//
// Since the trace subsystem landed, TxTrace is one TraceSink among three
// (see src/trace/ and docs/observability.md): it subscribes to the full
// event stream and keeps the last `depth` lifecycle events in memory,
// mapped down to the legacy five-kind vocabulary so its dump format —
// relied on by tests — is unchanged. Disabled by default (zero overhead
// beyond a null check); enabled via Machine::enable_trace().
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "core/conflict.hpp"
#include "sim/types.hpp"
#include "trace/sink.hpp"

namespace asfsim {

enum class TxEventKind : std::uint8_t {
  kBegin = 0,
  kCommit,
  kAbort,
  kConflict,  // victim's view: who killed it, where, why
  kFallback,
};

[[nodiscard]] const char* to_string(TxEventKind k);

struct TxEvent {
  TxEventKind kind = TxEventKind::kBegin;
  CoreId core = kInvalidCore;       // acting core (victim for kConflict)
  CoreId other = kInvalidCore;      // requester for kConflict
  Cycle cycle = 0;
  AbortCause cause = AbortCause::kConflict;  // for kAbort
  ConflictType type = ConflictType::kWAR;    // for kConflict
  bool is_false = false;                     // for kConflict
  Addr line = 0;                             // for kConflict
};

class TxTrace final : public trace::TraceSink {
 public:
  explicit TxTrace(std::size_t depth) : ring_(depth) {}

  void record(const TxEvent& ev) {
    if (ring_.empty()) return;
    ring_[next_ % ring_.size()] = ev;
    ++next_;
  }

  /// TraceSink: record the lifecycle subset of the rich event stream
  /// (counter samples, backoff spans etc. don't fit the ring's vocabulary
  /// and are skipped).
  void on_event(const trace::TraceEvent& ev) override;

  /// Events in chronological order (oldest retained first).
  [[nodiscard]] std::vector<TxEvent> events() const;
  [[nodiscard]] std::uint64_t total_recorded() const { return next_; }
  [[nodiscard]] std::size_t depth() const { return ring_.size(); }

  /// Human-readable dump of the retained window.
  void print(std::ostream& os) const;

 private:
  std::vector<TxEvent> ring_;
  std::uint64_t next_ = 0;
};

}  // namespace asfsim
