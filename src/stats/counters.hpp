// Run statistics: everything needed to regenerate the paper's tables/figures.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/conflict.hpp"
#include "sim/types.hpp"

namespace asfsim {

/// Collected over one simulation run. Cache-line aligned: the parallel
/// runner hammers one Stats per worker, and 64-byte alignment keeps two
/// workers' hot counters off the same host line (docs/performance.md).
class alignas(64) Stats {
 public:
  // ---- transactions ----------------------------------------------------
  std::uint64_t tx_attempts = 0;   // transaction launches incl. retries
  std::uint64_t tx_commits = 0;
  std::uint64_t tx_aborts = 0;
  /// Transactions that completed via the serializing software fallback
  /// (lock elision) after repeated capacity aborts (ASF is best-effort).
  std::uint64_t fallback_runs = 0;
  /// Transactions dispatched through the ATS serializing queue (extension).
  std::uint64_t ats_serialized = 0;
  std::array<std::uint64_t, 4> aborts_by_cause{};  // indexed by AbortCause

  // ---- conflicts (one record per aborted victim) -----------------------
  std::uint64_t conflicts_total = 0;
  std::uint64_t conflicts_false = 0;
  std::array<std::uint64_t, 3> false_by_type{};  // indexed by ConflictType
  std::array<std::uint64_t, 3> true_by_type{};

  /// False conflicts a finer-grained detector declined to signal although
  /// baseline ASF's per-line check would have (paper's "reduced" conflicts).
  std::uint64_t false_conflicts_avoided = 0;

  // ---- memory system ----------------------------------------------------
  std::uint64_t accesses = 0;
  std::uint64_t tx_accesses = 0;
  std::uint64_t l1_hits = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t l3_hits = 0;
  std::uint64_t mem_fetches = 0;
  std::uint64_t c2c_transfers = 0;
  std::uint64_t probes_sent = 0;
  std::uint64_t piggyback_messages = 0;  // load responses carrying S-WR masks
  std::uint64_t dirty_refetches = 0;     // local hits forced to miss by Dirty
  std::uint64_t upgrades = 0;
  /// Cycles requesters stalled waiting for the snoop bus (contention).
  Cycle bus_wait_cycles = 0;

  // ---- figures-oriented histograms --------------------------------------
  /// Fig 8 (analytical): of the false conflicts seen by THIS run's
  /// detector, how many would still conflict when both access masks are
  /// quantized to N sub-blocks. Index i corresponds to N = 1<<i
  /// (1, 2, 4, 8, 16); index 0 therefore equals conflicts_false.
  std::array<std::uint64_t, 5> false_surviving_at{};

  /// Fig 4: false-conflict count by conflicting line address.
  std::unordered_map<Addr, std::uint64_t> false_by_line;
  /// Fig 5: transactional-access count by start byte offset within the line.
  std::array<std::uint64_t, 64> tx_access_by_offset{};
  /// Fig 3 (enabled on demand): cycles of tx launches / false conflicts.
  bool record_timeseries = false;
  std::vector<Cycle> tx_start_cycles;
  std::vector<Cycle> false_conflict_cycles;

  // ---- outcome -----------------------------------------------------------
  Cycle total_cycles = 0;
  /// Sum of in-transaction cycles over all attempts (committed + aborted);
  /// tx_busy_cycles / (ncores * total_cycles) is the transactional duty.
  Cycle tx_busy_cycles = 0;

  // ---- per-attempt profile (trace subsystem; always collected) -----------
  /// log2-bucketed attempt durations: bucket 0 holds value 0, bucket i
  /// holds values in [2^(i-1), 2^i), the last bucket absorbs the tail.
  std::array<std::uint64_t, 32> tx_duration_hist{};
  /// log2-bucketed read/write-set footprints (lines) at attempt end.
  std::array<std::uint64_t, 16> tx_read_lines_hist{};
  std::array<std::uint64_t, 16> tx_write_lines_hist{};
  /// In-transaction cycles of attempts that ended in an abort.
  Cycle wasted_cycles = 0;
  /// Abort-penalty + backoff stall cycles between retry attempts.
  Cycle backoff_cycles = 0;

  // ---- per-transaction latency (OLTP reporting; always collected) --------
  /// log2-bucketed LOGICAL transaction latencies: first hardware attempt's
  /// begin to commit (or fallback completion), so retries and backoff count
  /// toward the latency of the one logical transaction. Same bucketing as
  /// tx_duration_hist.
  std::array<std::uint64_t, 32> tx_latency_hist{};

  // ---- conflict provenance (opt-in; docs/observability.md) ---------------
  /// Set when the run executed with SimConfig::provenance. The vectors
  /// below are filled by prov::ProvCollector::flush and serialize as the
  /// stats blob's v4 section; when false they stay empty and the blob
  /// keeps the v3 header byte-for-byte (kernel-identity goldens).
  bool prov_enabled = false;
  /// Site names, indexed by prov::SiteId (row index into prov_site_table).
  std::vector<std::string> prov_site_names;
  /// Per-site rows, 11 values each: obj_size, objects, bytes,
  /// false WAR/RAW/WAW, true WAR/RAW/WAW, avoided, wasted cycles.
  std::vector<std::uint64_t> prov_site_table;
  /// Ranked hot lines, 4 values each: line, victim site, false, true
  /// (top 32 by total conflicts; deterministic tie-break on line, site).
  std::vector<std::uint64_t> prov_hot_lines;
  /// Site-pair matrix, 4 values each: requester site, victim site,
  /// false, true (every observed pair, key-sorted).
  std::vector<std::uint64_t> prov_pairs;

  // ---- contention management (opt-in; docs/contention.md) ----------------
  /// Set when the run executed with SimConfig::cm.stats. The fields below
  /// are flushed from the runtime's always-on per-core accounting at run
  /// end and serialize as the stats blob's v5 section; when false they stay
  /// empty/zero and the blob keeps its v3/v4 header byte-for-byte.
  bool cm_enabled = false;
  /// Per-core maximum run of consecutive non-lock-wait aborts (starvation
  /// headline; the chaos oracle audits it against the policy's bound).
  std::vector<std::uint64_t> cm_max_consec_aborts;
  /// Per-core cumulative in-transaction cycles burned by aborted attempts
  /// (fairness: see cm_wasted_gini()).
  std::vector<std::uint64_t> cm_wasted_by_core;
  /// Per-core cycle of the first commit/fallback completion (time-to-first-
  /// commit tail); 0 = the core never completed a transaction.
  std::vector<std::uint64_t> cm_first_commit_cycle;
  /// Conflicts routed through the ContentionPolicy (0 under the default
  /// requester-wins fast path, which never consults the policy object).
  std::uint64_t cm_policy_decisions = 0;
  /// Decisions where the policy ruled the REQUESTER the loser.
  std::uint64_t cm_requester_losses = 0;
  /// Fallback-lock acquisitions (the serialize escalation engaging).
  std::uint64_t cm_fallback_acquisitions = 0;

  // ---- hooks -------------------------------------------------------------
  void on_tx_attempt(Cycle now);
  void on_tx_commit();
  void on_tx_abort(AbortCause cause);
  void on_conflict(const ConflictRecord& rec);
  void on_avoided_false_conflict();
  void on_tx_access(std::uint32_t line_off);
  /// Attempt end (commit or abort): duration and footprint histograms.
  void on_attempt_end(Cycle duration, std::uint32_t read_lines,
                      std::uint32_t write_lines, bool aborted);
  void on_backoff(Cycle wait);
  /// Logical-transaction completion (commit or fallback): whole latency
  /// including retries and backoff.
  void on_tx_latency(Cycle latency);

  [[nodiscard]] static std::uint32_t log2_bucket(std::uint64_t v,
                                                 std::size_t nbuckets);

  // ---- derived -----------------------------------------------------------
  [[nodiscard]] double false_conflict_rate() const {
    return conflicts_total == 0
               ? 0.0
               : static_cast<double>(conflicts_false) / conflicts_total;
  }
  [[nodiscard]] double avg_retries() const {
    return tx_commits == 0
               ? 0.0
               : static_cast<double>(tx_attempts - tx_commits) / tx_commits;
  }
  /// Simulated clock rate used to convert cycles into wall time for the
  /// throughput metric (paper's 2.2 GHz Opteron cores).
  static constexpr double kSimClockHz = 2.2e9;
  /// Committed transactions per SIMULATED second (commits * hz / cycles).
  [[nodiscard]] double commits_per_simsec() const;
  /// Approximate p-th latency percentile (p in [0, 1]) in cycles, from
  /// tx_latency_hist with linear interpolation within the log2 bucket.
  [[nodiscard]] double latency_percentile(double p) const;
  /// Gini coefficient of cm_wasted_by_core (0 = every core burned the same
  /// wasted cycles, → 1 = one core absorbed all the waste). 0 when the v5
  /// section is off or fewer than two cores reported.
  [[nodiscard]] double cm_wasted_gini() const;
};

}  // namespace asfsim
