#include "stats/counters.hpp"

#include <algorithm>

namespace asfsim {

void Stats::on_tx_attempt(Cycle now) {
  ++tx_attempts;
  if (record_timeseries) tx_start_cycles.push_back(now);
}

void Stats::on_tx_commit() { ++tx_commits; }

void Stats::on_tx_abort(AbortCause cause) {
  ++tx_aborts;
  ++aborts_by_cause[static_cast<std::size_t>(cause)];
}

void Stats::on_conflict(const ConflictRecord& rec) {
  ++conflicts_total;
  if (rec.is_false) {
    ++conflicts_false;
    for (std::uint32_t i = 0; i < 5; ++i) {
      const std::uint32_t nsub = 1u << i;
      if (quantize(rec.probe_bytes, nsub) &
          quantize(rec.victim_bytes, nsub)) {
        ++false_surviving_at[i];
      }
    }
    ++false_by_type[static_cast<std::size_t>(rec.type)];
    ++false_by_line[rec.line];
    if (record_timeseries) false_conflict_cycles.push_back(rec.cycle);
  } else {
    ++true_by_type[static_cast<std::size_t>(rec.type)];
  }
}

void Stats::on_avoided_false_conflict() { ++false_conflicts_avoided; }

void Stats::on_tx_access(std::uint32_t line_off) {
  ++tx_access_by_offset[line_off & 63];
}

std::uint32_t Stats::log2_bucket(std::uint64_t v, std::size_t nbuckets) {
  std::uint32_t b = 0;
  while (v > 0 && b + 1 < nbuckets) {
    v >>= 1;
    ++b;
  }
  return b;
}

void Stats::on_attempt_end(Cycle duration, std::uint32_t read_lines,
                           std::uint32_t write_lines, bool aborted) {
  ++tx_duration_hist[log2_bucket(duration, tx_duration_hist.size())];
  ++tx_read_lines_hist[log2_bucket(read_lines, tx_read_lines_hist.size())];
  ++tx_write_lines_hist[log2_bucket(write_lines, tx_write_lines_hist.size())];
  if (aborted) wasted_cycles += duration;
}

void Stats::on_backoff(Cycle wait) { backoff_cycles += wait; }

void Stats::on_tx_latency(Cycle latency) {
  ++tx_latency_hist[log2_bucket(latency, tx_latency_hist.size())];
}

double Stats::commits_per_simsec() const {
  if (total_cycles == 0) return 0.0;
  return static_cast<double>(tx_commits) * kSimClockHz /
         static_cast<double>(total_cycles);
}

double Stats::latency_percentile(double p) const {
  std::uint64_t total = 0;
  for (const std::uint64_t c : tx_latency_hist) total += c;
  if (total == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  // Rank of the requested percentile, 1-based over the sorted samples.
  const double rank = p * static_cast<double>(total - 1) + 1.0;
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < tx_latency_hist.size(); ++b) {
    const std::uint64_t count = tx_latency_hist[b];
    if (count == 0) continue;
    if (static_cast<double>(seen + count) >= rank) {
      // Bucket 0 holds exactly the value 0; bucket b holds [2^(b-1), 2^b).
      if (b == 0) return 0.0;
      const double lo = static_cast<double>(std::uint64_t{1} << (b - 1));
      const double width = lo;  // bucket width equals its lower bound
      const double frac = (rank - static_cast<double>(seen)) /
                          static_cast<double>(count);
      return lo + width * frac;
    }
    seen += count;
  }
  return static_cast<double>(std::uint64_t{1} << (tx_latency_hist.size() - 1));
}

double Stats::cm_wasted_gini() const {
  const std::size_t n = cm_wasted_by_core.size();
  if (n < 2) return 0.0;
  std::vector<std::uint64_t> sorted = cm_wasted_by_core;
  std::sort(sorted.begin(), sorted.end());
  // Gini = sum_i (2i - n + 1) * x_i / (n * sum x) over ascending x_i
  // (0-based i). Exact for our small n; no sampling correction.
  double weighted = 0.0, total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(sorted[i]);
    weighted += (2.0 * static_cast<double>(i) -
                 static_cast<double>(n) + 1.0) * x;
    total += x;
  }
  if (total == 0.0) return 0.0;
  return weighted / (static_cast<double>(n) * total);
}

}  // namespace asfsim
