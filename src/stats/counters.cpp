#include "stats/counters.hpp"

namespace asfsim {

void Stats::on_tx_attempt(Cycle now) {
  ++tx_attempts;
  if (record_timeseries) tx_start_cycles.push_back(now);
}

void Stats::on_tx_commit() { ++tx_commits; }

void Stats::on_tx_abort(AbortCause cause) {
  ++tx_aborts;
  ++aborts_by_cause[static_cast<std::size_t>(cause)];
}

void Stats::on_conflict(const ConflictRecord& rec) {
  ++conflicts_total;
  if (rec.is_false) {
    ++conflicts_false;
    for (std::uint32_t i = 0; i < 5; ++i) {
      const std::uint32_t nsub = 1u << i;
      if (quantize(rec.probe_bytes, nsub) &
          quantize(rec.victim_bytes, nsub)) {
        ++false_surviving_at[i];
      }
    }
    ++false_by_type[static_cast<std::size_t>(rec.type)];
    ++false_by_line[rec.line];
    if (record_timeseries) false_conflict_cycles.push_back(rec.cycle);
  } else {
    ++true_by_type[static_cast<std::size_t>(rec.type)];
  }
}

void Stats::on_avoided_false_conflict() { ++false_conflicts_avoided; }

void Stats::on_tx_access(std::uint32_t line_off) {
  ++tx_access_by_offset[line_off & 63];
}

std::uint32_t Stats::log2_bucket(std::uint64_t v, std::size_t nbuckets) {
  std::uint32_t b = 0;
  while (v > 0 && b + 1 < nbuckets) {
    v >>= 1;
    ++b;
  }
  return b;
}

void Stats::on_attempt_end(Cycle duration, std::uint32_t read_lines,
                           std::uint32_t write_lines, bool aborted) {
  ++tx_duration_hist[log2_bucket(duration, tx_duration_hist.size())];
  ++tx_read_lines_hist[log2_bucket(read_lines, tx_read_lines_hist.size())];
  ++tx_write_lines_hist[log2_bucket(write_lines, tx_write_lines_hist.size())];
  if (aborted) wasted_cycles += duration;
}

void Stats::on_backoff(Cycle wait) { backoff_cycles += wait; }

}  // namespace asfsim
