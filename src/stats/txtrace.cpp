#include "stats/txtrace.hpp"

#include <ostream>

namespace asfsim {

const char* to_string(TxEventKind k) {
  switch (k) {
    case TxEventKind::kBegin: return "begin";
    case TxEventKind::kCommit: return "commit";
    case TxEventKind::kAbort: return "abort";
    case TxEventKind::kConflict: return "conflict";
    case TxEventKind::kFallback: return "fallback";
  }
  return "?";
}

void TxTrace::on_event(const trace::TraceEvent& ev) {
  TxEvent legacy;
  legacy.core = ev.core;
  legacy.cycle = ev.cycle;
  switch (ev.kind) {
    case trace::TraceEventKind::kBegin:
      legacy.kind = TxEventKind::kBegin;
      break;
    case trace::TraceEventKind::kCommit:
      legacy.kind = TxEventKind::kCommit;
      break;
    case trace::TraceEventKind::kAbort:
      legacy.kind = TxEventKind::kAbort;
      legacy.cause = ev.cause;
      break;
    case trace::TraceEventKind::kConflict:
      legacy.kind = TxEventKind::kConflict;
      legacy.other = ev.other;
      legacy.type = ev.type;
      legacy.is_false = ev.is_false;
      legacy.line = ev.line;
      break;
    case trace::TraceEventKind::kFallback:
      legacy.kind = TxEventKind::kFallback;
      legacy.cause = AbortCause::kCapacity;
      break;
    default:
      return;  // richer kinds don't fit the legacy ring vocabulary
  }
  record(legacy);
}

std::vector<TxEvent> TxTrace::events() const {
  std::vector<TxEvent> out;
  if (ring_.empty() || next_ == 0) return out;
  const std::size_t n = next_ < ring_.size() ? next_ : ring_.size();
  const std::size_t start = next_ < ring_.size() ? 0 : next_ % ring_.size();
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void TxTrace::print(std::ostream& os) const {
  for (const TxEvent& ev : events()) {
    os << "cycle " << ev.cycle << "  core " << ev.core << "  "
       << to_string(ev.kind);
    switch (ev.kind) {
      case TxEventKind::kAbort:
        os << " (" << to_string(ev.cause) << ")";
        break;
      case TxEventKind::kConflict:
        os << " " << (ev.is_false ? "FALSE " : "true ") << to_string(ev.type)
           << " by core " << ev.other << " on line 0x" << std::hex << ev.line
           << std::dec;
        break;
      default:
        break;
    }
    os << "\n";
  }
}

}  // namespace asfsim
