// Small text-table and CSV helpers shared by the bench harness.
#pragma once

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "fault/plan.hpp"

namespace asfsim {

/// Opt-in text-report section for injected-fault accounting. Only executed
/// fault-injected runs carry counters (cache hits come back with
/// has_fault_counters == false), so callers print this per-row on demand.
void print_fault_counters(std::ostream& os, const FaultCounters& fc);

/// Fixed-width text table: set headers, add string rows, print.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

  /// Formatting helpers.
  static std::string pct(double fraction, int decimals = 1);
  static std::string num(double v, int decimals = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// CSV writer; silently inactive when the path is empty.
class CsvWriter {
 public:
  CsvWriter(const std::string& dir, const std::string& name);
  void row(const std::vector<std::string>& cells);
  [[nodiscard]] bool active() const { return out_.is_open(); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::ofstream out_;
  std::string path_;
};

}  // namespace asfsim
