#include "stats/serialize.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <utility>
#include <vector>

namespace asfsim {

namespace {

// v2: appended the per-attempt profile fields (trace subsystem).
// v3: appended tx_latency_hist (per-transaction latency, OLTP reporting).
// v4: appended the opt-in conflict-provenance section. The v4 header is
// only written when the section is present (prov_enabled), so provenance-
// off blobs stay byte-identical to v3 — the kernel-identity goldens hash
// them — while on/off blobs differ only in the version digit and the
// appended section. Older blobs still fail deserialization cleanly; the
// result cache never serves them anyway (the code stamp changed with the
// code).
// v5: appended the opt-in contention-management section (--cm-stats). Like
// v4, the v5 header is only written when its section is present, so cm-off
// blobs remain byte-identical to v4 (or v3 when provenance is off too). A
// v5 blob always carries an explicit prov_present flag so the two opt-in
// sections compose in every combination.
constexpr const char* kHeaderV3 = "asfsim-stats v3";
constexpr const char* kHeaderV4 = "asfsim-stats v4";
constexpr const char* kHeaderV5 = "asfsim-stats v5";

// Charset of serialized site-name tokens; matches the sanitizer in
// prov/site_registry.cpp so round-trips are exact.
bool name_char_ok(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '.' || c == ':' ||
         c == '(' || c == ')' || c == '-';
}

void put(std::string& out, const char* key, std::uint64_t v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s %" PRIu64 "\n", key, v);
  out += buf;
}

template <typename Range>
void put_seq(std::string& out, const char* key, const Range& values) {
  out += key;
  char buf[32];
  std::snprintf(buf, sizeof(buf), " %zu",
                static_cast<std::size_t>(std::size(values)));
  out += buf;
  for (const std::uint64_t v : values) {
    std::snprintf(buf, sizeof(buf), " %" PRIu64, v);
    out += buf;
  }
  out += '\n';
}

/// Cursor over the blob; every read checks syntax so corruption surfaces
/// as a false return from deserialize_stats, never as garbage stats.
class Reader {
 public:
  explicit Reader(std::string_view blob) : rest_(blob) {}

  bool literal(std::string_view text) {
    if (rest_.substr(0, text.size()) != text) return false;
    rest_.remove_prefix(text.size());
    return true;
  }

  bool u64(std::uint64_t& v) {
    if (!literal(" ")) return false;
    if (rest_.empty() || rest_[0] < '0' || rest_[0] > '9') return false;
    if (rest_[0] == '0' && rest_.size() > 1 && rest_[1] >= '0' &&
        rest_[1] <= '9') {
      return false;  // leading zero: serialize_stats never writes one
    }
    v = 0;
    while (!rest_.empty() && rest_[0] >= '0' && rest_[0] <= '9') {
      const auto d = static_cast<std::uint64_t>(rest_[0] - '0');
      if (v > (~std::uint64_t{0} - d) / 10) return false;  // would wrap
      v = v * 10 + d;
      rest_.remove_prefix(1);
    }
    return true;
  }

  bool field(std::string_view key, std::uint64_t& v) {
    return literal(key) && u64(v) && literal("\n");
  }

  template <typename Range>
  bool fixed_seq(std::string_view key, Range& values) {
    std::uint64_t n = 0;
    if (!literal(key) || !u64(n)) return false;
    if (n != static_cast<std::uint64_t>(std::size(values))) return false;
    for (auto& v : values) {
      if (!u64(v)) return false;
    }
    return literal("\n");
  }

  bool var_seq(std::string_view key, std::vector<Cycle>& values) {
    std::uint64_t n = 0;
    if (!literal(key) || !u64(n)) return false;
    // Each value needs >= 2 bytes of input (" 0"), so a count larger than
    // the remaining blob is corruption — reject it before reserving, or a
    // flipped count byte would turn into a giant allocation.
    if (n > rest_.size() / 2) return false;
    values.clear();
    values.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      std::uint64_t v = 0;
      if (!u64(v)) return false;
      values.push_back(v);
    }
    return literal("\n");
  }

  /// Whitespace-delimited name tokens (site names; restricted charset).
  bool name_seq(std::string_view key, std::vector<std::string>& values) {
    std::uint64_t n = 0;
    if (!literal(key) || !u64(n)) return false;
    if (n > rest_.size() / 2) return false;  // same bound as var_seq
    values.clear();
    values.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      if (!literal(" ")) return false;
      std::size_t len = 0;
      while (len < rest_.size() && name_char_ok(rest_[len])) ++len;
      if (len == 0) return false;
      values.emplace_back(rest_.substr(0, len));
      rest_.remove_prefix(len);
    }
    return literal("\n");
  }

  [[nodiscard]] bool done() const { return rest_.empty(); }

 private:
  std::string_view rest_;
};

}  // namespace

std::string serialize_stats(const Stats& s) {
  std::string out;
  out.reserve(2048);
  out += s.cm_enabled ? kHeaderV5
                      : (s.prov_enabled ? kHeaderV4 : kHeaderV3);
  out += '\n';
  put(out, "tx_attempts", s.tx_attempts);
  put(out, "tx_commits", s.tx_commits);
  put(out, "tx_aborts", s.tx_aborts);
  put(out, "fallback_runs", s.fallback_runs);
  put(out, "ats_serialized", s.ats_serialized);
  put_seq(out, "aborts_by_cause", s.aborts_by_cause);
  put(out, "conflicts_total", s.conflicts_total);
  put(out, "conflicts_false", s.conflicts_false);
  put_seq(out, "false_by_type", s.false_by_type);
  put_seq(out, "true_by_type", s.true_by_type);
  put(out, "false_conflicts_avoided", s.false_conflicts_avoided);
  put(out, "accesses", s.accesses);
  put(out, "tx_accesses", s.tx_accesses);
  put(out, "l1_hits", s.l1_hits);
  put(out, "l2_hits", s.l2_hits);
  put(out, "l3_hits", s.l3_hits);
  put(out, "mem_fetches", s.mem_fetches);
  put(out, "c2c_transfers", s.c2c_transfers);
  put(out, "probes_sent", s.probes_sent);
  put(out, "piggyback_messages", s.piggyback_messages);
  put(out, "dirty_refetches", s.dirty_refetches);
  put(out, "upgrades", s.upgrades);
  put(out, "bus_wait_cycles", s.bus_wait_cycles);
  put_seq(out, "false_surviving_at", s.false_surviving_at);

  std::vector<std::pair<Addr, std::uint64_t>> by_line(s.false_by_line.begin(),
                                                      s.false_by_line.end());
  std::sort(by_line.begin(), by_line.end());
  std::vector<std::uint64_t> flat;
  flat.reserve(by_line.size() * 2);
  for (const auto& [addr, count] : by_line) {
    flat.push_back(addr);
    flat.push_back(count);
  }
  put_seq(out, "false_by_line", flat);

  put_seq(out, "tx_access_by_offset", s.tx_access_by_offset);
  put(out, "record_timeseries", s.record_timeseries ? 1 : 0);
  put_seq(out, "tx_start_cycles", s.tx_start_cycles);
  put_seq(out, "false_conflict_cycles", s.false_conflict_cycles);
  put(out, "total_cycles", s.total_cycles);
  put(out, "tx_busy_cycles", s.tx_busy_cycles);
  put_seq(out, "tx_duration_hist", s.tx_duration_hist);
  put_seq(out, "tx_read_lines_hist", s.tx_read_lines_hist);
  put_seq(out, "tx_write_lines_hist", s.tx_write_lines_hist);
  put(out, "wasted_cycles", s.wasted_cycles);
  put(out, "backoff_cycles", s.backoff_cycles);
  put_seq(out, "tx_latency_hist", s.tx_latency_hist);
  if (s.prov_enabled || s.cm_enabled) {
    // v4 wrote "prov_enabled 1" only when provenance was on; v5 writes the
    // flag unconditionally so the cm section's position is unambiguous.
    put(out, "prov_enabled", s.prov_enabled ? 1 : 0);
  }
  if (s.prov_enabled) {
    out += "prov_site_names";
    char buf[32];
    std::snprintf(buf, sizeof(buf), " %zu", s.prov_site_names.size());
    out += buf;
    for (const std::string& name : s.prov_site_names) {
      out += ' ';
      out += name;
    }
    out += '\n';
    put_seq(out, "prov_site_table", s.prov_site_table);
    put_seq(out, "prov_hot_lines", s.prov_hot_lines);
    put_seq(out, "prov_pairs", s.prov_pairs);
  }
  if (s.cm_enabled) {
    put(out, "cm_enabled", 1);
    put_seq(out, "cm_max_consec_aborts", s.cm_max_consec_aborts);
    put_seq(out, "cm_wasted_by_core", s.cm_wasted_by_core);
    put_seq(out, "cm_first_commit_cycle", s.cm_first_commit_cycle);
    put(out, "cm_policy_decisions", s.cm_policy_decisions);
    put(out, "cm_requester_losses", s.cm_requester_losses);
    put(out, "cm_fallback_acquisitions", s.cm_fallback_acquisitions);
  }
  return out;
}

bool deserialize_stats(std::string_view blob, Stats& out) {
  out = Stats{};
  Reader r(blob);
  std::uint64_t flag = 0;
  std::vector<Cycle> by_line_flat;
  bool v4 = false;
  bool v5 = false;
  bool header_ok = false;
  if (r.literal(kHeaderV3)) {
    header_ok = true;
  } else if (r.literal(kHeaderV4)) {
    header_ok = true;
    v4 = true;
  } else if (r.literal(kHeaderV5)) {
    header_ok = true;
    v5 = true;
  }
  bool ok =
      header_ok && r.literal("\n") &&
      r.field("tx_attempts", out.tx_attempts) &&
      r.field("tx_commits", out.tx_commits) &&
      r.field("tx_aborts", out.tx_aborts) &&
      r.field("fallback_runs", out.fallback_runs) &&
      r.field("ats_serialized", out.ats_serialized) &&
      r.fixed_seq("aborts_by_cause", out.aborts_by_cause) &&
      r.field("conflicts_total", out.conflicts_total) &&
      r.field("conflicts_false", out.conflicts_false) &&
      r.fixed_seq("false_by_type", out.false_by_type) &&
      r.fixed_seq("true_by_type", out.true_by_type) &&
      r.field("false_conflicts_avoided", out.false_conflicts_avoided) &&
      r.field("accesses", out.accesses) &&
      r.field("tx_accesses", out.tx_accesses) &&
      r.field("l1_hits", out.l1_hits) && r.field("l2_hits", out.l2_hits) &&
      r.field("l3_hits", out.l3_hits) &&
      r.field("mem_fetches", out.mem_fetches) &&
      r.field("c2c_transfers", out.c2c_transfers) &&
      r.field("probes_sent", out.probes_sent) &&
      r.field("piggyback_messages", out.piggyback_messages) &&
      r.field("dirty_refetches", out.dirty_refetches) &&
      r.field("upgrades", out.upgrades) &&
      r.field("bus_wait_cycles", out.bus_wait_cycles) &&
      r.fixed_seq("false_surviving_at", out.false_surviving_at) &&
      r.var_seq("false_by_line", by_line_flat) &&
      r.fixed_seq("tx_access_by_offset", out.tx_access_by_offset) &&
      r.field("record_timeseries", flag) &&
      r.var_seq("tx_start_cycles", out.tx_start_cycles) &&
      r.var_seq("false_conflict_cycles", out.false_conflict_cycles) &&
      r.field("total_cycles", out.total_cycles) &&
      r.field("tx_busy_cycles", out.tx_busy_cycles) &&
      r.fixed_seq("tx_duration_hist", out.tx_duration_hist) &&
      r.fixed_seq("tx_read_lines_hist", out.tx_read_lines_hist) &&
      r.fixed_seq("tx_write_lines_hist", out.tx_write_lines_hist) &&
      r.field("wasted_cycles", out.wasted_cycles) &&
      r.field("backoff_cycles", out.backoff_cycles) &&
      r.fixed_seq("tx_latency_hist", out.tx_latency_hist);
  if (ok && (v4 || v5)) {
    // Opt-in provenance section. A v4 blob must carry it (the v4 header is
    // only written when the section is); a v5 blob carries an explicit 0/1
    // flag because either opt-in section can be present on its own.
    std::uint64_t pflag = 0;
    ok = r.field("prov_enabled", pflag) && pflag <= 1 && (v5 || pflag == 1);
    if (ok && pflag == 1) {
      ok = r.name_seq("prov_site_names", out.prov_site_names) &&
           r.var_seq("prov_site_table", out.prov_site_table) &&
           r.var_seq("prov_hot_lines", out.prov_hot_lines) &&
           r.var_seq("prov_pairs", out.prov_pairs) &&
           // Stride/shape checks (prov/collector.hpp layout constants).
           out.prov_site_table.size() == out.prov_site_names.size() * 11 &&
           out.prov_hot_lines.size() % 4 == 0 &&
           out.prov_pairs.size() % 4 == 0;
      out.prov_enabled = ok;
    }
  }
  if (ok && v5) {
    // Contention-management section: a v5 blob must carry it.
    std::uint64_t cflag = 0;
    ok = r.field("cm_enabled", cflag) && cflag == 1 &&
         r.var_seq("cm_max_consec_aborts", out.cm_max_consec_aborts) &&
         r.var_seq("cm_wasted_by_core", out.cm_wasted_by_core) &&
         r.var_seq("cm_first_commit_cycle", out.cm_first_commit_cycle) &&
         r.field("cm_policy_decisions", out.cm_policy_decisions) &&
         r.field("cm_requester_losses", out.cm_requester_losses) &&
         r.field("cm_fallback_acquisitions", out.cm_fallback_acquisitions) &&
         // The three per-core vectors must agree on the core count.
         out.cm_wasted_by_core.size() == out.cm_max_consec_aborts.size() &&
         out.cm_first_commit_cycle.size() == out.cm_max_consec_aborts.size();
    out.cm_enabled = ok;
  }
  ok = ok && r.done();
  if (!ok || flag > 1 || by_line_flat.size() % 2 != 0) return false;
  out.record_timeseries = flag == 1;
  for (std::size_t i = 0; i < by_line_flat.size(); i += 2) {
    // Canonical blobs are sorted by address with no duplicates; anything
    // else is corruption (a duplicate would silently merge two entries).
    if (i > 0 && by_line_flat[i] <= by_line_flat[i - 2]) return false;
    out.false_by_line[by_line_flat[i]] = by_line_flat[i + 1];
  }
  return true;
}

}  // namespace asfsim
