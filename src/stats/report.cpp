#include "stats/report.hpp"

#include <cstdio>
#include <utility>

namespace asfsim {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size(), 0);
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    width[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size() && i < width.size(); ++i) {
      if (row[i].size() > width[i]) width[i] = row[i].size();
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < width.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      os << (i == 0 ? "" : "  ");
      os << cell;
      for (std::size_t p = cell.size(); p < width[i]; ++p) os << ' ';
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = width.size() > 1 ? 2 * (width.size() - 1) : 0;
  for (const auto w : width) total += w;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string TextTable::pct(double fraction, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

std::string TextTable::num(double v, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

void print_fault_counters(std::ostream& os, const FaultCounters& fc) {
  os << "  injected faults: spurious aborts " << fc.spurious_aborts
     << ", commit aborts " << fc.commit_aborts << ", forced evictions "
     << fc.forced_evictions << "\n  timing perturbation: probe jitter "
     << fc.probe_jitter_events << " events / " << fc.probe_jitter_cycles
     << " cycles, sched jitter " << fc.sched_jitter_events << " events / "
     << fc.sched_jitter_cycles << " cycles\n";
}

CsvWriter::CsvWriter(const std::string& dir, const std::string& name) {
  if (dir.empty()) return;
  path_ = dir + "/" + name + ".csv";
  out_.open(path_);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  if (!out_.is_open()) return;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << cells[i];
  }
  out_ << '\n';
}

}  // namespace asfsim
