// Exact, deterministic (de)serialization of Stats.
//
// Every Stats field is an unsigned integer (or a container of them), so the
// round trip is lossless. The output is canonical — fields in a fixed
// order, the per-line histogram sorted by address — which makes serialized
// reports directly comparable: two runs produced identical statistics iff
// their serializations are byte-identical. The runner's result cache and the
// determinism regression tests both rely on that property.
//
// Format: `key value...` lines; containers are `key <count> v0 v1 ...`
// (the map flattens to addr/count pairs). A leading `asfsim-stats v1` line
// versions the schema; deserialize() rejects anything it does not fully
// recognize, so a stale or truncated blob reads as "not a report" (the
// cache treats that as a miss) rather than as zeroed statistics.
#pragma once

#include <string>
#include <string_view>

#include "stats/counters.hpp"

namespace asfsim {

[[nodiscard]] std::string serialize_stats(const Stats& s);

/// Parse a blob produced by serialize_stats into `out` (fully overwritten
/// on success). Returns false — leaving `out` unspecified — on any
/// mismatch: unknown/missing keys, bad counts, trailing garbage.
[[nodiscard]] bool deserialize_stats(std::string_view blob, Stats& out);

}  // namespace asfsim
