// Deterministic zipf/uniform key generator for the OLTP workload family.
//
// Sampling inverts an explicitly tabulated CDF, so the generator is exact
// for ANY theta >= 0 (the popular Gray et al. rejection trick is only valid
// for theta < 1) and the analytic pmf used by the chi-squared unit tests is
// the very distribution being sampled. One next_double() per draw keeps the
// per-core Rng streams in lockstep with the rest of the workload's
// decisions, so runs stay byte-deterministic for any --jobs value.
//
// Rank k is used directly as the key: the hottest records are adjacent in
// the table, which concentrates skewed traffic on shared cache lines — the
// false-sharing regime the sub-block detectors exist to disambiguate.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/random.hpp"

namespace asfsim {

class ZipfGenerator {
 public:
  /// P(key == k) proportional to 1 / (k+1)^theta over [0, n). theta == 0
  /// degenerates to the uniform distribution. n must be >= 1.
  ZipfGenerator(std::uint64_t n, double theta);

  /// Draw one key in [0, n). Consumes exactly one rng.next_double().
  [[nodiscard]] std::uint64_t next(Rng& rng) const;

  /// Analytic probability mass of key k (the distribution next() samples).
  [[nodiscard]] double pmf(std::uint64_t k) const;

  [[nodiscard]] std::uint64_t n() const { return n_; }
  [[nodiscard]] double theta() const { return theta_; }

 private:
  /// Number of equal-width u-buckets in the search-hint index. Each draw
  /// first maps u to a bucket, then binary-searches only between that
  /// bucket's precomputed CDF bounds — identical result to searching the
  /// whole table, but the skewed head resolves in O(1) and key draws leave
  /// the hot path of every OLTP access (docs/performance.md). Must be a
  /// power of two: then u * kHintBuckets and b / kHintBuckets are exact in
  /// double arithmetic, so the bucket bracket is exact too.
  static constexpr std::size_t kHintBuckets = 1024;

  std::uint64_t n_ = 1;
  double theta_ = 0.0;
  double zetan_ = 1.0;        // sum over 1/(k+1)^theta, the normalizer
  std::vector<double> cdf_;   // cdf_[k] = P(key <= k); back() == 1.0
  std::vector<std::uint64_t> hint_;  // hint_[b] = upper_bound(cdf_, b/B)
};

}  // namespace asfsim
