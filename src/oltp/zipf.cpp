#include "oltp/zipf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace asfsim {

ZipfGenerator::ZipfGenerator(std::uint64_t n, double theta)
    : n_(n), theta_(theta) {
  if (n == 0) throw std::invalid_argument("ZipfGenerator: n must be >= 1");
  if (!(theta >= 0.0)) {
    throw std::invalid_argument("ZipfGenerator: theta must be >= 0");
  }
  cdf_.resize(n);
  // Fixed left-to-right accumulation order: the table (and therefore every
  // draw) is a pure function of (n, theta) on a given host.
  double acc = 0.0;
  for (std::uint64_t k = 0; k < n; ++k) {
    acc += theta == 0.0
               ? 1.0
               : std::pow(static_cast<double>(k + 1), -theta);
    cdf_[k] = acc;
  }
  zetan_ = acc;
  for (double& c : cdf_) c /= zetan_;
  cdf_.back() = 1.0;  // guard against accumulated rounding

  // Search-hint index: for u in bucket b (u-range [b/B, (b+1)/B)), the
  // answer upper_bound(cdf_, u) is bracketed by the answers at the bucket
  // edges, because upper_bound is monotone in u. Precomputing the edge
  // answers turns each draw into a binary search over (usually) one or two
  // candidates instead of the whole table.
  hint_.resize(kHintBuckets + 1);
  for (std::size_t b = 0; b <= kHintBuckets; ++b) {
    const double edge =
        static_cast<double>(b) / static_cast<double>(kHintBuckets);
    hint_[b] = static_cast<std::uint64_t>(
        std::upper_bound(cdf_.begin(), cdf_.end(), edge) - cdf_.begin());
  }
}

std::uint64_t ZipfGenerator::next(Rng& rng) const {
  const double u = rng.next_double();  // in [0, 1)
  auto b = static_cast<std::size_t>(u * kHintBuckets);
  if (b >= kHintBuckets) b = kHintBuckets - 1;  // u < 1, but stay safe
  const std::uint64_t lo = hint_[b];
  // The bracket is inclusive of hint_[b + 1] (u may equal values just below
  // the edge whose upper_bound IS the edge answer); clamp to n_ for the
  // final bucket where the edge answer is end().
  const std::uint64_t hi = std::min<std::uint64_t>(hint_[b + 1] + 1, n_);
  const auto it =
      std::upper_bound(cdf_.begin() + static_cast<std::ptrdiff_t>(lo),
                       cdf_.begin() + static_cast<std::ptrdiff_t>(hi), u);
  // u < 1.0 == cdf_.back(), so the bracketed search never returns its end.
  return static_cast<std::uint64_t>(it - cdf_.begin());
}

double ZipfGenerator::pmf(std::uint64_t k) const {
  if (k >= n_) return 0.0;
  const double w = theta_ == 0.0
                       ? 1.0
                       : std::pow(static_cast<double>(k + 1), -theta_);
  return w / zetan_;
}

}  // namespace asfsim
