#include "oltp/zipf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace asfsim {

ZipfGenerator::ZipfGenerator(std::uint64_t n, double theta)
    : n_(n), theta_(theta) {
  if (n == 0) throw std::invalid_argument("ZipfGenerator: n must be >= 1");
  if (!(theta >= 0.0)) {
    throw std::invalid_argument("ZipfGenerator: theta must be >= 0");
  }
  cdf_.resize(n);
  // Fixed left-to-right accumulation order: the table (and therefore every
  // draw) is a pure function of (n, theta) on a given host.
  double acc = 0.0;
  for (std::uint64_t k = 0; k < n; ++k) {
    acc += theta == 0.0
               ? 1.0
               : std::pow(static_cast<double>(k + 1), -theta);
    cdf_[k] = acc;
  }
  zetan_ = acc;
  for (double& c : cdf_) c /= zetan_;
  cdf_.back() = 1.0;  // guard against accumulated rounding
}

std::uint64_t ZipfGenerator::next(Rng& rng) const {
  const double u = rng.next_double();  // in [0, 1)
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  // u < 1.0 == cdf_.back(), so upper_bound never returns end().
  return static_cast<std::uint64_t>(it - cdf_.begin());
}

double ZipfGenerator::pmf(std::uint64_t k) const {
  if (k >= n_) return 0.0;
  const double w = theta_ == 0.0
                       ? 1.0
                       : std::pow(static_cast<double>(k + 1), -theta_);
  return w / zetan_;
}

}  // namespace asfsim
