#include "oltp/oltp_config.hpp"

namespace asfsim {

const char* to_string(OltpMix m) {
  switch (m) {
    case OltpMix::kCustom: return "custom";
    case OltpMix::kA: return "a";
    case OltpMix::kB: return "b";
    case OltpMix::kC: return "c";
    case OltpMix::kD: return "d";
    case OltpMix::kE: return "e";
    case OltpMix::kF: return "f";
  }
  return "?";
}

bool parse_oltp_mix(std::string_view name, OltpMix& out) {
  if (name.empty() || name == "custom") {
    out = OltpMix::kCustom;
    return true;
  }
  for (const OltpMix m : {OltpMix::kA, OltpMix::kB, OltpMix::kC, OltpMix::kD,
                          OltpMix::kE, OltpMix::kF}) {
    if (name == to_string(m)) {
      out = m;
      return true;
    }
  }
  return false;
}

OltpConfig OltpConfig::resolved() const {
  OltpConfig c = *this;
  switch (mix) {
    case OltpMix::kCustom:
      break;
    case OltpMix::kA:  // 50r / 50u
      c.read_ratio = 0.5, c.rmw_ratio = 0.0, c.scan_ratio = 0.0;
      break;
    case OltpMix::kB:  // 95r / 5u
      c.read_ratio = 0.95, c.rmw_ratio = 0.0, c.scan_ratio = 0.0;
      break;
    case OltpMix::kC:  // read only
      c.read_ratio = 1.0, c.rmw_ratio = 0.0, c.scan_ratio = 0.0;
      break;
    case OltpMix::kD:  // 95r / 5 insert -> update (fixed-size table)
      c.read_ratio = 0.95, c.rmw_ratio = 0.0, c.scan_ratio = 0.0;
      break;
    case OltpMix::kE:  // 95 scan / 5 insert -> update
      c.read_ratio = 0.0, c.rmw_ratio = 0.0, c.scan_ratio = 0.95;
      break;
    case OltpMix::kF:  // 50r / 50rmw
      c.read_ratio = 0.5, c.rmw_ratio = 0.5, c.scan_ratio = 0.0;
      break;
  }
  return c;
}

std::string OltpConfig::validate() const {
  if (records < 2 || records > (std::uint64_t{1} << 20)) {
    return "records must be in [2, 2^20]";
  }
  if (payload_bytes == 0 || payload_bytes % 8 != 0 || payload_bytes > 512) {
    return "payload_bytes must be a multiple of 8 in [8, 512]";
  }
  if (tx_len == 0 || tx_len > 64) return "tx_len must be in [1, 64]";
  if (tx_per_thread == 0) return "tx_per_thread must be positive";
  if (theta < 0.0 || theta > 4.0) return "theta must be in [0, 4]";
  if (read_ratio < 0.0 || rmw_ratio < 0.0 || scan_ratio < 0.0 ||
      read_ratio + rmw_ratio + scan_ratio > 1.0 + 1e-9) {
    return "read/rmw/scan ratios must be non-negative and sum to <= 1";
  }
  if (scan_len == 0 || scan_len > records) {
    return "scan_len must be in [1, records]";
  }
  if (hot_window > records) return "hot_window must be in [0, records]";
  return {};
}

}  // namespace asfsim
