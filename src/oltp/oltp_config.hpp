// OLTP/KV workload family configuration (docs/workloads.md, "The OLTP/KV
// family").
//
// OltpConfig is embedded in WorkloadParams, so every knob reaches the
// workload through the normal setup() plumbing AND participates in the
// runner's canonical JobSpec serialization (runner/job_spec.cpp, enforced
// by asfsim_lint's hash-completeness rule): two OLTP runs differing in any
// knob can never alias in the result cache.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace asfsim {

/// YCSB-style operation-mix preset (--oltp-mix a..f). kCustom uses the
/// free-form ratio knobs verbatim; the letter presets override them.
/// Adaptation note: the table is fixed-size, so YCSB's inserts (mixes D/E)
/// are modeled as updates; D's "latest" key distribution is available via
/// the hot_window knob (--oltp-hot-window) — documented in
/// docs/workloads.md.
enum class OltpMix : std::uint8_t {
  kCustom = 0,
  kA,  // 50% read / 50% update        (update heavy)
  kB,  // 95% read /  5% update        (read mostly)
  kC,  // 100% read                    (read only)
  kD,  // 95% read /  5% update        (read latest; insert -> update)
  kE,  // 95% scan /  5% update        (short ranges; insert -> update)
  kF,  // 50% read / 50% read-modify-write
};

[[nodiscard]] const char* to_string(OltpMix m);

/// Parse an --oltp-mix value ("a".."f", "custom"). Returns false for
/// unknown names; "" maps to kCustom.
[[nodiscard]] bool parse_oltp_mix(std::string_view name, OltpMix& out);

struct OltpConfig {
  /// Key space: number of fixed-size records in the table.
  std::uint64_t records = 1024;
  /// Payload bytes per record (multiple of 8). The record stride is
  /// 8 + payload_bytes (one version word + payload), deliberately unpadded
  /// so records share cache lines — the false-sharing traffic the paper's
  /// sub-blocking exists to disambiguate.
  std::uint32_t payload_bytes = 16;
  /// Point operations per transaction.
  std::uint32_t tx_len = 4;
  /// Transactions per guest thread (scaled by WorkloadParams::scale).
  std::uint64_t tx_per_thread = 400;
  /// Zipf skew of the key-choice distribution; 0 = uniform. YCSB's default
  /// is 0.99; values > 1 concentrate almost all traffic on a few records.
  double theta = 0.99;
  /// Free-form mix ratios (used when mix == kCustom; must sum to <= 1, the
  /// remainder is the blind-update ratio).
  double read_ratio = 0.5;
  double rmw_ratio = 0.0;
  double scan_ratio = 0.0;
  /// Consecutive records touched by one scan operation (wraps at the end
  /// of the table).
  std::uint32_t scan_len = 8;
  /// YCSB-D "latest" sliding hot window (--oltp-hot-window): when nonzero,
  /// keys are drawn zipf-skewed over the `hot_window` most recently
  /// "inserted" records behind a per-thread virtual insertion head that
  /// advances every transaction, instead of zipf over the whole table.
  /// 0 keeps the whole-table zipf (the pre-window behavior).
  std::uint64_t hot_window = 0;
  /// Preset selector; non-custom values override the three ratios above.
  OltpMix mix = OltpMix::kCustom;

  /// Copy with the mix preset folded into the ratio knobs.
  [[nodiscard]] OltpConfig resolved() const;

  /// Empty string when consistent; otherwise a human-readable complaint.
  /// Checked at workload setup, before any guest memory is allocated.
  [[nodiscard]] std::string validate() const;
};

}  // namespace asfsim
