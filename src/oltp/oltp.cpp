// oltp — key-value table + YCSB-style transaction driver (the contention
// lab: docs/workloads.md, "The OLTP/KV family").
//
// The table is `records` fixed-size records of stride 8 + payload_bytes
// (version word + payload), allocated through the per-core gallocator with
// record i striped into core (i % threads)'s pool. Strides are deliberately
// unpadded, so records of one pool pack several to a cache line and skewed
// key traffic turns into exactly the false sharing the paper studies.
//
// Each transaction executes tx_len operations drawn from the configured
// read/update/rmw/scan mix over zipf-distributed keys. Keys and op kinds
// are drawn OUTSIDE the transaction body (run_tx bodies must be
// re-invocable), so aborted attempts retry the same logical transaction.
//
// Self-validation (detectors must never change results, only performance):
//   1. conservation — every committed read-modify-write increments exactly
//      one version word, so sum(versions) must equal the host-side count of
//      committed RMW ops (a lost update breaks this);
//   2. write atomicity — update/rmw ops overwrite ALL payload words of a
//      record with one uniquely tagged value, so every record must read
//      back either its initial pattern or a single valid tag (a torn or
//      non-serializable write breaks this).
#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "oltp/oltp_config.hpp"
#include "oltp/zipf.hpp"
#include "workloads/workload.hpp"

namespace asfsim {
namespace {

enum class OpKind : std::uint8_t { kRead, kUpdate, kRmw, kScan };

struct Op {
  OpKind kind;
  std::uint64_t key;
};

class OltpWorkload final : public Workload {
 public:
  const char* name() const override { return "oltp"; }
  const char* description() const override {
    return "zipf-skewed key-value transactions (YCSB-style mix driver)";
  }

  void setup(Machine& m, const WorkloadParams& p) override {
    cfg_ = p.oltp.resolved();
    if (std::string err = cfg_.validate(); !err.empty()) {
      throw std::invalid_argument("oltp: " + err);
    }
    threads_ = p.threads;
    ntx_per_thread_ = p.scaled(cfg_.tx_per_thread);
    words_ = cfg_.payload_bytes / 8;
    const std::uint64_t stride = 8 + cfg_.payload_bytes;

    record_addr_.resize(cfg_.records);
    const prov::SiteId rec_site =
        m.galloc().register_site("oltp.record", stride);
    for (std::uint64_t i = 0; i < cfg_.records; ++i) {
      const CoreId pool = static_cast<CoreId>(i % threads_);
      record_addr_[i] = m.galloc().alloc_local(pool, stride, 8, rec_site);
      m.poke(record_addr_[i], 8, 0);  // version
      for (std::uint32_t j = 0; j < words_; ++j) {
        m.poke(record_addr_[i] + 8 + 8 * std::uint64_t{j}, 8, init_word(i, j));
      }
    }

    zipf_ = std::make_unique<ZipfGenerator>(cfg_.records, cfg_.theta);
    if (cfg_.hot_window > 0) {
      // YCSB-D "latest": skew is over recency (distance behind a sliding
      // per-run insert frontier), not over absolute rank.
      window_zipf_ = std::make_unique<ZipfGenerator>(
          std::min(cfg_.hot_window, cfg_.records), cfg_.theta);
    }
    committed_rmws_.assign(threads_, 0);
    for (CoreId t = 0; t < threads_; ++t) {
      m.spawn(t, worker(m.ctx(t), this, ntx_per_thread_));
    }
  }

  std::string validate(Machine& m) override {
    std::uint64_t rmws = 0;
    for (const std::uint64_t c : committed_rmws_) rmws += c;
    std::uint64_t vsum = 0;
    for (std::uint64_t i = 0; i < cfg_.records; ++i) {
      vsum += m.peek(record_addr_[i], 8);
      if (std::string err = check_payload(m, i); !err.empty()) return err;
    }
    if (vsum != rmws) {
      return "rmw conservation broken: version sum " + std::to_string(vsum) +
             ", committed rmw ops " + std::to_string(rmws);
    }
    return {};
  }

 private:
  /// Initial payload word j of record `key`; disjoint from every tag (tags
  /// carry a nonzero core field in bits [40, 63]).
  static std::uint64_t init_word(std::uint64_t key, std::uint32_t j) {
    return key * 31 + j;
  }
  /// Unique per (core, transaction) stamp written to every payload word.
  static std::uint64_t tag_value(CoreId core, std::uint64_t seq) {
    return ((std::uint64_t{core} + 1) << 40) | (seq + 1);
  }

  std::string check_payload(Machine& m, std::uint64_t key) const {
    const Addr base = record_addr_[key] + 8;
    const std::uint64_t w0 = m.peek(base, 8);
    bool initial = true;
    bool tagged = true;
    for (std::uint32_t j = 0; j < words_; ++j) {
      const std::uint64_t w = m.peek(base + 8 * std::uint64_t{j}, 8);
      if (w != init_word(key, j)) initial = false;
      if (w != w0) tagged = false;
    }
    if (initial) return {};
    const std::uint64_t core_field = w0 >> 40;
    const std::uint64_t seq_field = w0 & ((std::uint64_t{1} << 40) - 1);
    if (!tagged || core_field == 0 || core_field > threads_ ||
        seq_field == 0 || seq_field > ntx_per_thread_) {
      return "record " + std::to_string(key) +
             " payload is torn or carries an impossible tag (" +
             std::to_string(w0) + "): update atomicity violated";
    }
    return {};
  }

  /// One key draw; consumes exactly one next_double either way, so the
  /// per-core rng streams stay in lockstep across hot-window settings.
  ///
  /// hot_window == 0: plain zipf over absolute rank (YCSB-C shape).
  /// hot_window  > 0: YCSB-D "latest" — each thread advances a virtual
  /// insert frontier as it issues transactions (global position
  /// tx * threads + core, wrapped onto the fixed table), and keys are drawn
  /// a zipf-distributed *distance* behind that frontier, bounded by the
  /// window. The hot set is therefore a sliding window of recently
  /// "inserted" records rather than a fixed head.
  std::uint64_t draw_key(GuestCtx& c, std::uint64_t tx) const {
    if (!window_zipf_) return zipf_->next(c.rng());
    const std::uint64_t head =
        (tx * threads_ + c.core()) % cfg_.records;
    const std::uint64_t offset = window_zipf_->next(c.rng());
    return (head + cfg_.records - offset) % cfg_.records;
  }

  static Task<void> worker(GuestCtx& c, OltpWorkload* w, std::uint64_t ntx) {
    const OltpConfig& cfg = w->cfg_;
    std::vector<Op> ops;
    ops.reserve(cfg.tx_len);
    for (std::uint64_t tx = 0; tx < ntx; ++tx) {
      // Plan the whole transaction before entering it: run_tx may re-invoke
      // the body after an abort, and a replanned retry would be a different
      // logical transaction.
      ops.clear();
      for (std::uint32_t j = 0; j < cfg.tx_len; ++j) {
        const double u = c.rng().next_double();
        OpKind kind = OpKind::kUpdate;
        if (u < cfg.read_ratio) {
          kind = OpKind::kRead;
        } else if (u < cfg.read_ratio + cfg.rmw_ratio) {
          kind = OpKind::kRmw;
        } else if (u < cfg.read_ratio + cfg.rmw_ratio + cfg.scan_ratio) {
          kind = OpKind::kScan;
        }
        ops.push_back({kind, w->draw_key(c, tx)});
      }
      const std::uint64_t tag = tag_value(c.core(), tx);
      std::uint64_t rmws_in_tx = 0;
      co_await c.run_tx([&]() -> Task<void> {
        rmws_in_tx = 0;  // the body must be re-invocable after an abort
        for (const Op& op : ops) {
          const Addr rec = w->record_addr_[op.key];
          switch (op.kind) {
            case OpKind::kRead: {
              (void)co_await c.load_u64(rec);
              for (std::uint32_t j = 0; j < w->words_; ++j) {
                (void)co_await c.load_u64(rec + 8 + 8 * std::uint64_t{j});
              }
              break;
            }
            case OpKind::kUpdate: {
              for (std::uint32_t j = 0; j < w->words_; ++j) {
                co_await c.store_u64(rec + 8 + 8 * std::uint64_t{j}, tag);
              }
              break;
            }
            case OpKind::kRmw: {
              const std::uint64_t v = co_await c.load_u64(rec);
              co_await c.store_u64(rec, v + 1);
              for (std::uint32_t j = 0; j < w->words_; ++j) {
                co_await c.store_u64(rec + 8 + 8 * std::uint64_t{j}, tag);
              }
              ++rmws_in_tx;
              break;
            }
            case OpKind::kScan: {
              for (std::uint32_t k = 0; k < cfg.scan_len; ++k) {
                const std::uint64_t key = (op.key + k) % cfg.records;
                (void)co_await c.load_u64(w->record_addr_[key]);
              }
              break;
            }
          }
        }
      });
      // run_tx completes exactly once (commit or fallback), so the body's
      // last invocation is the committed one.
      w->committed_rmws_[c.core()] += rmws_in_tx;
      co_await c.work(8);  // think time between transactions
    }
  }

  OltpConfig cfg_;
  std::unique_ptr<ZipfGenerator> zipf_;
  std::unique_ptr<ZipfGenerator> window_zipf_;  // hot_window > 0 only
  std::vector<Addr> record_addr_;
  std::vector<std::uint64_t> committed_rmws_;  // per core
  std::uint64_t ntx_per_thread_ = 0;
  std::uint32_t words_ = 0;
  std::uint32_t threads_ = 0;
};

}  // namespace

std::unique_ptr<Workload> make_oltp() {
  return std::make_unique<OltpWorkload>();
}

}  // namespace asfsim
