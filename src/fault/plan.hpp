// FaultPlan: the seed-deterministic fault-injection engine.
//
// One FaultPlan per Machine, created only when FaultConfig::any_injection()
// is true — a clean run carries a null pointer and pays one null check per
// hook site (the same discipline as src/trace/). Every decision comes from
// per-core PRNG streams derived from the simulation seed, so injections are
// byte-deterministic per (seed, config) regardless of host conditions,
// --jobs value, or run order.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault_config.hpp"
#include "sim/random.hpp"
#include "sim/types.hpp"

namespace asfsim {

/// Observability counters (not part of Stats: the stats blob format stays
/// byte-identical to fault-free builds).
struct FaultCounters {
  std::uint64_t spurious_aborts = 0;
  std::uint64_t commit_aborts = 0;
  std::uint64_t forced_evictions = 0;
  std::uint64_t probe_jitter_events = 0;
  Cycle probe_jitter_cycles = 0;
  std::uint64_t sched_jitter_events = 0;
  Cycle sched_jitter_cycles = 0;
};

class FaultPlan {
 public:
  FaultPlan(const FaultConfig& cfg, std::uint64_t seed, std::uint32_t ncores);

  /// Should this transactional access spuriously abort its transaction?
  [[nodiscard]] bool spurious_abort(CoreId core);
  /// Should this commit attempt fail?
  [[nodiscard]] bool commit_abort(CoreId core);
  /// Should this transactional access trigger a capacity-pressure eviction?
  [[nodiscard]] bool forced_eviction(CoreId core);
  /// Extra cycles for a probe broadcast issued by `core`.
  [[nodiscard]] Cycle probe_jitter(CoreId core);
  /// Extra cycles for a resume scheduled on behalf of `core`.
  [[nodiscard]] Cycle sched_jitter(CoreId core);

  [[nodiscard]] const FaultConfig& config() const { return cfg_; }
  [[nodiscard]] const FaultCounters& counters() const { return counters_; }
  /// One-line human summary of what was injected (diagnostics, tools).
  [[nodiscard]] std::string summary() const;

 private:
  FaultConfig cfg_;
  std::vector<Rng> rng_;  // one independent deterministic stream per core
  FaultCounters counters_;
};

}  // namespace asfsim
