// Chaos harness: prove the correctness oracles catch protocol bugs.
//
// A chaos cell runs the ledger workload (the same shape as
// tests/test_serializability.cpp) on one (detector, seed, fault, mutation)
// configuration with two oracles armed:
//   * an in-flight invariant auditor — MemorySystem::check_invariants()
//     runs from the kernel loop every audit_interval cycles;
//   * a post-run strict-serializability replay of the committed history;
//   * a post-run backoff-progressivity policy oracle — every retried abort
//     must have stalled for the abort penalty PLUS a strictly positive
//     software backoff (catches liveness bugs the correctness oracles are
//     blind to, e.g. a backoff that never sleeps);
//   * a post-run starvation oracle — every core's worst consecutive-abort
//     run is audited against the contention policy's stated forward-progress
//     bound (ContentionPolicy::stated_abort_bound, docs/contention.md §5).
// The kill matrix then demands that EVERY protocol mutation is killed by at
// least one oracle on at least one cell, while clean (mutation-free) cells
// stay green — including cells with fault injection enabled, because legal
// faults must never trip a correctness oracle.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cm/cm_config.hpp"
#include "core/detector.hpp"
#include "fault/fault_config.hpp"
#include "sim/types.hpp"

namespace asfsim {

enum class ChaosVerdict : std::uint8_t {
  kClean = 0,           // all oracles passed
  kInvariantViolation,  // the in-flight auditor fired
  kReplayViolation,     // the committed history is not serializable
  kRunFailed,           // the run itself died (deadlock, cycle limit, ...)
  kPolicyViolation,     // a liveness/QoS policy oracle fired (e.g. the
                        // backoff-progressivity check)
  kStarvation,          // a core's consecutive-abort run exceeded the
                        // contention policy's stated_abort_bound()
};

[[nodiscard]] const char* to_string(ChaosVerdict v);

/// One cell of the chaos matrix.
struct ChaosCell {
  DetectorKind detector = DetectorKind::kSubBlock;
  std::uint32_t nsub = 4;
  std::uint64_t seed = 1;
  FaultConfig fault;       // injection rates + the mutation under test
  CmConfig cm;             // contention policy under test (requester-wins
                           // keeps the historical matrix byte-for-byte)
  /// Override for SimConfig::max_tx_retries (-1 = keep the default).
  /// 0 disables the classic retry-count fallback so starvation under a
  /// broken policy can actually manifest instead of being capped.
  std::int32_t max_tx_retries = -1;
  /// Ledger cells. The default 96 (12 lines) gives heavy false sharing for
  /// the correctness oracles; starvation shapes shrink it to a handful so
  /// every transaction conflicts and unfair policies actually starve
  /// someone instead of diffusing the pain.
  std::uint64_t ncells = 96;
  int ntx = 60;            // ledger transactions per core
  Cycle audit_interval = 500;
  Cycle max_cycles = 30'000'000;  // hard stop for runaway cells
};

struct ChaosCellResult {
  ChaosVerdict verdict = ChaosVerdict::kClean;
  std::string detail;          // first violation / failure description
  std::uint64_t commits = 0;   // committed ledger operations observed
  Cycle cycles = 0;            // final simulated cycle
  /// Worst consecutive-abort run over all cores (starvation-oracle input;
  /// reported even when the oracle is off so bounds can be tuned).
  std::uint32_t max_streak = 0;
};

/// Run one cell: ledger workload + invariant auditor + replay.
[[nodiscard]] ChaosCellResult run_chaos_cell(const ChaosCell& cell);

/// The protocol mutations the kill matrix must cover (kNone excluded).
[[nodiscard]] const std::vector<ProtocolMutation>& all_mutations();

struct KillMatrixOptions {
  std::vector<std::uint64_t> seeds = {1, 9, 23};
  int ntx = 60;
  Cycle audit_interval = 500;
  bool verbose = false;  // print each cell's outcome to stdout
};

struct MutationOutcome {
  ProtocolMutation mutation = ProtocolMutation::kNone;
  bool killed = false;
  ChaosVerdict verdict = ChaosVerdict::kClean;  // the killing verdict
  std::string cell_label;                       // which cell killed it
  std::string detail;                           // the oracle's message
};

struct KillMatrixReport {
  std::vector<MutationOutcome> outcomes;
  bool clean_controls_ok = false;
  std::string control_failure;  // first clean-control violation, if any

  /// Every mutation killed AND every clean control stayed green.
  [[nodiscard]] bool all_green() const;
  [[nodiscard]] std::string summary() const;
};

/// Run the full mutation-kill matrix: clean controls (no mutation, with and
/// without fault injection), then every mutation over suitable detectors
/// and `seeds` until killed.
[[nodiscard]] KillMatrixReport run_kill_matrix(const KillMatrixOptions& opt);

}  // namespace asfsim
