#include "fault/chaos.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "core/conflict.hpp"
#include "guest/garray.hpp"
#include "guest/machine.hpp"

namespace asfsim {

const char* to_string(ChaosVerdict v) {
  switch (v) {
    case ChaosVerdict::kClean: return "clean";
    case ChaosVerdict::kInvariantViolation: return "invariant-violation";
    case ChaosVerdict::kReplayViolation: return "replay-violation";
    case ChaosVerdict::kRunFailed: return "run-failed";
    case ChaosVerdict::kPolicyViolation: return "policy-violation";
    case ChaosVerdict::kStarvation: return "starvation";
  }
  return "?";
}

namespace {

/// Thrown by the audit callback so the kernel run loop surfaces the
/// violation at the exact cycle it appeared.
struct InvariantViolation : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct LedgerOp {
  Cycle commit_cycle;
  std::uint64_t seq;
  std::uint32_t a, b, c;
  std::uint64_t va, vb, out;
};

struct Ledger {
  GArray64 cells;
  std::uint64_t ncells = 0;
  std::vector<LedgerOp> log;
};

constexpr std::uint64_t kCombineSalt = 0x9e3779b97f4a7c15ull;

std::uint64_t combine(std::uint64_t va, std::uint64_t vb) {
  return (va * 3 + vb * 5 + 1) ^ kCombineSalt;
}

// Same shape as tests/test_serializability.cpp: two random reads combined
// into a random write, with the observed values logged in commit order.
// 96 unpadded cells on 12 lines guarantee heavy false sharing, which is
// exactly the traffic the sub-block protocol rules exist to keep sound.
Task<void> ledger_worker(GuestCtx& c, Ledger* lg, int ntx) {
  for (int i = 0; i < ntx; ++i) {
    const auto a = static_cast<std::uint32_t>(c.rng().below(lg->ncells));
    const auto b = static_cast<std::uint32_t>(c.rng().below(lg->ncells));
    auto t = static_cast<std::uint32_t>(c.rng().below(lg->ncells));
    std::uint64_t va = 0, vb = 0, out = 0;
    co_await c.run_tx([&]() -> Task<void> {
      va = co_await lg->cells.get(c, a);
      vb = co_await lg->cells.get(c, b);
      out = combine(va, vb);
      co_await lg->cells.set(c, t, out);
    });
    lg->log.push_back({c.now(), lg->log.size(), a, b, t, va, vb, out});
    co_await c.work(15);
  }
}

}  // namespace

ChaosCellResult run_chaos_cell(const ChaosCell& cell) {
  ChaosCellResult res;
  SimConfig sim;
  sim.seed = cell.seed;
  sim.fault = cell.fault;
  sim.cm = cell.cm;
  if (cell.max_tx_retries >= 0) {
    sim.max_tx_retries = static_cast<std::uint32_t>(cell.max_tx_retries);
  }
  Machine m(sim, cell.detector, cell.nsub);

  Ledger lg;
  lg.ncells = cell.ncells;
  lg.cells = GArray64::alloc(m.galloc(), lg.ncells);
  std::vector<std::uint64_t> model(lg.ncells);
  for (std::uint64_t i = 0; i < lg.ncells; ++i) {
    lg.cells.poke(m, i, i * 11 + 1);
    model[i] = i * 11 + 1;
  }
  for (CoreId c = 0; c < m.config().ncores; ++c) {
    m.spawn(c, ledger_worker(m.ctx(c), &lg, cell.ntx));
  }

  auto audit = [&m] {
    if (std::string err = m.mem().check_invariants(); !err.empty()) {
      throw InvariantViolation(err);
    }
  };
  m.kernel().set_audit(cell.audit_interval, audit);

  try {
    m.run(cell.max_cycles);
    audit();  // once more at quiescence
  } catch (const InvariantViolation& e) {
    res.verdict = ChaosVerdict::kInvariantViolation;
    res.detail = e.what();
    res.commits = lg.log.size();
    return res;
  } catch (const std::exception& e) {
    res.verdict = ChaosVerdict::kRunFailed;
    res.detail = e.what();
    res.commits = lg.log.size();
    return res;
  }
  res.commits = lg.log.size();
  res.cycles = m.stats().total_cycles;
  char buf[160];

  // Starvation oracle (docs/contention.md §5): a policy with a non-zero
  // stated_abort_bound() promises no core ever suffers more consecutive
  // non-lock-wait aborts than the bound. Audited before the replay and the
  // completion check so a starved, cycle-truncated run reports the policy
  // breach rather than a generic run failure.
  const std::uint64_t bound =
      m.runtime().policy().stated_abort_bound(m.config().ncores);
  for (CoreId c = 0; c < m.config().ncores; ++c) {
    res.max_streak = std::max(res.max_streak, m.runtime().max_consec_aborts(c));
    if (bound != 0 && m.runtime().max_consec_aborts(c) > bound) {
      std::snprintf(buf, sizeof(buf),
                    "core %u suffered %u consecutive aborts; policy '%s' "
                    "states a bound of %llu",
                    static_cast<unsigned>(c),
                    m.runtime().max_consec_aborts(c),
                    to_string(m.runtime().policy().kind()),
                    static_cast<unsigned long long>(bound));
      res.verdict = ChaosVerdict::kStarvation;
      res.detail = buf;
      return res;
    }
  }

  // Strict-serializability replay of the committed history.
  std::stable_sort(lg.log.begin(), lg.log.end(),
                   [](const LedgerOp& x, const LedgerOp& y) {
                     if (x.commit_cycle != y.commit_cycle) {
                       return x.commit_cycle < y.commit_cycle;
                     }
                     return x.seq < y.seq;
                   });
  for (std::size_t i = 0; i < lg.log.size(); ++i) {
    const LedgerOp& op = lg.log[i];
    if (op.va != model[op.a] || op.vb != model[op.b] ||
        op.out != combine(op.va, op.vb)) {
      std::snprintf(buf, sizeof(buf),
                    "op %zu (commit cycle %llu) read cells %u/%u "
                    "inconsistently with the serial order",
                    i, static_cast<unsigned long long>(op.commit_cycle), op.a,
                    op.b);
      res.verdict = ChaosVerdict::kReplayViolation;
      res.detail = buf;
      return res;
    }
    model[op.c] = op.out;
  }
  for (std::uint64_t i = 0; i < lg.ncells; ++i) {
    if (lg.cells.peek(m, i) != model[i]) {
      std::snprintf(buf, sizeof(buf),
                    "final memory diverges from the serial replay at cell %llu",
                    static_cast<unsigned long long>(i));
      res.verdict = ChaosVerdict::kReplayViolation;
      res.detail = buf;
      return res;
    }
  }
  const std::uint64_t expect =
      std::uint64_t{m.config().ncores} * static_cast<std::uint64_t>(cell.ntx);
  if (lg.log.size() != expect) {
    std::snprintf(buf, sizeof(buf),
                  "committed %zu of %llu ledger operations", lg.log.size(),
                  static_cast<unsigned long long>(expect));
    res.verdict = ChaosVerdict::kRunFailed;
    res.detail = buf;
  }

  // Backoff-progressivity policy oracle (paper §V-A). Every retried abort
  // stalls for abort_latency PLUS a strictly positive software backoff, so
  // backoff_cycles must strictly exceed stalls * abort_latency. Lock-wait
  // aborts are exempt (they wait on the lock holder, not the backoff
  // manager). A backoff that never sleeps passes both correctness oracles —
  // requester-wins and the fallback path still serialize — so only this
  // liveness check can see it.
  if (res.verdict == ChaosVerdict::kClean) {
    const Stats& st = m.stats();
    const std::uint64_t lock_waits =
        st.aborts_by_cause[static_cast<std::size_t>(AbortCause::kLockWait)];
    const std::uint64_t stalls = st.tx_aborts - lock_waits;
    const Cycle floor = static_cast<Cycle>(stalls) * m.config().abort_latency;
    if (stalls > 0 && st.backoff_cycles <= floor) {
      std::snprintf(buf, sizeof(buf),
                    "%llu retried aborts stalled only %llu cycles "
                    "(abort-penalty floor is %llu): backoff never sleeps",
                    static_cast<unsigned long long>(stalls),
                    static_cast<unsigned long long>(st.backoff_cycles),
                    static_cast<unsigned long long>(floor));
      res.verdict = ChaosVerdict::kPolicyViolation;
      res.detail = buf;
    }
  }
  return res;
}

const std::vector<ProtocolMutation>& all_mutations() {
  static const std::vector<ProtocolMutation> kAll = {
      ProtocolMutation::kDropDirtySubblock,
      ProtocolMutation::kForgetInvalidatedSpecinfo,
      ProtocolMutation::kSkipWrittenMask,
      ProtocolMutation::kSkipCommitValidation,
      ProtocolMutation::kWrongSubblockIndexMath,
      ProtocolMutation::kStalePiggybackMask,
      ProtocolMutation::kBackoffNeverSleeps,
      ProtocolMutation::kLostUpdateCommit,
      ProtocolMutation::kUnfairKarmaReset,
      ProtocolMutation::kFallbackLockLeak,
      ProtocolMutation::kSerializeSkipsValidation,
  };
  return kAll;
}

namespace {

struct CellShape {
  DetectorKind detector;
  std::uint32_t nsub;
  CmConfig cm{};  // requester-wins default: historical shapes unchanged
  std::int32_t max_tx_retries = -1;
  std::uint64_t ncells = 96;  // ChaosCell::ncells
  int ntx = -1;               // -1 = KillMatrixOptions::ntx
};

CmConfig cm_of(CmPolicyKind policy, std::uint32_t max_retries) {
  CmConfig cm;
  cm.policy = policy;
  cm.max_retries = max_retries;
  return cm;
}

/// Detectors on which each mutation's broken mechanism is actually
/// exercised (e.g. dropping piggybacks is a no-op for the baseline, which
/// never piggybacks).
std::vector<CellShape> shapes_for(ProtocolMutation m) {
  switch (m) {
    case ProtocolMutation::kSkipWrittenMask:
      return {{DetectorKind::kBaseline, 1}, {DetectorKind::kSubBlock, 4}};
    case ProtocolMutation::kDropDirtySubblock:
    case ProtocolMutation::kForgetInvalidatedSpecinfo:
    case ProtocolMutation::kSkipCommitValidation:
    // The two new bookkeeping bugs only exist where sub-block state exists
    // (rotation is the identity at nsub=1; the baseline never piggybacks).
    case ProtocolMutation::kWrongSubblockIndexMath:
    case ProtocolMutation::kStalePiggybackMask:
      return {{DetectorKind::kSubBlock, 4},
              {DetectorKind::kSubBlock, 8},
              {DetectorKind::kSubBlock, 16}};
    case ProtocolMutation::kBackoffNeverSleeps:
      // Detector-independent liveness policy: one sub-block shape plus the
      // baseline proves the oracle does not depend on sub-blocking.
      return {{DetectorKind::kSubBlock, 4}, {DetectorKind::kBaseline, 1}};
    case ProtocolMutation::kLostUpdateCommit:
      // The dropped write-back lives in the versioning layer, not the
      // detector: both shapes prove the replay oracle sees it either way.
      return {{DetectorKind::kBaseline, 1}, {DetectorKind::kSubBlock, 4}};
    case ProtocolMutation::kUnfairKarmaReset:
      // Only the timestamp policy consumes karma, and the classic
      // retry-count fallback must be off (max_tx_retries = 0) or it would
      // cap every streak below the stated bound. The 4-cell total-conflict
      // ledger concentrates the contention so the starving core's streak
      // actually exceeds the bound instead of diffusing over 96 cells.
      // Detector-independent — the bug lives in AsfRuntime::cm_priority.
      return {{DetectorKind::kSubBlock, 4,
               cm_of(CmPolicyKind::kTimestamp, 8), 0, 4, 120},
              {DetectorKind::kBaseline, 1,
               cm_of(CmPolicyKind::kTimestamp, 8), 0, 4, 120}};
    case ProtocolMutation::kFallbackLockLeak:
    case ProtocolMutation::kSerializeSkipsValidation:
      // Both bugs live on the serialize escalation path: a low retry
      // threshold makes the fallback engage often under ledger contention.
      return {{DetectorKind::kSubBlock, 4,
               cm_of(CmPolicyKind::kSerialize, 4)},
              {DetectorKind::kBaseline, 1,
               cm_of(CmPolicyKind::kSerialize, 4)}};
    case ProtocolMutation::kNone: break;
  }
  return {};
}

/// Which verdicts count as a kill for `m`. Correctness, liveness-policy,
/// and starvation oracles kill anything; a run failure is only accepted
/// for the fallback-lock leak, where global deadlock (every core parked on
/// a lock nobody releases) IS the observable symptom.
bool verdict_kills(ProtocolMutation m, ChaosVerdict v) {
  switch (v) {
    case ChaosVerdict::kInvariantViolation:
    case ChaosVerdict::kReplayViolation:
    case ChaosVerdict::kPolicyViolation:
    case ChaosVerdict::kStarvation:
      return true;
    case ChaosVerdict::kRunFailed:
      return m == ProtocolMutation::kFallbackLockLeak;
    case ChaosVerdict::kClean:
      break;
  }
  return false;
}

std::string cell_label(const CellShape& s, std::uint64_t seed) {
  std::string n = to_string(s.detector);
  if (s.detector == DetectorKind::kSubBlock) n += std::to_string(s.nsub);
  if (s.cm.policy != CmPolicyKind::kRequesterWins) {
    n += std::string("/") + to_string(s.cm.policy);
  }
  if (s.max_tx_retries == 0) n += "/nofb";
  return n + "/seed" + std::to_string(seed);
}

}  // namespace

bool KillMatrixReport::all_green() const {
  if (!clean_controls_ok) return false;
  for (const MutationOutcome& o : outcomes) {
    if (!o.killed) return false;
  }
  return !outcomes.empty();
}

std::string KillMatrixReport::summary() const {
  std::string out;
  for (const MutationOutcome& o : outcomes) {
    out += std::string(to_string(o.mutation)) + ": ";
    if (o.killed) {
      out += "KILLED by " + std::string(to_string(o.verdict)) + " on " +
             o.cell_label + " (" + o.detail + ")\n";
    } else {
      out += "SURVIVED — no oracle caught it\n";
    }
  }
  out += clean_controls_ok
             ? "clean controls: ok\n"
             : "clean controls: FAILED (" + control_failure + ")\n";
  out += all_green() ? "kill matrix: ALL GREEN" : "kill matrix: RED";
  return out;
}

KillMatrixReport run_kill_matrix(const KillMatrixOptions& opt) {
  KillMatrixReport report;

  // Clean controls: no mutation — with and without legal fault injection —
  // must pass both oracles on every shape. A failure here means an oracle
  // is unsound (false positive), which would make every "kill" meaningless.
  report.clean_controls_ok = true;
  const std::vector<CellShape> control_shapes = {
      {DetectorKind::kBaseline, 1},
      {DetectorKind::kSubBlock, 4},
      {DetectorKind::kSubBlock, 16},
      // Policy-aware controls (detector × policy): every non-default
      // contention policy must stay invisible to the correctness oracles
      // AND honour its own stated forward-progress bound on the same
      // ledger traffic the mutations run under.
      {DetectorKind::kSubBlock, 4, cm_of(CmPolicyKind::kPolite, 8)},
      {DetectorKind::kBaseline, 1, cm_of(CmPolicyKind::kPolite, 8)},
      {DetectorKind::kSubBlock, 4, cm_of(CmPolicyKind::kTimestamp, 8)},
      {DetectorKind::kBaseline, 1, cm_of(CmPolicyKind::kTimestamp, 8)},
      {DetectorKind::kSubBlock, 4, cm_of(CmPolicyKind::kSerialize, 4)},
      {DetectorKind::kBaseline, 1, cm_of(CmPolicyKind::kSerialize, 4)},
      // The bound-audit controls: timestamp with the classic fallback off
      // on the total-conflict ledger are exactly the kUnfairKarmaReset
      // shapes minus the mutation — they prove the starvation oracle's
      // bound is not trivially trippable.
      {DetectorKind::kSubBlock, 4, cm_of(CmPolicyKind::kTimestamp, 8), 0, 4,
       120},
      {DetectorKind::kBaseline, 1, cm_of(CmPolicyKind::kTimestamp, 8), 0, 4,
       120},
  };
  FaultConfig faulty;
  faulty.spurious_abort_rate = 0.002;
  faulty.evict_rate = 0.001;
  faulty.commit_abort_rate = 0.005;
  faulty.probe_jitter = 3;
  faulty.sched_jitter = 2;
  for (const CellShape& s : control_shapes) {
    for (const FaultConfig& fc : {FaultConfig{}, faulty}) {
      ChaosCell cell;
      cell.detector = s.detector;
      cell.nsub = s.nsub;
      cell.seed = opt.seeds.empty() ? 1 : opt.seeds.front();
      cell.fault = fc;
      cell.cm = s.cm;
      cell.max_tx_retries = s.max_tx_retries;
      cell.ncells = s.ncells;
      cell.ntx = s.ntx > 0 ? s.ntx : opt.ntx;
      cell.audit_interval = opt.audit_interval;
      const ChaosCellResult r = run_chaos_cell(cell);
      if (opt.verbose) {
        std::printf("control %s%s: %s\n", cell_label(s, cell.seed).c_str(),
                    fc.any_injection() ? "+faults" : "", to_string(r.verdict));
      }
      if (r.verdict != ChaosVerdict::kClean && report.clean_controls_ok) {
        report.clean_controls_ok = false;
        report.control_failure = cell_label(s, cell.seed) +
                                 (fc.any_injection() ? "+faults" : "") + ": " +
                                 std::string(to_string(r.verdict)) + " — " +
                                 r.detail;
      }
    }
  }

  // Mutation cells: walk (shape, seed) until an oracle kills the mutation.
  for (const ProtocolMutation mut : all_mutations()) {
    MutationOutcome outcome;
    outcome.mutation = mut;
    for (const CellShape& s : shapes_for(mut)) {
      for (const std::uint64_t seed : opt.seeds) {
        ChaosCell cell;
        cell.detector = s.detector;
        cell.nsub = s.nsub;
        cell.seed = seed;
        cell.fault.mutation = mut;
        cell.cm = s.cm;
        cell.max_tx_retries = s.max_tx_retries;
        cell.ncells = s.ncells;
        cell.ntx = s.ntx > 0 ? s.ntx : opt.ntx;
        cell.audit_interval = opt.audit_interval;
        const ChaosCellResult r = run_chaos_cell(cell);
        if (opt.verbose) {
          std::printf("mutate %s on %s: %s%s%s\n", to_string(mut),
                      cell_label(s, seed).c_str(), to_string(r.verdict),
                      r.detail.empty() ? "" : " — ", r.detail.c_str());
        }
        if (verdict_kills(mut, r.verdict)) {
          outcome.killed = true;
          outcome.verdict = r.verdict;
          outcome.cell_label = cell_label(s, seed);
          outcome.detail = r.detail;
        }
        if (outcome.killed) break;
      }
      if (outcome.killed) break;
    }
    report.outcomes.push_back(std::move(outcome));
  }
  return report;
}

}  // namespace asfsim
