// Livelock watchdog diagnostics (docs/robustness.md).
//
// The watchdog itself lives in the Kernel (set_watchdog): when no
// transaction commits for SimConfig::watchdog_cycles, the run loop throws
// LivelockError. Machine arms it with livelock_report() as the report
// callback, so the error's what() carries a structured dump of WHY the
// machine stopped making progress: per-core retry counts and doom causes,
// the hottest conflict lines, commit/abort/fallback totals, and the fault
// plan's injection summary when one is attached.
#pragma once

#include <string>

namespace asfsim {

class Machine;

/// Build the diagnostic dump for a stalled `m`. Read-only; safe to call
/// from the kernel's run loop mid-simulation.
[[nodiscard]] std::string livelock_report(Machine& m);

}  // namespace asfsim
