#include "fault/plan.hpp"

#include <cstdio>

namespace asfsim {

const char* to_string(ProtocolMutation m) {
  switch (m) {
    case ProtocolMutation::kNone: return "none";
    case ProtocolMutation::kDropDirtySubblock: return "drop-dirty-subblock";
    case ProtocolMutation::kForgetInvalidatedSpecinfo:
      return "forget-invalidated-specinfo";
    case ProtocolMutation::kSkipWrittenMask: return "skip-written-mask";
    case ProtocolMutation::kSkipCommitValidation:
      return "skip-commit-validation";
    case ProtocolMutation::kWrongSubblockIndexMath:
      return "wrong-subblock-index-math";
    case ProtocolMutation::kStalePiggybackMask:
      return "stale-piggyback-mask";
    case ProtocolMutation::kBackoffNeverSleeps:
      return "backoff-never-sleeps";
    case ProtocolMutation::kLostUpdateCommit:
      return "lost-update-commit";
    case ProtocolMutation::kUnfairKarmaReset:
      return "unfair-karma-reset";
    case ProtocolMutation::kFallbackLockLeak:
      return "fallback-lock-leak";
    case ProtocolMutation::kSerializeSkipsValidation:
      return "serialize-skips-validation";
  }
  return "?";
}

bool parse_mutation(std::string_view name, ProtocolMutation& out) {
  if (name.empty() || name == "none") {
    out = ProtocolMutation::kNone;
    return true;
  }
  for (const ProtocolMutation m :
       {ProtocolMutation::kDropDirtySubblock,
        ProtocolMutation::kForgetInvalidatedSpecinfo,
        ProtocolMutation::kSkipWrittenMask,
        ProtocolMutation::kSkipCommitValidation,
        ProtocolMutation::kWrongSubblockIndexMath,
        ProtocolMutation::kStalePiggybackMask,
        ProtocolMutation::kBackoffNeverSleeps,
        ProtocolMutation::kLostUpdateCommit,
        ProtocolMutation::kUnfairKarmaReset,
        ProtocolMutation::kFallbackLockLeak,
        ProtocolMutation::kSerializeSkipsValidation}) {
    if (name == to_string(m)) {
      out = m;
      return true;
    }
  }
  return false;
}

FaultPlan::FaultPlan(const FaultConfig& cfg, std::uint64_t seed,
                     std::uint32_t ncores)
    : cfg_(cfg) {
  rng_.reserve(ncores);
  for (std::uint32_t c = 0; c < ncores; ++c) {
    // Independent per-core streams: one core's injection history never
    // shifts another core's draws (splitmix64 inside Rng decorrelates the
    // nearby seeds).
    rng_.emplace_back(seed ^ 0xfa17'fa17'fa17'fa17ULL ^
                      (std::uint64_t{c} + 1) * 0x9e3779b97f4a7c15ULL);
  }
}

bool FaultPlan::spurious_abort(CoreId core) {
  if (cfg_.spurious_abort_rate <= 0.0) return false;
  if (!rng_[core].chance(cfg_.spurious_abort_rate)) return false;
  ++counters_.spurious_aborts;
  return true;
}

bool FaultPlan::commit_abort(CoreId core) {
  if (cfg_.commit_abort_rate <= 0.0) return false;
  if (!rng_[core].chance(cfg_.commit_abort_rate)) return false;
  ++counters_.commit_aborts;
  return true;
}

bool FaultPlan::forced_eviction(CoreId core) {
  if (cfg_.evict_rate <= 0.0) return false;
  if (!rng_[core].chance(cfg_.evict_rate)) return false;
  ++counters_.forced_evictions;
  return true;
}

Cycle FaultPlan::probe_jitter(CoreId core) {
  if (cfg_.probe_jitter == 0) return 0;
  const Cycle j = rng_[core].below(cfg_.probe_jitter + 1);
  if (j != 0) {
    ++counters_.probe_jitter_events;
    counters_.probe_jitter_cycles += j;
  }
  return j;
}

Cycle FaultPlan::sched_jitter(CoreId core) {
  if (cfg_.sched_jitter == 0) return 0;
  const Cycle j = rng_[core].below(cfg_.sched_jitter + 1);
  if (j != 0) {
    ++counters_.sched_jitter_events;
    counters_.sched_jitter_cycles += j;
  }
  return j;
}

std::string FaultPlan::summary() const {
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "faults: %llu spurious, %llu commit-fail, %llu evictions, "
      "%llu+%llu jitter events (%llu+%llu cycles)",
      static_cast<unsigned long long>(counters_.spurious_aborts),
      static_cast<unsigned long long>(counters_.commit_aborts),
      static_cast<unsigned long long>(counters_.forced_evictions),
      static_cast<unsigned long long>(counters_.probe_jitter_events),
      static_cast<unsigned long long>(counters_.sched_jitter_events),
      static_cast<unsigned long long>(counters_.probe_jitter_cycles),
      static_cast<unsigned long long>(counters_.sched_jitter_cycles));
  return buf;
}

}  // namespace asfsim
