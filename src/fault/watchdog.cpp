#include "fault/watchdog.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>
#include <vector>

#include "fault/plan.hpp"
#include "guest/machine.hpp"

namespace asfsim {

std::string livelock_report(Machine& m) {
  const Stats& st = m.stats();
  AsfRuntime& rt = m.runtime();
  std::string out = "=== livelock diagnostic ===\n";
  char buf[256];

  std::snprintf(buf, sizeof(buf),
                "cycle %llu: %llu commits, %llu aborts, %llu fallback runs, "
                "%llu attempts\n",
                static_cast<unsigned long long>(m.kernel().now()),
                static_cast<unsigned long long>(st.tx_commits),
                static_cast<unsigned long long>(st.tx_aborts),
                static_cast<unsigned long long>(st.fallback_runs),
                static_cast<unsigned long long>(st.tx_attempts));
  out += buf;
  std::snprintf(
      buf, sizeof(buf),
      "aborts by cause: %llu conflict, %llu capacity, %llu lock-wait, "
      "%llu user\n",
      static_cast<unsigned long long>(
          st.aborts_by_cause[static_cast<int>(AbortCause::kConflict)]),
      static_cast<unsigned long long>(
          st.aborts_by_cause[static_cast<int>(AbortCause::kCapacity)]),
      static_cast<unsigned long long>(
          st.aborts_by_cause[static_cast<int>(AbortCause::kLockWait)]),
      static_cast<unsigned long long>(
          st.aborts_by_cause[static_cast<int>(AbortCause::kUser)]));
  out += buf;

  for (CoreId c = 0; c < m.config().ncores; ++c) {
    std::snprintf(
        buf, sizeof(buf),
        "core %u: %s%s retries=%u cause=%s overlay_lines=%llu "
        "spec_lines=%llu\n",
        static_cast<unsigned>(c), rt.active(c) ? "in-tx" : "idle",
        rt.doomed(c) ? " (doomed)" : "", rt.retries(c),
        to_string(rt.doom_cause(c)),
        static_cast<unsigned long long>(rt.overlay_lines(c)),
        static_cast<unsigned long long>(m.mem().spec_lines(c)));
    out += buf;
  }

  // Hottest false-conflict lines: where the abort traffic concentrates.
  std::vector<std::pair<std::uint64_t, Addr>> hot;
  hot.reserve(st.false_by_line.size());
  // asfsim-lint: allow(unordered-iteration) — pairs are sorted just below.
  for (const auto& [line, n] : st.false_by_line) hot.emplace_back(n, line);
  std::sort(hot.rbegin(), hot.rend());
  if (!hot.empty()) {
    out += "hot false-conflict lines:";
    const std::size_t top = std::min<std::size_t>(hot.size(), 5);
    for (std::size_t i = 0; i < top; ++i) {
      std::snprintf(buf, sizeof(buf), " 0x%llx(%llu)",
                    static_cast<unsigned long long>(hot[i].second),
                    static_cast<unsigned long long>(hot[i].first));
      out += buf;
    }
    out += "\n";
  }

  if (FaultPlan* plan = m.fault_plan()) {
    out += plan->summary();
    out += "\n";
  }
  out += "=== end livelock diagnostic ===";
  return out;
}

}  // namespace asfsim
