// Fault-injection and protocol-mutation configuration (docs/robustness.md).
//
// FaultConfig is embedded in SimConfig, so every knob participates in the
// runner's canonical JobSpec serialization: a faulted run can never alias a
// clean run in the result cache. Injection itself (FaultPlan) is derived
// from the simulation seed, so fault runs are byte-deterministic across
// --jobs values and repeat runs.
//
// Mutations are different from faults: a fault is a legal-but-unlucky event
// (real ASF hardware aborts spuriously and under capacity pressure), while
// a mutation deliberately breaks one documented rule of the sub-block
// protocol so the chaos harness can prove the correctness oracles would
// catch a real implementation bug of that shape.
#pragma once

#include <cstdint>
#include <string_view>

#include "sim/types.hpp"

namespace asfsim {

/// One deliberately-broken sub-block protocol rule (--mutate=<name>).
enum class ProtocolMutation : std::uint8_t {
  kNone = 0,
  /// Discard piggy-backed S-WR masks instead of marking the requester's
  /// sub-blocks Dirty (breaks paper §IV-C / Fig 7).
  kDropDirtySubblock,
  /// Drop an invalidated line's speculative info instead of retaining it
  /// (breaks paper §IV-B; the metadata is erased too, so only the
  /// behavioral oracles can see the breakage).
  kForgetInvalidatedSpecinfo,
  /// Record speculative writes in the architectural sub-block bits but not
  /// in the byte-exact write mask (a metadata-bookkeeping bug).
  kSkipWrittenMask,
  /// Disable the commit-time reader-validation net, reopening the
  /// silent-store window that retention creates (DESIGN.md §6.5).
  kSkipCommitValidation,
  /// Record the architectural sub-block SPEC/WR bits under a rotated
  /// sub-block index (classic off-by-one in index math) while the
  /// byte-exact masks stay correct — the mask/bit-agreement invariant
  /// kills it.
  kWrongSubblockIndexMath,
  /// Apply the PREVIOUS fill response's piggy-backed S-WR set instead of
  /// the one that just arrived (a buffered-response reuse bug) — the
  /// piggyback-coverage invariant kills it.
  kStalePiggybackMask,
  /// The TM library's exponential backoff silently returns a zero wait,
  /// deleting the paper §V-A livelock defense. Both correctness oracles
  /// stay green (requester-wins + the fallback still serialize), so only
  /// the backoff-progressivity policy oracle can see it.
  kBackoffNeverSleeps,
  /// The commit write-back silently drops the highest-addressed overlay
  /// line's data: readers are validated and the transaction reports
  /// success, but one line's speculative values never reach memory — a
  /// lost update on multi-line commits (e.g. OLTP read-modify-writes).
  /// Killed by the strict-serializability replay oracle and by the value
  /// conservation checks of the workloads themselves.
  kLostUpdateCommit,
  /// The timestamp contention policy's priority input ignores karma and
  /// uses the ATTEMPT start instead of the logical transaction start, so
  /// every retry looks newborn and keeps losing to fresher rivals — the
  /// starvation oracle (consecutive aborts past the policy's stated bound)
  /// kills it. Both correctness oracles stay green: losing fairly forever
  /// is still serializable.
  kUnfairKarmaReset,
  /// The serialize fallback path never releases the fallback lock after
  /// the irrevocable body completes, wedging every other core behind the
  /// subscription spin — the run watchdog fires and the chaos harness
  /// counts the failed run as a kill.
  kFallbackLockLeak,
  /// Acquiring the fallback lock pokes the lock word directly in backing
  /// store, skipping the coherence probe that dooms subscribed
  /// transactions — in-flight transactions race the irrevocable body and
  /// the strict-serializability replay oracle kills it.
  kSerializeSkipsValidation,
};

[[nodiscard]] const char* to_string(ProtocolMutation m);

/// Parse a --mutate name ("drop-dirty-subblock", ...). Returns false for
/// unknown names; "none" and "" map to kNone.
[[nodiscard]] bool parse_mutation(std::string_view name, ProtocolMutation& out);

struct FaultConfig {
  /// Per-transactional-access probability of a spurious abort (the access
  /// dooms its own transaction for no architectural reason).
  double spurious_abort_rate = 0.0;
  /// Per-commit probability that the commit attempt fails and the
  /// transaction aborts instead (late interference, e.g. an interrupt).
  double commit_abort_rate = 0.0;
  /// Per-transactional-access probability of a capacity-pressure event:
  /// one of the requester's own speculative lines is evicted, which ASF
  /// surfaces as a capacity abort.
  double evict_rate = 0.0;
  /// Max extra cycles added to each probe broadcast (uniform in [0, n]).
  Cycle probe_jitter = 0;
  /// Max extra cycles added to each scheduled resume (uniform in [0, n]).
  Cycle sched_jitter = 0;
  /// Protocol mutation, if any (chaos harness; never a "fault").
  ProtocolMutation mutation = ProtocolMutation::kNone;

  /// Any probabilistic/timing injection enabled (mutations excluded)?
  [[nodiscard]] bool any_injection() const {
    return spurious_abort_rate > 0.0 || commit_abort_rate > 0.0 ||
           evict_rate > 0.0 || probe_jitter != 0 || sched_jitter != 0;
  }
  /// Anything at all (injection or mutation) deviating from a clean run?
  [[nodiscard]] bool enabled() const {
    return any_injection() || mutation != ProtocolMutation::kNone;
  }
};

}  // namespace asfsim
