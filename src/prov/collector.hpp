// Conflict-provenance collector: aggregates every detected conflict into
// per-site / per-line / per-site-pair matrices, split true vs false and by
// WAR/RAW/WAW, with wasted-cycle attribution and "baseline would have
// conflicted, sub-blocking avoided it" credit.
//
// Lifecycle: owned by Machine, armed into AsfRuntime (conflict path) and
// MemorySystem (avoided path) only when SimConfig::provenance is set — the
// disabled cost is one null-pointer check on the conflict path and zero on
// the access path. flush() writes the bounded result into the stats blob's
// opt-in v4 section.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "core/conflict.hpp"
#include "prov/site_registry.hpp"

namespace asfsim {
struct Stats;
}  // namespace asfsim

namespace asfsim::prov {

/// Hot-line rows kept in the stats blob (ranked by total conflicts); the
/// full per-line map is unbounded, the blob is not.
inline constexpr std::size_t kMaxHotLines = 32;

/// Per-site stats-blob row layout (prov_site_table stride).
inline constexpr std::size_t kSiteStride = 11;
/// Per-line stats-blob row layout (prov_hot_lines stride):
/// line, victim_site, false, true.
inline constexpr std::size_t kLineStride = 4;
/// Site-pair stats-blob row layout (prov_pairs stride):
/// requester_site, victim_site, false, true.
inline constexpr std::size_t kPairStride = 4;

class ProvCollector {
 public:
  ProvCollector(const SiteRegistry& sites, std::uint32_t nsub);

  /// Provenance attached to one conflict's trace event.
  struct Attribution {
    SiteId victim_site = kUntaggedSite;
    std::uint64_t victim_obj = 0;
    std::uint32_t victim_sub = 0;  // sub-block index of the victim byte
    SiteId req_site = kUntaggedSite;
    std::uint64_t req_obj = 0;
  };

  /// Attribute one detected conflict (one doomed victim). `wasted` is the
  /// victim's in-transaction cycles discarded by this doom.
  Attribution on_conflict(const ConflictRecord& rec, Cycle wasted);

  /// Credit the victim site for a false conflict a per-line detector would
  /// have raised but the active detector disambiguated away. Returns the
  /// attribution for the kAvoided trace event.
  Attribution on_avoided(Addr line, ByteMask probe, ByteMask victim_bytes);

  /// Write the aggregated section into the stats blob fields.
  void flush(Stats& stats) const;

 private:
  struct SiteRow {
    std::uint64_t false_by_type[3] = {0, 0, 0};  // WAR, RAW, WAW
    std::uint64_t true_by_type[3] = {0, 0, 0};
    std::uint64_t avoided = 0;
    std::uint64_t wasted = 0;
  };

  SiteRow& row(SiteId site);

  const SiteRegistry& sites_;
  std::uint32_t nsub_;
  std::vector<SiteRow> rows_;  // indexed by SiteId, grown on demand
  // (line, victim site) -> (false, true). Ordered so flush() is
  // deterministic without a sort over an unordered container.
  std::map<std::pair<Addr, SiteId>, std::pair<std::uint64_t, std::uint64_t>>
      lines_;
  // (requester site, victim site) -> (false, true).
  std::map<std::pair<SiteId, SiteId>, std::pair<std::uint64_t, std::uint64_t>>
      pairs_;
};

}  // namespace asfsim::prov
