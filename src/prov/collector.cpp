#include "prov/collector.hpp"

#include <algorithm>
#include <bit>

#include "mem/addr.hpp"
#include "stats/counters.hpp"

namespace asfsim::prov {

namespace {

// Byte offset that names the victim's side of the conflict: the first
// overlapping byte when there is true overlap (the actual collision),
// otherwise the victim's first relevant byte (pure false sharing — probe
// and victim bytes are disjoint objects in the same line).
std::uint32_t victim_offset(ByteMask probe, ByteMask victim) {
  const ByteMask overlap = probe & victim;
  const ByteMask pick = overlap != 0 ? overlap : victim;
  if (pick == 0) return 0;
  return static_cast<std::uint32_t>(std::countr_zero(pick));
}

}  // namespace

ProvCollector::ProvCollector(const SiteRegistry& sites, std::uint32_t nsub)
    : sites_(sites), nsub_(nsub) {}

ProvCollector::SiteRow& ProvCollector::row(SiteId site) {
  if (site >= rows_.size()) rows_.resize(site + 1);
  return rows_[site];
}

ProvCollector::Attribution ProvCollector::on_conflict(
    const ConflictRecord& rec, Cycle wasted) {
  const std::uint32_t voff = victim_offset(rec.probe_bytes, rec.victim_bytes);
  const std::uint32_t roff =
      rec.probe_bytes != 0
          ? static_cast<std::uint32_t>(std::countr_zero(rec.probe_bytes))
          : 0;
  const SiteRegistry::Location v = sites_.resolve(rec.line + voff);
  const SiteRegistry::Location r = sites_.resolve(rec.line + roff);

  Attribution at;
  at.victim_site = v.site;
  at.victim_obj = v.object;
  at.victim_sub = subblock_index(voff, nsub_);
  at.req_site = r.site;
  at.req_obj = r.object;

  const std::uint32_t type = static_cast<std::uint32_t>(rec.type);
  SiteRow& sr = row(v.site);
  if (rec.is_false) {
    ++sr.false_by_type[type];
  } else {
    ++sr.true_by_type[type];
  }
  sr.wasted += wasted;

  auto& line_counts = lines_[{rec.line, v.site}];
  auto& pair_counts = pairs_[{r.site, v.site}];
  if (rec.is_false) {
    ++line_counts.first;
    ++pair_counts.first;
  } else {
    ++line_counts.second;
    ++pair_counts.second;
  }
  return at;
}

ProvCollector::Attribution ProvCollector::on_avoided(Addr line, ByteMask probe,
                                                     ByteMask victim_bytes) {
  const std::uint32_t voff = victim_offset(probe, victim_bytes);
  const std::uint32_t roff =
      probe != 0 ? static_cast<std::uint32_t>(std::countr_zero(probe)) : 0;
  const SiteRegistry::Location v = sites_.resolve(line + voff);
  const SiteRegistry::Location r = sites_.resolve(line + roff);
  ++row(v.site).avoided;
  Attribution at;
  at.victim_site = v.site;
  at.victim_obj = v.object;
  at.victim_sub = subblock_index(voff, nsub_);
  at.req_site = r.site;
  at.req_obj = r.object;
  return at;
}

void ProvCollector::flush(Stats& stats) const {
  stats.prov_enabled = true;
  const std::vector<SiteInfo>& sites = sites_.sites();

  stats.prov_site_names.clear();
  stats.prov_site_table.clear();
  stats.prov_site_table.reserve(sites.size() * kSiteStride);
  for (std::size_t i = 0; i < sites.size(); ++i) {
    stats.prov_site_names.push_back(sites[i].name);
    static const SiteRow kEmpty{};
    const SiteRow& sr = i < rows_.size() ? rows_[i] : kEmpty;
    stats.prov_site_table.push_back(sites[i].obj_size);
    stats.prov_site_table.push_back(sites[i].objects);
    stats.prov_site_table.push_back(sites[i].bytes);
    for (const std::uint64_t v : sr.false_by_type) {
      stats.prov_site_table.push_back(v);
    }
    for (const std::uint64_t v : sr.true_by_type) {
      stats.prov_site_table.push_back(v);
    }
    stats.prov_site_table.push_back(sr.avoided);
    stats.prov_site_table.push_back(sr.wasted);
  }

  // Hot lines: rank by total conflicts, then ascending (line, site) so the
  // cut is deterministic; keep the top kMaxHotLines rows in the blob.
  struct LineRow {
    Addr line;
    SiteId site;
    std::uint64_t nfalse;
    std::uint64_t ntrue;
  };
  std::vector<LineRow> hot;
  hot.reserve(lines_.size());
  // asfsim-lint: allow(unordered-iteration) — std::map iterates in key order.
  for (const auto& [key, counts] : lines_) {
    hot.push_back(LineRow{key.first, key.second, counts.first, counts.second});
  }
  std::sort(hot.begin(), hot.end(), [](const LineRow& a, const LineRow& b) {
    const std::uint64_t ta = a.nfalse + a.ntrue;
    const std::uint64_t tb = b.nfalse + b.ntrue;
    if (ta != tb) return ta > tb;
    if (a.line != b.line) return a.line < b.line;
    return a.site < b.site;
  });
  if (hot.size() > kMaxHotLines) hot.resize(kMaxHotLines);
  stats.prov_hot_lines.clear();
  stats.prov_hot_lines.reserve(hot.size() * kLineStride);
  for (const LineRow& r : hot) {
    stats.prov_hot_lines.push_back(r.line);
    stats.prov_hot_lines.push_back(r.site);
    stats.prov_hot_lines.push_back(r.nfalse);
    stats.prov_hot_lines.push_back(r.ntrue);
  }

  stats.prov_pairs.clear();
  stats.prov_pairs.reserve(pairs_.size() * kPairStride);
  // asfsim-lint: allow(unordered-iteration) — std::map iterates in key order.
  for (const auto& [key, counts] : pairs_) {
    stats.prov_pairs.push_back(key.first);
    stats.prov_pairs.push_back(key.second);
    stats.prov_pairs.push_back(counts.first);
    stats.prov_pairs.push_back(counts.second);
  }
}

}  // namespace asfsim::prov
