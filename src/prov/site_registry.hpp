// Allocation-site registry: the address->provenance half of the conflict
// attribution pipeline (docs/observability.md, "Conflict provenance").
//
// Workloads declare *sites* — named families of guest objects with a fixed
// per-object size ("oltp.record", "gnode", "kmeans.new_centers") — and the
// GAllocator records every tagged allocation as an extent against its site.
// At conflict time the collector resolves a faulting byte address back to
// (site, object index) with one binary search over the sorted extents.
//
// The registry is entirely off the simulation hot path: it is only consulted
// when a conflict is actually detected (and conflicts already pay an abort),
// and it is not even constructed unless SimConfig::provenance is set.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/types.hpp"

namespace asfsim::prov {

/// Dense site identifier. Site 0 is always "(untagged)": addresses that no
/// recorded extent covers (allocator padding, untagged legacy allocations).
using SiteId = std::uint32_t;
inline constexpr SiteId kUntaggedSite = 0;

/// Aggregate shape of one site, reported in the stats blob and the kSite
/// trace events.
struct SiteInfo {
  std::string name;
  std::uint64_t obj_size = 0;  // bytes per object (0 = variable/unknown)
  std::uint64_t objects = 0;   // objects allocated against this site
  std::uint64_t bytes = 0;     // total bytes allocated against this site
};

class SiteRegistry {
 public:
  SiteRegistry();

  /// Register (or look up) a site by name. Names are sanitized to the
  /// serializer-safe charset [A-Za-z0-9_.:()-]; registering an existing
  /// name returns its id (the first obj_size wins).
  SiteId register_site(std::string_view name, std::uint64_t obj_size);

  /// Record one tagged allocation. Extents must not overlap (the bump
  /// allocator guarantees this; arena refills are recorded untagged).
  void on_alloc(Addr base, std::uint64_t size, SiteId site);

  struct Location {
    SiteId site = kUntaggedSite;
    std::uint64_t object = 0;  // site-wide object index (allocation order)
  };

  /// Resolve a byte address to the covering site, or kUntaggedSite.
  [[nodiscard]] Location resolve(Addr addr) const;

  [[nodiscard]] const std::vector<SiteInfo>& sites() const { return sites_; }

 private:
  struct Extent {
    Addr base = 0;
    std::uint64_t size = 0;
    SiteId site = kUntaggedSite;
    std::uint64_t first_object = 0;  // object index of the extent's base
  };

  std::vector<SiteInfo> sites_;
  std::unordered_map<std::string, SiteId> by_name_;
  // Extents arrive in ascending-address order from the bump allocator, but
  // per-core arenas interleave; resolve() sorts lazily on first use after
  // an append.
  mutable std::vector<Extent> extents_;
  mutable bool sorted_ = true;
};

}  // namespace asfsim::prov
