#include "prov/site_registry.hpp"

#include <algorithm>
#include <cassert>

namespace asfsim::prov {

namespace {

bool site_char_ok(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '.' || c == ':' ||
         c == '(' || c == ')' || c == '-';
}

// Site names land in the stats blob (whitespace-delimited tokens) and in
// trace JSONL strings; clamp them to a charset both parsers accept verbatim.
std::string sanitize(std::string_view name) {
  std::string out(name.empty() ? std::string_view{"(unnamed)"} : name);
  for (char& c : out) {
    if (!site_char_ok(c)) c = '_';
  }
  return out;
}

}  // namespace

SiteRegistry::SiteRegistry() {
  sites_.push_back(SiteInfo{"(untagged)", 0, 0, 0});
  by_name_.emplace(sites_.back().name, kUntaggedSite);
}

SiteId SiteRegistry::register_site(std::string_view name,
                                   std::uint64_t obj_size) {
  std::string key = sanitize(name);
  const auto it = by_name_.find(key);
  if (it != by_name_.end()) return it->second;
  const SiteId id = static_cast<SiteId>(sites_.size());
  sites_.push_back(SiteInfo{key, obj_size, 0, 0});
  by_name_.emplace(std::move(key), id);
  return id;
}

void SiteRegistry::on_alloc(Addr base, std::uint64_t size, SiteId site) {
  assert(site < sites_.size());
  SiteInfo& info = sites_[site];
  const std::uint64_t first = info.objects;
  info.objects += info.obj_size != 0 ? (size + info.obj_size - 1) / info.obj_size
                                     : 1;
  info.bytes += size;
  if (!extents_.empty() && base < extents_.back().base) sorted_ = false;
  extents_.push_back(Extent{base, size, site, first});
}

SiteRegistry::Location SiteRegistry::resolve(Addr addr) const {
  if (extents_.empty()) return {};
  if (!sorted_) {
    std::sort(extents_.begin(), extents_.end(),
              [](const Extent& a, const Extent& b) { return a.base < b.base; });
    sorted_ = true;
  }
  // First extent with base > addr; the candidate is its predecessor.
  auto it = std::upper_bound(
      extents_.begin(), extents_.end(), addr,
      [](Addr a, const Extent& e) { return a < e.base; });
  if (it == extents_.begin()) return {};
  --it;
  if (addr >= it->base + it->size) return {};
  Location loc;
  loc.site = it->site;
  const std::uint64_t obj_size = sites_[it->site].obj_size;
  loc.object =
      it->first_object + (obj_size != 0 ? (addr - it->base) / obj_size : 0);
  return loc;
}

}  // namespace asfsim::prov
