#include "sarif.hpp"

#include <cstdio>
#include <iterator>

namespace asfsim_lint {
namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

struct RuleMeta {
  const char* id;
  const char* short_desc;
};

// Keep ids in a stable order: ruleIndex in results points here.
constexpr RuleMeta kRules[] = {
    {"coawait-in-condition",
     "co_await inside an if/while/for/switch header or ternary condition "
     "(GCC 12 coroutine-frame miscompile, DESIGN.md s7)"},
    {"discarded-task",
     "Result of a Task-returning function is discarded; a dropped Task "
     "never runs its body"},
    {"global-alloc-in-tx",
     "Guest-thread code allocates via the global bump allocator instead of "
     "GuestCtx::alloc_local (fabricates WAW false sharing, DESIGN.md s6.9)"},
    {"raw-guest-access",
     "Guest-thread code uses host-side backdoors (poke/peek/backing/"
     "reinterpret_cast) instead of GuestCtx typed loads/stores"},
    {"nondeterministic-source",
     "Clock/entropy/environment read in simulator-affecting code; results "
     "must be a pure function of (config, seed)"},
    {"unordered-iteration",
     "Range-for over an unordered container in simulator-affecting code; "
     "iteration order is unspecified"},
    {"hash-completeness",
     "Config field missing from JobSpec::canonical; the content-addressed "
     "result cache cannot distinguish configs differing in this field"},
    {"stats-blob-completeness",
     "Stats counter missing from the stats blob serializer or parser; the "
     "round-trip silently drops it"},
};

int rule_index(const std::string& id) {
  for (int i = 0; i < static_cast<int>(std::size(kRules)); ++i) {
    if (id == kRules[i].id) return i;
  }
  return -1;
}

}  // namespace

std::string to_sarif(const std::vector<Diagnostic>& diags) {
  std::string out;
  out +=
      "{\n"
      "  \"$schema\": "
      "\"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
      "Schemata/sarif-schema-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [\n"
      "    {\n"
      "      \"tool\": {\n"
      "        \"driver\": {\n"
      "          \"name\": \"asfsim_lint\",\n"
      "          \"version\": \"2.0.0\",\n"
      "          \"informationUri\": "
      "\"https://example.invalid/asfsim/docs/static_analysis.md\",\n"
      "          \"rules\": [\n";
  for (std::size_t i = 0; i < std::size(kRules); ++i) {
    out += "            {\n";
    out += "              \"id\": \"" + std::string(kRules[i].id) + "\",\n";
    out += "              \"shortDescription\": { \"text\": \"" +
           json_escape(kRules[i].short_desc) + "\" },\n";
    out += "              \"defaultConfiguration\": { \"level\": \"error\" }\n";
    out += i + 1 < std::size(kRules) ? "            },\n" : "            }\n";
  }
  out +=
      "          ]\n"
      "        }\n"
      "      },\n"
      "      \"results\": [\n";
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    out += "        {\n";
    out += "          \"ruleId\": \"" + json_escape(d.rule) + "\",\n";
    const int ri = rule_index(d.rule);
    if (ri >= 0) {
      out += "          \"ruleIndex\": " + std::to_string(ri) + ",\n";
    }
    out += "          \"level\": \"error\",\n";
    out += "          \"message\": { \"text\": \"" + json_escape(d.message) +
           "\" },\n";
    out +=
        "          \"locations\": [\n"
        "            {\n"
        "              \"physicalLocation\": {\n"
        "                \"artifactLocation\": { \"uri\": \"" +
        json_escape(d.path) +
        "\" },\n"
        "                \"region\": { \"startLine\": " +
        std::to_string(d.line) +
        " }\n"
        "              }\n"
        "            }\n"
        "          ]\n";
    out += i + 1 < diags.size() ? "        },\n" : "        }\n";
  }
  out +=
      "      ]\n"
      "    }\n"
      "  ]\n"
      "}\n";
  return out;
}

}  // namespace asfsim_lint
