// asfsim_lint parser: recursive-descent declaration/statement parsing over
// the lexer's token stream (see ast.hpp for what it produces and what it
// deliberately leaves out).
#pragma once

#include "ast.hpp"
#include "lexer.hpp"

namespace asfsim_lint {

/// Build the semantic index for one file. Never fails: unparseable regions
/// simply contribute no declarations (the tool must stay usable on any
/// source the lexer accepts).
Ast parse(const LexedFile& file);

/// Shared token helpers (parser, rules, model_rules).
inline bool tok_is(const Token& t, const char* s) { return t.text == s; }
inline bool tok_ident(const Token& t) { return t.kind == TokKind::kIdent; }

/// Token index of the `)` matching the `(` at `open` (forward walk over
/// parens only), or kNpos.
std::size_t match_paren(const std::vector<Token>& toks, std::size_t open);

/// Token index of the `(` matching the `)` at `close` (backward walk), or
/// kNpos.
std::size_t match_paren_back(const std::vector<Token>& toks,
                             std::size_t close);

}  // namespace asfsim_lint
