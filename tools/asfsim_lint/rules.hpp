// asfsim_lint rule engine: simulator-specific guest-code invariants,
// checked over the token streams produced by lexer.cpp.
//
// Rules (see docs/static_analysis.md for the full write-ups):
//   R1 coawait-in-condition  co_await inside an if/while/for/switch header
//                            or a ternary condition (DESIGN.md §7 miscompile)
//   R2 discarded-task        call to a Task-returning function whose result
//                            is neither co_awaited nor stored
//   R3 global-alloc-in-tx    guest-thread code in workloads/ allocating via
//                            the global bump allocator instead of
//                            GuestCtx::alloc_local (DESIGN.md §6.9)
//   R4 raw-guest-access      guest-thread code in workloads/ touching guest
//                            memory through host-side backdoors (poke/peek/
//                            backing()/reinterpret_cast) instead of the
//                            GuestCtx typed loads/stores
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "lexer.hpp"

namespace asfsim_lint {

inline constexpr const char* kRuleCoawaitInCondition = "coawait-in-condition";
inline constexpr const char* kRuleDiscardedTask = "discarded-task";
inline constexpr const char* kRuleGlobalAllocInTx = "global-alloc-in-tx";
inline constexpr const char* kRuleRawGuestAccess = "raw-guest-access";

struct Diagnostic {
  std::string path;
  std::uint32_t line;
  std::string rule;
  std::string message;
  std::string fix_hint;  // optional; shown under --fix-hints
};

/// Functions declared/defined with a Task<...> return type in any scanned
/// file: name -> set of accepted call-site arities (declared parameter
/// counts, including the shorter forms allowed by defaulted parameters).
/// Arity is what disambiguates guest-DS methods from host-container
/// homonyms (GHeap::push(GuestCtx&, k) vs std::queue::push(v)).
/// Built once over the whole file set, consumed by R2.
using TaskFunctionMap =
    std::unordered_map<std::string, std::unordered_set<int>>;

TaskFunctionMap collect_task_functions(const std::vector<LexedFile>& files);

/// Run every rule over one file. `task_fns` comes from
/// collect_task_functions over the full scan set.
std::vector<Diagnostic> check_file(const LexedFile& file,
                                   const TaskFunctionMap& task_fns);

}  // namespace asfsim_lint
