// asfsim_lint rule engine: simulator-specific guest-code invariants,
// checked over the AST/CFG built by parser.cpp and cfg.cpp.
//
// Rules (see docs/static_analysis.md for the full write-ups):
//   R1 coawait-in-condition    co_await inside an if/while/for/switch header
//                              or a ternary condition (DESIGN.md §7
//                              miscompile); detected on CFG condition nodes
//   R2 discarded-task          call to a Task-returning function whose result
//                              is neither co_awaited nor stored
//   R3 global-alloc-in-tx      guest-thread code in workloads/ allocating via
//                              the global bump allocator instead of
//                              GuestCtx::alloc_local (DESIGN.md §6.9)
//   R4 raw-guest-access        guest-thread code in workloads/ touching guest
//                              memory through host-side backdoors (poke/peek/
//                              backing()/reinterpret_cast) instead of the
//                              GuestCtx typed loads/stores
//   R5 nondeterministic-source rand()/time()/system_clock/getenv/... in
//                              simulator-affecting code — results must be a
//                              pure function of (config, seed)
//   R6 unordered-iteration     range-for over an unordered container in
//                              simulator-affecting code — iteration order
//                              varies across stdlib implementations and runs
//
// The cross-TU model-consistency rules (hash-completeness,
// stats-blob-completeness) live in model_rules.{hpp,cpp}.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ast.hpp"
#include "lexer.hpp"

namespace asfsim_lint {

inline constexpr const char* kRuleCoawaitInCondition = "coawait-in-condition";
inline constexpr const char* kRuleDiscardedTask = "discarded-task";
inline constexpr const char* kRuleGlobalAllocInTx = "global-alloc-in-tx";
inline constexpr const char* kRuleRawGuestAccess = "raw-guest-access";
inline constexpr const char* kRuleNondeterministicSource =
    "nondeterministic-source";
inline constexpr const char* kRuleUnorderedIteration = "unordered-iteration";
inline constexpr const char* kRuleHashCompleteness = "hash-completeness";
inline constexpr const char* kRuleStatsBlobCompleteness =
    "stats-blob-completeness";

/// One textual edit in the original source bytes: replace [begin, end) with
/// `replacement`. Edits attached to one Diagnostic never overlap each other.
struct FixEdit {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::string replacement;
};

struct Diagnostic {
  std::string path;
  std::uint32_t line;
  std::string rule;
  std::string message;
  std::string fix_hint;        // optional; shown under --fix-hints
  std::vector<FixEdit> fixes;  // optional; applied by --fix
};

/// One file after lexing + parsing; the unit every pass consumes.
struct ParsedFile {
  LexedFile file;
  Ast ast;
};

/// Functions declared/defined with a Task<...> return type in any scanned
/// file: name -> set of accepted call-site arities (declared parameter
/// counts, including the shorter forms allowed by defaulted parameters).
/// Arity is what disambiguates guest-DS methods from host-container
/// homonyms (GHeap::push(GuestCtx&, k) vs std::queue::push(v)).
using TaskFunctionMap =
    std::unordered_map<std::string, std::unordered_set<int>>;

/// Cross-file context built once over the whole scan set.
struct RuleContext {
  TaskFunctionMap task_fns;
  /// Container-typed declarations by name (fields, locals, parameters);
  /// values are the declared type spellings. The determinism pass resolves
  /// iterated expressions against these.
  std::unordered_map<std::string, std::vector<std::string>> containers;
};

RuleContext collect_context(const std::vector<ParsedFile>& files);

/// True when `path` lies in a directory whose code feeds simulation results
/// (the determinism rules' scope).
bool sim_affecting_path(const std::string& path);

/// Run rules R1-R6 over one file. `ctx` comes from collect_context over the
/// full scan set.
std::vector<Diagnostic> check_file(const ParsedFile& pf,
                                   const RuleContext& ctx);

}  // namespace asfsim_lint
