#include "parser.hpp"

#include <unordered_set>

namespace asfsim_lint {
namespace {

// Keywords that, when hit while walking back from a `{`, prove the brace is
// not a function body (type/namespace/control/label contexts).
const std::unordered_set<std::string> kNonFunctionKeywords = {
    "struct",  "class",   "union",    "enum",    "namespace", "else",
    "do",      "try",     "export",   "extern",  "return",    "co_return",
    "co_yield", "co_await", "if",     "while",   "for",       "switch",
    "case",    "default", "public",   "private", "protected", "concept",
    "requires"};

// Tokens skipped while walking back from a `{` across a trailing return
// type / cv-qualifier run, looking for the parameter list's `)`.
bool skippable_before_body(const Token& t) {
  if (t.kind == TokKind::kIdent) {
    return kNonFunctionKeywords.count(t.text) == 0;
  }
  static const std::unordered_set<std::string> kPunct = {
      "::", "<", ">", ">>", ",", "*", "&", "&&", "->"};
  return kPunct.count(t.text) != 0;
}

const std::unordered_set<std::string> kControlIntro = {"if", "while", "for",
                                                       "switch", "catch"};

struct BraceClass {
  bool is_function = false;
  bool is_lambda = false;
  std::size_t param_open = kNpos;  // `(` of the parameter list, if any
};

/// Decide whether the `{` at `b` opens a function-like body (free/member
/// function, constructor, or lambda) and locate its parameter list. Pure
/// token heuristic; see the walk-back rules in docs/static_analysis.md.
BraceClass classify_brace(const std::vector<Token>& toks, std::size_t b) {
  BraceClass out;
  if (b == 0) return out;
  std::size_t k = b - 1;
  for (int steps = 0; steps < 24; ++steps) {
    const Token& t = toks[k];
    if (tok_is(t, "]")) {  // capture list directly: `[&] {`
      out.is_function = true;
      out.is_lambda = true;
      return out;
    }
    if (tok_is(t, ")")) {
      const std::size_t open = match_paren_back(toks, k);
      if (open == kNpos) return out;
      if (open == 0) {
        out.is_function = true;
        out.param_open = open;
        return out;
      }
      std::size_t p = open - 1;
      // `if constexpr (...)`: the intro keyword sits one further back.
      if (tok_is(toks[p], "constexpr") && p > 0) --p;
      if (tok_ident(toks[p]) && kControlIntro.count(toks[p].text) != 0) {
        return out;
      }
      // `noexcept(...)` / `requires(...)` trail a declarator: keep walking.
      if (tok_is(toks[p], "noexcept") || tok_is(toks[p], "requires")) {
        if (open == 0) return out;
        k = open - 1;
        continue;
      }
      if (tok_ident(toks[p]) || tok_is(toks[p], ">") || tok_is(toks[p], ">>")) {
        out.is_function = true;
        out.param_open = open;
        return out;
      }
      if (tok_is(toks[p], "]")) {
        out.is_function = true;
        out.is_lambda = true;
        out.param_open = open;
        return out;
      }
      return out;
    }
    if (!skippable_before_body(t)) return out;
    if (k == 0) return out;
    --k;
  }
  return out;
}

/// Join token spellings into a readable type string ("std::uint32_t",
/// "std::unordered_map<Addr, SpecState>").
std::string join_type(const std::vector<Token>& toks, std::size_t begin,
                      std::size_t end) {
  std::string out;
  for (std::size_t i = begin; i < end; ++i) {
    const std::string& t = toks[i].text;
    const bool glue = out.empty() || t == "::" || t == "<" || t == ">" ||
                      t == ">>" || t == "," || t == "&" || t == "*" ||
                      (i > begin && (toks[i - 1].text == "::" ||
                                     toks[i - 1].text == "<" ||
                                     toks[i - 1].text == ","));
    if (!glue) out += ' ';
    out += t;
    if (t == ",") out += ' ';
  }
  return out;
}

bool type_names_unordered(const std::string& type_text) {
  return type_text.find("unordered_") != std::string::npos;
}

class Parser {
 public:
  explicit Parser(const LexedFile& file) : file_(file), toks_(file.tokens) {}

  Ast run() {
    analyze_blocks();
    mark_coroutines();
    parse_structs();
    parse_params();
    parse_range_fors();
    scan_container_decls();
    return std::move(ast_);
  }

 private:
  // ---- pass 1: brace matching, function discovery, fn_of ----------------
  void analyze_blocks() {
    ast_.fn_of.assign(toks_.size(), kNpos);
    struct OpenBlock {
      std::size_t open;
      bool is_function;
      std::size_t fn_index;  // into ast_.functions when is_function
      bool is_struct;
      std::size_t struct_index;
    };
    std::vector<OpenBlock> stack;
    std::vector<std::size_t> fn_stack;
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      ast_.fn_of[i] = fn_stack.empty() ? kNpos : fn_stack.back();
      if (tok_is(toks_[i], "{")) {
        const BraceClass bc = classify_brace(toks_, i);
        OpenBlock ob{i, bc.is_function, kNpos, false, kNpos};
        if (bc.is_function) {
          FunctionDecl fn;
          fn.body_open = i;
          fn.line = toks_[i].line;
          fn.is_lambda = bc.is_lambda;
          fn.enclosing = fn_stack.empty() ? kNpos : fn_stack.back();
          fn.name = bc.is_lambda ? "<lambda>" : function_name(bc.param_open);
          param_open_of_.push_back(bc.param_open);
          ast_.functions.push_back(std::move(fn));
          ob.fn_index = ast_.functions.size() - 1;
          fn_stack.push_back(ob.fn_index);
          ast_.fn_of[i] = ob.fn_index;
        } else if (const std::size_t si = struct_intro(i); si != kNpos) {
          ob.is_struct = true;
          ob.struct_index = si;
        }
        stack.push_back(ob);
      } else if (tok_is(toks_[i], "}")) {
        if (stack.empty()) continue;
        const OpenBlock ob = stack.back();
        stack.pop_back();
        if (ob.is_function) {
          ast_.functions[ob.fn_index].body_close = i;
          if (!fn_stack.empty() && fn_stack.back() == ob.fn_index) {
            fn_stack.pop_back();
          }
        } else if (ob.is_struct) {
          ast_.structs[ob.struct_index].body_close = i;
        }
      }
    }
    for (FunctionDecl& f : ast_.functions) {
      if (f.body_close == kNpos) {
        f.body_close = toks_.empty() ? 0 : toks_.size() - 1;
      }
    }
    for (StructDecl& s : ast_.structs) {
      if (s.body_close == kNpos) {
        s.body_close = toks_.empty() ? 0 : toks_.size() - 1;
      }
    }
  }

  /// If the `{` at `b` opens a struct/class/union body, record the
  /// declaration and return its index.
  std::size_t struct_intro(std::size_t b) {
    // Walk back over `final` and a base-clause until the name; the keyword
    // sits right before it. Bounded walk: base clauses are short here.
    std::size_t k = b;
    for (int steps = 0; steps < 48 && k > 0; ++steps) {
      --k;
      const Token& t = toks_[k];
      if (tok_ident(t) &&
          (t.text == "struct" || t.text == "class" || t.text == "union")) {
        if (k > 0 && tok_is(toks_[k - 1], "enum")) return kNpos;
        if (k + 1 >= b || !tok_ident(toks_[k + 1])) return kNpos;
        StructDecl s;
        s.name = toks_[k + 1].text;
        s.line = toks_[k + 1].line;
        s.body_open = b;
        ast_.structs.push_back(std::move(s));
        return ast_.structs.size() - 1;
      }
      // Legal base-clause / name tokens; anything else ends the walk.
      const bool ok =
          tok_ident(t) || tok_is(t, ":") || tok_is(t, ",") ||
          tok_is(t, "::") || tok_is(t, "<") || tok_is(t, ">") ||
          tok_is(t, ">>");
      if (!ok) return kNpos;
      if (tok_ident(t) && kNonFunctionKeywords.count(t.text) != 0 &&
          t.text != "public" && t.text != "private" && t.text != "protected" &&
          t.text != "struct" && t.text != "class" && t.text != "union") {
        return kNpos;
      }
    }
    return kNpos;
  }

  std::string function_name(std::size_t param_open) const {
    if (param_open == kNpos || param_open == 0) return "";
    std::size_t k = param_open - 1;
    // Skip an explicit template-argument list: `foo<int>(...)`.
    if (tok_is(toks_[k], ">") || tok_is(toks_[k], ">>")) {
      int depth = 0;
      for (;; --k) {
        if (tok_is(toks_[k], ">")) ++depth;
        if (tok_is(toks_[k], ">>")) depth += 2;
        if (tok_is(toks_[k], "<")) --depth;
        if (depth <= 0 || k == 0) break;
      }
      if (k == 0) return "";
      --k;
    }
    return tok_ident(toks_[k]) ? toks_[k].text : "";
  }

  // ---- pass 2: coroutine marking ----------------------------------------
  void mark_coroutines() {
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      if (tok_is(toks_[i], "co_await") || tok_is(toks_[i], "co_return") ||
          tok_is(toks_[i], "co_yield")) {
        const std::size_t fn = ast_.fn_of[i];
        if (fn != kNpos) ast_.functions[fn].is_coroutine = true;
      }
    }
  }

  // ---- pass 3: struct fields --------------------------------------------
  void parse_structs() {
    for (StructDecl& s : ast_.structs) {
      parse_fields(s);
      for (const FieldDecl& f : s.fields) {
        if (type_names_unordered(f.type_text)) {
          ast_.container_decls.push_back({f.type_text, f.name, f.line});
        }
      }
    }
  }

  /// Member declarations at the struct body's own depth; methods (any `(`
  /// in the statement), access labels, nested types, using/static members
  /// are skipped. A `{...}` run at member depth whose closer is not
  /// followed by `;` is a definition body and ends the statement.
  void parse_fields(StructDecl& s) {
    std::vector<std::size_t> stmt;  // token indices of the current statement
    bool discard = false;
    for (std::size_t i = s.body_open + 1; i < s.body_close;) {
      const Token& t = toks_[i];
      if (tok_is(t, "{") || tok_is(t, "(") || tok_is(t, "[")) {
        const std::size_t close = match_bracket(i);
        if (tok_is(t, "{") &&
            (close + 1 >= s.body_close || !tok_is(toks_[close + 1], ";"))) {
          // Definition body (inline method, nested type): drop statement.
          stmt.clear();
          discard = false;
          i = close + 1;
          continue;
        }
        if (!tok_is(t, "{")) discard = true;  // parens/brackets: not a field
        for (std::size_t k = i; k <= close && k < s.body_close; ++k) {
          stmt.push_back(k);
        }
        i = close + 1;
        continue;
      }
      if (tok_is(t, ";")) {
        if (!discard) record_field(s, stmt);
        stmt.clear();
        discard = false;
        ++i;
        continue;
      }
      if (tok_is(t, ":") && !stmt.empty() && tok_ident(toks_[stmt[0]]) &&
          (toks_[stmt[0]].text == "public" ||
           toks_[stmt[0]].text == "private" ||
           toks_[stmt[0]].text == "protected")) {
        stmt.clear();  // access label
        discard = false;
        ++i;
        continue;
      }
      stmt.push_back(i);
      ++i;
    }
  }

  void record_field(StructDecl& s, const std::vector<std::size_t>& stmt) {
    if (stmt.size() < 2) return;
    static const std::unordered_set<std::string> kNonField = {
        "using",   "typedef", "friend", "static", "template",      "struct",
        "class",   "union",   "enum",   "operator", "static_assert", "explicit",
        "virtual", "namespace"};
    for (const std::size_t k : stmt) {
      if (tok_ident(toks_[k]) && kNonField.count(toks_[k].text) != 0) return;
    }
    // Terminator: `=` (default init) or trailing `{...}` (brace init); the
    // declarator name is the last identifier before it.
    std::size_t term = stmt.size();
    for (std::size_t j = 0; j < stmt.size(); ++j) {
      const Token& t = toks_[stmt[j]];
      if (tok_is(t, "=") || tok_is(t, "{")) {
        term = j;
        break;
      }
    }
    std::size_t name_j = kNpos;
    for (std::size_t j = term; j-- > 0;) {
      if (tok_ident(toks_[stmt[j]])) {
        name_j = j;
        break;
      }
      if (!tok_is(toks_[stmt[j]], "&") && !tok_is(toks_[stmt[j]], "*")) {
        return;  // array declarator etc.: not a plain field
      }
    }
    if (name_j == kNpos || name_j == 0) return;
    // Attributes lead some declarations; strip a leading [[...]] run.
    std::size_t type_b = 0;
    while (type_b + 1 < name_j && tok_is(toks_[stmt[type_b]], "[")) {
      while (type_b < name_j && !tok_is(toks_[stmt[type_b]], "]")) ++type_b;
      while (type_b < name_j && tok_is(toks_[stmt[type_b]], "]")) ++type_b;
    }
    if (type_b >= name_j) return;
    FieldDecl f;
    f.name = toks_[stmt[name_j]].text;
    f.line = toks_[stmt[name_j]].line;
    f.name_tok = stmt[name_j];
    std::vector<Token> type_toks;
    for (std::size_t j = type_b; j < name_j; ++j) {
      type_toks.push_back(toks_[stmt[j]]);
    }
    f.type_text = join_type(type_toks, 0, type_toks.size());
    if (f.type_text.empty()) return;
    s.fields.push_back(std::move(f));
  }

  // ---- pass 4: parameter lists ------------------------------------------
  void parse_params() {
    for (std::size_t fi = 0; fi < ast_.functions.size(); ++fi) {
      const std::size_t open = param_open_of_[fi];
      if (open == kNpos) continue;
      const std::size_t close = match_paren(toks_, open);
      if (close == kNpos) continue;
      FunctionDecl& fn = ast_.functions[fi];
      std::size_t begin = open + 1;
      int depth = 0;
      for (std::size_t k = open + 1; k <= close; ++k) {
        const Token& t = toks_[k];
        if (tok_is(t, "(") || tok_is(t, "[") || tok_is(t, "{") ||
            tok_is(t, "<")) {
          ++depth;
        }
        if (tok_is(t, ")") || tok_is(t, "]") || tok_is(t, "}") ||
            tok_is(t, ">")) {
          --depth;
        }
        if (tok_is(t, ">>")) depth -= 2;
        const bool at_end = k == close;
        if ((depth == 0 && tok_is(t, ",")) || (at_end && depth <= 0)) {
          if (k > begin) fn.params.push_back(parse_one_param(begin, k));
          begin = k + 1;
        }
      }
      for (const ParamDecl& p : fn.params) {
        if (type_names_unordered(p.type_text)) {
          ast_.container_decls.push_back(
              {p.type_text, p.name, toks_[open].line});
        }
      }
    }
  }

  ParamDecl parse_one_param(std::size_t begin, std::size_t end) const {
    ParamDecl p;
    std::size_t eq = end;
    for (std::size_t k = begin; k < end; ++k) {
      if (tok_is(toks_[k], "=")) {
        eq = k;
        p.defaulted = true;
        break;
      }
    }
    std::size_t name_at = kNpos;
    if (eq > begin && tok_ident(toks_[eq - 1]) && eq - 1 > begin) {
      name_at = eq - 1;  // `Type name` (>= 2 tokens): last ident is the name
    }
    if (name_at != kNpos) {
      p.name = toks_[name_at].text;
      p.type_text = join_type(toks_, begin, name_at);
    } else {
      p.type_text = join_type(toks_, begin, eq);
    }
    return p;
  }

  // ---- pass 5: range-for statements -------------------------------------
  void parse_range_fors() {
    for (std::size_t i = 0; i + 1 < toks_.size(); ++i) {
      if (!tok_is(toks_[i], "for") || !tok_is(toks_[i + 1], "(")) continue;
      const std::size_t open = i + 1;
      const std::size_t close = match_paren(toks_, open);
      if (close == kNpos) continue;
      int depth = 0;
      std::size_t colon = kNpos;
      for (std::size_t k = open; k < close; ++k) {
        const Token& t = toks_[k];
        if (tok_is(t, "(") || tok_is(t, "[") || tok_is(t, "{")) ++depth;
        if (tok_is(t, ")") || tok_is(t, "]") || tok_is(t, "}")) --depth;
        if (depth != 1) continue;
        if (tok_is(t, ";")) break;  // classic for
        if (tok_is(t, ":")) {
          colon = k;
          break;
        }
      }
      if (colon == kNpos) continue;
      ast_.range_fors.push_back({i, open, colon, close, ast_.fn_of[i]});
    }
  }

  // ---- pass 6: free-standing container declarations ---------------------
  /// Locals and parameters spelled `std::unordered_map<...> name ...`
  /// anywhere a declaration can start. Wrapped occurrences (e.g. the
  /// element type of a vector) are rejected by the boundary check; those
  /// are covered by the struct-field pass with their true outer type.
  void scan_container_decls() {
    for (std::size_t u = 0; u < toks_.size(); ++u) {
      if (!tok_ident(toks_[u]) ||
          toks_[u].text.rfind("unordered_", 0) != 0 || u + 1 >= toks_.size() ||
          !tok_is(toks_[u + 1], "<")) {
        continue;
      }
      // Declaration-start boundary before the (possibly std::-qualified)
      // container name.
      std::size_t p = u;
      if (p >= 2 && tok_is(toks_[p - 1], "::") &&
          tok_is(toks_[p - 2], "std")) {
        p -= 2;
      }
      while (p > 0 && tok_ident(toks_[p - 1]) &&
             (toks_[p - 1].text == "const" || toks_[p - 1].text == "static" ||
              toks_[p - 1].text == "mutable")) {
        --p;
      }
      if (p > 0) {
        const Token& b = toks_[p - 1];
        const bool boundary = tok_is(b, ";") || tok_is(b, "{") ||
                              tok_is(b, "}") || tok_is(b, "(") ||
                              tok_is(b, ",") || tok_is(b, ":");
        if (!boundary) continue;
      }
      // Balanced template-argument walk (a `>>` closes two levels).
      int depth = 0;
      std::size_t c = u + 1;
      for (; c < toks_.size(); ++c) {
        if (tok_is(toks_[c], "<")) ++depth;
        if (tok_is(toks_[c], ">")) --depth;
        if (tok_is(toks_[c], ">>")) depth -= 2;
        if (depth <= 0) break;
        if (tok_is(toks_[c], ";") || tok_is(toks_[c], "{")) {
          c = toks_.size();
          break;
        }
      }
      if (c + 1 >= toks_.size()) continue;
      std::size_t name_at = c + 1;
      while (name_at < toks_.size() && (tok_is(toks_[name_at], "&") ||
                                        tok_is(toks_[name_at], "*") ||
                                        tok_is(toks_[name_at], "const"))) {
        ++name_at;
      }
      if (name_at >= toks_.size() || !tok_ident(toks_[name_at])) continue;
      const std::size_t after = name_at + 1;
      if (after < toks_.size()) {
        const Token& a = toks_[after];
        const bool decl_end = tok_is(a, ";") || tok_is(a, "=") ||
                              tok_is(a, "{") || tok_is(a, "(") ||
                              tok_is(a, ",") || tok_is(a, ")") ||
                              tok_is(a, ":");
        if (!decl_end) continue;
      }
      ast_.container_decls.push_back({join_type(toks_, u, c + 1),
                                      toks_[name_at].text,
                                      toks_[name_at].line});
    }
  }

  std::size_t match_bracket(std::size_t open) const {
    const std::string& o = toks_[open].text;
    const char* close = o == "(" ? ")" : o == "[" ? "]" : "}";
    int depth = 0;
    for (std::size_t k = open; k < toks_.size(); ++k) {
      if (toks_[k].text == o) ++depth;
      if (toks_[k].text == close && --depth == 0) return k;
    }
    return toks_.size() - 1;
  }

  const LexedFile& file_;
  const std::vector<Token>& toks_;
  std::vector<std::size_t> param_open_of_;  // parallel to ast_.functions
  Ast ast_;
};

}  // namespace

std::size_t match_paren(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t k = open; k < toks.size(); ++k) {
    if (tok_is(toks[k], "(")) ++depth;
    if (tok_is(toks[k], ")") && --depth == 0) return k;
  }
  return kNpos;
}

std::size_t match_paren_back(const std::vector<Token>& toks,
                             std::size_t close) {
  int depth = 0;
  for (std::size_t k = close;; --k) {
    if (tok_is(toks[k], ")")) ++depth;
    if (tok_is(toks[k], "(")) {
      if (--depth == 0) return k;
    }
    if (k == 0) break;
  }
  return kNpos;
}

Ast parse(const LexedFile& file) { return Parser(file).run(); }

}  // namespace asfsim_lint
