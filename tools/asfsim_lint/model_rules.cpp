#include "model_rules.hpp"

#include <algorithm>
#include <map>
#include <string>

namespace asfsim_lint {
namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// Role suffixes: where each model file lives relative to its tree root.
constexpr const char* kConfigSuffix = "sim/config.hpp";
constexpr const char* kFaultConfigSuffix = "fault/fault_config.hpp";
constexpr const char* kOltpConfigSuffix = "oltp/oltp_config.hpp";
constexpr const char* kCmConfigSuffix = "cm/cm_config.hpp";
constexpr const char* kJobSpecSuffix = "runner/job_spec.cpp";
constexpr const char* kCountersSuffix = "stats/counters.hpp";
constexpr const char* kSerializeSuffix = "stats/serialize.cpp";

struct ModelGroup {
  const ParsedFile* config = nullptr;        // sim/config.hpp
  const ParsedFile* fault_config = nullptr;  // fault/fault_config.hpp
  const ParsedFile* oltp_config = nullptr;   // oltp/oltp_config.hpp
  const ParsedFile* cm_config = nullptr;     // cm/cm_config.hpp
  const ParsedFile* job_spec = nullptr;      // runner/job_spec.cpp
  const ParsedFile* counters = nullptr;      // stats/counters.hpp
  const ParsedFile* serialize = nullptr;     // stats/serialize.cpp
};

/// Does `name` occur in [begin, end) of the file's tokens — as an exact
/// identifier, or inside a string literal (serializers often spell field
/// names as the key string only)?
bool name_in_range(const LexedFile& f, std::size_t begin, std::size_t end,
                   const std::string& name) {
  for (std::size_t k = begin; k < end && k < f.tokens.size(); ++k) {
    const Token& t = f.tokens[k];
    if (t.kind == TokKind::kIdent && t.text == name) return true;
    if (t.kind == TokKind::kString &&
        t.text.find(name) != std::string::npos) {
      return true;
    }
  }
  return false;
}

bool name_in_file(const ParsedFile& pf, const std::string& name) {
  return name_in_range(pf.file, 0, pf.file.tokens.size(), name);
}

void report(std::vector<Diagnostic>& out, const ParsedFile& at_file,
            const FieldDecl& field, const char* rule, std::string message,
            std::string hint) {
  if (at_file.file.suppressions.allows(rule, field.line)) return;
  out.push_back({at_file.file.path, field.line, rule, std::move(message),
                 std::move(hint), {}});
}

/// hash-completeness over one config file's structs against the group's
/// job_spec.cpp.
void check_hash_file(const ParsedFile& config_file, const ParsedFile& spec,
                     std::vector<Diagnostic>& out) {
  for (const StructDecl& s : config_file.ast.structs) {
    for (const FieldDecl& f : s.fields) {
      if (name_in_file(spec, f.name)) continue;
      report(out, config_file, f, kRuleHashCompleteness,
             "field '" + s.name + "::" + f.name +
                 "' is not serialized into JobSpec::canonical (" +
                 spec.file.path +
                 ") — a config field outside the canonical string poisons "
                 "the result cache: two configs differing only here hash "
                 "identically and share a cached result",
             "add  kv(\"" + f.name + "\", c." + f.name +
                 ");  (or the matching nested spelling) to "
                 "JobSpec::canonical");
    }
  }
}

/// stats-blob-completeness: every Stats field in both serializer bodies.
void check_stats(const ParsedFile& counters, const ParsedFile& serialize,
                 std::vector<Diagnostic>& out) {
  const StructDecl* stats = counters.ast.find_struct("Stats");
  if (stats == nullptr) return;
  const FunctionDecl* ser = serialize.ast.find_function("serialize_stats");
  const FunctionDecl* de = serialize.ast.find_function("deserialize_stats");
  if (ser == nullptr || de == nullptr) return;
  for (const FieldDecl& f : stats->fields) {
    const bool in_ser =
        name_in_range(serialize.file, ser->body_open, ser->body_close + 1,
                      f.name);
    const bool in_de =
        name_in_range(serialize.file, de->body_open, de->body_close + 1,
                      f.name);
    if (in_ser && in_de) continue;
    const char* where = (!in_ser && !in_de) ? "serialize_stats and "
                                              "deserialize_stats"
                        : !in_ser           ? "serialize_stats"
                                            : "deserialize_stats";
    report(out, counters, f, kRuleStatsBlobCompleteness,
           "Stats counter '" + f.name + "' is missing from " + where +
               " (" + serialize.file.path +
               ") — the stats blob round-trip silently drops it and every "
               "archived/cached result loses the value",
           "serialize it with put(out, \"" + f.name + "\", s." + f.name +
               ") and parse it back in deserialize_stats");
  }
}

}  // namespace

std::vector<Diagnostic> check_model(const std::vector<ParsedFile>& files) {
  // Group role files by the path prefix before their role suffix, so
  // src/... and each fixture directory check internally.
  std::map<std::string, ModelGroup> groups;
  for (const ParsedFile& pf : files) {
    const std::string& p = pf.file.path;
    auto claim = [&](const char* suffix, const ParsedFile* ModelGroup::*slot) {
      if (!ends_with(p, suffix)) return;
      const std::string key = p.substr(0, p.size() - std::string(suffix).size());
      groups[key].*slot = &pf;
    };
    claim(kConfigSuffix, &ModelGroup::config);
    claim(kFaultConfigSuffix, &ModelGroup::fault_config);
    claim(kOltpConfigSuffix, &ModelGroup::oltp_config);
    claim(kCmConfigSuffix, &ModelGroup::cm_config);
    claim(kJobSpecSuffix, &ModelGroup::job_spec);
    claim(kCountersSuffix, &ModelGroup::counters);
    claim(kSerializeSuffix, &ModelGroup::serialize);
  }

  std::vector<Diagnostic> out;
  for (const auto& [key, g] : groups) {
    if (g.job_spec != nullptr) {
      if (g.config != nullptr) check_hash_file(*g.config, *g.job_spec, out);
      if (g.fault_config != nullptr) {
        check_hash_file(*g.fault_config, *g.job_spec, out);
      }
      if (g.oltp_config != nullptr) {
        check_hash_file(*g.oltp_config, *g.job_spec, out);
      }
      if (g.cm_config != nullptr) {
        check_hash_file(*g.cm_config, *g.job_spec, out);
      }
    }
    if (g.counters != nullptr && g.serialize != nullptr) {
      check_stats(*g.counters, *g.serialize, out);
    }
  }
  return out;
}

}  // namespace asfsim_lint
