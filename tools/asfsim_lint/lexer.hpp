// asfsim_lint lexer: a minimal, dependency-free C++ tokenizer.
//
// Produces a flat token stream (identifiers, punctuation, literals) with
// line numbers and byte offsets, plus the per-line suppression directives
// parsed out of comments. This is deliberately NOT a real C++ front end:
// the parser (parser.cpp) builds a declaration/statement AST on top of this
// stream, which is enough for the simulator's guest-code invariants and
// keeps the tool buildable with nothing but the standard library.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace asfsim_lint {

enum class TokKind : std::uint8_t {
  kIdent,    // identifiers and keywords (co_await, if, ...)
  kPunct,    // operators and punctuation, one logical op per token
  kNumber,   // numeric literal
  kString,   // string literal (text is the raw spelling)
  kChar,     // character literal
};

struct Token {
  TokKind kind;
  std::string text;
  std::uint32_t line;
  // Byte range [begin, end) in the original source; the autofixer (fix.cpp)
  // anchors its text edits here.
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// Suppressions collected from `// asfsim-lint: allow(rule)` comments.
/// A directive on a code line suppresses that line; a directive on a line
/// of its own suppresses the next code line. `allow-file(rule)` suppresses
/// the whole file. The rule name `all` matches every rule.
struct Suppressions {
  std::unordered_map<std::uint32_t, std::unordered_set<std::string>> by_line;
  std::unordered_set<std::string> whole_file;

  [[nodiscard]] bool allows(const std::string& rule, std::uint32_t line) const {
    if (whole_file.count(rule) != 0 || whole_file.count("all") != 0) {
      return true;
    }
    const auto it = by_line.find(line);
    if (it == by_line.end()) return false;
    return it->second.count(rule) != 0 || it->second.count("all") != 0;
  }
};

struct LexedFile {
  std::string path;
  std::string source;  // original bytes (the autofixer edits these)
  std::vector<Token> tokens;
  Suppressions suppressions;
};

/// Tokenize `source` (the contents of `path`). Comments and whitespace are
/// consumed; suppression directives inside comments are recorded. Handles
/// line/block comments, string/char literals with escapes, and raw string
/// literals; preprocessor directives are skipped line-wise (so `#include
/// <vector>` never looks like comparison operators).
LexedFile lex(std::string path, const std::string& source);

}  // namespace asfsim_lint
