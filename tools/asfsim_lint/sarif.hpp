// asfsim_lint SARIF 2.1.0 output (hand-rolled, dependency-free).
//
// Emits one run with full rule metadata so GitHub code scanning and other
// SARIF consumers can render the findings; see docs/static_analysis.md for
// the schema subset produced.
#pragma once

#include <string>
#include <vector>

#include "rules.hpp"

namespace asfsim_lint {

/// Serialize diagnostics as a SARIF 2.1.0 document (UTF-8 JSON, trailing
/// newline). `diags` may span many files.
std::string to_sarif(const std::vector<Diagnostic>& diags);

}  // namespace asfsim_lint
