// asfsim_lint model-consistency pass: cross-translation-unit checks that
// keep the simulator's serialized model in sync with its declared model.
//
//   hash-completeness         every SimConfig/CacheLevelConfig/FaultConfig
//                             field must be serialized into
//                             JobSpec::canonical (runner/job_spec.cpp). A
//                             field outside the canonical string silently
//                             poisons the content-addressed result cache:
//                             two configs differing only in that field hash
//                             identically and share a cache entry.
//   stats-blob-completeness   every Stats data member (stats/counters.hpp)
//                             must appear in BOTH serialize_stats and
//                             deserialize_stats (stats/serialize.cpp), or
//                             the stats blob round-trip silently drops it.
//
// Role files are recognized by path suffix and grouped by the path prefix
// before the suffix, so fixture copies under tests/lint_fixtures/model/...
// check against each other rather than against src/. Groups missing a role
// file are skipped silently (single-file invocations must not misfire).
#pragma once

#include <vector>

#include "rules.hpp"

namespace asfsim_lint {

/// Run the model-consistency rules over the whole scan set. Diagnostics are
/// anchored at the missing field's declaration, so suppressions sit on the
/// field itself.
std::vector<Diagnostic> check_model(const std::vector<ParsedFile>& files);

}  // namespace asfsim_lint
