// asfsim_lint AST: the declaration/statement view produced by parser.cpp.
//
// This is a lightweight semantic index over the token stream, not a full
// C++ AST: it records the declarations the rule passes need (struct/class
// fields, function definitions with parameter lists and body extents,
// range-for statements, container-typed variable declarations) and leaves
// expression structure to per-rule token walks over the recorded ranges.
// Every node carries token indices into LexedFile::tokens, so rules and the
// autofixer can always get back to lines and byte offsets.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace asfsim_lint {

inline constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

/// One data member of a struct/class (methods, using-aliases, nested types
/// and static members are deliberately excluded).
struct FieldDecl {
  std::string type_text;  // normalized type spelling ("std::uint32_t", ...)
  std::string name;
  std::uint32_t line = 0;
  std::size_t name_tok = kNpos;
};

struct StructDecl {
  std::string name;
  std::uint32_t line = 0;
  std::size_t body_open = kNpos;   // token index of `{`
  std::size_t body_close = kNpos;  // token index of matching `}`
  std::vector<FieldDecl> fields;
};

struct ParamDecl {
  std::string type_text;
  std::string name;  // empty for unnamed parameters
  bool defaulted = false;
};

/// A function-like definition: free/member function, constructor, or lambda.
struct FunctionDecl {
  std::string name;  // "<lambda>" for lambdas
  std::uint32_t line = 0;
  std::size_t body_open = kNpos;   // token index of `{`
  std::size_t body_close = kNpos;  // token index of matching `}`
  std::vector<ParamDecl> params;
  bool is_coroutine = false;  // body contains co_await/co_return/co_yield
  bool is_lambda = false;
  std::size_t enclosing = kNpos;  // index of enclosing FunctionDecl, if any
};

/// A range-based for statement: `for (<decl> : <expr>) ...`.
struct RangeForStmt {
  std::size_t for_tok = kNpos;    // the `for` keyword
  std::size_t open = kNpos;       // `(`
  std::size_t colon = kNpos;      // the `:` separating decl and range expr
  std::size_t close = kNpos;      // `)`
  std::size_t fn = kNpos;         // enclosing FunctionDecl index
};

/// Any declaration (field, local, parameter) whose declared type names a
/// template container; the determinism pass resolves iterated expressions
/// against these by name.
struct ContainerDecl {
  std::string type_text;  // full spelling incl. template args
  std::string name;
  std::uint32_t line = 0;
};

struct Ast {
  std::vector<StructDecl> structs;
  std::vector<FunctionDecl> functions;
  std::vector<RangeForStmt> range_fors;
  std::vector<ContainerDecl> container_decls;
  /// For each token: index into `functions` of the innermost function body
  /// containing it, or kNpos.
  std::vector<std::size_t> fn_of;

  [[nodiscard]] const FunctionDecl* function_at(std::size_t tok) const {
    if (tok >= fn_of.size() || fn_of[tok] == kNpos) return nullptr;
    return &functions[fn_of[tok]];
  }
  [[nodiscard]] bool in_coroutine(std::size_t tok) const {
    const FunctionDecl* f = function_at(tok);
    return f != nullptr && f->is_coroutine;
  }
  [[nodiscard]] const StructDecl* find_struct(const std::string& name) const {
    for (const StructDecl& s : structs) {
      if (s.name == name) return &s;
    }
    return nullptr;
  }
  [[nodiscard]] const FunctionDecl* find_function(
      const std::string& name) const {
    for (const FunctionDecl& f : functions) {
      if (f.name == name) return &f;
    }
    return nullptr;
  }
};

}  // namespace asfsim_lint
