// asfsim_lint driver: scan files/directories, run the rule engine, print
// `file:line: rule-id: message` diagnostics, exit nonzero on any finding.
//
//   asfsim_lint [options] <file-or-dir>...
//     --exclude <substr>   skip paths containing <substr> (repeatable)
//     --fix-hints          print the suggested rewrite under each finding
//     --list-rules         print the rule ids and one-line summaries
//
// Suppression: `// asfsim-lint: allow(<rule>)` on the offending line (or on
// a line of its own directly above it); `allow-file(<rule>)` anywhere in a
// file; `all` matches every rule.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lexer.hpp"
#include "rules.hpp"

namespace fs = std::filesystem;
using namespace asfsim_lint;

namespace {

bool is_cpp_source(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" ||
         ext == ".h" || ext == ".hh";
}

bool excluded(const std::string& path, const std::vector<std::string>& subs) {
  for (const auto& s : subs) {
    if (path.find(s) != std::string::npos) return true;
  }
  return false;
}

/// Returns false when `root` does not exist (a typo'd path must not read
/// as a clean run).
bool collect(const fs::path& root, const std::vector<std::string>& excludes,
             std::vector<fs::path>& out) {
  std::error_code ec;
  if (fs::is_directory(root, ec)) {
    for (fs::recursive_directory_iterator it(root, ec), end; it != end;
         it.increment(ec)) {
      if (ec) break;
      if (it->is_regular_file(ec) && is_cpp_source(it->path()) &&
          !excluded(it->path().generic_string(), excludes)) {
        out.push_back(it->path());
      }
    }
  } else if (fs::exists(root, ec)) {
    if (!excluded(root.generic_string(), excludes)) out.push_back(root);
  } else {
    std::cerr << "asfsim_lint: no such file or directory: " << root.string()
              << "\n";
    return false;
  }
  return true;
}

void print_rules() {
  std::cout
      << kRuleCoawaitInCondition
      << "  (R1) co_await inside an if/while/for/switch header or ternary\n"
      << "       condition: GCC 12 corrupts the coroutine frame when the\n"
      << "       controlled branch also suspends (DESIGN.md §7). Hoist the\n"
      << "       awaited value into a named local, then branch on it.\n"
      << kRuleDiscardedTask
      << "  (R2) call to a Task-returning function whose result is neither\n"
      << "       co_awaited nor stored: Task is lazy, a dropped task never\n"
      << "       runs its body.\n"
      << kRuleGlobalAllocInTx
      << "  (R3) guest-thread (coroutine) code in workloads/ allocating via\n"
      << "       galloc().alloc/alloc_lines: the global bump path hands\n"
      << "       concurrent transactions adjacent nodes in one cache line\n"
      << "       and fabricates WAW false sharing (DESIGN.md §6.9). Use\n"
      << "       GuestCtx::alloc_local.\n"
      << kRuleRawGuestAccess
      << "  (R4) guest-thread code in workloads/ calling poke/peek/backing\n"
      << "       or reinterpret_cast: host-side backdoors bypass the caches,\n"
      << "       the conflict detector, and the classifier byte masks. Use\n"
      << "       GuestCtx typed loads/stores.\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> excludes;
  std::vector<fs::path> roots;
  bool fix_hints = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--exclude") {
      if (i + 1 >= argc) {
        std::cerr << "asfsim_lint: --exclude requires a value\n";
        return 2;
      }
      excludes.emplace_back(argv[++i]);
    } else if (arg == "--fix-hints") {
      fix_hints = true;
    } else if (arg == "--list-rules") {
      print_rules();
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: asfsim_lint [--exclude <substr>]... [--fix-hints] "
                   "[--list-rules] <file-or-dir>...\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "asfsim_lint: unknown option: " << arg << "\n";
      return 2;
    } else {
      roots.emplace_back(arg);
    }
  }
  if (roots.empty()) {
    std::cerr << "asfsim_lint: no inputs (try --help)\n";
    return 2;
  }

  std::vector<fs::path> paths;
  bool roots_ok = true;
  for (const auto& r : roots) roots_ok &= collect(r, excludes, paths);
  if (!roots_ok) return 2;
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

  std::vector<LexedFile> files;
  files.reserve(paths.size());
  for (const auto& p : paths) {
    std::ifstream in(p, std::ios::binary);
    if (!in) {
      std::cerr << "asfsim_lint: cannot read " << p.string() << "\n";
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    files.push_back(lex(p.generic_string(), ss.str()));
  }

  const auto task_fns = collect_task_functions(files);
  std::size_t nfindings = 0;
  for (const auto& f : files) {
    for (const auto& d : check_file(f, task_fns)) {
      ++nfindings;
      std::cout << d.path << ":" << d.line << ": " << d.rule << ": "
                << d.message << "\n";
      if (fix_hints && !d.fix_hint.empty()) {
        std::cout << "    fix: " << d.fix_hint << "\n";
      }
    }
  }
  std::cerr << "asfsim_lint: " << files.size() << " files, " << nfindings
            << " finding" << (nfindings == 1 ? "" : "s") << "\n";
  return nfindings == 0 ? 0 : 1;
}
