// asfsim_lint driver: scan files/directories, run the rule passes, print
// diagnostics, exit nonzero on any finding.
//
//   asfsim_lint [options] <file-or-dir>...
//     --exclude <substr>        skip paths containing <substr> (repeatable)
//     --format text|sarif       output format (default text)
//     --output <file>           write the report there instead of stdout
//     --baseline <file>         suppress findings listed in the baseline
//     --write-baseline <file>   write current findings as a baseline, exit 0
//     --fix                     apply available autofixes in place
//     --dry-run                 with --fix: report, but do not write files
//     --fix-hints               print the suggested rewrite under findings
//     --list-rules              print the rule ids and one-line summaries
//
// Suppression: `// asfsim-lint: allow(<rule>)` on the offending line (or on
// a line of its own directly above it); `allow-file(<rule>)` anywhere in a
// file; `all` matches every rule. Baseline entries are `rule path:line`
// lines; `#` starts a comment.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "fix.hpp"
#include "lexer.hpp"
#include "model_rules.hpp"
#include "parser.hpp"
#include "rules.hpp"
#include "sarif.hpp"

namespace fs = std::filesystem;
using namespace asfsim_lint;

namespace {

bool is_cpp_source(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" ||
         ext == ".h" || ext == ".hh";
}

bool excluded(const std::string& path, const std::vector<std::string>& subs) {
  for (const auto& s : subs) {
    if (path.find(s) != std::string::npos) return true;
  }
  return false;
}

/// Returns false when `root` does not exist (a typo'd path must not read
/// as a clean run).
bool collect(const fs::path& root, const std::vector<std::string>& excludes,
             std::vector<fs::path>& out) {
  std::error_code ec;
  if (fs::is_directory(root, ec)) {
    for (fs::recursive_directory_iterator it(root, ec), end; it != end;
         it.increment(ec)) {
      if (ec) break;
      if (it->is_regular_file(ec) && is_cpp_source(it->path()) &&
          !excluded(it->path().generic_string(), excludes)) {
        out.push_back(it->path());
      }
    }
  } else if (fs::exists(root, ec)) {
    if (!excluded(root.generic_string(), excludes)) out.push_back(root);
  } else {
    std::cerr << "asfsim_lint: no such file or directory: " << root.string()
              << "\n";
    return false;
  }
  return true;
}

void print_rules() {
  std::cout
      << kRuleCoawaitInCondition
      << "  (R1) co_await inside an if/while/for/switch header or ternary\n"
      << "       condition: GCC 12 corrupts the coroutine frame when the\n"
      << "       controlled branch also suspends (DESIGN.md §7). Hoist the\n"
      << "       awaited value into a named local, then branch on it.\n"
      << "       Autofix: hoists a plain `if` condition.\n"
      << kRuleDiscardedTask
      << "  (R2) call to a Task-returning function whose result is neither\n"
      << "       co_awaited nor stored: Task is lazy, a dropped task never\n"
      << "       runs its body. Autofix: prepends co_await inside coroutines.\n"
      << kRuleGlobalAllocInTx
      << "  (R3) guest-thread (coroutine) code in workloads/ or oltp/\n"
      << "       allocating via\n"
      << "       galloc().alloc/alloc_lines: the global bump path hands\n"
      << "       concurrent transactions adjacent nodes in one cache line\n"
      << "       and fabricates WAW false sharing (DESIGN.md §6.9). Use\n"
      << "       GuestCtx::alloc_local. Autofix: rewrites to the GuestCtx\n"
      << "       parameter when the function has one. Also flags raw host\n"
      << "       heap allocation (new/malloc) in coroutines; the per-core\n"
      << "       FrameArena is exempt via an explicit allowlist only.\n"
      << kRuleRawGuestAccess
      << "  (R4) guest-thread code in workloads/ or oltp/ calling\n"
      << "       poke/peek/backing\n"
      << "       or reinterpret_cast: host-side backdoors bypass the caches,\n"
      << "       the conflict detector, and the classifier byte masks. Use\n"
      << "       GuestCtx typed loads/stores.\n"
      << kRuleNondeterministicSource
      << "  (R5) rand()/srand()/time()/clock()/getenv()/system_clock/\n"
      << "       steady_clock/random_device in simulator-affecting code\n"
      << "       (src/{sim,core,mem,htm,guest,oltp,workloads,fault,stats}):\n"
      << "       results must be a pure function of (config, seed), or the\n"
      << "       JobSpec result cache and reproducibility break.\n"
      << kRuleUnorderedIteration
      << "  (R6) range-for over an unordered container in simulator-\n"
      << "       affecting code: iteration order is unspecified and varies\n"
      << "       across stdlib implementations; order-sensitive effects\n"
      << "       break run-to-run determinism.\n"
      << kRuleHashCompleteness
      << "  (M1) cross-TU: every SimConfig/CacheLevelConfig/FaultConfig\n"
      << "       field must be serialized into JobSpec::canonical\n"
      << "       (runner/job_spec.cpp), or the content-addressed result\n"
      << "       cache returns stale results for configs differing in the\n"
      << "       missing field.\n"
      << kRuleStatsBlobCompleteness
      << "  (M2) cross-TU: every Stats counter (stats/counters.hpp) must\n"
      << "       appear in both serialize_stats and deserialize_stats\n"
      << "       (stats/serialize.cpp), or the blob round-trip silently\n"
      << "       drops it.\n";
}

std::string finding_key(const Diagnostic& d) {
  return d.rule + " " + d.path + ":" + std::to_string(d.line);
}

/// Baseline file: one `rule path:line` entry per line, `#` comments.
bool load_baseline(const std::string& path, std::set<std::string>& out) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "asfsim_lint: cannot read baseline " << path << "\n";
    return false;
  }
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    // Trim.
    const std::size_t b = line.find_first_not_of(" \t\r");
    if (b == std::string::npos) continue;
    const std::size_t e = line.find_last_not_of(" \t\r");
    out.insert(line.substr(b, e - b + 1));
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> excludes;
  std::vector<fs::path> roots;
  bool fix_hints = false;
  bool fix = false;
  bool dry_run = false;
  std::string format = "text";
  std::string output;
  std::string baseline_path;
  std::string write_baseline_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "asfsim_lint: " << flag << " requires a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--exclude") {
      const char* v = value("--exclude");
      if (v == nullptr) return 2;
      excludes.emplace_back(v);
    } else if (arg == "--format") {
      const char* v = value("--format");
      if (v == nullptr) return 2;
      format = v;
      if (format != "text" && format != "sarif") {
        std::cerr << "asfsim_lint: unknown format: " << format << "\n";
        return 2;
      }
    } else if (arg == "--output") {
      const char* v = value("--output");
      if (v == nullptr) return 2;
      output = v;
    } else if (arg == "--baseline") {
      const char* v = value("--baseline");
      if (v == nullptr) return 2;
      baseline_path = v;
    } else if (arg == "--write-baseline") {
      const char* v = value("--write-baseline");
      if (v == nullptr) return 2;
      write_baseline_path = v;
    } else if (arg == "--fix") {
      fix = true;
    } else if (arg == "--dry-run") {
      dry_run = true;
    } else if (arg == "--fix-hints") {
      fix_hints = true;
    } else if (arg == "--list-rules") {
      print_rules();
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: asfsim_lint [--exclude <substr>]... "
                   "[--format text|sarif] [--output <file>]\n"
                   "                   [--baseline <file>] "
                   "[--write-baseline <file>] [--fix [--dry-run]]\n"
                   "                   [--fix-hints] [--list-rules] "
                   "<file-or-dir>...\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "asfsim_lint: unknown option: " << arg << "\n";
      return 2;
    } else {
      roots.emplace_back(arg);
    }
  }
  if (roots.empty()) {
    std::cerr << "asfsim_lint: no inputs (try --help)\n";
    return 2;
  }

  std::vector<fs::path> paths;
  bool roots_ok = true;
  for (const auto& r : roots) roots_ok &= collect(r, excludes, paths);
  if (!roots_ok) return 2;
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

  std::vector<ParsedFile> files;
  files.reserve(paths.size());
  for (const auto& p : paths) {
    std::ifstream in(p, std::ios::binary);
    if (!in) {
      std::cerr << "asfsim_lint: cannot read " << p.string() << "\n";
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    ParsedFile pf;
    pf.file = lex(p.generic_string(), ss.str());
    pf.ast = parse(pf.file);
    files.push_back(std::move(pf));
  }

  const RuleContext ctx = collect_context(files);
  std::vector<Diagnostic> diags;
  for (const auto& pf : files) {
    for (auto& d : check_file(pf, ctx)) diags.push_back(std::move(d));
  }
  for (auto& d : check_model(files)) diags.push_back(std::move(d));
  std::sort(diags.begin(), diags.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.path != b.path) return a.path < b.path;
              return a.line != b.line ? a.line < b.line : a.rule < b.rule;
            });

  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path);
    if (!out) {
      std::cerr << "asfsim_lint: cannot write baseline "
                << write_baseline_path << "\n";
      return 2;
    }
    out << "# asfsim_lint baseline: known findings suppressed by "
           "--baseline.\n"
           "# One `rule path:line` entry per line; keep this shrinking.\n";
    for (const auto& d : diags) out << finding_key(d) << "\n";
    std::cerr << "asfsim_lint: wrote " << diags.size() << " baseline entr"
              << (diags.size() == 1 ? "y" : "ies") << " to "
              << write_baseline_path << "\n";
    return 0;
  }

  if (!baseline_path.empty()) {
    std::set<std::string> baseline;
    if (!load_baseline(baseline_path, baseline)) return 2;
    std::vector<Diagnostic> kept;
    for (auto& d : diags) {
      if (baseline.count(finding_key(d)) == 0) kept.push_back(std::move(d));
    }
    diags = std::move(kept);
  }

  if (fix) {
    int total_applied = 0;
    int total_skipped = 0;
    for (const auto& pf : files) {
      const FixResult r = apply_fixes(pf.file, diags);
      if (r.applied == 0 && r.skipped == 0) continue;
      total_applied += r.applied;
      total_skipped += r.skipped;
      if (dry_run) {
        std::cout << "would fix " << r.applied << " finding"
                  << (r.applied == 1 ? "" : "s") << " in " << pf.file.path
                  << "\n";
      } else {
        std::ofstream out(pf.file.path, std::ios::binary | std::ios::trunc);
        if (!out) {
          std::cerr << "asfsim_lint: cannot write " << pf.file.path << "\n";
          return 2;
        }
        out << r.source;
        std::cout << "fixed " << r.applied << " finding"
                  << (r.applied == 1 ? "" : "s") << " in " << pf.file.path
                  << "\n";
      }
    }
    std::cerr << "asfsim_lint: " << (dry_run ? "would apply " : "applied ")
              << total_applied << " fix" << (total_applied == 1 ? "" : "es");
    if (total_skipped != 0) {
      std::cerr << " (" << total_skipped << " skipped: overlapping edits)";
    }
    std::cerr << "\n";
  }

  std::ostream* sink = &std::cout;
  std::ofstream out_file;
  if (!output.empty()) {
    out_file.open(output, std::ios::binary | std::ios::trunc);
    if (!out_file) {
      std::cerr << "asfsim_lint: cannot write " << output << "\n";
      return 2;
    }
    sink = &out_file;
  }
  if (format == "sarif") {
    *sink << to_sarif(diags);
  } else {
    for (const auto& d : diags) {
      *sink << d.path << ":" << d.line << ": " << d.rule << ": " << d.message
            << "\n";
      if (fix_hints && !d.fix_hint.empty()) {
        *sink << "    fix: " << d.fix_hint << "\n";
      }
    }
  }
  std::cerr << "asfsim_lint: " << files.size() << " files, " << diags.size()
            << " finding" << (diags.size() == 1 ? "" : "s") << "\n";
  return diags.empty() ? 0 : 1;
}
