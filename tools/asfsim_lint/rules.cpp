#include "rules.hpp"

#include <algorithm>
#include <cstddef>
#include <unordered_map>

namespace asfsim_lint {
namespace {

bool is(const Token& t, const char* s) { return t.text == s; }
bool is_ident(const Token& t) { return t.kind == TokKind::kIdent; }

// Keywords that, when hit while walking back from a `{`, prove the brace is
// not a function body (type/namespace/control/label contexts).
const std::unordered_set<std::string> kNonFunctionKeywords = {
    "struct",  "class",   "union",    "enum",    "namespace", "else",
    "do",      "try",     "export",   "extern",  "return",    "co_return",
    "co_yield", "co_await", "if",     "while",   "for",       "switch",
    "case",    "default", "public",   "private", "protected", "concept",
    "requires"};

// Tokens skipped while walking back from a `{` across a trailing return
// type / cv-qualifier run, looking for the parameter list's `)`.
bool skippable_before_body(const Token& t) {
  if (t.kind == TokKind::kIdent) {
    return kNonFunctionKeywords.count(t.text) == 0;
  }
  static const std::unordered_set<std::string> kPunct = {
      "::", "<", ">", ">>", ",", "*", "&", "&&", "->"};
  return kPunct.count(t.text) != 0;
}

const std::unordered_set<std::string> kControlIntro = {"if", "while", "for",
                                                       "switch", "catch"};

struct BlockInfo {
  std::size_t open = 0;      // token index of `{`
  std::size_t close = 0;     // token index of matching `}`
  bool is_function = false;  // function / lambda / ctor body
  bool is_coroutine = false; // function body containing a co_* keyword
};

struct FileShape {
  std::vector<BlockInfo> blocks;
  // For each token: index into `blocks` of the innermost *function* block
  // containing it, or npos.
  std::vector<std::size_t> fn_of;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

/// Find the token index of the `(` matching a given `)` (walking back).
std::size_t matching_open_paren(const std::vector<Token>& toks,
                                std::size_t close) {
  int depth = 0;
  for (std::size_t k = close;; --k) {
    if (is(toks[k], ")")) ++depth;
    if (is(toks[k], "(")) {
      if (--depth == 0) return k;
    }
    if (k == 0) break;
  }
  return FileShape::npos;
}

/// Decide whether the `{` at `b` opens a function-like body (free/member
/// function, constructor, or lambda). Pure token heuristic; see the
/// walk-back rules in docs/static_analysis.md.
bool brace_is_function_body(const std::vector<Token>& toks, std::size_t b) {
  if (b == 0) return false;
  std::size_t k = b - 1;
  for (int steps = 0; steps < 24; ++steps) {
    const Token& t = toks[k];
    if (is(t, "]")) return true;  // capture list directly: `[&] {`
    if (is(t, ")")) {
      const std::size_t open = matching_open_paren(toks, k);
      if (open == FileShape::npos || open == 0) return open != FileShape::npos;
      std::size_t p = open - 1;
      // `if constexpr (...)`: the intro keyword sits one further back.
      if (is(toks[p], "constexpr") && p > 0) --p;
      if (is_ident(toks[p]) && kControlIntro.count(toks[p].text) != 0) {
        return false;
      }
      // `noexcept(...)` / `requires(...)` trail a declarator: keep walking.
      if (is(toks[p], "noexcept") || is(toks[p], "requires")) {
        if (open == 0) return false;
        k = open - 1;
        continue;
      }
      return is_ident(toks[p]) || is(toks[p], "]") || is(toks[p], ">") ||
             is(toks[p], ">>");
    }
    if (!skippable_before_body(t)) return false;
    if (k == 0) return false;
    --k;
  }
  return false;
}

FileShape analyze_shape(const LexedFile& file) {
  const auto& toks = file.tokens;
  FileShape shape;
  shape.fn_of.assign(toks.size(), FileShape::npos);

  // Pass 1: match braces, classify function bodies, and record for every
  // token its innermost enclosing function block.
  std::vector<std::size_t> stack;          // open blocks (indices into blocks)
  std::vector<std::size_t> fn_stack;       // subset that are function bodies
  std::unordered_map<std::size_t, std::size_t> open_to_block;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    shape.fn_of[i] = fn_stack.empty() ? FileShape::npos : fn_stack.back();
    if (is(toks[i], "{")) {
      BlockInfo b;
      b.open = i;
      b.is_function = brace_is_function_body(toks, i);
      shape.blocks.push_back(b);
      const std::size_t idx = shape.blocks.size() - 1;
      stack.push_back(idx);
      if (b.is_function) fn_stack.push_back(idx);
      shape.fn_of[i] = fn_stack.empty() ? FileShape::npos : fn_stack.back();
    } else if (is(toks[i], "}")) {
      if (!stack.empty()) {
        const std::size_t idx = stack.back();
        stack.pop_back();
        shape.blocks[idx].close = i;
        if (shape.blocks[idx].is_function && !fn_stack.empty() &&
            fn_stack.back() == idx) {
          fn_stack.pop_back();
        }
      }
    }
  }
  for (auto& b : shape.blocks) {
    if (b.close == 0) b.close = toks.empty() ? 0 : toks.size() - 1;
  }

  // Pass 2: a function block owning a co_* keyword is a coroutine body.
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (is(toks[i], "co_await") || is(toks[i], "co_return") ||
        is(toks[i], "co_yield")) {
      const std::size_t fn = shape.fn_of[i];
      if (fn != FileShape::npos) shape.blocks[fn].is_coroutine = true;
    }
  }
  return shape;
}

bool in_coroutine(const FileShape& shape, std::size_t tok) {
  const std::size_t fn = shape.fn_of[tok];
  return fn != FileShape::npos && shape.blocks[fn].is_coroutine;
}

bool path_contains(const std::string& path, const char* needle) {
  return path.find(needle) != std::string::npos;
}

class Checker {
 public:
  Checker(const LexedFile& file, const TaskFunctionMap& task_fns)
      : file_(file),
        toks_(file.tokens),
        shape_(analyze_shape(file)),
        task_fns_(task_fns) {}

  std::vector<Diagnostic> run() {
    rule_coawait_in_condition();
    rule_discarded_task();
    if (path_contains(file_.path, "workloads")) {
      rule_global_alloc_in_tx();
      rule_raw_guest_access();
    }
    std::sort(diags_.begin(), diags_.end(),
              [](const Diagnostic& a, const Diagnostic& b) {
                return a.line != b.line ? a.line < b.line : a.rule < b.rule;
              });
    return std::move(diags_);
  }

 private:
  void report(const char* rule, std::size_t tok, std::string message,
              std::string hint = {}) {
    const std::uint32_t line = toks_[tok].line;
    if (file_.suppressions.allows(rule, line)) return;
    // One report per (rule, line) is enough.
    for (const auto& d : diags_) {
      if (d.line == line && d.rule == rule) return;
    }
    diags_.push_back(
        {file_.path, line, rule, std::move(message), std::move(hint)});
  }

  std::size_t matching_close_paren(std::size_t open) const {
    int depth = 0;
    for (std::size_t k = open; k < toks_.size(); ++k) {
      if (is(toks_[k], "(")) ++depth;
      if (is(toks_[k], ")") && --depth == 0) return k;
    }
    return FileShape::npos;
  }

  /// Number of top-level arguments of the call whose parens are
  /// [open, close].
  int call_arity(std::size_t open, std::size_t close) const {
    int depth = 0;
    int args = 0;
    bool any = false;
    for (std::size_t k = open; k <= close; ++k) {
      const Token& t = toks_[k];
      if (is(t, "(") || is(t, "[") || is(t, "{")) ++depth;
      if (is(t, ")") || is(t, "]") || is(t, "}")) --depth;
      if (depth == 1 && is(t, ",")) ++args;
      if (depth >= 1 && !is(t, "(")) any = true;
    }
    return any ? args + 1 : 0;
  }

  // ---- R1: co_await inside a condition expression -------------------------
  //
  // The GCC 12 miscompile (DESIGN.md §7, pinned by
  // tests/test_compiler_workaround.cpp): when a co_await appears inside a
  // condition expression whose controlled branch also suspends, the frame's
  // resume index is corrupted and the first resume silently runs the
  // destroyer instead of the body — observed as a kernel "deadlock" at -O0
  // and SIGILL at -O2. The safe shape hoists the awaited value into a named
  // local before branching, so we ban co_await in EVERY condition context,
  // whether or not the branch suspends today (the branch body is one edit
  // away from suspending).
  void rule_coawait_in_condition() {
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      if (!is_ident(toks_[i]) || kControlIntro.count(toks_[i].text) == 0 ||
          is(toks_[i], "catch")) {
        continue;
      }
      std::size_t open = i + 1;
      if (open < toks_.size() && is(toks_[open], "constexpr")) ++open;
      if (open >= toks_.size() || !is(toks_[open], "(")) continue;
      const std::size_t close = matching_close_paren(open);
      if (close == FileShape::npos) continue;
      for (std::size_t k = open + 1; k < close; ++k) {
        if (is(toks_[k], "co_await")) {
          report(kRuleCoawaitInCondition, k,
                 "co_await inside a '" + toks_[i].text +
                     "' condition — GCC 12 corrupts the coroutine frame when "
                     "the controlled branch also suspends (DESIGN.md §7)",
                 "hoist the awaited value first:  const auto v = co_await "
                 "<expr>;  " +
                     toks_[i].text + " (v ...) { ... }");
        }
      }
    }
    // Ternary conditions: a co_await whose full expression meets a `?` at
    // the same nesting depth before the statement ends.
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      if (!is(toks_[i], "co_await")) continue;
      int depth = 0;
      for (std::size_t k = i + 1; k < toks_.size(); ++k) {
        const Token& t = toks_[k];
        if (is(t, "(") || is(t, "[") || is(t, "{")) ++depth;
        if (is(t, ")") || is(t, "]") || is(t, "}")) --depth;
        if (depth < 0) break;
        if (depth == 0 &&
            (is(t, ";") || is(t, ",") || is(t, ":") || is(t, "="))) {
          break;
        }
        if (depth == 0 && is(t, "?")) {
          report(kRuleCoawaitInCondition, i,
                 "co_await in a ternary condition — same GCC 12 frame "
                 "corruption as branching on an inline co_await "
                 "(DESIGN.md §7)",
                 "hoist:  const auto v = co_await <expr>;  then  v ? ... : "
                 "...");
          break;
        }
      }
    }
  }

  // ---- R2: discarded Task -------------------------------------------------
  //
  // Task<T> is lazy: a task that is never co_awaited (or stored and handed
  // to Machine::spawn) never runs its body. A bare `foo(...);` statement
  // calling a Task-returning function is therefore dead code that LOOKS
  // like a memory access or a transaction.
  void rule_discarded_task() {
    for (std::size_t i = 0; i + 1 < toks_.size(); ++i) {
      if (!is_ident(toks_[i])) continue;
      const auto fn = task_fns_.find(toks_[i].text);
      if (fn == task_fns_.end()) continue;
      if (!is(toks_[i + 1], "(")) continue;
      const std::size_t close = matching_close_paren(i + 1);
      if (close == FileShape::npos || close + 1 >= toks_.size()) continue;
      if (!is(toks_[close + 1], ";")) continue;  // result consumed somehow
      // Arity gate: `q.push(x)` is std::queue, not GStack::push(ctx, x).
      if (fn->second.count(call_arity(i + 1, close)) == 0) continue;
      // Walk back over the object/namespace chain: `w->counters_.get`.
      std::size_t start = i;
      while (start > 0) {
        const Token& p = toks_[start - 1];
        if (is(p, ".") || is(p, "->") || is(p, "::")) {
          if (start < 2) break;
          const Token& q = toks_[start - 2];
          if (is_ident(q)) {
            start -= 2;
            continue;
          }
          if (is(q, ")")) {
            const std::size_t op = matching_open_paren(toks_, start - 2);
            if (op == FileShape::npos || op == 0) break;
            start = op;  // jump over the call, keep walking the chain
            continue;
          }
        }
        break;
      }
      if (start == 0) continue;
      const Token& prev = toks_[start - 1];
      const bool statement_context =
          is(prev, ";") || is(prev, "{") || is(prev, "}") || is(prev, ")") ||
          is(prev, "else") || is(prev, "do");
      if (!statement_context) continue;  // co_await/=/argument/return...
      report(kRuleDiscardedTask, i,
             "result of Task-returning function '" + toks_[i].text +
                 "' is discarded — a dropped Task never runs its body",
             "co_await " + toks_[i].text +
                 "(...);  or store it and pass it to Machine::spawn");
    }
  }

  // ---- R3: global bump allocation from guest-thread code ------------------
  //
  // DESIGN.md §6.9: a single global bump allocator hands concurrent
  // transactions adjacent nodes in the same cache line, and their
  // initialization stores alone fabricate write-write false sharing that
  // drowns the real conflict signal. Guest-thread (coroutine) code in
  // workloads must allocate from the per-core pools via
  // GuestCtx::alloc_local; setup()/validate() run at host time on one
  // thread and may use the global path freely.
  void rule_global_alloc_in_tx() {
    for (std::size_t i = 0; i + 4 < toks_.size(); ++i) {
      if (!is_ident(toks_[i]) || toks_[i].text != "galloc") continue;
      if (!(is(toks_[i + 1], "(") && is(toks_[i + 2], ")") &&
            is(toks_[i + 3], "."))) {
        continue;
      }
      const std::string& m = toks_[i + 4].text;
      if (m != "alloc" && m != "alloc_lines") continue;
      if (!in_coroutine(shape_, i)) continue;
      report(kRuleGlobalAllocInTx, i,
             "guest-thread code allocates via the global bump allocator "
             "(galloc()." +
                 m +
                 ") — concurrent transactions get adjacent nodes in one "
                 "line and fabricate WAW false sharing (DESIGN.md §6.9)",
             "use the per-core pool:  ctx.alloc_local(size, align)");
    }
  }

  // ---- R4: host-side backdoor access to guest memory ----------------------
  //
  // Machine::poke/peek and BackingStore read/write bypass the caches, the
  // conflict detector, and the classifier's byte masks entirely — legal for
  // single-threaded setup()/validate(), but inside guest-thread code they
  // silently exempt accesses from conflict detection and corrupt the
  // paper's conflict counts. reinterpret_cast of simulated addresses into
  // host pointers is never meaningful in a workload.
  void rule_raw_guest_access() {
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      if (!is_ident(toks_[i])) continue;
      const std::string& name = toks_[i].text;
      if (name == "reinterpret_cast") {
        report(kRuleRawGuestAccess, i,
               "reinterpret_cast in a workload — guest memory has no host "
               "pointer; use GuestCtx typed loads/stores",
               "co_await ctx.load_u64(addr) / ctx.store_u64(addr, v)");
        continue;
      }
      if (name != "poke" && name != "peek" && name != "backing") continue;
      if (i + 1 >= toks_.size() || !is(toks_[i + 1], "(")) continue;
      if (i == 0 || !(is(toks_[i - 1], ".") || is(toks_[i - 1], "->"))) {
        continue;
      }
      if (!in_coroutine(shape_, i)) continue;
      report(kRuleRawGuestAccess, i,
             "guest-thread code calls '" + name +
                 "' — host-side backdoor access bypasses the caches, the "
                 "conflict detector, and the classifier byte masks",
             "co_await ctx.load_u64(addr) / ctx.store_u64(addr, v)");
    }
  }

  const LexedFile& file_;
  const std::vector<Token>& toks_;
  FileShape shape_;
  const TaskFunctionMap& task_fns_;
  std::vector<Diagnostic> diags_;
};

}  // namespace

TaskFunctionMap collect_task_functions(const std::vector<LexedFile>& files) {
  TaskFunctionMap fns;
  for (const auto& f : files) {
    const auto& toks = f.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      if (!is_ident(toks[i]) || toks[i].text != "Task") continue;
      if (!is(toks[i + 1], "<")) continue;
      // Find the matching `>` (a `>>` closes two levels).
      int depth = 0;
      std::size_t k = i + 1;
      for (; k < toks.size(); ++k) {
        if (is(toks[k], "<")) ++depth;
        if (is(toks[k], ">")) --depth;
        if (is(toks[k], ">>")) depth -= 2;
        if (depth <= 0) break;
        if (is(toks[k], ";") || is(toks[k], "{")) {
          k = toks.size();
          break;
        }
      }
      if (k + 2 >= toks.size()) continue;
      // `Task<...> name (` — a declaration or definition, not a variable.
      if (!is_ident(toks[k + 1]) || !is(toks[k + 2], "(")) continue;
      const std::string& name = toks[k + 1].text;
      if (name == "Task" || name == "operator") continue;
      // Walk the parameter list: total arity, plus the shorter arities
      // admitted by trailing defaulted parameters.
      int pdepth = 0;
      int params = 0;
      int min_params = -1;  // first defaulted parameter index, if any
      bool cur_nonempty = false;
      bool cur_defaulted = false;
      std::size_t p = k + 2;
      for (; p < toks.size(); ++p) {
        const Token& t = toks[p];
        if (is(t, "(") || is(t, "[") || is(t, "{")) ++pdepth;
        if (is(t, ")") || is(t, "]") || is(t, "}")) {
          if (--pdepth == 0) break;
          continue;
        }
        if (pdepth == 1 && is(t, ",")) {
          if (cur_defaulted && min_params < 0) min_params = params;
          ++params;
          cur_nonempty = false;
          cur_defaulted = false;
          continue;
        }
        if (pdepth >= 1) {
          cur_nonempty = true;
          if (pdepth == 1 && is(t, "=")) cur_defaulted = true;
        }
      }
      if (p >= toks.size()) continue;
      if (cur_nonempty) {
        if (cur_defaulted && min_params < 0) min_params = params;
        ++params;
      }
      if (min_params < 0) min_params = params;
      auto& arities = fns[name];
      for (int a = min_params; a <= params; ++a) arities.insert(a);
    }
  }
  return fns;
}

std::vector<Diagnostic> check_file(const LexedFile& file,
                                   const TaskFunctionMap& task_fns) {
  return Checker(file, task_fns).run();
}

}  // namespace asfsim_lint
