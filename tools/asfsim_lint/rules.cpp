#include "rules.hpp"

#include <algorithm>
#include <cstddef>

#include "cfg.hpp"
#include "parser.hpp"

namespace asfsim_lint {
namespace {

bool is(const Token& t, const char* s) { return t.text == s; }
bool is_ident(const Token& t) { return t.kind == TokKind::kIdent; }

bool path_contains(const std::string& path, const char* needle) {
  return path.find(needle) != std::string::npos;
}

// ---- R5/R6 helpers --------------------------------------------------------

// Clock/entropy TYPES: any mention in sim-affecting code is a finding.
const std::unordered_set<std::string> kNondetTypes = {
    "random_device", "system_clock", "steady_clock", "high_resolution_clock"};

// Banned FUNCTIONS: flagged only as calls (`name(`), unqualified or
// std::-qualified, never as members (`obj.time(...)` is someone else's API).
const std::unordered_set<std::string> kNondetCalls = {
    "rand",   "srand",        "time",        "clock",
    "getenv", "gettimeofday", "clock_gettime"};

/// Declared type spelling with cv/storage qualifiers and std:: stripped,
/// so "const std::unordered_map<K, V>" resolves to its container head.
std::string type_head(std::string t) {
  for (bool again = true; again;) {
    again = false;
    for (const char* q : {"const ", "static ", "mutable "}) {
      const std::size_t n = std::string(q).size();
      if (t.rfind(q, 0) == 0) {
        t.erase(0, n);
        again = true;
      }
    }
  }
  if (t.rfind("std::", 0) == 0) t.erase(0, 5);
  return t;
}

/// Does iterating a declaration of this type (optionally through one
/// subscript) walk an unordered container?
bool iteration_is_unordered(const std::string& type_text, bool indexed) {
  const std::string head = type_head(type_text);
  const bool head_unordered = head.rfind("unordered_", 0) == 0;
  const std::size_t first = type_text.find("unordered_");
  if (first == std::string::npos) return false;
  if (!indexed) return head_unordered;
  if (!head_unordered) return true;  // e.g. vector<unordered_map<...>>[i]
  // umap[k] yields the mapped type; only flag when that is unordered too.
  return type_text.find("unordered_", first + 1) != std::string::npos;
}

class Checker {
 public:
  Checker(const ParsedFile& pf, const RuleContext& ctx)
      : file_(pf.file),
        toks_(pf.file.tokens),
        ast_(pf.ast),
        ctx_(ctx),
        cfgs_(build_cfgs(pf.file, pf.ast)) {}

  std::vector<Diagnostic> run() {
    rule_coawait_in_condition();
    rule_discarded_task();
    if (path_contains(file_.path, "workloads") ||
        path_contains(file_.path, "oltp")) {
      rule_global_alloc_in_tx();
      rule_raw_guest_access();
    }
    if (sim_affecting_path(file_.path)) {
      rule_nondeterministic_source();
      rule_unordered_iteration();
    }
    std::sort(diags_.begin(), diags_.end(),
              [](const Diagnostic& a, const Diagnostic& b) {
                return a.line != b.line ? a.line < b.line : a.rule < b.rule;
              });
    return std::move(diags_);
  }

 private:
  void report(const char* rule, std::size_t tok, std::string message,
              std::string hint = {}, std::vector<FixEdit> fixes = {}) {
    const std::uint32_t line = toks_[tok].line;
    if (file_.suppressions.allows(rule, line)) return;
    // One report per (rule, line) is enough.
    for (const auto& d : diags_) {
      if (d.line == line && d.rule == rule) return;
    }
    diags_.push_back({file_.path, line, rule, std::move(message),
                      std::move(hint), std::move(fixes)});
  }

  /// Leading whitespace of the line containing byte `at`.
  std::string indent_at(std::size_t at) const {
    const std::string& src = file_.source;
    std::size_t start = at;
    while (start > 0 && src[start - 1] != '\n') --start;
    std::string indent;
    for (std::size_t k = start; k < src.size() && (src[k] == ' ' ||
                                                   src[k] == '\t');
         ++k) {
      indent.push_back(src[k]);
    }
    return indent;
  }

  // ---- R1: co_await inside a condition expression -------------------------
  //
  // The GCC 12 miscompile (DESIGN.md §7, pinned by
  // tests/test_compiler_workaround.cpp): when a co_await appears inside a
  // condition expression whose controlled branch also suspends, the frame's
  // resume index is corrupted and the first resume silently runs the
  // destroyer instead of the body — observed as a kernel "deadlock" at -O0
  // and SIGILL at -O2. The safe shape hoists the awaited value into a named
  // local before branching, so we ban co_await in EVERY condition context,
  // whether or not the branch suspends today (the branch body is one edit
  // away from suspending). Detection walks the CFG's condition nodes.
  void rule_coawait_in_condition() {
    for (const Cfg& cfg : cfgs_) {
      for (const CfgNode& n : cfg.nodes) {
        if (n.kind != CfgNodeKind::kBranch && n.kind != CfgNodeKind::kLoop) {
          continue;
        }
        if (n.cond_open == kNpos || n.cond_close == kNpos) continue;
        const std::string intro = n.intro == "do" ? "while" : n.intro;
        for (std::size_t k = n.cond_open + 1; k < n.cond_close; ++k) {
          if (!is(toks_[k], "co_await")) continue;
          report(kRuleCoawaitInCondition, k,
                 "co_await inside a '" + intro +
                     "' condition — GCC 12 corrupts the coroutine frame when "
                     "the controlled branch also suspends (DESIGN.md §7)",
                 "hoist the awaited value first:  const auto v = co_await "
                 "<expr>;  " +
                     intro + " (v ...) { ... }",
                 hoist_fix(n));
        }
      }
    }
    // Ternary conditions: a co_await whose full expression meets a `?` at
    // the same nesting depth before the statement ends. Token walk: the CFG
    // does not model expressions.
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      if (!is(toks_[i], "co_await")) continue;
      int depth = 0;
      for (std::size_t k = i + 1; k < toks_.size(); ++k) {
        const Token& t = toks_[k];
        if (is(t, "(") || is(t, "[") || is(t, "{")) ++depth;
        if (is(t, ")") || is(t, "]") || is(t, "}")) --depth;
        if (depth < 0) break;
        if (depth == 0 &&
            (is(t, ";") || is(t, ",") || is(t, ":") || is(t, "="))) {
          break;
        }
        if (depth == 0 && is(t, "?")) {
          report(kRuleCoawaitInCondition, i,
                 "co_await in a ternary condition — same GCC 12 frame "
                 "corruption as branching on an inline co_await "
                 "(DESIGN.md §7)",
                 "hoist:  const auto v = co_await <expr>;  then  v ? ... : "
                 "...");
          break;
        }
      }
    }
  }

  /// Autofix for an `if (co_await ...)` header: hoist the whole condition
  /// into a named local above the statement. Only plain `if` — hoisting a
  /// loop condition would freeze a value the loop must re-await, and
  /// condition-declarations (`if (auto v = ...)`) need the declaration kept.
  std::vector<FixEdit> hoist_fix(const CfgNode& n) const {
    if (n.intro != "if") return {};
    if (n.cond_open != n.begin + 1) return {};  // `if constexpr (...)`
    int depth = 0;
    for (std::size_t k = n.cond_open + 1; k < n.cond_close; ++k) {
      const Token& t = toks_[k];
      if (is(t, "(") || is(t, "[") || is(t, "{")) ++depth;
      if (is(t, ")") || is(t, "]") || is(t, "}")) --depth;
      if (depth == 0 && (is(t, "=") || is(t, ";"))) return {};
    }
    const Token& intro_tok = toks_[n.begin];
    const Token& open_tok = toks_[n.cond_open];
    const Token& close_tok = toks_[n.cond_close];
    if (close_tok.begin <= open_tok.end) return {};
    const std::string var =
        "hoisted_l" + std::to_string(intro_tok.line);
    const std::string cond = file_.source.substr(
        open_tok.end, close_tok.begin - open_tok.end);
    std::vector<FixEdit> fixes;
    fixes.push_back({intro_tok.begin, intro_tok.begin,
                     "const auto " + var + " = " + cond + ";\n" +
                         indent_at(intro_tok.begin)});
    fixes.push_back({open_tok.end, close_tok.begin, var});
    return fixes;
  }

  // ---- R2: discarded Task -------------------------------------------------
  //
  // Task<T> is lazy: a task that is never co_awaited (or stored and handed
  // to Machine::spawn) never runs its body. A bare `foo(...);` statement
  // calling a Task-returning function is therefore dead code that LOOKS
  // like a memory access or a transaction.
  void rule_discarded_task() {
    for (std::size_t i = 0; i + 1 < toks_.size(); ++i) {
      if (!is_ident(toks_[i])) continue;
      const auto fn = ctx_.task_fns.find(toks_[i].text);
      if (fn == ctx_.task_fns.end()) continue;
      if (!is(toks_[i + 1], "(")) continue;
      const std::size_t close = match_paren(toks_, i + 1);
      if (close == kNpos || close + 1 >= toks_.size()) continue;
      if (!is(toks_[close + 1], ";")) continue;  // result consumed somehow
      // Arity gate: `q.push(x)` is std::queue, not GStack::push(ctx, x).
      if (fn->second.count(call_arity(i + 1, close)) == 0) continue;
      // Walk back over the object/namespace chain: `w->counters_.get`.
      std::size_t start = i;
      while (start > 0) {
        const Token& p = toks_[start - 1];
        if (is(p, ".") || is(p, "->") || is(p, "::")) {
          if (start < 2) break;
          const Token& q = toks_[start - 2];
          if (is_ident(q)) {
            start -= 2;
            continue;
          }
          if (is(q, ")")) {
            const std::size_t op = match_paren_back(toks_, start - 2);
            if (op == kNpos || op == 0) break;
            start = op;  // jump over the call, keep walking the chain
            continue;
          }
        }
        break;
      }
      if (start == 0) continue;
      const Token& prev = toks_[start - 1];
      const bool statement_context =
          is(prev, ";") || is(prev, "{") || is(prev, "}") || is(prev, ")") ||
          is(prev, "else") || is(prev, "do");
      if (!statement_context) continue;  // co_await/=/argument/return...
      // Autofix: awaiting the task is only legal inside a coroutine.
      std::vector<FixEdit> fixes;
      if (ast_.in_coroutine(start)) {
        fixes.push_back(
            {toks_[start].begin, toks_[start].begin, "co_await "});
      }
      report(kRuleDiscardedTask, i,
             "result of Task-returning function '" + toks_[i].text +
                 "' is discarded — a dropped Task never runs its body",
             "co_await " + toks_[i].text +
                 "(...);  or store it and pass it to Machine::spawn",
             std::move(fixes));
    }
  }

  // ---- R3: global bump allocation from guest-thread code ------------------
  //
  // DESIGN.md §6.9: a single global bump allocator hands concurrent
  // transactions adjacent nodes in the same cache line, and their
  // initialization stores alone fabricate write-write false sharing that
  // drowns the real conflict signal. Guest-thread (coroutine) code in
  // workloads must allocate from the per-core pools via
  // GuestCtx::alloc_local; setup()/validate() run at host time on one
  // thread and may use the global path freely.
  void rule_global_alloc_in_tx() {
    for (std::size_t i = 0; i + 4 < toks_.size(); ++i) {
      if (!is_ident(toks_[i]) || toks_[i].text != "galloc") continue;
      if (!(is(toks_[i + 1], "(") && is(toks_[i + 2], ")") &&
            is(toks_[i + 3], "."))) {
        continue;
      }
      const std::string& m = toks_[i + 4].text;
      if (m != "alloc" && m != "alloc_lines") continue;
      if (!ast_.in_coroutine(i)) continue;
      // Autofix: rewrite `galloc().alloc` to `<ctx>.alloc_local` when the
      // enclosing function takes a GuestCtx (alloc_lines has no per-core
      // equivalent, so only the plain form is fixable).
      std::vector<FixEdit> fixes;
      if (m == "alloc") {
        if (const FunctionDecl* f = ast_.function_at(i)) {
          for (const ParamDecl& p : f->params) {
            if (p.type_text.find("GuestCtx") != std::string::npos &&
                !p.name.empty()) {
              fixes.push_back({toks_[i].begin, toks_[i + 4].end,
                               p.name + ".alloc_local"});
              break;
            }
          }
        }
      }
      report(kRuleGlobalAllocInTx, i,
             "guest-thread code allocates via the global bump allocator "
             "(galloc()." +
                 m +
                 ") — concurrent transactions get adjacent nodes in one "
                 "line and fabricate WAW false sharing (DESIGN.md §6.9)",
             "use the per-core pool:  ctx.alloc_local(size, align)",
             std::move(fixes));
    }
    // Raw host allocation in guest-thread code is the same hazard from the
    // host side: heap nodes allocated mid-coroutine are invisible to the
    // simulator AND non-deterministic in address. The ONLY sanctioned host
    // allocation under a guest frame is the per-core coroutine-frame arena
    // (src/sim/frame_arena.hpp), which Task<> promises route operator new
    // through; at a call site that machinery appears as placement-new into
    // arena storage. The exemption is this explicit allowlist of arena
    // entry-point names — never a file- or rule-level suppression, which
    // would also hide genuine global allocations
    // (tests/lint_fixtures/workloads/r3_arena_*.cpp pin both directions).
    static constexpr const char* kR3ArenaAllowlist[] = {"frame_arena",
                                                        "FrameArena"};
    for (std::size_t i = 0; i + 1 < toks_.size(); ++i) {
      if (!is_ident(toks_[i])) continue;
      const std::string& t = toks_[i].text;
      const bool is_new = t == "new";
      const bool is_c_alloc =
          (t == "malloc" || t == "calloc" || t == "realloc") &&
          is(toks_[i + 1], "(");
      if (!is_new && !is_c_alloc) continue;
      if (!ast_.in_coroutine(i)) continue;
      if (is_new && is(toks_[i + 1], "(")) {
        // Placement-new: exempt iff the placement argument goes through an
        // allowlisted arena entry point.
        bool allowlisted = false;
        int depth = 0;
        for (std::size_t j = i + 1; j < toks_.size(); ++j) {
          if (is(toks_[j], "(")) ++depth;
          if (is(toks_[j], ")") && --depth == 0) break;
          for (const char* name : kR3ArenaAllowlist) {
            if (is_ident(toks_[j]) && toks_[j].text == name)
              allowlisted = true;
          }
        }
        if (allowlisted) continue;
      }
      report(kRuleGlobalAllocInTx, i,
             "guest-thread code allocates from the host heap (" + t +
                 ") — the address is host-nondeterministic and the node "
                 "is invisible to the simulator (DESIGN.md §6.9); only "
                 "the per-core frame arena is exempt",
             "use ctx.alloc_local(size, align) for simulated nodes, or "
             "the FrameArena for host-side coroutine scratch");
    }
  }

  // ---- R4: host-side backdoor access to guest memory ----------------------
  //
  // Machine::poke/peek and BackingStore read/write bypass the caches, the
  // conflict detector, and the classifier's byte masks entirely — legal for
  // single-threaded setup()/validate(), but inside guest-thread code they
  // silently exempt accesses from conflict detection and corrupt the
  // paper's conflict counts. reinterpret_cast of simulated addresses into
  // host pointers is never meaningful in a workload.
  void rule_raw_guest_access() {
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      if (!is_ident(toks_[i])) continue;
      const std::string& name = toks_[i].text;
      if (name == "reinterpret_cast") {
        report(kRuleRawGuestAccess, i,
               "reinterpret_cast in a workload — guest memory has no host "
               "pointer; use GuestCtx typed loads/stores",
               "co_await ctx.load_u64(addr) / ctx.store_u64(addr, v)");
        continue;
      }
      if (name != "poke" && name != "peek" && name != "backing") continue;
      if (i + 1 >= toks_.size() || !is(toks_[i + 1], "(")) continue;
      if (i == 0 || !(is(toks_[i - 1], ".") || is(toks_[i - 1], "->"))) {
        continue;
      }
      if (!ast_.in_coroutine(i)) continue;
      report(kRuleRawGuestAccess, i,
             "guest-thread code calls '" + name +
                 "' — host-side backdoor access bypasses the caches, the "
                 "conflict detector, and the classifier byte masks",
             "co_await ctx.load_u64(addr) / ctx.store_u64(addr, v)");
    }
  }

  // ---- R5: non-deterministic sources in simulator-affecting code ----------
  //
  // Every simulation result must be a pure function of (SimConfig, seed):
  // that is what makes the JobSpec content-hash cache sound and runs
  // reproducible across machines. Wall-clock reads, C PRNGs, entropy
  // devices and environment lookups in sim-affecting directories silently
  // break both. Host-side tooling (runner/, harness/, trace/) is out of
  // scope; genuinely wall-clock code (watchdog escape hatches) carries an
  // explicit suppression with its justification.
  void rule_nondeterministic_source() {
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      if (!is_ident(toks_[i])) continue;
      const std::string& name = toks_[i].text;
      if (kNondetTypes.count(name) != 0) {
        report(kRuleNondeterministicSource, i,
               "'" + name +
                   "' in simulator-affecting code — results must be a pure "
                   "function of (config, seed); clock/entropy reads poison "
                   "the JobSpec result cache and reproducibility",
               "derive randomness from cfg.seed; if this is wall-clock "
               "guard code, annotate why with  // asfsim-lint: "
               "allow(nondeterministic-source)");
        continue;
      }
      if (kNondetCalls.count(name) == 0) continue;
      if (i + 1 >= toks_.size() || !is(toks_[i + 1], "(")) continue;
      if (i > 0) {
        const Token& p = toks_[i - 1];
        if (is(p, ".") || is(p, "->")) continue;  // member call: not libc
        if (is(p, "::")) {
          // Qualified: only std::/global-:: spellings are the libc ones.
          if (i >= 2 && is_ident(toks_[i - 2]) &&
              toks_[i - 2].text != "std") {
            continue;
          }
        }
        // `ScopedSimClock clock(...)` declares a variable named `clock`;
        // a preceding type name or declarator punctuation is not a call
        // context (but `return time(nullptr)` still is).
        static const std::unordered_set<std::string> kCallIntro = {
            "return", "co_return", "co_yield", "else", "do", "case"};
        if (is_ident(p) && kCallIntro.count(p.text) == 0) continue;
        if (is(p, ">") || is(p, ">>") || is(p, "&") || is(p, "*")) continue;
      }
      report(kRuleNondeterministicSource, i,
             "call to '" + name +
                 "' in simulator-affecting code — results must be a pure "
                 "function of (config, seed); clock/entropy reads poison "
                 "the JobSpec result cache and reproducibility",
             "derive randomness from cfg.seed; if this is wall-clock "
             "guard code, annotate why with  // asfsim-lint: "
             "allow(nondeterministic-source)");
    }
  }

  // ---- R6: range-for over an unordered container --------------------------
  //
  // unordered_map/set iteration order is unspecified and differs across
  // stdlib implementations, hash seeds, and insertion histories. When the
  // loop body's effect depends on visit order (first-match reporting,
  // accumulation with rounding, tie-breaking), simulation output stops
  // being reproducible. Order-insensitive folds (sum/max over disjoint
  // state) are fine — suppress with a justification.
  void rule_unordered_iteration() {
    for (const RangeForStmt& rf : ast_.range_fors) {
      // Resolve the iterated expression: a name, member chain, or a chain
      // with subscripts. Calls are opaque; skip them.
      bool has_call = false;
      bool indexed = false;
      std::size_t base = kNpos;
      int bracket = 0;
      for (std::size_t k = rf.colon + 1; k < rf.close; ++k) {
        const Token& t = toks_[k];
        if (is(t, "(")) has_call = true;
        if (is(t, "[")) {
          if (bracket == 0) indexed = true;
          ++bracket;
        }
        if (is(t, "]")) --bracket;
        if (bracket == 0 && is_ident(t)) base = k;
      }
      if (has_call || base == kNpos) continue;
      const std::string& name = toks_[base].text;
      const std::vector<std::string>* types = nullptr;
      std::vector<std::string> local;
      for (const ContainerDecl& d : ast_.container_decls) {
        if (d.name == name) local.push_back(d.type_text);
      }
      if (!local.empty()) {
        types = &local;
      } else {
        const auto it = ctx_.containers.find(name);
        if (it == ctx_.containers.end()) continue;
        types = &it->second;
      }
      for (const std::string& ty : *types) {
        if (!iteration_is_unordered(ty, indexed)) continue;
        report(kRuleUnorderedIteration, rf.for_tok,
               "range-for over unordered container '" + name + "' (" + ty +
                   ") — iteration order is unspecified and varies across "
                   "stdlib implementations, so any order-sensitive effect "
                   "breaks reproducibility",
               "collect keys into a std::vector and sort, use a sorted "
               "container, or suppress with a justification if the fold is "
               "order-insensitive");
        break;
      }
    }
  }

  /// Number of top-level arguments of the call whose parens are
  /// [open, close].
  int call_arity(std::size_t open, std::size_t close) const {
    int depth = 0;
    int args = 0;
    bool any = false;
    for (std::size_t k = open; k <= close; ++k) {
      const Token& t = toks_[k];
      if (is(t, "(") || is(t, "[") || is(t, "{")) ++depth;
      if (is(t, ")") || is(t, "]") || is(t, "}")) --depth;
      if (depth == 1 && is(t, ",")) ++args;
      if (depth >= 1 && !is(t, "(")) any = true;
    }
    return any ? args + 1 : 0;
  }

  const LexedFile& file_;
  const std::vector<Token>& toks_;
  const Ast& ast_;
  const RuleContext& ctx_;
  std::vector<Cfg> cfgs_;
  std::vector<Diagnostic> diags_;
};

/// Task<...>-returning function declarations, by token walk (the AST only
/// records definitions with bodies; declarations matter too).
void collect_task_functions(const LexedFile& f, TaskFunctionMap& fns) {
  const auto& toks = f.tokens;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!is_ident(toks[i]) || toks[i].text != "Task") continue;
    if (!is(toks[i + 1], "<")) continue;
    // Find the matching `>` (a `>>` closes two levels).
    int depth = 0;
    std::size_t k = i + 1;
    for (; k < toks.size(); ++k) {
      if (is(toks[k], "<")) ++depth;
      if (is(toks[k], ">")) --depth;
      if (is(toks[k], ">>")) depth -= 2;
      if (depth <= 0) break;
      if (is(toks[k], ";") || is(toks[k], "{")) {
        k = toks.size();
        break;
      }
    }
    if (k + 2 >= toks.size()) continue;
    // `Task<...> name (` — a declaration or definition, not a variable.
    if (!is_ident(toks[k + 1]) || !is(toks[k + 2], "(")) continue;
    const std::string& name = toks[k + 1].text;
    if (name == "Task" || name == "operator") continue;
    // Walk the parameter list: total arity, plus the shorter arities
    // admitted by trailing defaulted parameters.
    int pdepth = 0;
    int params = 0;
    int min_params = -1;  // first defaulted parameter index, if any
    bool cur_nonempty = false;
    bool cur_defaulted = false;
    std::size_t p = k + 2;
    for (; p < toks.size(); ++p) {
      const Token& t = toks[p];
      if (is(t, "(") || is(t, "[") || is(t, "{")) ++pdepth;
      if (is(t, ")") || is(t, "]") || is(t, "}")) {
        if (--pdepth == 0) break;
        continue;
      }
      if (pdepth == 1 && is(t, ",")) {
        if (cur_defaulted && min_params < 0) min_params = params;
        ++params;
        cur_nonempty = false;
        cur_defaulted = false;
        continue;
      }
      if (pdepth >= 1) {
        cur_nonempty = true;
        if (pdepth == 1 && is(t, "=")) cur_defaulted = true;
      }
    }
    if (p >= toks.size()) continue;
    if (cur_nonempty) {
      if (cur_defaulted && min_params < 0) min_params = params;
      ++params;
    }
    if (min_params < 0) min_params = params;
    auto& arities = fns[name];
    for (int a = min_params; a <= params; ++a) arities.insert(a);
  }
}

}  // namespace

bool sim_affecting_path(const std::string& path) {
  static const std::unordered_set<std::string> kScopes = {
      "sim", "core",      "mem",   "htm",  "guest",
      "oltp", "workloads", "fault", "stats"};
  std::size_t begin = 0;
  while (begin <= path.size()) {
    const std::size_t slash = path.find('/', begin);
    const std::size_t end = slash == std::string::npos ? path.size() : slash;
    if (kScopes.count(path.substr(begin, end - begin)) != 0) return true;
    if (slash == std::string::npos) break;
    begin = slash + 1;
  }
  return false;
}

RuleContext collect_context(const std::vector<ParsedFile>& files) {
  RuleContext ctx;
  for (const ParsedFile& pf : files) {
    collect_task_functions(pf.file, ctx.task_fns);
    for (const ContainerDecl& d : pf.ast.container_decls) {
      ctx.containers[d.name].push_back(d.type_text);
    }
  }
  return ctx;
}

std::vector<Diagnostic> check_file(const ParsedFile& pf,
                                   const RuleContext& ctx) {
  return Checker(pf, ctx).run();
}

}  // namespace asfsim_lint
