#include "fix.hpp"

#include <algorithm>

namespace asfsim_lint {

FixResult apply_fixes(const LexedFile& file,
                      const std::vector<Diagnostic>& diags) {
  // Gather per-diagnostic edit sets for this file, keeping each set atomic:
  // either all of a diagnostic's edits apply or none do.
  struct Set {
    std::size_t lo = 0;
    std::size_t hi = 0;
    const std::vector<FixEdit>* edits = nullptr;
  };
  std::vector<Set> sets;
  for (const Diagnostic& d : diags) {
    if (d.path != file.path || d.fixes.empty()) continue;
    Set s;
    s.lo = d.fixes.front().begin;
    s.hi = d.fixes.front().end;
    for (const FixEdit& e : d.fixes) {
      s.lo = std::min(s.lo, e.begin);
      s.hi = std::max(s.hi, e.end);
    }
    s.edits = &d.fixes;
    sets.push_back(s);
  }
  std::sort(sets.begin(), sets.end(),
            [](const Set& a, const Set& b) { return a.lo < b.lo; });

  FixResult result;
  std::vector<FixEdit> accepted;
  std::size_t last_hi = 0;
  bool first = true;
  for (const Set& s : sets) {
    if (!first && s.lo < last_hi) {
      ++result.skipped;  // overlaps a previously accepted diagnostic
      continue;
    }
    first = false;
    last_hi = std::max(last_hi, s.hi);
    for (const FixEdit& e : *s.edits) accepted.push_back(e);
    ++result.applied;
  }

  // Apply back-to-front so earlier offsets stay valid.
  std::sort(accepted.begin(), accepted.end(),
            [](const FixEdit& a, const FixEdit& b) { return a.begin > b.begin; });
  result.source = file.source;
  for (const FixEdit& e : accepted) {
    if (e.begin > result.source.size() || e.end > result.source.size() ||
        e.begin > e.end) {
      continue;  // defensive: never write out of range
    }
    result.source.replace(e.begin, e.end - e.begin, e.replacement);
  }
  return result;
}

}  // namespace asfsim_lint
