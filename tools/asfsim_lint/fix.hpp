// asfsim_lint autofixer: applies the byte-range FixEdits attached to
// diagnostics back onto the original source text.
#pragma once

#include <string>
#include <vector>

#include "rules.hpp"

namespace asfsim_lint {

struct FixResult {
  std::string source;   // file contents after applying the edits
  int applied = 0;      // diagnostics whose edits were applied
  int skipped = 0;      // fixable diagnostics dropped due to edit overlap
};

/// Apply the fixes of every diagnostic that belongs to `file` (matched by
/// path). Edits are applied back-to-front; if two diagnostics' edit sets
/// overlap, the later one is skipped rather than producing garbled output.
FixResult apply_fixes(const LexedFile& file,
                      const std::vector<Diagnostic>& diags);

}  // namespace asfsim_lint
