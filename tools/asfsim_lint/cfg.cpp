#include "cfg.hpp"

#include "parser.hpp"

namespace asfsim_lint {
namespace {

struct Region {
  std::size_t entry = kNpos;          // first node, kNpos if empty
  std::vector<std::size_t> exits;     // nodes whose control falls out
};

class Builder {
 public:
  Builder(const LexedFile& file, const Ast& ast, std::size_t fn_index)
      : toks_(file.tokens), ast_(ast), fn_(fn_index) {}

  Cfg run() {
    cfg_.fn = fn_;
    cfg_.nodes.push_back(make_node(CfgNodeKind::kEntry, kNpos, kNpos));
    cfg_.nodes.push_back(make_node(CfgNodeKind::kExit, kNpos, kNpos));
    const FunctionDecl& f = ast_.functions[fn_];
    Region body;
    if (f.body_open != kNpos && f.body_close != kNpos &&
        f.body_open + 1 <= f.body_close) {
      body = parse_seq(f.body_open + 1, f.body_close);
    }
    if (body.entry == kNpos) {
      cfg_.nodes[0].succ.push_back(1);
    } else {
      cfg_.nodes[0].succ.push_back(body.entry);
      for (const std::size_t x : body.exits) cfg_.nodes[x].succ.push_back(1);
    }
    return std::move(cfg_);
  }

 private:
  static CfgNode make_node(CfgNodeKind kind, std::size_t begin,
                           std::size_t end) {
    CfgNode n;
    n.kind = kind;
    n.begin = begin;
    n.end = end;
    return n;
  }

  std::size_t add_node(CfgNodeKind kind, std::size_t begin, std::size_t end) {
    cfg_.nodes.push_back(make_node(kind, begin, end));
    return cfg_.nodes.size() - 1;
  }

  bool is(std::size_t i, const char* s) const {
    return i < toks_.size() && toks_[i].text == s;
  }
  bool mine(std::size_t i) const {
    return i < ast_.fn_of.size() && ast_.fn_of[i] == fn_;
  }

  /// Statement list over [begin, end); consecutive plain statements merge
  /// into one kBody node.
  Region parse_seq(std::size_t begin, std::size_t end) {
    Region region;
    std::vector<std::size_t> pending;  // nodes flowing into the next stmt
    std::size_t i = begin;
    int guard = 0;
    while (i < end && ++guard < (1 << 20)) {
      const auto [stmt, next] = parse_stmt(i, end);
      if (next <= i) break;  // no progress: malformed input, stop cleanly
      i = next;
      if (stmt.entry == kNpos) continue;
      // Merge a plain statement into an adjacent preceding plain sibling.
      if (stmt.entry == cfg_.nodes.size() - 1 && pending.size() == 1 &&
          stmt.exits.size() == 1 && stmt.exits[0] == stmt.entry) {
        CfgNode& prev = cfg_.nodes[pending[0]];
        CfgNode& cur = cfg_.nodes[stmt.entry];
        if (prev.kind == CfgNodeKind::kBody && cur.kind == CfgNodeKind::kBody &&
            cur.succ.empty() && prev.end == cur.begin) {
          prev.end = cur.end;
          cfg_.nodes.pop_back();
          continue;  // pending unchanged: still the merged node
        }
      }
      if (region.entry == kNpos) region.entry = stmt.entry;
      for (const std::size_t p : pending) {
        cfg_.nodes[p].succ.push_back(stmt.entry);
      }
      pending = stmt.exits;
    }
    region.exits = std::move(pending);
    if (region.entry != kNpos && region.exits.empty()) {
      // Whole region was control statements with no fallthrough recorded;
      // keep the graph connected.
      region.exits.push_back(region.entry);
    }
    return region;
  }

  /// One statement starting at `i`; returns its region and the index just
  /// past it.
  std::pair<Region, std::size_t> parse_stmt(std::size_t i, std::size_t end) {
    if (i >= end) return {{}, end};
    if (is(i, ";")) return {{}, i + 1};
    if (is(i, "}")) return {{}, i + 1};  // stray closer: consume, stay sound
    if (is(i, "{")) {
      const std::size_t close = match_brace(i, end);
      if (!mine(i)) return {{}, close + 1};  // nested lambda body: opaque
      Region r = parse_seq(i + 1, close);
      return {r, close + 1};
    }
    if (is(i, "if") || is(i, "switch")) return parse_branch(i, end);
    if (is(i, "while") || is(i, "for")) return parse_loop(i, end);
    if (is(i, "do")) return parse_do(i, end);
    if (is(i, "else") || is(i, "try")) {
      // `else`/`try` introduce the next statement directly.
      auto [r, next] = parse_stmt(i + 1, end);
      return {r, next};
    }
    if (is(i, "catch")) {
      std::size_t j = i + 1;
      if (is(j, "(")) {
        const std::size_t close = match_paren(toks_, j);
        j = close == kNpos ? j + 1 : close + 1;
      }
      auto [r, next] = parse_stmt(j, end);
      return {r, next};
    }
    return parse_plain(i, end);
  }

  std::pair<Region, std::size_t> parse_branch(std::size_t i, std::size_t end) {
    const std::string intro = toks_[i].text;
    std::size_t open = i + 1;
    if (is(open, "constexpr")) ++open;
    if (!is(open, "(")) return parse_plain(i, end);
    const std::size_t close = match_paren(toks_, open);
    if (close == kNpos || close >= end) return parse_plain(i, end);
    const std::size_t node = add_node(CfgNodeKind::kBranch, i, close + 1);
    cfg_.nodes[node].intro = intro;
    cfg_.nodes[node].cond_open = open;
    cfg_.nodes[node].cond_close = close;
    auto [then_r, next] = parse_stmt(close + 1, end);
    Region region;
    region.entry = node;
    if (then_r.entry != kNpos) {
      cfg_.nodes[node].succ.push_back(then_r.entry);
      region.exits = then_r.exits;
    }
    if (intro == "if" && is(next, "else")) {
      auto [else_r, after] = parse_stmt(next + 1, end);
      next = after;
      if (else_r.entry != kNpos) {
        cfg_.nodes[node].succ.push_back(else_r.entry);
        region.exits.insert(region.exits.end(), else_r.exits.begin(),
                            else_r.exits.end());
      } else {
        region.exits.push_back(node);
      }
    } else {
      region.exits.push_back(node);  // not-taken edge falls through
    }
    return {region, next};
  }

  std::pair<Region, std::size_t> parse_loop(std::size_t i, std::size_t end) {
    const std::string intro = toks_[i].text;
    const std::size_t open = i + 1;
    if (!is(open, "(")) return parse_plain(i, end);
    const std::size_t close = match_paren(toks_, open);
    if (close == kNpos || close >= end) return parse_plain(i, end);
    const std::size_t node = add_node(CfgNodeKind::kLoop, i, close + 1);
    cfg_.nodes[node].intro = intro;
    cfg_.nodes[node].cond_open = open;
    cfg_.nodes[node].cond_close = close;
    auto [body_r, next] = parse_stmt(close + 1, end);
    if (body_r.entry != kNpos) {
      cfg_.nodes[node].succ.push_back(body_r.entry);
      for (const std::size_t x : body_r.exits) {
        cfg_.nodes[x].succ.push_back(node);  // back edge
      }
    }
    Region region;
    region.entry = node;
    region.exits.push_back(node);  // loop-exit edge
    return {region, next};
  }

  std::pair<Region, std::size_t> parse_do(std::size_t i, std::size_t end) {
    auto [body_r, next] = parse_stmt(i + 1, end);
    std::size_t node = kNpos;
    if (is(next, "while") && is(next + 1, "(")) {
      const std::size_t open = next + 1;
      const std::size_t close = match_paren(toks_, open);
      if (close != kNpos && close < end) {
        node = add_node(CfgNodeKind::kLoop, next, close + 1);
        cfg_.nodes[node].intro = "do";
        cfg_.nodes[node].cond_open = open;
        cfg_.nodes[node].cond_close = close;
        next = close + 1;
        if (is(next, ";")) ++next;
      }
    }
    Region region;
    if (node == kNpos) return {body_r, next};
    if (body_r.entry != kNpos) {
      region.entry = body_r.entry;
      for (const std::size_t x : body_r.exits) {
        cfg_.nodes[x].succ.push_back(node);
      }
      cfg_.nodes[node].succ.push_back(body_r.entry);  // back edge
    } else {
      region.entry = node;
    }
    region.exits.push_back(node);
    return {region, next};
  }

  /// Plain statement: everything up to the `;` at this nesting level (or
  /// the region end). Nested brace/paren/bracket runs — including lambda
  /// bodies — are swallowed whole.
  std::pair<Region, std::size_t> parse_plain(std::size_t i, std::size_t end) {
    std::size_t k = i;
    int depth = 0;
    while (k < end) {
      const Token& t = toks_[k];
      if (t.text == "(" || t.text == "[" || t.text == "{") ++depth;
      if (t.text == ")" || t.text == "]") --depth;
      if (t.text == "}") {
        if (depth == 0) break;  // enclosing region ends mid-statement
        --depth;
      }
      if (depth == 0 && t.text == ";") {
        ++k;
        break;
      }
      if (depth < 0) break;
      ++k;
    }
    if (k <= i) k = i + 1;
    const std::size_t node = add_node(CfgNodeKind::kBody, i, k);
    Region region;
    region.entry = node;
    region.exits.push_back(node);
    return {region, k};
  }

  std::size_t match_brace(std::size_t open, std::size_t end) const {
    int depth = 0;
    for (std::size_t k = open; k < end; ++k) {
      if (toks_[k].text == "{") ++depth;
      if (toks_[k].text == "}" && --depth == 0) return k;
    }
    return end == 0 ? 0 : end - 1;
  }

  const std::vector<Token>& toks_;
  const Ast& ast_;
  std::size_t fn_;
  Cfg cfg_;
};

}  // namespace

Cfg build_cfg(const LexedFile& file, const Ast& ast, std::size_t fn_index) {
  return Builder(file, ast, fn_index).run();
}

std::vector<Cfg> build_cfgs(const LexedFile& file, const Ast& ast) {
  std::vector<Cfg> out;
  out.reserve(ast.functions.size());
  for (std::size_t i = 0; i < ast.functions.size(); ++i) {
    out.push_back(build_cfg(file, ast, i));
  }
  return out;
}

}  // namespace asfsim_lint
