#include "lexer.hpp"

#include <cctype>
#include <cstddef>

namespace asfsim_lint {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool ident_cont(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Parse suppression directives out of one comment body and record them.
/// Grammar:  asfsim-lint: allow(rule[, rule...])  |  allow-file(rule...)
void parse_directives(const std::string& comment, std::uint32_t line,
                      bool code_on_line, Suppressions& sup) {
  const std::string kTag = "asfsim-lint:";
  std::size_t at = comment.find(kTag);
  if (at == std::string::npos) return;
  std::size_t i = at + kTag.size();
  while (i < comment.size()) {
    while (i < comment.size() &&
           std::isspace(static_cast<unsigned char>(comment[i])) != 0) {
      ++i;
    }
    std::size_t start = i;
    while (i < comment.size() &&
           (ident_cont(comment[i]) || comment[i] == '-')) {
      ++i;
    }
    const std::string verb = comment.substr(start, i - start);
    if (verb != "allow" && verb != "allow-file") break;
    if (i >= comment.size() || comment[i] != '(') break;
    ++i;
    const std::size_t close = comment.find(')', i);
    if (close == std::string::npos) break;
    // Split the argument list on commas/space.
    std::string rule;
    for (std::size_t j = i; j <= close; ++j) {
      const char c = j < close ? comment[j] : ',';
      if (c == ',' || std::isspace(static_cast<unsigned char>(c)) != 0) {
        if (!rule.empty()) {
          if (verb == "allow-file") {
            sup.whole_file.insert(rule);
          } else {
            // A directive trailing code suppresses its own line; a
            // stand-alone directive line suppresses the next line.
            sup.by_line[code_on_line ? line : line + 1].insert(rule);
          }
          rule.clear();
        }
      } else {
        rule.push_back(c);
      }
    }
    i = close + 1;
  }
}

}  // namespace

LexedFile lex(std::string path, const std::string& src) {
  LexedFile out;
  out.path = std::move(path);
  out.source = src;
  std::uint32_t line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();
  bool code_on_line = false;  // any token emitted on the current line yet

  auto newline = [&] {
    ++line;
    code_on_line = false;
  };
  auto emit = [&](TokKind kind, std::string text, std::uint32_t at_line,
                  std::size_t begin, std::size_t end) {
    out.tokens.push_back({kind, std::move(text), at_line, begin, end});
    code_on_line = true;
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      newline();
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    // Preprocessor directive: swallow to end of line (incl. continuations),
    // so `#include <x>` and macro bodies never reach the rule engine.
    if (c == '#' && !code_on_line) {
      while (i < n && src[i] != '\n') {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          newline();
          ++i;
        }
        ++i;
      }
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const std::size_t start = i + 2;
      while (i < n && src[i] != '\n') ++i;
      parse_directives(src.substr(start, i - start), line, code_on_line,
                       out.suppressions);
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const std::uint32_t at = line;
      const bool had_code = code_on_line;
      std::string body;
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') newline();
        body.push_back(src[i]);
        ++i;
      }
      i = i + 1 < n ? i + 2 : n;
      parse_directives(body, at, had_code, out.suppressions);
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      const std::size_t begin = i;
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && src[j] != '(') delim.push_back(src[j++]);
      const std::string close = ")" + delim + "\"";
      const std::size_t end = src.find(close, j);
      const std::size_t stop = end == std::string::npos ? n : end + close.size();
      const std::uint32_t at = line;
      for (std::size_t k = i; k < stop; ++k) {
        if (src[k] == '\n') newline();
      }
      emit(TokKind::kString, "R\"...\"", at, begin, stop);
      i = stop;
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const std::size_t begin = i;
      const char quote = c;
      std::string text(1, c);
      ++i;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < n) {
          text.push_back(src[i++]);
        } else if (src[i] == '\n') {
          break;  // unterminated; tolerate
        }
        text.push_back(src[i++]);
      }
      if (i < n && src[i] == quote) {
        text.push_back(quote);
        ++i;
      }
      emit(quote == '"' ? TokKind::kString : TokKind::kChar, std::move(text),
           line, begin, i);
      continue;
    }
    // Identifier / keyword.
    if (ident_start(c)) {
      std::size_t j = i;
      while (j < n && ident_cont(src[j])) ++j;
      emit(TokKind::kIdent, src.substr(i, j - i), line, i, j);
      i = j;
      continue;
    }
    // Number (incl. hex, digit separators, suffixes; precision not needed).
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::size_t j = i;
      while (j < n && (ident_cont(src[j]) || src[j] == '\'' ||
                       ((src[j] == '+' || src[j] == '-') && j > i &&
                        (src[j - 1] == 'e' || src[j - 1] == 'E' ||
                         src[j - 1] == 'p' || src[j - 1] == 'P')))) {
        ++j;
      }
      emit(TokKind::kNumber, src.substr(i, j - i), line, i, j);
      i = j;
      continue;
    }
    // Punctuation: group the multi-char operators the rules care about.
    std::string p(1, c);
    auto two = [&](const char* op) {
      return i + 1 < n && src[i] == op[0] && src[i + 1] == op[1];
    };
    if (two("->") || two("::") || two("==") || two("!=") || two("<=") ||
        two(">=") || two("&&") || two("||") || two("+=") || two("-=") ||
        two("*=") || two("/=") || two("|=") || two("&=") || two("^=") ||
        two("<<") || two(">>") || two("++") || two("--")) {
      p = src.substr(i, 2);
    }
    const std::size_t len = p.size();
    emit(TokKind::kPunct, std::move(p), line, i, i + len);
    i += len;
  }
  return out;
}

}  // namespace asfsim_lint
