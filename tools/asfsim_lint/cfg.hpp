// asfsim_lint CFG-lite: per-function control-flow graphs built from the AST.
//
// Nodes are token ranges; branch/loop nodes carry the condition's paren
// extent so rule passes can scan condition expressions structurally
// (R1 coawait-in-condition consumes exactly these). Edges model structured
// control flow only — break/continue/goto/exceptions fall through as if the
// statement ended normally, which is sound for every current rule (they
// need "is this token a condition" and reachability-free range queries,
// not precise dataflow).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ast.hpp"
#include "lexer.hpp"

namespace asfsim_lint {

enum class CfgNodeKind : std::uint8_t {
  kEntry,
  kExit,
  kBody,    // straight-line statement run
  kBranch,  // if/switch header
  kLoop,    // while/for/do-while header
};

struct CfgNode {
  CfgNodeKind kind = CfgNodeKind::kBody;
  std::size_t begin = kNpos;  // token range [begin, end)
  std::size_t end = kNpos;
  std::string intro;          // "if"/"while"/"for"/"switch"/"do" for headers
  std::size_t cond_open = kNpos;   // `(` of the condition, for headers
  std::size_t cond_close = kNpos;  // matching `)`
  std::vector<std::size_t> succ;
};

struct Cfg {
  std::size_t fn = kNpos;  // index into Ast::functions
  // nodes[0] is the entry, nodes[1] the exit.
  std::vector<CfgNode> nodes;
};

/// Build the CFG for one function of `ast` (by index into ast.functions).
Cfg build_cfg(const LexedFile& file, const Ast& ast, std::size_t fn_index);

/// Build CFGs for every function in the file (same order as ast.functions).
std::vector<Cfg> build_cfgs(const LexedFile& file, const Ast& ast);

}  // namespace asfsim_lint
