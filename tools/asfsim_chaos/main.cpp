// asfsim_chaos: robustness driver for the fault-injection subsystem.
//
// Subcommands:
//   matrix    run the mutation-kill matrix (clean controls + every
//             --mutate variant until an oracle kills it). Exit 0 iff all
//             mutations are killed AND every clean control stays green —
//             this is what the chaos CI job gates on.
//   cell      run one chaos cell (detector × seed × fault × mutation) and
//             print its verdict. Exit 0 iff the verdict is clean.
//   livelock  run a deliberately livelocked configuration (counter
//             workload, 256 B direct-mapped L1, fallback disabled) and
//             demand the kernel watchdog terminates it with a diagnostic
//             dump. --runner routes the same job through the parallel
//             runner to demonstrate JobError context propagation.
//
// See docs/robustness.md for the mutation catalog and triage guide.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "fault/chaos.hpp"
#include "harness/experiment.hpp"
#include "runner/runner.hpp"
#include "sim/kernel.hpp"

namespace {

using namespace asfsim;

[[noreturn]] void usage(int code) {
  std::FILE* out = code == 0 ? stdout : stderr;
  std::fprintf(
      out,
      "usage: asfsim_chaos <matrix|cell|livelock> [options]\n"
      "  matrix [--seeds a,b,c] [--ntx N] [--audit N] [--verbose]\n"
      "  cell --mutate NAME [--detector baseline|subblock] [--nsub N]\n"
      "       [--seed N] [--ntx N] [--audit N]\n"
      "       [--cm-policy requester-wins|polite|timestamp|serialize]\n"
      "       [--cm-max-retries N] [--cm-karma N] [--max-tx-retries N]\n"
      "  livelock [--runner | --serialize]\n"
      "    --serialize reruns the livelocked configuration under\n"
      "    --cm-policy serialize with the watchdog DISARMED and demands\n"
      "    the fallback escalation alone terminates it.\n"
      "mutations (--mutate):\n");
  for (const ProtocolMutation m : all_mutations()) {
    std::fprintf(out, "  %s\n", to_string(m));
  }
  std::exit(code);
}

std::uint64_t parse_u64(const char* s) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') {
    std::fprintf(stderr, "asfsim_chaos: bad number '%s'\n", s);
    std::exit(2);
  }
  return v;
}

const char* next_arg(int argc, char** argv, int& i) {
  if (i + 1 >= argc) {
    std::fprintf(stderr, "asfsim_chaos: %s needs a value\n", argv[i]);
    std::exit(2);
  }
  return argv[++i];
}

int cmd_matrix(int argc, char** argv) {
  KillMatrixOptions opt;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seeds") == 0) {
      opt.seeds.clear();
      std::string list = next_arg(argc, argv, i);
      for (std::size_t pos = 0; pos < list.size();) {
        const std::size_t comma = list.find(',', pos);
        const std::size_t end = comma == std::string::npos ? list.size() : comma;
        opt.seeds.push_back(parse_u64(list.substr(pos, end - pos).c_str()));
        pos = end + 1;
      }
    } else if (std::strcmp(argv[i], "--ntx") == 0) {
      opt.ntx = static_cast<int>(parse_u64(next_arg(argc, argv, i)));
    } else if (std::strcmp(argv[i], "--audit") == 0) {
      opt.audit_interval = parse_u64(next_arg(argc, argv, i));
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      opt.verbose = true;
    } else {
      usage(2);
    }
  }
  const KillMatrixReport report = run_kill_matrix(opt);
  std::printf("%s\n", report.summary().c_str());
  return report.all_green() ? 0 : 1;
}

int cmd_cell(int argc, char** argv) {
  ChaosCell cell;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--mutate") == 0) {
      const char* name = next_arg(argc, argv, i);
      if (!parse_mutation(name, cell.fault.mutation)) {
        std::fprintf(stderr, "asfsim_chaos: unknown mutation '%s'\n", name);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--detector") == 0) {
      const char* d = next_arg(argc, argv, i);
      if (std::strcmp(d, "baseline") == 0) {
        cell.detector = DetectorKind::kBaseline;
        cell.nsub = 1;
      } else if (std::strcmp(d, "subblock") == 0) {
        cell.detector = DetectorKind::kSubBlock;
      } else {
        std::fprintf(stderr, "asfsim_chaos: unknown detector '%s'\n", d);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--nsub") == 0) {
      cell.nsub = static_cast<std::uint32_t>(parse_u64(next_arg(argc, argv, i)));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      cell.seed = parse_u64(next_arg(argc, argv, i));
    } else if (std::strcmp(argv[i], "--ntx") == 0) {
      cell.ntx = static_cast<int>(parse_u64(next_arg(argc, argv, i)));
    } else if (std::strcmp(argv[i], "--audit") == 0) {
      cell.audit_interval = parse_u64(next_arg(argc, argv, i));
    } else if (std::strcmp(argv[i], "--cm-policy") == 0) {
      const char* name = next_arg(argc, argv, i);
      if (!parse_cm_policy(name, cell.cm.policy)) {
        std::fprintf(stderr, "asfsim_chaos: unknown policy '%s'\n", name);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--cm-max-retries") == 0) {
      cell.cm.max_retries =
          static_cast<std::uint32_t>(parse_u64(next_arg(argc, argv, i)));
    } else if (std::strcmp(argv[i], "--cm-karma") == 0) {
      cell.cm.karma =
          static_cast<std::uint32_t>(parse_u64(next_arg(argc, argv, i)));
    } else if (std::strcmp(argv[i], "--max-tx-retries") == 0) {
      cell.max_tx_retries =
          static_cast<std::int32_t>(parse_u64(next_arg(argc, argv, i)));
    } else if (std::strcmp(argv[i], "--ncells") == 0) {
      cell.ncells = parse_u64(next_arg(argc, argv, i));
    } else {
      usage(2);
    }
  }
  const ChaosCellResult r = run_chaos_cell(cell);
  std::printf("verdict: %s\n", to_string(r.verdict));
  if (!r.detail.empty()) std::printf("detail: %s\n", r.detail.c_str());
  std::printf("commits: %llu\n", static_cast<unsigned long long>(r.commits));
  std::printf("max consecutive aborts: %u\n", r.max_streak);
  return r.verdict == ChaosVerdict::kClean ? 0 : 1;
}

/// A config that cannot make forward progress: the counter workload's
/// per-thread state plus the hot counter line overflow a 256-byte
/// direct-mapped L1, every transaction capacity-aborts, and with the
/// fallback path disabled (max_tx_retries = 0) the retry loop spins
/// forever. Only the watchdog ends it.
ExperimentConfig livelocked_config() {
  ExperimentConfig cfg;
  cfg.detector = DetectorKind::kSubBlock;
  cfg.nsub = 4;
  cfg.sim.l1.size_bytes = 256;
  cfg.sim.l1.ways = 1;
  cfg.sim.max_tx_retries = 0;  // never fall back to the lock
  cfg.sim.backoff_cap_shift = 2;
  cfg.sim.watchdog_cycles = 200'000;
  cfg.params.threads = 4;
  cfg.params.seed = 7;
  return cfg;
}

int cmd_livelock(int argc, char** argv) {
  bool via_runner = false;
  bool serialize = false;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--runner") == 0) {
      via_runner = true;
    } else if (std::strcmp(argv[i], "--serialize") == 0) {
      serialize = true;
    } else {
      usage(2);
    }
  }
  ExperimentConfig cfg = livelocked_config();
  if (serialize) {
    // The guaranteed-termination demo (docs/contention.md §3): same
    // livelocked configuration, but the serialize policy re-enables the
    // fallback escalation. The watchdog stays DISARMED — termination must
    // come from the policy's progress guarantee, not a timeout.
    cfg.sim.cm.policy = CmPolicyKind::kSerialize;
    cfg.sim.cm.max_retries = 8;
    cfg.sim.watchdog_cycles = 0;
    const ExperimentResult r = run_experiment("counter", cfg);
    std::printf(
        "serialize fallback guaranteed termination with the watchdog "
        "disarmed:\n  commits %llu  aborts %llu  fallback runs %llu  "
        "cycles %llu\n",
        static_cast<unsigned long long>(r.stats.tx_commits),
        static_cast<unsigned long long>(r.stats.tx_aborts),
        static_cast<unsigned long long>(r.stats.fallback_runs),
        static_cast<unsigned long long>(r.stats.total_cycles));
    if (r.stats.fallback_runs == 0) {
      std::fprintf(stderr,
                   "livelock --serialize: the run finished without the "
                   "fallback ever engaging — the configuration is no longer "
                   "livelocked\n");
      return 1;
    }
    return 0;
  }
  try {
    if (via_runner) {
      runner::RunnerOptions ro;
      ro.use_cache = false;
      ro.jobs = 2;
      ro.manifest_path = "-";
      runner::Runner r(ro);
      (void)r.get("counter", cfg);
    } else {
      (void)run_experiment("counter", cfg);
    }
  } catch (const runner::JobError& e) {
    std::printf("runner surfaced the livelock with job context:\n%s\n",
                e.what());
    return 0;
  } catch (const LivelockError& e) {
    std::printf("watchdog fired as designed:\n%s\n", e.what());
    return 0;
  }
  std::fprintf(stderr,
               "livelock demo completed without tripping the watchdog — "
               "the configuration is no longer livelocked\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage(2);
  if (std::strcmp(argv[1], "--help") == 0 || std::strcmp(argv[1], "-h") == 0) {
    usage(0);
  }
  if (std::strcmp(argv[1], "matrix") == 0) {
    return cmd_matrix(argc - 2, argv + 2);
  }
  if (std::strcmp(argv[1], "cell") == 0) {
    return cmd_cell(argc - 2, argv + 2);
  }
  if (std::strcmp(argv[1], "livelock") == 0) {
    return cmd_livelock(argc - 2, argv + 2);
  }
  usage(2);
}
