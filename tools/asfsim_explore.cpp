// asfsim_explore — interactive-grade CLI for running any workload under any
// detector/configuration and dumping the full statistics report.
//
//   $ asfsim_explore --workload vacation --detector subblock --nsub 4
//   $ asfsim_explore --workload ssca2 --detector perfect --scale 2 --seed 9
//   $ asfsim_explore --list
//
// Flags beyond the common set (--scale/--threads/--seed/--csv):
//   --workload <name>   workload to run (default: counter)
//   --detector <name>   baseline | subblock | subblock-wawline |
//                       subblock-nodirty | perfect | war-only
//   --nsub <n>          sub-blocks per line for the sub-block detectors
//   --ats               enable adaptive transaction scheduling
//   --trace <n>         print the last n transaction events after the run
//   --list              list registered workloads and exit
//
// Robustness knobs (docs/robustness.md):
//   --fault-spurious p / --fault-commit p / --fault-evict p
//   --fault-probe-jitter n / --fault-sched-jitter n
//   --mutate <name>     deliberately break one sub-block protocol rule
//   --watchdog <n>      livelock watchdog: abort + diagnose after n
//                       cycles without a commit
//
// OLTP/KV workload family knobs (docs/workloads.md; only the `oltp`
// workload reads them): --oltp-records/--oltp-payload/--oltp-tx-len/
// --oltp-tx/--oltp-theta/--oltp-read-ratio/--oltp-rmw-ratio/
// --oltp-scan-ratio/--oltp-scan-len/--oltp-hot-window/
// --oltp-mix <a..f|custom>
//
// Contention management (docs/contention.md):
//   --cm-policy <name>  requester-wins | polite | timestamp | serialize
//   --cm-max-retries n  serialize policy's bounded-retry threshold
//   --cm-karma <n>      timestamp policy's per-abort priority credit
//   --cm-stats          print the per-core starvation/fairness section
//
// Observability (docs/observability.md):
//   --prov              conflict provenance: per-site conflict attribution
//                       in the printed report
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "harness/args.hpp"
#include "guest/machine.hpp"
#include "harness/experiment.hpp"
#include "prov/collector.hpp"
#include "stats/report.hpp"
#include "workloads/workload.hpp"

using namespace asfsim;

namespace {

DetectorKind parse_detector(const std::string& name) {
  if (name == "baseline" || name == "baseline-asf") return DetectorKind::kBaseline;
  if (name == "subblock") return DetectorKind::kSubBlock;
  if (name == "subblock-wawline") return DetectorKind::kSubBlockWawLine;
  if (name == "subblock-nodirty") return DetectorKind::kSubBlockNoDirty;
  if (name == "perfect") return DetectorKind::kPerfect;
  if (name == "war-only" || name == "waronly") return DetectorKind::kWarOnly;
  std::fprintf(stderr, "unknown detector '%s'\n", name.c_str());
  std::exit(2);
}

void print_report(const ExperimentResult& r, std::uint32_t threads) {
  const Stats& s = r.stats;
  std::printf("workload   : %s\n", r.workload.c_str());
  std::printf("detector   : %s\n", r.detector.c_str());
  std::printf("validated  : %s\n",
              r.ok() ? "ok" : r.validation_error.c_str());
  std::printf("\n-- transactions --\n");
  std::printf("attempts   : %llu\n", (unsigned long long)s.tx_attempts);
  std::printf("commits    : %llu\n", (unsigned long long)s.tx_commits);
  std::printf("aborts     : %llu  (conflict %llu, capacity %llu, user %llu, "
              "lock-wait %llu)\n",
              (unsigned long long)s.tx_aborts,
              (unsigned long long)s.aborts_by_cause[0],
              (unsigned long long)s.aborts_by_cause[1],
              (unsigned long long)s.aborts_by_cause[2],
              (unsigned long long)s.aborts_by_cause[3]);
  std::printf("avg retries: %.3f\n", s.avg_retries());
  std::printf("fallbacks  : %llu   ATS dispatches: %llu\n",
              (unsigned long long)s.fallback_runs,
              (unsigned long long)s.ats_serialized);
  std::printf("\n-- conflicts --\n");
  std::printf("total      : %llu\n", (unsigned long long)s.conflicts_total);
  std::printf("false      : %llu  (%.1f%%)\n",
              (unsigned long long)s.conflicts_false,
              100.0 * s.false_conflict_rate());
  std::printf("false types: WAR %llu, RAW %llu, WAW %llu\n",
              (unsigned long long)s.false_by_type[0],
              (unsigned long long)s.false_by_type[1],
              (unsigned long long)s.false_by_type[2]);
  std::printf("true types : WAR %llu, RAW %llu, WAW %llu\n",
              (unsigned long long)s.true_by_type[0],
              (unsigned long long)s.true_by_type[1],
              (unsigned long long)s.true_by_type[2]);
  std::printf("avoided    : %llu (baseline would have aborted)\n",
              (unsigned long long)s.false_conflicts_avoided);
  std::printf("analytic false survival @1/2/4/8/16 sub-blocks: "
              "%llu/%llu/%llu/%llu/%llu\n",
              (unsigned long long)s.false_surviving_at[0],
              (unsigned long long)s.false_surviving_at[1],
              (unsigned long long)s.false_surviving_at[2],
              (unsigned long long)s.false_surviving_at[3],
              (unsigned long long)s.false_surviving_at[4]);
  std::printf("\n-- memory system --\n");
  std::printf("accesses   : %llu (tx %llu)\n", (unsigned long long)s.accesses,
              (unsigned long long)s.tx_accesses);
  std::printf("L1 hits    : %llu   c2c: %llu   L2: %llu   L3: %llu   "
              "mem: %llu\n",
              (unsigned long long)s.l1_hits,
              (unsigned long long)s.c2c_transfers,
              (unsigned long long)s.l2_hits, (unsigned long long)s.l3_hits,
              (unsigned long long)s.mem_fetches);
  std::printf("probes     : %llu   piggy-back msgs: %llu   dirty "
              "refetches: %llu   upgrades: %llu\n",
              (unsigned long long)s.probes_sent,
              (unsigned long long)s.piggyback_messages,
              (unsigned long long)s.dirty_refetches,
              (unsigned long long)s.upgrades);
  std::printf("\n-- time --\n");
  std::printf("cycles     : %llu\n", (unsigned long long)s.total_cycles);
  std::printf("throughput : %.3g commits/simulated-second (%.1f GHz clock)\n",
              s.commits_per_simsec(), Stats::kSimClockHz / 1e9);
  std::printf("tx latency : p50 %.0f  p95 %.0f  p99 %.0f cycles "
              "(logical tx, incl. retries+backoff)\n",
              s.latency_percentile(0.50), s.latency_percentile(0.95),
              s.latency_percentile(0.99));
  std::printf("tx busy    : %llu cycles (%.1f%% duty over %u cores)\n",
              (unsigned long long)s.tx_busy_cycles,
              s.total_cycles == 0
                  ? 0.0
                  : 100.0 * double(s.tx_busy_cycles) /
                        (double(threads) * double(s.total_cycles)),
              threads);
  if (s.cm_enabled) {
    std::printf("\n-- contention management (--cm-stats) --\n");
    std::printf("policy decisions : %llu  (requester lost %llu)\n",
                (unsigned long long)s.cm_policy_decisions,
                (unsigned long long)s.cm_requester_losses);
    std::printf("fallback acquires: %llu\n",
                (unsigned long long)s.cm_fallback_acquisitions);
    std::printf("wasted-cycle gini: %.3f  (0 = perfectly fair)\n",
                s.cm_wasted_gini());
    std::printf("per-core [max consecutive aborts / wasted cycles / first "
                "commit]:\n");
    for (std::size_t c = 0; c < s.cm_max_consec_aborts.size(); ++c) {
      std::printf("  core %-2zu  %-6llu %-10llu %llu\n", c,
                  (unsigned long long)s.cm_max_consec_aborts[c],
                  (unsigned long long)s.cm_wasted_by_core[c],
                  (unsigned long long)s.cm_first_commit_cycle[c]);
    }
  }
  if (s.prov_enabled && !s.prov_site_names.empty()) {
    // Top offender sites by false conflicts (full forensics: run with
    // --trace-dir and feed the capture to `asfsim_trace conflicts`).
    std::vector<std::size_t> order(s.prov_site_names.size());
    std::vector<std::uint64_t> nfalse(order.size()), ntrue(order.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      order[i] = i;
      const std::uint64_t* row = &s.prov_site_table[i * prov::kSiteStride];
      nfalse[i] = row[3] + row[4] + row[5];
      ntrue[i] = row[6] + row[7] + row[8];
    }
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (nfalse[a] != nfalse[b]) return nfalse[a] > nfalse[b];
      if (ntrue[a] != ntrue[b]) return ntrue[a] > ntrue[b];
      return a < b;
    });
    std::printf("\n-- conflict provenance (top sites by false conflicts) --\n");
    std::size_t shown = 0;
    for (const std::size_t i : order) {
      const std::uint64_t* row = &s.prov_site_table[i * prov::kSiteStride];
      if (nfalse[i] + ntrue[i] + row[9] == 0) continue;
      std::printf("%-20s objects %-8llu false %-8llu true %-8llu "
                  "avoided %-8llu wasted %llu\n",
                  s.prov_site_names[i].c_str(), (unsigned long long)row[1],
                  (unsigned long long)nfalse[i], (unsigned long long)ntrue[i],
                  (unsigned long long)row[9], (unsigned long long)row[10]);
      if (++shown == 8) break;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string workload = "counter";
  std::string detector = "baseline";
  std::uint32_t nsub = 4;
  bool ats = false;
  std::size_t trace_depth = 0;
  CliOptions common;

  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--workload")) {
      workload = need("--workload");
    } else if (!std::strcmp(argv[i], "--detector")) {
      detector = need("--detector");
    } else if (!std::strcmp(argv[i], "--nsub")) {
      nsub = static_cast<std::uint32_t>(std::atoi(need("--nsub")));
    } else if (!std::strcmp(argv[i], "--ats")) {
      ats = true;
    } else if (!std::strcmp(argv[i], "--trace")) {
      trace_depth = static_cast<std::size_t>(std::atoll(need("--trace")));
    } else if (!std::strcmp(argv[i], "--scale")) {
      common.scale = std::atof(need("--scale"));
    } else if (!std::strcmp(argv[i], "--threads")) {
      common.threads = static_cast<std::uint32_t>(std::atoi(need("--threads")));
    } else if (!std::strcmp(argv[i], "--seed")) {
      common.seed = static_cast<std::uint64_t>(std::atoll(need("--seed")));
    } else if (!std::strcmp(argv[i], "--fault-spurious")) {
      common.fault_spurious = std::atof(need("--fault-spurious"));
    } else if (!std::strcmp(argv[i], "--fault-commit")) {
      common.fault_commit = std::atof(need("--fault-commit"));
    } else if (!std::strcmp(argv[i], "--fault-evict")) {
      common.fault_evict = std::atof(need("--fault-evict"));
    } else if (!std::strcmp(argv[i], "--fault-probe-jitter")) {
      common.fault_probe_jitter =
          static_cast<std::uint64_t>(std::atoll(need("--fault-probe-jitter")));
    } else if (!std::strcmp(argv[i], "--fault-sched-jitter")) {
      common.fault_sched_jitter =
          static_cast<std::uint64_t>(std::atoll(need("--fault-sched-jitter")));
    } else if (!std::strcmp(argv[i], "--mutate")) {
      common.mutate = need("--mutate");
      ProtocolMutation mut = ProtocolMutation::kNone;
      if (!parse_mutation(common.mutate, mut)) {
        std::fprintf(stderr, "unknown --mutate %s (try --help)\n",
                     common.mutate.c_str());
        return 2;
      }
    } else if (!std::strcmp(argv[i], "--watchdog")) {
      common.watchdog =
          static_cast<std::uint64_t>(std::atoll(need("--watchdog")));
    } else if (!std::strcmp(argv[i], "--oltp-records")) {
      common.oltp.records =
          static_cast<std::uint64_t>(std::atoll(need("--oltp-records")));
    } else if (!std::strcmp(argv[i], "--oltp-payload")) {
      common.oltp.payload_bytes =
          static_cast<std::uint32_t>(std::atoi(need("--oltp-payload")));
    } else if (!std::strcmp(argv[i], "--oltp-tx-len")) {
      common.oltp.tx_len =
          static_cast<std::uint32_t>(std::atoi(need("--oltp-tx-len")));
    } else if (!std::strcmp(argv[i], "--oltp-tx")) {
      common.oltp.tx_per_thread =
          static_cast<std::uint64_t>(std::atoll(need("--oltp-tx")));
    } else if (!std::strcmp(argv[i], "--oltp-theta")) {
      common.oltp.theta = std::atof(need("--oltp-theta"));
    } else if (!std::strcmp(argv[i], "--oltp-read-ratio")) {
      common.oltp.read_ratio = std::atof(need("--oltp-read-ratio"));
    } else if (!std::strcmp(argv[i], "--oltp-rmw-ratio")) {
      common.oltp.rmw_ratio = std::atof(need("--oltp-rmw-ratio"));
    } else if (!std::strcmp(argv[i], "--oltp-scan-ratio")) {
      common.oltp.scan_ratio = std::atof(need("--oltp-scan-ratio"));
    } else if (!std::strcmp(argv[i], "--oltp-scan-len")) {
      common.oltp.scan_len =
          static_cast<std::uint32_t>(std::atoi(need("--oltp-scan-len")));
    } else if (!std::strcmp(argv[i], "--oltp-hot-window")) {
      common.oltp.hot_window =
          static_cast<std::uint64_t>(std::atoll(need("--oltp-hot-window")));
    } else if (!std::strcmp(argv[i], "--prov")) {
      common.prov = true;
    } else if (!std::strcmp(argv[i], "--cm-policy")) {
      const char* name = need("--cm-policy");
      if (!parse_cm_policy(name, common.cm.policy)) {
        std::fprintf(stderr, "unknown --cm-policy %s (try --help)\n", name);
        return 2;
      }
    } else if (!std::strcmp(argv[i], "--cm-max-retries")) {
      common.cm.max_retries =
          static_cast<std::uint32_t>(std::atoi(need("--cm-max-retries")));
    } else if (!std::strcmp(argv[i], "--cm-karma")) {
      common.cm.karma =
          static_cast<std::uint32_t>(std::atoi(need("--cm-karma")));
    } else if (!std::strcmp(argv[i], "--cm-stats")) {
      common.cm.stats = true;
    } else if (!std::strcmp(argv[i], "--oltp-mix")) {
      const char* name = need("--oltp-mix");
      if (!parse_oltp_mix(name, common.oltp.mix)) {
        std::fprintf(stderr, "unknown --oltp-mix %s (try --help)\n", name);
        return 2;
      }
    } else if (!std::strcmp(argv[i], "--list")) {
      for (const auto& w : workload_registry()) {
        std::printf("%-14s %s\n", w.name, w.make()->description());
      }
      return 0;
    } else if (!std::strcmp(argv[i], "--help")) {
      std::printf("see the comment block at the top of tools/asfsim_explore.cpp\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag %s (try --help)\n", argv[i]);
      return 2;
    }
  }

  ExperimentConfig cfg;
  cfg.detector = parse_detector(detector);
  cfg.nsub = nsub;
  cfg.params.threads = common.threads;
  cfg.params.seed = common.seed;
  cfg.params.scale = common.scale;
  cfg.sim.ncores = common.threads;
  cfg.sim.enable_ats = ats;
  apply_robustness_options(common, cfg);

  if (trace_depth == 0) {
    const ExperimentResult r = run_experiment(workload, cfg);
    print_report(r, common.threads);
    return r.ok() ? 0 : 1;
  }

  // Traced run: drive the Machine directly so the event ring is reachable.
  SimConfig sim = cfg.sim;
  sim.seed = cfg.params.seed;
  Machine m(sim, cfg.detector, cfg.nsub);
  TxTrace& trace = m.enable_trace(trace_depth);
  auto wl = make_workload(workload);
  wl->setup(m, cfg.params);
  m.run(cfg.max_cycles);
  ExperimentResult r;
  r.workload = workload;
  r.detector = m.detector().name();
  r.validation_error = wl->validate(m);
  r.stats = m.stats();
  print_report(r, common.threads);
  std::printf("\n-- last %zu of %llu transaction events --\n",
              trace.events().size(),
              (unsigned long long)trace.total_recorded());
  std::ostringstream os;
  trace.print(os);
  std::fputs(os.str().c_str(), stdout);
  return r.ok() ? 0 : 1;
}
