// asfsim_trace: offline analysis of full-timeline traces
// (docs/observability.md).
//
//   asfsim_trace summarize <trace.jsonl> [--top N]
//       Event counts, top-N conflicting lines, hottest core pairs, the
//       core×core conflict matrix, and an abort-cause timeline.
//
//   asfsim_trace convert <trace.jsonl> <out.perfetto.json>
//       Re-emit a JSONL trace as a Chrome/Perfetto trace-event file
//       (load it at https://ui.perfetto.dev or chrome://tracing).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "trace/jsonl.hpp"
#include "trace/perfetto_sink.hpp"
#include "trace/summary.hpp"

namespace {

int usage(const char* argv0, int code) {
  std::fprintf(stderr,
               "usage: %s summarize <trace.jsonl> [--top N]\n"
               "       %s convert <trace.jsonl> <out.perfetto.json>\n",
               argv0, argv0);
  return code;
}

int cmd_summarize(const char* argv0, int argc, char** argv) {
  if (argc < 1) return usage(argv0, 2);
  const char* path = argv[0];
  int top_n = 10;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
      top_n = std::atoi(argv[++i]);
    } else {
      return usage(argv0, 2);
    }
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "%s: cannot open %s\n", argv0, path);
    return 1;
  }
  asfsim::trace::TraceSummary summary;
  std::string err;
  if (!asfsim::trace::summarize_jsonl(in, summary, err)) {
    std::fprintf(stderr, "%s: %s: %s\n", argv0, path, err.c_str());
    return 1;
  }
  std::cout << "trace: " << path << "\n";
  asfsim::trace::print_summary(summary, std::cout, top_n);
  return 0;
}

int cmd_convert(const char* argv0, int argc, char** argv) {
  if (argc != 2) return usage(argv0, 2);
  std::ifstream in(argv[0], std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "%s: cannot open %s\n", argv0, argv[0]);
    return 1;
  }
  std::ofstream out(argv[1], std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "%s: cannot open %s for writing\n", argv0, argv[1]);
    return 1;
  }
  asfsim::trace::PerfettoSink sink(out);
  std::string line;
  std::size_t lineno = 0;
  asfsim::Cycle last_cycle = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    asfsim::trace::TraceEvent ev;
    if (!asfsim::trace::from_jsonl(line, ev)) {
      std::fprintf(stderr, "%s: %s:%zu: malformed event line\n", argv0,
                   argv[0], lineno);
      return 1;
    }
    if (ev.cycle > last_cycle) last_cycle = ev.cycle;
    sink.on_event(ev);
  }
  sink.finish(last_cycle);
  std::fprintf(stderr, "wrote %s (%zu events)\n", argv[1], lineno);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0], 2);
  if (std::strcmp(argv[1], "summarize") == 0) {
    return cmd_summarize(argv[0], argc - 2, argv + 2);
  }
  if (std::strcmp(argv[1], "convert") == 0) {
    return cmd_convert(argv[0], argc - 2, argv + 2);
  }
  if (std::strcmp(argv[1], "--help") == 0) return usage(argv[0], 0);
  return usage(argv[0], 2);
}
