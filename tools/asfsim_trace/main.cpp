// asfsim_trace: offline analysis of full-timeline traces
// (docs/observability.md).
//
//   asfsim_trace summarize <trace.jsonl> [--top N] [--starvation]
//       Event counts, top-N conflicting lines, hottest core pairs, the
//       core×core conflict matrix, an abort-cause timeline, and a
//       forward-progress section (aborts per tx, per-core max consecutive
//       aborts, fallback acquisitions). --starvation additionally demands
//       a contention-policy trace: it exits non-zero when the stream holds
//       no policy or fallback-acquisition events at all.
//
//   asfsim_trace convert <trace.jsonl> <out.perfetto.json>
//       Re-emit a JSONL trace as a Chrome/Perfetto trace-event file
//       (load it at https://ui.perfetto.dev or chrome://tracing).
//
//   asfsim_trace conflicts <trace.jsonl> [--top N] [--csv <out.csv>]
//       Conflict-provenance forensics over a --prov trace: ranked offender
//       sites, hottest lines with a sub-block occupancy heatmap, and the
//       requester->victim site-pair matrix. --csv additionally dumps the
//       untruncated tables.
//
// Every command exits non-zero with a one-line diagnostic on a missing,
// unreadable, empty, or truncated/malformed trace.
#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "trace/conflicts.hpp"
#include "trace/jsonl.hpp"
#include "trace/perfetto_sink.hpp"
#include "trace/summary.hpp"

namespace {

int usage(const char* argv0, int code) {
  std::fprintf(stderr,
               "usage: %s summarize <trace.jsonl> [--top N] [--starvation]\n"
               "       %s convert <trace.jsonl> <out.perfetto.json>\n"
               "       %s conflicts <trace.jsonl> [--top N] [--csv <out>]\n",
               argv0, argv0, argv0);
  return code;
}

/// Open a trace file for reading, rejecting directories and empty files up
/// front with a one-line diagnostic (a directory "opens" fine on POSIX and
/// would otherwise surface as a confusing read error; an empty trace means
/// the producing run never started or the file was truncated to nothing).
bool open_trace(const char* argv0, const char* path, std::ifstream& in) {
  struct stat st {};
  if (::stat(path, &st) != 0) {
    std::fprintf(stderr, "%s: cannot open %s: no such file\n", argv0, path);
    return false;
  }
  if ((st.st_mode & S_IFMT) == S_IFDIR) {
    std::fprintf(stderr, "%s: %s is a directory, expected a trace file\n",
                 argv0, path);
    return false;
  }
  if (st.st_size == 0) {
    std::fprintf(stderr, "%s: %s: empty trace (no events)\n", argv0, path);
    return false;
  }
  in.open(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "%s: cannot open %s\n", argv0, path);
    return false;
  }
  return true;
}

int cmd_summarize(const char* argv0, int argc, char** argv) {
  if (argc < 1) return usage(argv0, 2);
  const char* path = argv[0];
  int top_n = 10;
  bool starvation = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
      top_n = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--starvation") == 0) {
      starvation = true;
    } else {
      return usage(argv0, 2);
    }
  }
  std::ifstream in;
  if (!open_trace(argv0, path, in)) return 1;
  asfsim::trace::TraceSummary summary;
  std::string err;
  if (!asfsim::trace::summarize_jsonl(in, summary, err)) {
    std::fprintf(stderr, "%s: %s: %s\n", argv0, path, err.c_str());
    return 1;
  }
  if (summary.total_events == 0) {
    std::fprintf(stderr, "%s: %s: empty trace (no events)\n", argv0, path);
    return 1;
  }
  if (starvation && !summary.has_cm_events()) {
    std::fprintf(stderr,
                 "%s: %s: no contention-policy events (rerun with a "
                 "non-default --cm-policy or --cm-stats to trace policy "
                 "decisions)\n",
                 argv0, path);
    return 1;
  }
  std::cout << "trace: " << path << "\n";
  asfsim::trace::print_summary(summary, std::cout, top_n);
  return 0;
}

int cmd_convert(const char* argv0, int argc, char** argv) {
  if (argc != 2) return usage(argv0, 2);
  std::ifstream in;
  if (!open_trace(argv0, argv[0], in)) return 1;
  std::ofstream out(argv[1], std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "%s: cannot open %s for writing\n", argv0, argv[1]);
    return 1;
  }
  asfsim::trace::PerfettoSink sink(out);
  std::string line;
  std::size_t lineno = 0;
  std::size_t events = 0;
  asfsim::Cycle last_cycle = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    asfsim::trace::TraceEvent ev;
    if (!asfsim::trace::from_jsonl(line, ev)) {
      std::fprintf(stderr, "%s: %s:%zu: malformed event line\n", argv0,
                   argv[0], lineno);
      return 1;
    }
    ++events;
    if (ev.cycle > last_cycle) last_cycle = ev.cycle;
    sink.on_event(ev);
  }
  if (events == 0) {
    std::fprintf(stderr, "%s: %s: empty trace (no events)\n", argv0, argv[0]);
    return 1;
  }
  sink.finish(last_cycle);
  std::fprintf(stderr, "wrote %s (%zu events)\n", argv[1], events);
  return 0;
}

int cmd_conflicts(const char* argv0, int argc, char** argv) {
  if (argc < 1) return usage(argv0, 2);
  const char* path = argv[0];
  const char* csv_path = nullptr;
  int top_n = 10;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
      top_n = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      csv_path = argv[++i];
    } else {
      return usage(argv0, 2);
    }
  }
  std::ifstream in;
  if (!open_trace(argv0, path, in)) return 1;
  asfsim::trace::ConflictForensics f;
  std::string err;
  if (!asfsim::trace::collect_conflicts_jsonl(in, f, err)) {
    std::fprintf(stderr, "%s: %s: %s\n", argv0, path, err.c_str());
    return 1;
  }
  std::cout << "trace: " << path << "\n";
  asfsim::trace::print_conflicts(f, std::cout, top_n);
  if (csv_path != nullptr) {
    std::ofstream csv(csv_path, std::ios::binary | std::ios::trunc);
    if (!csv) {
      std::fprintf(stderr, "%s: cannot open %s for writing\n", argv0,
                   csv_path);
      return 1;
    }
    asfsim::trace::print_conflicts_csv(f, csv);
    std::fprintf(stderr, "wrote %s\n", csv_path);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0], 2);
  if (std::strcmp(argv[1], "summarize") == 0) {
    return cmd_summarize(argv[0], argc - 2, argv + 2);
  }
  if (std::strcmp(argv[1], "convert") == 0) {
    return cmd_convert(argv[0], argc - 2, argv + 2);
  }
  if (std::strcmp(argv[1], "conflicts") == 0) {
    return cmd_conflicts(argv[0], argc - 2, argv + 2);
  }
  if (std::strcmp(argv[1], "--help") == 0) return usage(argv[0], 0);
  return usage(argv[0], 2);
}
