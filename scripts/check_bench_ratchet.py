#!/usr/bin/env python3
"""Kernel-throughput perf ratchet (docs/performance.md).

Compares a fresh kernel_throughput measurement against the rows committed
in BENCH_kernel.json and fails when any cell regressed by more than the
allowed fraction (default 10%).

CI hosts and the machines that produced the committed rows run at
different speeds, so raw cycles-per-host-second are not comparable across
machines. The ratchet normalizes for host speed first: it computes the
per-cell ratio fresh/committed, takes the MEDIAN ratio as the host-speed
factor (if this host is uniformly 1.7x faster, every cell shows ~1.7), and
then flags cells whose own ratio falls more than the threshold below that
median. A true regression slows down *specific* cells relative to the
rest; a faster or slower host moves all cells together and passes.

Usage:
  bench/kernel_throughput --repeat 3 > fresh.json
  scripts/check_bench_ratchet.py fresh.json [--committed BENCH_kernel.json]
                                 [--threshold 0.10]

Exit status: 0 when no cell regressed, 1 otherwise (and on schema errors).
"""

import argparse
import json
import statistics
import sys


def load_rows(path):
    with open(path) as f:
        doc = json.load(f)
    rows = doc["rows"] if isinstance(doc, dict) else doc
    out = {}
    for r in rows:
        out[r["name"]] = float(r["sim_cycles_per_host_sec"])
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("fresh", help="fresh kernel_throughput JSON (rows array "
                                  "or full BENCH_kernel.json document)")
    ap.add_argument("--committed", default="BENCH_kernel.json",
                    help="committed benchmark file (default BENCH_kernel.json)")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="allowed fractional regression below the host-speed "
                         "median (default 0.10)")
    args = ap.parse_args()

    committed = load_rows(args.committed)
    fresh = load_rows(args.fresh)

    common = sorted(set(committed) & set(fresh))
    if len(common) < 2:
        print(f"ratchet: only {len(common)} comparable cells between "
              f"{args.committed} and {args.fresh}; need >= 2", file=sys.stderr)
        return 1
    missing = sorted(set(committed) - set(fresh))
    if missing:
        print(f"ratchet: fresh run is missing committed cells: "
              f"{', '.join(missing)}", file=sys.stderr)
        return 1

    ratios = {name: fresh[name] / committed[name] for name in common}
    host_factor = statistics.median(ratios.values())
    floor = host_factor * (1.0 - args.threshold)

    failed = []
    for name in common:
        rel = ratios[name] / host_factor
        mark = "OK " if ratios[name] >= floor else "REG"
        print(f"  {mark} {name:30s} committed={committed[name]:>12.3e} "
              f"fresh={fresh[name]:>12.3e} ratio={ratios[name]:5.2f} "
              f"(vs host median {host_factor:5.2f}: {rel:5.2f})")
        if ratios[name] < floor:
            failed.append(name)

    if failed:
        print(f"ratchet: {len(failed)} cell(s) regressed >"
              f"{args.threshold:.0%} below the host-speed median "
              f"({host_factor:.2f}): {', '.join(failed)}", file=sys.stderr)
        return 1
    print(f"ratchet: all {len(common)} cells within {args.threshold:.0%} of "
          f"the host-speed median ({host_factor:.2f})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
