#!/usr/bin/env bash
# asfsim_trace CLI hardening regression (docs/observability.md).
#
# Every command must exit non-zero with a one-line diagnostic on a missing,
# directory, empty, or truncated/malformed trace — never print a partial
# report — and the conflicts command must work end-to-end on a real
# provenance-tagged trace produced by fig_conflict_attribution.
#
# Usage: check_trace_cli.sh <asfsim_trace> <fig_conflict_attribution>
set -u

trace_bin=$1
fig_bin=$2

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT
fail=0

# expect_fail <name> <needle> <cmd...>: the command must exit non-zero and
# mention <needle> in its (combined) output.
expect_fail() {
  local name=$1 needle=$2 out rc
  shift 2
  out=$("$@" 2>&1)
  rc=$?
  if [ "$rc" -eq 0 ]; then
    echo "FAIL $name: expected non-zero exit, got 0"
    fail=1
  elif ! printf '%s' "$out" | grep -q "$needle"; then
    echo "FAIL $name: diagnostic missing '$needle'; got: $out"
    fail=1
  else
    echo "ok   $name"
  fi
}

: > "$work/empty.jsonl"
printf '{"kind":"conflict","cycle":12,' > "$work/truncated.jsonl"
printf 'not json at all\n' > "$work/garbage.jsonl"

for cmd in summarize conflicts; do
  expect_fail "$cmd/missing" "no such file" \
    "$trace_bin" "$cmd" "$work/nope.jsonl"
  expect_fail "$cmd/directory" "is a directory" \
    "$trace_bin" "$cmd" "$work"
  expect_fail "$cmd/empty" "empty trace" \
    "$trace_bin" "$cmd" "$work/empty.jsonl"
  expect_fail "$cmd/truncated" "malformed" \
    "$trace_bin" "$cmd" "$work/truncated.jsonl"
  expect_fail "$cmd/garbage" "malformed" \
    "$trace_bin" "$cmd" "$work/garbage.jsonl"
done
expect_fail "convert/missing" "no such file" \
  "$trace_bin" convert "$work/nope.jsonl" "$work/out.json"
expect_fail "convert/directory" "is a directory" \
  "$trace_bin" convert "$work" "$work/out.json"
expect_fail "convert/empty" "empty trace" \
  "$trace_bin" convert "$work/empty.jsonl" "$work/out.json"
expect_fail "convert/truncated" "malformed" \
  "$trace_bin" convert "$work/truncated.jsonl" "$work/out.json"
expect_fail "noargs" "usage" "$trace_bin"
expect_fail "unknown-command" "usage" "$trace_bin" frobnicate x.jsonl

# A trace without provenance events must be diagnosed, not reported as an
# all-zero forensics table.
printf '{"kind":"begin","core":0,"cycle":1}\n' > "$work/noprov.jsonl"
expect_fail "conflicts/no-provenance" "no provenance" \
  "$trace_bin" conflicts "$work/noprov.jsonl"

# Same hardening for the starvation view: a policy-free trace (no policy
# or fallback-acquisition events) must be diagnosed under --starvation,
# not reported as an all-zero forward-progress table...
expect_fail "summarize/no-policy-events" "no contention-policy events" \
  "$trace_bin" summarize "$work/noprov.jsonl" --starvation
# ...while a trace WITH a policy event passes the strict flag.
printf '{"kind":"begin","core":0,"cycle":1}\n{"kind":"policy","core":0,"other":1,"loser":1,"cycle":2,"line":64}\n' \
  > "$work/policy.jsonl"
if "$trace_bin" summarize "$work/policy.jsonl" --starvation \
    > /dev/null 2>&1; then
  echo "ok   summarize/policy-events"
else
  echo "FAIL summarize --starvation rejected a policy-bearing trace"
  fail=1
fi

# Good path: a tiny real run with provenance on; the report must rank the
# OLTP record table as an offender site and the CSV dump must materialize.
export ASFSIM_PROGRESS=0
if ! "$fig_bin" --scale 0.1 --jobs 2 --no-cache \
    --trace-dir "$work/traces" > "$work/fig.out" 2>&1; then
  echo "FAIL fig run: $(cat "$work/fig.out")"
  fail=1
else
  f=$(ls "$work"/traces/oltp-*.jsonl | head -1)
  if ! "$trace_bin" conflicts "$f" --top 5 --csv "$work/conflicts.csv" \
      > "$work/conflicts.out" 2> /dev/null; then
    echo "FAIL conflicts on real trace"
    fail=1
  elif ! grep -q "oltp.record" "$work/conflicts.out"; then
    echo "FAIL conflicts report does not name oltp.record:"
    cat "$work/conflicts.out"
    fail=1
  elif ! grep -q "oltp.record" "$work/conflicts.csv"; then
    echo "FAIL conflicts CSV does not name oltp.record"
    fail=1
  else
    echo "ok   conflicts/real-trace"
  fi
fi

exit $fail
