#!/usr/bin/env bash
# End-to-end test for the asfsim_lint autofixer:
#   1. --fix --dry-run must not modify the file (idempotence of the preview),
#   2. --fix must rewrite the copy so it re-lints clean,
#   3. the fixed file must still compile as C++20,
#   4. a second --fix pass must be a no-op (fixpoint).
#
# usage: check_lint_fix.sh <asfsim_lint-binary> <fix-fixture-dir>
set -u

LINT=${1:?usage: check_lint_fix.sh <asfsim_lint-binary> <fix-fixture-dir>}
DIR=${2:?usage: check_lint_fix.sh <asfsim_lint-binary> <fix-fixture-dir>}
CXX=${CXX:-c++}

fail=0
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

for src in $(find "$DIR" -name '*.cpp' | sort); do
  # Keep a sim/ path component so determinism rules stay in scope.
  mkdir -p "$work/sim"
  f="$work/sim/$(basename "$src")"
  cp "$src" "$f"

  # The unfixed fixture must actually have findings, else the test is vacuous.
  if "$LINT" "$f" >/dev/null 2>&1; then
    echo "FAIL: $src: fixture lints clean before --fix (nothing to test)"; fail=1
    continue
  fi

  # 1. dry-run leaves the file untouched.
  before=$(cksum "$f")
  "$LINT" --fix --dry-run "$f" >/dev/null 2>&1
  after=$(cksum "$f")
  if [ "$before" != "$after" ]; then
    echo "FAIL: $src: --fix --dry-run modified the file"; fail=1
    continue
  fi

  # 2. real fix, then re-lint clean.
  "$LINT" --fix "$f" >/dev/null 2>&1
  if ! out=$("$LINT" "$f" 2>/dev/null); then
    echo "FAIL: $src: file still has findings after --fix:"; fail=1
    printf '%s\n' "$out"
    continue
  fi

  # 3. fixed output compiles.
  if ! "$CXX" -std=c++20 -fsyntax-only "$f"; then
    echo "FAIL: $src: fixed output does not compile"; fail=1
    continue
  fi

  # 4. second --fix is a no-op.
  before=$(cksum "$f")
  "$LINT" --fix "$f" >/dev/null 2>&1
  after=$(cksum "$f")
  if [ "$before" != "$after" ]; then
    echo "FAIL: $src: --fix is not a fixpoint (second pass changed the file)"; fail=1
    continue
  fi

  echo "ok:   $src (fix -> clean, compiles, fixpoint)"
done

exit $fail
