#!/usr/bin/env bash
# Kernel-throughput trajectory (docs/performance.md): runs
# bench/kernel_throughput over its pinned (workload × detector) cells and
# writes BENCH_kernel.json — simulated cycles per host-second per cell,
# stamped with git SHA and build flags so trajectories are attributable.
#
#   scripts/bench_kernel.sh [out.json] [--quick]
#
# The committed file's "baseline" block holds the pre-optimization kernel's
# rows (captured once, before the hot-path speed program landed) and is
# preserved verbatim across regenerations; "rows" is the current kernel.
# scripts/check_bench_ratchet.py compares a fresh measurement against the
# committed rows and fails on >10% regression.
#
# Environment: BUILD_DIR (default build), ASFSIM_BENCH_REPEAT (default 3).
set -euo pipefail
cd "$(dirname "$0")/.."

out="BENCH_kernel.json"
quick=""
for a in "$@"; do
  case "$a" in
    --quick) quick="--quick";;
    *) out="$a";;
  esac
done
build="${BUILD_DIR:-build}"
repeat="${ASFSIM_BENCH_REPEAT:-3}"

rows=$("$build/bench/kernel_throughput" --repeat "$repeat" $quick)

git_sha=$(git rev-parse HEAD 2>/dev/null || echo unknown)
git_dirty=$(git diff --quiet HEAD 2>/dev/null && echo false || echo true)
build_type=$(grep -m1 '^CMAKE_BUILD_TYPE:' "$build/CMakeCache.txt" \
               2>/dev/null | cut -d= -f2)
cxx_flags=$(grep -m1 '^CMAKE_CXX_FLAGS:' "$build/CMakeCache.txt" \
              2>/dev/null | cut -d= -f2-)

ROWS="$rows" OUT="$out" GIT_SHA="$git_sha" GIT_DIRTY="$git_dirty" \
BUILD_TYPE="${build_type:-RelWithDebInfo}" CXX_FLAGS="${cxx_flags:-}" \
QUICK="${quick:+true}" python3 - <<'PY'
import json, os

doc = {
    "schema": "asfsim-bench-kernel-v1",
    "benchmark": "kernel throughput, simulated cycles per host-second "
                 "(scripts/bench_kernel.sh)",
    "git_sha": os.environ["GIT_SHA"],
    "git_dirty": os.environ["GIT_DIRTY"] == "true",
    "quick": os.environ.get("QUICK") == "true",
    "host_cores": os.cpu_count(),
    "build": {
        "type": os.environ["BUILD_TYPE"],
        "cxx_flags": os.environ["CXX_FLAGS"].strip(),
    },
    "rows": json.loads(os.environ["ROWS"]),
}

# Preserve the pre-optimization baseline block across regenerations; seed it
# from the current rows on first write (i.e. when run on the pre-PR kernel).
out = os.environ["OUT"]
try:
    with open(out) as f:
        prev = json.load(f)
    doc["baseline"] = prev["baseline"]
except (OSError, KeyError, json.JSONDecodeError):
    doc["baseline"] = {"git_sha": doc["git_sha"], "rows": doc["rows"]}

with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")

for row in doc["rows"]:
    base = next((b for b in doc["baseline"]["rows"]
                 if b["name"] == row["name"]), None)
    ratio = (row["sim_cycles_per_host_sec"] / base["sim_cycles_per_host_sec"]
             if base else float("nan"))
    print(f'{row["name"]:<28} {row["sim_cycles_per_host_sec"]:12.3e} '
          f'sim-cycles/host-s  ({ratio:.2f}x vs baseline)')
print(f"bench_kernel: wrote {out}")
PY
