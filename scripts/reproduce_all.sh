#!/usr/bin/env bash
# Regenerate every paper artifact at full scale, with CSV mirrors + plots.
#
#   scripts/reproduce_all.sh [outdir]
#
# Produces <outdir>/*.txt (the printed tables/series), <outdir>/*.csv, and —
# when gnuplot is installed — <outdir>/*.png for the headline figures.
#
# Experiments run through the parallel runner with an on-disk result cache
# (build/.asfsim-cache/ — see docs/runner.md), so a warm re-run executes
# zero simulations. Environment knobs:
#   ASFSIM_JOBS=<n>      worker threads per bench (default: all cores)
#   ASFSIM_NO_CACHE=1    bypass the result cache (force fresh simulations)
set -euo pipefail
out="${1:-reproduction}"
build="${BUILD_DIR:-build}"
mkdir -p "$out"

runner_flags=()
if [ -n "${ASFSIM_JOBS:-}" ]; then
  runner_flags+=(--jobs "$ASFSIM_JOBS")
fi
if [ "${ASFSIM_NO_CACHE:-0}" = "1" ]; then
  runner_flags+=(--no-cache)
fi

benches=(
  table1_states table2_config table3_benchmarks
  fig1_false_conflict_rate fig2_conflict_type_breakdown
  fig3_time_distribution fig4_line_distribution fig5_intra_line_access
  fig8_subblock_sensitivity fig9_overall_conflict_reduction
  fig10_execution_time
  ablation_waronly ablation_waw_rule ablation_overhead
  ablation_ats ablation_cores ablation_variance ablation_capacity
  ablation_l1_geometry ablation_scale ablation_timing
)
for b in "${benches[@]}"; do
  echo "== $b"
  "$build/bench/$b" --csv "$out" ${runner_flags[@]+"${runner_flags[@]}"} \
    | tee "$out/$b.txt"
done

if command -v gnuplot >/dev/null 2>&1; then
  gnuplot -e "outdir='$out'" scripts/plots.gnuplot || true
  echo "plots written to $out/"
else
  echo "gnuplot not found: CSV series are in $out/, plots skipped"
fi
