#!/usr/bin/env bash
# Golden-file test for asfsim_lint: every *_flag.cpp fixture must produce
# exactly its seeded diagnostics (right rule, right count, nonzero exit);
# every *_pass.cpp fixture must come back clean.
#
# usage: check_lint_fixtures.sh <asfsim_lint-binary> <fixtures-dir>
set -u

LINT=${1:?usage: check_lint_fixtures.sh <asfsim_lint-binary> <fixtures-dir>}
DIR=${2:?usage: check_lint_fixtures.sh <asfsim_lint-binary> <fixtures-dir>}

rule_of() {
  case "$(basename "$1")" in
    r1_*) echo "coawait-in-condition" ;;
    r2_*) echo "discarded-task" ;;
    r3_*) echo "global-alloc-in-tx" ;;
    r4_*) echo "raw-guest-access" ;;
    *)    echo "" ;;
  esac
}

expected_count() {
  # Seeded violation counts, declared in each fixture's header comment.
  case "$(basename "$1")" in
    r1_flag.cpp) echo 3 ;;
    r2_flag.cpp) echo 2 ;;
    r3_flag.cpp) echo 2 ;;
    r4_flag.cpp) echo 3 ;;
    *)           echo 1 ;;
  esac
}

fail=0

for f in $(find "$DIR" -name '*_flag.cpp' | sort); do
  out=$("$LINT" "$f" 2>/dev/null)
  rc=$?
  rule=$(rule_of "$f")
  want=$(expected_count "$f")
  got=$(printf '%s\n' "$out" | grep -c ": ${rule}: ")
  total=$(printf '%s\n' "$out" | grep -c ":[0-9]*: [a-z-]*: ")
  if [ "$rc" -eq 0 ]; then
    echo "FAIL: $f: expected nonzero exit, got 0"; fail=1
  elif [ "$got" -ne "$want" ]; then
    echo "FAIL: $f: expected $want '$rule' findings, got $got:"; fail=1
    printf '%s\n' "$out"
  elif [ "$total" -ne "$want" ]; then
    echo "FAIL: $f: unexpected extra findings beyond the $want seeded:"; fail=1
    printf '%s\n' "$out"
  else
    echo "ok:   $f ($want x $rule)"
  fi
done

for f in $(find "$DIR" -name '*_pass.cpp' | sort); do
  out=$("$LINT" "$f" 2>/dev/null)
  rc=$?
  if [ "$rc" -ne 0 ]; then
    echo "FAIL: $f: expected clean run, exit $rc:"; fail=1
    printf '%s\n' "$out"
  else
    echo "ok:   $f (clean)"
  fi
done

# --fix-hints must print a hoisting rewrite for R1.
hint=$("$LINT" --fix-hints "$DIR/r1_flag.cpp" 2>/dev/null | grep -c "fix: hoist")
if [ "$hint" -lt 1 ]; then
  echo "FAIL: --fix-hints printed no hoisting rewrite for r1_flag.cpp"; fail=1
else
  echo "ok:   --fix-hints prints hoisting rewrites"
fi

exit $fail
