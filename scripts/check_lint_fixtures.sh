#!/usr/bin/env bash
# Golden-file test for asfsim_lint: every *_flag.cpp fixture must produce
# exactly its seeded diagnostics (right rule, right count, nonzero exit);
# every *_pass.cpp fixture must come back clean. Model-consistency rules
# are exercised on fixture *directories* (tests/lint_fixtures/model/*):
# each *_flag dir must yield exactly one finding of its rule, each *_pass
# dir must come back clean.
#
# usage: check_lint_fixtures.sh <asfsim_lint-binary> <fixtures-dir>
set -u

LINT=${1:?usage: check_lint_fixtures.sh <asfsim_lint-binary> <fixtures-dir>}
DIR=${2:?usage: check_lint_fixtures.sh <asfsim_lint-binary> <fixtures-dir>}

rule_of() {
  case "$(basename "$1")" in
    r1_*) echo "coawait-in-condition" ;;
    r2_*) echo "discarded-task" ;;
    r3_*) echo "global-alloc-in-tx" ;;
    r4_*) echo "raw-guest-access" ;;
    r5_*) echo "nondeterministic-source" ;;
    r6_*) echo "unordered-iteration" ;;
    *)    echo "" ;;
  esac
}

expected_count() {
  # Seeded violation counts, declared in each fixture's header comment.
  case "$(basename "$1")" in
    r1_flag.cpp) echo 3 ;;
    r2_flag.cpp) echo 2 ;;
    r3_flag.cpp) echo 2 ;;
    r4_flag.cpp) echo 3 ;;
    r5_flag.cpp) echo 3 ;;
    r6_flag.cpp) echo 3 ;;
    *)           echo 1 ;;
  esac
}

# Cross-TU model rules are keyed off directory names under model/.
model_rule_of() {
  case "$(basename "$1")" in
    hash_*)  echo "hash-completeness" ;;
    stats_*) echo "stats-blob-completeness" ;;
    *)       echo "" ;;
  esac
}

fail=0

for f in $(find "$DIR" -name '*_flag.cpp' | sort); do
  out=$("$LINT" "$f" 2>/dev/null)
  rc=$?
  rule=$(rule_of "$f")
  want=$(expected_count "$f")
  got=$(printf '%s\n' "$out" | grep -c ": ${rule}: ")
  total=$(printf '%s\n' "$out" | grep -c ":[0-9]*: [a-z-]*: ")
  if [ "$rc" -eq 0 ]; then
    echo "FAIL: $f: expected nonzero exit, got 0"; fail=1
  elif [ "$got" -ne "$want" ]; then
    echo "FAIL: $f: expected $want '$rule' findings, got $got:"; fail=1
    printf '%s\n' "$out"
  elif [ "$total" -ne "$want" ]; then
    echo "FAIL: $f: unexpected extra findings beyond the $want seeded:"; fail=1
    printf '%s\n' "$out"
  else
    echo "ok:   $f ($want x $rule)"
  fi
done

for f in $(find "$DIR" -name '*_pass.cpp' | sort); do
  out=$("$LINT" "$f" 2>/dev/null)
  rc=$?
  if [ "$rc" -ne 0 ]; then
    echo "FAIL: $f: expected clean run, exit $rc:"; fail=1
    printf '%s\n' "$out"
  else
    echo "ok:   $f (clean)"
  fi
done

# Model-consistency fixture directories: whole-dir lint so the cross-TU
# passes see the config header and the serializer together.
if [ -d "$DIR/model" ]; then
  for d in $(find "$DIR/model" -mindepth 1 -maxdepth 1 -type d -name '*_flag' | sort); do
    out=$("$LINT" "$d" 2>/dev/null)
    rc=$?
    rule=$(model_rule_of "$d")
    got=$(printf '%s\n' "$out" | grep -c ": ${rule}: ")
    total=$(printf '%s\n' "$out" | grep -c ":[0-9]*: [a-z-]*: ")
    if [ "$rc" -eq 0 ]; then
      echo "FAIL: $d: expected nonzero exit, got 0"; fail=1
    elif [ "$got" -ne 1 ] || [ "$total" -ne 1 ]; then
      echo "FAIL: $d: expected exactly 1 '$rule' finding, got $got ($total total):"; fail=1
      printf '%s\n' "$out"
    else
      echo "ok:   $d (1 x $rule)"
    fi
  done
  for d in $(find "$DIR/model" -mindepth 1 -maxdepth 1 -type d -name '*_pass' | sort); do
    out=$("$LINT" "$d" 2>/dev/null)
    rc=$?
    if [ "$rc" -ne 0 ]; then
      echo "FAIL: $d: expected clean run, exit $rc:"; fail=1
      printf '%s\n' "$out"
    else
      echo "ok:   $d (clean)"
    fi
  done
fi

# --fix-hints must print a hoisting rewrite for R1.
hint=$("$LINT" --fix-hints "$DIR/r1_flag.cpp" 2>/dev/null | grep -c "fix: hoist")
if [ "$hint" -lt 1 ]; then
  echo "FAIL: --fix-hints printed no hoisting rewrite for r1_flag.cpp"; fail=1
else
  echo "ok:   --fix-hints prints hoisting rewrites"
fi

exit $fail
