#!/usr/bin/env bash
# Structural validation of asfsim_lint's SARIF output against the parts of
# the SARIF 2.1.0 schema we rely on (no network: the real JSON-schema file
# is not vendored, so this asserts the required shape directly).
#
# usage: check_lint_sarif.sh <asfsim_lint-binary> <fixtures-dir>
set -u

LINT=${1:?usage: check_lint_sarif.sh <asfsim_lint-binary> <fixtures-dir>}
DIR=${2:?usage: check_lint_sarif.sh <asfsim_lint-binary> <fixtures-dir>}

out=$(mktemp)
trap 'rm -f "$out"' EXIT

# Lint a flag fixture so the log contains results; SARIF mode still exits
# nonzero on findings, which is expected here.
"$LINT" --format sarif --output "$out" "$DIR/r1_flag.cpp" "$DIR/sim/r6_flag.cpp" 2>/dev/null
rc=$?
if [ "$rc" -ne 1 ]; then
  echo "FAIL: expected exit 1 (findings), got $rc"
  exit 1
fi

python3 - "$out" <<'EOF'
import json, sys

with open(sys.argv[1]) as fh:
    log = json.load(fh)

def need(cond, msg):
    if not cond:
        print(f"FAIL: sarif: {msg}")
        sys.exit(1)

need(log.get("version") == "2.1.0", "version must be 2.1.0")
need("sarif-schema-2.1.0" in log.get("$schema", ""), "$schema must point at SARIF 2.1.0")
runs = log.get("runs")
need(isinstance(runs, list) and len(runs) == 1, "exactly one run")
driver = runs[0]["tool"]["driver"]
need(driver["name"] == "asfsim_lint", "tool.driver.name")
rules = driver["rules"]
need(isinstance(rules, list) and len(rules) >= 8, "driver.rules lists all rules")
ids = [r["id"] for r in rules]
need(len(ids) == len(set(ids)), "rule ids unique")
for r in rules:
    need("shortDescription" in r and "text" in r["shortDescription"], f"rule {r['id']} shortDescription")
results = runs[0]["results"]
need(isinstance(results, list) and len(results) >= 6, "results present for both flag fixtures")
for res in results:
    need(res["ruleId"] in ids, "result ruleId matches a declared rule")
    need(ids[res["ruleIndex"]] == res["ruleId"], "ruleIndex consistent with ruleId")
    need(res["level"] == "error", "result level")
    need("text" in res["message"], "result message.text")
    loc = res["locations"][0]["physicalLocation"]
    need("uri" in loc["artifactLocation"], "artifactLocation.uri")
    need(isinstance(loc["region"]["startLine"], int) and loc["region"]["startLine"] >= 1, "region.startLine")
print(f"ok:   sarif log valid ({len(results)} results, {len(rules)} rules)")
EOF
exit $?
