# Headline plots from the CSV mirrors written by scripts/reproduce_all.sh.
# Usage: gnuplot -e "outdir='reproduction'" scripts/plots.gnuplot
if (!exists("outdir")) outdir = "reproduction"
set datafile separator ","
set terminal pngcairo size 900,540 font ",11"
set style data histograms
set style fill solid 0.8 border -1
set key outside top
set yrange [0:*]

set output outdir."/fig1_false_conflict_rate.png"
set title "Fig 1: false conflict rate (baseline ASF)"
set ylabel "false conflicts / all conflicts"
plot outdir."/fig1_false_conflict_rate.csv" every ::1 \
     using 4:xtic(1) title "false rate"

set output outdir."/fig8_subblock_sensitivity.png"
set title "Fig 8: false-conflict reduction vs sub-block count (measured)"
set ylabel "reduction vs baseline"
plot outdir."/fig8_subblock_sensitivity.csv" every 4::1 using 3:xtic(1) title "2", \
     "" every 4::2 using 3:xtic(1) title "4", \
     "" every 4::3 using 3:xtic(1) title "8", \
     "" every 4::4 using 3:xtic(1) title "16"

set output outdir."/fig9_overall_conflict_reduction.png"
set title "Fig 9: overall conflict reduction"
set ylabel "reduction vs baseline"
plot outdir."/fig9_overall_conflict_reduction.csv" every ::1 \
     using 3:xtic(1) title "sub-block(4)", \
     "" every ::1 using 4 title "perfect"

set output outdir."/fig10_execution_time.png"
set title "Fig 10: execution-time improvement"
set ylabel "improvement vs baseline"
plot outdir."/fig10_execution_time.csv" every ::1 \
     using 3:xtic(1) title "sub-block(4)", \
     "" every ::1 using 4 title "perfect"
