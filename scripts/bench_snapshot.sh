#!/usr/bin/env bash
# Wall-time snapshot of the experiment-runner subsystem (docs/runner.md):
# runs a small figure subset three ways and writes a JSON report —
#
#   cold_serial    fresh cache, --jobs 1   (the pre-runner baseline shape)
#   cold_parallel  fresh cache, --jobs N   (thread-pool speedup)
#   warm           reuse cold_parallel's cache (zero simulations)
#
#   scripts/bench_snapshot.sh [out.json]
#
# Environment: BUILD_DIR (default build), ASFSIM_JOBS (default: all cores),
# ASFSIM_BENCH_SCALE (default 0.25). A committed snapshot from one measured
# run lives in BENCH_runner.json.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_runner.json}"
build="${BUILD_DIR:-build}"
jobs="${ASFSIM_JOBS:-$(nproc)}"
scale="${ASFSIM_BENCH_SCALE:-0.25}"
benches=(fig1_false_conflict_rate fig2_conflict_type_breakdown
         fig9_overall_conflict_reduction)

cache="$build/.asfsim-bench-snapshot-cache"
export ASFSIM_RUN_MANIFEST=-
export ASFSIM_PROGRESS=0

# now_ms / run_pass: wall time in ms for one full pass over the subset.
now_ms() { date +%s%3N; }
run_pass() {  # run_pass <jobs>
  local t0 t1 b
  t0=$(now_ms)
  for b in "${benches[@]}"; do
    ASFSIM_CACHE_DIR="$cache" \
      "$build/bench/$b" --jobs "$1" --scale "$scale" >/dev/null
  done
  t1=$(now_ms)
  echo $((t1 - t0))
}

rm -rf "$cache"
cold_serial_ms=$(run_pass 1)
rm -rf "$cache"
cold_parallel_ms=$(run_pass "$jobs")
warm_ms=$(run_pass "$jobs")
rm -rf "$cache"

cat > "$out" <<EOF
{
  "benchmark": "runner-subsystem wall time (scripts/bench_snapshot.sh)",
  "figures": ["${benches[0]}", "${benches[1]}", "${benches[2]}"],
  "scale": $scale,
  "jobs": $jobs,
  "host_cores": $(nproc),
  "cold_serial_ms": $cold_serial_ms,
  "cold_parallel_ms": $cold_parallel_ms,
  "warm_ms": $warm_ms
}
EOF
echo "bench_snapshot: cold_serial=${cold_serial_ms}ms" \
     "cold_parallel(jobs=$jobs)=${cold_parallel_ms}ms warm=${warm_ms}ms -> $out"
