#!/usr/bin/env bash
# Wall-time snapshot of the experiment-runner subsystem (docs/runner.md):
# runs a small figure subset three ways and writes a JSON report —
#
#   cold_serial    fresh cache, --jobs 1   (the pre-runner baseline shape)
#   cold_parallel  fresh cache, --jobs N   (thread-pool speedup)
#   warm           reuse cold_parallel's cache (zero simulations)
#
#   scripts/bench_snapshot.sh [out.json]
#
# The subset covers the conflict-rate figures plus fig11, the OLTP
# contended-KV sweep (zipf-skewed key-value transactions), so runner
# regressions on the OLTP path show up here and not just in BENCH_kernel.
# The report carries per-figure cold rows and is stamped with the git SHA
# and build flags so trajectories are attributable (docs/performance.md).
#
# Environment: BUILD_DIR (default build), ASFSIM_JOBS (default: all cores),
# ASFSIM_BENCH_SCALE (default 0.25). A committed snapshot from one measured
# run lives in BENCH_runner.json.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_runner.json}"
build="${BUILD_DIR:-build}"
jobs="${ASFSIM_JOBS:-$(nproc)}"
scale="${ASFSIM_BENCH_SCALE:-0.25}"
benches=(fig1_false_conflict_rate fig2_conflict_type_breakdown
         fig9_overall_conflict_reduction fig11_throughput_vs_skew)

cache="$build/.asfsim-bench-snapshot-cache"
export ASFSIM_RUN_MANIFEST=-
export ASFSIM_PROGRESS=0

# now_ms / run_pass: wall time in ms for one full pass over the subset.
# run_pass writes "name ms" per figure to $2 and echoes the pass total.
now_ms() { date +%s%3N; }
run_pass() {  # run_pass <jobs> <per-figure-file>
  local t0 t1 b ms total=0
  : > "$2"
  for b in "${benches[@]}"; do
    t0=$(now_ms)
    ASFSIM_CACHE_DIR="$cache" \
      "$build/bench/$b" --jobs "$1" --scale "$scale" >/dev/null
    t1=$(now_ms)
    ms=$((t1 - t0))
    total=$((total + ms))
    echo "$b $ms" >> "$2"
  done
  echo "$total"
}

perfig="$(mktemp)"
trap 'rm -f "$perfig"' EXIT

rm -rf "$cache"
cold_serial_ms=$(run_pass 1 "$perfig")
rm -rf "$cache"
cold_parallel_ms=$(run_pass "$jobs" "$perfig")  # kept: per-figure cold rows
warm_ms=$(run_pass "$jobs" /dev/null)
rm -rf "$cache"

# Attribution stamp: which tree and which compiler flags produced the rows.
git_sha=$(git rev-parse HEAD 2>/dev/null || echo unknown)
git_dirty=false
git diff --quiet HEAD 2>/dev/null || git_dirty=true
build_type=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$build/CMakeCache.txt" |
             head -1)
cxx_flags=$(sed -n 's/^CMAKE_CXX_FLAGS:[^=]*=//p' "$build/CMakeCache.txt" |
            head -1)

figures_json=""
rows_json=""
while read -r name ms; do
  [ -n "$figures_json" ] && figures_json+=", " && rows_json+=",
"
  figures_json+="\"$name\""
  rows_json+="    {\"figure\": \"$name\", \"cold_parallel_ms\": $ms}"
done < "$perfig"

cat > "$out" <<EOF
{
  "benchmark": "runner-subsystem wall time (scripts/bench_snapshot.sh)",
  "git_sha": "$git_sha",
  "git_dirty": $git_dirty,
  "build": {
    "type": "$build_type",
    "cxx_flags": "$cxx_flags"
  },
  "figures": [$figures_json],
  "scale": $scale,
  "jobs": $jobs,
  "host_cores": $(nproc),
  "cold_serial_ms": $cold_serial_ms,
  "cold_parallel_ms": $cold_parallel_ms,
  "warm_ms": $warm_ms,
  "rows": [
$rows_json
  ]
}
EOF
echo "bench_snapshot: cold_serial=${cold_serial_ms}ms" \
     "cold_parallel(jobs=$jobs)=${cold_parallel_ms}ms warm=${warm_ms}ms -> $out"
