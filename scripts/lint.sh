#!/usr/bin/env bash
# Repo lint entry point: clang-format check + asfsim_lint + clang-tidy.
# Exits nonzero on any diagnostic from any stage.
#
#   scripts/lint.sh [build-dir]
#
# build-dir (default: build) must be configured; asfsim_lint is built from
# it if missing. clang-format / clang-tidy stages are skipped with a notice
# when the tool is not installed — set ASFSIM_LINT_STRICT=1 (CI does) to
# turn a missing tool into a failure.
#
# Scope note: host-side subsystems (src/runner/, src/harness/) are covered
# by clang-format and clang-tidy like everything else, but asfsim_lint's
# guest rules R3/R4 apply only under workloads/ or oltp/ paths — runner code
# runs on the host and may allocate/peek/poke freely
# (tests/lint_fixtures/runner/).
set -u
cd "$(dirname "$0")/.."

BUILD=${1:-build}
STRICT=${ASFSIM_LINT_STRICT:-0}
fail=0

missing_tool() {
  if [ "$STRICT" = "1" ]; then
    echo "lint.sh: ERROR: $1 not found (strict mode)"; fail=1
  else
    echo "lint.sh: skipping $1 (not installed)"
  fi
}

SOURCES=$(find src tests bench examples tools \
               \( -name '*.cpp' -o -name '*.hpp' \) \
               -not -path 'tests/lint_fixtures/*' | sort)

# ---- 1. clang-format ------------------------------------------------------
if command -v clang-format >/dev/null 2>&1; then
  echo "lint.sh: clang-format --dry-run -Werror"
  # shellcheck disable=SC2086
  if ! clang-format --dry-run -Werror $SOURCES; then
    fail=1
  fi
else
  missing_tool clang-format
fi

# ---- 2. asfsim_lint -------------------------------------------------------
LINT="$BUILD/tools/asfsim_lint"
if [ ! -x "$LINT" ]; then
  echo "lint.sh: building asfsim_lint"
  cmake --build "$BUILD" --target asfsim_lint -- -j >/dev/null || {
    echo "lint.sh: ERROR: cannot build asfsim_lint (configure $BUILD first)"
    exit 2
  }
fi
echo "lint.sh: asfsim_lint src examples tests"
if ! "$LINT" --exclude lint_fixtures --baseline .asfsim-lint-baseline \
     src examples tests; then
  fail=1
fi

# ---- 3. clang-tidy --------------------------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
  if [ ! -f "$BUILD/compile_commands.json" ]; then
    echo "lint.sh: exporting compile commands"
    cmake -B "$BUILD" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  fi
  echo "lint.sh: clang-tidy (library sources)"
  # Tests/bench lean on GTest/benchmark macros that trip generic checks;
  # the hand-written library and tools are the tidy surface.
  TIDY_SOURCES=$(find src tools -name '*.cpp' | sort)
  # shellcheck disable=SC2086
  if ! clang-tidy -p "$BUILD" --quiet --warnings-as-errors='*' \
       $TIDY_SOURCES; then
    fail=1
  fi
else
  missing_tool clang-tidy
fi

if [ "$fail" = "0" ]; then
  echo "lint.sh: all checks passed"
fi
exit $fail
