// quickstart — the smallest end-to-end use of the library.
//
// Builds an 8-core simulated machine, runs one guest thread per core that
// transactionally increments random cells of a shared, unpadded 32-bit
// array, and shows how the speculative sub-blocking detector removes the
// false conflicts the baseline ASF detector suffers.
//
//   $ ./quickstart
#include <cstdio>

#include "guest/garray.hpp"
#include "guest/machine.hpp"

using namespace asfsim;

namespace {

// A guest thread: each transaction reads a few random cells and increments
// one. All simulated memory access happens through co_await.
Task<void> worker(GuestCtx& ctx, GArray32 cells, std::uint64_t ncells,
                  int ntx) {
  for (int i = 0; i < ntx; ++i) {
    std::uint64_t reads[4];
    for (auto& r : reads) r = ctx.rng().below(ncells);
    const std::uint64_t target = ctx.rng().below(ncells);
    co_await ctx.run_tx([&]() -> Task<void> {
      std::uint64_t sum = 0;
      for (const auto r : reads) sum += co_await cells.get(ctx, r);
      (void)sum;
      const std::uint64_t v = co_await cells.get(ctx, target);
      co_await cells.set(ctx, target, v + 1);
    });
    co_await ctx.work(20);  // some non-transactional compute
  }
}

struct Outcome {
  std::uint64_t conflicts, false_conflicts, commits;
  Cycle cycles;
};

Outcome run(DetectorKind detector, std::uint32_t nsub) {
  constexpr std::uint64_t kCells = 256;  // 16 unpadded lines of 4-byte cells
  constexpr int kTxPerThread = 300;

  Machine m(SimConfig{}, detector, nsub);
  GArray32 cells = GArray32::alloc(m.galloc(), kCells);
  for (std::uint64_t i = 0; i < kCells; ++i) cells.poke(m, i, 0);

  for (CoreId c = 0; c < m.config().ncores; ++c) {
    m.spawn(c, worker(m.ctx(c), cells, kCells, kTxPerThread));
  }
  m.run();

  // The result must be detector-independent: every increment exactly once.
  std::uint64_t sum = 0;
  for (std::uint64_t i = 0; i < kCells; ++i) sum += cells.peek(m, i);
  const std::uint64_t expect = m.config().ncores * kTxPerThread;
  if (sum != expect) {
    std::fprintf(stderr, "BUG: lost updates (%llu != %llu)\n",
                 static_cast<unsigned long long>(sum),
                 static_cast<unsigned long long>(expect));
    std::exit(1);
  }
  const Stats& s = m.stats();
  return {s.conflicts_total, s.conflicts_false, s.tx_commits, s.total_cycles};
}

}  // namespace

int main() {
  std::printf("quickstart: 8 cores, 2400 transactions over 16 shared lines\n\n");
  std::printf("%-22s %9s %9s %9s %12s\n", "detector", "conflicts", "false",
              "commits", "cycles");
  const Outcome base = run(DetectorKind::kBaseline, 1);
  std::printf("%-22s %9llu %9llu %9llu %12llu\n", "baseline ASF",
              (unsigned long long)base.conflicts,
              (unsigned long long)base.false_conflicts,
              (unsigned long long)base.commits,
              (unsigned long long)base.cycles);
  for (const std::uint32_t n : {2u, 4u, 8u, 16u}) {
    const Outcome o = run(DetectorKind::kSubBlock, n);
    std::printf("sub-block (%2u)         %9llu %9llu %9llu %12llu\n", n,
                (unsigned long long)o.conflicts,
                (unsigned long long)o.false_conflicts,
                (unsigned long long)o.commits, (unsigned long long)o.cycles);
  }
  const Outcome perf = run(DetectorKind::kPerfect, 1);
  std::printf("%-22s %9llu %9llu %9llu %12llu\n", "perfect (no false)",
              (unsigned long long)perf.conflicts,
              (unsigned long long)perf.false_conflicts,
              (unsigned long long)perf.commits,
              (unsigned long long)perf.cycles);
  std::printf(
      "\nfalse conflicts melt away as the conflict-detection granularity "
      "shrinks,\nwhile the final memory contents stay identical.\n");
  return 0;
}
