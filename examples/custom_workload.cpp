// custom_workload — how to plug YOUR workload into the experiment harness.
//
// Implements the Workload interface for a small producer/consumer pipeline
// (shared queue + per-stage statistics), then runs it under every conflict
// detector via the same code path the paper benchmarks use. The Workload
// interface gives you setup (build guest data, spawn guest threads) and
// validate (check output invariants after the run).
//
//   $ ./custom_workload [--scale f] [--threads n] [--seed n]
#include <cstdio>
#include <memory>

#include "guest/garray.hpp"
#include "guest/glist.hpp"
#include "guest/machine.hpp"
#include "harness/args.hpp"
#include "workloads/workload.hpp"

using namespace asfsim;

namespace {

class PipelineWorkload final : public Workload {
 public:
  const char* name() const override { return "pipeline"; }
  const char* description() const override {
    return "producer/consumer pipeline (custom-workload example)";
  }

  void setup(Machine& m, const WorkloadParams& p) override {
    nitems_ = p.scaled(200);
    threads_ = p.threads;
    queue_ = GQueue::create(m);
    stage_stats_ = GArray64::alloc(m.galloc(), threads_);
    for (std::uint32_t t = 0; t < threads_; ++t) stage_stats_.poke(m, t, 0);
    done_ = m.galloc().alloc(64, 64);
    m.poke(done_, 8, 0);

    // Even cores produce, odd cores consume.
    for (CoreId t = 0; t < threads_; ++t) {
      if (t % 2 == 0) {
        m.spawn(t, producer(m.ctx(t), this, nitems_ / (threads_ / 2)));
      } else {
        m.spawn(t, consumer(m.ctx(t), this));
      }
    }
    produced_ = nitems_ / (threads_ / 2) * (threads_ / 2);
  }

  std::string validate(Machine& m) override {
    if (queue_.host_size(m) != 0) return "items left in the queue";
    std::uint64_t consumed = 0;
    for (std::uint32_t t = 0; t < threads_; ++t) {
      consumed += stage_stats_.peek(m, t);
    }
    if (consumed != produced_) {
      return "consumed " + std::to_string(consumed) + " != produced " +
             std::to_string(produced_);
    }
    return {};
  }

 private:
  static Task<void> producer(GuestCtx& c, PipelineWorkload* w, std::uint64_t n) {
    for (std::uint64_t i = 0; i < n; ++i) {
      co_await c.run_tx([&]() -> Task<void> {
        co_await w->queue_.push(c, c.core(), i);
      });
      co_await c.work(30);
    }
    // Signal completion: one producer-done tick per producer.
    co_await c.run_tx([&]() -> Task<void> {
      const std::uint64_t d = co_await c.load_u64(w->done_);
      co_await c.store_u64(w->done_, d + 1);
    });
  }

  static Task<void> consumer(GuestCtx& c, PipelineWorkload* w) {
    const std::uint64_t producers = w->threads_ / 2;
    for (;;) {
      bool got = false;
      std::uint64_t key = 0;
      co_await c.run_tx([&]() -> Task<void> {
        got = co_await w->queue_.pop(c, &key, nullptr);
      });
      if (got) {
        co_await c.work(40);  // "process" the item
        co_await c.run_tx([&]() -> Task<void> {
          const std::uint64_t s = co_await w->stage_stats_.get(c, c.core());
          co_await w->stage_stats_.set(c, c.core(), s + 1);
        });
        continue;
      }
      // Empty: exit only after every producer announced completion.
      const std::uint64_t d = co_await c.load_u64(w->done_);
      if (d == producers) co_return;
      co_await c.wait(100);
    }
  }

  GQueue queue_;
  GArray64 stage_stats_;
  Addr done_ = 0;
  std::uint64_t nitems_ = 0, produced_ = 0;
  std::uint32_t threads_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const CliOptions opts = parse_cli(argc, argv);
  std::printf("custom_workload: producer/consumer pipeline under every "
              "detector\n\n");
  std::printf("%-22s %9s %9s %9s %12s %8s\n", "detector", "commits",
              "conflicts", "false", "cycles", "valid");

  for (const auto& [label, kind, nsub] :
       {std::tuple{"baseline ASF", DetectorKind::kBaseline, 1u},
        std::tuple{"sub-block (4)", DetectorKind::kSubBlock, 4u},
        std::tuple{"sub-block (16)", DetectorKind::kSubBlock, 16u},
        std::tuple{"war-only (prior art)", DetectorKind::kWarOnly, 1u},
        std::tuple{"perfect", DetectorKind::kPerfect, 1u}}) {
    SimConfig sim;
    sim.ncores = opts.threads;
    sim.seed = opts.seed;
    Machine m(sim, kind, nsub);
    PipelineWorkload wl;
    WorkloadParams p;
    p.threads = opts.threads;
    p.seed = opts.seed;
    p.scale = opts.scale;
    wl.setup(m, p);
    m.run();
    const std::string err = wl.validate(m);
    const Stats& s = m.stats();
    std::printf("%-22s %9llu %9llu %9llu %12llu %8s\n", label,
                (unsigned long long)s.tx_commits,
                (unsigned long long)s.conflicts_total,
                (unsigned long long)s.conflicts_false,
                (unsigned long long)s.total_cycles,
                err.empty() ? "ok" : err.c_str());
    if (!err.empty()) return 1;
  }
  return 0;
}
