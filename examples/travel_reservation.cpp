// travel_reservation — a vacation-style client/server scenario on the
// public API: red-black-tree resource tables queried and updated by
// concurrent transactional clients.
//
//   $ ./travel_reservation [--scale f] [--threads n] [--seed n]
#include <cstdio>
#include <string>

#include "guest/grbtree.hpp"
#include "guest/machine.hpp"
#include "harness/args.hpp"

using namespace asfsim;

namespace {

struct Agency {
  GRBTree cars, rooms;
  Addr revenue = 0;  // shared 8-byte revenue accumulator
  std::uint64_t nresources = 0;
};

Task<void> client(GuestCtx& ctx, Agency* a, int trips) {
  for (int i = 0; i < trips; ++i) {
    const std::uint64_t car_id = 1 + ctx.rng().below(a->nresources);
    const std::uint64_t room_id = 1 + ctx.rng().below(a->nresources);
    co_await ctx.run_tx([&]() -> Task<void> {
      // Query both resources, book only when the whole trip is possible —
      // the classic all-or-nothing use case for transactions.
      const std::uint64_t cars = co_await a->cars.find(ctx, car_id, 0);
      const std::uint64_t rooms = co_await a->rooms.find(ctx, room_id, 0);
      if (cars == 0 || rooms == 0) co_return;
      co_await a->cars.update(ctx, car_id, cars - 1);
      co_await a->rooms.update(ctx, room_id, rooms - 1);
      const std::uint64_t rev = co_await ctx.load_u64(a->revenue);
      co_await ctx.store_u64(a->revenue, rev + 100);
    });
    co_await ctx.work(50);  // browse time
  }
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions opts = parse_cli(argc, argv);
  const auto trips = static_cast<int>(40 * opts.scale + 1);

  std::printf("travel_reservation: %u clients x %d trips\n\n", opts.threads,
              trips);
  std::printf("%-22s %9s %9s %9s %12s\n", "detector", "conflicts", "false",
              "booked", "cycles");

  for (const auto& [label, kind, nsub] :
       {std::tuple{"baseline ASF", DetectorKind::kBaseline, 1u},
        std::tuple{"sub-block (4)", DetectorKind::kSubBlock, 4u},
        std::tuple{"perfect", DetectorKind::kPerfect, 1u}}) {
    SimConfig sim;
    sim.ncores = opts.threads;
    sim.seed = opts.seed;
    Machine m(sim, kind, nsub);

    Agency a;
    a.cars = GRBTree::create(m);
    a.rooms = GRBTree::create(m);
    a.revenue = m.galloc().alloc(64, 64);
    m.poke(a.revenue, 8, 0);
    a.nresources = 64;
    std::uint64_t capacity = 0;
    Rng rng(opts.seed * 3 + 1);
    for (std::uint64_t id = 1; id <= a.nresources; ++id) {
      const std::uint64_t c = 1 + rng.below(4), r = 1 + rng.below(4);
      a.cars.host_insert(m, id, c);
      a.rooms.host_insert(m, id, r);
      capacity += c + r;
    }

    for (CoreId core = 0; core < m.config().ncores; ++core) {
      m.spawn(core, client(m.ctx(core), &a, trips));
    }
    m.run();

    // Audit: every booked pair removed one car + one room and added 100.
    std::uint64_t left = 0;
    for (std::uint64_t id = 1; id <= a.nresources; ++id) {
      left += a.cars.host_find(m, id, 0) + a.rooms.host_find(m, id, 0);
    }
    const std::uint64_t booked = m.peek(a.revenue, 8) / 100;
    if (left + 2 * booked != capacity || a.cars.host_validate(m) < 0 ||
        a.rooms.host_validate(m) < 0) {
      std::fprintf(stderr, "BUG: booking audit failed\n");
      return 1;
    }
    const Stats& s = m.stats();
    std::printf("%-22s %9llu %9llu %9llu %12llu\n", label,
                (unsigned long long)s.conflicts_total,
                (unsigned long long)s.conflicts_false,
                (unsigned long long)booked,
                (unsigned long long)s.total_cycles);
  }
  std::printf("\nall three detectors book the same audited trips; only the\n"
              "conflict/abort behaviour differs.\n");
  return 0;
}
