// graph_kernel — an ssca2-style graph-construction kernel on the public
// API: tiny transactions incrementing unpadded 32-bit per-node degree
// counters. With 16 nodes per cache line, almost every conflict the
// baseline detector reports is false — the paper's worst-case benchmark —
// and the sub-block sweep shows the false rate collapsing.
//
//   $ ./graph_kernel [--scale f] [--threads n] [--seed n]
#include <cstdio>

#include "guest/garray.hpp"
#include "guest/machine.hpp"
#include "harness/args.hpp"

using namespace asfsim;

namespace {

Task<void> edge_worker(GuestCtx& ctx, GArray32 degree, std::uint64_t nnodes,
                       int nedges) {
  for (int e = 0; e < nedges; ++e) {
    const std::uint64_t u = ctx.rng().below(nnodes);
    std::uint64_t v = ctx.rng().below(nnodes);
    if (v == u) v = (v + 1) % nnodes;
    co_await ctx.run_tx([&]() -> Task<void> {
      const std::uint64_t du = co_await degree.get(ctx, u);
      co_await degree.set(ctx, u, du + 1);
      const std::uint64_t dv = co_await degree.get(ctx, v);
      co_await degree.set(ctx, v, dv + 1);
    });
    co_await ctx.work(4);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions opts = parse_cli(argc, argv);
  const std::uint64_t nnodes = 256;
  const auto nedges = static_cast<int>(150 * opts.scale + 1);

  std::printf("graph_kernel: %u workers x %d edges over %llu nodes "
              "(16 degree counters per cache line)\n\n",
              opts.threads, nedges, (unsigned long long)nnodes);
  std::printf("%-16s %9s %9s %11s %12s\n", "detector", "conflicts", "false",
              "false rate", "cycles");

  for (const std::uint32_t nsub : {1u, 2u, 4u, 8u, 16u}) {
    SimConfig sim;
    sim.ncores = opts.threads;
    sim.seed = opts.seed;
    const DetectorKind kind =
        nsub == 1 ? DetectorKind::kBaseline : DetectorKind::kSubBlock;
    Machine m(sim, kind, nsub);

    GArray32 degree = GArray32::alloc(m.galloc(), nnodes);
    for (std::uint64_t n = 0; n < nnodes; ++n) degree.poke(m, n, 0);
    for (CoreId c = 0; c < m.config().ncores; ++c) {
      m.spawn(c, edge_worker(m.ctx(c), degree, nnodes, nedges));
    }
    m.run();

    std::uint64_t total = 0;
    for (std::uint64_t n = 0; n < nnodes; ++n) total += degree.peek(m, n);
    const auto expect =
        2ull * static_cast<std::uint64_t>(nedges) * m.config().ncores;
    if (total != expect) {
      std::fprintf(stderr, "BUG: degree sum %llu != %llu\n",
                   (unsigned long long)total, (unsigned long long)expect);
      return 1;
    }
    const Stats& s = m.stats();
    char label[32];
    std::snprintf(label, sizeof(label), "%s%s",
                  nsub == 1 ? "baseline" : "sub-block ",
                  nsub == 1 ? "" : std::to_string(nsub).c_str());
    std::printf("%-16s %9llu %9llu %10.1f%% %12llu\n", label,
                (unsigned long long)s.conflicts_total,
                (unsigned long long)s.conflicts_false,
                100.0 * s.false_conflict_rate(),
                (unsigned long long)s.total_cycles);
  }
  std::printf("\nat 16 sub-blocks (4-byte granularity) only true same-node "
              "collisions remain.\n");
  return 0;
}
