// Live coherence-invariant auditing: a dedicated auditor guest thread runs
// MemorySystem::check_invariants() every few hundred cycles WHILE real
// workloads execute, under several detectors.
#include <gtest/gtest.h>

#include "guest/machine.hpp"
#include "workloads/workload.hpp"

namespace asfsim {
namespace {

Task<void> auditor(GuestCtx& c, Machine* m, std::uint32_t workers,
                   std::string* violation, int* audits) {
  for (;;) {
    bool all_done = true;
    for (CoreId w = 0; w < workers; ++w) {
      if (!m->kernel().core_done(w)) all_done = false;
    }
    if (all_done) co_return;
    const std::string err = m->mem().check_invariants();
    ++*audits;
    if (!err.empty()) {
      *violation = err;
      co_return;
    }
    co_await c.wait(300);
  }
}

struct AuditCase {
  const char* workload;
  DetectorKind detector;
};

class LiveInvariants : public ::testing::TestWithParam<AuditCase> {};

TEST_P(LiveInvariants, HoldThroughoutTheRun) {
  const auto& [name, det] = GetParam();
  SimConfig sim;
  sim.ncores = 5;  // 4 workers + 1 auditor
  Machine m(sim, det, 4);

  auto wl = make_workload(name);
  WorkloadParams p;
  p.threads = 4;
  p.scale = 0.3;
  wl->setup(m, p);

  std::string violation;
  int audits = 0;
  m.spawn(4, auditor(m.ctx(4), &m, 4, &violation, &audits));
  m.run(Cycle{1} << 34);

  EXPECT_TRUE(violation.empty()) << violation;
  EXPECT_GT(audits, 10) << "the auditor must actually have sampled the run";
  EXPECT_EQ(wl->validate(m), "");
  EXPECT_EQ(m.mem().check_invariants(), "") << "and at quiescence";
}

std::string audit_name(const ::testing::TestParamInfo<AuditCase>& info) {
  std::string n = info.param.workload;
  n += "_";
  n += to_string(info.param.detector);
  for (auto& ch : n) {
    if (ch == '-') ch = '_';
  }
  return n;
}

INSTANTIATE_TEST_SUITE_P(
    WorkloadsAndDetectors, LiveInvariants,
    ::testing::Values(AuditCase{"bank", DetectorKind::kBaseline},
                      AuditCase{"bank", DetectorKind::kSubBlock},
                      AuditCase{"counter", DetectorKind::kSubBlock},
                      AuditCase{"counter", DetectorKind::kSubBlockWawLine},
                      AuditCase{"ssca2", DetectorKind::kSubBlock},
                      AuditCase{"vacation", DetectorKind::kSubBlock},
                      AuditCase{"genome", DetectorKind::kWarOnly},
                      AuditCase{"kmeans", DetectorKind::kPerfect}),
    audit_name);

TEST(Invariants, CleanMachinePasses) {
  Machine m(SimConfig{}, DetectorKind::kSubBlock, 4);
  EXPECT_EQ(m.mem().check_invariants(), "");
}

}  // namespace
}  // namespace asfsim
