// Livelock watchdog, wall-clock budget, runner failure surfacing, and the
// result-cache quarantine path (docs/robustness.md).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "fault/watchdog.hpp"
#include "guest/machine.hpp"
#include "harness/experiment.hpp"
#include "runner/result_cache.hpp"
#include "runner/runner.hpp"
#include "runner/version.hpp"
#include "sim/kernel.hpp"
#include "stats/serialize.hpp"

namespace asfsim {
namespace {

using runner::JobError;
using runner::JobSpec;
using runner::make_job_spec;
using runner::ResultCache;
using runner::Runner;
using runner::RunnerOptions;

/// A config that cannot make forward progress: the counter workload's
/// shared state overflows a 256-byte direct-mapped L1, every transaction
/// capacity-aborts, and with the fallback disabled the retry loop spins
/// until the watchdog ends it.
ExperimentConfig livelocked_config() {
  ExperimentConfig cfg;
  cfg.detector = DetectorKind::kSubBlock;
  cfg.nsub = 4;
  cfg.sim.l1.size_bytes = 256;
  cfg.sim.l1.ways = 1;
  cfg.sim.max_tx_retries = 0;  // never fall back to the lock
  cfg.sim.backoff_cap_shift = 2;
  cfg.sim.watchdog_cycles = 200'000;
  cfg.params.threads = 4;
  cfg.params.seed = 7;
  return cfg;
}

TEST(Watchdog, LivelockedRunTerminatesWithDiagnosticDump) {
  try {
    (void)run_experiment("counter", livelocked_config());
    FAIL() << "livelocked run completed";
  } catch (const LivelockError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no commit progress"), std::string::npos) << what;
    EXPECT_NE(what.find("=== livelock diagnostic ==="), std::string::npos);
    EXPECT_NE(what.find("capacity"), std::string::npos);  // the abort cause
    EXPECT_NE(what.find("core 0:"), std::string::npos);   // per-core lines
  }
}

TEST(Watchdog, QuietWatchdogNeverFiresOnAHealthyRun) {
  ExperimentConfig cfg;
  cfg.sim.watchdog_cycles = 1'000'000;  // generous: commits happen long before
  cfg.params.threads = 4;
  cfg.params.scale = 0.25;
  cfg.sim.ncores = 4;
  const ExperimentResult r = run_experiment("counter", cfg);
  EXPECT_TRUE(r.ok()) << r.validation_error;
  // And the watchdog config must not perturb the simulation itself.
  ExperimentConfig plain = cfg;
  plain.sim.watchdog_cycles = 0;
  EXPECT_EQ(serialize_stats(r.stats),
            serialize_stats(run_experiment("counter", plain).stats));
}

TEST(Watchdog, LivelockWorkloadCompletesUnderDefaultConfig) {
  // The conflict-flavored demo workload: a single hot cell hammered by all
  // threads. Backoff + fallback keep it live under the default config.
  ExperimentConfig cfg;
  cfg.params.threads = 4;
  cfg.params.scale = 0.25;
  cfg.sim.ncores = 4;
  cfg.sim.watchdog_cycles = 5'000'000;
  const ExperimentResult r = run_experiment("livelock", cfg);
  EXPECT_TRUE(r.ok()) << r.validation_error;
  EXPECT_GT(r.stats.tx_commits, 0u);
}

TEST(WallClock, TinyBudgetAbortsTheRun) {
  ExperimentConfig cfg;
  cfg.wall_limit_s = 1e-9;  // fires at the first check
  EXPECT_THROW((void)run_experiment("counter", cfg), WallClockError);
}

TEST(WallClock, GenerousBudgetIsInvisible) {
  ExperimentConfig small;
  small.params.threads = 4;
  small.params.scale = 0.25;
  small.sim.ncores = 4;
  ExperimentConfig budgeted = small;
  budgeted.wall_limit_s = 3600.0;
  EXPECT_EQ(serialize_stats(run_experiment("counter", budgeted).stats),
            serialize_stats(run_experiment("counter", small).stats));
}

// ---- runner failure surfacing ----------------------------------------------

class TempDir {
 public:
  explicit TempDir(const char* name)
      : path_(std::filesystem::path("watchdog_test_tmp") / name) {
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] std::string str() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

TEST(RunnerFailures, GetRethrowsWithJobContext) {
  TempDir dir("jobcontext");
  RunnerOptions opts;
  opts.jobs = 2;
  opts.use_cache = false;
  opts.cache_dir = dir.str();
  opts.manifest_path = "-";
  opts.progress = RunnerOptions::Progress::kOff;
  Runner r(opts);
  try {
    (void)r.get("counter", livelocked_config());
    FAIL() << "livelocked job returned a result";
  } catch (const JobError& e) {
    EXPECT_EQ(e.workload, "counter");
    EXPECT_EQ(e.detector, "subblock/4");
    EXPECT_EQ(e.seed, 7u);
    const std::string what = e.what();
    EXPECT_NE(what.find("job counter [subblock/4] seed 7:"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("livelock"), std::string::npos) << what;
  }
}

TEST(RunnerFailures, ManifestRecordsFailedJobsWithTheError) {
  TempDir dir("manifest");
  const std::string manifest = dir.str() + "/manifest.json";
  {
    RunnerOptions opts;
    opts.jobs = 2;
    opts.use_cache = false;
    opts.cache_dir = dir.str();
    opts.manifest_path = manifest;
    opts.progress = RunnerOptions::Progress::kOff;
    Runner r(opts);
    EXPECT_THROW((void)r.get("counter", livelocked_config()), JobError);
    ExperimentConfig ok_cfg;
    ok_cfg.params.threads = 4;
    ok_cfg.params.scale = 0.25;
    ok_cfg.sim.ncores = 4;
    (void)r.get("counter", ok_cfg);
  }
  std::ifstream in(manifest);
  ASSERT_TRUE(in.is_open());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("\"status\": \"failed\""), std::string::npos) << text;
  EXPECT_NE(text.find("\"status\": \"ok\""), std::string::npos) << text;
  EXPECT_NE(text.find("\"error\": \""), std::string::npos) << text;
  EXPECT_NE(text.find("no commit progress"), std::string::npos) << text;
}

TEST(RunnerFailures, RunnerWideWallLimitAppliesToJobs) {
  TempDir dir("walllimit");
  RunnerOptions opts;
  opts.jobs = 1;
  opts.use_cache = false;
  opts.cache_dir = dir.str();
  opts.manifest_path = "-";
  opts.progress = RunnerOptions::Progress::kOff;
  opts.job_wall_limit_s = 1e-9;
  Runner r(opts);
  try {
    (void)r.get("counter", ExperimentConfig{});
    FAIL() << "job ignored the wall limit";
  } catch (const JobError& e) {
    EXPECT_NE(std::string(e.what()).find("wall-clock"), std::string::npos)
        << e.what();
  }
}

// ---- result-cache quarantine -----------------------------------------------

ExperimentConfig small_config() {
  ExperimentConfig cfg;
  cfg.params.threads = 4;
  cfg.params.scale = 0.25;
  cfg.sim.ncores = 4;
  return cfg;
}

std::string entry_path(const TempDir& dir, const JobSpec& spec) {
  return dir.str() + "/" + std::string(runner::code_version_stamp()) + "/" +
         spec.hash_hex + ".result";
}

std::string bad_path(const TempDir& dir, const JobSpec& spec) {
  return dir.str() + "/" + std::string(runner::code_version_stamp()) + "/" +
         spec.hash_hex + ".bad";
}

TEST(CacheQuarantine, TruncatedEntryIsQuarantinedAndRecomputable) {
  TempDir dir("truncate");
  ResultCache cache(dir.str());
  const JobSpec spec = make_job_spec("counter", small_config());
  const ExperimentResult computed = run_experiment("counter", spec.config);
  cache.store(spec, computed);

  const std::string path = entry_path(dir, spec);
  ASSERT_TRUE(std::filesystem::exists(path));
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full / 2);

  EXPECT_FALSE(cache.load(spec).has_value());
  EXPECT_FALSE(std::filesystem::exists(path)) << "poisoned entry still live";
  EXPECT_TRUE(std::filesystem::exists(bad_path(dir, spec)))
      << "corrupt bytes were not kept for triage";

  // The miss recomputes and re-stores; the fresh entry loads cleanly.
  cache.store(spec, computed);
  const auto reloaded = cache.load(spec);
  ASSERT_TRUE(reloaded.has_value());
  EXPECT_EQ(serialize_stats(reloaded->stats), serialize_stats(computed.stats));
}

TEST(CacheQuarantine, EveryBitFlipIsAMissNeverAWrongResult) {
  TempDir dir("bitflip");
  ResultCache cache(dir.str());
  const JobSpec spec = make_job_spec("counter", small_config());
  const ExperimentResult computed = run_experiment("counter", spec.config);
  cache.store(spec, computed);
  const std::string path = entry_path(dir, spec);

  std::string pristine;
  {
    std::ifstream in(path, std::ios::binary);
    pristine.assign((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  }
  const std::string expect = serialize_stats(computed.stats);

  // Flip one bit at a spread of positions (every 41st byte keeps the test
  // fast while hitting the header, spec text, and stats blob sections).
  for (std::size_t pos = 0; pos < pristine.size(); pos += 41) {
    std::string mutated = pristine;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x10);
    std::filesystem::remove(bad_path(dir, spec));
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out << mutated;
    }
    const auto loaded = cache.load(spec);
    if (loaded.has_value()) {
      // The flip must have landed somewhere the format proves harmless —
      // the loaded stats must still be exactly the stored ones.
      EXPECT_EQ(serialize_stats(loaded->stats), expect) << "pos " << pos;
    } else {
      EXPECT_FALSE(std::filesystem::exists(path)) << "pos " << pos;
    }
  }
}

}  // namespace
}  // namespace asfsim
