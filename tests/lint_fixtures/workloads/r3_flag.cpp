// lint fixture: MUST flag global-alloc-in-tx (two sites).
#include "workloads/workload.hpp"

namespace asfsim {

Task<void> bad_worker(GuestCtx& c, Addr head) {
  // Transactional node allocation from the GLOBAL bump allocator: adjacent
  // cores get nodes in the same cache line (DESIGN.md §6.9).
  const Addr node = c.galloc().alloc(24, 8);
  co_await c.store_u64(head, node);
  const Addr block = c.galloc().alloc_lines(1);
  co_await c.store_u64(block, 0);
}

}  // namespace asfsim
