// lint fixture: MUST pass global-alloc-in-tx.
//
// The per-core coroutine-frame arena (src/sim/frame_arena.hpp) is the one
// sanctioned host allocation path under a guest frame: Task<> promises
// route operator new through it, and explicit scratch goes via
// placement-new into FrameArena storage. The exemption comes from the
// rule's explicit allowlist of arena entry-point names — NOT from a
// file-level `asfsim-lint: allow(...)` suppression, which would also hide
// genuine global allocations like the one in r3_arena_flag.cpp.
#include "sim/frame_arena.hpp"
#include "workloads/workload.hpp"

namespace asfsim {

Task<void> arena_scratch_worker(GuestCtx& c, Addr head) {
  // Placement-new into per-core arena storage: allowlisted.
  int* scratch = new (FrameArena::allocate(16 * sizeof(int))) int[16];
  scratch[0] = 1;
  co_await c.store_u64(head, static_cast<std::uint64_t>(scratch[0]));
  FrameArena::deallocate(scratch, 16 * sizeof(int));
}

}  // namespace asfsim
