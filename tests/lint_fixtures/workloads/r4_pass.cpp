// lint fixture: MUST pass raw-guest-access.
#include "workloads/workload.hpp"

namespace asfsim {

Task<void> good_worker(GuestCtx& c, Addr a) {
  // All guest-thread access goes through the typed awaitables.
  const std::uint64_t v = co_await c.load_u64(a);
  co_await c.store_u64(a, v + 1);
}

void good_setup(Machine& m, Addr a) {
  // Host-time setup/validation may poke/peek freely (documented backdoor).
  m.poke(a, 8, 0);
  const std::uint64_t v = m.peek(a, 8);
  m.poke(a + 8, 8, v);
}

}  // namespace asfsim
