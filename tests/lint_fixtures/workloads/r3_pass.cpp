// lint fixture: MUST pass global-alloc-in-tx.
#include "workloads/workload.hpp"

namespace asfsim {

Task<void> good_worker(GuestCtx& c, Addr head) {
  // Per-core pool allocation: cores never share lines (DESIGN.md §6.9).
  const Addr node = c.alloc_local(24, 8);
  co_await c.store_u64(head, node);
}

void good_setup(Machine& m, Addr* out) {
  // Host-time, single-threaded setup may use the global bump path: unpadded
  // shared arrays are exactly what the paper studies.
  *out = m.galloc().alloc(4096, 64);
}

}  // namespace asfsim
