// lint fixture: MUST flag raw-guest-access (three sites).
#include "workloads/workload.hpp"

namespace asfsim {

Task<void> bad_worker(GuestCtx& c, Machine& m, Addr a) {
  // Host-side backdoor write from guest-thread code: bypasses the caches,
  // the conflict detector, and the classifier byte masks.
  m.poke(a, 8, 1);
  const std::uint64_t v = m.peek(a, 8);
  co_await c.store_u64(a, v);
  // Guest memory has no host pointer.
  auto* p = reinterpret_cast<std::uint64_t*>(a);
  co_await c.store_u64(a, *p);
}

}  // namespace asfsim
