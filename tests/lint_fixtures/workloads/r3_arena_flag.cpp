// lint fixture: MUST flag global-alloc-in-tx (one site).
//
// Host-heap allocation under a guest coroutine frame: the pointer value is
// host-nondeterministic and the node is invisible to the simulator. The
// per-core FrameArena is exempt ONLY via the rule's explicit allowlist
// (r3_arena_pass.cpp) — this fixture pins that raw `new` without the arena
// still fires.
#include "workloads/workload.hpp"

namespace asfsim {

Task<void> bad_scratch_worker(GuestCtx& c, Addr head) {
  // Raw host heap allocation mid-coroutine: flagged.
  int* scratch = new int[16];
  scratch[0] = 1;
  co_await c.store_u64(head, static_cast<std::uint64_t>(scratch[0]));
  delete[] scratch;
}

}  // namespace asfsim
