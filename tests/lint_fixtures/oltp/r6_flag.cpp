// lint fixture: MUST flag unordered-iteration (three sites).
// Lives under an `oltp/` path component, so the determinism pass is in
// scope: workload-side bookkeeping feeds validation oracles and stats.
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace asfsim {

struct OltpAudit {
  std::unordered_map<std::uint64_t, std::uint64_t> version_by_key;
  std::vector<std::unordered_map<std::uint64_t, std::uint64_t>> per_core;
};

std::uint64_t first_dirty_key(const OltpAudit& audit, std::size_t core) {
  // Direct iteration of an unordered member: first-match is hash order.
  for (const auto& [key, version] : audit.version_by_key) {
    if (version != 0) return key;
  }
  // Indexed into a vector of unordered maps: same problem per core.
  for (const auto& [key, version] : audit.per_core[core]) {
    if (version != 0) return key;
  }
  // Local unordered container.
  std::unordered_map<std::uint64_t, std::uint64_t> scratch;
  std::uint64_t sum = 0;
  for (const auto& [key, version] : scratch) {
    sum = sum * 31 + key + version;  // order-sensitive fold
  }
  return sum;
}

}  // namespace asfsim
