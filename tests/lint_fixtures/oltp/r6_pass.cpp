// lint fixture: MUST pass — ordered/sequence iteration and non-iterating
// uses of unordered containers in OLTP bookkeeping.
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

namespace asfsim {

struct OltpAudit {
  std::unordered_map<std::uint64_t, std::uint64_t> version_by_key;
  std::vector<std::uint64_t> committed_rmws;
  std::map<std::uint64_t, std::uint64_t> ordered_versions;
};

std::uint64_t stable_audit(const OltpAudit& audit) {
  std::uint64_t sum = 0;
  // A plain vector iterates in index (core) order.
  for (const std::uint64_t n : audit.committed_rmws) sum += n;
  // std::map iterates in key order.
  for (const auto& [key, version] : audit.ordered_versions) {
    sum += key + version;
  }
  // Point lookups into the unordered map never depend on hash order.
  const auto it = audit.version_by_key.find(7);
  if (it != audit.version_by_key.end()) sum += it->second;
  return sum;
}

}  // namespace asfsim
