// lint fixture: MUST flag global-alloc-in-tx (two sites).
// Lives under an `oltp/` path component, so the guest-thread pass is in
// scope for the OLTP workload family too.
#include "workloads/workload.hpp"

namespace asfsim {

Task<void> bad_oltp_worker(GuestCtx& c, Addr table) {
  // Transactional record allocation from the GLOBAL bump allocator:
  // adjacent cores get records in the same cache line for the wrong
  // reason — allocator interleaving, not the studied unpadded layout.
  const Addr rec = c.galloc().alloc(24, 8);
  co_await c.store_u64(table, rec);
  const Addr spill = c.galloc().alloc_lines(1);
  co_await c.store_u64(spill, 0);
}

}  // namespace asfsim
