// lint fixture: MUST pass global-alloc-in-tx.
#include "workloads/workload.hpp"

namespace asfsim {

Task<void> good_oltp_worker(GuestCtx& c, Addr table) {
  // Per-core pool allocation inside guest code: cores never share lines.
  const Addr scratch = c.alloc_local(24, 8);
  co_await c.store_u64(table, scratch);
}

void good_oltp_setup(Machine& m, Addr* out) {
  // Host-time, single-threaded setup may use the global bump path: the
  // OLTP table is deliberately an unpadded shared array (record stride
  // 8 + payload, not line-padded) — exactly the false-sharing substrate
  // the paper's sub-blocking disambiguates.
  *out = m.galloc().alloc(4096, 8);
}

}  // namespace asfsim
