// lint fixture: MUST pass hash-completeness — every OltpConfig field from
// the sibling oltp/oltp_config.hpp reaches the canonical string.
#include "runner/job_spec.hpp"

#include <cstdio>
#include <type_traits>

namespace asfsim::runner {

namespace {

template <typename UInt>
void kv(std::string& out, const char* key, UInt v) {
  static_assert(std::is_unsigned_v<UInt> || std::is_same_v<UInt, int>);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s %llu\n", key,
                static_cast<unsigned long long>(v));
  out += buf;
}

// %a is exact (no rounding on round trip) and independent of print
// precision, so double-valued knobs cannot alias across specs.
void kv(std::string& out, const char* key, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s %a\n", key, v);
  out += buf;
}

}  // namespace

JobSpec make_job_spec(const std::string& workload,
                      const ExperimentConfig& cfg) {
  JobSpec spec;
  spec.workload = workload;
  spec.config = cfg;

  std::string& s = spec.canonical;
  s += "asfsim-jobspec v3\n";
  s += "workload " + workload + "\n";
  const OltpConfig& oltp = cfg.params.oltp;
  kv(s, "oltp_records", oltp.records);
  kv(s, "oltp_payload_bytes", oltp.payload_bytes);
  kv(s, "oltp_tx_len", oltp.tx_len);
  kv(s, "oltp_tx_per_thread", oltp.tx_per_thread);
  kv(s, "oltp_theta", oltp.theta);
  kv(s, "oltp_read_ratio", oltp.read_ratio);
  kv(s, "oltp_rmw_ratio", oltp.rmw_ratio);
  kv(s, "oltp_scan_ratio", oltp.scan_ratio);
  kv(s, "oltp_scan_len", oltp.scan_len);
  kv(s, "oltp_hot_window", oltp.hot_window);
  kv(s, "oltp_mix", static_cast<std::uint64_t>(oltp.mix));
  return spec;
}

}  // namespace asfsim::runner
