// lint fixture: MUST pass hash-completeness — every CmConfig field from
// the sibling cm/cm_config.hpp reaches the canonical string.
#include "runner/job_spec.hpp"

#include <cstdio>
#include <type_traits>

namespace asfsim::runner {

namespace {

template <typename UInt>
void kv(std::string& out, const char* key, UInt v) {
  static_assert(std::is_unsigned_v<UInt> || std::is_same_v<UInt, int>);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s %llu\n", key,
                static_cast<unsigned long long>(v));
  out += buf;
}

}  // namespace

JobSpec make_job_spec(const std::string& workload,
                      const ExperimentConfig& cfg) {
  JobSpec spec;
  spec.workload = workload;
  spec.config = cfg;

  std::string& s = spec.canonical;
  s += "asfsim-jobspec v5\n";
  s += "workload " + workload + "\n";
  const CmConfig& cm = cfg.sim.cm;
  kv(s, "cm_policy", static_cast<std::uint64_t>(cm.policy));
  kv(s, "cm_max_retries", cm.max_retries);
  kv(s, "cm_karma", cm.karma);
  kv(s, "cm_stats", cm.stats ? 1 : 0);
  return spec;
}

}  // namespace asfsim::runner
