// Contention-management configuration (fixture copy of src/cm/cm_config.hpp:
// every CmConfig knob must reach the canonical jobspec string).
#pragma once

#include <cstdint>
#include <string_view>

namespace asfsim {

enum class CmPolicyKind : std::uint8_t {
  kRequesterWins = 0,
  kPolite,
  kTimestamp,
  kSerialize,
};

[[nodiscard]] const char* to_string(CmPolicyKind k);

[[nodiscard]] bool parse_cm_policy(std::string_view name, CmPolicyKind& out);

struct CmConfig {
  CmPolicyKind policy = CmPolicyKind::kRequesterWins;
  // Serialize threshold: retries before escalating to the fallback lock.
  std::uint32_t max_retries = 8;
  // Karma weight for kTimestamp: priority age per suffered abort.
  std::uint32_t karma = 64;
  // Opt-in starvation/fairness accounting (stats-blob v5 section).
  bool stats = false;

  [[nodiscard]] bool active() const {
    return policy != CmPolicyKind::kRequesterWins || stats;
  }
};

}  // namespace asfsim
