// lint fixture: MUST pass discarded-task.
#include "guest/machine.hpp"

namespace asfsim {

Task<void> step(GuestCtx& c, Addr a) { co_await c.store_u64(a, 1); }

Task<void> consumer(GuestCtx& c, Addr a) {
  // Awaited directly.
  co_await step(c, a);
  // Awaited under a branch.
  const std::uint64_t v = co_await c.load_u64(a);
  if (v == 0) co_await step(c, a + 8);
  co_await c.store_u64(a, v);
}

void host_setup(Machine& m, GuestCtx& c, Addr a) {
  // Stored and handed to the kernel: the task runs when scheduled.
  Task<void> t = step(c, a);
  m.spawn(0, std::move(t));
  // Constructed directly in an argument list.
  m.spawn(0, consumer(c, a));
  // Host containers sharing guest-DS method names are not Task calls.
  std::vector<std::uint64_t> q;
  q.push_back(1);
}

}  // namespace asfsim
