// lint fixture: MUST flag nondeterministic-source (three sites).
// Lives under a `sim/` path component, so the determinism pass is in scope.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <ctime>

namespace asfsim {

std::uint64_t jitter_seed() {
  // C PRNG: per-process state, never derived from cfg.seed.
  const int r = std::rand();
  // Wall-clock read feeding simulated state.
  const auto t = std::time(nullptr);
  // Chrono clock type mentioned in sim-affecting code.
  const auto now = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(r) ^ static_cast<std::uint64_t>(t) ^
         static_cast<std::uint64_t>(now.time_since_epoch().count());
}

}  // namespace asfsim
