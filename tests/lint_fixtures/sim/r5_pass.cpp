// lint fixture: MUST pass — deterministic randomness and the benign
// homonyms of the banned names.
#include <cstdint>

namespace asfsim {

// Seeded, pure-function randomness: the approved source.
struct Rng {
  std::uint64_t s;
  std::uint64_t next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
};

struct Timer {
  // A member named `time` is not std::time.
  std::uint64_t time() const { return 0; }
};

struct ScopedClock {
  explicit ScopedClock(int) {}
};

std::uint64_t deterministic_jitter(std::uint64_t seed) {
  Rng rng{seed ^ 0x9e3779b97f4a7c15ULL};
  Timer t;
  // A variable named `clock` is a declaration, not a clock() call.
  ScopedClock clock(0);
  return rng.next() + t.time();
}

}  // namespace asfsim
