// lint fixture: MUST pass — every determinism-pass violation below carries
// an inline suppression (both placement forms).
#include <chrono>
#include <cstdint>
#include <unordered_map>

namespace asfsim {

struct State {
  std::unordered_map<std::uint64_t, std::uint64_t> cells;
};

std::uint64_t guarded(const State& st) {
  // Trailing same-line suppression.
  const auto t0 = std::chrono::steady_clock::now();  // asfsim-lint: allow(nondeterministic-source)
  std::uint64_t sum = 0;
  // Order-insensitive fold; stand-alone directive suppresses the next line.
  // asfsim-lint: allow(unordered-iteration)
  for (const auto& [line, v] : st.cells) sum += line ^ v;
  return sum + static_cast<std::uint64_t>(t0.time_since_epoch().count());
}

}  // namespace asfsim
