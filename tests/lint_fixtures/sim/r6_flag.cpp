// lint fixture: MUST flag unordered-iteration (three sites).
// Lives under a `sim/` path component, so the determinism pass is in scope.
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace asfsim {

struct DetectorState {
  std::unordered_map<std::uint64_t, std::uint32_t> spec;
  std::vector<std::unordered_map<std::uint64_t, std::uint32_t>> per_core;
};

std::uint64_t first_violation(const DetectorState& st, std::size_t core) {
  // Direct iteration of an unordered member: first-match is hash order.
  for (const auto& [line, mask] : st.spec) {
    if (mask != 0) return line;
  }
  // Indexed into a vector of unordered maps: same problem per core.
  for (const auto& [line, mask] : st.per_core[core]) {
    if (mask != 0) return line;
  }
  // Local unordered container.
  std::unordered_map<std::uint64_t, std::uint32_t> scratch;
  std::uint64_t sum = 0;
  for (const auto& [line, mask] : scratch) {
    sum = sum * 31 + line;  // order-sensitive fold
  }
  return sum;
}

}  // namespace asfsim
