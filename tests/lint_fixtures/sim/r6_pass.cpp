// lint fixture: MUST pass — ordered/sequence iteration and non-iterating
// uses of unordered containers.
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

namespace asfsim {

struct DetectorState {
  std::unordered_map<std::uint64_t, std::uint32_t> spec;
  std::vector<std::unordered_map<std::uint64_t, std::uint32_t>> per_core;
  std::vector<std::uint64_t> lines;
  std::map<std::uint64_t, std::uint32_t> ordered;
};

std::uint64_t stable_walk(const DetectorState& st) {
  std::uint64_t sum = 0;
  // A plain vector iterates in index order.
  for (const std::uint64_t line : st.lines) sum += line;
  // std::map iterates in key order.
  for (const auto& [line, mask] : st.ordered) sum += line + mask;
  // Iterating the OUTER vector of per-core maps is index order, fine.
  for (const auto& core_map : st.per_core) sum += core_map.size();
  // Point lookups into the unordered map never depend on hash order.
  const auto it = st.spec.find(7);
  if (it != st.spec.end()) sum += it->second;
  return sum;
}

}  // namespace asfsim
