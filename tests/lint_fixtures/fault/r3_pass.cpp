// lint fixture: MUST pass. Guest-rule scope check — R3/R4 apply only under
// a workloads/ path. The fault subsystem (src/fault/) is host-side
// infrastructure: the chaos harness drives guest coroutines from host code
// (ledger setup via poke/peek, invariant audits, the watchdog report), so
// it may use allocation and raw-guest-access idioms freely. The global
// rules R1/R2 still apply here — a co_await in a condition is a bug in any
// tree.
#include "workloads/workload.hpp"

namespace asfsim {

Task<void> chaos_ledger_worker(GuestCtx& c, Addr cells) {
  // Would flag global-alloc-in-tx inside workloads/; exempt here.
  const Addr scratch = c.galloc().alloc(64, 8);
  co_await c.store_u64(cells, scratch);
}

void chaos_cell_setup(Machine& m, Addr cells) {
  // Would flag raw-guest-access inside workloads/; exempt here. The chaos
  // harness initializes and replays ledger memory exactly this way.
  for (Addr i = 0; i < 8; ++i) {
    m.poke(cells + i * 8, 8, i * 11 + 1);
  }
  const std::uint64_t v = m.peek(cells, 8);
  m.poke(cells + 64, 8, v);
}

}  // namespace asfsim
