// lint fixture: autofixer input. scripts/check_lint_fix.sh copies this
// file, runs `asfsim_lint --fix` on the copy, and requires that the result
// (a) re-lints clean and (b) still compiles as C++20. Self-contained on
// purpose: the fixed output is fed straight to the compiler.
#include <coroutine>

namespace fixdemo {

struct Awaiter {
  bool await_ready() const noexcept { return true; }
  void await_suspend(std::coroutine_handle<>) const noexcept {}
  bool await_resume() const noexcept { return true; }
};

template <typename T>
struct Task {
  struct promise_type {
    Task get_return_object() { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() {}
  };
  bool await_ready() const noexcept { return true; }
  void await_suspend(std::coroutine_handle<>) const noexcept {}
  void await_resume() const noexcept {}
};

Awaiter ready();
Task<void> ping(int v);

Task<void> driver(int x) {
  // R1: co_await in an if condition — fixed by hoisting into a local.
  if (co_await ready()) {
    co_return;
  }
  // R2: discarded Task — fixed by prepending co_await.
  ping(x);
}

}  // namespace fixdemo
