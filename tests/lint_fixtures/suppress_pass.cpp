// lint fixture: MUST pass — every violation below carries a suppression.
#include "guest/machine.hpp"

namespace asfsim {

Task<void> step(GuestCtx& c, Addr a) { co_await c.store_u64(a, 1); }

Task<void> suppressed(GuestCtx& c, Addr a) {
  // Trailing same-line suppression.
  if (co_await c.load_u64(a) != 0) {  // asfsim-lint: allow(coawait-in-condition)
    co_await c.store_u64(a, 1);
  }
  // Stand-alone directive suppresses the next line.
  // asfsim-lint: allow(discarded-task)
  step(c, a);
  co_await c.store_u64(a, 2);
}

}  // namespace asfsim
