// lint fixture: MUST flag coawait-in-condition (three sites).
// This is the DESIGN.md §7 miscompile shape — never compile this file.
#include "guest/machine.hpp"

namespace asfsim {

Task<void> bad_branches(GuestCtx& c, Addr a) {
  // co_await in an if condition whose branch also suspends: the exact GCC 12
  // frame-corruption pattern.
  if (co_await c.load_u64(a) != 0) {
    co_await c.store_u64(a, 1);
  }
  // co_await in a while condition.
  while (co_await c.load_u64(a) < 10) {
    co_await c.store_u64(a, 0);
  }
  // co_await in a ternary condition.
  const std::uint64_t v = co_await c.load_u64(a) ? 1 : 2;
  co_await c.store_u64(a, v);
}

}  // namespace asfsim
