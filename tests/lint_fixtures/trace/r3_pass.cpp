// lint fixture: MUST pass. Guest-rule scope check — R3/R4 apply only under
// a workloads/ path, so the host-side trace subsystem (src/trace/ sinks,
// summary code, the asfsim_trace CLI) may use allocation and peek/poke
// idioms freely without tripping guest rules.
#include "workloads/workload.hpp"

namespace asfsim {

Task<void> traced_worker(GuestCtx& c, Addr head) {
  // Would flag global-alloc-in-tx inside workloads/; exempt here.
  const Addr node = c.galloc().alloc(24, 8);
  co_await c.store_u64(head, node);
}

void trace_probe_setup(Machine& m, Addr a) {
  // Would flag raw-guest-access inside workloads/; exempt here.
  m.poke(a, 8, 0x7ace);
  const std::uint64_t v = m.peek(a, 8);
  m.poke(a + 8, 8, v);
}

}  // namespace asfsim
