// lint fixture: MUST flag discarded-task (two sites).
#include "guest/machine.hpp"

namespace asfsim {

Task<void> step(GuestCtx& c, Addr a) { co_await c.store_u64(a, 1); }

Task<void> dropper(GuestCtx& c, Addr a) {
  // Bare call statement: the Task is constructed and destroyed without ever
  // running its body — this "store" never happens.
  step(c, a);
  const std::uint64_t v = co_await c.load_u64(a);
  // Same bug under a branch.
  if (v == 0) step(c, a + 8);
  co_await c.store_u64(a, v);
}

}  // namespace asfsim
