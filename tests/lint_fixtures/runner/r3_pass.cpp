// lint fixture: MUST pass. Guest-rule scope check — R3/R4 apply only under
// a workloads/ path, so host-side subsystems (src/runner/, harness) may use
// allocation and peek/poke idioms freely without tripping guest rules.
#include "workloads/workload.hpp"

namespace asfsim {

Task<void> host_side_worker(GuestCtx& c, Addr head) {
  // Would flag global-alloc-in-tx inside workloads/; exempt here.
  const Addr node = c.galloc().alloc(24, 8);
  co_await c.store_u64(head, node);
}

void host_side_setup(Machine& m, Addr a) {
  // Would flag raw-guest-access inside workloads/; exempt here.
  m.poke(a, 8, 1);
  const std::uint64_t v = m.peek(a, 8);
  m.poke(a + 8, 8, v);
}

}  // namespace asfsim
