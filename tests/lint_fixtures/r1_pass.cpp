// lint fixture: MUST pass coawait-in-condition.
// The safe hoisted shapes pinned by tests/test_compiler_workaround.cpp.
#include "guest/machine.hpp"

namespace asfsim {

Task<void> good_branches(GuestCtx& c, Addr a) {
  // Hoist, then branch on the named local.
  const std::uint64_t head = co_await c.load_u64(a);
  if (head != 0) {
    co_await c.store_u64(a, 1);
  }
  // Loop with the awaited value refreshed inside the body.
  std::uint64_t cur = co_await c.load_u64(a);
  int guard = 0;
  while (cur != 0 && guard < 10) {
    cur = co_await c.load_u64(a + 8);
    ++guard;
  }
  // Ternary on a named local; co_await only in the arms' statements.
  const std::uint64_t v = head != 0 ? 1 : 2;
  co_await c.store_u64(a, v);
  // co_await as a controlled statement (not in the condition) is fine.
  if (v == 1) co_await c.store_u64(a, 3);
  for (int i = 0; i < 4; ++i) co_await c.store_u64(a, i);
}

}  // namespace asfsim
