// Model tests: guest data structures vs std:: containers under long random
// operation sequences (single-core, so the structures themselves are the
// subject, not concurrency).
#include <gtest/gtest.h>

#include <deque>
#include <functional>
#include <map>
#include <queue>

#include "guest/garray.hpp"
#include "guest/gheap.hpp"
#include "guest/ghashmap.hpp"
#include "guest/glist.hpp"
#include "guest/machine.hpp"
#include "sim/random.hpp"

namespace asfsim {
namespace {

SimConfig one_core() {
  SimConfig c;
  c.ncores = 1;
  return c;
}

// ---- GArray ----------------------------------------------------------------

TEST(GArray, TypedAccessAndHostAccessAgree) {
  Machine m(one_core(), DetectorKind::kBaseline);
  GArray32 a = GArray32::alloc(m.galloc(), 16);
  a.poke(m, 3, 0xdeadbeef);
  EXPECT_EQ(a.peek(m, 3), 0xdeadbeefu);
  EXPECT_EQ(a.addr(4) - a.addr(0), 16u);
  GArray64 b = GArray64::alloc(m.galloc(), 4);
  EXPECT_EQ(b.addr(1) - b.addr(0), 8u);
}

TEST(GArray, FloatBitCastRoundTrips) {
  EXPECT_EQ(u2f(f2u(1.5f)), 1.5f);
  EXPECT_EQ(u2f(f2u(-0.0f)), -0.0f);
  EXPECT_EQ(f2u(0.0f), 0u);
}

// ---- GList ----------------------------------------------------------------

Task<void> list_model_ops(GuestCtx& c, GList* list,
                          std::map<std::uint64_t, std::uint64_t>* model,
                          std::uint64_t seed, int nops, bool* mismatch) {
  Rng rng(seed);
  for (int i = 0; i < nops; ++i) {
    const std::uint64_t key = 1 + rng.below(24);
    const std::uint64_t op = rng.below(10);
    if (op < 4) {
      const std::uint64_t val = rng.next_u64() >> 32;
      const bool ins = co_await list->insert(c, key, val);
      const bool expect = model->emplace(key, val).second;
      if (ins != expect) *mismatch = true;
    } else if (op < 7) {
      const bool got = co_await list->erase(c, key);
      if (got != (model->erase(key) > 0)) *mismatch = true;
    } else {
      const std::uint64_t v = co_await list->find(c, key, ~0ull);
      const auto it = model->find(key);
      if (v != (it == model->end() ? ~0ull : it->second)) *mismatch = true;
    }
  }
  const std::uint64_t n = co_await list->size(c);
  if (n != model->size()) *mismatch = true;
}

class GListModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GListModel, MatchesStdMap) {
  Machine m(one_core(), DetectorKind::kBaseline);
  GList list = GList::create(m);
  std::map<std::uint64_t, std::uint64_t> model;
  bool mismatch = false;
  m.spawn(0, list_model_ops(m.ctx(0), &list, &model, GetParam() * 31 + 5, 800,
                            &mismatch));
  m.run();
  EXPECT_FALSE(mismatch);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GListModel, ::testing::Values(1, 2, 3, 4));

// ---- GQueue ----------------------------------------------------------------

Task<void> queue_model_ops(GuestCtx& c, GQueue* q,
                           std::deque<std::pair<std::uint64_t, std::uint64_t>>*
                               model,
                           std::uint64_t seed, int nops, bool* mismatch) {
  Rng rng(seed);
  for (int i = 0; i < nops; ++i) {
    if (rng.chance(0.6)) {
      const std::uint64_t k = rng.below(1000), v = rng.below(1000);
      co_await q->push(c, k, v);
      model->emplace_back(k, v);
    } else {
      std::uint64_t k = 0, v = 0;
      const bool got = co_await q->pop(c, &k, &v);
      if (got != !model->empty()) {
        *mismatch = true;
      } else if (got) {
        if (k != model->front().first || v != model->front().second) {
          *mismatch = true;
        }
        model->pop_front();
      }
    }
    const bool empty = co_await q->empty(c);
    if (empty != model->empty()) *mismatch = true;
  }
}

class GQueueModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GQueueModel, FifoMatchesStdDeque) {
  Machine m(one_core(), DetectorKind::kBaseline);
  GQueue q = GQueue::create(m);
  std::deque<std::pair<std::uint64_t, std::uint64_t>> model;
  bool mismatch = false;
  m.spawn(0, queue_model_ops(m.ctx(0), &q, &model, GetParam() * 17 + 3, 800,
                             &mismatch));
  m.run();
  EXPECT_FALSE(mismatch);
  EXPECT_EQ(q.host_size(m), model.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GQueueModel, ::testing::Values(1, 2, 3, 4));

TEST(GQueue, HostPushInteroperatesWithGuestPop) {
  Machine m(one_core(), DetectorKind::kBaseline);
  GQueue q = GQueue::create(m);
  for (std::uint64_t i = 0; i < 5; ++i) q.host_push(m, i, i * 10);
  EXPECT_EQ(q.host_size(m), 5u);
  bool ok = true;
  auto drain = [](GuestCtx& c, GQueue* qq, bool* ok_out) -> Task<void> {
    for (std::uint64_t i = 0; i < 5; ++i) {
      std::uint64_t k = 0, v = 0;
      const bool got = co_await qq->pop(c, &k, &v);
      if (!got || k != i || v != i * 10) *ok_out = false;
    }
    const bool more = co_await qq->pop(c, nullptr, nullptr);
    if (more) *ok_out = false;
  };
  m.spawn(0, drain(m.ctx(0), &q, &ok));
  m.run();
  EXPECT_TRUE(ok);
}

// ---- GHashMap ----------------------------------------------------------------

Task<void> map_model_ops(GuestCtx& c, GHashMap* map,
                         std::map<std::uint64_t, std::uint64_t>* model,
                         std::uint64_t seed, int nops, bool* mismatch) {
  Rng rng(seed);
  for (int i = 0; i < nops; ++i) {
    const std::uint64_t key = 1 + rng.below(64);
    const std::uint64_t op = rng.below(12);
    if (op < 4) {
      const std::uint64_t val = rng.next_u64() >> 32;
      const bool ins = co_await map->insert(c, key, val);
      const bool expect = model->emplace(key, val).second;
      if (ins != expect) *mismatch = true;
    } else if (op < 6) {
      const std::uint64_t v = co_await map->add(c, key, 3);
      auto [it, fresh] = model->emplace(key, 3);
      if (!fresh) it->second += 3;
      if (v != it->second) *mismatch = true;
    } else if (op < 8) {
      const bool got = co_await map->erase(c, key);
      if (got != (model->erase(key) > 0)) *mismatch = true;
    } else if (op < 10) {
      const std::uint64_t v = co_await map->find(c, key, ~0ull);
      const auto it = model->find(key);
      if (v != (it == model->end() ? ~0ull : it->second)) *mismatch = true;
    } else {
      const bool has = co_await map->contains(c, key);
      if (has != (model->count(key) > 0)) *mismatch = true;
    }
  }
}

class GHashMapModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GHashMapModel, MatchesStdMap) {
  Machine m(one_core(), DetectorKind::kBaseline);
  GHashMap map = GHashMap::create(m, 8);  // tiny: long chains stress erase
  std::map<std::uint64_t, std::uint64_t> model;
  bool mismatch = false;
  m.spawn(0, map_model_ops(m.ctx(0), &map, &model, GetParam() * 13 + 7, 1200,
                           &mismatch));
  m.run();
  EXPECT_FALSE(mismatch);
  EXPECT_EQ(map.host_size(m), model.size());
  std::uint64_t sum = 0;
  for (const auto& [k, v] : model) sum += v;
  EXPECT_EQ(map.host_sum_values(m), sum);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GHashMapModel, ::testing::Values(1, 2, 3, 4));

// ---- GHeap ----------------------------------------------------------------

Task<void> heap_model_ops(GuestCtx& c, GHeap* heap,
                          std::priority_queue<std::uint64_t,
                                              std::vector<std::uint64_t>,
                                              std::greater<>>* model,
                          std::uint64_t seed, int nops, bool* mismatch) {
  Rng rng(seed);
  for (int i = 0; i < nops; ++i) {
    if (rng.chance(0.55)) {
      const std::uint64_t k = rng.below(10000);
      co_await heap->push(c, k);
      model->push(k);
    } else {
      const std::uint64_t got = co_await heap->pop(c);
      if (model->empty()) {
        if (got != GHeap::kEmpty) *mismatch = true;
      } else {
        if (got != model->top()) *mismatch = true;
        model->pop();
      }
    }
    const std::uint64_t n = co_await heap->size(c);
    if (n != model->size()) *mismatch = true;
  }
}

class GHeapModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GHeapModel, MatchesStdPriorityQueue) {
  Machine m(one_core(), DetectorKind::kBaseline);
  GHeap heap = GHeap::create(m, 4096);
  std::priority_queue<std::uint64_t, std::vector<std::uint64_t>,
                      std::greater<>>
      model;
  bool mismatch = false;
  m.spawn(0, heap_model_ops(m.ctx(0), &heap, &model, GetParam() * 7 + 2, 1200,
                            &mismatch));
  m.run();
  EXPECT_FALSE(mismatch);
  EXPECT_EQ(heap.host_validate(m), "");
}

INSTANTIATE_TEST_SUITE_P(Seeds, GHeapModel, ::testing::Values(1, 2, 3, 4));

TEST(GHeap, HostPushOrdersForGuestPops) {
  Machine m(one_core(), DetectorKind::kBaseline);
  GHeap heap = GHeap::create(m, 64);
  for (const std::uint64_t k : {9u, 3u, 7u, 1u, 5u}) heap.host_push(m, k);
  EXPECT_EQ(heap.host_validate(m), "");
  bool ok = true;
  auto drain = [](GuestCtx& c, GHeap* h, bool* ok_out) -> Task<void> {
    std::uint64_t prev = 0;
    for (int i = 0; i < 5; ++i) {
      const std::uint64_t got = co_await h->pop(c);
      if (got < prev) *ok_out = false;
      prev = got;
    }
    const std::uint64_t empty = co_await h->pop(c);
    if (empty != GHeap::kEmpty) *ok_out = false;
  };
  m.spawn(0, drain(m.ctx(0), &heap, &ok));
  m.run();
  EXPECT_TRUE(ok);
}

}  // namespace
}  // namespace asfsim
