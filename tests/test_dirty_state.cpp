// Scenario tests: the paper's Fig 6 dirty-state problems and the Fig 7 load
// walkthrough, replayed step-by-step on a 2-core machine — plus the
// demonstration that DISABLING dirty handling breaks serializability.
#include <gtest/gtest.h>

#include "guest/machine.hpp"

namespace asfsim {
namespace {

SimConfig two_cores() {
  SimConfig c;
  c.ncores = 2;
  return c;
}

// ---------------------------------------------------------------------------
// Fig 7: a transactional load of a line whose other sub-block is remotely
// speculatively written. The response piggy-backs the S-WR mask; the local
// copy's sub-block becomes Dirty; touching it forces a re-probe.
// ---------------------------------------------------------------------------

struct Fig7 {
  Addr line = 0;
  bool writer_in_window = false;
  SubBlockState reader_sb0_after_load = SubBlockState::kNonSpec;
  SubBlockState reader_sb2_after_load = SubBlockState::kNonSpec;
  bool writer_survived_disjoint_load = false;
};

Task<void> fig7_writer(GuestCtx& c, Fig7* s) {
  co_await c.run_tx([&]() -> Task<void> {
    co_await c.store_u64(s->line + 0, 0xAA);  // sub-block 0 -> S-WR
    s->writer_in_window = true;
    co_await c.work(5000);  // long speculative window
  });
}

Task<void> fig7_reader(GuestCtx& c, Fig7* s, MemorySystem* mem) {
  while (!s->writer_in_window) co_await c.wait(25);
  co_await c.run_tx([&]() -> Task<void> {
    co_await c.load_u64(s->line + 32);  // disjoint sub-block 2
    s->reader_sb0_after_load = mem->subblock_state(c.core(), line_of(s->line), 0);
    s->reader_sb2_after_load = mem->subblock_state(c.core(), line_of(s->line), 2);
    s->writer_survived_disjoint_load = c.runtime().in_tx(0);
    co_await c.load_u64(s->line + 0);  // Dirty sub-block: forced re-probe
  });
}

TEST(DirtyState, Fig7LoadWalkthrough) {
  Machine m(two_cores(), DetectorKind::kSubBlock, 4);
  Fig7 s;
  s.line = m.galloc().alloc_lines(1);
  m.spawn(0, fig7_writer(m.ctx(0), &s));
  m.spawn(1, fig7_reader(m.ctx(1), &s, &m.mem()));
  m.run(10'000'000);

  EXPECT_EQ(s.reader_sb0_after_load, SubBlockState::kDirty)
      << "piggy-backed S-WR mask must mark the reader's copy Dirty";
  EXPECT_EQ(s.reader_sb2_after_load, SubBlockState::kSpecRead);
  EXPECT_TRUE(s.writer_survived_disjoint_load)
      << "disjoint sub-block load must NOT abort the writer (that is the "
         "whole point of sub-blocking)";
  EXPECT_GE(m.stats().dirty_refetches, 1u);
  EXPECT_GE(m.stats().conflicts_total, 1u)
      << "the Dirty re-probe must catch the true RAW (Fig 6a is handled)";
  EXPECT_GE(m.stats().piggyback_messages, 1u);
}

// ---------------------------------------------------------------------------
// Fig 6(b): the reader must never see a torn/stale value. With overlay
// versioning + dirty refetch, the reader observes either the pre- or the
// post-transaction value of the writer's field, never a mix.
// ---------------------------------------------------------------------------

struct Fig6b {
  Addr line = 0;
  bool writer_started = false;
  std::uint64_t observed = 0;
};

Task<void> fig6b_writer(GuestCtx& c, Fig6b* s) {
  co_await c.run_tx([&]() -> Task<void> {
    co_await c.store_u64(s->line + 0, 0x1111111111111111ull);
    s->writer_started = true;
    co_await c.work(2000);
    co_await c.store_u64(s->line + 8, 0x2222222222222222ull);
  });
}

Task<void> fig6b_reader(GuestCtx& c, Fig6b* s) {
  while (!s->writer_started) co_await c.wait(25);
  co_await c.run_tx([&]() -> Task<void> {
    co_await c.load_u64(s->line + 32);  // disjoint: survive, get Dirty marks
    const std::uint64_t a = co_await c.load_u64(s->line + 0);
    const std::uint64_t b = co_await c.load_u64(s->line + 8);
    s->observed = a ^ b;  // pre: 0^0; post: 0x1111... ^ 0x2222...
  });
}

TEST(DirtyState, Fig6bNoStaleOrTornReads) {
  Machine m(two_cores(), DetectorKind::kSubBlock, 4);
  Fig6b s;
  s.line = m.galloc().alloc_lines(1);
  m.spawn(0, fig6b_writer(m.ctx(0), &s));
  m.spawn(1, fig6b_reader(m.ctx(1), &s));
  m.run(10'000'000);
  const std::uint64_t pre = 0;
  const std::uint64_t post = 0x1111111111111111ull ^ 0x2222222222222222ull;
  EXPECT_TRUE(s.observed == pre || s.observed == post)
      << "reader saw a mix of speculative and committed data: 0x" << std::hex
      << s.observed;
}

// ---------------------------------------------------------------------------
// Fig 6(a) inverted: WITHOUT dirty handling the missed RAW produces a
// non-serializable execution. Scenario: the writer publishes two values
// (data + flag in different lines); the reader caches the data line early
// (via a disjoint-sub-block load), sees the flag set AFTER the writer's
// commit, but then reads the STALE data from its own cache — an execution
// no serial order can explain. Dirty handling repairs exactly this.
// ---------------------------------------------------------------------------

struct Fig6a {
  Addr data_line = 0;
  Addr flag_line = 0;
  bool writer_started = false;
  bool inconsistent = false;
};

Task<void> fig6a_writer(GuestCtx& c, Fig6a* s) {
  co_await c.run_tx([&]() -> Task<void> {
    co_await c.store_u64(s->data_line + 0, 42);  // sub-block 0
    s->writer_started = true;
    co_await c.work(3000);  // reader shares the line inside this window
    co_await c.store_u64(s->flag_line + 0, 1);
  });
}

Task<void> fig6a_reader(GuestCtx& c, Fig6a* s) {
  while (!s->writer_started) co_await c.wait(25);
  // Cache the data line under the writer's nose (disjoint sub-block).
  co_await c.run_tx([&]() -> Task<void> {
    co_await c.load_u64(s->data_line + 32);
  });
  // Wait for the writer's commit to become visible via the flag.
  for (;;) {
    std::uint64_t flag = 0;
    co_await c.run_tx([&]() -> Task<void> {
      flag = co_await c.load_u64(s->flag_line + 0);
    });
    if (flag == 1) break;
    co_await c.wait(50);
  }
  // Now read the data. Serializability demands we see 42.
  std::uint64_t data = 0;
  co_await c.run_tx([&]() -> Task<void> {
    data = co_await c.load_u64(s->data_line + 0);
  });
  s->inconsistent = data != 42;
}

TEST(DirtyState, Fig6aDirtyHandlingPreservesSerializability) {
  Machine m(two_cores(), DetectorKind::kSubBlock, 4);
  Fig6a s;
  s.data_line = m.galloc().alloc_lines(1);
  s.flag_line = m.galloc().alloc_lines(1);
  m.spawn(0, fig6a_writer(m.ctx(0), &s));
  m.spawn(1, fig6a_reader(m.ctx(1), &s));
  m.run(10'000'000);
  EXPECT_FALSE(s.inconsistent)
      << "flag=1 observed but data=stale: non-serializable";
}

TEST(DirtyState, Fig6aWithoutDirtyHandlingViolatesSerializability) {
  // The ablation detector drops the piggy-back/Dirty machinery; the reader
  // keeps a stale cached copy... in our overlay model the *data* read is
  // served from committed memory, so the violation manifests as the reader
  // hitting its local line WITHOUT a probe — the writer is never aborted
  // and the reader's first transaction reads values that contradict the
  // flag ordering. We assert the weaker, detector-level property here: no
  // conflict is ever detected even though reader and writer truly overlap.
  Machine m(two_cores(), DetectorKind::kSubBlockNoDirty, 4);
  Fig7 s;
  s.line = m.galloc().alloc_lines(1);
  m.spawn(0, fig7_writer(m.ctx(0), &s));
  m.spawn(1, fig7_reader(m.ctx(1), &s, &m.mem()));
  m.run(10'000'000);
  EXPECT_EQ(m.stats().dirty_refetches, 0u);
  EXPECT_EQ(s.reader_sb0_after_load, SubBlockState::kNonSpec)
      << "no Dirty mark without the piggy-back mechanism";
  EXPECT_EQ(m.stats().conflicts_total, 0u)
      << "the true RAW on sub-block 0 goes UNDETECTED (Fig 6a problem)";
}

}  // namespace
}  // namespace asfsim
