// Unit tests: TagArray geometry, LRU replacement, pinning, retention, and
// the SoA slot API (sentinel tags, packed meta, speculative-summary flag).
#include <gtest/gtest.h>

#include "mem/cache.hpp"

namespace asfsim {
namespace {

constexpr auto kNoSlot = TagArray::kNoSlot;

CacheLevelConfig small_l1() {
  CacheLevelConfig c;
  c.size_bytes = 4 * 64 * 2;  // 4 sets, 2 ways
  c.line_bytes = 64;
  c.ways = 2;
  c.latency = 3;
  return c;
}

Addr line_in_set(std::uint32_t set, std::uint32_t k, std::uint32_t nsets = 4) {
  return (Addr{k} * nsets + set) << kLineShift;
}

constexpr auto kAnyVictim = [](Addr) { return false; };

TEST(TagArray, RejectsNon64ByteLines) {
  CacheLevelConfig c = small_l1();
  c.line_bytes = 32;
  EXPECT_THROW(TagArray{c}, std::invalid_argument);
}

TEST(TagArray, GeometryFromConfig) {
  TagArray t(small_l1());
  EXPECT_EQ(t.num_sets(), 4u);
  EXPECT_EQ(t.ways(), 2u);
  EXPECT_EQ(t.num_slots(), 8u);
  SimConfig def;
  TagArray l1(def.l1);
  EXPECT_EQ(l1.num_sets(), 512u);  // 64KB / 64B / 2 ways (paper Table II)
}

TEST(TagArray, FindMissesOnEmptyAndHitsAfterFill) {
  TagArray t(small_l1());
  const Addr a = line_in_set(1, 0);
  EXPECT_EQ(t.find(a), kNoSlot);
  const auto v = t.find_victim(a, kAnyVictim);
  ASSERT_NE(v, kNoSlot);
  t.fill(v, a, Moesi::kExclusive);
  const auto s = t.find(a);
  ASSERT_NE(s, kNoSlot);
  EXPECT_EQ(t.state(s), Moesi::kExclusive);
  EXPECT_EQ(t.line(s), a);
}

TEST(TagArray, LruEvictsLeastRecentlyTouched) {
  TagArray t(small_l1());
  const Addr a = line_in_set(2, 0), b = line_in_set(2, 1), c = line_in_set(2, 2);
  t.fill(t.find_victim(a, kAnyVictim), a, Moesi::kShared);
  t.fill(t.find_victim(b, kAnyVictim), b, Moesi::kShared);
  t.touch(a);  // b is now LRU
  t.fill(t.find_victim(c, kAnyVictim), c, Moesi::kShared);
  EXPECT_NE(t.find(a), kNoSlot);
  EXPECT_EQ(t.find(b), kNoSlot) << "LRU way must have been evicted";
  EXPECT_NE(t.find(c), kNoSlot);
}

TEST(TagArray, VictimPrefersEmptyWay) {
  TagArray t(small_l1());
  const Addr a = line_in_set(0, 0), b = line_in_set(0, 1);
  t.fill(t.find_victim(a, kAnyVictim), a, Moesi::kModified);
  const auto v = t.find_victim(b, kAnyVictim);
  ASSERT_NE(v, kNoSlot);
  EXPECT_EQ(t.line(v), TagArray::kEmptyTag) << "must pick the empty way";
  EXPECT_NE(t.find(a), kNoSlot);
}

TEST(TagArray, PinnedLinesAreNotEvicted) {
  TagArray t(small_l1());
  const Addr a = line_in_set(3, 0), b = line_in_set(3, 1), c = line_in_set(3, 2);
  t.fill(t.find_victim(a, kAnyVictim), a, Moesi::kModified);
  t.fill(t.find_victim(b, kAnyVictim), b, Moesi::kShared);
  auto pin_a = [&](Addr line) { return line == a; };
  const auto v = t.find_victim(c, pin_a);
  ASSERT_NE(v, kNoSlot);
  EXPECT_EQ(t.line(v), b) << "pinned line a must be skipped";
}

TEST(TagArray, AllWaysPinnedReturnsNoSlot) {
  TagArray t(small_l1());
  const Addr a = line_in_set(1, 0), b = line_in_set(1, 1), c = line_in_set(1, 2);
  t.fill(t.find_victim(a, kAnyVictim), a, Moesi::kModified);
  t.fill(t.find_victim(b, kAnyVictim), b, Moesi::kModified);
  EXPECT_EQ(t.find_victim(c, [](Addr) { return true; }), kNoSlot)
      << "capacity abort signal when every way holds speculative state";
}

TEST(TagArray, RetainedEntriesStayFindable) {
  TagArray t(small_l1());
  const Addr a = line_in_set(0, 0);
  t.fill(t.find_victim(a, kAnyVictim), a, Moesi::kShared);
  const auto s = t.find(a);
  t.retain_invalid(s);  // invalidated with speculative-info retention
  ASSERT_NE(t.find(a), kNoSlot);
  EXPECT_TRUE(t.retained(s));
  EXPECT_FALSE(t.valid(s));
  EXPECT_EQ(t.state(s), Moesi::kInvalid);
  t.drop(a);
  EXPECT_EQ(t.find(a), kNoSlot);
}

TEST(TagArray, RevalidationClearsRetained) {
  TagArray t(small_l1());
  const Addr a = line_in_set(0, 0);
  t.fill(t.find_victim(a, kAnyVictim), a, Moesi::kShared);
  const auto s = t.find(a);
  t.retain_invalid(s);
  t.set_state(s, Moesi::kExclusive);  // owner refetches the line
  EXPECT_TRUE(t.valid(s));
  EXPECT_FALSE(t.retained(s));
}

TEST(TagArray, SpecFlagSurvivesRetentionAndDiesWithDrop) {
  TagArray t(small_l1());
  const Addr a = line_in_set(2, 0);
  t.fill(t.find_victim(a, kAnyVictim), a, Moesi::kModified);
  auto s = t.find(a);
  EXPECT_FALSE(t.spec_flag(s)) << "fresh fill carries no speculative summary";
  t.set_spec_flag(s, true);
  t.retain_invalid(s);
  EXPECT_TRUE(t.spec_flag(s)) << "retention keeps the line's speculative info";
  t.set_state(s, Moesi::kModified);
  EXPECT_TRUE(t.spec_flag(s)) << "revalidation keeps live metadata visible";
  t.drop_slot(s);
  s = t.find_victim(a, kAnyVictim);
  t.fill(s, a, Moesi::kShared);
  EXPECT_FALSE(t.spec_flag(t.find(a))) << "drop+refill must reset the flag";
}

TEST(TagArray, SlotsAreStableAcrossDropsOfOtherLines) {
  TagArray t(small_l1());
  const Addr a = line_in_set(0, 0), b = line_in_set(0, 1);
  t.fill(t.find_victim(a, kAnyVictim), a, Moesi::kShared);
  t.fill(t.find_victim(b, kAnyVictim), b, Moesi::kShared);
  const auto sa = t.find(a);
  t.drop(b);
  EXPECT_EQ(t.find(a), sa);
  EXPECT_EQ(t.line(sa), a);
}

TEST(TagArray, DropIsIdempotentAndAddressSpecific) {
  TagArray t(small_l1());
  const Addr a = line_in_set(0, 0), b = line_in_set(0, 1);
  t.fill(t.find_victim(a, kAnyVictim), a, Moesi::kShared);
  t.fill(t.find_victim(b, kAnyVictim), b, Moesi::kShared);
  t.drop(a);
  t.drop(a);
  EXPECT_EQ(t.find(a), kNoSlot);
  EXPECT_NE(t.find(b), kNoSlot);
}

TEST(TagArray, CountsFillsAndEvictions) {
  TagArray t(small_l1());
  const Addr a = line_in_set(2, 0), b = line_in_set(2, 1), c = line_in_set(2, 2);
  for (const Addr x : {a, b, c}) {
    t.fill(t.find_victim(x, kAnyVictim), x, Moesi::kShared);
  }
  EXPECT_EQ(t.fills(), 3u);
  EXPECT_EQ(t.evictions(), 1u);  // only the third fill displaced anything
}

TEST(Moesi, StateNames) {
  EXPECT_STREQ(to_string(Moesi::kInvalid), "I");
  EXPECT_STREQ(to_string(Moesi::kShared), "S");
  EXPECT_STREQ(to_string(Moesi::kExclusive), "E");
  EXPECT_STREQ(to_string(Moesi::kOwned), "O");
  EXPECT_STREQ(to_string(Moesi::kModified), "M");
}

}  // namespace
}  // namespace asfsim
