// Unit tests: TagArray geometry, LRU replacement, pinning, retention.
#include <gtest/gtest.h>

#include "mem/cache.hpp"

namespace asfsim {
namespace {

CacheLevelConfig small_l1() {
  CacheLevelConfig c;
  c.size_bytes = 4 * 64 * 2;  // 4 sets, 2 ways
  c.line_bytes = 64;
  c.ways = 2;
  c.latency = 3;
  return c;
}

Addr line_in_set(std::uint32_t set, std::uint32_t k, std::uint32_t nsets = 4) {
  return (Addr{k} * nsets + set) << kLineShift;
}

TEST(TagArray, RejectsNon64ByteLines) {
  CacheLevelConfig c = small_l1();
  c.line_bytes = 32;
  EXPECT_THROW(TagArray{c}, std::invalid_argument);
}

TEST(TagArray, GeometryFromConfig) {
  TagArray t(small_l1());
  EXPECT_EQ(t.num_sets(), 4u);
  EXPECT_EQ(t.ways(), 2u);
  SimConfig def;
  TagArray l1(def.l1);
  EXPECT_EQ(l1.num_sets(), 512u);  // 64KB / 64B / 2 ways (paper Table II)
}

TEST(TagArray, FindMissesOnEmptyAndHitsAfterFill) {
  TagArray t(small_l1());
  const Addr a = line_in_set(1, 0);
  EXPECT_EQ(t.find(a), nullptr);
  auto* v = t.find_victim(a, [](Addr) { return false; });
  ASSERT_NE(v, nullptr);
  t.fill(v, a, Moesi::kExclusive);
  ASSERT_NE(t.find(a), nullptr);
  EXPECT_EQ(t.find(a)->state, Moesi::kExclusive);
}

TEST(TagArray, LruEvictsLeastRecentlyTouched) {
  TagArray t(small_l1());
  const Addr a = line_in_set(2, 0), b = line_in_set(2, 1), c = line_in_set(2, 2);
  t.fill(t.find_victim(a, [](Addr) { return false; }), a, Moesi::kShared);
  t.fill(t.find_victim(b, [](Addr) { return false; }), b, Moesi::kShared);
  t.touch(a);  // b is now LRU
  t.fill(t.find_victim(c, [](Addr) { return false; }), c, Moesi::kShared);
  EXPECT_NE(t.find(a), nullptr);
  EXPECT_EQ(t.find(b), nullptr) << "LRU way must have been evicted";
  EXPECT_NE(t.find(c), nullptr);
}

TEST(TagArray, VictimPrefersEmptyWay) {
  TagArray t(small_l1());
  const Addr a = line_in_set(0, 0), b = line_in_set(0, 1);
  t.fill(t.find_victim(a, [](Addr) { return false; }), a, Moesi::kModified);
  auto* v = t.find_victim(b, [](Addr) { return false; });
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->state, Moesi::kInvalid) << "must pick the empty way";
  EXPECT_NE(t.find(a), nullptr);
}

TEST(TagArray, PinnedLinesAreNotEvicted) {
  TagArray t(small_l1());
  const Addr a = line_in_set(3, 0), b = line_in_set(3, 1), c = line_in_set(3, 2);
  t.fill(t.find_victim(a, [](Addr) { return false; }), a, Moesi::kModified);
  t.fill(t.find_victim(b, [](Addr) { return false; }), b, Moesi::kShared);
  auto pin_a = [&](Addr line) { return line == a; };
  auto* v = t.find_victim(c, pin_a);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->line, b) << "pinned line a must be skipped";
}

TEST(TagArray, AllWaysPinnedReturnsNull) {
  TagArray t(small_l1());
  const Addr a = line_in_set(1, 0), b = line_in_set(1, 1), c = line_in_set(1, 2);
  t.fill(t.find_victim(a, [](Addr) { return false; }), a, Moesi::kModified);
  t.fill(t.find_victim(b, [](Addr) { return false; }), b, Moesi::kModified);
  EXPECT_EQ(t.find_victim(c, [](Addr) { return true; }), nullptr)
      << "capacity abort signal when every way holds speculative state";
}

TEST(TagArray, RetainedEntriesStayFindable) {
  TagArray t(small_l1());
  const Addr a = line_in_set(0, 0);
  t.fill(t.find_victim(a, [](Addr) { return false; }), a, Moesi::kShared);
  auto* e = t.find(a);
  e->state = Moesi::kInvalid;
  e->retained = true;  // invalidated with speculative-info retention
  ASSERT_NE(t.find(a), nullptr);
  EXPECT_TRUE(t.find(a)->retained);
  t.drop(a);
  EXPECT_EQ(t.find(a), nullptr);
}

TEST(TagArray, DropIsIdempotentAndAddressSpecific) {
  TagArray t(small_l1());
  const Addr a = line_in_set(0, 0), b = line_in_set(0, 1);
  t.fill(t.find_victim(a, [](Addr) { return false; }), a, Moesi::kShared);
  t.fill(t.find_victim(b, [](Addr) { return false; }), b, Moesi::kShared);
  t.drop(a);
  t.drop(a);
  EXPECT_EQ(t.find(a), nullptr);
  EXPECT_NE(t.find(b), nullptr);
}

TEST(TagArray, CountsFillsAndEvictions) {
  TagArray t(small_l1());
  const Addr a = line_in_set(2, 0), b = line_in_set(2, 1), c = line_in_set(2, 2);
  for (const Addr x : {a, b, c}) {
    t.fill(t.find_victim(x, [](Addr) { return false; }), x, Moesi::kShared);
  }
  EXPECT_EQ(t.fills(), 3u);
  EXPECT_EQ(t.evictions(), 1u);  // only the third fill displaced anything
}

TEST(Moesi, StateNames) {
  EXPECT_STREQ(to_string(Moesi::kInvalid), "I");
  EXPECT_STREQ(to_string(Moesi::kShared), "S");
  EXPECT_STREQ(to_string(Moesi::kExclusive), "E");
  EXPECT_STREQ(to_string(Moesi::kOwned), "O");
  EXPECT_STREQ(to_string(Moesi::kModified), "M");
}

}  // namespace
}  // namespace asfsim
