// Unit tests: BackingStore, GAllocator, Rng.
#include <gtest/gtest.h>

#include <set>

#include "mem/backing_store.hpp"
#include "mem/gallocator.hpp"
#include "sim/random.hpp"

namespace asfsim {
namespace {

TEST(BackingStore, ZeroFilledByDefault) {
  BackingStore bs;
  EXPECT_EQ(bs.read(0x1000, 8), 0u);
  EXPECT_EQ(bs.read(0xdeadbe00, 4), 0u);
  EXPECT_EQ(bs.pages_touched(), 0u);
}

TEST(BackingStore, RoundTripsAllSizes) {
  BackingStore bs;
  for (const std::uint32_t size : {1u, 2u, 4u, 8u}) {
    const Addr a = 0x2000 + size * 16;
    const std::uint64_t v = 0x1122334455667788ull;
    bs.write(a, size, v);
    const std::uint64_t mask =
        size == 8 ? ~0ull : ((1ull << (8 * size)) - 1);
    EXPECT_EQ(bs.read(a, size), v & mask);
  }
}

TEST(BackingStore, NeighboringBytesUntouched) {
  BackingStore bs;
  bs.write(0x3000, 8, ~0ull);
  bs.write(0x3004, 1, 0);
  EXPECT_EQ(bs.read(0x3000, 4), 0xffffffffu);
  EXPECT_EQ(bs.read(0x3004, 1), 0u);
  EXPECT_EQ(bs.read(0x3005, 1), 0xffu);
}

TEST(BackingStore, SparsePagesAllocateOnWrite) {
  BackingStore bs;
  bs.write(0x10000, 8, 1);
  bs.write(0x900000, 8, 2);
  EXPECT_EQ(bs.pages_touched(), 2u);
  EXPECT_EQ(bs.read(0x10000, 8), 1u);
  EXPECT_EQ(bs.read(0x900000, 8), 2u);
}

TEST(GAllocator, RespectsAlignment) {
  GAllocator ga;
  EXPECT_EQ(ga.alloc(3, 8) % 8, 0u);
  EXPECT_EQ(ga.alloc(1, 64) % 64, 0u);
  EXPECT_EQ(ga.alloc_lines(2) % kLineBytes, 0u);
  EXPECT_THROW(ga.alloc(8, 3), std::invalid_argument);
}

TEST(GAllocator, AllocationsDoNotOverlap) {
  GAllocator ga;
  const Addr a = ga.alloc(24, 8);
  const Addr b = ga.alloc(24, 8);
  EXPECT_GE(b, a + 24);
}

TEST(GAllocator, MallocLikePackingSharesLines) {
  // The whole point: unpadded small allocations land in the same line.
  GAllocator ga;
  const Addr a = ga.alloc(8, 8);
  const Addr b = ga.alloc(8, 8);
  EXPECT_EQ(line_of(a), line_of(b));
}

TEST(GAllocator, PerCoreArenasNeverShareLines) {
  GAllocator ga;
  std::set<Addr> lines0, lines1;
  for (int i = 0; i < 300; ++i) {
    lines0.insert(line_of(ga.alloc_local(0, 24)));
    lines1.insert(line_of(ga.alloc_local(1, 24)));
  }
  for (const Addr l : lines0) {
    EXPECT_EQ(lines1.count(l), 0u)
        << "core pools must be cache-line disjoint";
  }
}

TEST(GAllocator, ArenaRefillKeepsAlignment) {
  GAllocator ga;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(ga.alloc_local(2, 48, 16) % 16, 0u);
  }
}

TEST(GAllocator, OutOfMemoryThrows) {
  GAllocator ga(0x10000, 0x20000);
  EXPECT_THROW(ga.alloc(1 << 20), std::runtime_error);
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
  }
  bool differs = false;
  Rng a2(42);
  for (int i = 0; i < 100; ++i) differs |= a2.next_u64() != c.next_u64();
  EXPECT_TRUE(differs);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.below(13), 13u);
    const auto v = r.range(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(Rng, ChanceIsRoughlyCalibrated) {
  Rng r(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += r.chance(0.25) ? 1 : 0;
  EXPECT_GT(hits, 2200);
  EXPECT_LT(hits, 2800);
}

}  // namespace
}  // namespace asfsim
