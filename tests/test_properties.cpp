// Property tests (DESIGN.md §5): invariants that must hold across seeds,
// detectors and granularities.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"

namespace asfsim {
namespace {

ExperimentConfig cfg_for(std::uint64_t seed, DetectorKind d,
                         std::uint32_t nsub = 4, double scale = 0.3) {
  ExperimentConfig cfg;
  cfg.detector = d;
  cfg.nsub = nsub;
  cfg.params.seed = seed;
  cfg.params.scale = scale;
  return cfg;
}

class SeededProperty : public ::testing::TestWithParam<std::uint64_t> {};

// Property 1: the perfect detector never reports a false conflict.
TEST_P(SeededProperty, PerfectHasZeroFalseConflicts) {
  for (const char* w : {"counter", "bank", "ssca2", "kmeans"}) {
    const auto r =
        run_experiment(w, cfg_for(GetParam(), DetectorKind::kPerfect));
    EXPECT_TRUE(r.ok()) << w << ": " << r.validation_error;
    EXPECT_EQ(r.stats.conflicts_false, 0u) << w;
  }
}

// Property 2: the ANALYTIC false-conflict survival histogram is monotone in
// granularity — finer sub-blocks can only remove more false conflicts.
TEST_P(SeededProperty, AnalyticSurvivalIsMonotone) {
  for (const char* w : {"counter", "ssca2", "utilitymine", "kmeans"}) {
    const auto r =
        run_experiment(w, cfg_for(GetParam(), DetectorKind::kBaseline));
    const auto& s = r.stats.false_surviving_at;
    EXPECT_EQ(s[0], r.stats.conflicts_false) << w;
    for (int i = 1; i < 5; ++i) {
      EXPECT_LE(s[i], s[i - 1]) << w << " at 1<<" << i << " sub-blocks";
    }
  }
}

// Property 3: at 16 sub-blocks (4-byte granularity) workloads whose accesses
// are >= 4 bytes see zero false conflicts in actual runs.
TEST_P(SeededProperty, SixteenSubBlocksEliminateFalseConflicts) {
  for (const char* w : {"counter", "ssca2", "kmeans", "utilitymine"}) {
    const auto r =
        run_experiment(w, cfg_for(GetParam(), DetectorKind::kSubBlock, 16));
    EXPECT_TRUE(r.ok()) << w << ": " << r.validation_error;
    EXPECT_EQ(r.stats.conflicts_false, 0u) << w;
  }
}

// Property 4: serializability witness — the bank conserves money under every
// detector, every seed.
TEST_P(SeededProperty, BankConservesMoneyEverywhere) {
  for (const auto& [d, n] : {std::pair{DetectorKind::kBaseline, 1u},
                             std::pair{DetectorKind::kSubBlock, 2u},
                             std::pair{DetectorKind::kSubBlock, 4u},
                             std::pair{DetectorKind::kSubBlock, 8u},
                             std::pair{DetectorKind::kSubBlock, 16u},
                             std::pair{DetectorKind::kSubBlockWawLine, 4u},
                             std::pair{DetectorKind::kWarOnly, 1u},
                             std::pair{DetectorKind::kPerfect, 1u}}) {
    const auto r = run_experiment("bank", cfg_for(GetParam(), d, n));
    EXPECT_TRUE(r.ok()) << to_string(d) << "/" << n << ": "
                        << r.validation_error;
  }
}

// Property 5: commits are detector-independent for fixed-work workloads
// (every workload validates its exact output, so this is belt-and-braces on
// the commit COUNT as well).
TEST_P(SeededProperty, CommitCountsAreDetectorIndependent) {
  const auto base =
      run_experiment("scalparc", cfg_for(GetParam(), DetectorKind::kBaseline));
  const auto sb =
      run_experiment("scalparc", cfg_for(GetParam(), DetectorKind::kSubBlock));
  const auto pf =
      run_experiment("scalparc", cfg_for(GetParam(), DetectorKind::kPerfect));
  EXPECT_EQ(base.stats.tx_commits, sb.stats.tx_commits);
  EXPECT_EQ(base.stats.tx_commits, pf.stats.tx_commits);
}

// Property 6: avoided-false accounting — a finer detector that reduced
// false conflicts must have explicitly declined baseline-visible ones.
TEST_P(SeededProperty, AvoidedFalseConflictsAreAccounted) {
  const auto base =
      run_experiment("ssca2", cfg_for(GetParam(), DetectorKind::kBaseline));
  const auto sb =
      run_experiment("ssca2", cfg_for(GetParam(), DetectorKind::kSubBlock));
  if (sb.stats.conflicts_false < base.stats.conflicts_false) {
    EXPECT_GT(sb.stats.false_conflicts_avoided, 0u);
  }
}

// Property 7: abort-cause bookkeeping covers every abort.
TEST_P(SeededProperty, AbortCausesSumToAborts) {
  for (const char* w : {"labyrinth", "vacation", "intruder"}) {
    const auto r =
        run_experiment(w, cfg_for(GetParam(), DetectorKind::kSubBlock));
    std::uint64_t sum = 0;
    for (const auto v : r.stats.aborts_by_cause) sum += v;
    EXPECT_EQ(sum, r.stats.tx_aborts) << w;
    EXPECT_LE(r.stats.conflicts_total,
              r.stats.aborts_by_cause[0] + r.stats.tx_commits)
        << w << ": every conflict dooms exactly one victim (some victims are "
               "doomed at commit-validation time after their own commit "
               "decision, hence the commit slack)";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(1, 7, 23, 99));

// Measured monotonicity on the analytic histogram is exact; the MEASURED
// false counts across granularities are *statistically* decreasing but a
// single seed can wobble, so this test uses a fixed seed with a clear gap.
TEST(Property, MeasuredFalseConflictsShrinkWithGranularity) {
  std::uint64_t prev = ~0ull;
  for (const std::uint32_t n : {2u, 4u, 8u, 16u}) {
    const auto r =
        run_experiment("ssca2", cfg_for(1, DetectorKind::kSubBlock, n, 0.5));
    EXPECT_LE(r.stats.conflicts_false, prev) << n;
    prev = r.stats.conflicts_false;
  }
}

TEST(Property, SubBlockNeverReportsIntraSubBlockDisjointConflicts) {
  // Any false conflict reported by the sub-block detector must overlap at
  // sub-block granularity (that is exactly what it checks) — verified via
  // the analytic survival histogram of its own run.
  const auto r =
      run_experiment("kmeans", cfg_for(3, DetectorKind::kSubBlock, 4, 0.4));
  EXPECT_EQ(r.stats.false_surviving_at[2], r.stats.conflicts_false)
      << "every surviving false conflict still overlaps at 4 sub-blocks";
}

TEST(Property, WarOnlyHelpsWarDominatedWorkloadsOnly) {
  // apriori is WAR-dominant: WAR-only should remove a large share.
  // kmeans is RAW-dominant: WAR-only should remove a much smaller share.
  const auto ab = run_experiment("apriori", cfg_for(1, DetectorKind::kBaseline,
                                                    1, 1.0));
  const auto aw = run_experiment("apriori", cfg_for(1, DetectorKind::kWarOnly,
                                                    1, 1.0));
  const auto kb = run_experiment("kmeans", cfg_for(1, DetectorKind::kBaseline,
                                                   1, 0.5));
  const auto kw = run_experiment("kmeans", cfg_for(1, DetectorKind::kWarOnly,
                                                   1, 0.5));
  const double apriori_red =
      1.0 - double(aw.stats.conflicts_false) /
                std::max<std::uint64_t>(1, ab.stats.conflicts_false);
  const double kmeans_red =
      1.0 - double(kw.stats.conflicts_false) /
                std::max<std::uint64_t>(1, kb.stats.conflicts_false);
  EXPECT_GT(apriori_red, kmeans_red)
      << "WAR-only must help the WAR-dominant program more (paper §II)";
}

// Property 8: the delayed-probe timing mode preserves correctness (bank
// conservation, validations) and roughly preserves the conflict profile —
// the fidelity argument behind the atomic-at-issue substitution.
TEST(Property, DelayedProbeModePreservesResultsAndProfile) {
  for (const char* w : {"bank", "counter", "ssca2"}) {
    ExperimentConfig atomic = cfg_for(1, DetectorKind::kSubBlock, 4, 0.4);
    ExperimentConfig delayed = atomic;
    delayed.sim.probe_delay = 30;
    const auto a = run_experiment(w, atomic);
    const auto d = run_experiment(w, delayed);
    EXPECT_TRUE(a.ok()) << w << ": " << a.validation_error;
    EXPECT_TRUE(d.ok()) << w << ": " << d.validation_error;
    EXPECT_EQ(a.stats.tx_commits, d.stats.tx_commits) << w;
    EXPECT_GT(d.stats.total_cycles, a.stats.total_cycles)
        << w << ": probe flight time must cost cycles";
  }
}

TEST(Property, DelayedProbeModeIsDeterministic) {
  ExperimentConfig cfg = cfg_for(3, DetectorKind::kBaseline, 1, 0.3);
  cfg.sim.probe_delay = 25;
  const auto a = run_experiment("vacation", cfg);
  const auto b = run_experiment("vacation", cfg);
  EXPECT_EQ(a.stats.total_cycles, b.stats.total_cycles);
  EXPECT_EQ(a.stats.conflicts_total, b.stats.conflicts_total);
}

}  // namespace
}  // namespace asfsim
