// Trace files must be byte-deterministic: the same (workload, seed) job
// produces the exact same JSONL bytes whether the runner executes serially
// or with 8 workers, and regardless of what else runs alongside. Also
// checks that traced runs land in the runner's JSON manifest.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "runner/runner.hpp"

namespace asfsim {
namespace {

using runner::Runner;
using runner::RunnerOptions;

class TraceDeterminism : public ::testing::Test {
 protected:
  // Directories are namespaced per test: ctest runs each test in its own
  // process, possibly concurrently, from the same working directory.
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    base_ = std::string("trace_determinism_") + info->name();
    ::setenv("ASFSIM_CACHE_DIR", dir("cache").c_str(), 1);
    ::setenv("ASFSIM_RUN_MANIFEST", "-", 1);
    ::setenv("ASFSIM_PROGRESS", "0", 1);
  }
  void TearDown() override {
    std::filesystem::remove_all(base_);
    ::unsetenv("ASFSIM_CACHE_DIR");
    ::unsetenv("ASFSIM_RUN_MANIFEST");
    ::unsetenv("ASFSIM_PROGRESS");
  }

  [[nodiscard]] std::string dir(const std::string& leaf) const {
    return base_ + "/" + leaf;
  }

 private:
  std::string base_;
};

RunnerOptions traced_opts(unsigned jobs, const std::string& trace_dir) {
  RunnerOptions o;
  o.jobs = jobs;
  o.use_cache = false;
  o.manifest_path = "-";
  o.progress = RunnerOptions::Progress::kOff;
  o.trace_dir = trace_dir;
  o.trace_format = TraceFormat::kJsonl;
  return o;
}

void run_matrix(unsigned jobs, const std::string& trace_dir) {
  Runner r(traced_opts(jobs, trace_dir));
  std::vector<std::shared_future<ExperimentResult>> futs;
  for (const char* w : {"counter", "bank"}) {
    for (const DetectorKind d :
         {DetectorKind::kBaseline, DetectorKind::kSubBlock,
          DetectorKind::kPerfect, DetectorKind::kWarOnly}) {
      ExperimentConfig cfg;
      cfg.params.threads = 4;
      cfg.params.scale = 0.25;
      cfg.sim.ncores = 4;
      cfg.detector = d;
      futs.push_back(r.submit(w, cfg));
    }
  }
  for (auto& f : futs) ASSERT_TRUE(f.get().ok());
}

std::map<std::string, std::string> read_dir_bytes(
    const std::filesystem::path& dir) {
  std::map<std::string, std::string> files;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    std::ifstream in(e.path(), std::ios::binary);
    files[e.path().filename().string()] =
        std::string((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  }
  return files;
}

TEST_F(TraceDeterminism, JsonlBytesAreIdenticalAcrossJobs1And8) {
  run_matrix(1, dir("serial"));
  run_matrix(8, dir("jobs8"));

  const auto serial = read_dir_bytes(dir("serial"));
  const auto parallel = read_dir_bytes(dir("jobs8"));
  ASSERT_EQ(serial.size(), 8u);  // one trace per distinct job
  ASSERT_EQ(serial.size(), parallel.size());
  for (const auto& [name, bytes] : serial) {
    ASSERT_TRUE(parallel.count(name)) << name;
    EXPECT_EQ(bytes, parallel.at(name)) << name;
    EXPECT_FALSE(bytes.empty()) << name;
    EXPECT_EQ(name.find(".jsonl"), name.size() - 6) << name;
  }
}

TEST_F(TraceDeterminism, ManifestRecordsPerJobTracePaths) {
  const std::string manifest = dir("manifest") + "/manifest.json";
  ::setenv("ASFSIM_RUN_MANIFEST", manifest.c_str(), 1);
  {
    Runner r(traced_opts(2, dir("traces")));
    ExperimentConfig cfg;
    cfg.params.threads = 4;
    cfg.params.scale = 0.25;
    cfg.sim.ncores = 4;
    ASSERT_TRUE(r.get("counter", cfg).ok());
  }  // ~Runner writes the manifest
  std::ifstream in(manifest);
  ASSERT_TRUE(in.is_open());
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("\"trace\": \"" + dir("traces") + "/counter-"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find(".jsonl\""), std::string::npos) << text;
}

}  // namespace
}  // namespace asfsim
